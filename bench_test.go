package cloudgraph

// One benchmark per paper artifact (see DESIGN.md's per-experiment index)
// plus ablation benches for the design choices it calls out. Fixtures are
// generated once per process at reduced scale so `go test -bench=.` stays
// laptop-friendly; cmd/experiments regenerates the full-scale numbers.

import (
	"bytes"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"cloudgraph/internal/cluster"
	"cloudgraph/internal/core"
	"cloudgraph/internal/flowlog"
	"cloudgraph/internal/graph"
	"cloudgraph/internal/heatmap"
	"cloudgraph/internal/ingest"
	"cloudgraph/internal/matrix"
	"cloudgraph/internal/nicsim"
	"cloudgraph/internal/policy"
	"cloudgraph/internal/runner"
	"cloudgraph/internal/segment"
	"cloudgraph/internal/summarize"
	"cloudgraph/internal/telemetry"
	"cloudgraph/internal/trace"
	"cloudgraph/internal/watermark"
	"net/netip"
)

var benchStart = time.Unix(1700000000, 0).UTC().Truncate(time.Hour)

type fixture struct {
	cluster *cluster.Cluster
	records []flowlog.Record
	graph   *graph.Graph
}

var (
	fixOnce sync.Once
	fixK8s  fixture // K8s PaaS at scale 0.25
	fixUSvc fixture // µserviceBench at scale 0.1
)

func loadFixtures(tb testing.TB) {
	tb.Helper()
	fixOnce.Do(func() {
		mk := func(preset string, scale float64) fixture {
			spec, err := cluster.Preset(preset, scale)
			if err != nil {
				panic(err)
			}
			c, err := cluster.New(spec)
			if err != nil {
				panic(err)
			}
			recs, err := c.CollectHour(benchStart)
			if err != nil {
				panic(err)
			}
			g := graph.Build(recs, graph.BuilderOptions{Facet: graph.FacetIP})
			if spec.CollapseThreshold > 0 {
				g = g.Collapse(graph.CollapseOptions{
					Threshold: spec.CollapseThreshold,
					Keep:      func(n graph.Node) bool { return c.Monitored(n.Addr) },
				})
			}
			return fixture{cluster: c, records: recs, graph: g}
		}
		fixK8s = mk("k8spaas", 0.25)
		fixUSvc = mk("microservicebench", 0.1)
	})
}

// --- Table 1: graph construction from raw telemetry -----------------------

func BenchmarkTable1GraphConstruction(b *testing.B) {
	loadFixtures(b)
	recs := fixK8s.records
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g := graph.Build(recs, graph.BuilderOptions{Facet: graph.FacetIP})
		if g.NumNodes() == 0 {
			b.Fatal("empty graph")
		}
	}
	b.ReportMetric(float64(len(recs)*b.N)/b.Elapsed().Seconds(), "records/s")
}

func BenchmarkFacetIPPort(b *testing.B) {
	loadFixtures(b)
	recs := fixUSvc.records
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g := graph.Build(recs, graph.BuilderOptions{Facet: graph.FacetIPPort})
		if g.NumNodes() == 0 {
			b.Fatal("empty graph")
		}
	}
}

// --- Table 3: provider sampling -------------------------------------------

func BenchmarkTable3Sampling(b *testing.B) {
	loadFixtures(b)
	s := flowlog.NewSampler(flowlog.GCP, 42)
	recs := fixUSvc.records
	b.ResetTimer()
	kept := 0
	for i := 0; i < b.N; i++ {
		if _, ok := s.Sample(recs[i%len(recs)]); ok {
			kept++
		}
	}
	if b.N > 1000 && (kept == 0 || kept == b.N) {
		b.Fatalf("sampler kept %d of %d", kept, b.N)
	}
}

// --- Figures 1 and 3: segmentation strategies ------------------------------

func benchSegment(b *testing.B, s segment.Strategy) {
	loadFixtures(b)
	g := fixK8s.graph
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := segment.Run(s, g, segment.Options{}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig1Segmentation(b *testing.B)    { benchSegment(b, segment.StrategyJaccardLouvain) }
func BenchmarkFig3SimRank(b *testing.B)         { benchSegment(b, segment.StrategySimRank) }
func BenchmarkFig3SimRankPP(b *testing.B)       { benchSegment(b, segment.StrategySimRankPP) }
func BenchmarkFig3ModularityConn(b *testing.B)  { benchSegment(b, segment.StrategyModularityConn) }
func BenchmarkFig3ModularityBytes(b *testing.B) { benchSegment(b, segment.StrategyModularityBytes) }

// --- Figures 4/5: adjacency matrices, heatmaps and drift -------------------

func BenchmarkFig4Heatmap(b *testing.B) {
	loadFixtures(b)
	adj := fixK8s.graph.AdjacencyMatrix(graph.Bytes)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if out := heatmap.ASCII(adj.M, adj.N, 64); len(out) == 0 {
			b.Fatal("empty render")
		}
	}
}

func BenchmarkFig5Diff(b *testing.B) {
	loadFixtures(b)
	g := fixK8s.graph
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d := graph.Diff(g, g)
		if d.ByteChange != 0 {
			b.Fatal("self diff nonzero")
		}
	}
}

// --- Figure 6: CCDF ---------------------------------------------------------

func BenchmarkFig6CCDF(b *testing.B) {
	loadFixtures(b)
	g := fixK8s.graph
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if pts := summarize.CCDF(g, graph.Bytes); len(pts) == 0 {
			b.Fatal("empty curve")
		}
	}
}

// --- §2.2: PCA reconstruction ----------------------------------------------

func BenchmarkPCAReconstruction(b *testing.B) {
	loadFixtures(b)
	adj := fixK8s.graph.AdjacencyMatrix(graph.Bytes)
	p, err := matrix.NewPCA(adj.Symmetrized(), adj.N)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = p.ReconErr(25)
	}
}

func BenchmarkPCADecompose(b *testing.B) {
	loadFixtures(b)
	adj := fixK8s.graph.AdjacencyMatrix(graph.Bytes)
	sym := adj.Symmetrized()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := matrix.NewPCA(sym, adj.N); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Figure 7: NIC flow table ------------------------------------------------

func BenchmarkNICFlowTable(b *testing.B) {
	v := nicsim.NewVNIC(netip.MustParseAddr("10.0.0.1"), 4*time.Minute)
	remote := netip.AddrPortFrom(netip.MustParseAddr("203.0.113.1"), 443)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		v.Observe(uint16(30000+i%1000), remote, 1, 1, 1460, 60, benchStart)
	}
}

func BenchmarkNICHostPull(b *testing.B) {
	h := nicsim.NewHost(4 * time.Minute)
	for vm := 0; vm < 16; vm++ {
		v := h.PlaceVM(netip.AddrFrom4([4]byte{10, 0, 0, byte(vm + 1)}))
		for f := 0; f < 200; f++ {
			v.Observe(uint16(30000+f), netip.AddrPortFrom(netip.MustParseAddr("203.0.113.1"), 443), 1, 1, 100, 100, benchStart)
		}
	}
	sink := nicsim.CollectorFunc(func([]flowlog.Record) error { return nil })
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := h.Pull(benchStart, sink); err != nil {
			b.Fatal(err)
		}
		// Re-touch one flow per VM so subsequent pulls emit records.
		for _, addr := range h.VMs() {
			h.VNIC(addr).Observe(30000, netip.AddrPortFrom(netip.MustParseAddr("203.0.113.1"), 443), 1, 1, 100, 100, benchStart)
		}
	}
}

// --- Figure 8: analytics ingest throughput -----------------------------------

func benchPipeline(b *testing.B, workers, batch int) {
	loadFixtures(b)
	recs := fixK8s.records
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p := ingest.NewPipeline(workers, graph.BuilderOptions{Facet: graph.FacetIP})
		for off := 0; off < len(recs); off += batch {
			end := off + batch
			if end > len(recs) {
				end = len(recs)
			}
			p.Ingest(recs[off:end])
		}
		g, _ := p.Close()
		if g.NumNodes() == 0 {
			b.Fatal("empty result")
		}
	}
	b.ReportMetric(float64(len(recs)*b.N)/b.Elapsed().Seconds(), "records/s")
}

func BenchmarkAnalyticsIngest1Worker(b *testing.B)  { benchPipeline(b, 1, 8192) }
func BenchmarkAnalyticsIngest4Workers(b *testing.B) { benchPipeline(b, 4, 8192) }

// BenchmarkEngineIngestSharded drives the engine's sharded hot path from
// GOMAXPROCS concurrent ingesters — the analytics-server picture, where
// every client connection calls Engine.Ingest directly. With one shard all
// of them serialize on one lock; with more shards throughput scales until
// the hardware runs out.
func BenchmarkEngineIngestSharded(b *testing.B) {
	loadFixtures(b)
	recs := fixK8s.records
	const batch = 4096
	for _, shards := range []int{1, 4, 8} {
		b.Run(fmt.Sprintf("shards=%d", shards), func(b *testing.B) {
			e := core.NewEngine(core.Config{Window: time.Hour, Shards: shards})
			var off atomic.Int64
			b.ReportAllocs()
			b.ResetTimer()
			b.RunParallel(func(pb *testing.PB) {
				for pb.Next() {
					i := int(off.Add(1)-1) * batch % len(recs)
					end := i + batch
					if end > len(recs) {
						end = len(recs)
					}
					e.Ingest(recs[i:end])
				}
			})
			b.StopTimer()
			if len(e.Flush()) == 0 {
				b.Fatal("no windows completed")
			}
			b.ReportMetric(float64(int64(batch)*int64(b.N))/b.Elapsed().Seconds(), "records/s")
		})
	}
}

// BenchmarkEngineIngestTelemetry measures the telemetry tax on the engine's
// ingest hot path: the same single-goroutine batch stream with the registry
// disabled and enabled. The instrumented path must stay within a few
// percent of baseline — the handles are preallocated and lock-free, so the
// per-batch cost is a handful of atomic adds
// (TestTelemetryOverheadWithinBudget enforces the budget).
func BenchmarkEngineIngestTelemetry(b *testing.B) {
	loadFixtures(b)
	recs := fixK8s.records
	const batch = 4096
	run := func(b *testing.B, reg *telemetry.Registry) {
		e := core.NewEngine(core.Config{Window: time.Hour, Shards: 4, Telemetry: reg})
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			off := i * batch % len(recs)
			end := off + batch
			if end > len(recs) {
				end = len(recs)
			}
			e.Ingest(recs[off:end])
		}
		b.StopTimer()
		if len(e.Flush()) == 0 {
			b.Fatal("no windows completed")
		}
		b.ReportMetric(float64(int64(batch)*int64(b.N))/b.Elapsed().Seconds(), "records/s")
	}
	b.Run("telemetry=off", func(b *testing.B) { run(b, nil) })
	b.Run("telemetry=on", func(b *testing.B) { run(b, telemetry.NewRegistry()) })
}

// BenchmarkEngineIngestWatermarks measures the watermark-accounting tax on
// the engine's ingest hot path: tracker off versus on (with an SLO-tracked
// stage riding a bus consumer, the cloudgraphd shape). Per window the cost
// is one ring store plus two CAS-max bumps on seal, and one CAS loop per
// stage advance — all off the per-record path, so the ratio must stay
// within the same ≤10% budget as telemetry
// (TestTelemetryOverheadWithinBudget's watermarks gate enforces it).
func BenchmarkEngineIngestWatermarks(b *testing.B) {
	loadFixtures(b)
	recs := fixK8s.records
	const batch = 4096
	run := func(b *testing.B, wm *watermark.Tracker) {
		cfg := core.Config{Window: time.Hour, Shards: 4, Watermarks: wm}
		if wm != nil {
			st := wm.Stage("analyzed.bench", true)
			cfg.Consumers = []core.ConsumerSpec{{
				Name: "bench",
				Fn:   func(epoch uint64, _ *graph.Graph) { st.Advance(epoch) },
			}}
		}
		e := core.NewEngine(cfg)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			off := i * batch % len(recs)
			end := off + batch
			if end > len(recs) {
				end = len(recs)
			}
			e.Ingest(recs[off:end])
		}
		b.StopTimer()
		if len(e.Flush()) == 0 {
			b.Fatal("no windows completed")
		}
		e.Close()
		b.ReportMetric(float64(int64(batch)*int64(b.N))/b.Elapsed().Seconds(), "records/s")
	}
	b.Run("watermarks=off", func(b *testing.B) { run(b, nil) })
	b.Run("watermarks=on", func(b *testing.B) {
		run(b, watermark.New(watermark.Config{FreshnessTarget: 5 * time.Second}))
	})
}

// BenchmarkEngineIngestTracing measures the tracing tax on the engine's
// ingest hot path at the three operating points: no tracer at all, a
// tracer attached with sampling off (the production default — the cost is
// the nil-safe branches plus one len check per batch), and 1-in-1024
// sampling (the recommended live rate; sampled records pay for span
// recording, the rest pay one compare). Contexts arrive precomputed and
// parallel to the batch, matching how the analytics server hands them to
// IngestTraced off the wire.
func BenchmarkEngineIngestTracing(b *testing.B) {
	loadFixtures(b)
	recs := fixK8s.records
	const batch = 4096
	run := func(b *testing.B, tr *trace.Tracer, tcs []trace.Context) {
		e := core.NewEngine(core.Config{Window: time.Hour, Shards: 4, Trace: tr})
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			off := i * batch % len(recs)
			end := off + batch
			if end > len(recs) {
				end = len(recs)
			}
			if tcs == nil {
				e.IngestTraced(recs[off:end], nil)
			} else {
				e.IngestTraced(recs[off:end], tcs[off:end])
			}
		}
		b.StopTimer()
		if len(e.Flush()) == 0 {
			b.Fatal("no windows completed")
		}
		b.ReportMetric(float64(int64(batch)*int64(b.N))/b.Elapsed().Seconds(), "records/s")
	}
	b.Run("tracing=off", func(b *testing.B) { run(b, nil, nil) })
	b.Run("sample=0", func(b *testing.B) {
		run(b, trace.New(trace.Options{}), nil)
	})
	b.Run("sample=1in1024", func(b *testing.B) {
		s := trace.NewSampler(1024, 1)
		tcs := make([]trace.Context, len(recs))
		for i := range tcs {
			tcs[i] = s.Next()
		}
		run(b, trace.New(trace.Options{SampleEvery: 1024, Seed: 1}), tcs)
	})
}

// BenchmarkEngineIngestConsumers measures the consumer-bus tax on the
// ingest hot path: the same batch stream with no consumers versus the
// full analysis plane (timeline plus all four runners) attached. The bus
// publishes on window close and each consumer runs on its own goroutine
// behind a drop-oldest buffer, so the attached configuration must track
// the bare one — the slow-consumer policy exists precisely so analyses
// never tax the merge path (TestTelemetryOverheadWithinBudget enforces
// the 10% budget).
func BenchmarkEngineIngestConsumers(b *testing.B) {
	loadFixtures(b)
	recs := fixK8s.records
	const batch = 4096
	run := func(b *testing.B, cons []core.ConsumerSpec) {
		e := core.NewEngine(core.Config{Window: time.Hour, Shards: 4, Consumers: cons})
		defer e.Close()
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			off := i * batch % len(recs)
			end := off + batch
			if end > len(recs) {
				end = len(recs)
			}
			e.Ingest(recs[off:end])
		}
		b.StopTimer()
		if len(e.Flush()) == 0 {
			b.Fatal("no windows completed")
		}
		b.ReportMetric(float64(int64(batch)*int64(b.N))/b.Elapsed().Seconds(), "records/s")
	}
	b.Run("consumers=off", func(b *testing.B) { run(b, nil) })
	b.Run("consumers=plane", func(b *testing.B) {
		run(b, runner.New(runner.Config{}).Consumers())
	})
}

// BenchmarkEngineIngestDecode measures the full INGEST path the analytics
// server runs per batch — wire frames decoded with flowlog.ReadBatch into
// one reused record buffer, handed straight to Engine.Ingest — and so pins
// the zero-alloc decode claim where it matters: allocs/op on this benchmark
// is the per-batch garbage of the hot path (the engine borrows the batch
// only for the call, so one buffer serves the whole stream).
func BenchmarkEngineIngestDecode(b *testing.B) {
	loadFixtures(b)
	recs := fixK8s.records
	var wire []byte
	for _, r := range recs {
		wire = flowlog.AppendBinary(wire, r)
	}
	const batch = 4096
	e := core.NewEngine(core.Config{Window: time.Hour, Shards: 4})
	src := bytes.NewReader(wire)
	rd := flowlog.NewReader(src)
	buf := make([]flowlog.Record, batch)
	var total int64
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		src.Reset(wire)
		rd.Reset(src)
		for {
			n, err := rd.ReadBatch(buf)
			if n > 0 {
				e.Ingest(buf[:n])
				total += int64(n)
			}
			if err != nil {
				break
			}
		}
	}
	b.StopTimer()
	if len(e.Flush()) == 0 {
		b.Fatal("no windows completed")
	}
	b.ReportMetric(float64(total)/b.Elapsed().Seconds(), "records/s")
}

// --- §2.1 rules: policy compilation -------------------------------------------

func BenchmarkPolicyCompile(b *testing.B) {
	loadFixtures(b)
	g := fixK8s.graph
	assign, err := segment.Run(segment.StrategyJaccardLouvain, g, segment.Options{})
	if err != nil {
		b.Fatal(err)
	}
	r := policy.Learn(g, assign)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ip := r.CompileIPRules(1000)
		tags := r.CompileTagRules(1000)
		if ip.Total == 0 || tags.Total == 0 {
			b.Fatal("empty compilation")
		}
	}
}

// --- §2.1 higher-order policies -------------------------------------------------

func BenchmarkMonitorEvaluate(b *testing.B) {
	loadFixtures(b)
	g := fixK8s.graph
	assign, err := segment.Run(segment.StrategyJaccardLouvain, g, segment.Options{})
	if err != nil {
		b.Fatal(err)
	}
	r := policy.Learn(g, assign)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		policy.SimilarityPolicy{R: r}.Evaluate(g)
		policy.ProportionalityPolicy{R: r}.Evaluate(g, g)
	}
}

// --- Ablations (DESIGN.md) ------------------------------------------------------

// BenchmarkAblationCollapse sweeps the heavy-hitter threshold: collapse
// cost and resulting graph size trade off against completeness.
func BenchmarkAblationCollapse(b *testing.B) {
	loadFixtures(b)
	full := graph.Build(fixK8s.records, graph.BuilderOptions{Facet: graph.FacetIP})
	for _, th := range []float64{0.0001, 0.001, 0.01} {
		b.Run(thName(th), func(b *testing.B) {
			var nodes int
			for i := 0; i < b.N; i++ {
				c := full.Collapse(graph.CollapseOptions{Threshold: th})
				nodes = c.NumNodes()
			}
			b.ReportMetric(float64(nodes), "nodes")
		})
	}
}

func thName(th float64) string {
	switch th {
	case 0.0001:
		return "threshold=0.01pct"
	case 0.001:
		return "threshold=0.1pct"
	default:
		return "threshold=1pct"
	}
}

// BenchmarkAblationMinhash compares exact Jaccard scoring against the
// MinHash sketch — the paper's open issue about super-quadratic cost.
func BenchmarkAblationMinhash(b *testing.B) {
	loadFixtures(b)
	g := fixK8s.graph
	b.Run("exact", func(b *testing.B) { benchSegmentOn(b, g, segment.StrategyJaccardLouvain) })
	b.Run("minhash", func(b *testing.B) { benchSegmentOn(b, g, segment.StrategyMinHashLouvain) })
}

func benchSegmentOn(b *testing.B, g *graph.Graph, s segment.Strategy) {
	for i := 0; i < b.N; i++ {
		if _, err := segment.Run(s, g, segment.Options{}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationBatch sweeps the ingest minibatch size.
func BenchmarkAblationBatch(b *testing.B) {
	for _, batch := range []int{256, 4096, 65536} {
		b.Run(batchName(batch), func(b *testing.B) { benchPipeline(b, 4, batch) })
	}
}

func batchName(n int) string {
	switch n {
	case 256:
		return "batch=256"
	case 4096:
		return "batch=4k"
	default:
		return "batch=64k"
	}
}

// BenchmarkAblationResolution sweeps the Louvain resolution parameter —
// the knob for the paper's open question about segmentation granularity.
func BenchmarkAblationResolution(b *testing.B) {
	loadFixtures(b)
	g := fixK8s.graph
	for _, gamma := range []float64{0.5, 1, 2, 4} {
		b.Run(gammaName(gamma), func(b *testing.B) {
			var segs int
			for i := 0; i < b.N; i++ {
				a, err := segment.Run(segment.StrategyJaccardLouvain, g, segment.Options{Resolution: gamma})
				if err != nil {
					b.Fatal(err)
				}
				segs = a.NumSegments()
			}
			b.ReportMetric(float64(segs), "segments")
		})
	}
}

func gammaName(g float64) string {
	switch g {
	case 0.5:
		return "gamma=0.5"
	case 1:
		return "gamma=1"
	case 2:
		return "gamma=2"
	default:
		return "gamma=4"
	}
}
