// Breach detection walkthrough: run the µserviceBench shopping site
// cleanly for several hours, then let an attacker loose — port scan,
// lateral movement, bulk exfiltration and a C2 beacon — and watch the
// dynamic communication graphs expose each stage.
package main

import (
	"fmt"
	"log"
	"net/netip"
	"time"

	"cloudgraph"
	"cloudgraph/internal/cluster"
	"cloudgraph/internal/summarize"
)

func main() {
	log.SetFlags(0)
	spec, err := cloudgraph.Preset("microservicebench", 0.2)
	if err != nil {
		log.Fatal(err)
	}
	cl, err := cloudgraph.NewCluster(spec)
	if err != nil {
		log.Fatal(err)
	}
	start := time.Date(2024, 3, 1, 0, 0, 0, 0, time.UTC)
	engine := cloudgraph.NewEngine(cloudgraph.EngineConfig{Window: time.Hour})

	// Four clean hours.
	if _, err := cl.Run(start, 4*60, engine); err != nil {
		log.Fatal(err)
	}

	// Hour five: the attacker, having breached the payment service,
	// works through the classic kill chain.
	h5 := start.Add(4 * time.Hour)
	c2 := netip.MustParseAddr("198.51.100.66")
	cl.AddAttack(cluster.PortScan{
		AttackerRole: "payment", AttackerIdx: 0, TargetRole: "redis",
		PortsPerMin: 30, Start: h5, Duration: 20 * time.Minute,
	})
	cl.AddAttack(cluster.LateralMovement{
		AttackerRole: "payment", AttackerIdx: 0, TargetRole: "redis",
		FlowsPerMin: 5, Bytes: 32 << 10, Start: h5.Add(20 * time.Minute), Duration: 20 * time.Minute,
	})
	cl.AddAttack(cluster.Exfiltration{
		SourceRole: "payment", SourceIdx: 0, Destination: c2,
		BytesPerMin: 120_000_000, Start: h5.Add(40 * time.Minute), Duration: 20 * time.Minute,
	})
	cl.AddAttack(cluster.Beacon{
		SourceRole: "payment", SourceIdx: 0, C2: c2, Period: 5 * time.Minute,
		Bytes: 400, Start: h5, Duration: time.Hour,
	})
	if _, err := cl.Run(h5, 60, engine); err != nil {
		log.Fatal(err)
	}

	windows := engine.Flush()
	fmt.Printf("collected %d hourly graphs (%d records total)\n", len(windows), engine.Cost().Records)

	// Learn the policy on hour one; the attacker cannot tamper with the
	// telemetry that exposes it (§3.1).
	if _, err := engine.Learn(windows[0]); err != nil {
		log.Fatal(err)
	}

	fmt.Println("\nhour  violations  alerts  drift    anomalous")
	scores := engine.Anomalies(summarize.AnomalyOptions{Sigma: 3, MinHistory: 2})
	for i, g := range windows {
		rep := engine.Monitor(g)
		fmt.Printf("%4d  %10d  %6d  %.4f   %v\n", i+1, len(rep.Violations), rep.Alerts, scores[i].Drift, scores[i].Anomalous)
	}

	// Zoom into the attack hour: what exactly fired?
	rep := engine.Monitor(windows[len(windows)-1])
	fmt.Println("\nattack-hour evidence:")
	for _, cchange := range rep.Cohorts {
		status := "ALERT"
		if cchange.Suppressed {
			status = "suppressed (uniform cohort change)"
		}
		fmt.Printf("- segment pair %d-%d: %d new flows, %s\n",
			cchange.Pair.A, cchange.Pair.B, len(cchange.Violations), status)
	}
	d := cloudgraph.Summarize(windows[len(windows)-1])
	fmt.Println("\nexecutive summary of the attack hour:", d.Headline)
}
