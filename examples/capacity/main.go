// Capacity-planning walkthrough (§2.3): turn connection summaries into
// flow-size and inter-arrival distributions, find the communication
// bottlenecks of the KQuery analytics cluster, model how flow completion
// times degrade as hot nodes saturate, and print a concrete plan — SKU
// upgrades and proximity groups.
package main

import (
	"fmt"
	"log"
	"time"

	"cloudgraph"
)

func main() {
	log.SetFlags(0)
	spec, err := cloudgraph.Preset("kquery", 0.08)
	if err != nil {
		log.Fatal(err)
	}
	cl, err := cloudgraph.NewCluster(spec)
	if err != nil {
		log.Fatal(err)
	}
	start := time.Date(2024, 3, 1, 12, 0, 0, 0, time.UTC)
	recs, err := cl.CollectHour(start)
	if err != nil {
		log.Fatal(err)
	}
	g := cloudgraph.BuildGraph(recs, cloudgraph.GraphOptions{})
	fmt.Printf("KQuery hour: %d records, %d nodes, %d edges\n", len(recs), g.NumNodes(), g.NumEdges())

	// Distributions, quantized to the one-minute summary frequency.
	sizes := cloudgraph.FlowSizes(recs)
	gaps := cloudgraph.InterArrivals(recs, time.Minute)
	fmt.Printf("\nflow sizes:     p50 %.0f B, p90 %.0f B, p99 %.0f B (mean %.0f over %d flows)\n",
		sizes.Quantile(0.5), sizes.Quantile(0.9), sizes.Quantile(0.99), sizes.Mean(), sizes.N())
	fmt.Printf("inter-arrivals: p50 %.0fs, p99 %.0fs\n", gaps.Quantile(0.5), gaps.Quantile(0.99))

	// What happens to flow completion times as a worker saturates?
	fmt.Println("\nFCT model on a 10 Gbps (1.25 GB/s) VM NIC:")
	for _, rho := range []float64{0.0, 0.5, 0.8, 0.95} {
		m := cloudgraph.FCTModel{CapacityBps: 1.25e9, Rho: rho}
		fcts := m.FCTQuantiles(sizes, []float64{0.5, 0.99})
		fmt.Printf("  util %.0f%%: p50 FCT %v, p99 FCT %v (slowdown %.1fx)\n",
			100*rho, fcts[0].Round(time.Microsecond), fcts[1].Round(time.Microsecond), m.Slowdown())
	}

	// Where to invest more capacity (Figure 6 made actionable).
	pts := cloudgraph.CCDF(g, cloudgraph.Bytes)
	fmt.Printf("\ntraffic concentration: top 1%% of nodes carry %.0f%% of bytes\n",
		100*(1-ccdfAt(pts, 0.01)))

	const perVMCapacity = 2e9 // bytes/min a current-SKU VM handles comfortably
	plan := cloudgraph.PlanCapacity(g, perVMCapacity, 0.7, 5)
	fmt.Printf("\nplan: %d SKU upgrade candidate(s)\n", len(plan.Upgrades))
	for i, u := range plan.Upgrades {
		if i == 5 {
			fmt.Printf("  … and %d more\n", len(plan.Upgrades)-5)
			break
		}
		fmt.Printf("  upgrade %-20s %.2f GB/min (%.0f%% of SKU)\n", u.Node, u.BytesPerMin/1e9, 100*u.Utilization)
	}
	fmt.Println("proximity-group candidates (co-locate to cut cross-zone bytes):")
	for _, e := range plan.Proximity {
		fmt.Printf("  %-20s <-> %-20s %.2f GB/hr\n", e.A, e.B, float64(e.Bytes)/1e9)
	}
}

func ccdfAt(pts []cloudgraph.CCDFPoint, frac float64) float64 {
	for _, p := range pts {
		if p.Fraction >= frac {
			return p.CCDF
		}
	}
	return 0
}
