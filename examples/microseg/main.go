// Microsegmentation walkthrough: compare every auto-segmentation strategy
// from the paper on the same graph (Figures 1 and 3), then show what the
// winning segmentation buys operationally — blast radius, rule tables with
// and without tags, and live violation monitoring across hours.
package main

import (
	"fmt"
	"log"
	"time"

	"cloudgraph"
)

func main() {
	log.SetFlags(0)
	spec, err := cloudgraph.Preset("k8spaas", 0.3)
	if err != nil {
		log.Fatal(err)
	}
	cl, err := cloudgraph.NewCluster(spec)
	if err != nil {
		log.Fatal(err)
	}
	start := time.Date(2024, 3, 1, 0, 0, 0, 0, time.UTC)

	// Two hours of traffic through the streaming engine: hour one to
	// learn, hour two to monitor.
	engine := cloudgraph.NewEngine(cloudgraph.EngineConfig{Window: time.Hour})
	if _, err := cl.Run(start, 120, engine); err != nil {
		log.Fatal(err)
	}
	windows := engine.Flush()
	baseline, nextHour := windows[0], windows[1]

	// Figure 1 vs Figure 3: same graph, five strategies, quality vs the
	// generator's ground-truth roles.
	truth := cl.GroundTruth()
	fmt.Println("strategy            segments   ARI     NMI     purity")
	for _, s := range []cloudgraph.Strategy{
		cloudgraph.JaccardLouvain, cloudgraph.MinHashLouvain,
		cloudgraph.ModularityConn, cloudgraph.ModularityBytes,
	} {
		assign, err := cloudgraph.SegmentWith(s, baseline, cloudgraph.SegmentOptions{})
		if err != nil {
			log.Fatal(err)
		}
		q := cloudgraph.ScoreSegmentation(assign, truth)
		fmt.Printf("%-19s %8d   %.3f   %.3f   %.3f\n", s, assign.NumSegments(), q.ARI, q.NMI, q.Purity)
	}

	// Operationalize the paper's method.
	assign, err := cloudgraph.Segment(baseline, cloudgraph.SegmentOptions{})
	if err != nil {
		log.Fatal(err)
	}
	pol := cloudgraph.LearnPolicy(baseline, assign)
	fmt.Printf("\nblast radius: %.1f mean reachable resources after a breach (unsegmented: %d)\n",
		pol.MeanBlastRadius(), len(assign)-1)
	ip := pol.CompileIPRules(1000)
	tags := pol.CompileTagRules(1000)
	fmt.Printf("rule tables:  per-IP total=%d max/VM=%d over-limit=%d | tags total=%d max/VM=%d\n",
		ip.Total, ip.Max, ip.OverLimit, tags.Total, tags.Max)

	// Monitor the next hour against the learned policy.
	if _, err := engine.Learn(baseline); err != nil {
		log.Fatal(err)
	}
	rep := engine.Monitor(nextHour)
	fmt.Printf("hour 2 check: %d raw violations, %d alerts after similarity filtering\n",
		len(rep.Violations), rep.Alerts)
	flagged := 0
	for _, pg := range rep.Growth {
		if pg.Flagged {
			flagged++
		}
	}
	fmt.Printf("proportionality: %d segment pair(s) with anomalous growth\n", flagged)
}
