// Analytics-service walkthrough (Figure 8): run the SaaS-style analytics
// endpoint in-process, stream two hours of telemetry to it over TCP exactly
// as host agents would, and drive the operator workflow — stats, learn,
// monitor, summary, anomalies — through the wire protocol.
package main

import (
	"fmt"
	"log"
	"time"

	"cloudgraph"
	"cloudgraph/internal/analytics"
	"cloudgraph/internal/core"
)

func main() {
	log.SetFlags(0)

	// Start the service on an ephemeral port.
	srv, err := analytics.Serve("127.0.0.1:0", core.Config{Window: time.Hour})
	if err != nil {
		log.Fatal(err)
	}
	defer srv.Close()
	fmt.Println("analytics service listening on", srv.Addr())

	// A telemetry source: the µserviceBench cluster.
	spec, err := cloudgraph.Preset("microservicebench", 0.15)
	if err != nil {
		log.Fatal(err)
	}
	cl, err := cloudgraph.NewCluster(spec)
	if err != nil {
		log.Fatal(err)
	}

	client, err := analytics.Dial(srv.Addr())
	if err != nil {
		log.Fatal(err)
	}
	defer client.Close()

	// Stream two hours of summaries in agent-sized batches.
	start := time.Date(2024, 3, 1, 8, 0, 0, 0, time.UTC)
	for h := 0; h < 2; h++ {
		recs, err := cl.CollectHour(start.Add(time.Duration(h) * time.Hour))
		if err != nil {
			log.Fatal(err)
		}
		const batch = 8192
		for i := 0; i < len(recs); i += batch {
			end := i + batch
			if end > len(recs) {
				end = len(recs)
			}
			if err := client.Ingest(recs[i:end]); err != nil {
				log.Fatal(err)
			}
		}
		fmt.Printf("hour %d: streamed %d records\n", h+1, len(recs))
	}
	if _, err := client.Flush(); err != nil {
		log.Fatal(err)
	}

	// Operator workflow over the protocol.
	stats, err := client.Stats()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("server state: %d records across %d windows (%.0f rec/s ingest)\n",
		stats.Records, stats.Windows, stats.RecordsPerSec)

	learn, err := client.Learn()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("learned baseline: %d µsegments, %d allowed pairs\n", learn.Segments, learn.AllowedPairs)

	mon, err := client.Monitor()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("monitor: %d violations, %d alerts\n", mon.Violations, mon.Alerts)

	sum, err := client.Summary()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("summary:", sum.Headline)
	fmt.Println("attribution:", sum.Attribution)

	anomalies, err := client.Anomalies()
	if err != nil {
		log.Fatal(err)
	}
	for _, a := range anomalies {
		fmt.Printf("window %d: drift %.3f (anomalous=%v)\n", a.Window, a.Drift, a.Anomalous)
	}
}
