// Quickstart: generate one hour of synthetic cloud telemetry, build the
// communication graph, infer roles, learn a default-deny policy and print
// the executive summary — the whole paper pipeline in ~40 lines of API.
package main

import (
	"fmt"
	"log"
	"time"

	"cloudgraph"
)

func main() {
	log.SetFlags(0)

	// 1. Stand up a synthetic K8s-as-a-service cluster (a scaled-down
	//    version of the paper's default dataset) and collect one hour of
	//    connection summaries through the simulated smartNIC path.
	spec, err := cloudgraph.Preset("k8spaas", 0.2)
	if err != nil {
		log.Fatal(err)
	}
	cl, err := cloudgraph.NewCluster(spec)
	if err != nil {
		log.Fatal(err)
	}
	start := time.Date(2024, 3, 1, 9, 0, 0, 0, time.UTC)
	recs, err := cl.CollectHour(start)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("telemetry: %d connection summaries from %d monitored VMs (%d records/min)\n",
		len(recs), cl.MonitoredIPs(), len(recs)/60)

	// 2. Build the hourly IP communication graph, collapsing remote IPs
	//    below 0.1% of traffic into one node (§3.2).
	g := cloudgraph.BuildGraph(recs, cloudgraph.GraphOptions{
		CollapseThreshold: 0.001,
		Keep:              func(n cloudgraph.Node) bool { return cl.Monitored(n.Addr) },
	})
	stats := g.ComputeStats()
	fmt.Printf("graph: %d nodes, %d edges, density %.4f\n", stats.Nodes, stats.Edges, stats.Density)

	// 3. Infer roles with the paper's Jaccard + Louvain segmentation and
	//    score against the generator's ground truth.
	assign, err := cloudgraph.Segment(g, cloudgraph.SegmentOptions{})
	if err != nil {
		log.Fatal(err)
	}
	q := cloudgraph.ScoreSegmentation(assign, cl.GroundTruth())
	fmt.Printf("segmentation: %d µsegments (purity %.2f, NMI %.2f vs ground-truth roles)\n",
		assign.NumSegments(), q.Purity, q.NMI)

	// 4. Learn the default-deny reachability policy and quantify the
	//    blast-radius win.
	pol := cloudgraph.LearnPolicy(g, assign)
	fmt.Printf("policy: %d allowed segment pairs; mean blast radius %.1f of %d resources (unsegmented: %d)\n",
		len(pol.AllowedPairs()), pol.MeanBlastRadius(), len(assign), len(assign)-1)
	ip := pol.CompileIPRules(0)
	tags := pol.CompileTagRules(0)
	fmt.Printf("rules: %d per-IP vs %d with dynamic tags (max/VM: %d vs %d)\n",
		ip.Total, tags.Total, ip.Max, tags.Max)

	// 5. Succinct summary: what is this network doing?
	fmt.Println("summary:", cloudgraph.Summarize(g).Headline)
}
