//go:build race

package cloudgraph

// raceEnabled reports whether the race detector is compiled in; timing
// gates skip under it because instrumentation skews ratios unpredictably.
const raceEnabled = true
