package cloudgraph

import (
	"testing"
	"time"

	"cloudgraph/internal/core"
	"cloudgraph/internal/graph"
	"cloudgraph/internal/runner"
	"cloudgraph/internal/telemetry"
	"cloudgraph/internal/trace"
	"cloudgraph/internal/watermark"
)

// ingestOnce streams the fixture through a fresh engine in fixed batches
// and returns the wall time of the ingest calls alone.
func ingestOnce(tb testing.TB, reg *telemetry.Registry, tr *trace.Tracer, cons []core.ConsumerSpec, wm *watermark.Tracker) time.Duration {
	tb.Helper()
	const batch = 4096
	e := core.NewEngine(core.Config{Window: time.Hour, Shards: 4, Telemetry: reg, Trace: tr, Consumers: cons, Watermarks: wm})
	defer e.Close()
	recs := fixK8s.records
	start := time.Now()
	for off := 0; off < len(recs); off += batch {
		end := off + batch
		if end > len(recs) {
			end = len(recs)
		}
		e.Ingest(recs[off:end])
	}
	elapsed := time.Since(start)
	if len(e.Flush()) == 0 {
		tb.Fatal("no windows completed")
	}
	return elapsed
}

// TestTelemetryOverheadWithinBudget is the benchmark acceptance gate in
// test form: the instrumented ingest hot path must stay within a few
// percent of the uninstrumented one, for every attachable layer —
// telemetry (registry attached), tracing (tracer attached, sampling off,
// the production default) and the analysis plane (timeline plus all four
// runners riding the consumer bus). Telemetry handles are preallocated
// and the per-batch cost is a handful of atomic adds; the disabled
// tracing path is a nil/len check per batch; bus consumers run on their
// own goroutines behind drop-oldest buffers, so publish never blocks the
// merge path. The true overhead of each is well under the ISSUE's
// budgets; the gate allows 10% so scheduler noise on loaded CI machines
// doesn't flake, with best-of-5 trials per configuration and up to 3
// attempts.
func TestTelemetryOverheadWithinBudget(t *testing.T) {
	if testing.Short() {
		t.Skip("timing gate; skipped in -short")
	}
	if raceEnabled {
		t.Skip("timing gate; race instrumentation skews ratios")
	}
	loadFixtures(t)
	ingestOnce(t, nil, nil, nil, nil) // warm caches before timing

	best := func(reg *telemetry.Registry, tr *trace.Tracer, cons []core.ConsumerSpec, wm *watermark.Tracker) time.Duration {
		min := time.Duration(1<<63 - 1)
		for i := 0; i < 5; i++ {
			if d := ingestOnce(t, reg, tr, cons, wm); d < min {
				min = d
			}
		}
		return min
	}
	// watermarkedEngine is the cloudgraphd shape: tracker with an SLO
	// target plus one SLO-tracked stage advancing on the consumer bus.
	watermarkedEngine := func() (*watermark.Tracker, []core.ConsumerSpec) {
		wm := watermark.New(watermark.Config{FreshnessTarget: 5 * time.Second})
		st := wm.Stage("analyzed.gate", true)
		return wm, []core.ConsumerSpec{{
			Name: "gate",
			Fn:   func(epoch uint64, _ *graph.Graph) { st.Advance(epoch) },
		}}
	}
	const budget = 1.10
	gates := []struct {
		name string
		reg  func() *telemetry.Registry
		tr   func() *trace.Tracer
		cons func() []core.ConsumerSpec
		wm   func() *watermark.Tracker
	}{
		{"telemetry", func() *telemetry.Registry { return telemetry.NewRegistry() }, func() *trace.Tracer { return nil }, func() []core.ConsumerSpec { return nil }, func() *watermark.Tracker { return nil }},
		{"tracing-disabled", func() *telemetry.Registry { return nil }, func() *trace.Tracer { return trace.New(trace.Options{}) }, func() []core.ConsumerSpec { return nil }, func() *watermark.Tracker { return nil }},
		{"analysis-plane", func() *telemetry.Registry { return nil }, func() *trace.Tracer { return nil },
			func() []core.ConsumerSpec { return runner.New(runner.Config{}).Consumers() }, func() *watermark.Tracker { return nil }},
		{"watermarks", func() *telemetry.Registry { return nil }, func() *trace.Tracer { return nil },
			nil, nil}, // filled below: tracker and consumer are built together
	}
	for _, gate := range gates {
		var ratio float64
		ok := false
		for attempt := 1; attempt <= 3 && !ok; attempt++ {
			off := best(nil, nil, nil, nil)
			var on time.Duration
			if gate.cons == nil {
				wm, cons := watermarkedEngine()
				on = best(gate.reg(), gate.tr(), cons, wm)
			} else {
				on = best(gate.reg(), gate.tr(), gate.cons(), gate.wm())
			}
			ratio = float64(on) / float64(off)
			t.Logf("%s attempt %d: off %v, on %v, ratio %.3f", gate.name, attempt, off, on, ratio)
			ok = ratio <= budget
		}
		if !ok {
			t.Errorf("%s: instrumented ingest is %.1f%% slower than baseline, budget %.0f%%",
				gate.name, 100*(ratio-1), 100*(budget-1))
		}
	}
}
