package cloudgraph

import (
	"testing"
	"time"

	"cloudgraph/internal/core"
	"cloudgraph/internal/graph"
	"cloudgraph/internal/realm"
	"cloudgraph/internal/runner"
	"cloudgraph/internal/telemetry"
	"cloudgraph/internal/trace"
	"cloudgraph/internal/watermark"
)

// ingestOnce streams the fixture through a fresh engine in fixed batches
// and returns the wall time of the ingest calls alone.
func ingestOnce(tb testing.TB, reg *telemetry.Registry, tr *trace.Tracer, cons []core.ConsumerSpec, wm *watermark.Tracker) time.Duration {
	tb.Helper()
	const batch = 4096
	e := core.NewEngine(core.Config{Window: time.Hour, Shards: 4, Telemetry: reg, Trace: tr, Consumers: cons, Watermarks: wm})
	defer e.Close()
	recs := fixK8s.records
	start := time.Now()
	for off := 0; off < len(recs); off += batch {
		end := off + batch
		if end > len(recs) {
			end = len(recs)
		}
		e.Ingest(recs[off:end])
	}
	elapsed := time.Since(start)
	if len(e.Flush()) == 0 {
		tb.Fatal("no windows completed")
	}
	return elapsed
}

// tenantOnce streams the fixture through a one-tenant realm manager —
// the multi-tenant daemon's resting shape, with tenancy as the only
// extra layer over a bare engine: the DRR scheduler admits every batch
// (uncontended fast path) and the COGS meter accounts it.
func tenantOnce(tb testing.TB) time.Duration {
	tb.Helper()
	const batch = 4096
	m, err := realm.NewManager(realm.Config{Engine: core.Config{Window: time.Hour, Shards: 4}})
	if err != nil {
		tb.Fatal(err)
	}
	defer m.Close()
	r := m.Default()
	recs := fixK8s.records
	start := time.Now()
	for off := 0; off < len(recs); off += batch {
		end := off + batch
		if end > len(recs) {
			end = len(recs)
		}
		r.IngestTraced(recs[off:end], nil)
	}
	elapsed := time.Since(start)
	if r.Flush() == 0 {
		tb.Fatal("no windows completed")
	}
	return elapsed
}

// TestTelemetryOverheadWithinBudget is the benchmark acceptance gate in
// test form: the instrumented ingest hot path must stay within a few
// percent of the uninstrumented one, for every attachable layer —
// telemetry (registry attached), tracing (tracer attached, sampling off,
// the production default), the analysis plane (timeline plus all four
// runners riding the consumer bus) and tenancy (a one-tenant realm
// manager in front of the engine). Telemetry handles are preallocated
// and the per-batch cost is a handful of atomic adds; the disabled
// tracing path is a nil/len check per batch; bus consumers run on their
// own goroutines behind drop-oldest buffers, so publish never blocks the
// merge path; an uncontended scheduler admits in one mutex round trip
// per batch. The true overhead of each is well under the ISSUE's
// budgets; the gate allows 10% so scheduler noise on loaded CI machines
// doesn't flake, with best-of-5 trials per configuration and up to 3
// attempts.
func TestTelemetryOverheadWithinBudget(t *testing.T) {
	if testing.Short() {
		t.Skip("timing gate; skipped in -short")
	}
	if raceEnabled {
		t.Skip("timing gate; race instrumentation skews ratios")
	}
	loadFixtures(t)
	ingestOnce(t, nil, nil, nil, nil) // warm caches before timing

	best := func(reg *telemetry.Registry, tr *trace.Tracer, cons []core.ConsumerSpec, wm *watermark.Tracker) time.Duration {
		min := time.Duration(1<<63 - 1)
		for i := 0; i < 5; i++ {
			if d := ingestOnce(t, reg, tr, cons, wm); d < min {
				min = d
			}
		}
		return min
	}
	// watermarkedEngine is the cloudgraphd shape: tracker with an SLO
	// target plus one SLO-tracked stage advancing on the consumer bus.
	watermarkedEngine := func() (*watermark.Tracker, []core.ConsumerSpec) {
		wm := watermark.New(watermark.Config{FreshnessTarget: 5 * time.Second})
		st := wm.Stage("analyzed.gate", true)
		return wm, []core.ConsumerSpec{{
			Name: "gate",
			Fn:   func(epoch uint64, _ *graph.Graph) { st.Advance(epoch) },
		}}
	}
	bestTenant := func() time.Duration {
		min := time.Duration(1<<63 - 1)
		for i := 0; i < 5; i++ {
			if d := tenantOnce(t); d < min {
				min = d
			}
		}
		return min
	}
	const budget = 1.10
	gates := []struct {
		name string
		on   func() time.Duration
	}{
		{"telemetry", func() time.Duration { return best(telemetry.NewRegistry(), nil, nil, nil) }},
		{"tracing-disabled", func() time.Duration { return best(nil, trace.New(trace.Options{}), nil, nil) }},
		{"analysis-plane", func() time.Duration {
			return best(nil, nil, runner.New(runner.Config{}).Consumers(), nil)
		}},
		{"watermarks", func() time.Duration {
			wm, cons := watermarkedEngine()
			return best(nil, nil, cons, wm)
		}},
		{"tenancy", bestTenant},
	}
	for _, gate := range gates {
		var ratio float64
		ok := false
		for attempt := 1; attempt <= 3 && !ok; attempt++ {
			off := best(nil, nil, nil, nil)
			on := gate.on()
			ratio = float64(on) / float64(off)
			t.Logf("%s attempt %d: off %v, on %v, ratio %.3f", gate.name, attempt, off, on, ratio)
			ok = ratio <= budget
		}
		if !ok {
			t.Errorf("%s: instrumented ingest is %.1f%% slower than baseline, budget %.0f%%",
				gate.name, 100*(ratio-1), 100*(budget-1))
		}
	}
}
