module cloudgraph

go 1.22
