package cloudgraph

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http/httptest"
	"net/netip"
	"os"
	"path/filepath"
	"testing"
	"time"

	"cloudgraph/internal/core"
	"cloudgraph/internal/diag"
	"cloudgraph/internal/flowlog"
	"cloudgraph/internal/graph"
	"cloudgraph/internal/statusz"
	"cloudgraph/internal/watermark"
)

// TestStatuszStalledConsumerEndToEnd is the observability acceptance
// scenario: run an engine whose analysis consumer is deliberately slower
// than the freshness target, and verify the whole anomaly path fires —
// the stage watermark lags behind the seal mid-stream, the SLO burn
// counter increments, consecutive burns trip, and a diagnostic bundle
// lands on disk. /statusz is then checked against ground truth the test
// holds directly (engine epoch, watermark snapshot, bus stats).
//
// Set CLOUDGRAPH_E2E_KEEP_BUNDLE to a directory to copy the produced
// bundle there (CI uploads it as a workflow artifact).
func TestStatuszStalledConsumerEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("drives a multi-second stalled pipeline")
	}

	diagDir := t.TempDir()
	dm, err := diag.New(diag.Config{Dir: diagDir, MinGap: time.Millisecond, CPUProfile: 10 * time.Millisecond})
	if err != nil {
		t.Fatalf("diag.New: %v", err)
	}
	const target = 5 * time.Millisecond
	wm := watermark.New(watermark.Config{
		FreshnessTarget: target,
		Trip:            2,
		OnBurn: func(stage string, epoch, consecutive uint64) {
			dm.TriggerAsync(fmt.Sprintf("freshness SLO burn: stage %s %d windows behind target at epoch %d", stage, consecutive, epoch))
		},
	})
	stalled := wm.Stage("analyzed.stalled", true)

	// The stalled consumer takes 4x the freshness target per window and
	// rides a deliberately small buffer so the drop-oldest policy engages.
	e := core.NewEngine(core.Config{
		Window:     time.Minute,
		Shards:     4,
		Watermarks: wm,
		Consumers: []core.ConsumerSpec{{
			Name:   "analysis.stalled",
			Buffer: 8,
			Fn: func(epoch uint64, _ *graph.Graph) {
				time.Sleep(4 * target)
				stalled.Advance(epoch)
			},
		}},
	})
	defer e.Close()

	// Stream a tiny synthetic hour — two records per one-minute window —
	// so the seal rate depends on nothing but the ingest loop: ~60 epochs
	// burst out in microseconds while the consumer stalls 4x the target
	// per window, regardless of build mode (-race included).
	start := time.Unix(1700000000, 0).UTC().Truncate(time.Hour)
	a, b := netip.MustParseAddr("10.0.0.1"), netip.MustParseAddr("10.0.0.2")
	var recs []flowlog.Record
	for m := 0; m < 61; m++ {
		for s := 0; s < 2; s++ {
			recs = append(recs, flowlog.Record{
				Time:    start.Add(time.Duration(m)*time.Minute + time.Duration(s)*time.Second),
				LocalIP: a, LocalPort: 443, RemoteIP: b, RemotePort: 51000,
				PacketsSent: 1, BytesSent: 100,
			})
		}
	}
	e.Ingest(recs)

	// Mid-stream (before the drain) the stalled stage must lag the seal.
	var lagged bool
	for i := 0; i < 100 && !lagged; i++ {
		for _, st := range wm.Snapshot().Stages {
			if st.Name == "analyzed.stalled" && st.Lag > 0 {
				lagged = true
			}
		}
		time.Sleep(time.Millisecond)
	}
	if !lagged {
		t.Error("stalled consumer never showed watermark lag")
	}

	e.Flush() // drain: every queued window delivered, all stages settled
	snap := wm.Snapshot()
	sealed := e.Epoch()
	if sealed < 50 {
		t.Fatalf("only %d windows sealed; the synthetic hour should close ~60", sealed)
	}
	if snap.Sealed != sealed {
		t.Errorf("watermark sealed = %d, engine epoch = %d", snap.Sealed, sealed)
	}
	if len(snap.Stages) != 1 {
		t.Fatalf("stages = %+v", snap.Stages)
	}
	st := snap.Stages[0]
	if st.Epoch != sealed {
		t.Errorf("after drain, stalled stage at epoch %d, sealed %d", st.Epoch, sealed)
	}
	if st.Burned == 0 {
		t.Error("SLO burn counter never incremented despite 4x-target stalls")
	}
	if st.Trips == 0 {
		t.Error("consecutive burns never tripped")
	}
	if snap.BudgetRemaining > 0 {
		t.Errorf("budget remaining = %v after burning most windows", snap.BudgetRemaining)
	}

	// The anomaly trip must have produced a diagnostic bundle on disk.
	waitBundle := time.Now().Add(10 * time.Second)
	var bundles []diag.BundleInfo
	for {
		if bundles = dm.Bundles(); len(bundles) > 0 {
			break
		}
		if time.Now().After(waitBundle) {
			t.Fatal("no diagnostic bundle appeared after SLO trips")
		}
		time.Sleep(20 * time.Millisecond)
	}
	bundleDir := filepath.Join(diagDir, bundles[0].Name)
	for _, member := range []string{"reason.txt", "flight.txt", "metrics.prom", "status.json", "cpu.pprof", "heap.pprof", "bundle.json"} {
		if _, err := os.Stat(filepath.Join(bundleDir, member)); err != nil {
			t.Errorf("bundle missing %s: %v", member, err)
		}
	}

	// /statusz must agree with the ground truth read directly above.
	srv := httptest.NewServer(statusz.Handler(statusz.Sources{
		Watermarks: wm,
		Bus:        e.Bus(),
		Diag:       dm,
		Start:      time.Now(),
	}))
	defer srv.Close()
	resp, err := srv.Client().Get(srv.URL + "/statusz?format=json")
	if err != nil {
		t.Fatalf("GET /statusz: %v", err)
	}
	defer resp.Body.Close()
	var status statusz.Status
	if err := json.NewDecoder(resp.Body).Decode(&status); err != nil {
		t.Fatalf("decoding /statusz: %v", err)
	}
	if status.Watermarks == nil || status.Watermarks.Sealed != sealed {
		t.Errorf("/statusz sealed = %+v, engine epoch %d", status.Watermarks, sealed)
	}
	if len(status.Bus) != 1 || status.Bus[0].Name != "analysis.stalled" {
		t.Fatalf("/statusz bus = %+v", status.Bus)
	}
	bus := status.Bus[0]
	if bus.Delivered == 0 {
		t.Error("/statusz shows no deliveries for the stalled consumer")
	}
	if bus.Dropped == 0 {
		t.Error("/statusz shows no drops despite an 8-slot buffer under a 60-window burst")
	}
	if bus.Delivered+bus.Dropped != sealed {
		t.Errorf("delivered %d + dropped %d != sealed %d", bus.Delivered, bus.Dropped, sealed)
	}
	if status.Diag == nil || status.Diag.Written == 0 {
		t.Errorf("/statusz diag = %+v, want the written bundle", status.Diag)
	}

	if keep := os.Getenv("CLOUDGRAPH_E2E_KEEP_BUNDLE"); keep != "" {
		if err := copyDir(bundleDir, filepath.Join(keep, bundles[0].Name)); err != nil {
			t.Fatalf("keeping sample bundle: %v", err)
		}
		t.Logf("sample bundle copied to %s", filepath.Join(keep, bundles[0].Name))
	}
}

// copyDir copies one flat directory (a diagnostic bundle has no subdirs).
func copyDir(src, dst string) error {
	if err := os.MkdirAll(dst, 0o755); err != nil {
		return err
	}
	ents, err := os.ReadDir(src)
	if err != nil {
		return err
	}
	for _, ent := range ents {
		in, err := os.Open(filepath.Join(src, ent.Name()))
		if err != nil {
			return err
		}
		out, err := os.Create(filepath.Join(dst, ent.Name()))
		if err != nil {
			in.Close()
			return err
		}
		_, err = io.Copy(out, in)
		in.Close()
		if cerr := out.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			return err
		}
	}
	return nil
}
