package cloudgraph

import (
	"testing"
	"time"
)

var t0 = time.Unix(1700000000, 0).UTC().Truncate(time.Hour)

// tinyPreset returns a down-scaled µserviceBench for fast facade tests.
func tinyPreset(t *testing.T) *Cluster {
	t.Helper()
	if _, err := NewCluster(ClusterSpec{Name: "empty"}); err == nil {
		t.Fatal("empty spec should fail")
	}
	spec, err := Preset("microservicebench", 0.02)
	if err != nil {
		t.Fatal(err)
	}
	cl, err := NewCluster(spec)
	if err != nil {
		t.Fatal(err)
	}
	return cl
}

func TestPublicAPIEndToEnd(t *testing.T) {
	cl := tinyPreset(t)
	recs, err := cl.CollectHour(t0)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) == 0 {
		t.Fatal("no telemetry")
	}

	g := BuildGraph(recs, GraphOptions{})
	if g.NumNodes() == 0 || g.NumEdges() == 0 {
		t.Fatalf("graph = %d nodes, %d edges", g.NumNodes(), g.NumEdges())
	}

	assign, err := Segment(g, SegmentOptions{})
	if err != nil {
		t.Fatal(err)
	}
	q := ScoreSegmentation(assign, cl.GroundTruth())
	if q.Nodes == 0 {
		t.Error("segmentation scored no nodes")
	}

	pol := LearnPolicy(g, assign)
	if len(pol.AllowedPairs()) == 0 {
		t.Error("no allowed pairs learned")
	}
	if pol.MeanBlastRadius() <= 0 {
		t.Error("blast radius should be positive")
	}

	sum := Summarize(g)
	if sum.Headline == "" {
		t.Error("no headline")
	}
	if pts := CCDF(g, Bytes); len(pts) != g.NumNodes() {
		t.Error("CCDF size mismatch")
	}

	p, err := NewPCA(g, Bytes)
	if err != nil {
		t.Fatal(err)
	}
	if e := p.ReconErr(p.N); e > 1e-6 {
		t.Errorf("full-rank PCA error = %v", e)
	}

	sizes := FlowSizes(recs)
	if sizes.N() == 0 || sizes.Mean() <= 0 {
		t.Error("flow sizes empty")
	}
	gaps := InterArrivals(recs, time.Minute)
	if gaps.N() == 0 {
		t.Error("inter-arrivals empty")
	}

	plan := PlanCapacity(g, 1e6, 0.01, 3)
	if len(plan.Proximity) != 3 {
		t.Errorf("proximity pairs = %d", len(plan.Proximity))
	}
}

func TestPublicEngineFlow(t *testing.T) {
	cl := tinyPreset(t)
	e := NewEngine(EngineConfig{Window: time.Hour})
	if _, err := cl.Run(t0, 60, e); err != nil {
		t.Fatal(err)
	}
	windows := e.Flush()
	if len(windows) != 1 {
		t.Fatalf("windows = %d", len(windows))
	}
	if _, err := e.Learn(windows[0]); err != nil {
		t.Fatal(err)
	}
	rep := e.Monitor(windows[0])
	if rep == nil || len(rep.Violations) != 0 {
		t.Errorf("self-check should be clean: %+v", rep)
	}
	if e.Cost().Records == 0 {
		t.Error("cost meter empty")
	}
}

func TestProvidersExposed(t *testing.T) {
	ps := Providers()
	if len(ps) != 3 || ps[0].Name != "Azure" {
		t.Errorf("providers = %+v", ps)
	}
	if len(PresetNames()) != 4 {
		t.Error("want 4 presets")
	}
}

func TestSegmentWithStrategies(t *testing.T) {
	cl := tinyPreset(t)
	recs, err := cl.CollectHour(t0)
	if err != nil {
		t.Fatal(err)
	}
	g := BuildGraph(recs, GraphOptions{})
	for _, s := range []Strategy{JaccardLouvain, MinHashLouvain, ModularityConn, ModularityBytes} {
		a, err := SegmentWith(s, g, SegmentOptions{})
		if err != nil || len(a) == 0 {
			t.Errorf("%s: %v", s, err)
		}
	}
}

func TestBuildGraphCollapse(t *testing.T) {
	cl := tinyPreset(t)
	recs, err := cl.CollectHour(t0)
	if err != nil {
		t.Fatal(err)
	}
	full := BuildGraph(recs, GraphOptions{})
	collapsed := BuildGraph(recs, GraphOptions{
		CollapseThreshold: 0.05,
		Keep:              func(n Node) bool { return cl.Monitored(n.Addr) },
	})
	if collapsed.NumNodes() > full.NumNodes() {
		t.Error("collapse increased node count")
	}
}

func TestEndpointFacetSeparatesColocatedServices(t *testing.T) {
	// §2.1 concern (2): "Resources may have multiple roles, for e.g., a VM
	// may run multiple services. Thus, segmenting IP-port graphs may be
	// more useful." Build VMs hosting two services with different peer
	// structures: the IP facet cannot tell them apart by construction; the
	// endpoint facet separates them.
	spec := ClusterSpec{
		Name: "colo-facet", Seed: 21,
		Roles: []RoleSpec{
			{Name: "web", Count: 6, Port: 443},
			{Name: "metrics", ColocateWith: "web", Port: 9100},
			{Name: "scraper", Count: 2, Port: 9999},
			{Name: "client", Count: 12, External: true},
		},
		Links: []LinkSpec{
			{Src: "client", Dst: "web", FlowsPerMin: 20, Fanout: 3, FwdBytes: 600, RevBytes: 9000},
			{Src: "scraper", Dst: "metrics", FlowsPerMin: 30, Fanout: -1, FwdBytes: 200, RevBytes: 20000},
		},
	}
	cl, err := NewCluster(spec)
	if err != nil {
		t.Fatal(err)
	}
	recs, err := cl.CollectHour(t0)
	if err != nil {
		t.Fatal(err)
	}

	// Endpoint facet: web:443 and web:9100 endpoints exist as distinct
	// nodes with distinct neighborhoods.
	ge := BuildGraph(recs, GraphOptions{Facet: FacetEndpoint})
	web := cl.Addresses("web")[0]
	n443 := Node{Addr: web, Port: 443}
	n9100 := Node{Addr: web, Port: 9100}
	if !ge.HasNode(n443) || !ge.HasNode(n9100) {
		t.Fatalf("endpoint facet missing service nodes (have %d nodes)", ge.NumNodes())
	}
	assign, err := Segment(ge, SegmentOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if assign[n443] == assign[n9100] {
		t.Errorf("endpoint facet should separate co-located services into different segments")
	}
	q := ScoreSegmentation(assign, cl.GroundTruthEndpoints())
	if q.Purity < 0.8 {
		t.Errorf("endpoint segmentation purity = %v", q.Purity)
	}

	// IP facet: the two services are one node — inseparable by definition.
	gi := BuildGraph(recs, GraphOptions{Facet: FacetIP})
	if gi.HasNode(n443) {
		t.Error("IP facet should not key by port")
	}
}
