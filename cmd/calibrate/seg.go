package main

import (
	"fmt"
	"time"

	"cloudgraph/internal/cluster"
	"cloudgraph/internal/graph"
	"cloudgraph/internal/segment"
)

// segK8s runs the Figure 1 / Figure 3 strategies on the K8sPaaS hourly
// graph and reports quality vs ground truth.
func segK8s(scale float64) {
	t0 := time.Unix(1700000000, 0).UTC().Truncate(time.Minute)
	spec, _ := cluster.Preset("k8spaas", scale)
	c, _ := cluster.New(spec)
	recs, _ := c.CollectHour(t0)
	g := graph.Build(recs, graph.BuilderOptions{Facet: graph.FacetIP})
	if spec.CollapseThreshold > 0 {
		g = g.Collapse(graph.CollapseOptions{Threshold: spec.CollapseThreshold, Keep: func(n graph.Node) bool { return c.Monitored(n.Addr) }})
	}
	truth := c.GroundTruth()
	fmt.Printf("graph: %d nodes %d edges\n", g.NumNodes(), g.NumEdges())
	for _, s := range []segment.Strategy{segment.StrategyJaccardLouvain, segment.StrategyMinHashLouvain, segment.StrategyModularityConn, segment.StrategyModularityBytes} {
		start := time.Now()
		a, err := segment.Run(s, g, segment.Options{})
		if err != nil {
			panic(err)
		}
		q := segment.Score(a, truth)
		fmt.Printf("%-18s segs=%3d ARI=%.3f NMI=%.3f purity=%.3f in %.1fs\n", s, a.NumSegments(), q.ARI, q.NMI, q.Purity, time.Since(start).Seconds())
	}
}
