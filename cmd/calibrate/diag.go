package main

import (
	"fmt"
	"time"

	"cloudgraph/internal/cluster"
	"cloudgraph/internal/graph"
)

// diagK8s prints traffic-share stats for each external role of K8sPaaS, to
// tune which endpoints survive the heavy-hitter collapse.
func diagK8s() {
	t0 := time.Unix(1700000000, 0).UTC().Truncate(time.Minute)
	spec, _ := cluster.Preset("k8spaas", 1)
	c, _ := cluster.New(spec)
	recs, _ := c.CollectHour(t0)
	g := graph.Build(recs, graph.BuilderOptions{Facet: graph.FacetIP})
	total := g.TotalTraffic()
	for _, roleName := range []string{"cloud-store", "customer-api", "partner-feed"} {
		var lo, hi, kept float64
		lo = 1
		n := 0
		for _, a := range c.Addresses(roleName) {
			node := graph.IPNode(a)
			if !g.HasNode(node) {
				continue
			}
			n++
			share := float64(g.NodeStrength(node, graph.Bytes)) / float64(2*total.Bytes)
			cshare := float64(g.NodeStrength(node, graph.Conns)) / float64(2*total.Conns)
			pshare := float64(g.NodeStrength(node, graph.Packets)) / float64(2*total.Packets)
			m := share
			if cshare > m {
				m = cshare
			}
			if pshare > m {
				m = pshare
			}
			if m < lo {
				lo = m
			}
			if m > hi {
				hi = m
			}
			if m >= 0.001 {
				kept++
			}
		}
		fmt.Printf("%-14s n=%d maxshare lo=%.5f hi=%.5f kept=%.0f\n", roleName, n, lo, hi, kept)
	}
}
