// Command calibrate reports hourly graph statistics for each dataset preset
// against the Table 1 targets; used to tune the synthetic generators.
package main

import (
	"flag"
	"fmt"
	"time"

	"cloudgraph/internal/cluster"
	"cloudgraph/internal/graph"
)

func main() {
	kqScale := flag.Float64("kquery-scale", 0.15, "scale for the KQuery dataset")
	diag := flag.Bool("diag-k8s", false, "print external traffic-share diagnostics for K8sPaaS")
	seg := flag.Float64("seg-k8s", 0, "run segmentation quality check on K8sPaaS at this scale")
	flag.Parse()
	if *diag {
		diagK8s()
		return
	}
	if *seg > 0 {
		segK8s(*seg)
		return
	}
	t0 := time.Unix(1700000000, 0).UTC().Truncate(time.Minute)
	for _, tc := range []struct {
		name  string
		scale float64
	}{{"portal", 1}, {"microservicebench", 1}, {"k8spaas", 1}, {"kquery", *kqScale}} {
		spec, _ := cluster.Preset(tc.name, tc.scale)
		c, err := cluster.New(spec)
		if err != nil {
			panic(err)
		}
		start := time.Now()
		recs, err := c.CollectHour(t0)
		if err != nil {
			panic(err)
		}
		g := graph.Build(recs, graph.BuilderOptions{Facet: graph.FacetIP})
		if spec.CollapseThreshold > 0 {
			g = g.Collapse(graph.CollapseOptions{Threshold: spec.CollapseThreshold, Keep: func(n graph.Node) bool { return c.Monitored(n.Addr) }})
		}
		s := g.ComputeStats()
		fmt.Printf("%-20s scale=%.2f mon=%d nodes=%d edges=%d rec/min=%d gen=%.1fs\n",
			tc.name, tc.scale, c.MonitoredIPs(), s.Nodes, s.Edges, len(recs)/60, time.Since(start).Seconds())
	}
}
