// Command cloudgraphd runs the analytics service of Figure 8: a TCP
// endpoint that ingests connection summaries (binary wire format via the
// INGEST command) and answers queries — window stats, segmentation,
// security monitoring — over the same line protocol.
//
// Usage:
//
//	cloudgraphd -addr 127.0.0.1:7443 -window 1h -collapse 0.001
//
// Then, e.g. from graphctl or any TCP client:
//
//	printf 'STATS\n' | nc 127.0.0.1 7443
//
// With -live (the default) the daemon also runs the online analysis
// plane: every completed window is appended to a versioned timeline
// (minute-or-whatever windows rolled up into -rollup buckets, -retention
// windows kept) and analyzed in place by the §2 runners — segmentation,
// succinct summary with anomaly score, counterfactual capacity plan and
// policy churn. Results are served over QUERY (`graphctl query segment
// latest`) and the /analyz ops view, pinned to the epoch that produced
// them.
//
// With -data-dir the daemon is crash-recoverable: every completed window
// is appended to a durable epoch-indexed segment store, replayed on
// restart to rebuild the timeline and runners (epochs keep ascending
// across the crash), compacted into hour roll-ups past
// -history-retention, and served by QUERY — by epoch or RFC3339 time —
// long after the in-memory retention has moved on.
//
// A second HTTP listener (-ops, default 127.0.0.1:9443) serves operational
// views of the running daemon: Prometheus metrics on /metrics, liveness on
// /healthz, profiling on /debug/pprof/, the latest window's adjacency
// heatmap on /graphz, sampled record traces on /tracez, the flight
// recorder on /flightz and the analysis plane on /analyz. SIGQUIT dumps
// the flight ring to stderr without stopping the daemon.
package main

import (
	"flag"
	"fmt"
	"log"
	"log/slog"
	"os"
	"os/signal"
	"path/filepath"
	"runtime"
	"strconv"
	"sync/atomic"
	"syscall"
	"time"

	"cloudgraph/internal/analytics"
	"cloudgraph/internal/core"
	"cloudgraph/internal/diag"
	"cloudgraph/internal/graph"
	"cloudgraph/internal/histstore"
	"cloudgraph/internal/runner"
	"cloudgraph/internal/statusz"
	"cloudgraph/internal/store"
	"cloudgraph/internal/telemetry"
	"cloudgraph/internal/timeline"
	"cloudgraph/internal/trace"
	"cloudgraph/internal/watermark"
)

// parseLogLevel maps the -log-level flag onto slog levels.
func parseLogLevel(s string) (slog.Level, bool) {
	switch s {
	case "debug":
		return slog.LevelDebug, true
	case "info":
		return slog.LevelInfo, true
	case "warn":
		return slog.LevelWarn, true
	case "error":
		return slog.LevelError, true
	}
	return 0, false
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("cloudgraphd: ")
	var (
		addr        = flag.String("addr", "127.0.0.1:7443", "listen address")
		window      = flag.Duration("window", time.Hour, "graph window size")
		collapse    = flag.Float64("collapse", 0, "heavy-hitter collapse threshold (0 disables; paper uses 0.001)")
		facet       = flag.String("facet", "ip", "graph facet: ip or ip-port")
		maxWin      = flag.Int("max-windows", 48, "retained window history (0 = unlimited)")
		workers     = flag.Int("workers", runtime.NumCPU(), "ingest shards: concurrent connections fold records in parallel, one flow-key shard per worker")
		storeTo     = flag.String("store", "", "append completed windows to this store file (graphctl history reads it)")
		opsAddr     = flag.String("ops", "127.0.0.1:9443", "ops HTTP address serving /metrics, /healthz, /debug/pprof/, /graphz, /tracez and /flightz (empty disables)")
		traceSample = flag.Int("trace-sample", 0, "trace one in N ingested records end to end (0 disables span sampling)")
		flightN     = flag.Int("flight-events", trace.DefaultFlightEvents, "flight recorder ring capacity (events and spans retained for /flightz and crash dumps)")
		logLevel    = flag.String("log-level", "info", "structured event log level: debug, info, warn or error")
		live        = flag.Bool("live", true, "run the online analysis plane (timeline + runners) on the consumer bus")
		rollup      = flag.Duration("rollup", time.Hour, "timeline roll-up bucket size (0 disables roll-ups)")
		retention   = flag.Int("retention", 96, "timeline window snapshots retained")
		dataDir     = flag.String("data-dir", "", "durable history directory: completed windows are appended to an epoch-indexed segment store, replayed on restart, and served by QUERY past the in-memory retention (empty disables)")
		histRet     = flag.Duration("history-retention", 24*time.Hour, "how long the history store keeps window-resolution records before compacting them into hour roll-ups")
		freshSLO    = flag.Duration("freshness-slo", 5*time.Second, "per-window freshness target: seal-to-analyzed (and seal-to-durable) latency beyond this burns the SLO budget (0 disables SLO accounting; watermarks stay on)")
		burnTrip    = flag.Int("slo-burn-trip", 3, "consecutive SLO-burned windows on one stage before an anomaly trip (diagnostic bundle)")
		diagMax     = flag.Int("diag-max", 8, "diagnostic bundles retained under <data-dir>/diag before the oldest are removed")
	)
	flag.Parse()

	level, ok := parseLogLevel(*logLevel)
	if !ok {
		log.Fatalf("unknown log level %q (want debug, info, warn or error)", *logLevel)
	}

	// The tracer always exists: the event log and flight recorder are
	// cheap and on even when span sampling (-trace-sample) is off.
	tr := trace.New(trace.Options{
		SampleEvery:  *traceSample,
		FlightEvents: *flightN,
		LogOutput:    os.Stderr,
		LogLevel:     level,
	})

	reg := telemetry.NewRegistry()
	telemetry.BuildInfo(reg,
		telemetry.Label{Key: "shards", Value: strconv.Itoa(*workers)},
		telemetry.Label{Key: "flags", Value: fmt.Sprintf("window=%v collapse=%g facet=%s live=%v freshness-slo=%v", *window, *collapse, *facet, *live, *freshSLO)})

	// The watermark tracker observes the pipeline's per-stage epoch
	// progress: the engine marks windows sealed, the plane's consumers
	// advance published/analyzed stages, the history consumer the durable
	// stage. A stage falling -freshness-slo behind the seal burns the SLO
	// budget; -slo-burn-trip consecutive burns fire OnBurn, which (like a
	// flight-recorder trip) captures a diagnostic bundle. diagM is assigned
	// before the daemon starts serving, so the callbacks — which can only
	// fire once ingest is underway — always see the final value.
	var diagM *diag.Manager
	var statusSrc atomic.Pointer[statusz.Sources]
	wm := watermark.New(watermark.Config{
		FreshnessTarget: *freshSLO,
		Trip:            *burnTrip,
		OnBurn: func(stage string, epoch, consecutive uint64) {
			diagM.TriggerAsync(fmt.Sprintf("freshness SLO burn: stage %s %d windows behind target at epoch %d", stage, consecutive, epoch))
		},
	})
	wm.Instrument(reg)

	cfg := core.Config{Window: *window, MaxWindows: *maxWin, Shards: *workers, Telemetry: reg, Trace: tr, Watermarks: wm}
	switch *facet {
	case "ip":
		cfg.Facet = graph.FacetIP
	case "ip-port":
		cfg.Facet = graph.FacetIPPort
	default:
		log.Fatalf("unknown facet %q", *facet)
	}
	if *collapse > 0 {
		cfg.Collapse = graph.CollapseOptions{Threshold: *collapse}
	}
	if *storeTo != "" {
		w, err := store.Create(*storeTo)
		if err != nil {
			log.Fatal(err)
		}
		defer w.Close()
		w.Instrument(reg)
		w.Trace(tr)
		cfg.OnWindow = func(g *graph.Graph) {
			if err := w.Append(g); err != nil {
				log.Printf("store append: %v", err)
				return
			}
			if err := w.Sync(); err != nil {
				log.Printf("store sync: %v", err)
			}
		}
		log.Printf("persisting windows to %s", *storeTo)
	}

	// The analysis plane rides the same consumer bus as the store hook:
	// timeline ingest plus one consumer per analysis, each buffered and
	// drop-oldest so a slow analysis never blocks the merge path.
	var plane *runner.Plane
	if *live {
		tcfg := timeline.Config{Retention: *retention, Rollup: *rollup}
		if *rollup == 0 {
			tcfg.Rollup = -1
		}
		plane = runner.New(runner.Config{Timeline: tcfg, Telemetry: reg, Trace: tr, Watermarks: wm})
		cfg.Consumers = plane.Consumers()
		log.Printf("analysis plane on: %v (rollup=%v retention=%d)", plane.Runners(), *rollup, *retention)
	}

	// The durable history store closes the crash-recovery loop: every
	// completed window is appended (CRC-framed, epoch-indexed) under
	// -data-dir, replayed here on startup to rebuild the timeline and
	// runner plane, and compacted into hour roll-ups once it ages past
	// -history-retention. QUERY falls through to it for epochs older than
	// the in-memory retention.
	var hs *histstore.Store
	if *dataDir != "" {
		hcfg := histstore.Options{Retention: *histRet}
		if *rollup > 0 {
			hcfg.RollupBucket = *rollup
		}
		var err error
		hs, err = histstore.Open(*dataDir, hcfg)
		if err != nil {
			log.Fatalf("history store: %v", err)
		}
		defer hs.Close()
		hs.Instrument(reg)
		hs.Trace(tr)
		recovered := 0
		if plane != nil {
			if err := hs.Replay(func(ep uint64, g *graph.Graph) error {
				plane.Restore(ep, g)
				recovered++
				return nil
			}); err != nil {
				log.Fatalf("history replay: %v", err)
			}
			plane.SetHistory(hs, nil)
		}
		cfg.StartEpoch = hs.LastEpoch()
		// Register the durable stage, then fast-forward every watermark to
		// the recovered epoch: replayed windows were sealed in a previous
		// life and must not count as latency or burned budget.
		wmDurable := wm.Stage("durable", true)
		wm.Resume(cfg.StartEpoch)
		cfg.Consumers = append(cfg.Consumers, core.ConsumerSpec{
			Name:   "history",
			Buffer: 256,
			Fn: func(epoch uint64, g *graph.Graph) {
				if err := hs.Append(epoch, g); err != nil {
					log.Printf("history append: %v", err)
					return
				}
				wmDurable.Advance(epoch)
			},
		})
		stopCompact := hs.StartCompactor(time.Minute)
		defer stopCompact()
		log.Printf("durable history in %s (recovered %d windows, resuming at epoch %d, retention=%v)",
			*dataDir, recovered, cfg.StartEpoch, *histRet)

		// Anomaly diagnostic bundles ride the durable directory: a flight
		// -recorder trip or an SLO burn trip snapshots the flight ring,
		// profiles, traces, metrics and status under <data-dir>/diag.
		diagM, err = diag.New(diag.Config{
			Dir:        filepath.Join(*dataDir, "diag"),
			MaxBundles: *diagMax,
			Flight:     tr.Flight(),
			Traces:     tr.Recorder(),
			Registry:   reg,
			// The status sources are only fully assembled once the engine
			// is serving; until then a bundle's status.json is empty.
			Status: func() ([]byte, error) {
				if s := statusSrc.Load(); s != nil {
					return s.JSON()
				}
				return []byte("{}\n"), nil
			},
		})
		if err != nil {
			log.Fatalf("diag: %v", err)
		}
		tr.Flight().SetOnTrip(func(component, reason string) {
			diagM.TriggerAsync("flight trip: " + component + ": " + reason)
		})
		log.Printf("diagnostic bundles in %s (max %d)", filepath.Join(*dataDir, "diag"), *diagMax)
	}

	srv, err := analytics.ServeWith(*addr, cfg, analytics.Options{Plane: plane})
	if err != nil {
		log.Fatal(err)
	}
	log.Printf("listening on %s (window=%v facet=%s collapse=%g workers=%d trace-sample=%d)",
		srv.Addr(), *window, *facet, *collapse, *workers, *traceSample)

	sources := statusz.Sources{
		Watermarks: wm,
		Bus:        srv.Engine().Bus(),
		Hist:       hs,
		Flight:     tr.Flight(),
		Diag:       diagM,
		Start:      time.Now(),
	}
	statusSrc.Store(&sources)

	if *opsAddr != "" {
		ops, err := telemetry.ServeOps(*opsAddr, reg)
		if err != nil {
			log.Fatal(err)
		}
		defer ops.Close()
		// HandleView wraps each view in the shared GET/HEAD-or-405 contract;
		// only /debug/pprof/ stays outside it (pprof.Symbol accepts POST).
		ops.HandleView("/graphz", analytics.GraphzHandler(srv.Engine()))
		ops.HandleView("/tracez", trace.TracezHandler(tr.Recorder()))
		ops.HandleView("/flightz", trace.FlightzHandler(tr.Flight()))
		ops.HandleView("/statusz", statusz.Handler(sources))
		views := "/metrics /healthz /debug/pprof/ /graphz /tracez /flightz /statusz"
		if plane != nil {
			ops.HandleView("/analyz", plane.AnalyzHandler())
			views += " /analyz"
		}
		log.Printf("ops endpoint on http://%s (%s)", ops.Addr(), views)
	}

	// SIGQUIT dumps the flight recorder — the last N events and spans
	// leading up to now — without stopping the daemon.
	quit := make(chan os.Signal, 1)
	signal.Notify(quit, syscall.SIGQUIT)
	go func() {
		for range quit {
			log.Printf("SIGQUIT: dumping flight recorder")
			if err := tr.DumpFlight(os.Stderr); err != nil {
				log.Printf("flight dump: %v", err)
			}
		}
	}()

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	log.Printf("shutting down")
	if err := srv.Close(); err != nil {
		log.Fatal(err)
	}
}
