// Command cloudgraphd runs the analytics service of Figure 8: a TCP
// endpoint that ingests connection summaries (binary wire format via the
// INGEST command) and answers queries — window stats, segmentation,
// security monitoring — over the same line protocol.
//
// Usage:
//
//	cloudgraphd -addr 127.0.0.1:7443 -window 1h -collapse 0.001
//
// Then, e.g. from graphctl or any TCP client:
//
//	printf 'STATS\n' | nc 127.0.0.1 7443
//
// With -live (the default) the daemon also runs the online analysis
// plane: every completed window is appended to a versioned timeline
// (minute-or-whatever windows rolled up into -rollup buckets, -retention
// windows kept) and analyzed in place by the §2 runners — segmentation,
// succinct summary with anomaly score, counterfactual capacity plan and
// policy churn. Results are served over QUERY (`graphctl query segment
// latest`) and the /analyz ops view, pinned to the epoch that produced
// them.
//
// The daemon is multi-tenant: every pipeline plane above exists once per
// tenant realm (the paper's unit of analysis is a cloud subscription).
// Untagged traffic lands on the "default" tenant, so single-tenant
// deployments never notice; a TENANT command or per-frame tenant tags
// route records to their own realm, admitted on first use up to
// -max-tenants. A deficit-round-robin scheduler shares -sched-workers
// execution slots between realms in proportion to -tenant-weight, and a
// per-tenant COGS meter (records, bytes, graph memory, analysis seconds,
// disk) is served on /tenantz, /statusz and the tenant-labeled metrics.
//
// With -data-dir the daemon is crash-recoverable: every completed window
// is appended to a durable epoch-indexed segment store partitioned per
// tenant under <data-dir>/<tenant>/, replayed on restart to rebuild each
// tenant's timeline and runners (epochs keep ascending across the
// crash), compacted into hour roll-ups past -history-retention, and
// served by QUERY — by epoch or RFC3339 time — long after the in-memory
// retention has moved on.
//
// A second HTTP listener (-ops, default 127.0.0.1:9443) serves operational
// views of the running daemon: Prometheus metrics on /metrics, liveness on
// /healthz, profiling on /debug/pprof/, the latest window's adjacency
// heatmap on /graphz, sampled record traces on /tracez, the flight
// recorder on /flightz, per-tenant planes on /tenantz and the analysis
// plane on /analyz. SIGQUIT dumps the flight ring to stderr without
// stopping the daemon.
package main

import (
	"flag"
	"fmt"
	"log"
	"log/slog"
	"os"
	"os/signal"
	"path/filepath"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"sync/atomic"
	"syscall"
	"time"

	"cloudgraph/internal/analytics"
	"cloudgraph/internal/core"
	"cloudgraph/internal/diag"
	"cloudgraph/internal/graph"
	"cloudgraph/internal/histstore"
	"cloudgraph/internal/realm"
	"cloudgraph/internal/statusz"
	"cloudgraph/internal/store"
	"cloudgraph/internal/telemetry"
	"cloudgraph/internal/timeline"
	"cloudgraph/internal/trace"
	"cloudgraph/internal/watermark"
)

// parseLogLevel maps the -log-level flag onto slog levels.
func parseLogLevel(s string) (slog.Level, bool) {
	switch s {
	case "debug":
		return slog.LevelDebug, true
	case "info":
		return slog.LevelInfo, true
	case "warn":
		return slog.LevelWarn, true
	case "error":
		return slog.LevelError, true
	}
	return 0, false
}

// weightFlag collects repeatable -tenant-weight name=w pairs.
type weightFlag map[string]int64

func (f weightFlag) String() string {
	pairs := make([]string, 0, len(f))
	for name, w := range f {
		pairs = append(pairs, fmt.Sprintf("%s=%d", name, w))
	}
	sort.Strings(pairs)
	return strings.Join(pairs, ",")
}

func (f weightFlag) Set(s string) error {
	name, val, ok := strings.Cut(s, "=")
	if !ok {
		return fmt.Errorf("want name=weight, got %q", s)
	}
	if !realm.ValidName(name) {
		return fmt.Errorf("invalid tenant name %q", name)
	}
	w, err := strconv.ParseInt(val, 10, 64)
	if err != nil || w <= 0 {
		return fmt.Errorf("weight %q must be a positive integer", val)
	}
	f[name] = w
	return nil
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("cloudgraphd: ")
	weights := weightFlag{}
	var (
		addr        = flag.String("addr", "127.0.0.1:7443", "listen address")
		window      = flag.Duration("window", time.Hour, "graph window size")
		collapse    = flag.Float64("collapse", 0, "heavy-hitter collapse threshold (0 disables; paper uses 0.001)")
		facet       = flag.String("facet", "ip", "graph facet: ip or ip-port")
		maxWin      = flag.Int("max-windows", 48, "retained window history per tenant (0 = unlimited)")
		workers     = flag.Int("workers", runtime.NumCPU(), "ingest shards: concurrent connections fold records in parallel, one flow-key shard per worker")
		storeTo     = flag.String("store", "", "append the default tenant's completed windows to this store file (graphctl history reads it)")
		opsAddr     = flag.String("ops", "127.0.0.1:9443", "ops HTTP address serving /metrics, /healthz, /debug/pprof/, /graphz, /tracez, /flightz and /tenantz (empty disables)")
		traceSample = flag.Int("trace-sample", 0, "trace one in N ingested records end to end (0 disables span sampling)")
		flightN     = flag.Int("flight-events", trace.DefaultFlightEvents, "flight recorder ring capacity (events and spans retained for /flightz and crash dumps)")
		logLevel    = flag.String("log-level", "info", "structured event log level: debug, info, warn or error")
		live        = flag.Bool("live", true, "run the online analysis plane (timeline + runners) on each tenant's consumer bus")
		rollup      = flag.Duration("rollup", time.Hour, "timeline roll-up bucket size (0 disables roll-ups)")
		retention   = flag.Int("retention", 96, "timeline window snapshots retained per tenant")
		dataDir     = flag.String("data-dir", "", "durable history directory: completed windows are appended to a per-tenant epoch-indexed segment store under <data-dir>/<tenant>/, replayed on restart, and served by QUERY past the in-memory retention (empty disables)")
		histRet     = flag.Duration("history-retention", 24*time.Hour, "how long the history store keeps window-resolution records before compacting them into hour roll-ups")
		freshSLO    = flag.Duration("freshness-slo", 5*time.Second, "per-window freshness target: seal-to-analyzed (and seal-to-durable) latency beyond this burns the SLO budget (0 disables SLO accounting; watermarks stay on)")
		burnTrip    = flag.Int("slo-burn-trip", 3, "consecutive SLO-burned windows on one stage before an anomaly trip (diagnostic bundle)")
		diagMax     = flag.Int("diag-max", 8, "diagnostic bundles retained under <data-dir>/diag before the oldest are removed")
		maxTenants  = flag.Int("max-tenants", 64, "tenant realms admitted before new tenants are rejected")
		schedW      = flag.Int("sched-workers", 4, "shared execution slots the weighted-fair scheduler grants across tenant realms")
	)
	flag.Var(weights, "tenant-weight", "scheduler weight for one tenant as name=weight (repeatable; default 1)")
	flag.Parse()

	level, ok := parseLogLevel(*logLevel)
	if !ok {
		log.Fatalf("unknown log level %q (want debug, info, warn or error)", *logLevel)
	}

	// The tracer always exists: the event log and flight recorder are
	// cheap and on even when span sampling (-trace-sample) is off.
	tr := trace.New(trace.Options{
		SampleEvery:  *traceSample,
		FlightEvents: *flightN,
		LogOutput:    os.Stderr,
		LogLevel:     level,
	})

	reg := telemetry.NewRegistry()
	telemetry.BuildInfo(reg,
		telemetry.Label{Key: "shards", Value: strconv.Itoa(*workers)},
		telemetry.Label{Key: "flags", Value: fmt.Sprintf("window=%v collapse=%g facet=%s live=%v freshness-slo=%v", *window, *collapse, *facet, *live, *freshSLO)})

	cfg := core.Config{Window: *window, MaxWindows: *maxWin, Shards: *workers}
	switch *facet {
	case "ip":
		cfg.Facet = graph.FacetIP
	case "ip-port":
		cfg.Facet = graph.FacetIPPort
	default:
		log.Fatalf("unknown facet %q", *facet)
	}
	if *collapse > 0 {
		cfg.Collapse = graph.CollapseOptions{Threshold: *collapse}
	}

	tcfg := timeline.Config{Retention: *retention, Rollup: *rollup}
	if *rollup == 0 {
		tcfg.Rollup = -1
	}
	hcfg := histstore.Options{Retention: *histRet}
	if *rollup > 0 {
		hcfg.RollupBucket = *rollup
	}

	// Every per-tenant watermark tracker observes its realm's per-stage
	// epoch progress: the engine marks windows sealed, the plane's
	// consumers advance published/analyzed stages, the history consumer
	// the durable stage. A stage falling -freshness-slo behind the seal
	// burns that tenant's SLO budget; -slo-burn-trip consecutive burns
	// fire OnBurn, which (like a flight-recorder trip) captures a
	// diagnostic bundle. diagM is assigned before the daemon starts
	// serving, so the callbacks — which can only fire once ingest is
	// underway — always see the final value.
	var diagM *diag.Manager
	var statusSrc atomic.Pointer[statusz.Sources]
	rcfg := realm.Config{
		Engine:     cfg,
		Live:       *live,
		Timeline:   tcfg,
		Watermark:  watermark.Config{FreshnessTarget: *freshSLO, Trip: *burnTrip},
		DataDir:    *dataDir,
		Hist:       hcfg,
		MaxTenants: *maxTenants,
		Workers:    *schedW,
		Weights:    weights,
		Telemetry:  reg,
		Trace:      tr,
		OnBurn: func(tenant, stage string, epoch, consecutive uint64) {
			diagM.TriggerAsync(fmt.Sprintf("freshness SLO burn: tenant %s stage %s %d windows behind target at epoch %d", tenant, stage, consecutive, epoch))
		},
	}
	if *dataDir != "" {
		rcfg.CompactEvery = time.Minute
	}
	if *storeTo != "" {
		w, err := store.Create(*storeTo)
		if err != nil {
			log.Fatal(err)
		}
		defer w.Close()
		w.Instrument(reg)
		w.Trace(tr)
		// The flat store file has no tenant column, so the legacy hook
		// follows the legacy plane: the default tenant's windows only.
		rcfg.OnWindow = func(tenant string, g *graph.Graph) {
			if tenant != realm.DefaultTenant {
				return
			}
			if err := w.Append(g); err != nil {
				log.Printf("store append: %v", err)
				return
			}
			if err := w.Sync(); err != nil {
				log.Printf("store sync: %v", err)
			}
		}
		log.Printf("persisting windows to %s", *storeTo)
	}

	m, err := realm.NewManager(rcfg)
	if err != nil {
		log.Fatal(err)
	}
	defer m.Close()
	def := m.Default()
	// The unlabeled cloudgraph_watermark_* series keep tracking the
	// default tenant, like every other single-plane surface; per-tenant
	// visibility rides the tenant-labeled COGS gauges and /tenantz.
	def.Watermarks().Instrument(reg)

	if *live {
		log.Printf("analysis plane on: %v (rollup=%v retention=%d)", def.Plane().Runners(), *rollup, *retention)
	}

	if *dataDir != "" {
		realms := m.Realms()
		recovered := 0
		for _, r := range realms {
			recovered += r.Recovered()
		}
		log.Printf("durable history in %s (%d tenants, recovered %d windows, default resuming at epoch %d, retention=%v)",
			*dataDir, len(realms), recovered, def.Engine().Epoch(), *histRet)

		// Anomaly diagnostic bundles ride the durable directory: a flight
		// -recorder trip or an SLO burn trip snapshots the flight ring,
		// profiles, traces, metrics and status under <data-dir>/diag (a
		// reserved tenant name, so the bundle directory can never be
		// recovered as a realm).
		diagM, err = diag.New(diag.Config{
			Dir:        filepath.Join(*dataDir, "diag"),
			MaxBundles: *diagMax,
			Flight:     tr.Flight(),
			Traces:     tr.Recorder(),
			Registry:   reg,
			// The status sources are only fully assembled once the engine
			// is serving; until then a bundle's status.json is empty.
			Status: func() ([]byte, error) {
				if s := statusSrc.Load(); s != nil {
					return s.JSON()
				}
				return []byte("{}\n"), nil
			},
		})
		if err != nil {
			log.Fatalf("diag: %v", err)
		}
		tr.Flight().SetOnTrip(func(component, reason string) {
			diagM.TriggerAsync("flight trip: " + component + ": " + reason)
		})
		log.Printf("diagnostic bundles in %s (max %d)", filepath.Join(*dataDir, "diag"), *diagMax)
	}

	srv, err := analytics.ServeRealms(*addr, m, reg, analytics.Options{})
	if err != nil {
		log.Fatal(err)
	}
	log.Printf("listening on %s (window=%v facet=%s collapse=%g workers=%d trace-sample=%d)",
		srv.Addr(), *window, *facet, *collapse, *workers, *traceSample)

	sources := statusz.Sources{
		Watermarks: def.Watermarks(),
		Bus:        def.Engine().Bus(),
		Hist:       def.Hist(),
		Flight:     tr.Flight(),
		Diag:       diagM,
		Start:      time.Now(),
		Tenants: func() []statusz.TenantSources {
			realms := m.Realms()
			out := make([]statusz.TenantSources, 0, len(realms))
			for _, r := range realms {
				c := r.Cost()
				out = append(out, statusz.TenantSources{
					Tenant:     r.Name(),
					Watermarks: r.Watermarks(),
					Bus:        r.Engine().Bus(),
					Hist:       r.Hist(),
					Cost: statusz.TenantCost{
						Weight:          c.Weight,
						Records:         c.Records,
						WireBytes:       c.WireBytes,
						GraphBytes:      c.GraphBytes,
						IngestSeconds:   c.IngestSeconds,
						AnalysisSeconds: c.AnalysisSeconds,
						DiskBytes:       c.DiskBytes,
						QueueDepth:      c.QueueDepth,
					},
				})
			}
			return out
		},
	}
	statusSrc.Store(&sources)

	if *opsAddr != "" {
		ops, err := telemetry.ServeOps(*opsAddr, reg)
		if err != nil {
			log.Fatal(err)
		}
		defer ops.Close()
		// HandleView wraps each view in the shared GET/HEAD-or-405 contract;
		// only /debug/pprof/ stays outside it (pprof.Symbol accepts POST).
		ops.HandleView("/graphz", analytics.GraphzHandler(srv.Engine()))
		ops.HandleView("/tracez", trace.TracezHandler(tr.Recorder()))
		ops.HandleView("/flightz", trace.FlightzHandler(tr.Flight()))
		ops.HandleView("/statusz", statusz.Handler(sources))
		ops.HandleView("/tenantz", realm.TenantzHandler(m))
		views := "/metrics /healthz /debug/pprof/ /graphz /tracez /flightz /statusz /tenantz"
		if *live {
			ops.HandleView("/analyz", def.Plane().AnalyzHandler())
			views += " /analyz"
		}
		log.Printf("ops endpoint on http://%s (%s)", ops.Addr(), views)
	}

	// SIGQUIT dumps the flight recorder — the last N events and spans
	// leading up to now — without stopping the daemon.
	quit := make(chan os.Signal, 1)
	signal.Notify(quit, syscall.SIGQUIT)
	go func() {
		for range quit {
			log.Printf("SIGQUIT: dumping flight recorder")
			if err := tr.DumpFlight(os.Stderr); err != nil {
				log.Printf("flight dump: %v", err)
			}
		}
	}()

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	log.Printf("shutting down")
	if err := srv.Close(); err != nil {
		log.Fatal(err)
	}
	if err := m.Close(); err != nil {
		log.Fatal(err)
	}
}
