// Command cloudgraphd runs the analytics service of Figure 8: a TCP
// endpoint that ingests connection summaries (binary wire format via the
// INGEST command) and answers queries — window stats, segmentation,
// security monitoring — over the same line protocol.
//
// Usage:
//
//	cloudgraphd -addr 127.0.0.1:7443 -window 1h -collapse 0.001
//
// Then, e.g. from graphctl or any TCP client:
//
//	printf 'STATS\n' | nc 127.0.0.1 7443
//
// A second HTTP listener (-ops, default 127.0.0.1:9443) serves operational
// views of the running daemon: Prometheus metrics on /metrics, liveness on
// /healthz, profiling on /debug/pprof/ and the latest window's adjacency
// heatmap on /graphz.
package main

import (
	"flag"
	"log"
	"os"
	"os/signal"
	"runtime"
	"syscall"
	"time"

	"cloudgraph/internal/analytics"
	"cloudgraph/internal/core"
	"cloudgraph/internal/graph"
	"cloudgraph/internal/store"
	"cloudgraph/internal/telemetry"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("cloudgraphd: ")
	var (
		addr     = flag.String("addr", "127.0.0.1:7443", "listen address")
		window   = flag.Duration("window", time.Hour, "graph window size")
		collapse = flag.Float64("collapse", 0, "heavy-hitter collapse threshold (0 disables; paper uses 0.001)")
		facet    = flag.String("facet", "ip", "graph facet: ip or ip-port")
		maxWin   = flag.Int("max-windows", 48, "retained window history (0 = unlimited)")
		workers  = flag.Int("workers", runtime.NumCPU(), "ingest shards: concurrent connections fold records in parallel, one flow-key shard per worker")
		storeTo  = flag.String("store", "", "append completed windows to this store file (graphctl history reads it)")
		opsAddr  = flag.String("ops", "127.0.0.1:9443", "ops HTTP address serving /metrics, /healthz, /debug/pprof/ and /graphz (empty disables)")
	)
	flag.Parse()

	reg := telemetry.NewRegistry()
	cfg := core.Config{Window: *window, MaxWindows: *maxWin, Shards: *workers, Telemetry: reg}
	switch *facet {
	case "ip":
		cfg.Facet = graph.FacetIP
	case "ip-port":
		cfg.Facet = graph.FacetIPPort
	default:
		log.Fatalf("unknown facet %q", *facet)
	}
	if *collapse > 0 {
		cfg.Collapse = graph.CollapseOptions{Threshold: *collapse}
	}
	if *storeTo != "" {
		w, err := store.Create(*storeTo)
		if err != nil {
			log.Fatal(err)
		}
		defer w.Close()
		w.Instrument(reg)
		cfg.OnWindow = func(g *graph.Graph) {
			if err := w.Append(g); err != nil {
				log.Printf("store append: %v", err)
				return
			}
			if err := w.Sync(); err != nil {
				log.Printf("store sync: %v", err)
			}
		}
		log.Printf("persisting windows to %s", *storeTo)
	}

	srv, err := analytics.Serve(*addr, cfg)
	if err != nil {
		log.Fatal(err)
	}
	log.Printf("listening on %s (window=%v facet=%s collapse=%g workers=%d)", srv.Addr(), *window, *facet, *collapse, *workers)

	if *opsAddr != "" {
		ops, err := telemetry.ServeOps(*opsAddr, reg)
		if err != nil {
			log.Fatal(err)
		}
		defer ops.Close()
		ops.Handle("/graphz", analytics.GraphzHandler(srv.Engine()))
		log.Printf("ops endpoint on http://%s (/metrics /healthz /debug/pprof/ /graphz)", ops.Addr())
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	log.Printf("shutting down")
	if err := srv.Close(); err != nil {
		log.Fatal(err)
	}
}
