package main

import (
	"bufio"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"sort"
	"syscall"
	"testing"
	"time"

	"cloudgraph/internal/analytics"
	"cloudgraph/internal/cluster"
	"cloudgraph/internal/flowlog"
)

var streamStart = time.Unix(1700000000, 0).UTC().Truncate(time.Hour)

// crashStream generates the seeded hour the e2e splits across a crash:
// a microservice bench with a mid-hour port scan, sorted by time so the
// split lands exactly on a window boundary.
func crashStream(t *testing.T) []flowlog.Record {
	t.Helper()
	c, err := cluster.New(cluster.MicroserviceBench(0.2))
	if err != nil {
		t.Fatal(err)
	}
	c.AddAttack(cluster.PortScan{
		AttackerRole: "frontend",
		TargetRole:   "redis",
		PortsPerMin:  40,
		Start:        streamStart.Add(10 * time.Minute),
		Duration:     10 * time.Minute,
	})
	recs, err := c.CollectHour(streamStart)
	if err != nil {
		t.Fatal(err)
	}
	sort.SliceStable(recs, func(i, j int) bool { return recs[i].Time.Before(recs[j].Time) })
	return recs
}

// buildDaemon compiles cloudgraphd once per test run.
func buildDaemon(t *testing.T) string {
	t.Helper()
	bin := filepath.Join(t.TempDir(), "cloudgraphd")
	cmd := exec.Command("go", "build", "-o", bin, ".")
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("go build: %v\n%s", err, out)
	}
	return bin
}

var (
	listenRE = regexp.MustCompile(`listening on (\S+)`)
	opsRE    = regexp.MustCompile(`ops endpoint on http://(\S+)`)
)

// daemon is one running cloudgraphd under test control.
type daemon struct {
	cmd     *exec.Cmd
	addr    string
	opsAddr string // empty unless started with withOps
}

// startDaemon launches the binary against dataDir and waits for its
// listen address on stderr. Pass withOps to also bind the ops HTTP
// endpoint (on a random port) and wait for its address too.
const withOps = "with-ops"

func startDaemon(t *testing.T, bin, dataDir string, traceSample int, opts ...string) *daemon {
	t.Helper()
	opsArg := ""
	for _, opt := range opts {
		if opt == withOps {
			opsArg = "127.0.0.1:0"
		}
	}
	cmd := exec.Command(bin,
		"-addr", "127.0.0.1:0",
		"-ops", opsArg,
		"-window", "1m",
		"-data-dir", dataDir,
		"-history-retention", "48h",
		"-trace-sample", fmt.Sprint(traceSample),
	)
	stderr, err := cmd.StderrPipe()
	if err != nil {
		t.Fatal(err)
	}
	if err := cmd.Start(); err != nil {
		t.Fatalf("start %s: %v", bin, err)
	}
	addrCh := make(chan string, 1)
	opsCh := make(chan string, 1)
	go func() {
		sc := bufio.NewScanner(stderr)
		for sc.Scan() {
			if m := listenRE.FindStringSubmatch(sc.Text()); m != nil {
				select {
				case addrCh <- m[1]:
				default:
				}
			}
			if m := opsRE.FindStringSubmatch(sc.Text()); m != nil {
				select {
				case opsCh <- m[1]:
				default:
				}
			}
		}
	}()
	d := &daemon{cmd: cmd}
	t.Cleanup(func() { d.kill() })
	select {
	case d.addr = <-addrCh:
	case <-time.After(30 * time.Second):
		d.kill()
		t.Fatal("daemon never reported its listen address")
	}
	if opsArg != "" {
		select {
		case d.opsAddr = <-opsCh:
		case <-time.After(30 * time.Second):
			d.kill()
			t.Fatal("daemon never reported its ops address")
		}
	}
	return d
}

// kill delivers SIGKILL — the crash under test — and reaps the process.
func (d *daemon) kill() {
	if d.cmd.Process == nil {
		return
	}
	d.cmd.Process.Kill()
	d.cmd.Wait()
}

// stop shuts the daemon down gracefully.
func (d *daemon) stop(t *testing.T) {
	t.Helper()
	if err := d.cmd.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatalf("SIGTERM: %v", err)
	}
	if err := d.cmd.Wait(); err != nil {
		t.Fatalf("daemon exit: %v", err)
	}
}

// feed ingests recs and flushes; the FLUSH response means every completed
// window has been durably appended to the history store (the engine
// drains the consumer bus and histstore syncs each record).
func feed(t *testing.T, addr string, recs []flowlog.Record) {
	t.Helper()
	client, err := analytics.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()
	if err := client.Ingest(recs); err != nil {
		t.Fatalf("ingest: %v", err)
	}
	if _, err := client.Flush(); err != nil {
		t.Fatalf("flush: %v", err)
	}
}

// queryAll snapshots every analysis result at every epoch 1..newest.
func queryAll(t *testing.T, addr string) map[string]map[uint64]string {
	t.Helper()
	client, err := analytics.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()
	out := make(map[string]map[uint64]string)
	for _, name := range []string{"segment", "summarize", "counterfactual", "policy"} {
		latest, err := client.Query(name, 0)
		if err != nil {
			t.Fatalf("QUERY %s latest: %v", name, err)
		}
		byEpoch := make(map[uint64]string, latest.Epoch)
		for ep := uint64(1); ep <= latest.Epoch; ep++ {
			res, err := client.Query(name, ep)
			if err != nil {
				t.Fatalf("QUERY %s %d: %v", name, ep, err)
			}
			byEpoch[ep] = string(res.Result)
		}
		out[name] = byEpoch
	}
	return out
}

// TestCrashRecoveryEndToEnd is the ISSUE-8 acceptance scenario: kill
// cloudgraphd mid-stream with SIGKILL, restart it on the same -data-dir,
// finish the stream, and every QUERY result — every analysis, every
// epoch — is byte-equal to an uninterrupted daemon that saw the whole
// stream. Runs with tracing off and on; neither may perturb a byte.
func TestCrashRecoveryEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and drives real daemons")
	}
	bin := buildDaemon(t)
	recs := crashStream(t)
	// Split on a whole-window boundary so the pre-crash FLUSH completes
	// exactly the windows an uninterrupted run would have completed.
	cut := sort.Search(len(recs), func(i int) bool {
		return !recs[i].Time.Before(streamStart.Add(30 * time.Minute))
	})
	if cut == 0 || cut == len(recs) {
		t.Fatalf("degenerate split at %d of %d", cut, len(recs))
	}

	for _, tc := range []struct {
		name   string
		sample int
	}{
		{"untraced", 0},
		{"traced", 4},
	} {
		t.Run(tc.name, func(t *testing.T) {
			// Crashed run: first half, SIGKILL, restart, second half.
			dataDir := filepath.Join(t.TempDir(), "hist")
			a := startDaemon(t, bin, dataDir, tc.sample)
			feed(t, a.addr, recs[:cut])
			a.kill()

			b := startDaemon(t, bin, dataDir, tc.sample)
			feed(t, b.addr, recs[cut:])
			crashed := queryAll(t, b.addr)

			// The store directory must actually hold segments — the replay
			// was real, not an empty-dir restart.
			ents, err := os.ReadDir(dataDir)
			if err != nil || len(ents) < 2 {
				t.Fatalf("history dir %s: %v entries, err %v", dataDir, len(ents), err)
			}
			b.stop(t)

			// Uninterrupted run over the whole stream.
			u := startDaemon(t, bin, filepath.Join(t.TempDir(), "hist"), tc.sample)
			feed(t, u.addr, recs)
			whole := queryAll(t, u.addr)
			u.stop(t)

			for name, byEpoch := range whole {
				if len(byEpoch) < 50 {
					t.Fatalf("%s: only %d epochs; the hour should complete ~60 minute windows", name, len(byEpoch))
				}
				if len(crashed[name]) != len(byEpoch) {
					t.Fatalf("%s: crashed run answered %d epochs, uninterrupted %d",
						name, len(crashed[name]), len(byEpoch))
				}
				for ep, want := range byEpoch {
					if got := crashed[name][ep]; got != want {
						t.Errorf("%s@%d diverges after crash:\n  crashed: %s\n  whole:   %s", name, ep, got, want)
					}
				}
			}
		})
	}
}
