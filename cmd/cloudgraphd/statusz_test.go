package main

import (
	"encoding/json"
	"net/http"
	"path/filepath"
	"sort"
	"testing"
	"time"

	"cloudgraph/internal/statusz"
)

// getStatus fetches and decodes /statusz?format=json from a daemon's ops
// endpoint.
func getStatus(t *testing.T, opsAddr string) statusz.Status {
	t.Helper()
	client := &http.Client{Timeout: 10 * time.Second}
	resp, err := client.Get("http://" + opsAddr + "/statusz?format=json")
	if err != nil {
		t.Fatalf("GET /statusz: %v", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/statusz = %d", resp.StatusCode)
	}
	var st statusz.Status
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatalf("decoding /statusz: %v", err)
	}
	return st
}

// TestStatuszWatermarksSurviveRestart kills a daemon mid-stream with
// SIGKILL and asserts the restarted daemon's /statusz watermarks agree
// with the history store's durable epoch range: every stage resumes at
// the recovered epoch (replayed windows are not re-analyzed latency), and
// after the rest of the stream the durable watermark tracks the store's
// newest epoch again.
func TestStatuszWatermarksSurviveRestart(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and drives real daemons")
	}
	bin := buildDaemon(t)
	recs := crashStream(t)
	cut := sort.Search(len(recs), func(i int) bool {
		return !recs[i].Time.Before(streamStart.Add(30 * time.Minute))
	})

	dataDir := filepath.Join(t.TempDir(), "hist")
	a := startDaemon(t, bin, dataDir, 0, withOps)
	feed(t, a.addr, recs[:cut])
	before := getStatus(t, a.opsAddr)
	if before.Watermarks == nil || before.Hist == nil {
		t.Fatalf("pre-crash status missing sections: %+v", before)
	}
	if before.Watermarks.Sealed == 0 {
		t.Fatal("no windows sealed before the crash")
	}
	// FLUSH drains the bus, so the durable watermark has caught the seal
	// and the store's newest epoch matches both.
	if before.Hist.NewestEpoch != before.Watermarks.Sealed {
		t.Errorf("pre-crash: histstore newest %d != sealed watermark %d",
			before.Hist.NewestEpoch, before.Watermarks.Sealed)
	}
	a.kill()

	b := startDaemon(t, bin, dataDir, 0, withOps)
	after := getStatus(t, b.opsAddr)
	if after.Watermarks == nil || after.Hist == nil {
		t.Fatalf("post-restart status missing sections: %+v", after)
	}
	// The resumed watermarks must agree with the durable ground truth: the
	// seal picks up at the store's newest epoch, ingest at the next one,
	// and every stage is fast-forwarded (replayed windows owe no latency).
	if after.Watermarks.Sealed != after.Hist.NewestEpoch {
		t.Errorf("post-restart: sealed watermark %d != histstore newest %d",
			after.Watermarks.Sealed, after.Hist.NewestEpoch)
	}
	if after.Watermarks.Sealed != before.Hist.NewestEpoch {
		t.Errorf("post-restart sealed %d, but the store held %d at the crash",
			after.Watermarks.Sealed, before.Hist.NewestEpoch)
	}
	if after.Watermarks.Ingested != after.Watermarks.Sealed+1 {
		t.Errorf("post-restart ingested %d, want sealed+1 = %d",
			after.Watermarks.Ingested, after.Watermarks.Sealed+1)
	}
	for _, st := range after.Watermarks.Stages {
		if st.Epoch != after.Watermarks.Sealed {
			t.Errorf("stage %s resumed at epoch %d, want %d", st.Name, st.Epoch, after.Watermarks.Sealed)
		}
		if st.Burned != 0 {
			t.Errorf("stage %s burned %d windows during replay; recovery must not burn budget", st.Name, st.Burned)
		}
	}

	// Finish the stream: the watermarks advance past the recovered epoch
	// and the durable stage tracks the store again.
	feed(t, b.addr, recs[cut:])
	final := getStatus(t, b.opsAddr)
	if final.Watermarks.Sealed <= after.Watermarks.Sealed {
		t.Errorf("sealed watermark stuck at %d after feeding the second half", final.Watermarks.Sealed)
	}
	if final.Watermarks.Sealed != final.Hist.NewestEpoch {
		t.Errorf("final: sealed %d != histstore newest %d", final.Watermarks.Sealed, final.Hist.NewestEpoch)
	}
	durable := false
	for _, st := range final.Watermarks.Stages {
		if st.Name == "durable" {
			durable = true
			if st.Epoch != final.Hist.NewestEpoch {
				t.Errorf("durable watermark %d != histstore newest %d", st.Epoch, final.Hist.NewestEpoch)
			}
		}
	}
	if !durable {
		t.Error("no durable stage in /statusz watermarks")
	}
	b.stop(t)
}
