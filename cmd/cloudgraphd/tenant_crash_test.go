package main

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"testing"
	"time"

	"cloudgraph/internal/analytics"
	"cloudgraph/internal/cluster"
	"cloudgraph/internal/flowlog"
)

// tenantStream generates one tenant subscription's deterministic hour;
// the seed and shape differ per tenant so no two tenants' analyses could
// match by accident.
func tenantStream(t *testing.T, seed int64, fe, be int) []flowlog.Record {
	t.Helper()
	c, err := cluster.New(cluster.Spec{
		Name: fmt.Sprintf("tenant-%d", seed), Seed: seed,
		Roles: []cluster.RoleSpec{
			{Name: "fe", Count: fe, Port: 443},
			{Name: "be", Count: be, Port: 9000},
		},
		Links: []cluster.LinkSpec{
			{Src: "fe", Dst: "be", FlowsPerMin: float64(10 + seed), Fanout: -1, FwdBytes: 1200, RevBytes: 2400},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	recs, err := c.CollectHour(streamStart)
	if err != nil {
		t.Fatal(err)
	}
	sort.SliceStable(recs, func(i, j int) bool { return recs[i].Time.Before(recs[j].Time) })
	return recs
}

// feedTagged streams a tagged batch sequence and then flushes each named
// tenant, so every completed window of every tenant is durable before
// the caller crashes or queries the daemon.
func feedTagged(t *testing.T, addr string, recs []flowlog.Record, tags []string, flush []string) {
	t.Helper()
	client, err := analytics.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()
	const batch = 2048
	for i := 0; i < len(recs); i += batch {
		end := min(i+batch, len(recs))
		if err := client.IngestTagged(recs[i:end], nil, tags[i:end]); err != nil {
			t.Fatalf("tagged ingest: %v", err)
		}
	}
	for _, tenant := range flush {
		if err := client.Tenant(tenant); err != nil {
			t.Fatalf("TENANT %s: %v", tenant, err)
		}
		if _, err := client.Flush(); err != nil {
			t.Fatalf("flush %s: %v", tenant, err)
		}
	}
}

// queryAllTenant is queryAll through a TENANT binding: every analysis at
// every epoch of one tenant's plane.
func queryAllTenant(t *testing.T, addr, tenant string) map[string]map[uint64]string {
	t.Helper()
	client, err := analytics.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()
	if err := client.Tenant(tenant); err != nil {
		t.Fatalf("TENANT %s: %v", tenant, err)
	}
	out := make(map[string]map[uint64]string)
	for _, name := range []string{"segment", "summarize", "counterfactual", "policy"} {
		latest, err := client.Query(name, 0)
		if err != nil {
			t.Fatalf("tenant %s QUERY %s latest: %v", tenant, name, err)
		}
		byEpoch := make(map[uint64]string, latest.Epoch)
		for ep := uint64(1); ep <= latest.Epoch; ep++ {
			res, err := client.Query(name, ep)
			if err != nil {
				t.Fatalf("tenant %s QUERY %s %d: %v", tenant, name, ep, err)
			}
			byEpoch[ep] = string(res.Result)
		}
		out[name] = byEpoch
	}
	return out
}

// TestTenantCrashRecoveryEndToEnd is the multi-tenant half of the
// crash-recovery pin: two tenants interleaved through one daemon as
// tagged frames, SIGKILL mid-stream, restart on the same -data-dir,
// finish the stream — and each tenant's QUERY results, every analysis at
// every epoch, are byte-equal to a dedicated daemon that served that
// tenant alone without interruption. The per-tenant history partitions
// under <data-dir>/<tenant>/ are what make the recovery independent.
func TestTenantCrashRecoveryEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and drives real daemons")
	}
	bin := buildDaemon(t)
	tenants := []string{"acme", "globex"}
	streams := map[string][]flowlog.Record{
		"acme":   tenantStream(t, 3, 3, 2),
		"globex": tenantStream(t, 7, 2, 3),
	}

	// Interleave chronologically with per-frame tags; the split below
	// lands both tenants on the same whole-window boundary.
	var merged []flowlog.Record
	var tags []string
	idx := map[string]int{}
	for {
		best := ""
		for _, name := range tenants {
			if idx[name] >= len(streams[name]) {
				continue
			}
			if best == "" || streams[name][idx[name]].Time.Before(streams[best][idx[best]].Time) {
				best = name
			}
		}
		if best == "" {
			break
		}
		merged = append(merged, streams[best][idx[best]])
		tags = append(tags, best)
		idx[best]++
	}
	cut := sort.Search(len(merged), func(i int) bool {
		return !merged[i].Time.Before(streamStart.Add(30 * time.Minute))
	})
	if cut == 0 || cut == len(merged) {
		t.Fatalf("degenerate split at %d of %d", cut, len(merged))
	}

	// Crashed run: first half, SIGKILL, restart, second half.
	dataDir := filepath.Join(t.TempDir(), "hist")
	a := startDaemon(t, bin, dataDir, 0)
	feedTagged(t, a.addr, merged[:cut], tags[:cut], tenants)
	a.kill()

	b := startDaemon(t, bin, dataDir, 0)
	feedTagged(t, b.addr, merged[cut:], tags[cut:], tenants)
	crashed := map[string]map[string]map[uint64]string{}
	for _, tenant := range tenants {
		crashed[tenant] = queryAllTenant(t, b.addr, tenant)
	}
	// The recovery was real: each tenant owns a populated partition.
	for _, tenant := range tenants {
		ents, err := os.ReadDir(filepath.Join(dataDir, tenant))
		if err != nil || len(ents) == 0 {
			t.Fatalf("tenant partition %s: %d entries, err %v", tenant, len(ents), err)
		}
	}
	b.stop(t)

	// Each tenant alone, uninterrupted, on its own daemon — fed through
	// the same TENANT binding so the planes are named identically.
	for _, tenant := range tenants {
		u := startDaemon(t, bin, filepath.Join(t.TempDir(), "hist"), 0)
		solo := make([]string, len(streams[tenant]))
		for i := range solo {
			solo[i] = tenant
		}
		feedTagged(t, u.addr, streams[tenant], solo, []string{tenant})
		whole := queryAllTenant(t, u.addr, tenant)
		u.stop(t)

		for name, byEpoch := range whole {
			if len(byEpoch) < 50 {
				t.Fatalf("%s/%s: only %d epochs; the hour should complete ~60 minute windows", tenant, name, len(byEpoch))
			}
			if len(crashed[tenant][name]) != len(byEpoch) {
				t.Fatalf("%s/%s: crashed run answered %d epochs, solo %d",
					tenant, name, len(crashed[tenant][name]), len(byEpoch))
			}
			for ep, want := range byEpoch {
				if got := crashed[tenant][name][ep]; got != want {
					t.Errorf("%s/%s@%d diverges after crash:\n  multi+crash: %s\n  solo:        %s",
						tenant, name, ep, got, want)
				}
			}
		}
	}
}
