package main

import (
	"fmt"
	"log"
	"os"
	"time"

	"cloudgraph/internal/cluster"
	"cloudgraph/internal/core"
	"cloudgraph/internal/graph"
	"cloudgraph/internal/heatmap"
	"cloudgraph/internal/matrix"
	"cloudgraph/internal/summarize"
)

// expFig4 regenerates Figure 4: adjacency-matrix heatmaps of bytes
// exchanged (log scale) for K8s PaaS, µserviceBench and Portal.
func expFig4(e *env) {
	header("fig4", "Adjacency matrices of bytes exchanged (log scale)",
		"Clear patterns: chatty cliques (blocks) and hub-and-spoke (bands); hubs are likely control-plane components.")
	for _, preset := range []string{"k8spaas", "microservicebench", "portal"} {
		_, _, g := hourly(e, preset, e.datasetScale(preset), e.start)
		adj := g.AdjacencyMatrix(graph.Bytes)
		pgmPath := e.artifact("fig4-" + preset + ".pgm")
		if err := os.WriteFile(pgmPath, heatmap.PGM(adj.M, adj.N), 0o644); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("\n### %s (%dx%d, full image: %s)\n\n```\n%s```\n", preset, adj.N, adj.N, pgmPath, heatmap.ASCII(adj.M, adj.N, 40))
		sum := summarize.Summarize(g)
		fmt.Printf("patterns: %d hub(s), %d chatty clique(s) — %s\n", len(sum.Hubs), len(sum.Cliques), sum.Headline)
	}
	fmt.Println("\nShape check: block structure (cliques) and bands (hubs) are visible in every dataset, as in the paper's Figure 4.")
}

// expFig5 regenerates Figure 5: a timelapse of the K8s PaaS byte matrix
// over consecutive hours — most patterns persist, some bands shift.
func expFig5(e *env) {
	header("fig5", "Timelapse of bytes exchanged on K8s PaaS",
		"Three consecutive hours after Figure 4(a): some bands shrink or grow, a few appear only during some hours, many patterns are consistent.")
	// One continuous four-hour run of the cluster, windowed hourly, so
	// consecutive matrices carry natural workload drift.
	scale := e.datasetScale("k8spaas")
	spec, err := cluster.Preset("k8spaas", scale)
	if err != nil {
		log.Fatal(err)
	}
	c, err := cluster.New(spec)
	if err != nil {
		log.Fatal(err)
	}
	engine := core.NewEngine(core.Config{
		Window: time.Hour,
		Collapse: graph.CollapseOptions{
			Threshold: spec.CollapseThreshold,
			Keep:      func(n graph.Node) bool { return c.Monitored(n.Addr) },
		},
	})
	if _, err := c.Run(e.start, 4*60, engine); err != nil {
		log.Fatal(err)
	}
	graphs := engine.Flush()
	for h, g := range graphs {
		adj := g.AdjacencyMatrix(graph.Bytes)
		path := e.artifact(fmt.Sprintf("fig5-k8spaas-hour%d.pgm", h))
		if err := os.WriteFile(path, heatmap.PGM(adj.M, adj.N), 0o644); err != nil {
			log.Fatal(err)
		}
	}
	fmt.Println("| transition | byte drift (rel L1) | new pairs | lost pairs |")
	fmt.Println("|---|---|---|---|")
	scores := summarize.ScoreWindows(graphs, summarize.AnomalyOptions{MinHistory: 1})
	for i := 1; i < len(scores); i++ {
		fmt.Printf("| hour %d -> %d | %.3f | %d | %d |\n", i-1, i, scores[i].Drift, scores[i].NewPairs, scores[i].LostPairs)
	}
	fmt.Println("\nShape check: hour-over-hour drift stays low and stable — patterns persist, enabling the anomaly detection the paper proposes (validated in the `attacks` experiment).")
}

// expFig6 regenerates Figure 6: the CCDF of bytes vs fraction of nodes.
func expFig6(e *env) {
	header("fig6", "Where to invest more capacity? (traffic concentration CCDF)",
		"A few nodes account for most of the traffic in every dataset.")
	fmt.Println("| dataset | nodes for 50% of bytes | for 90% | for 99% |")
	fmt.Println("|---|---|---|---|")
	for _, preset := range []string{"k8spaas", "portal", "microservicebench"} {
		_, _, g := hourly(e, preset, e.datasetScale(preset), e.start)
		pts := summarize.CCDF(g, graph.Bytes)
		fmt.Printf("| %s | %.1f%% | %.1f%% | %.1f%% |\n", preset,
			100*summarize.FractionForShare(pts, 0.5),
			100*summarize.FractionForShare(pts, 0.9),
			100*summarize.FractionForShare(pts, 0.99))
	}
	fmt.Println("\nCCDF series (fraction of nodes, remaining byte share) — log-scale y as in the paper:")
	for _, preset := range []string{"k8spaas", "portal", "microservicebench"} {
		_, _, g := hourly(e, preset, e.datasetScale(preset), e.start)
		pts := summarize.CCDF(g, graph.Bytes)
		fmt.Printf("\n%s:", preset)
		step := len(pts)/8 + 1
		for i := 0; i < len(pts); i += step {
			fmt.Printf(" (%.2f, %.1e)", pts[i].Fraction, pts[i].CCDF)
		}
		fmt.Println()
	}
	fmt.Println("\nShape check: steep CCDF drop — a small node fraction carries the overwhelming share of bytes in all three datasets.")
}

// expPCA regenerates the §2.2 sparse-transform result: few eigenvectors
// suffice for low reconstruction error on the K8s PaaS matrix.
func expPCA(e *env) {
	header("pca", "Spectral compression of the K8s PaaS byte matrix",
		"Using just k=25 eigenvectors (n>500) gives ReconErr < 0.05: each reconstructed entry is within 5% of its true value on average.")
	_, _, g := hourly(e, "k8spaas", e.datasetScale("k8spaas"), e.start)
	adj := g.AdjacencyMatrix(graph.Bytes)
	p, err := matrix.NewPCA(adj.Symmetrized(), adj.N)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("- matrix size n = %d (paper: n > 500 at full scale)\n\n", p.N)
	fmt.Println("| k | ReconErr |")
	fmt.Println("|---|---|")
	for _, k := range []int{1, 5, 10, 25, 50, 100} {
		if k > p.N {
			break
		}
		fmt.Printf("| %d | %.4f |\n", k, p.ReconErr(k))
	}
	rank := p.RankFor(0.05)
	fmt.Printf("\n- smallest k with ReconErr <= 0.05: **%d** (paper: 25)\n", rank)

	// Footnote 6: FastICA's independent components give similar results.
	if ica, err := matrix.FastICA(adj.Symmetrized(), adj.N, 25, 300, 1); err == nil {
		fmt.Printf("- FastICA with k=25 components: ReconErr %.4f (PCA at k=25: %.4f) — footnote 6's 'similar results' hold\n",
			ica.ReconErr(adj.Symmetrized()), p.ReconErr(25))
	} else {
		fmt.Printf("- FastICA unavailable on this matrix: %v\n", err)
	}
	fmt.Println("\nShape check: the error collapses with a small fraction of the eigenvectors — communication graphs are spectrally sparse.")
}
