package main

import (
	"encoding/json"
	"fmt"
	"log"
	"time"

	"cloudgraph/internal/cluster"
	"cloudgraph/internal/runner"
	"cloudgraph/internal/timeline"
)

// expLive drives the online analysis plane offline: the same Runner
// implementations cloudgraphd -live executes on the consumer bus are
// replayed here over a recorded stream via Plane.Replay, so the table
// below is produced by the exact code path that answers `graphctl query`.
// A port scan injected mid-hour should surface in the summarize runner's
// drift and in policy churn pricing.
func expLive(e *env) {
	header("live", "Online analysis plane replayed over a recorded hour",
		"One code path: the figures below come from the same runners cloudgraphd serves over QUERY, driven through the versioned timeline.")

	// A fresh cluster, not the shared hourly cache: the injected attack
	// must not leak into experiments reusing the cached clean hour.
	spec, err := cluster.Preset("microservicebench", e.datasetScale("microservicebench"))
	if err != nil {
		log.Fatal(err)
	}
	c, err := cluster.New(spec)
	if err != nil {
		log.Fatal(err)
	}
	c.AddAttack(cluster.PortScan{
		AttackerRole: "frontend",
		TargetRole:   "redis",
		PortsPerMin:  40,
		Start:        e.start.Add(10 * time.Minute),
		Duration:     10 * time.Minute,
	})
	recs, err := c.CollectHour(e.start)
	if err != nil {
		log.Fatal(err)
	}

	p := runner.New(runner.Config{Timeline: timeline.Config{Rollup: time.Hour}})
	windows := p.Replay(recs, runner.ReplayOptions{Window: 5 * time.Minute})
	fmt.Printf("\n%d five-minute windows analyzed by %v\n\n", len(windows), p.Runners())

	fmt.Println("| epoch | window start | segments | drift | anomalous | moved | ip-rule churn | tag churn |")
	fmt.Println("|------:|--------------|---------:|------:|-----------|------:|--------------:|----------:|")
	_, newest := p.Epochs("segment")
	for ep := uint64(1); ep <= newest; ep++ {
		var seg runner.SegmentResult
		var sum runner.SummarizeResult
		var pol runner.PolicyChurnResult
		mustQuery(p, "segment", ep, &seg)
		mustQuery(p, "summarize", ep, &sum)
		mustQuery(p, "policy", ep, &pol)
		fmt.Printf("| %d | %s | %d | %.4f | %v | %d | %d | %d |\n",
			ep, windows[ep-1].Start.UTC().Format("15:04"),
			seg.NumSegments, sum.Score.Drift, sum.Score.Anomalous,
			pol.Moved, pol.IPRuleUpdates, pol.TagUpdates)
	}

	var plan runner.CounterfactualResult
	mustQuery(p, "counterfactual", 0, &plan)
	fmt.Printf("\ncounterfactual @ latest: %d SKU upgrade candidate(s), %d proximity pair(s)\n",
		len(plan.Upgrades), len(plan.Proximity))

	snap := p.Timeline().Latest()
	fmt.Printf("timeline: epoch %d, %d window snapshot(s), %d sealed hourly roll-up(s)\n",
		snap.Epoch, len(snap.Windows), len(snap.Rollups))
	fmt.Println("\nShape check: policy churn prices the scan-driven re-segmentation while the attack runs (epochs 3-4), with per-IP rule updates well above tag updates; quiet epochs stay flat.")
}

// mustQuery unmarshals one retained plane result or dies.
func mustQuery(p *runner.Plane, name string, epoch uint64, out any) {
	_, raw, err := p.Query(name, epoch)
	if err != nil {
		log.Fatal(err)
	}
	if err := json.Unmarshal(raw, out); err != nil {
		log.Fatal(err)
	}
}
