package main

import (
	"fmt"
	"log"

	"cloudgraph/internal/cluster"
	"cloudgraph/internal/graph"
	"cloudgraph/internal/segment"
)

// expFacets demonstrates §2.1 concern (2): "Resources may have multiple
// roles, for e.g., a VM may run multiple services. Thus, segmenting IP-port
// graphs may be more useful but these graphs can be much larger than
// IP-graphs." The endpoint facet keys service sides by {IP, port} without
// the ephemeral explosion, separating co-located services.
func expFacets(e *env) {
	header("facets", "Multi-faceted graphs: separating co-located services",
		"One communication trace can be represented as many graphs (IPs, services, {IP, port}); choosing which graph to construct requires networking insight. VMs running multiple services are indistinguishable at the IP facet.")

	// A fleet where every web VM also hosts a metrics exporter with a
	// completely different peer structure.
	spec := cluster.Spec{
		Name: "colo", Seed: 33,
		Roles: []cluster.RoleSpec{
			{Name: "web", Count: 12, Port: 443},
			{Name: "metrics", ColocateWith: "web", Port: 9100},
			{Name: "db", Count: 4, Port: 5432},
			{Name: "scraper", Count: 3, Port: 9999},
			{Name: "client", Count: 60, External: true},
		},
		Links: []cluster.LinkSpec{
			{Src: "client", Dst: "web", FlowsPerMin: 12, Fanout: 3, FwdBytes: 700, RevBytes: 12_000},
			{Src: "web", Dst: "db", FlowsPerMin: 25, Fanout: -1, FwdBytes: 900, RevBytes: 3_500},
			{Src: "scraper", Dst: "metrics", FlowsPerMin: 20, Fanout: -1, FwdBytes: 200, RevBytes: 15_000},
		},
	}
	c, err := cluster.New(spec)
	if err != nil {
		log.Fatal(err)
	}
	recs, err := c.CollectHour(e.start)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("| facet | nodes | edges | segments | web/metrics separated? | purity vs endpoint truth |")
	fmt.Println("|---|---|---|---|---|---|")
	web := c.Addresses("web")[0]
	truth := c.GroundTruthEndpoints()
	for _, facet := range []graph.Facet{graph.FacetIP, graph.FacetEndpoint, graph.FacetIPPort} {
		g := graph.Build(recs, graph.BuilderOptions{Facet: facet})
		sep := "n/a (one node per VM)"
		purity := "—"
		if facet != graph.FacetIPPort || g.NumNodes() < 20_000 {
			assign, err := segment.Run(segment.StrategyJaccardLouvain, g, segment.Options{})
			if err != nil {
				log.Fatal(err)
			}
			n443 := graph.IPPortNode(web, 443)
			n9100 := graph.IPPortNode(web, 9100)
			if g.HasNode(n443) && g.HasNode(n9100) {
				if assign[n443] != assign[n9100] {
					sep = "yes"
				} else {
					sep = "no"
				}
			}
			q := segment.Score(assign, truth)
			if q.Nodes > 0 {
				purity = fmt.Sprintf("%.2f", q.Purity)
			}
			fmt.Printf("| %s | %d | %d | %d | %s | %s |\n",
				facet, g.NumNodes(), g.NumEdges(), assign.NumSegments(), sep, purity)
			continue
		}
		fmt.Printf("| %s | %d | %d | (too large to segment) | — | — |\n", facet, g.NumNodes(), g.NumEdges())
	}
	fmt.Println("\nShape check: the IP facet cannot express the distinction (one node per VM); the endpoint facet separates web:443 from web:9100 at a fraction of the full IP-port graph's size — the practical middle ground the paper's concern calls for.")
}
