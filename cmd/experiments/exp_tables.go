package main

import (
	"fmt"
	"log"
	"time"

	"cloudgraph/internal/cluster"
	"cloudgraph/internal/flowlog"
	"cloudgraph/internal/graph"
)

// expTable1 regenerates Table 1: per dataset, #IPs monitored, IP-graph and
// IP-port-graph sizes for one hour, and records/minute.
func expTable1(e *env) {
	header("table1", "Cloud clusters and their communication graphs",
		"Portal 4 IPs: 4K nodes (5K edges), 332 rec/min · µserviceBench 16: 33 (268), 48K · K8s PaaS 390: 541 (12K), 68K · KQuery 1400: 6K (1.3M), 2.3M. "+
			"IP-port graphs at least an order of magnitude larger.")
	fmt.Println("| dataset | scale | #IPs mon. | IP graph nodes (edges) | IP-port nodes (edges) | records/min |")
	fmt.Println("|---|---|---|---|---|---|")
	targets := map[string]string{
		"portal":            "4K (5K) @ 332/min",
		"microservicebench": "33 (268) @ 48K/min",
		"k8spaas":           "541 (12K) @ 68K/min",
		"kquery":            "6K (1.3M) @ 2.3M/min",
	}
	for _, preset := range cluster.PresetNames() {
		scale := e.datasetScale(preset)
		spec, err := cluster.Preset(preset, scale)
		if err != nil {
			log.Fatal(err)
		}
		c, err := cluster.New(spec)
		if err != nil {
			log.Fatal(err)
		}
		recs, err := c.CollectHour(e.start)
		if err != nil {
			log.Fatal(err)
		}
		keep := func(n graph.Node) bool { return c.Monitored(n.Addr) }
		ip := graph.Build(recs, graph.BuilderOptions{Facet: graph.FacetIP})
		if spec.CollapseThreshold > 0 {
			ip = ip.Collapse(graph.CollapseOptions{Threshold: spec.CollapseThreshold, Keep: keep})
		}
		ipport := graph.Build(recs, graph.BuilderOptions{Facet: graph.FacetIPPort})
		if spec.CollapseThreshold > 0 {
			ipport = ipport.Collapse(graph.CollapseOptions{Threshold: spec.CollapseThreshold, Keep: keep})
		}
		fmt.Printf("| %s (paper: %s) | %.2f | %d | %d (%d) | %d (%d) | %d |\n",
			spec.Name, targets[preset], scale, c.MonitoredIPs(),
			ip.NumNodes(), ip.NumEdges(), ipport.NumNodes(), ipport.NumEdges(), len(recs)/60)
	}
	fmt.Println("\nShape checks: node/edge/records ordering across datasets matches the paper; IP-port graphs are ≥10x the IP graphs; scaled datasets shrink edges ~quadratically with scale (see DESIGN.md).")
}

// expTable3 regenerates Table 3: provider profiles and the effect of GCP's
// sampling on record volume, collection cost and graph completeness.
func expTable3(e *env) {
	header("table3", "Connection summaries at three large cloud providers",
		"Azure NSG / AWS VPC flow logs: 1-min unsampled; GCP VPC flow logs: 5s+, 3% of packets in 50% of flows; ~$0.5/GB to collect.")
	fmt.Println("| provider | log | interval | pkt sample | flow sample |")
	fmt.Println("|---|---|---|---|---|")
	for _, p := range flowlog.Providers() {
		fmt.Printf("| %s | %s | %v | %.0f%% | %.0f%% |\n",
			p.Name, p.LogName, p.AggInterval, 100*p.PacketSample, 100*p.FlowSample)
	}

	// Measure sampling impact on a µserviceBench hour.
	spec, _ := cluster.Preset("microservicebench", 0.2)
	c, err := cluster.New(spec)
	if err != nil {
		log.Fatal(err)
	}
	recs, err := c.CollectHour(e.start)
	if err != nil {
		log.Fatal(err)
	}
	full := graph.Build(recs, graph.BuilderOptions{Facet: graph.FacetIP})
	fmt.Println("\n| provider | records kept | est. cost ($/hr) | IP-graph nodes | edges | bytes seen |")
	fmt.Println("|---|---|---|---|---|---|")
	for _, p := range flowlog.Providers() {
		s := flowlog.NewSampler(p, 42)
		var kept []flowlog.Record
		for _, r := range recs {
			if sr, ok := s.Sample(r); ok {
				kept = append(kept, sr)
			}
		}
		g := graph.Build(kept, graph.BuilderOptions{Facet: graph.FacetIP})
		fmt.Printf("| %s | %d (%.0f%%) | %.4f | %d | %d | %.0f%% |\n",
			p.Name, len(kept), 100*float64(len(kept))/float64(len(recs)),
			p.CollectionCost(len(kept)),
			g.NumNodes(), g.NumEdges(),
			100*float64(g.TotalTraffic().Bytes)/float64(full.TotalTraffic().Bytes))
	}
	fmt.Println("\nShape check: GCP's flow sampling halves record volume and cost; packet sampling quantizes counters but preserves totals of surviving flows.")
	_ = time.Minute
}
