package main

import (
	"fmt"
	"log"
	"time"

	"cloudgraph/internal/cluster"
	"cloudgraph/internal/graph"
	"cloudgraph/internal/model"
)

// expModel demonstrates the §2.2 open issue made concrete: a model
// pre-trained over many communication graphs that a customer can apply
// off-the-shelf to identify the canonical patterns in their network, plus
// byte attribution for "80% of the bytes in your network are doing X".
func expModel(e *env) {
	header("model", "Pre-trained workload classifier and byte attribution (§2.2 extension)",
		"Open issue: can a generalizable model, pre-trained over many communication graphs, classify a customer's graph off-the-shelf? Quantization to fixed-size inputs is the stated challenge.")

	// Pre-train on small graphs of three workload families across seeds
	// and scales — the quantized fingerprint makes sizes comparable.
	presets := []string{"portal", "microservicebench", "k8spaas"}
	var samples []model.Sample
	for _, p := range presets {
		for _, cfg := range []struct {
			scale float64
			seed  int64
		}{{0.05, 11}, {0.05, 12}, {0.08, 13}, {0.10, 14}} {
			samples = append(samples, model.Sample{Label: p, FP: model.Fingerprint(smallHour(e, p, cfg.scale, cfg.seed))})
		}
	}
	clf, err := model.Train(samples)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("- trained on %d graphs across %d workload families (%d-dimensional quantized fingerprints)\n\n",
		len(samples), len(clf.Labels()), model.FingerprintLen)

	fmt.Println("| held-out graph | true family | classified as | confidence |")
	fmt.Println("|---|---|---|---|")
	correct, total := 0, 0
	for _, p := range presets {
		for _, cfg := range []struct {
			scale float64
			seed  int64
		}{{0.07, 99}, {0.12, 100}} {
			label, conf := clf.Classify(model.Fingerprint(smallHour(e, p, cfg.scale, cfg.seed)))
			total++
			if label == p {
				correct++
			}
			fmt.Printf("| scale %.2f seed %d | %s | %s | %.2f |\n", cfg.scale, cfg.seed, p, label, conf)
		}
	}
	fmt.Printf("\n- off-the-shelf accuracy on unseen graphs: **%d/%d**\n", correct, total)

	// Byte attribution: the executive summary per dataset.
	fmt.Println("\n| dataset | clique bytes | hub bytes | long tail | scatter | headline |")
	fmt.Println("|---|---|---|---|---|---|")
	for _, p := range []string{"k8spaas", "portal", "microservicebench"} {
		_, _, g := hourly(e, p, e.datasetScale(p), e.start)
		a := model.Attribute(g)
		fmt.Printf("| %s | %.0f%% | %.0f%% | %.0f%% | %.0f%% | %s |\n",
			p, 100*a.CliqueShare, 100*a.HubShare, 100*a.CollapsedShare, 100*a.ScatterShare, a.Headline)
	}
	fmt.Println("\nShape check: the quantized fingerprints transfer across graph sizes (the stated obstacle), unseen subscriptions classify into the right workload family, and every byte is attributed to a canonical pattern.")
}

// smallHour builds a small labelled training graph.
func smallHour(e *env, preset string, scale float64, seed int64) *graph.Graph {
	spec, err := cluster.Preset(preset, scale)
	if err != nil {
		log.Fatal(err)
	}
	spec.Seed = seed
	c, err := cluster.New(spec)
	if err != nil {
		log.Fatal(err)
	}
	recs, err := c.CollectHour(e.start.Add(-24 * time.Hour)) // distinct hour from the shared cache
	if err != nil {
		log.Fatal(err)
	}
	return graph.Build(recs, graph.BuilderOptions{Facet: graph.FacetIP})
}
