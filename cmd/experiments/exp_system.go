package main

import (
	"fmt"
	"log"
	"net/netip"
	"runtime"
	"sync"
	"time"

	"cloudgraph/internal/cluster"
	"cloudgraph/internal/core"
	"cloudgraph/internal/flowlog"
	"cloudgraph/internal/graph"
	"cloudgraph/internal/ingest"
	"cloudgraph/internal/nicsim"
	"cloudgraph/internal/policy"
	"cloudgraph/internal/segment"
)

// expFig7 validates the Figure 7 collection path: per-flow state on the
// NIC, an agent pulling summaries, zero work on the customer's resources,
// and memory proportional to concurrent flows.
func expFig7(e *env) {
	header("fig7", "Zero-impact telemetry collection on the (simulated) smartNIC",
		"Connection summaries are recorded in NIC memory — a few counters per flow the cards already track — and a host agent periodically pulls them; memory and log size are proportional to concurrent flows.")

	// Memory proportionality: drive increasing concurrent-flow counts.
	fmt.Println("| concurrent flows | NIC telemetry memory | bytes/flow |")
	fmt.Println("|---|---|---|")
	for _, flows := range []int{100, 1_000, 10_000} {
		v := nicsim.NewVNIC(netip.MustParseAddr("10.0.0.1"), 4*time.Minute)
		remote := netip.MustParseAddr("203.0.113.1")
		for i := 0; i < flows; i++ {
			v.Observe(uint16(i%60000+1024), netip.AddrPortFrom(remote, uint16(i/60000+1)), 1, 1, 100, 100, e.start)
		}
		mem := v.MemoryFootprint()
		fmt.Printf("| %d | %d B | %d |\n", flows, mem, mem/flows)
	}

	// Data-path overhead: cost of the counter update itself.
	v := nicsim.NewVNIC(netip.MustParseAddr("10.0.0.1"), 4*time.Minute)
	remote := netip.AddrPortFrom(netip.MustParseAddr("203.0.113.1"), 443)
	const updates = 2_000_000
	t := time.Now()
	for i := 0; i < updates; i++ {
		v.Observe(12345, remote, 1, 1, 1460, 60, e.start)
	}
	perUpdate := time.Since(t) / updates
	fmt.Printf("\n- per-packet-batch counter update: %v (software simulation of the 'few counters' the paper argues are negligible next to existing network-function processing)\n", perUpdate)

	// End-to-end: agents pull a full cluster's summaries.
	spec, _ := cluster.Preset("microservicebench", 0.2)
	c, err := cluster.New(spec)
	if err != nil {
		log.Fatal(err)
	}
	n := 0
	count := nicsim.CollectorFunc(func(b []flowlog.Record) error { n += len(b); return nil })
	if _, err := c.Run(e.start, 10, count); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("- host agents forwarded %d summaries over 10 minutes from %d hosts; VMs executed zero collection work and cannot tamper with it (it lives below the guest)\n",
		n, len(c.Fabric().Hosts()))
	fmt.Println("\nShape check: memory scales linearly with concurrent flows at a fixed per-flow footprint; the data-path cost is a handful of nanoseconds per update.")
}

// expFig8 sizes the analytics system of Figure 8: can ~1000 VMs worth of
// telemetry be analyzed with a handful of VMs (≈0.5% surcharge)?
func expFig8(e *env) {
	header("fig8", "Analytics COGS: graph construction throughput vs the 0.5% surcharge bar",
		"Analyze roughly 1000 VMs worth of telemetry (1-minute summaries) using a handful of VMs worth of resources; graph generation is a group-by-aggregation that must run in realtime on a few machines.")
	spec, _ := cluster.Preset("k8spaas", e.datasetScale("k8spaas"))
	c, err := cluster.New(spec)
	if err != nil {
		log.Fatal(err)
	}
	recs, err := c.CollectHour(e.start)
	if err != nil {
		log.Fatal(err)
	}
	recsPerMin := float64(len(recs)) / 60
	fmt.Printf("- workload: %d monitored VMs emitting %.0f records/min (one hour = %d records)\n\n",
		c.MonitoredIPs(), recsPerMin, len(recs))

	fmt.Println("| workers | wall time | records/sec | cores for live stream | VMs (8-core) for 1000-VM fleet | surcharge |")
	fmt.Println("|---|---|---|---|---|---|")
	perVM := recsPerMin / float64(c.MonitoredIPs()) // records/min/VM
	workerCounts := []int{1, 2, 4}
	if n := runtime.NumCPU(); n > 4 {
		workerCounts = append(workerCounts, n)
	}
	for _, workers := range workerCounts {
		p := ingest.NewPipeline(workers, graph.BuilderOptions{Facet: graph.FacetIP})
		t := time.Now()
		const batch = 8192
		for i := 0; i < len(recs); i += batch {
			end := min(i+batch, len(recs))
			p.Ingest(recs[i:end])
		}
		_, report := p.Close()
		wall := time.Since(t)
		live1000 := perVM * 1000 // records/min for a 1000-VM fleet
		cores := report.CoresForLive(live1000)
		vms := cores / 8
		surcharge := 100 * vms / 1000
		fmt.Printf("| %d | %v | %.0f | %.3f | %.4f | %.4f%% |\n",
			workers, wall.Round(time.Millisecond), float64(len(recs))/wall.Seconds(),
			cores, vms, surcharge)
	}
	// The same sweep over the engine's sharded hot path: here parallelism
	// comes from concurrent callers (analytics connections), so drive each
	// shard count with that many ingesting goroutines.
	fmt.Println("\n| engine shards | concurrent callers | wall time | records/sec | merge time | windows |")
	fmt.Println("|---|---|---|---|---|---|")
	for _, shards := range workerCounts {
		eng := core.NewEngine(core.Config{Window: time.Hour, Shards: shards})
		t := time.Now()
		var wg sync.WaitGroup
		const ebatch = 8192
		for w := 0; w < shards; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				for i := w * ebatch; i < len(recs); i += ebatch * shards {
					end := min(i+ebatch, len(recs))
					eng.Ingest(recs[i:end])
				}
			}(w)
		}
		wg.Wait()
		windows := eng.Flush()
		wall := time.Since(t)
		report := eng.Cost()
		fmt.Printf("| %d | %d | %v | %.0f | %v | %d |\n",
			shards, shards, wall.Round(time.Millisecond), float64(len(recs))/wall.Seconds(),
			report.Merge.Round(time.Millisecond), len(windows))
	}
	fmt.Println("\nShape check: realtime graph construction for a 1000-VM subscription needs a small fraction of one VM — far below the paper's 0.5% viability bar; with Config.Shards > 1 the engine sustains that rate across concurrent connections instead of serializing them on one lock.")
}

// expRules quantifies §2.1's rule explosion: unrolling µsegment policies
// to per-IP rules vs compiling to dynamic tags, against the ~1000-rule
// per-VM budget.
func expRules(e *env) {
	header("rules", "Policy compilation: per-IP rule explosion vs dynamic tags",
		"Clouds limit rules on the path in/out of each VM (~10³); naïvely unrolling reachability between µsegments into per-IP rules can explode; adding dynamic tags and matching on them is the proposed fix.")
	c, _, g := hourly(e, "k8spaas", e.datasetScale("k8spaas"), e.start)

	// Segmentation granularity is the operator's knob (the paper leaves
	// the ideal granularity open): sweep the Louvain resolution and show
	// how blast radius and rule tables trade off.
	fmt.Println("| resolution | segments | allowed pairs | mean blast radius | per-IP rules (max/VM) | tag rules (max/VM) | VMs over limit (IP) |")
	fmt.Println("|---|---|---|---|---|---|---|")
	var assign segment.Assignment
	var r *policy.Reachability
	for _, gamma := range []float64{1, 2, 4, 8} {
		a, err := segment.Run(segment.StrategyJaccardLouvain, g, segment.Options{Resolution: gamma})
		if err != nil {
			log.Fatal(err)
		}
		rr := policy.Learn(g, a)
		ip := rr.CompileIPRules(policy.DefaultRuleLimit)
		tags := rr.CompileTagRules(policy.DefaultRuleLimit)
		fmt.Printf("| %.0f | %d | %d | %.1f of %d | %d (%d) | %d (%d) | %d |\n",
			gamma, a.NumSegments(), len(rr.AllowedPairs()),
			rr.MeanBlastRadius(), len(a)-1,
			ip.Total, ip.Max, tags.Total, tags.Max, ip.OverLimit)
		if gamma == 4 {
			assign, r = a, rr
		}
	}
	ip := r.CompileIPRules(policy.DefaultRuleLimit)
	tags := r.CompileTagRules(policy.DefaultRuleLimit)
	ratio := float64(ip.Total) / float64(max(1, tags.Total))
	fmt.Printf("\n- at resolution 4, per-IP compilation needs **%.0fx** more rules than tags", ratio)
	if ip.OverLimit > 0 {
		fmt.Printf("; %d VMs blow the 1000-rule budget without tags", ip.OverLimit)
	}
	fmt.Println(".")
	// Churn: what one pod migration costs under each compilation —
	// "tags may also help reduce churn and lag when µsegment labels
	// change" (§2.1).
	var mover graph.Node
	for n, s := range assign {
		if s == 0 && c.Monitored(n.Addr) {
			mover = n
			break
		}
	}
	if mover != (graph.Node{}) && assign.NumSegments() > 1 {
		rep := r.ChurnOnMove(mover, 1)
		fmt.Printf("\n- label churn (one VM moves segments): **%d** per-VM table rewrites with per-IP rules vs **%d** updates with tags\n",
			rep.IPRuleUpdates, rep.TagUpdates)
	}
	fmt.Println("\nShape check: IP-rule counts scale with segment sizes (quadratic in fleet growth) and tags stay flat at the number of allowed peer segments; one segment move rewrites hundreds of peer tables without tags and O(1) with them.")
}
