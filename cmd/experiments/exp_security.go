package main

import (
	"fmt"
	"log"
	"net/netip"
	"time"

	"cloudgraph/internal/cluster"
	"cloudgraph/internal/core"
	"cloudgraph/internal/flowlog"
	"cloudgraph/internal/graph"
	"cloudgraph/internal/nicsim"
	"cloudgraph/internal/policy"
	"cloudgraph/internal/segment"
	"cloudgraph/internal/summarize"
)

// expHOP validates the higher-order policies of §2.1: similarity-based
// policies avoid the code-change false positive, proportionality-based
// policies separate flash crowds from unilateral surges.
func expHOP(e *env) {
	header("hop", "Higher-order policies: similarity and proportionality",
		"A code change that makes all VMs of a µsegment speak to a new service should not alert (similarity); more backend traffic is fine when requests grew (proportionality) but not by itself.")

	// Scenario cluster: clients -> fe -> be -> db.
	spec := cluster.Spec{
		Name: "hop", Seed: 77,
		Roles: []cluster.RoleSpec{
			{Name: "fe", Count: 8, Port: 443},
			{Name: "be", Count: 6, Port: 9000},
			{Name: "db", Count: 3, Port: 5432},
			{Name: "audit", Count: 2, Port: 7000}, // new dependency after "code change"
			{Name: "client", Count: 40, External: true},
		},
		Links: []cluster.LinkSpec{
			{Src: "client", Dst: "fe", FlowsPerMin: 10, Fanout: 2, FwdBytes: 600, RevBytes: 9000},
			{Src: "fe", Dst: "be", FlowsPerMin: 40, Fanout: -1, FwdBytes: 1200, RevBytes: 2500},
			{Src: "be", Dst: "db", FlowsPerMin: 20, Fanout: -1, FwdBytes: 900, RevBytes: 4000},
			{Src: "audit", Dst: "db", FlowsPerMin: 1, Fanout: -1, FwdBytes: 300, RevBytes: 300},
		},
	}
	base := mustHour(e, spec, nil)
	c, err := cluster.New(spec)
	if err != nil {
		log.Fatal(err)
	}
	truthAssign := groundTruthAssignment(c)
	reach := policy.Learn(base, truthAssign)

	// Scenario 1 — code change: every fe starts calling audit.
	s1 := spec
	s1.Links = append(s1.Links, cluster.LinkSpec{Src: "fe", Dst: "audit", FlowsPerMin: 8, Fanout: -1, FwdBytes: 500, RevBytes: 700})
	next1 := mustHour(e, s1, nil)
	changes := policy.SimilarityPolicy{R: reach}.Evaluate(next1)
	fmt.Println("**Scenario 1 — code change (all frontends call a new audit service):**")
	fmt.Println("| segment pair | cohort fraction | suppressed? | raw violations |")
	fmt.Println("|---|---|---|---|")
	for _, ch := range changes {
		fmt.Printf("| %d-%d | %.2f | %v | %d |\n", ch.Pair.A, ch.Pair.B, ch.Fraction, ch.Suppressed, len(ch.Violations))
	}

	// Scenario 2 — one compromised fe reaches the db directly.
	s2 := spec
	next2cluster, err := cluster.New(s2)
	if err != nil {
		log.Fatal(err)
	}
	next2cluster.AddAttack(cluster.LateralMovement{
		AttackerRole: "fe", AttackerIdx: 0, TargetRole: "db",
		FlowsPerMin: 6, Bytes: 50_000, Start: e.start, Duration: time.Hour,
	})
	recs2, err := next2cluster.CollectHour(e.start)
	if err != nil {
		log.Fatal(err)
	}
	next2 := graph.Build(recs2, graph.BuilderOptions{Facet: graph.FacetIP})
	changes2 := policy.SimilarityPolicy{R: reach}.Evaluate(next2)
	fmt.Println("\n**Scenario 2 — single breached frontend reaches the database:**")
	flagged := 0
	for _, ch := range changes2 {
		if !ch.Suppressed {
			flagged += len(ch.Violations)
		}
		fmt.Printf("- pair %d-%d: fraction %.2f, suppressed=%v, %d violations\n", ch.Pair.A, ch.Pair.B, ch.Fraction, ch.Suppressed, len(ch.Violations))
	}
	fmt.Printf("- alerts raised: %d (the deviant is *not* excused)\n", flagged)

	// Scenario 3 — flash crowd: client load x4 (everything scales).
	s3 := spec
	for i := range s3.Links {
		if s3.Links[i].Src == "client" {
			s3.Links[i].FlowsPerMin *= 4
		}
		if s3.Links[i].Src == "fe" && s3.Links[i].Dst == "be" {
			s3.Links[i].FlowsPerMin *= 4
		}
		if s3.Links[i].Src == "be" {
			s3.Links[i].FlowsPerMin *= 4
		}
	}
	next3 := mustHour(e, s3, nil)
	growth3 := policy.ProportionalityPolicy{R: reach}.Evaluate(base, next3)
	flagged3 := flaggedPairs(growth3)
	fmt.Printf("\n**Scenario 3 — flash crowd (all load x4):** %d pair(s) flagged (want 0; growth is proportional)\n", flagged3)

	// Scenario 4 — exfil-like: only be->db surges x20.
	s4 := spec
	for i := range s4.Links {
		if s4.Links[i].Src == "be" && s4.Links[i].Dst == "db" {
			s4.Links[i].FlowsPerMin *= 20
		}
	}
	next4 := mustHour(e, s4, nil)
	growth4 := policy.ProportionalityPolicy{R: reach}.Evaluate(base, next4)
	flagged4 := flaggedPairs(growth4)
	fmt.Printf("\n**Scenario 4 — unilateral surge (be->db x20, requests flat):** %d pair(s) flagged (want ≥1: the be-db pair)\n", flagged4)
	for _, pg := range growth4 {
		if pg.Flagged {
			fmt.Printf("- flagged pair %d-%d: growth %.1fx vs segment median %.1fx\n", pg.Pair.A, pg.Pair.B, pg.Growth, pg.MedianGrowth)
		}
	}
	fmt.Println("\nShape check: similarity suppresses the uniform change but not the lone deviant; proportionality passes the flash crowd and flags the unilateral surge — exactly the §2.1 examples.")
}

func flaggedPairs(gs []policy.PairGrowth) int {
	n := 0
	for _, pg := range gs {
		if pg.Flagged {
			n++
		}
	}
	return n
}

// mustHour builds the hourly IP graph of a spec.
func mustHour(e *env, spec cluster.Spec, mutate func(*cluster.Cluster)) *graph.Graph {
	c, err := cluster.New(spec)
	if err != nil {
		log.Fatal(err)
	}
	if mutate != nil {
		mutate(c)
	}
	recs, err := c.CollectHour(e.start)
	if err != nil {
		log.Fatal(err)
	}
	return graph.Build(recs, graph.BuilderOptions{Facet: graph.FacetIP})
}

// groundTruthAssignment converts role labels into a segmentation.
func groundTruthAssignment(c *cluster.Cluster) segment.Assignment {
	assign := segment.Assignment{}
	ids := map[string]int{}
	for node, role := range c.GroundTruth() {
		id, ok := ids[role]
		if !ok {
			id = len(ids)
			ids[role] = id
		}
		assign[node] = id
	}
	return assign
}

// expAttacks runs the µserviceBench breach-and-attack-simulation
// substitution: inject each attack kind and measure what the learned
// policies and the anomaly detector see.
func expAttacks(e *env) {
	header("attacks", "Attack detection on µserviceBench (Infection-Monkey substitution)",
		"The paper injects a wide range of attacks into µserviceBench; telemetry stays trustworthy during breaches because VMs cannot tamper with NIC-level collection.")
	const scale = 0.25
	baseSpec, _ := cluster.Preset("microservicebench", scale)

	type scenario struct {
		name string
		add  func(c *cluster.Cluster, at time.Time)
	}
	c2 := netip.MustParseAddr("198.51.100.66")
	scenarios := []scenario{
		{"port-scan", func(c *cluster.Cluster, at time.Time) {
			c.AddAttack(cluster.PortScan{AttackerRole: "frontend", AttackerIdx: 0, TargetRole: "payment", PortsPerMin: 40, Start: at, Duration: time.Hour})
		}},
		{"lateral-movement", func(c *cluster.Cluster, at time.Time) {
			c.AddAttack(cluster.LateralMovement{AttackerRole: "loadgen", AttackerIdx: 0, TargetRole: "redis", FlowsPerMin: 8, Bytes: 16_384, Start: at, Duration: time.Hour})
		}},
		{"exfiltration", func(c *cluster.Cluster, at time.Time) {
			c.AddAttack(cluster.Exfiltration{SourceRole: "payment", SourceIdx: 0, Destination: c2, BytesPerMin: 200_000_000, Start: at, Duration: time.Hour})
		}},
		{"c2-beacon", func(c *cluster.Cluster, at time.Time) {
			c.AddAttack(cluster.Beacon{SourceRole: "currency", SourceIdx: 0, C2: c2, Period: 5 * time.Minute, Bytes: 512, Start: at, Duration: time.Hour})
		}},
	}

	fmt.Println("| attack | reachability violations | alerts after similarity filter | drift vs clean hours | anomaly flagged | port-fanout suspects |")
	fmt.Println("|---|---|---|---|---|---|")
	for _, sc := range scenarios {
		c, err := cluster.New(baseSpec)
		if err != nil {
			log.Fatal(err)
		}
		// Fine-grained segmentation (resolution 4) so the learned policy
		// is tight enough for reachability violations to mean something.
		engine := core.NewEngine(core.Config{
			Window:  time.Hour,
			Segment: segment.Options{Resolution: 4},
		})
		// Tee raw records per hour: the port-fanout detector consumes the
		// IP-port information the collapsed IP graph discards (§2.1:
		// "segmenting IP-port graphs may be more useful").
		var baseRecs, attackRecs []flowlog.Record
		tee := nicsim.CollectorFunc(func(b []flowlog.Record) error {
			if len(b) > 0 {
				switch hr := b[0].Time.Sub(e.start) / time.Hour; {
				case hr == 0:
					baseRecs = append(baseRecs, b...)
				case hr == 5:
					attackRecs = append(attackRecs, b...)
				}
			}
			return engine.Collect(b)
		})
		// Five clean hours to learn + baseline drift, then the attack hour.
		if _, err := c.Run(e.start, 5*60, tee); err != nil {
			log.Fatal(err)
		}
		attackStart := e.start.Add(5 * time.Hour)
		sc.add(c, attackStart)
		if _, err := c.Run(attackStart, 60, tee); err != nil {
			log.Fatal(err)
		}
		windows := engine.Flush()
		if len(windows) != 6 {
			log.Fatalf("%s: windows = %d", sc.name, len(windows))
		}
		if _, err := engine.Learn(windows[0]); err != nil {
			log.Fatal(err)
		}
		rep := engine.Monitor(windows[5])
		scores := summarize.ScoreWindows(windows, summarize.AnomalyOptions{Sigma: 3, MinHistory: 2})
		suspects := summarize.DetectScans(baseRecs, attackRecs, 20)
		fmt.Printf("| %s | %d | %d | %.3f | %v | %d |\n",
			sc.name, len(rep.Violations), rep.Alerts, scores[5].Drift, scores[5].Anomalous, len(suspects))
	}
	fmt.Println("\nShape check: every attack class leaves a telemetry trace, each in the detector suited to its facet — the scan in the port-fanout detector (the IP-graph is too dense to show it), exfiltration and the C2 beacon as reachability alerts to an unknown endpoint (exfil also dominating drift), and lateral movement to an in-cluster service as drift. Low-and-slow beacons evade volume anomaly alone, which is why the paper's reachability policies matter.")
}
