package main

import (
	"fmt"
	"log"
	"net/netip"
	"time"

	"cloudgraph/internal/cluster"
	"cloudgraph/internal/flowlog"
	"cloudgraph/internal/graph"
	"cloudgraph/internal/nicsim"
	"cloudgraph/internal/policy"
	"cloudgraph/internal/segment"
)

// expEnforce measures the headline security claim end to end: enforce the
// learned µsegmentation on the data path and count how much of each attack
// it stops versus how much legitimate traffic it wrongly blocks — the
// "mitigate the blast radius" promise with its false-positive cost.
func expEnforce(e *env) {
	header("enforce", "Enforcing the learned policy: attack block rate vs collateral damage",
		"A pair of resources can communicate only if explicitly allowed; the blast radius of breaching a resource reduces to those it must communicate with during normal operation.")

	baseSpec, _ := cluster.Preset("microservicebench", 0.25)
	c2 := netip.MustParseAddr("198.51.100.66")
	scenarios := []struct {
		name string
		add  func(c *cluster.Cluster, at time.Time)
	}{
		{"port-scan", func(c *cluster.Cluster, at time.Time) {
			c.AddAttack(cluster.PortScan{AttackerRole: "frontend", AttackerIdx: 0, TargetRole: "payment", PortsPerMin: 40, Start: at, Duration: time.Hour})
		}},
		{"lateral-movement", func(c *cluster.Cluster, at time.Time) {
			c.AddAttack(cluster.LateralMovement{AttackerRole: "loadgen", AttackerIdx: 0, TargetRole: "redis", FlowsPerMin: 8, Bytes: 16_384, Start: at, Duration: time.Hour})
		}},
		{"exfiltration", func(c *cluster.Cluster, at time.Time) {
			c.AddAttack(cluster.Exfiltration{SourceRole: "payment", SourceIdx: 0, Destination: c2, BytesPerMin: 200_000_000, Start: at, Duration: time.Hour})
		}},
		{"c2-beacon", func(c *cluster.Cluster, at time.Time) {
			c.AddAttack(cluster.Beacon{SourceRole: "currency", SourceIdx: 0, C2: c2, Period: 5 * time.Minute, Bytes: 512, Start: at, Duration: time.Hour})
		}},
	}

	fmt.Println("| attack | IP facet: attacks blocked | endpoint facet: attacks blocked | endpoint facet: legit blocked |")
	fmt.Println("|---|---|---|---|")
	for _, sc := range scenarios {
		c, err := cluster.New(baseSpec)
		if err != nil {
			log.Fatal(err)
		}
		// Learn on a clean hour.
		cleanRecs, err := c.CollectHour(e.start)
		if err != nil {
			log.Fatal(err)
		}
		g := graph.Build(cleanRecs, graph.BuilderOptions{Facet: graph.FacetIP})
		assign, err := segment.Run(segment.StrategyJaccardLouvain, g, segment.Options{Resolution: 4})
		if err != nil {
			log.Fatal(err)
		}
		enf := policy.Enforcer{R: policy.Learn(g, assign), AllowUnknownExternal: false}

		// Endpoint-facet policy from the same clean hour: service sides
		// keyed by {IP, port}; ephemeral client nodes collapse by IP.
		ge := graph.Build(cleanRecs, graph.BuilderOptions{Facet: graph.FacetEndpoint})
		assignE, err := segment.Run(segment.StrategyJaccardLouvain, ge, segment.Options{Resolution: 4})
		if err != nil {
			log.Fatal(err)
		}
		enfE := policy.Enforcer{R: policy.Learn(ge, assignE), Facet: graph.FacetEndpoint}

		// Attack hour.
		attackStart := e.start.Add(time.Hour)
		sc.add(c, attackStart)
		var recs []flowlog.Record
		if _, err := c.Run(attackStart, 60, nicsim.CollectorFunc(func(b []flowlog.Record) error {
			recs = append(recs, b...)
			return nil
		})); err != nil {
			log.Fatal(err)
		}
		rep := enf.Evaluate(recs, c.IsAttackRecord)
		repE := enfE.Evaluate(recs, c.IsAttackRecord)
		fmt.Printf("| %s | %.0f%% (%d of %d) | %.0f%% (%d of %d) | %.2f%% (%d of %d) |\n",
			sc.name,
			100*rep.BlockRate(), rep.AttackBlocked, rep.AttackBlocked+rep.AttackAllowed,
			100*repE.BlockRate(), repE.AttackBlocked, repE.AttackBlocked+repE.AttackAllowed,
			100*repE.CollateralRate(), repE.LegitBlocked, repE.LegitBlocked+repE.LegitAllowed)
	}
	fmt.Println("\nShape check: exfil/C2 destinations outside the learned graph block completely at either facet; the in-cluster scan and lateral movement pass IP-level enforcement (the kubelet mesh already connects every VM pair) but block at the endpoint facet, whose per-service reachability is what tags would enforce — the paper's case for finer-than-IP segmentation made quantitative.")
}
