// Command experiments regenerates every table and figure of the paper's
// evaluation from the synthetic datasets, printing markdown suitable for
// EXPERIMENTS.md: paper target vs measured value for each artifact.
//
// Usage:
//
//	experiments -run all -out artifacts
//	experiments -run table1 -kquery-scale 0.25
//
// Experiment ids: table1, table3, fig1, fig2, fig3, fig4, fig5, fig6, pca,
// fig7, fig8, rules, hop, attacks, model, facets, enforce, live.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"path/filepath"
	"strings"
	"time"

	"cloudgraph/internal/cluster"
	"cloudgraph/internal/graph"
)

// env carries shared experiment configuration plus a cache of generated
// hourly graphs so experiments sharing a dataset-hour don't regenerate it.
type env struct {
	outDir      string
	kqueryScale float64
	k8sScale    float64
	start       time.Time

	cache map[string]*hourData
}

// hourData is one cached dataset-hour.
type hourData struct {
	cluster    *cluster.Cluster
	recsPerMin int
	graph      *graph.Graph
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("experiments: ")
	var (
		run     = flag.String("run", "all", "comma-separated experiment ids or 'all'")
		out     = flag.String("out", "artifacts", "directory for DOT/PGM artifacts")
		kqScale = flag.Float64("kquery-scale", 0.15, "KQuery dataset scale (1.0 = paper size, expensive)")
		k8Scale = flag.Float64("k8s-scale", 1.0, "K8s PaaS dataset scale")
		start   = flag.Int64("start", 1700000000, "unix start time")
	)
	flag.Parse()

	e := &env{
		outDir:      *out,
		kqueryScale: *kqScale,
		k8sScale:    *k8Scale,
		start:       time.Unix(*start, 0).UTC().Truncate(time.Hour),
	}
	if err := os.MkdirAll(e.outDir, 0o755); err != nil {
		log.Fatal(err)
	}

	all := []struct {
		id string
		fn func(*env)
	}{
		{"table1", expTable1},
		{"table3", expTable3},
		{"fig1", expFig1},
		{"fig2", expFig2},
		{"fig3", expFig3},
		{"fig4", expFig4},
		{"fig5", expFig5},
		{"fig6", expFig6},
		{"pca", expPCA},
		{"fig7", expFig7},
		{"fig8", expFig8},
		{"rules", expRules},
		{"hop", expHOP},
		{"attacks", expAttacks},
		{"model", expModel},
		{"facets", expFacets},
		{"enforce", expEnforce},
		{"live", expLive},
	}
	want := map[string]bool{}
	if *run != "all" {
		for _, id := range strings.Split(*run, ",") {
			want[strings.TrimSpace(id)] = true
		}
	}
	ran := 0
	for _, exp := range all {
		if *run != "all" && !want[exp.id] {
			continue
		}
		t := time.Now()
		exp.fn(e)
		fmt.Printf("\n_(%s took %v)_\n", exp.id, time.Since(t).Round(time.Millisecond))
		ran++
	}
	if ran == 0 {
		log.Fatalf("no experiment matched -run=%q", *run)
	}
}

// hourly generates (or returns the cached) hour of a preset: the cluster,
// the raw records-per-minute count and the collapsed IP graph. Note the
// cache means the same deterministic hour is reused across experiments —
// which is what reusing one captured trace would do.
func hourly(e *env, preset string, scale float64, at time.Time) (*cluster.Cluster, int, *graph.Graph) {
	key := fmt.Sprintf("%s/%.3f/%d", preset, scale, at.Unix())
	if e.cache == nil {
		e.cache = make(map[string]*hourData)
	}
	if d, ok := e.cache[key]; ok {
		return d.cluster, d.recsPerMin, d.graph
	}
	spec, err := cluster.Preset(preset, scale)
	if err != nil {
		log.Fatal(err)
	}
	c, err := cluster.New(spec)
	if err != nil {
		log.Fatal(err)
	}
	recs, err := c.CollectHour(at)
	if err != nil {
		log.Fatal(err)
	}
	g := graph.Build(recs, graph.BuilderOptions{Facet: graph.FacetIP})
	if spec.CollapseThreshold > 0 {
		g = g.Collapse(graph.CollapseOptions{
			Threshold: spec.CollapseThreshold,
			Keep:      func(n graph.Node) bool { return c.Monitored(n.Addr) },
		})
	}
	e.cache[key] = &hourData{cluster: c, recsPerMin: len(recs) / 60, graph: g}
	return c, len(recs) / 60, g
}

// datasetScale returns the scale each dataset runs at.
func (e *env) datasetScale(preset string) float64 {
	switch preset {
	case "kquery":
		return e.kqueryScale
	case "k8spaas":
		return e.k8sScale
	}
	return 1
}

// artifact returns a path inside the output directory.
func (e *env) artifact(name string) string { return filepath.Join(e.outDir, name) }

// header prints a markdown experiment header.
func header(id, title, paperClaim string) {
	fmt.Printf("\n## %s — %s\n\n", id, title)
	fmt.Printf("**Paper:** %s\n\n", paperClaim)
}
