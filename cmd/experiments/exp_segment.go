package main

import (
	"fmt"
	"log"
	"os"
	"time"

	"cloudgraph/internal/segment"
)

// expFig1 regenerates Figure 1: the K8s PaaS IP-graph with roles inferred
// by Jaccard neighbor-overlap scoring + Louvain on the scored clique.
func expFig1(e *env) {
	header("fig1", "Role-inferred segmentation of the K8s PaaS IP-graph",
		"Nodes that share a color have the same role and can be placed into a µsegment (Jaccard score on neighbor-set overlap, Louvain on the scored clique). Labels are 'a good start' but imperfect.")
	c, _, g := hourly(e, "k8spaas", e.datasetScale("k8spaas"), e.start)
	t := time.Now()
	assign, err := segment.Run(segment.StrategyJaccardLouvain, g, segment.Options{})
	if err != nil {
		log.Fatal(err)
	}
	elapsed := time.Since(t)
	q := segment.Score(assign, c.GroundTruth())
	fmt.Printf("- graph: %d nodes, %d edges\n", g.NumNodes(), g.NumEdges())
	fmt.Printf("- segments found: %d (true roles among monitored VMs: %d)\n", assign.NumSegments(), q.Roles)
	fmt.Printf("- quality vs ground truth: ARI %.3f, NMI %.3f, purity %.3f over %d labelled nodes\n", q.ARI, q.NMI, q.Purity, q.Nodes)
	fmt.Printf("- pairwise scoring + clustering time: %v (the super-quadratic cost the paper flags)\n", elapsed.Round(time.Millisecond))
	dot := g.DOT(0, assign)
	path := e.artifact("fig1-k8spaas-roles.dot")
	if err := os.WriteFile(path, []byte(dot), 0o644); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("- role-colored graph written to %s\n", path)
	fmt.Println("\nShape check: high purity (segments are role-pure) with coarser-than-truth granularity — matching the paper's 'good start with key mistakes'.")
}

// expFig2 regenerates Figure 2: the unsegmented IP-graphs of the datasets.
func expFig2(e *env) {
	header("fig2", "Unsegmented IP-graphs of the four datasets",
		"Raw hourly IP-graphs, before any segmentation; their structure differs sharply across workloads.")
	fmt.Println("| dataset | nodes | edges | density | max degree | mean degree |")
	fmt.Println("|---|---|---|---|---|---|")
	for _, preset := range []string{"portal", "microservicebench", "k8spaas", "kquery"} {
		_, _, g := hourly(e, preset, e.datasetScale(preset), e.start)
		s := g.ComputeStats()
		fmt.Printf("| %s | %d | %d | %.4f | %d | %.1f |\n", preset, s.Nodes, s.Edges, s.Density, s.MaxDeg, s.MeanDeg)
		if s.Nodes <= 600 {
			path := e.artifact("fig2-" + preset + ".dot")
			if err := os.WriteFile(path, []byte(g.DOT(0, nil)), 0o644); err != nil {
				log.Fatal(err)
			}
		}
	}
	fmt.Println("\nShape check: Portal is a sparse star field (clients->few frontends), µserviceBench is tiny and dense, K8s PaaS is mid-size with hubs, KQuery is the densest.")
}

// expFig3 regenerates Figure 3: the alternative segmentation strategies on
// the K8s PaaS graph, scored against ground truth to quantify the visual
// "the results clearly differ".
func expFig3(e *env) {
	header("fig3", "Alternative segmentation strategies on K8s PaaS",
		"SimRank, SimRank++, connection-weighted and byte-weighted modularity all segment the same graph differently from Figure 1, because modularity groups who-talks-to-whom while role peers may never talk to each other.")
	c, _, g := hourly(e, "k8spaas", e.datasetScale("k8spaas"), e.start)
	truth := c.GroundTruth()
	fmt.Println("| strategy | segments | ARI | NMI | purity | time |")
	fmt.Println("|---|---|---|---|---|---|")
	for _, s := range segment.Strategies() {
		t := time.Now()
		assign, err := segment.Run(s, g, segment.Options{})
		if err != nil {
			log.Fatal(err)
		}
		q := segment.Score(assign, truth)
		fmt.Printf("| %s | %d | %.3f | %.3f | %.3f | %v |\n",
			s, assign.NumSegments(), q.ARI, q.NMI, q.Purity, time.Since(t).Round(time.Millisecond))
	}
	fmt.Println("\nShape check: jaccard-louvain (Figure 1's method) scores highest against ground-truth roles; the modularity variants score near zero ARI; SimRank/SimRank++ cost more without beating it — matching §2.1's conclusions.")
}
