// Command graphctl builds communication graphs from flow-log files and
// runs the paper's analyses on them from the command line.
//
// Usage:
//
//	graphctl stats      [-collapse 0.001] file.flows
//	graphctl segment    [-strategy jaccard-louvain] [-topk 6] file.flows
//	graphctl policy     [-limit 1000] file.flows
//	graphctl summarize  file.flows
//	graphctl heatmap    [-size 64] [-pgm out.pgm] file.flows
//	graphctl ccdf       file.flows
//	graphctl pca        [-k 25] file.flows
//	graphctl dot        file.flows
//	graphctl plan       [-capacity 2e9] file.flows
//	graphctl send       -addr host:port [-tenant name] file.flows
//	graphctl query      [-addr host:port] [-tenant name] <analysis> [<epoch>|latest]
//	graphctl diff       old.flows new.flows
//	graphctl windows    [-window 1h] file.flows
//	graphctl attribution file.flows
//	graphctl archive    [-window 1h] -store windows.cg file.flows
//	graphctl history    [-from t] [-to t] windows.cg
//	graphctl top        [-ops host:port] [-interval 2s]
//
// Files may be binary (flowgen default), CSV (.csv suffix), Azure NSG
// flow log v2 exports (.json suffix), or tagged multi-tenant captures
// (.tflows suffix, flowgen -tenants): send replays each record onto the
// tenant realm its frame names.
package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"strconv"
	"strings"
	"time"

	"cloudgraph/internal/analytics"
	"cloudgraph/internal/core"
	"cloudgraph/internal/counterfactual"
	"cloudgraph/internal/flowlog"
	"cloudgraph/internal/graph"
	"cloudgraph/internal/heatmap"
	"cloudgraph/internal/matrix"
	"cloudgraph/internal/model"
	"cloudgraph/internal/policy"
	"cloudgraph/internal/segment"
	"cloudgraph/internal/store"
	"cloudgraph/internal/summarize"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("graphctl: ")
	if len(os.Args) < 2 {
		usage()
	}
	cmd, args := os.Args[1], os.Args[2:]
	switch cmd {
	case "stats":
		cmdStats(args)
	case "segment":
		cmdSegment(args)
	case "policy":
		cmdPolicy(args)
	case "summarize":
		cmdSummarize(args)
	case "heatmap":
		cmdHeatmap(args)
	case "ccdf":
		cmdCCDF(args)
	case "pca":
		cmdPCA(args)
	case "dot":
		cmdDOT(args)
	case "plan":
		cmdPlan(args)
	case "send":
		cmdSend(args)
	case "query":
		cmdQuery(args)
	case "diff":
		cmdDiff(args)
	case "windows":
		cmdWindows(args)
	case "attribution":
		cmdAttribution(args)
	case "archive":
		cmdArchive(args)
	case "history":
		cmdHistory(args)
	case "top":
		cmdTop(args)
	default:
		usage()
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, "usage: graphctl {stats|segment|policy|summarize|heatmap|ccdf|pca|dot|plan|send|query|diff|windows|attribution|archive|history|top} [flags] <file>")
	os.Exit(2)
}

// readRecords loads a flow-log file in binary or CSV format.
func readRecords(path string) []flowlog.Record {
	var r io.Reader
	if path == "-" {
		r = os.Stdin
	} else {
		f, err := os.Open(path)
		if err != nil {
			log.Fatal(err)
		}
		defer f.Close()
		r = f
	}
	var recs []flowlog.Record
	if strings.HasSuffix(path, ".json") {
		var err error
		recs, err = flowlog.ParseAzureNSG(r)
		if err != nil {
			log.Fatal(err)
		}
	} else if strings.HasSuffix(path, ".csv") {
		sc := bufio.NewScanner(r)
		sc.Buffer(make([]byte, 1<<20), 1<<20)
		for sc.Scan() {
			if strings.TrimSpace(sc.Text()) == "" {
				continue
			}
			rec, err := flowlog.ParseCSV(sc.Text())
			if err != nil {
				log.Fatal(err)
			}
			recs = append(recs, rec)
		}
		if err := sc.Err(); err != nil {
			log.Fatal(err)
		}
	} else {
		rd := flowlog.NewReader(r)
		for {
			rec, err := rd.Read()
			if err == io.EOF {
				break
			}
			if err != nil {
				log.Fatal(err)
			}
			recs = append(recs, rec)
		}
	}
	if len(recs) == 0 {
		log.Fatal("no records in input")
	}
	return recs
}

// buildFlags returns the shared flag set for graph construction.
func buildFlags(fs *flag.FlagSet) (collapse *float64, facet *string) {
	collapse = fs.Float64("collapse", 0, "heavy-hitter collapse threshold (paper: 0.001)")
	facet = fs.String("facet", "ip", "graph facet: ip or ip-port")
	return
}

func buildGraph(recs []flowlog.Record, collapse float64, facet string) *graph.Graph {
	opts := graph.BuilderOptions{}
	switch facet {
	case "ip":
		opts.Facet = graph.FacetIP
	case "ip-port":
		opts.Facet = graph.FacetIPPort
	default:
		log.Fatalf("unknown facet %q", facet)
	}
	g := graph.Build(recs, opts)
	if collapse > 0 {
		g = g.Collapse(graph.CollapseOptions{Threshold: collapse})
	}
	return g
}

// parseArgs parses flags and returns the single positional file argument.
func parseArgs(fs *flag.FlagSet, args []string) string {
	fs.Parse(args)
	if fs.NArg() != 1 {
		fmt.Fprintf(os.Stderr, "usage: graphctl %s [flags] <file>\n", fs.Name())
		os.Exit(2)
	}
	return fs.Arg(0)
}

func cmdStats(args []string) {
	fs := flag.NewFlagSet("stats", flag.ExitOnError)
	collapse, facet := buildFlags(fs)
	file := parseArgs(fs, args)
	recs := readRecords(file)
	g := buildGraph(recs, *collapse, *facet)
	s := g.ComputeStats()
	fmt.Printf("facet      %s\n", s.Facet)
	fmt.Printf("records    %d\n", len(recs))
	fmt.Printf("nodes      %d\n", s.Nodes)
	fmt.Printf("edges      %d\n", s.Edges)
	fmt.Printf("density    %.5f\n", s.Density)
	fmt.Printf("max degree %d\n", s.MaxDeg)
	fmt.Printf("bytes      %d\n", s.Bytes)
	fmt.Printf("packets    %d\n", s.Packets)
	fmt.Printf("conns      %d\n", s.Conns)
}

func cmdSegment(args []string) {
	fs := flag.NewFlagSet("segment", flag.ExitOnError)
	collapse, facet := buildFlags(fs)
	strategy := fs.String("strategy", string(segment.StrategyJaccardLouvain), "segmentation strategy")
	topk := fs.Int("topk", 0, "kNN sparsification (0 = default)")
	file := parseArgs(fs, args)
	g := buildGraph(readRecords(file), *collapse, *facet)
	assign, err := segment.Run(segment.Strategy(*strategy), g, segment.Options{TopK: *topk})
	if err != nil {
		log.Fatal(err)
	}
	segs := assign.Segments()
	fmt.Printf("%d segments over %d nodes\n", assign.NumSegments(), len(assign))
	for i, members := range segs {
		fmt.Printf("segment %d (%d members):", i, len(members))
		for j, m := range members {
			if j == 8 {
				fmt.Printf(" …")
				break
			}
			fmt.Printf(" %s", m)
		}
		fmt.Println()
	}
}

func cmdPolicy(args []string) {
	fs := flag.NewFlagSet("policy", flag.ExitOnError)
	collapse, facet := buildFlags(fs)
	limit := fs.Int("limit", policy.DefaultRuleLimit, "per-VM rule budget")
	file := parseArgs(fs, args)
	g := buildGraph(readRecords(file), *collapse, *facet)
	assign, err := segment.Run(segment.StrategyJaccardLouvain, g, segment.Options{})
	if err != nil {
		log.Fatal(err)
	}
	r := policy.Learn(g, assign)
	ip := r.CompileIPRules(*limit)
	tags := r.CompileTagRules(*limit)
	fmt.Printf("segments        %d\n", assign.NumSegments())
	fmt.Printf("allowed pairs   %d\n", len(r.AllowedPairs()))
	fmt.Printf("blast radius    %.1f mean (unsegmented baseline %d)\n", r.MeanBlastRadius(), len(assign)-1)
	fmt.Printf("ip rules        total=%d max/VM=%d over-limit=%d (limit %d)\n", ip.Total, ip.Max, ip.OverLimit, ip.Limit)
	fmt.Printf("tag rules       total=%d max/VM=%d over-limit=%d\n", tags.Total, tags.Max, tags.OverLimit)
}

func cmdSummarize(args []string) {
	fs := flag.NewFlagSet("summarize", flag.ExitOnError)
	collapse, facet := buildFlags(fs)
	file := parseArgs(fs, args)
	g := buildGraph(readRecords(file), *collapse, *facet)
	s := summarize.Summarize(g)
	fmt.Println(s.Headline)
	for _, h := range s.Hubs {
		fmt.Printf("hub    %-22s degree=%d byte-share=%.2f\n", h.Node, h.Degree, h.ByteShare)
	}
	for _, c := range s.Cliques {
		fmt.Printf("clique %d members, density %.2f, %.1f%% of bytes\n", len(c.Members), c.Density, 100*c.ByteShare)
	}
}

func cmdHeatmap(args []string) {
	fs := flag.NewFlagSet("heatmap", flag.ExitOnError)
	collapse, facet := buildFlags(fs)
	size := fs.Int("size", 64, "ASCII render size")
	pgm := fs.String("pgm", "", "also write a PGM image to this path")
	file := parseArgs(fs, args)
	g := buildGraph(readRecords(file), *collapse, *facet)
	adj := g.AdjacencyMatrix(graph.Bytes)
	fmt.Print(heatmap.ASCII(adj.M, adj.N, *size))
	if *pgm != "" {
		if err := os.WriteFile(*pgm, heatmap.PGM(adj.M, adj.N), 0o644); err != nil {
			log.Fatal(err)
		}
		fmt.Fprintf(os.Stderr, "wrote %s (%dx%d)\n", *pgm, adj.N, adj.N)
	}
}

func cmdCCDF(args []string) {
	fs := flag.NewFlagSet("ccdf", flag.ExitOnError)
	collapse, facet := buildFlags(fs)
	file := parseArgs(fs, args)
	g := buildGraph(readRecords(file), *collapse, *facet)
	pts := summarize.CCDF(g, graph.Bytes)
	fmt.Println("fraction_of_nodes ccdf_bytes")
	// Print a readable subsample: every point for small graphs, decimated
	// for large ones.
	step := len(pts)/50 + 1
	for i := 0; i < len(pts); i += step {
		fmt.Printf("%.4f %.3e\n", pts[i].Fraction, pts[i].CCDF)
	}
	fmt.Printf("top 1%% of nodes carry %.1f%% of bytes\n", 100*(1-ccdfAtFrac(pts, 0.01)))
}

func ccdfAtFrac(pts []summarize.CCDFPoint, f float64) float64 {
	for _, p := range pts {
		if p.Fraction >= f {
			return p.CCDF
		}
	}
	return 0
}

func cmdPCA(args []string) {
	fs := flag.NewFlagSet("pca", flag.ExitOnError)
	collapse, facet := buildFlags(fs)
	k := fs.Int("k", 25, "eigenvectors to keep")
	file := parseArgs(fs, args)
	g := buildGraph(readRecords(file), *collapse, *facet)
	adj := g.AdjacencyMatrix(graph.Bytes)
	p, err := matrix.NewPCA(adj.Symmetrized(), adj.N)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("n=%d\n", p.N)
	for _, kk := range []int{1, 5, 10, *k, 2 * *k} {
		if kk > p.N {
			break
		}
		fmt.Printf("k=%-4d ReconErr=%.4f\n", kk, p.ReconErr(kk))
	}
	fmt.Printf("rank for ReconErr<=0.05: %d\n", p.RankFor(0.05))
}

func cmdDOT(args []string) {
	fs := flag.NewFlagSet("dot", flag.ExitOnError)
	collapse, facet := buildFlags(fs)
	colored := fs.Bool("roles", true, "color nodes by inferred role")
	file := parseArgs(fs, args)
	g := buildGraph(readRecords(file), *collapse, *facet)
	var labels map[graph.Node]int
	if *colored {
		assign, err := segment.Run(segment.StrategyJaccardLouvain, g, segment.Options{})
		if err != nil {
			log.Fatal(err)
		}
		labels = assign
	}
	fmt.Print(g.DOT(graph.Bytes, labels))
}

func cmdPlan(args []string) {
	fs := flag.NewFlagSet("plan", flag.ExitOnError)
	collapse, facet := buildFlags(fs)
	capacity := fs.Float64("capacity", 2e9, "per-VM capacity in bytes/min")
	threshold := fs.Float64("threshold", 0.7, "utilization threshold for SKU upgrades")
	pairs := fs.Int("pairs", 5, "proximity-group candidates to list")
	file := parseArgs(fs, args)
	g := buildGraph(readRecords(file), *collapse, *facet)
	plan := counterfactual.PlanCapacity(g, *capacity, *threshold, *pairs)
	fmt.Printf("%d SKU upgrade candidate(s):\n", len(plan.Upgrades))
	for _, u := range plan.Upgrades {
		fmt.Printf("  %-22s %.0f B/min (%.0f%% util)\n", u.Node, u.BytesPerMin, 100*u.Utilization)
	}
	fmt.Printf("%d proximity-group candidate pair(s):\n", len(plan.Proximity))
	for _, e := range plan.Proximity {
		fmt.Printf("  %s <-> %s  %d bytes\n", e.A, e.B, e.Bytes)
	}
}

func cmdSend(args []string) {
	fs := flag.NewFlagSet("send", flag.ExitOnError)
	addr := fs.String("addr", "127.0.0.1:7443", "cloudgraphd address")
	batch := fs.Int("batch", 4096, "records per INGEST batch")
	learn := fs.Bool("learn", false, "FLUSH and LEARN after sending")
	tenant := fs.String("tenant", "", "session tenant: untagged records land on this realm instead of the default")
	file := parseArgs(fs, args)
	// A .tflows capture (flowgen -tenants) carries per-record tenant tags
	// that override the session tenant frame by frame; every other format
	// is untagged and follows -tenant wholesale.
	var recs []flowlog.Record
	var tenants []string
	if strings.HasSuffix(file, ".tflows") {
		f, err := os.Open(file)
		if err != nil {
			log.Fatal(err)
		}
		recs, tenants, err = analytics.ReadTagged(f)
		f.Close()
		if err != nil {
			log.Fatal(err)
		}
		if len(recs) == 0 {
			log.Fatal("no records in input")
		}
	} else {
		recs = readRecords(file)
	}
	client, err := analytics.Dial(*addr)
	if err != nil {
		log.Fatal(err)
	}
	defer client.Close()
	if *tenant != "" {
		if err := client.Tenant(*tenant); err != nil {
			log.Fatal(err)
		}
	}
	start := time.Now()
	for i := 0; i < len(recs); i += *batch {
		end := min(i+*batch, len(recs))
		if tenants != nil {
			err = client.IngestTagged(recs[i:end], nil, tenants[i:end])
		} else {
			err = client.Ingest(recs[i:end])
		}
		if err != nil {
			log.Fatal(err)
		}
	}
	fmt.Fprintf(os.Stderr, "sent %d records in %v\n", len(recs), time.Since(start).Round(time.Millisecond))
	if *learn {
		if _, err := client.Flush(); err != nil {
			log.Fatal(err)
		}
		res, err := client.Learn()
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("learned %d segments over %d nodes (%d allowed pairs)\n", res.Segments, res.Nodes, res.AllowedPairs)
	}
	stats, err := client.Stats()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("server: %d records, %d windows\n", stats.Records, stats.Windows)
}

// cmdQuery asks a live daemon's analysis plane for an online result:
// `graphctl query segment latest` prints the segmentation of the newest
// completed window, epoch-pinned so the exact snapshot is re-queryable.
func cmdQuery(args []string) {
	fs := flag.NewFlagSet("query", flag.ExitOnError)
	addr := fs.String("addr", "127.0.0.1:7443", "cloudgraphd address")
	tenant := fs.String("tenant", "", "query this tenant realm's analysis plane instead of the default")
	fs.Parse(args)
	if fs.NArg() < 1 || fs.NArg() > 2 {
		fmt.Fprintln(os.Stderr, "usage: graphctl query [-addr host:port] [-tenant name] <analysis> [<epoch>|<rfc3339-time>|latest]")
		os.Exit(2)
	}
	// The selector may be a raw epoch, "latest", or an RFC3339 timestamp
	// resolved server-side through the timeline and the durable history
	// index; validate locally only what would break the line protocol.
	selector := "latest"
	if fs.NArg() == 2 {
		selector = fs.Arg(1)
		if !strings.EqualFold(selector, "latest") {
			if n, err := strconv.ParseUint(selector, 10, 64); err == nil && n == 0 {
				log.Fatalf("bad epoch %q: epochs start at 1", selector)
			} else if err != nil {
				if _, terr := time.Parse(time.RFC3339, selector); terr != nil {
					log.Fatalf("bad selector %q: want a positive epoch, an RFC3339 time or \"latest\"", selector)
				}
			}
		}
	}
	client, err := analytics.Dial(*addr)
	if err != nil {
		log.Fatal(err)
	}
	defer client.Close()
	if *tenant != "" {
		if err := client.Tenant(*tenant); err != nil {
			log.Fatal(err)
		}
	}
	res, err := client.QuerySelector(fs.Arg(0), selector)
	if err != nil {
		log.Fatal(err)
	}
	var pretty bytes.Buffer
	if err := json.Indent(&pretty, res.Result, "", "  "); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("analysis %s @ epoch %d\n%s\n", res.Analysis, res.Epoch, pretty.String())
}

func cmdDiff(args []string) {
	fs := flag.NewFlagSet("diff", flag.ExitOnError)
	collapse, facet := buildFlags(fs)
	fs.Parse(args)
	if fs.NArg() != 2 {
		fmt.Fprintln(os.Stderr, "usage: graphctl diff [flags] <old> <new>")
		os.Exit(2)
	}
	old := buildGraph(readRecords(fs.Arg(0)), *collapse, *facet)
	cur := buildGraph(readRecords(fs.Arg(1)), *collapse, *facet)
	d := graph.Diff(old, cur)
	fmt.Printf("byte drift (rel L1): %.4f\n", d.ByteChange)
	fmt.Printf("nodes: +%d -%d   pairs: +%d -%d\n",
		len(d.AddedNodes), len(d.RemovedNodes), len(d.AddedPairs), len(d.RemovedPairs))
	show := func(label string, pairs []graph.UndirectedEdge) {
		for i, e := range pairs {
			if i == 10 {
				fmt.Printf("  … and %d more\n", len(pairs)-10)
				break
			}
			fmt.Printf("  %s %s <-> %s (%d bytes)\n", label, e.A, e.B, e.Bytes)
		}
	}
	show("+", d.AddedPairs)
	show("-", d.RemovedPairs)
}

func cmdWindows(args []string) {
	fs := flag.NewFlagSet("windows", flag.ExitOnError)
	window := fs.Duration("window", time.Hour, "window size")
	file := parseArgs(fs, args)
	recs := readRecords(file)
	w := core.NewWindower(*window, graph.BuilderOptions{})
	for _, r := range recs {
		w.Add(r)
	}
	gs := w.Flush()
	scores := summarize.ScoreWindows(gs, summarize.AnomalyOptions{})
	fmt.Println("window start            nodes  edges      bytes    drift  anomalous")
	for i, g := range gs {
		st := g.ComputeStats()
		fmt.Printf("%-22s %6d %6d %10d   %.4f  %v\n",
			g.Start.UTC().Format("2006-01-02T15:04Z"), st.Nodes, st.Edges, st.Bytes,
			scores[i].Drift, scores[i].Anomalous)
	}
}

func cmdAttribution(args []string) {
	fs := flag.NewFlagSet("attribution", flag.ExitOnError)
	collapse, facet := buildFlags(fs)
	file := parseArgs(fs, args)
	g := buildGraph(readRecords(file), *collapse, *facet)
	a := model.Attribute(g)
	fmt.Println(a.Headline)
	fmt.Printf("  chatty cliques     %5.1f%%\n", 100*a.CliqueShare)
	fmt.Printf("  hub and spoke      %5.1f%%\n", 100*a.HubShare)
	fmt.Printf("  long-tail remotes  %5.1f%%\n", 100*a.CollapsedShare)
	fmt.Printf("  scatter            %5.1f%%\n", 100*a.ScatterShare)
}

func cmdArchive(args []string) {
	fs := flag.NewFlagSet("archive", flag.ExitOnError)
	window := fs.Duration("window", time.Hour, "window size")
	out := fs.String("store", "windows.cg", "store file to append to")
	file := parseArgs(fs, args)
	recs := readRecords(file)
	w := core.NewWindower(*window, graph.BuilderOptions{})
	for _, r := range recs {
		w.Add(r)
	}
	sw, err := store.Create(*out)
	if err != nil {
		log.Fatal(err)
	}
	for _, g := range w.Flush() {
		if err := sw.Append(g); err != nil {
			log.Fatal(err)
		}
	}
	n := sw.Count()
	if err := sw.Close(); err != nil {
		log.Fatal(err)
	}
	fmt.Fprintf(os.Stderr, "archived %d window(s) to %s\n", n, *out)
}

func cmdHistory(args []string) {
	fs := flag.NewFlagSet("history", flag.ExitOnError)
	from := fs.Int64("from", 0, "unix start of the range (0 = beginning)")
	to := fs.Int64("to", 1<<62, "unix end of the range")
	file := parseArgs(fs, args)
	gs, err := store.Range(file, time.Unix(*from, 0).UTC(), time.Unix(*to, 0).UTC())
	if err != nil {
		log.Fatal(err)
	}
	if len(gs) == 0 {
		log.Fatal("no windows in range")
	}
	scores := summarize.ScoreWindows(gs, summarize.AnomalyOptions{})
	fmt.Println("window start            nodes  edges      bytes    drift  anomalous")
	for i, g := range gs {
		st := g.ComputeStats()
		fmt.Printf("%-22s %6d %6d %10d   %.4f  %v\n",
			g.Start.UTC().Format("2006-01-02T15:04Z"), st.Nodes, st.Edges, st.Bytes,
			scores[i].Drift, scores[i].Anomalous)
	}
	if len(gs) >= 2 {
		d := graph.Diff(gs[0], gs[len(gs)-1])
		fmt.Printf("first->last: drift %.4f, pairs +%d -%d, nodes +%d -%d\n",
			d.ByteChange, len(d.AddedPairs), len(d.RemovedPairs), len(d.AddedNodes), len(d.RemovedNodes))
	}
}
