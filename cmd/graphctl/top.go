package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log"
	"net/http"
	"os"
	"strings"
	"time"

	"cloudgraph/internal/statusz"
)

// cmdTop is the live pipeline dashboard: it polls a daemon's
// /statusz?format=json and redraws the watermark, bus and SLO state each
// interval — `watch` for the freshness of the analysis plane. -n bounds
// the iterations (0 = until interrupted); -plain suppresses the ANSI
// clear-screen for logs and tests.
func cmdTop(args []string) {
	fs := flag.NewFlagSet("top", flag.ExitOnError)
	ops := fs.String("ops", "127.0.0.1:9443", "cloudgraphd ops address (the -ops flag it was started with)")
	interval := fs.Duration("interval", 2*time.Second, "poll interval")
	n := fs.Int("n", 0, "iterations before exiting (0 = run until interrupted)")
	plain := fs.Bool("plain", false, "no ANSI clear-screen between frames")
	fs.Parse(args)
	if fs.NArg() != 0 {
		fmt.Fprintln(os.Stderr, "usage: graphctl top [-ops host:port] [-interval 2s] [-n 0]")
		os.Exit(2)
	}
	url := "http://" + *ops + "/statusz?format=json"
	client := &http.Client{Timeout: 5 * time.Second}
	for i := 0; *n == 0 || i < *n; i++ {
		if i > 0 {
			time.Sleep(*interval)
		}
		st, err := fetchStatus(client, url)
		if err != nil {
			log.Fatalf("polling %s: %v", url, err)
		}
		if !*plain {
			fmt.Print("\x1b[H\x1b[2J") // cursor home + clear screen
		}
		renderTop(os.Stdout, st, url)
	}
}

func fetchStatus(client *http.Client, url string) (statusz.Status, error) {
	var st statusz.Status
	resp, err := client.Get(url)
	if err != nil {
		return st, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return st, fmt.Errorf("HTTP %s", resp.Status)
	}
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		return st, fmt.Errorf("decoding status: %w", err)
	}
	return st, nil
}

// renderTop draws one dashboard frame.
func renderTop(w io.Writer, st statusz.Status, url string) {
	uptime := ""
	if st.UptimeSeconds > 0 {
		uptime = " · up " + (time.Duration(st.UptimeSeconds * float64(time.Second))).Round(time.Second).String()
	}
	fmt.Fprintf(w, "cloudgraph top — %s — %s%s\n\n", url, st.Time.Format("15:04:05"), uptime)

	if wm := st.Watermarks; wm != nil {
		target := ""
		if wm.Target > 0 {
			target = fmt.Sprintf(" · freshness target %s", wm.Target)
		}
		fmt.Fprintf(w, "pipeline: ingesting epoch %d, sealed %d (%d windows)%s · SLO budget %.1f%%\n",
			wm.Ingested, wm.Sealed, wm.Windows, target, wm.BudgetRemaining*100)
		fmt.Fprintf(w, "%-26s %10s %6s %12s %8s %12s %6s\n",
			"stage", "epoch", "lag", "staleness", "burned", "consecutive", "trips")
		for _, s := range wm.Stages {
			slo := " "
			if s.SLO {
				slo = "*"
			}
			lagMark := ""
			if s.Lag > 1 {
				lagMark = " !"
			}
			fmt.Fprintf(w, "%s%-25s %10d %4d%-2s %12s %8d %12d %6d\n",
				slo, s.Name, s.Epoch, s.Lag, lagMark,
				(time.Duration(s.StalenessSeconds * float64(time.Second))).Round(time.Millisecond),
				s.Burned, s.Consecutive, s.Trips)
		}
		fmt.Fprintln(w)
	} else {
		fmt.Fprintln(w, "pipeline: no watermark data (daemon started without watermarks?)")
	}

	if len(st.Bus) > 0 {
		fmt.Fprintf(w, "%-26s %8s %8s %12s %10s\n", "bus consumer", "depth", "cap", "delivered", "dropped")
		for _, c := range st.Bus {
			mark := ""
			if c.Dropped > 0 {
				mark = " !"
			}
			fmt.Fprintf(w, " %-25s %8d %8d %12d %8d%s\n", c.Name, c.Depth, c.Capacity, c.Delivered, c.Dropped, mark)
		}
		fmt.Fprintln(w)
	}

	if len(st.Tenants) > 0 {
		fmt.Fprintf(w, "%-18s %3s %10s %10s %10s %8s %9s %5s %7s %7s\n",
			"tenant", "w", "records", "graph", "disk", "ingest", "analysis", "queue", "sealed", "budget")
		for _, t := range st.Tenants {
			sealed := uint64(0)
			budget := 1.0
			if t.Watermarks != nil {
				sealed = t.Watermarks.Sealed
				budget = t.Watermarks.BudgetRemaining
			}
			fmt.Fprintf(w, " %-17s %3d %10d %10s %10s %7.2fs %8.2fs %5d %7d %6.1f%%\n",
				t.Tenant, t.Cost.Weight, t.Cost.Records,
				humanBytes(t.Cost.GraphBytes), humanBytes(t.Cost.DiskBytes),
				t.Cost.IngestSeconds, t.Cost.AnalysisSeconds,
				t.Cost.QueueDepth, sealed, budget*100)
		}
		fmt.Fprintln(w)
	}

	if h := st.Hist; h != nil {
		fmt.Fprintf(w, "histstore: epochs %d–%d · %d segments · %d bytes · %d window + %d rollup records\n",
			h.OldestEpoch, h.NewestEpoch, h.Segments, h.Bytes, h.WindowRecords, h.RollupRecords)
	}
	if f := st.Flight; f != nil {
		fmt.Fprintf(w, "flight: %d trips", f.Trips)
		if len(f.RecentTrips) > 0 {
			last := f.RecentTrips[0]
			fmt.Fprintf(w, " (last: %s %s: %s)", last.Time.UTC().Format("15:04:05"), last.Component, last.Msg)
		}
		fmt.Fprintln(w)
	}
	if d := st.Diag; d != nil {
		fmt.Fprintf(w, "diag: %d bundles written, %d suppressed", d.Written, d.Dropped)
		if len(d.Bundles) > 0 {
			fmt.Fprintf(w, " (newest: %s)", d.Bundles[0].Name)
		}
		fmt.Fprintln(w)
	}
	if strings.TrimSpace(uptime) == "" && st.Watermarks == nil && len(st.Bus) == 0 {
		fmt.Fprintln(w, "(empty status — is this a cloudgraphd ops endpoint?)")
	}
}

// humanBytes renders a byte count with a binary unit suffix.
func humanBytes(n int64) string {
	switch {
	case n >= 1<<30:
		return fmt.Sprintf("%.1fGiB", float64(n)/(1<<30))
	case n >= 1<<20:
		return fmt.Sprintf("%.1fMiB", float64(n)/(1<<20))
	case n >= 1<<10:
		return fmt.Sprintf("%.1fKiB", float64(n)/(1<<10))
	}
	return fmt.Sprintf("%dB", n)
}
