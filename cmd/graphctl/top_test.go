package main

import (
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"cloudgraph/internal/statusz"
	"cloudgraph/internal/watermark"
)

// TestTopFetchAndRender drives the poll-and-draw path against a live
// statusz handler: graphctl top must decode what the daemon serves.
func TestTopFetchAndRender(t *testing.T) {
	wm := watermark.New(watermark.Config{FreshnessTarget: time.Second})
	stage := wm.Stage("analyzed.segment", true)
	wm.Ingested(1)
	wm.Sealed(1, time.Now())
	stage.Advance(1)
	wm.Ingested(2)
	wm.Sealed(2, time.Now())

	srv := httptest.NewServer(statusz.Handler(statusz.Sources{
		Watermarks: wm,
		Start:      time.Now().Add(-90 * time.Second),
		Tenants: func() []statusz.TenantSources {
			return []statusz.TenantSources{{
				Tenant: "acme",
				Cost:   statusz.TenantCost{Weight: 4, Records: 1234, GraphBytes: 2048, DiskBytes: 1 << 21},
			}}
		},
	}))
	defer srv.Close()

	st, err := fetchStatus(&http.Client{Timeout: time.Second}, srv.URL+"/statusz?format=json")
	if err != nil {
		t.Fatalf("fetchStatus: %v", err)
	}
	if st.Watermarks == nil || st.Watermarks.Sealed != 2 {
		t.Fatalf("decoded watermarks = %+v, want sealed epoch 2", st.Watermarks)
	}

	var buf strings.Builder
	renderTop(&buf, st, srv.URL)
	out := buf.String()
	if len(st.Tenants) != 1 || st.Tenants[0].Tenant != "acme" {
		t.Fatalf("decoded tenants = %+v, want one acme row", st.Tenants)
	}
	for _, want := range []string{"sealed 2", "analyzed.segment", "SLO budget", "lag", "acme", "2.0KiB", "2.0MiB"} {
		if !strings.Contains(out, want) {
			t.Errorf("dashboard frame missing %q:\n%s", want, out)
		}
	}
	// The analyzed stage sits at epoch 1 with epoch 2 sealed: lag 1.
	if !strings.Contains(out, "*analyzed.segment") {
		t.Errorf("SLO stage not starred:\n%s", out)
	}
}

func TestRenderTopEmptyStatus(t *testing.T) {
	var buf strings.Builder
	renderTop(&buf, statusz.Status{Time: time.Now()}, "http://x/statusz")
	if !strings.Contains(buf.String(), "empty status") {
		t.Errorf("empty frame = %q", buf.String())
	}
}
