// Command flowgen generates synthetic connection-summary telemetry for one
// of the paper's Table 1 datasets and writes it to a file, in the binary
// wire format (default) or CSV. The output replays through graphctl or
// cloudgraphd exactly as live telemetry would.
//
// Usage:
//
//	flowgen -dataset k8spaas -scale 0.25 -hours 2 -out k8s.flows
//	flowgen -dataset microservicebench -attack exfil -provider gcp -format csv -out m.csv
package main

import (
	"bufio"
	"flag"
	"fmt"
	"log"
	"net/netip"
	"os"
	"strings"
	"time"

	"cloudgraph/internal/cluster"
	"cloudgraph/internal/flowlog"
	"cloudgraph/internal/nicsim"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("flowgen: ")
	var (
		dataset  = flag.String("dataset", "microservicebench", "dataset preset: portal, microservicebench, k8spaas, kquery")
		scale    = flag.Float64("scale", 0.25, "dataset scale in (0, 1]")
		hours    = flag.Int("hours", 1, "hours of telemetry to generate")
		out      = flag.String("out", "-", "output file (- for stdout)")
		format   = flag.String("format", "binary", "output format: binary or csv")
		provider = flag.String("provider", "", "apply a provider sampling profile: azure, aws or gcp")
		attack   = flag.String("attack", "", "inject an attack in the final hour: scan, lateral, exfil or beacon")
		start    = flag.Int64("start", 1700000000, "unix start time (seconds)")
		seed     = flag.Int64("seed", 0, "override the preset's deterministic seed")
	)
	flag.Parse()

	spec, err := cluster.Preset(*dataset, *scale)
	if err != nil {
		log.Fatal(err)
	}
	if *seed != 0 {
		spec.Seed = *seed
	}
	c, err := cluster.New(spec)
	if err != nil {
		log.Fatal(err)
	}
	t0 := time.Unix(*start, 0).UTC().Truncate(time.Minute)
	if *attack != "" {
		if err := addAttack(c, *attack, t0.Add(time.Duration(*hours-1)*time.Hour)); err != nil {
			log.Fatal(err)
		}
	}

	var w *os.File
	if *out == "-" {
		w = os.Stdout
	} else {
		w, err = os.Create(*out)
		if err != nil {
			log.Fatal(err)
		}
		defer w.Close()
	}
	bw := bufio.NewWriterSize(w, 1<<20)
	defer bw.Flush()

	var sampler *flowlog.Sampler
	switch strings.ToLower(*provider) {
	case "":
	case "azure":
		sampler = flowlog.NewSampler(flowlog.Azure, uint64(spec.Seed))
	case "aws":
		sampler = flowlog.NewSampler(flowlog.AWS, uint64(spec.Seed))
	case "gcp":
		sampler = flowlog.NewSampler(flowlog.GCP, uint64(spec.Seed))
	default:
		log.Fatalf("unknown provider %q", *provider)
	}

	written := 0
	emit := func(recs []flowlog.Record) error {
		for _, r := range recs {
			if sampler != nil {
				var ok bool
				if r, ok = sampler.Sample(r); !ok {
					continue
				}
			}
			switch *format {
			case "binary":
				frame := flowlog.AppendBinary(nil, r)
				if _, err := bw.Write(frame); err != nil {
					return err
				}
			case "csv":
				if _, err := fmt.Fprintln(bw, r.MarshalCSV()); err != nil {
					return err
				}
			default:
				log.Fatalf("unknown format %q", *format)
			}
			written++
		}
		return nil
	}

	genStart := time.Now()
	if _, err := c.Run(t0, *hours*60, nicsim.CollectorFunc(emit)); err != nil {
		log.Fatal(err)
	}
	if err := bw.Flush(); err != nil {
		log.Fatal(err)
	}
	fmt.Fprintf(os.Stderr, "flowgen: %s scale=%.2f: %d records over %dh (%d monitored VMs) in %v\n",
		spec.Name, *scale, written, *hours, c.MonitoredIPs(), time.Since(genStart).Round(time.Millisecond))
}

// addAttack wires a named attack scenario starting at attackStart.
func addAttack(c *cluster.Cluster, name string, attackStart time.Time) error {
	victim := victimRole(c)
	if victim == "" {
		return fmt.Errorf("no internal role to attack")
	}
	c2 := netip.MustParseAddr("198.51.100.66")
	switch name {
	case "scan":
		c.AddAttack(cluster.PortScan{
			AttackerRole: victim, AttackerIdx: 0, TargetRole: victim,
			PortsPerMin: 60, Start: attackStart, Duration: time.Hour,
		})
	case "lateral":
		c.AddAttack(cluster.LateralMovement{
			AttackerRole: victim, AttackerIdx: 0, TargetRole: victim,
			FlowsPerMin: 10, Bytes: 8192, Start: attackStart, Duration: time.Hour,
		})
	case "exfil":
		c.AddAttack(cluster.Exfiltration{
			SourceRole: victim, SourceIdx: 0, Destination: c2,
			BytesPerMin: 80_000_000, Start: attackStart, Duration: 30 * time.Minute,
		})
	case "beacon":
		c.AddAttack(cluster.Beacon{
			SourceRole: victim, SourceIdx: 0, C2: c2, Period: 5 * time.Minute,
			Bytes: 512, Start: attackStart, Duration: time.Hour,
		})
	default:
		return fmt.Errorf("unknown attack %q (scan, lateral, exfil, beacon)", name)
	}
	return nil
}

// victimRole picks the first internal role of the spec as the breach point.
func victimRole(c *cluster.Cluster) string {
	for _, r := range c.Spec().Roles {
		if !r.External {
			return r.Name
		}
	}
	return ""
}
