// Command flowgen generates synthetic connection-summary telemetry for one
// of the paper's Table 1 datasets and writes it to a file, in the binary
// wire format (default) or CSV. The output replays through graphctl or
// cloudgraphd exactly as live telemetry would.
//
// With -tenants N (N > 1) flowgen simulates N independent subscriptions
// — one deterministic cluster per tenant, seeded from the preset — and
// interleaves their records chronologically into one tagged-frame
// capture (a .tflows file: each frame carries its tenant tag, the same
// framing `graphctl send` replays and cloudgraphd's decoder trusts).
// -tenant-skew zipf thins tenant i to 1/(i+1) of its records, so
// tenant-00 dominates the stream the way one hot subscription dominates
// a region; uniform keeps every tenant at full volume.
//
// Usage:
//
//	flowgen -dataset k8spaas -scale 0.25 -hours 2 -out k8s.flows
//	flowgen -dataset microservicebench -attack exfil -provider gcp -format csv -out m.csv
//	flowgen -dataset microservicebench -tenants 8 -tenant-skew zipf -out multi.tflows
package main

import (
	"bufio"
	"flag"
	"fmt"
	"log"
	"net/netip"
	"os"
	"strings"
	"time"

	"cloudgraph/internal/analytics"
	"cloudgraph/internal/cluster"
	"cloudgraph/internal/flowlog"
	"cloudgraph/internal/nicsim"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("flowgen: ")
	var (
		dataset  = flag.String("dataset", "microservicebench", "dataset preset: portal, microservicebench, k8spaas, kquery")
		scale    = flag.Float64("scale", 0.25, "dataset scale in (0, 1]")
		hours    = flag.Int("hours", 1, "hours of telemetry to generate")
		out      = flag.String("out", "-", "output file (- for stdout)")
		format   = flag.String("format", "binary", "output format: binary or csv")
		provider = flag.String("provider", "", "apply a provider sampling profile: azure, aws or gcp")
		attack   = flag.String("attack", "", "inject an attack in the final hour: scan, lateral, exfil or beacon")
		start    = flag.Int64("start", 1700000000, "unix start time (seconds)")
		seed     = flag.Int64("seed", 0, "override the preset's deterministic seed")
		tenants  = flag.Int("tenants", 1, "simulate this many tenant subscriptions and interleave them into a tagged-frame capture (1 = untagged single-tenant output)")
		skew     = flag.String("tenant-skew", "zipf", "multi-tenant volume skew: zipf (tenant i carries 1/(i+1) of its records) or uniform")
	)
	flag.Parse()

	spec, err := cluster.Preset(*dataset, *scale)
	if err != nil {
		log.Fatal(err)
	}
	if *seed != 0 {
		spec.Seed = *seed
	}
	t0 := time.Unix(*start, 0).UTC().Truncate(time.Minute)
	if *tenants > 1 {
		genTenants(spec, t0, *tenants, *skew, *hours, *format, *out, *provider, *attack)
		return
	}
	c, err := cluster.New(spec)
	if err != nil {
		log.Fatal(err)
	}
	if *attack != "" {
		if err := addAttack(c, *attack, t0.Add(time.Duration(*hours-1)*time.Hour)); err != nil {
			log.Fatal(err)
		}
	}

	var w *os.File
	if *out == "-" {
		w = os.Stdout
	} else {
		w, err = os.Create(*out)
		if err != nil {
			log.Fatal(err)
		}
		defer w.Close()
	}
	bw := bufio.NewWriterSize(w, 1<<20)
	defer bw.Flush()

	sampler := newSampler(*provider, spec.Seed)

	written := 0
	emit := func(recs []flowlog.Record) error {
		for _, r := range recs {
			if sampler != nil {
				var ok bool
				if r, ok = sampler.Sample(r); !ok {
					continue
				}
			}
			switch *format {
			case "binary":
				frame := flowlog.AppendBinary(nil, r)
				if _, err := bw.Write(frame); err != nil {
					return err
				}
			case "csv":
				if _, err := fmt.Fprintln(bw, r.MarshalCSV()); err != nil {
					return err
				}
			default:
				log.Fatalf("unknown format %q", *format)
			}
			written++
		}
		return nil
	}

	genStart := time.Now()
	if _, err := c.Run(t0, *hours*60, nicsim.CollectorFunc(emit)); err != nil {
		log.Fatal(err)
	}
	if err := bw.Flush(); err != nil {
		log.Fatal(err)
	}
	fmt.Fprintf(os.Stderr, "flowgen: %s scale=%.2f: %d records over %dh (%d monitored VMs) in %v\n",
		spec.Name, *scale, written, *hours, c.MonitoredIPs(), time.Since(genStart).Round(time.Millisecond))
}

// newSampler builds the named provider sampling profile, nil for none.
func newSampler(provider string, seed int64) *flowlog.Sampler {
	switch strings.ToLower(provider) {
	case "":
		return nil
	case "azure":
		return flowlog.NewSampler(flowlog.Azure, uint64(seed))
	case "aws":
		return flowlog.NewSampler(flowlog.AWS, uint64(seed))
	case "gcp":
		return flowlog.NewSampler(flowlog.GCP, uint64(seed))
	}
	log.Fatalf("unknown provider %q", provider)
	return nil
}

// genTenants simulates n independent tenant subscriptions — one
// deterministic cluster each, seeded preset.Seed+i — and interleaves
// their records chronologically into one tagged-frame capture.
func genTenants(spec cluster.Spec, t0 time.Time, n int, skew string, hours int, format, out, provider, attack string) {
	if format != "binary" {
		log.Fatalf("-tenants needs binary output (tagged frames), not %q", format)
	}
	keepEvery := func(i int) int { return 1 }
	switch skew {
	case "uniform":
	case "zipf":
		keepEvery = func(i int) int { return i + 1 }
	default:
		log.Fatalf("unknown tenant skew %q (zipf or uniform)", skew)
	}
	names := make([]string, n)
	streams := make([][]flowlog.Record, n)
	total := 0
	genStart := time.Now()
	for i := range n {
		names[i] = fmt.Sprintf("tenant-%02d", i)
		s := spec
		s.Seed = spec.Seed + int64(i)
		c, err := cluster.New(s)
		if err != nil {
			log.Fatal(err)
		}
		if attack != "" && i == 0 {
			// The attack lands on the dominant tenant only: the breach
			// one subscription suffers that its neighbors must not see.
			if err := addAttack(c, attack, t0.Add(time.Duration(hours-1)*time.Hour)); err != nil {
				log.Fatal(err)
			}
		}
		sampler := newSampler(provider, s.Seed)
		keep := keepEvery(i)
		seen := 0
		collect := func(recs []flowlog.Record) error {
			for _, r := range recs {
				if sampler != nil {
					var ok bool
					if r, ok = sampler.Sample(r); !ok {
						continue
					}
				}
				if seen%keep == 0 {
					streams[i] = append(streams[i], r)
				}
				seen++
			}
			return nil
		}
		if _, err := c.Run(t0, hours*60, nicsim.CollectorFunc(collect)); err != nil {
			log.Fatal(err)
		}
		total += len(streams[i])
	}

	w := os.Stdout
	if out != "-" {
		var err error
		w, err = os.Create(out)
		if err != nil {
			log.Fatal(err)
		}
		defer w.Close()
	}
	bw := bufio.NewWriterSize(w, 1<<20)

	// K-way chronological merge: each stream is already time-ordered, so
	// the capture interleaves tenants the way one region's collector sees
	// their NICs report. Ties go to the lower tenant index — fully
	// deterministic, so a capture regenerates byte-identically.
	idx := make([]int, n)
	var buf []byte
	for {
		best := -1
		for i := range n {
			if idx[i] >= len(streams[i]) {
				continue
			}
			if best < 0 || streams[i][idx[i]].Time.Before(streams[best][idx[best]].Time) {
				best = i
			}
		}
		if best < 0 {
			break
		}
		buf = analytics.AppendTagged(buf[:0], streams[best][idx[best]], names[best])
		if _, err := bw.Write(buf); err != nil {
			log.Fatal(err)
		}
		idx[best]++
	}
	if err := bw.Flush(); err != nil {
		log.Fatal(err)
	}
	fmt.Fprintf(os.Stderr, "flowgen: %s x%d tenants (%s skew): %d tagged records over %dh in %v\n",
		spec.Name, n, skew, total, hours, time.Since(genStart).Round(time.Millisecond))
}

// addAttack wires a named attack scenario starting at attackStart.
func addAttack(c *cluster.Cluster, name string, attackStart time.Time) error {
	victim := victimRole(c)
	if victim == "" {
		return fmt.Errorf("no internal role to attack")
	}
	c2 := netip.MustParseAddr("198.51.100.66")
	switch name {
	case "scan":
		c.AddAttack(cluster.PortScan{
			AttackerRole: victim, AttackerIdx: 0, TargetRole: victim,
			PortsPerMin: 60, Start: attackStart, Duration: time.Hour,
		})
	case "lateral":
		c.AddAttack(cluster.LateralMovement{
			AttackerRole: victim, AttackerIdx: 0, TargetRole: victim,
			FlowsPerMin: 10, Bytes: 8192, Start: attackStart, Duration: time.Hour,
		})
	case "exfil":
		c.AddAttack(cluster.Exfiltration{
			SourceRole: victim, SourceIdx: 0, Destination: c2,
			BytesPerMin: 80_000_000, Start: attackStart, Duration: 30 * time.Minute,
		})
	case "beacon":
		c.AddAttack(cluster.Beacon{
			SourceRole: victim, SourceIdx: 0, C2: c2, Period: 5 * time.Minute,
			Bytes: 512, Start: attackStart, Duration: time.Hour,
		})
	default:
		return fmt.Errorf("unknown attack %q (scan, lateral, exfil, beacon)", name)
	}
	return nil
}

// victimRole picks the first internal role of the spec as the breach point.
func victimRole(c *cluster.Cluster) string {
	for _, r := range c.Spec().Roles {
		if !r.External {
			return r.Name
		}
	}
	return ""
}
