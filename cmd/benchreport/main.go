// Command benchreport measures the ingest hot path and the graph memory
// layout in-process and emits one BENCH_<date>.json — the perf trajectory
// record ROADMAP item 3 asks for. CI runs it as the bench artifact step;
// the repo checks in one baseline per PR that moves the numbers.
//
// Usage:
//
//	go run ./cmd/benchreport                 # print JSON to stdout
//	go run ./cmd/benchreport -o BENCH_$(date +%F).json
//
// The measurements are deliberately self-contained (no `go test -bench`
// parsing): a synthetic 100K-node hypersparse subscription for bytes/edge,
// and a wire-encoded replay of a seeded cluster hour for records/sec/core
// and allocs/record, so two runs on the same machine are comparable.
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"math/rand"
	"net/netip"
	"os"
	"runtime"
	"testing"
	"time"

	"cloudgraph/internal/cluster"
	"cloudgraph/internal/core"
	"cloudgraph/internal/flowlog"
	"cloudgraph/internal/graph"
	"cloudgraph/internal/histstore"
	"cloudgraph/internal/realm"
)

// Report is the BENCH_<date>.json schema. Bytes-per-edge figures count
// directed edges; the ratio is the map-form cost over the frozen CSR cost
// on the same graph, measured with runtime.MemStats around a double GC.
type Report struct {
	Date             string  `json:"date"`
	GoVersion        string  `json:"go_version"`
	GOMAXPROCS       int     `json:"gomaxprocs"`
	Records          int     `json:"records"`
	RecordsPerSec    float64 `json:"records_per_sec"`
	RecordsPerSecPer float64 `json:"records_per_sec_per_core"`
	AllocsPerRecord  float64 `json:"allocs_per_record_decode"`
	GraphNodes       int     `json:"graph_nodes"`
	GraphEdges       int     `json:"graph_directed_edges"`
	MapBytesPerEdge  float64 `json:"map_bytes_per_edge"`
	CSRBytesPerEdge  float64 `json:"csr_bytes_per_edge"`
	BytesPerEdgeGain float64 `json:"bytes_per_edge_gain"`
	// Durable history figures: the same cluster hour windowed by the
	// minute, appended to a histstore, replayed (the crash-recovery path),
	// and compacted into hour roll-ups.
	HistWindows          int     `json:"hist_windows"`
	HistBytesPerWindow   float64 `json:"hist_bytes_per_window_disk"`
	HistReplayPerSec     float64 `json:"hist_replay_windows_per_sec"`
	HistCompactBytesGain float64 `json:"hist_compaction_bytes_gain"`
	// Multi-tenant figures: the same hour pushed through a realm manager
	// with the stream round-robined across 1 and then 32 tenant realms —
	// the scheduler admission and COGS accounting are the only layers over
	// bare ingest — plus the COGS meter's per-tenant wire accounting at 32.
	TenantRecordsPerSec1  float64 `json:"tenant_records_per_sec_per_core_1"`
	TenantRecordsPerSec32 float64 `json:"tenant_records_per_sec_per_core_32"`
	TenantCOGSBytesPer32  float64 `json:"tenant_cogs_wire_bytes_per_tenant_32"`
}

func heapAlloc() uint64 {
	runtime.GC()
	runtime.GC()
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	return ms.HeapAlloc
}

// synthSubscription mirrors the graph package's 100K-node benchmark shape:
// every node talks to a few hub services plus occasional random peers.
func synthSubscription(n int) *graph.Graph {
	g := graph.New(graph.FacetIP)
	rng := rand.New(rand.NewSource(42))
	addr := func(i int) graph.Node {
		return graph.IPNode(netip.AddrFrom4([4]byte{10, byte(i >> 16), byte(i >> 8), byte(i)}))
	}
	const hubs = 64
	for i := hubs; i < n; i++ {
		g.AddEdge(addr(i), addr(i%hubs), graph.Counters{Bytes: uint64(i), Packets: 2, Conns: 1})
		if rng.Intn(4) == 0 {
			g.AddEdge(addr(i), addr(hubs+rng.Intn(n-hubs)), graph.Counters{Bytes: 100, Packets: 1, Conns: 1})
		}
	}
	return g
}

func measureBytesPerEdge(r *Report) error {
	base := heapAlloc()
	g := synthSubscription(100_000)
	mapBytes := float64(heapAlloc() - base)
	r.GraphNodes = g.NumNodes()
	r.GraphEdges = g.NumDirectedEdges()
	g.Freeze()
	csrBytes := float64(heapAlloc() - base)
	runtime.KeepAlive(g)
	if mapBytes <= 0 || csrBytes <= 0 || r.GraphEdges == 0 {
		return fmt.Errorf("heap measurement unusable: map=%f csr=%f", mapBytes, csrBytes)
	}
	edges := float64(r.GraphEdges)
	r.MapBytesPerEdge = mapBytes / edges
	r.CSRBytesPerEdge = csrBytes / edges
	r.BytesPerEdgeGain = mapBytes / csrBytes
	return nil
}

func measureIngest(r *Report) ([]flowlog.Record, error) {
	spec, err := cluster.Preset("k8spaas", 0.25)
	if err != nil {
		return nil, err
	}
	c, err := cluster.New(spec)
	if err != nil {
		return nil, err
	}
	recs, err := c.CollectHour(time.Unix(1700000000, 0).UTC().Truncate(time.Hour))
	if err != nil {
		return nil, err
	}
	var wire []byte
	for _, rec := range recs {
		wire = flowlog.AppendBinary(wire, rec)
	}
	r.Records = len(recs)

	// Decode allocs: steady-state batch decode must be allocation-free;
	// report the measured per-record figure rather than asserting, so a
	// regression is visible in the checked-in trajectory (the test gate in
	// internal/flowlog fails the build outright).
	src := bytes.NewReader(wire)
	rd := flowlog.NewReader(src)
	buf := make([]flowlog.Record, 4096)
	perStream := testing.AllocsPerRun(5, func() {
		src.Reset(wire)
		rd.Reset(src)
		for {
			if _, err := rd.ReadBatch(buf); err != nil {
				break
			}
		}
	})
	r.AllocsPerRecord = perStream / float64(len(recs))

	// Throughput: the full decode+ingest path, single goroutine, enough
	// passes to dominate engine startup.
	e := core.NewEngine(core.Config{Window: time.Hour, Shards: 4})
	const passes = 3
	start := time.Now()
	for p := 0; p < passes; p++ {
		src.Reset(wire)
		rd.Reset(src)
		for {
			n, err := rd.ReadBatch(buf)
			if n > 0 {
				e.Ingest(buf[:n])
			}
			if err != nil {
				break
			}
		}
	}
	elapsed := time.Since(start)
	if len(e.Flush()) == 0 {
		return nil, fmt.Errorf("no windows completed")
	}
	r.RecordsPerSec = float64(passes*len(recs)) / elapsed.Seconds()
	// Single-goroutine ingest uses one core; per-core is the same figure,
	// kept as its own field so a future parallel driver can diverge.
	r.RecordsPerSecPer = r.RecordsPerSec
	return recs, nil
}

// measureHistory appends the cluster hour as minute windows to a durable
// history store, times a full replay (the crash-recovery startup path),
// and compacts the hour into a roll-up to report the on-disk reduction.
func measureHistory(r *Report, recs []flowlog.Record) error {
	var windows []*graph.Graph
	w := core.NewWindower(time.Minute, graph.BuilderOptions{})
	w.OnComplete = func(g *graph.Graph) {
		g.Freeze()
		windows = append(windows, g)
	}
	for _, rec := range recs {
		w.Add(rec)
	}
	w.Flush()
	if len(windows) < 10 {
		return fmt.Errorf("only %d minute windows", len(windows))
	}

	dir, err := os.MkdirTemp("", "benchhist")
	if err != nil {
		return err
	}
	defer os.RemoveAll(dir)
	// SegmentWindows 6 seals the full hour; a short retention plus the
	// sentinel window below makes the hour bucket compactable.
	hs, err := histstore.Open(dir, histstore.Options{
		SegmentWindows: 6,
		Retention:      30 * time.Minute,
		NoSync:         true,
	})
	if err != nil {
		return err
	}
	defer hs.Close()
	for i, g := range windows {
		if err := hs.Append(uint64(i+1), g); err != nil {
			return err
		}
	}
	r.HistWindows = len(windows)
	r.HistBytesPerWindow = float64(hs.Stats().Bytes) / float64(len(windows))

	// Replay rate: what recovery costs per recorded window.
	const passes = 3
	start := time.Now()
	for p := 0; p < passes; p++ {
		n := 0
		if err := hs.Replay(func(uint64, *graph.Graph) error { n++; return nil }); err != nil {
			return err
		}
		if n != len(windows) {
			return fmt.Errorf("replay saw %d of %d windows", n, len(windows))
		}
	}
	r.HistReplayPerSec = float64(passes*len(windows)) / time.Since(start).Seconds()

	// A sentinel past the hour closes the bucket so compaction can roll
	// the whole hour up.
	sentinel := graph.New(graph.FacetIP)
	sentinel.AddEdge(graph.IPNode(netip.MustParseAddr("10.9.9.9")),
		graph.IPNode(netip.MustParseAddr("10.9.9.10")),
		graph.Counters{Bytes: 1, Packets: 1, Conns: 1})
	sentinel.Start = windows[0].Start.Truncate(time.Hour).Add(3 * time.Hour)
	sentinel.End = sentinel.Start.Add(time.Minute)
	sentinel.Freeze()
	if err := hs.Append(uint64(len(windows)+1), sentinel); err != nil {
		return err
	}
	cs, err := hs.Compact()
	if err != nil {
		return err
	}
	if cs.Rollups == 0 || cs.BytesAfter == 0 {
		return fmt.Errorf("compaction rolled nothing up: %+v", cs)
	}
	r.HistCompactBytesGain = float64(cs.BytesBefore) / float64(cs.BytesAfter)
	return nil
}

// measureTenancy replays the cluster hour through a realm manager — the
// multi-tenant daemon's ingest shape — with the stream round-robined in
// batches across 1 and then 32 tenants, single goroutine, so the two
// rates bracket what tenancy admission and COGS metering cost over the
// bare-engine figure above. The 32-tenant run also reports the COGS
// meter's mean wire bytes per tenant.
func measureTenancy(r *Report, recs []flowlog.Record) error {
	const batch = 4096
	run := func(n int) (float64, int64, error) {
		m, err := realm.NewManager(realm.Config{Engine: core.Config{Window: time.Hour, Shards: 4}})
		if err != nil {
			return 0, 0, err
		}
		defer m.Close()
		realms := make([]*realm.Realm, n)
		if n == 1 {
			realms[0] = m.Default()
		} else {
			for i := range realms {
				if realms[i], err = m.Realm(fmt.Sprintf("tenant-%02d", i)); err != nil {
					return 0, 0, err
				}
			}
		}
		const passes = 3
		start := time.Now()
		for p := 0; p < passes; p++ {
			slot := 0
			for off := 0; off < len(recs); off += batch {
				end := off + batch
				if end > len(recs) {
					end = len(recs)
				}
				realms[slot%n].IngestTraced(recs[off:end], nil)
				slot++
			}
		}
		elapsed := time.Since(start)
		var wire int64
		for _, rr := range realms {
			rr.Flush()
			wire += rr.Cost().WireBytes
		}
		if wire == 0 {
			return 0, 0, fmt.Errorf("COGS metered no wire bytes across %d tenants", n)
		}
		return float64(passes*len(recs)) / elapsed.Seconds(), wire / int64(n), nil
	}
	rate1, _, err := run(1)
	if err != nil {
		return err
	}
	rate32, perTenant, err := run(32)
	if err != nil {
		return err
	}
	r.TenantRecordsPerSec1 = rate1
	r.TenantRecordsPerSec32 = rate32
	r.TenantCOGSBytesPer32 = float64(perTenant)
	return nil
}

func main() {
	out := flag.String("o", "", "write the report to this file instead of stdout")
	flag.Parse()
	r := &Report{
		Date:       time.Now().UTC().Format("2006-01-02"),
		GoVersion:  runtime.Version(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
	}
	if err := measureBytesPerEdge(r); err != nil {
		fmt.Fprintln(os.Stderr, "benchreport:", err)
		os.Exit(1)
	}
	recs, err := measureIngest(r)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchreport:", err)
		os.Exit(1)
	}
	if err := measureHistory(r, recs); err != nil {
		fmt.Fprintln(os.Stderr, "benchreport:", err)
		os.Exit(1)
	}
	if err := measureTenancy(r, recs); err != nil {
		fmt.Fprintln(os.Stderr, "benchreport:", err)
		os.Exit(1)
	}
	enc, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchreport:", err)
		os.Exit(1)
	}
	enc = append(enc, '\n')
	if *out == "" {
		os.Stdout.Write(enc)
		return
	}
	if err := os.WriteFile(*out, enc, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "benchreport:", err)
		os.Exit(1)
	}
}
