// Command cloudgraph-vet runs the project-specific analyzer suite over the
// module: the concurrency, determinism and wire-schema invariants that
// `go vet` cannot see but whose violations produced PR 1's bug crop.
//
// Usage:
//
//	go run ./cmd/cloudgraph-vet ./...            # whole module
//	go run ./cmd/cloudgraph-vet ./internal/core  # one package subtree
//	go run ./cmd/cloudgraph-vet -json ./...      # machine-readable findings
//	go run ./cmd/cloudgraph-vet -sarif ./...     # SARIF 2.1.0 findings
//	go run ./cmd/cloudgraph-vet -facts ./...     # dataflow facts (call graph,
//	                                             # lock graph, borrow sites)
//	go run ./cmd/cloudgraph-vet -dir path/to/pkg # standalone directory
//
// Per-line suppressions use `//lint:allow <analyzer> <justification>` on
// the offending line or the line above it; per-path suppressions use
// repeated -suppress analyzer:path/prefix flags.
//
// Exit status: 0 clean, 1 findings, 2 load or usage error.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"cloudgraph/internal/analysis"
)

// suppressFlag collects repeated -suppress analyzer:pathprefix values.
type suppressFlag []struct{ analyzer, prefix string }

func (s *suppressFlag) String() string { return fmt.Sprint(*s) }

func (s *suppressFlag) Set(v string) error {
	name, prefix, ok := strings.Cut(v, ":")
	if !ok || name == "" || prefix == "" {
		return fmt.Errorf("want analyzer:path/prefix, got %q", v)
	}
	*s = append(*s, struct{ analyzer, prefix string }{name, prefix})
	return nil
}

func main() {
	jsonOut := flag.Bool("json", false, "emit findings as JSON")
	sarifOut := flag.Bool("sarif", false, "emit findings as SARIF 2.1.0")
	factsOut := flag.Bool("facts", false, "emit dataflow facts (call graph, lock graph, borrow sites) as JSON and exit")
	dir := flag.String("dir", "", "analyze a single standalone package directory instead of the module")
	list := flag.Bool("list", false, "list the analyzers and exit")
	var suppress suppressFlag
	flag.Var(&suppress, "suppress", "suppress analyzer under a path prefix (repeatable, analyzer:path/prefix)")
	flag.Parse()

	analyzers := analysis.Suite()
	if *list {
		for _, a := range analyzers {
			fmt.Printf("%-11s %s\n", a.Name, a.Doc)
		}
		return
	}

	var pkgs []*analysis.Package
	var root string
	if *dir != "" {
		pkg, err := analysis.LoadDir(*dir)
		if err != nil {
			fatalf("load %s: %v", *dir, err)
		}
		// Standalone directories get the full suite with no path gating.
		for _, a := range analyzers {
			a.Match = nil
		}
		pkgs = []*analysis.Package{pkg}
	} else {
		cwd, err := os.Getwd()
		if err != nil {
			fatalf("%v", err)
		}
		root, err = analysis.FindModuleRoot(cwd)
		if err != nil {
			fatalf("%v", err)
		}
		pkgs, err = analysis.LoadModule(root)
		if err != nil {
			fatalf("load module: %v", err)
		}
	}

	if *factsOut {
		facts := analysis.ComputeFacts(pkgs)
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(facts); err != nil {
			fatalf("encode facts: %v", err)
		}
		return
	}

	// The full module always feeds the analyzers — the dataflow analyzers
	// need the whole call graph even for a subtree query — and findings are
	// filtered to the requested packages afterwards.
	findings := analysis.Run(analyzers, pkgs)
	findings = filterFindings(findings, root, flag.Args())
	findings = applySuppressions(findings, suppress, root)

	if *sarifOut {
		docs := make(map[string]string, len(analyzers))
		for _, a := range analyzers {
			docs[a.Name] = a.Doc
		}
		data, err := analysis.ToSARIF(findings, docs)
		if err != nil {
			fatalf("sarif: %v", err)
		}
		fmt.Println(string(data))
	} else if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if findings == nil {
			findings = []analysis.Finding{}
		}
		if err := enc.Encode(findings); err != nil {
			fatalf("encode: %v", err)
		}
	} else {
		for _, f := range findings {
			fmt.Println(f)
		}
	}
	if len(findings) > 0 {
		if !*jsonOut {
			fmt.Fprintf(os.Stderr, "cloudgraph-vet: %d finding(s)\n", len(findings))
		}
		os.Exit(1)
	}
}

// filterFindings restricts reporting to the requested patterns: "./..."
// (or no argument) keeps everything, "./x/..." keeps the subtree, "./x"
// keeps the one package. The analyzers always see the full module (the
// dataflow engine's call graph must be whole); only the findings are
// filtered, by the directory the finding's file lives in.
func filterFindings(findings []analysis.Finding, root string, args []string) []analysis.Finding {
	if len(args) == 0 || root == "" {
		return findings
	}
	keepDir := func(dir string) bool {
		rel, err := filepath.Rel(root, dir)
		if err != nil {
			return true
		}
		rel = filepath.ToSlash(rel)
		for _, arg := range args {
			arg = filepath.ToSlash(arg)
			arg = strings.TrimPrefix(arg, "./")
			if arg == "..." || arg == "." {
				return true
			}
			if sub, ok := strings.CutSuffix(arg, "/..."); ok {
				if rel == sub || strings.HasPrefix(rel, sub+"/") {
					return true
				}
				continue
			}
			if rel == strings.TrimSuffix(arg, "/") {
				return true
			}
		}
		return false
	}
	all := true
	for _, arg := range args {
		a := strings.TrimPrefix(filepath.ToSlash(arg), "./")
		if a != "..." && a != "." {
			all = false
		}
	}
	if all {
		return findings
	}
	var out []analysis.Finding
	for _, f := range findings {
		if keepDir(filepath.Dir(f.File)) {
			out = append(out, f)
		}
	}
	return out
}

// applySuppressions drops findings matching -suppress analyzer:pathprefix
// flags; prefixes are matched against the finding's path relative to the
// module root.
func applySuppressions(findings []analysis.Finding, suppress suppressFlag, root string) []analysis.Finding {
	if len(suppress) == 0 {
		return findings
	}
	var out []analysis.Finding
	for _, f := range findings {
		rel := f.File
		if root != "" {
			if r, err := filepath.Rel(root, f.File); err == nil {
				rel = filepath.ToSlash(r)
			}
		}
		drop := false
		for _, s := range suppress {
			if s.analyzer == f.Analyzer && strings.HasPrefix(rel, s.prefix) {
				drop = true
				break
			}
		}
		if !drop {
			out = append(out, f)
		}
	}
	return out
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "cloudgraph-vet: "+format+"\n", args...)
	os.Exit(2)
}
