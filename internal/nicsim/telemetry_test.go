package nicsim

import (
	"net/netip"
	"strings"
	"testing"
	"time"

	"cloudgraph/internal/flowlog"
	"cloudgraph/internal/telemetry"
)

func TestFabricTelemetry(t *testing.T) {
	reg := telemetry.NewRegistry()
	f := NewFabric(2, time.Minute)
	f.Instrument(reg)

	t0 := time.Unix(1700000000, 0).UTC()
	vms := []netip.Addr{
		netip.MustParseAddr("10.0.0.1"),
		netip.MustParseAddr("10.0.0.2"),
		netip.MustParseAddr("10.0.0.3"), // second host: created after Instrument
	}
	for _, a := range vms {
		f.AddVM(a)
	}
	f.ObserveFlow(netip.AddrPortFrom(vms[0], 40000), netip.AddrPortFrom(vms[1], 443),
		3, 2, 300, 200, t0)
	f.ObserveFlow(netip.AddrPortFrom(vms[2], 40001), netip.AddrPortFrom(vms[0], 443),
		1, 1, 100, 100, t0)

	var collected int
	sink := CollectorFunc(func(recs []flowlog.Record) error {
		collected += len(recs)
		return nil
	})
	if _, err := f.PullAll(t0.Add(time.Second), sink); err != nil {
		t.Fatal(err)
	}
	drained := reg.Counter("cloudgraph_nicsim_records_drained_total",
		"connection summaries pulled from VNIC flow tables by host agents")
	if got := drained.Value(); got != int64(collected) || got == 0 {
		t.Errorf("drained counter = %d, want %d (collected)", got, collected)
	}

	// Second pull well past the idle timeout evicts every flow.
	if _, err := f.PullAll(t0.Add(5*time.Minute), sink); err != nil {
		t.Fatal(err)
	}
	aged := reg.Counter("cloudgraph_nicsim_aged_out_flows_total",
		"flows evicted from VNIC flow tables by the idle timeout")
	if got := aged.Value(); got != 4 {
		t.Errorf("aged counter = %d, want 4 (both sides of both flows)", got)
	}

	var b strings.Builder
	if err := reg.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if !strings.Contains(out, "cloudgraph_nicsim_active_flows 0") {
		t.Errorf("active-flows gauge should read 0 after eviction:\n%s", out)
	}
	if !strings.Contains(out, "cloudgraph_nicsim_flow_table_bytes 0") {
		t.Errorf("flow-table-bytes gauge should read 0 after eviction:\n%s", out)
	}
}
