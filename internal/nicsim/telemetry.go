package nicsim

import (
	"cloudgraph/internal/telemetry"
	"cloudgraph/internal/trace"
)

// Trace binds tr to every current and future host, making host agents
// sample drained records and record "nicsim.pull" spans — the first hop of
// the record's journey through the pipeline. A nil tracer (or never
// calling Trace) leaves collection untraced; the record stream is
// byte-identical either way because contexts travel out-of-band.
func (f *Fabric) Trace(tr *trace.Tracer) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.tracer = tr
	for _, h := range f.hosts {
		h.mu.Lock()
		h.tracer = tr
		h.mu.Unlock()
	}
}

// Instrument registers the collection-path metric families in reg and binds
// every current and future host to them: records drained by host agents,
// flows evicted by the idle timeout, and gauges for live flow-table
// occupancy and its modelled NIC memory. Handles are bound once here and on
// placement, so Observe/Drain stay free of registry lookups; a nil registry
// leaves the fabric un-instrumented.
func (f *Fabric) Instrument(reg *telemetry.Registry) {
	if reg == nil {
		return
	}
	f.mu.Lock()
	f.telDrained = reg.Counter("cloudgraph_nicsim_records_drained_total",
		"connection summaries pulled from VNIC flow tables by host agents")
	f.telAged = reg.Counter("cloudgraph_nicsim_aged_out_flows_total",
		"flows evicted from VNIC flow tables by the idle timeout")
	for _, h := range f.hosts {
		h.bind(f.telDrained, f.telAged)
	}
	f.mu.Unlock()
	reg.GaugeFunc("cloudgraph_nicsim_active_flows",
		"flows currently resident in VNIC flow tables, fleet-wide",
		func() float64 {
			total := 0
			for _, h := range f.Hosts() {
				total += h.ActiveFlows()
			}
			return float64(total)
		})
	reg.GaugeFunc("cloudgraph_nicsim_flow_table_bytes",
		"modelled NIC memory holding telemetry flow state, fleet-wide",
		func() float64 {
			total := 0
			for _, h := range f.Hosts() {
				total += h.MemoryFootprint()
			}
			return float64(total)
		})
}

// bind points the host and its existing VNICs at the fabric's counters.
// Caller holds f.mu; h.mu is ordered after it (AddVM takes them the same
// way).
func (h *Host) bind(drained, aged *telemetry.Counter) {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.telDrained = drained
	h.telAged = aged
	for _, v := range h.vnics {
		v.mu.Lock()
		v.telAged = aged
		v.mu.Unlock()
	}
}

// ActiveFlows returns the number of flows resident across the host's VNICs.
func (h *Host) ActiveFlows() int {
	h.mu.Lock()
	defer h.mu.Unlock()
	total := 0
	for _, v := range h.vnics {
		total += v.ActiveFlows()
	}
	return total
}
