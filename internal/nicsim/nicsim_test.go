package nicsim

import (
	"net/netip"
	"sync"
	"testing"
	"time"

	"cloudgraph/internal/flowlog"
)

var (
	vmA = netip.MustParseAddr("10.0.0.1")
	vmB = netip.MustParseAddr("10.0.0.2")
	ext = netip.MustParseAddr("203.0.113.7")
	t0  = time.Unix(1700000000, 0).UTC()
)

func TestVNICObserveDrain(t *testing.T) {
	v := NewVNIC(vmA, 4*time.Minute)
	remote := netip.AddrPortFrom(ext, 443)
	v.Observe(50000, remote, 10, 8, 1000, 800, t0)
	v.Observe(50000, remote, 5, 4, 500, 400, t0.Add(30*time.Second))

	recs := v.Drain(t0)
	if len(recs) != 1 {
		t.Fatalf("Drain returned %d records, want 1", len(recs))
	}
	r := recs[0]
	if r.LocalIP != vmA || r.LocalPort != 50000 || r.RemoteIP != ext || r.RemotePort != 443 {
		t.Errorf("endpoints wrong: %+v", r)
	}
	if r.PacketsSent != 15 || r.PacketsRcvd != 12 || r.BytesSent != 1500 || r.BytesRcvd != 1200 {
		t.Errorf("counters not accumulated: %+v", r)
	}
	if r.Time != t0 {
		t.Errorf("record time = %v, want interval start %v", r.Time, t0)
	}
}

func TestVNICDrainResetsCounters(t *testing.T) {
	v := NewVNIC(vmA, 4*time.Minute)
	remote := netip.AddrPortFrom(ext, 443)
	v.Observe(50000, remote, 10, 0, 1000, 0, t0)
	v.Drain(t0)
	// No traffic in second interval: the still-resident flow must not log.
	if recs := v.Drain(t0.Add(time.Minute)); len(recs) != 0 {
		t.Errorf("idle flow logged %d records, want 0", len(recs))
	}
}

func TestVNICIdleEviction(t *testing.T) {
	v := NewVNIC(vmA, 2*time.Minute)
	remote := netip.AddrPortFrom(ext, 443)
	v.Observe(50000, remote, 1, 1, 100, 100, t0)
	v.Drain(t0) // lastSeen t0, not yet idle
	if v.ActiveFlows() != 1 {
		t.Fatalf("flow evicted too early")
	}
	v.Drain(t0.Add(2 * time.Minute)) // idle >= timeout: evict
	if v.ActiveFlows() != 0 {
		t.Errorf("idle flow not evicted: %d active", v.ActiveFlows())
	}
}

func TestVNICPeakFlowsAndMemory(t *testing.T) {
	v := NewVNIC(vmA, time.Minute)
	for i := 0; i < 10; i++ {
		v.Observe(uint16(40000+i), netip.AddrPortFrom(ext, 443), 1, 0, 100, 0, t0)
	}
	if v.PeakFlows() != 10 {
		t.Errorf("PeakFlows = %d, want 10", v.PeakFlows())
	}
	if got, want := v.MemoryFootprint(), 10*EntrySize; got != want {
		t.Errorf("MemoryFootprint = %d, want %d", got, want)
	}
	v.Drain(t0.Add(time.Minute))
	if v.ActiveFlows() != 0 {
		t.Fatal("expected eviction")
	}
	if v.PeakFlows() != 10 {
		t.Errorf("PeakFlows should be a high-water mark, got %d", v.PeakFlows())
	}
}

func TestVNICConcurrentObserve(t *testing.T) {
	v := NewVNIC(vmA, time.Minute)
	remote := netip.AddrPortFrom(ext, 80)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				v.Observe(1234, remote, 1, 1, 10, 10, t0)
			}
		}()
	}
	wg.Wait()
	recs := v.Drain(t0)
	if len(recs) != 1 || recs[0].PacketsSent != 8000 {
		t.Errorf("concurrent observes lost updates: %+v", recs)
	}
}

func TestHostPullForwardsAllVNICs(t *testing.T) {
	h := NewHost(4 * time.Minute)
	h.PlaceVM(vmA).Observe(1, netip.AddrPortFrom(ext, 443), 1, 1, 10, 10, t0)
	h.PlaceVM(vmB).Observe(2, netip.AddrPortFrom(ext, 443), 2, 2, 20, 20, t0)

	var got []flowlog.Record
	n, err := h.Pull(t0, CollectorFunc(func(recs []flowlog.Record) error {
		got = append(got, recs...)
		return nil
	}))
	if err != nil {
		t.Fatalf("Pull: %v", err)
	}
	if n != 2 || len(got) != 2 {
		t.Fatalf("Pull forwarded %d records (%d collected), want 2", n, len(got))
	}
	// Deterministic ordering: vmA sorts before vmB.
	if got[0].LocalIP != vmA || got[1].LocalIP != vmB {
		t.Errorf("records out of order: %v, %v", got[0].LocalIP, got[1].LocalIP)
	}
}

func TestHostPlaceVMIdempotent(t *testing.T) {
	h := NewHost(time.Minute)
	v1 := h.PlaceVM(vmA)
	v2 := h.PlaceVM(vmA)
	if v1 != v2 {
		t.Error("PlaceVM created a second VNIC for the same address")
	}
	if got := h.VMs(); len(got) != 1 {
		t.Errorf("VMs = %v, want one entry", got)
	}
}

func TestFabricDoubleReporting(t *testing.T) {
	f := NewFabric(16, 4*time.Minute)
	f.AddVM(vmA)
	f.AddVM(vmB)
	src := netip.AddrPortFrom(vmA, 51000)
	dst := netip.AddrPortFrom(vmB, 8080)
	f.ObserveFlow(src, dst, 10, 6, 5000, 300, t0)

	var got []flowlog.Record
	n, err := f.PullAll(t0, CollectorFunc(func(recs []flowlog.Record) error {
		got = append(got, recs...)
		return nil
	}))
	if err != nil || n != 2 {
		t.Fatalf("PullAll = %d, %v; want 2 records (one per side)", n, err)
	}
	var fromA, fromB *flowlog.Record
	for i := range got {
		switch got[i].LocalIP {
		case vmA:
			fromA = &got[i]
		case vmB:
			fromB = &got[i]
		}
	}
	if fromA == nil || fromB == nil {
		t.Fatalf("missing a side: %+v", got)
	}
	if fromA.BytesSent != 5000 || fromA.BytesRcvd != 300 {
		t.Errorf("A-side counters wrong: %+v", fromA)
	}
	if fromB.BytesSent != 300 || fromB.BytesRcvd != 5000 {
		t.Errorf("B-side counters wrong: %+v", fromB)
	}
	if fromA.Reverse().Key() != fromB.Key() {
		t.Error("the two sides should describe the same flow key")
	}
}

func TestFabricExternalPeerSingleReport(t *testing.T) {
	f := NewFabric(16, 4*time.Minute)
	f.AddVM(vmA)
	// ext is not monitored: only vmA's VNIC logs.
	f.ObserveFlow(netip.AddrPortFrom(ext, 33000), netip.AddrPortFrom(vmA, 443), 4, 10, 400, 9000, t0)
	n, err := f.PullAll(t0, CollectorFunc(func([]flowlog.Record) error { return nil }))
	if err != nil || n != 1 {
		t.Errorf("PullAll = %d, %v; want exactly 1 record", n, err)
	}
	if f.Monitored(ext) {
		t.Error("external address reported as monitored")
	}
}

func TestFabricPacksHosts(t *testing.T) {
	f := NewFabric(4, time.Minute)
	for i := 0; i < 10; i++ {
		f.AddVM(netip.AddrFrom4([4]byte{10, 1, 0, byte(i)}))
	}
	if got := len(f.Hosts()); got != 3 {
		t.Errorf("10 VMs at 4/host -> %d hosts, want 3", got)
	}
}

func TestMemoryProportionalToConcurrentFlows(t *testing.T) {
	// §3.1: "The size of the logs and the memory footprint is proportional
	// to the number of concurrent flows."
	f := NewFabric(16, 10*time.Minute)
	f.AddVM(vmA)
	base := f.MemoryFootprint()
	for i := 0; i < 100; i++ {
		f.ObserveFlow(netip.AddrPortFrom(vmA, uint16(40000+i)), netip.AddrPortFrom(ext, 443), 1, 1, 10, 10, t0)
	}
	if got := f.MemoryFootprint() - base; got != 100*EntrySize {
		t.Errorf("memory delta = %d, want %d (proportional to flows)", got, 100*EntrySize)
	}
}
