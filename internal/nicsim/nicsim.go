// Package nicsim simulates the telemetry collection path of Figure 7 in the
// paper: programmable NICs (or the virtual switch) attached to every cloud
// host keep per-flow state for the network functions they already implement;
// recording a few extra counters per flow and letting a host agent
// periodically pull and forward the summaries yields connection-summary
// telemetry with zero impact on the resources a customer pays for.
//
// The simulation is driven by explicit timestamps rather than wall-clock
// time so experiments are deterministic: traffic is reported to a VNIC with
// Observe, and the host agent's periodic pull is modelled by Drain.
package nicsim

import (
	"net/netip"
	"sort"
	"sync"
	"time"

	"cloudgraph/internal/flowlog"
	"cloudgraph/internal/telemetry"
)

// flowKey identifies one direction-normalized flow on a VNIC: the local
// endpoint is fixed (the VM the VNIC serves), so the key is the local port
// plus the remote endpoint.
type flowKey struct {
	localPort uint16
	remote    netip.AddrPort
}

// flowState is the per-flow counter block a smartNIC keeps. EntrySize is its
// approximate hardware footprint, used for the memory-proportionality
// experiment (log and memory footprint scale with concurrent flows, §3.1).
type flowState struct {
	pktsSent, pktsRcvd   uint64
	bytesSent, bytesRcvd uint64
	lastSeen             time.Time
}

// EntrySize is the modelled per-flow memory footprint in bytes: the key
// (local port + remote IP:port) plus four counters and a timestamp.
const EntrySize = 2 + 18 + 8*5

// VNIC is the virtual NIC attached to one monitored VM. It accumulates
// per-flow counters exactly as the smartNIC's flow table would; flows idle
// longer than the idle timeout are evicted at the next Drain (their final
// counters are still reported).
type VNIC struct {
	mu    sync.Mutex
	local netip.Addr
	flows map[flowKey]*flowState

	// IdleTimeout evicts flows not seen for this long at Drain time.
	// Zero means never evict between drains (flows are always flushed
	// and reset each interval regardless).
	idleTimeout time.Duration

	peakFlows int

	// telAged counts idle evictions; bound by the owning host (nil when
	// telemetry is off).
	telAged *telemetry.Counter
}

// NewVNIC returns a VNIC for the VM with address local. idleTimeout governs
// flow-table eviction; 4 minutes is typical for hardware flow tables.
func NewVNIC(local netip.Addr, idleTimeout time.Duration) *VNIC {
	return &VNIC{
		local:       local,
		flows:       make(map[flowKey]*flowState),
		idleTimeout: idleTimeout,
	}
}

// Local returns the VM address this VNIC serves.
func (v *VNIC) Local() netip.Addr { return v.local }

// Observe records traffic on the flow (localPort, remote) at time now:
// bytesSent/pktsSent left the VM, bytesRcvd/pktsRcvd arrived. This is the
// only work on the data path — a few counter updates, matching the paper's
// argument that the interference is negligible.
func (v *VNIC) Observe(localPort uint16, remote netip.AddrPort, pktsSent, pktsRcvd, bytesSent, bytesRcvd uint64, now time.Time) {
	k := flowKey{localPort: localPort, remote: remote}
	v.mu.Lock()
	st, ok := v.flows[k]
	if !ok {
		st = &flowState{}
		v.flows[k] = st
		if len(v.flows) > v.peakFlows {
			v.peakFlows = len(v.flows)
		}
	}
	st.pktsSent += pktsSent
	st.pktsRcvd += pktsRcvd
	st.bytesSent += bytesSent
	st.bytesRcvd += bytesRcvd
	st.lastSeen = now
	v.mu.Unlock()
}

// Drain emits one connection summary per active flow for the interval
// starting at intervalStart, resets the counters, and evicts idle flows.
// Flows with no traffic this interval produce no record (NSG flow logs only
// log active flows). Records are sorted for determinism.
func (v *VNIC) Drain(intervalStart time.Time) []flowlog.Record {
	v.mu.Lock()
	defer v.mu.Unlock()
	recs := make([]flowlog.Record, 0, len(v.flows))
	for k, st := range v.flows {
		if st.pktsSent+st.pktsRcvd > 0 {
			recs = append(recs, flowlog.Record{
				Time:        intervalStart,
				LocalIP:     v.local,
				LocalPort:   k.localPort,
				RemoteIP:    k.remote.Addr(),
				RemotePort:  k.remote.Port(),
				PacketsSent: st.pktsSent,
				PacketsRcvd: st.pktsRcvd,
				BytesSent:   st.bytesSent,
				BytesRcvd:   st.bytesRcvd,
			})
		}
		if v.idleTimeout > 0 && intervalStart.Sub(st.lastSeen) >= v.idleTimeout {
			delete(v.flows, k)
			v.telAged.Add(1)
			continue
		}
		*st = flowState{lastSeen: st.lastSeen}
	}
	sort.Slice(recs, func(i, j int) bool {
		a, b := recs[i], recs[j]
		if c := a.RemoteIP.Compare(b.RemoteIP); c != 0 {
			return c < 0
		}
		if a.RemotePort != b.RemotePort {
			return a.RemotePort < b.RemotePort
		}
		return a.LocalPort < b.LocalPort
	})
	return recs
}

// ActiveFlows returns the number of flows currently in the table.
func (v *VNIC) ActiveFlows() int {
	v.mu.Lock()
	defer v.mu.Unlock()
	return len(v.flows)
}

// PeakFlows returns the high-water mark of concurrent flows, whose product
// with EntrySize is the NIC memory the telemetry needs.
func (v *VNIC) PeakFlows() int {
	v.mu.Lock()
	defer v.mu.Unlock()
	return v.peakFlows
}

// MemoryFootprint returns the modelled NIC memory in bytes currently used
// for telemetry state.
func (v *VNIC) MemoryFootprint() int {
	return v.ActiveFlows() * EntrySize
}
