package nicsim

import (
	"log/slog"
	"net/netip"
	"sort"
	"strconv"
	"sync"
	"time"

	"cloudgraph/internal/flowlog"
	"cloudgraph/internal/telemetry"
	"cloudgraph/internal/trace"
)

// Collector receives batches of connection summaries forwarded by host
// agents — the "cloud store or service endpoint" of Figure 7. A Collector
// must be safe for concurrent use if agents run concurrently.
type Collector interface {
	Collect(recs []flowlog.Record) error
}

// CollectorFunc adapts a function to the Collector interface.
type CollectorFunc func(recs []flowlog.Record) error

// Collect calls f.
func (f CollectorFunc) Collect(recs []flowlog.Record) error { return f(recs) }

// TracedCollector is a Collector that can also accept the per-record trace
// contexts of a sampled batch. tcs is either nil or parallel to recs, with
// the zero Context on unsampled records. Collectors that don't implement
// it still receive the records — tracing degrades, the data does not.
type TracedCollector interface {
	Collector
	CollectTraced(recs []flowlog.Record, tcs []trace.Context) error
}

// forward hands a batch to c, through the traced path when the batch has
// sampled records and the collector supports it.
func forward(c Collector, recs []flowlog.Record, tcs []trace.Context) error {
	if tcs != nil {
		if tc, ok := c.(TracedCollector); ok {
			return tc.CollectTraced(recs, tcs)
		}
	}
	return c.Collect(recs)
}

// Host models one physical cloud host: a set of VNICs (one per VM placed on
// the host) and the agent that periodically pulls their flow summaries and
// forwards them to a collector. Crucially the agent runs on the host, not in
// any guest, so customers cannot tamper with collection and telemetry stays
// usable even when VMs are breached (§3.1).
type Host struct {
	mu    sync.Mutex
	vnics map[netip.Addr]*VNIC

	idleTimeout time.Duration

	// Fabric-wide counters, bound by Fabric.Instrument (nil when off).
	telDrained *telemetry.Counter
	telAged    *telemetry.Counter

	// Fabric-wide tracer, bound by Fabric.Trace (nil when off). All
	// tracer methods are nil-safe, but Pull still branches on it to skip
	// the per-record sampling loop entirely when tracing is disabled.
	tracer *trace.Tracer
}

// NewHost returns an empty host whose VNICs use the given idle timeout.
func NewHost(idleTimeout time.Duration) *Host {
	return &Host{vnics: make(map[netip.Addr]*VNIC), idleTimeout: idleTimeout}
}

// PlaceVM attaches a VNIC for a VM with the given address, returning the
// VNIC. Placing the same address twice returns the existing VNIC.
func (h *Host) PlaceVM(addr netip.Addr) *VNIC {
	h.mu.Lock()
	defer h.mu.Unlock()
	if v, ok := h.vnics[addr]; ok {
		return v
	}
	v := NewVNIC(addr, h.idleTimeout)
	v.telAged = h.telAged
	h.vnics[addr] = v
	return v
}

// VNIC returns the VNIC for addr, or nil if no VM with that address is
// placed on this host.
func (h *Host) VNIC(addr netip.Addr) *VNIC {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.vnics[addr]
}

// VMs returns the addresses of the VMs placed on this host, sorted.
func (h *Host) VMs() []netip.Addr {
	h.mu.Lock()
	defer h.mu.Unlock()
	addrs := make([]netip.Addr, 0, len(h.vnics))
	for a := range h.vnics {
		addrs = append(addrs, a)
	}
	sort.Slice(addrs, func(i, j int) bool { return addrs[i].Compare(addrs[j]) < 0 })
	return addrs
}

// Pull is the agent's periodic action: drain every VNIC for the interval
// starting at intervalStart and forward the combined batch to the collector.
// It returns the number of records forwarded.
func (h *Host) Pull(intervalStart time.Time, c Collector) (int, error) {
	h.mu.Lock()
	drained := h.telDrained
	tracer := h.tracer
	vnics := make([]*VNIC, 0, len(h.vnics))
	for _, v := range h.vnics {
		vnics = append(vnics, v)
	}
	h.mu.Unlock()
	sort.Slice(vnics, func(i, j int) bool { return vnics[i].local.Compare(vnics[j].local) < 0 })

	var drainStart time.Time
	if tracer != nil {
		//lint:allow detclock span timestamps are observability-only and never reach the record stream
		drainStart = time.Now()
	}
	var batch []flowlog.Record
	for _, v := range vnics {
		batch = append(batch, v.Drain(intervalStart)...)
	}
	if len(batch) == 0 {
		return 0, nil
	}

	// Sample trace contexts out-of-band: tcs is parallel to batch, never
	// stored in the records themselves, so replay streams stay
	// byte-identical whether or not a tracer is attached.
	var tcs []trace.Context
	if tracer != nil {
		for i := range batch {
			if ctx := tracer.Sample(); ctx.Sampled() {
				if tcs == nil {
					tcs = make([]trace.Context, len(batch))
				}
				tcs[i] = ctx
			}
		}
		//lint:allow detclock span timestamps are observability-only and never reach the record stream
		drainDur := time.Since(drainStart)
		note := "records=" + strconv.Itoa(len(batch)) + " vnics=" + strconv.Itoa(len(vnics))
		for _, tc := range tcs {
			if tc.Sampled() {
				tracer.Record(tc, "nicsim.pull", drainStart, drainDur, note)
			}
		}
	}

	if err := forward(c, batch, tcs); err != nil {
		tracer.Eventf(trace.Context{}, "nicsim", slog.LevelError, "collector rejected batch of %d records: %v", len(batch), err)
		return 0, err
	}
	drained.Add(int64(len(batch)))
	return len(batch), nil
}

// MemoryFootprint sums the modelled telemetry memory across all VNICs.
func (h *Host) MemoryFootprint() int {
	h.mu.Lock()
	defer h.mu.Unlock()
	total := 0
	for _, v := range h.vnics {
		total += v.MemoryFootprint()
	}
	return total
}

// Fabric wires a fleet of hosts together and routes Observe calls to both
// endpoints' VNICs, as traffic between two monitored VMs is summarized
// independently by each side's NIC. It is the top-level entry point used by
// the workload generators.
type Fabric struct {
	mu     sync.Mutex
	byVM   map[netip.Addr]*VNIC
	hosts  []*Host
	perVM  int
	idleTO time.Duration

	// Fleet counters registered by Instrument; new hosts inherit them.
	telDrained *telemetry.Counter
	telAged    *telemetry.Counter

	// Fleet tracer bound by Trace; new hosts inherit it.
	tracer *trace.Tracer
}

// NewFabric returns a fabric that packs vmsPerHost VMs onto each host.
func NewFabric(vmsPerHost int, idleTimeout time.Duration) *Fabric {
	if vmsPerHost <= 0 {
		vmsPerHost = 16
	}
	return &Fabric{byVM: make(map[netip.Addr]*VNIC), perVM: vmsPerHost, idleTO: idleTimeout}
}

// AddVM places a monitored VM on the fabric, creating hosts as needed.
func (f *Fabric) AddVM(addr netip.Addr) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if _, ok := f.byVM[addr]; ok {
		return
	}
	var h *Host
	if n := len(f.hosts); n > 0 && len(f.hosts[n-1].vnics) < f.perVM {
		h = f.hosts[n-1]
	} else {
		h = NewHost(f.idleTO)
		h.bind(f.telDrained, f.telAged)
		h.mu.Lock()
		h.tracer = f.tracer
		h.mu.Unlock()
		f.hosts = append(f.hosts, h)
	}
	f.byVM[addr] = h.PlaceVM(addr)
}

// Monitored reports whether addr is a monitored VM on this fabric.
func (f *Fabric) Monitored(addr netip.Addr) bool {
	f.mu.Lock()
	defer f.mu.Unlock()
	_, ok := f.byVM[addr]
	return ok
}

// Hosts returns the fabric's hosts.
func (f *Fabric) Hosts() []*Host {
	f.mu.Lock()
	defer f.mu.Unlock()
	return append([]*Host(nil), f.hosts...)
}

// ObserveFlow records one interval's traffic on the flow src:srcPort ->
// dst:dstPort. Counters are from the sender's perspective: fwd* flowed
// src->dst and rev* flowed dst->src. The flow is logged at the source's VNIC
// if src is monitored and, independently, at the destination's VNIC if dst
// is monitored — producing the double-reporting that ingest deduplicates.
func (f *Fabric) ObserveFlow(src netip.AddrPort, dst netip.AddrPort, fwdPkts, revPkts, fwdBytes, revBytes uint64, now time.Time) {
	f.mu.Lock()
	sv := f.byVM[src.Addr()]
	dv := f.byVM[dst.Addr()]
	f.mu.Unlock()
	if sv != nil {
		sv.Observe(src.Port(), dst, fwdPkts, revPkts, fwdBytes, revBytes, now)
	}
	if dv != nil {
		dv.Observe(dst.Port(), src, revPkts, fwdPkts, revBytes, fwdBytes, now)
	}
}

// PullAll runs every host agent for the interval starting at intervalStart,
// forwarding to c, and returns the total records forwarded.
func (f *Fabric) PullAll(intervalStart time.Time, c Collector) (int, error) {
	total := 0
	for _, h := range f.Hosts() {
		n, err := h.Pull(intervalStart, c)
		if err != nil {
			return total, err
		}
		total += n
	}
	return total, nil
}

// MemoryFootprint sums modelled telemetry memory across the fleet.
func (f *Fabric) MemoryFootprint() int {
	total := 0
	for _, h := range f.Hosts() {
		total += h.MemoryFootprint()
	}
	return total
}
