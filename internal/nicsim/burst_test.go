package nicsim

import (
	"net/netip"
	"testing"
	"time"
)

func TestBurstTrackerSmoothVsBursty(t *testing.T) {
	tr := NewBurstTracker(time.Minute, time.Second)
	remote := netip.AddrPortFrom(ext, 443)
	// Smooth flow: 100 bytes every second for 60s.
	for s := 0; s < 60; s++ {
		tr.Observe(1000, remote, 100, t0.Add(time.Duration(s)*time.Second))
	}
	// Bursty flow: 6000 bytes all in one second.
	tr.Observe(2000, remote, 6000, t0.Add(30*time.Second))

	stats := tr.Drain()
	if len(stats) != 2 {
		t.Fatalf("stats = %d, want 2", len(stats))
	}
	var smooth, bursty *BurstStat
	for i := range stats {
		switch stats[i].LocalPort {
		case 1000:
			smooth = &stats[i]
		case 2000:
			bursty = &stats[i]
		}
	}
	if smooth == nil || bursty == nil {
		t.Fatal("missing flows")
	}
	if smooth.TotalBytes != 6000 || bursty.TotalBytes != 6000 {
		t.Errorf("totals = %d, %d, want 6000 each", smooth.TotalBytes, bursty.TotalBytes)
	}
	// Same totals, radically different burstiness.
	if smooth.Burstiness > 1.5 {
		t.Errorf("smooth burstiness = %v, want ~1", smooth.Burstiness)
	}
	if bursty.Burstiness < 50 {
		t.Errorf("bursty burstiness = %v, want ~60", bursty.Burstiness)
	}
	if bursty.PeakBytes != 6000 || smooth.PeakBytes != 100 {
		t.Errorf("peaks = %d, %d", bursty.PeakBytes, smooth.PeakBytes)
	}
}

func TestBurstTrackerDrainResets(t *testing.T) {
	tr := NewBurstTracker(time.Minute, time.Second)
	tr.Observe(1, netip.AddrPortFrom(ext, 80), 500, t0)
	if got := tr.Drain(); len(got) != 1 {
		t.Fatalf("first drain = %d", len(got))
	}
	if got := tr.Drain(); len(got) != 0 {
		t.Errorf("second drain = %d, want 0", len(got))
	}
	if tr.MemoryFootprint() != 0 {
		t.Errorf("memory after drain = %d", tr.MemoryFootprint())
	}
}

func TestBurstTrackerMemoryProportional(t *testing.T) {
	tr := NewBurstTracker(time.Minute, 0) // default bucket
	for i := 0; i < 50; i++ {
		tr.Observe(uint16(1000+i), netip.AddrPortFrom(ext, 443), 10, t0)
	}
	if got, want := tr.MemoryFootprint(), 50*burstEntrySize; got != want {
		t.Errorf("memory = %d, want %d", got, want)
	}
}

func TestBurstTrackerDefaults(t *testing.T) {
	tr := NewBurstTracker(0, 0)
	if tr.interval != time.Minute || tr.bucket != time.Second {
		t.Errorf("defaults = %v / %v", tr.interval, tr.bucket)
	}
}
