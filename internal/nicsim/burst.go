package nicsim

import (
	"net/netip"
	"sort"
	"time"
)

// Burst sketches: §3.1's open issue notes that connection summaries carry
// no sub-interval information, and "pushing sketches into programmable NICs
// may be needed to capture information that is absent in a connection
// summary such as burst statistics". BurstTracker is such a sketch: per
// flow, it slices the aggregation interval into small buckets and keeps
// only the running bucket and the peak — two counters and a timestamp of
// extra NIC state per flow, exported on a separate path from the Table 2
// summaries (which stay unchanged).

// BurstStat is one flow's burst summary for an interval.
type BurstStat struct {
	LocalPort uint16
	Remote    netip.AddrPort
	// PeakBytes is the largest byte count observed in any bucket.
	PeakBytes uint64
	// TotalBytes is the interval's total (matching the flow summary).
	TotalBytes uint64
	// Bucket is the sketch's bucket width.
	Bucket time.Duration
	// Burstiness is PeakBytes / (TotalBytes · bucket/interval): 1 for a
	// perfectly smooth flow, approaching interval/bucket for a flow that
	// sends everything in one bucket.
	Burstiness float64
}

// burstState is the per-flow sketch state.
type burstState struct {
	curBucket int64
	curBytes  uint64
	peakBytes uint64
	total     uint64
}

// BurstTracker augments a VNIC with per-flow burst sketches.
type BurstTracker struct {
	bucket   time.Duration
	interval time.Duration
	flows    map[flowKey]*burstState
}

// burstEntrySize models the extra NIC memory per flow for the sketch.
const burstEntrySize = 8 * 4

// NewBurstTracker returns a tracker slicing interval into buckets of the
// given width (default interval/60, i.e. per-second buckets for one-minute
// summaries).
func NewBurstTracker(interval, bucket time.Duration) *BurstTracker {
	if interval <= 0 {
		interval = time.Minute
	}
	if bucket <= 0 || bucket > interval {
		bucket = interval / 60
	}
	return &BurstTracker{bucket: bucket, interval: interval, flows: make(map[flowKey]*burstState)}
}

// Observe records bytes sent on a flow at time now.
func (t *BurstTracker) Observe(localPort uint16, remote netip.AddrPort, bytes uint64, now time.Time) {
	k := flowKey{localPort: localPort, remote: remote}
	st := t.flows[k]
	if st == nil {
		st = &burstState{curBucket: -1}
		t.flows[k] = st
	}
	b := now.UnixNano() / int64(t.bucket)
	if b != st.curBucket {
		if st.curBytes > st.peakBytes {
			st.peakBytes = st.curBytes
		}
		st.curBucket = b
		st.curBytes = 0
	}
	st.curBytes += bytes
	st.total += bytes
}

// Drain emits the interval's burst stats (sorted for determinism) and
// resets the sketch.
func (t *BurstTracker) Drain() []BurstStat {
	out := make([]BurstStat, 0, len(t.flows))
	buckets := float64(t.interval) / float64(t.bucket)
	for k, st := range t.flows {
		if st.curBytes > st.peakBytes {
			st.peakBytes = st.curBytes
		}
		if st.total == 0 {
			continue
		}
		smooth := float64(st.total) / buckets
		out = append(out, BurstStat{
			LocalPort:  k.localPort,
			Remote:     k.remote,
			PeakBytes:  st.peakBytes,
			TotalBytes: st.total,
			Bucket:     t.bucket,
			Burstiness: float64(st.peakBytes) / smooth,
		})
	}
	clear(t.flows)
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if c := a.Remote.Addr().Compare(b.Remote.Addr()); c != 0 {
			return c < 0
		}
		if a.Remote.Port() != b.Remote.Port() {
			return a.Remote.Port() < b.Remote.Port()
		}
		return a.LocalPort < b.LocalPort
	})
	return out
}

// MemoryFootprint models the sketch's extra NIC memory.
func (t *BurstTracker) MemoryFootprint() int { return len(t.flows) * burstEntrySize }
