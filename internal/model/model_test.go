package model

import (
	"math"
	"testing"
	"time"

	"cloudgraph/internal/cluster"
	"cloudgraph/internal/graph"
)

var t0 = time.Unix(1700000000, 0).UTC().Truncate(time.Hour)

// hourGraph builds one hour of a preset at the given scale and seed.
func hourGraph(t testing.TB, preset string, scale float64, seed int64) *graph.Graph {
	t.Helper()
	spec, err := cluster.Preset(preset, scale)
	if err != nil {
		t.Fatal(err)
	}
	spec.Seed = seed
	c, err := cluster.New(spec)
	if err != nil {
		t.Fatal(err)
	}
	recs, err := c.CollectHour(t0)
	if err != nil {
		t.Fatal(err)
	}
	return graph.Build(recs, graph.BuilderOptions{Facet: graph.FacetIP})
}

func TestFingerprintShapeAndBounds(t *testing.T) {
	g := hourGraph(t, "microservicebench", 0.05, 1)
	fp := Fingerprint(g)
	if len(fp) != FingerprintLen {
		t.Fatalf("len = %d, want %d", len(fp), FingerprintLen)
	}
	for i, v := range fp {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			t.Errorf("feature %s = %v", FeatureNames[i], v)
		}
	}
	// Share-type features live in [0, 1].
	for _, i := range []int{1, 2, 3, 4, 6, 7, 9, 11, 12, 13, 16, 17} {
		if fp[i] < 0 || fp[i] > 1 {
			t.Errorf("feature %s = %v outside [0,1]", FeatureNames[i], fp[i])
		}
	}
}

func TestFingerprintEmptyGraph(t *testing.T) {
	fp := Fingerprint(graph.New(graph.FacetIP))
	for i, v := range fp {
		if v != 0 {
			t.Errorf("empty graph feature %s = %v", FeatureNames[i], v)
		}
	}
}

func TestClassifierRecognizesWorkloadFamilies(t *testing.T) {
	if testing.Short() {
		t.Skip("trains on many generated graphs")
	}
	// Pre-train on three workload families at varying scales/seeds and
	// classify held-out graphs with different seeds AND scales — the
	// "apply off-the-shelf on their communication graph" scenario.
	presets := []string{"portal", "microservicebench", "k8spaas"}
	var samples []Sample
	for _, p := range presets {
		for _, cfg := range []struct {
			scale float64
			seed  int64
		}{{0.05, 11}, {0.05, 12}, {0.08, 13}, {0.10, 14}} {
			samples = append(samples, Sample{Label: p, FP: Fingerprint(hourGraph(t, p, cfg.scale, cfg.seed))})
		}
	}
	clf, err := Train(samples)
	if err != nil {
		t.Fatal(err)
	}
	if len(clf.Labels()) != 3 {
		t.Fatalf("labels = %v", clf.Labels())
	}
	correct := 0
	tests := 0
	for _, p := range presets {
		for _, cfg := range []struct {
			scale float64
			seed  int64
		}{{0.07, 99}, {0.12, 100}} {
			got, conf := clf.Classify(Fingerprint(hourGraph(t, p, cfg.scale, cfg.seed)))
			tests++
			if got == p {
				correct++
			} else {
				t.Logf("misclassified %s (scale %.2f seed %d) as %s (conf %.2f)", p, cfg.scale, cfg.seed, got, conf)
			}
		}
	}
	if correct < tests-1 {
		t.Errorf("accuracy %d/%d, want near-perfect on held-out graphs", correct, tests)
	}
}

func TestClassifierDistanceDrift(t *testing.T) {
	var samples []Sample
	for seed := int64(1); seed <= 4; seed++ {
		samples = append(samples, Sample{Label: "usvc", FP: Fingerprint(hourGraph(t, "microservicebench", 0.05, seed))})
	}
	clf, err := Train(samples)
	if err != nil {
		t.Fatal(err)
	}
	same, ok := clf.Distance(Fingerprint(hourGraph(t, "microservicebench", 0.05, 50)), "usvc")
	if !ok {
		t.Fatal("missing centroid")
	}
	other, _ := clf.Distance(Fingerprint(hourGraph(t, "portal", 0.05, 50)), "usvc")
	if other <= same {
		t.Errorf("portal graph should be farther from the usvc centroid: %v <= %v", other, same)
	}
	if _, ok := clf.Distance(nil, "nosuch"); ok {
		t.Error("unknown label should report !ok")
	}
}

func TestTrainErrors(t *testing.T) {
	if _, err := Train(nil); err == nil {
		t.Error("want error for empty training set")
	}
	if _, err := Train([]Sample{{Label: "a", FP: []float64{1}}, {Label: "b", FP: []float64{1, 2}}}); err == nil {
		t.Error("want error for inconsistent lengths")
	}
}

func TestAttributionSumsToOne(t *testing.T) {
	g := hourGraph(t, "k8spaas", 0.1, 7)
	a := Attribute(g)
	sum := a.CliqueShare + a.HubShare + a.CollapsedShare + a.ScatterShare
	if math.Abs(sum-1) > 1e-9 {
		t.Errorf("attribution shares sum to %v", sum)
	}
	if a.Headline == "" {
		t.Error("no headline")
	}
}

func TestAttributionEmptyGraph(t *testing.T) {
	a := Attribute(graph.New(graph.FacetIP))
	if a.Headline != "no traffic" {
		t.Errorf("headline = %q", a.Headline)
	}
}

func TestAttributionCollapsedBucket(t *testing.T) {
	g := hourGraph(t, "k8spaas", 0.1, 7).Collapse(graph.CollapseOptions{Threshold: 0.001})
	a := Attribute(g)
	if a.CollapsedShare <= 0 {
		t.Error("collapsed graph should attribute some bytes to the long tail")
	}
}
