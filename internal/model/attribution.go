package model

import (
	"fmt"
	"sort"

	"cloudgraph/internal/graph"
	"cloudgraph/internal/summarize"
)

// Attribution decomposes a graph's bytes into the canonical patterns of
// §2.2 — the machinery behind executive summaries like "80% of the bytes in
// your network are doing X". Every byte is attributed to exactly one
// bucket, so shares sum to 1.
type Attribution struct {
	// CliqueShare is traffic internal to a detected chatty clique.
	CliqueShare float64
	// HubShare is traffic on edges touching a detected hub (and not
	// already attributed to a clique).
	HubShare float64
	// CollapsedShare is traffic to/from the heavy-hitter collapse bucket
	// (the long tail of small remote endpoints).
	CollapsedShare float64
	// ScatterShare is everything else.
	ScatterShare float64
	// Headline is the rendered executive summary.
	Headline string
}

// Attribute computes the byte decomposition.
func Attribute(g *graph.Graph) Attribution {
	var a Attribution
	total := float64(g.TotalTraffic().Bytes)
	if total == 0 {
		a.Headline = "no traffic"
		return a
	}
	cliqueMember := make(map[graph.Node]int)
	for i, c := range summarize.ChattyCliques(g, 3, 0.5, 0.01) {
		for _, m := range c.Members {
			cliqueMember[m] = i + 1
		}
	}
	hub := make(map[graph.Node]bool)
	for _, h := range summarize.Hubs(g, 0.5) {
		hub[h.Node] = true
	}
	for _, e := range g.UndirectedEdges() {
		bytes := float64(e.Bytes)
		switch {
		case e.A.IsCollapsed() || e.B.IsCollapsed():
			a.CollapsedShare += bytes
		case cliqueMember[e.A] != 0 && cliqueMember[e.A] == cliqueMember[e.B]:
			a.CliqueShare += bytes
		case hub[e.A] || hub[e.B]:
			a.HubShare += bytes
		default:
			a.ScatterShare += bytes
		}
	}
	a.CliqueShare /= total
	a.HubShare /= total
	a.CollapsedShare /= total
	a.ScatterShare /= total

	type part struct {
		name  string
		share float64
	}
	parts := []part{
		{"chatty-clique traffic", a.CliqueShare},
		{"hub-and-spoke traffic", a.HubShare},
		{"long-tail remote traffic", a.CollapsedShare},
		{"scattered point-to-point traffic", a.ScatterShare},
	}
	sort.SliceStable(parts, func(i, j int) bool { return parts[i].share > parts[j].share })
	a.Headline = fmt.Sprintf("%.0f%% of the bytes in your network are %s (then %.0f%% %s)",
		100*parts[0].share, parts[0].name, 100*parts[1].share, parts[1].name)
	return a
}
