// Package model is the repo's take on the paper's §2.2 open issue: "whether
// it may be possible to learn a generalizable model to classify cloud
// communication patterns ... a model pre-trained over many communication
// graphs which a customer can apply off-the-shelf on their communication
// graph to identify the canonical patterns in their network."
//
// The paper notes the key obstacles — graphs of very different sizes and
// degrees, and the need to "quantize carefully because a generalizable
// model takes fixed sized inputs". Fingerprint addresses exactly that: it
// quantizes any communication graph into a fixed-length, size-normalized
// feature vector (degree/strength quantiles, concentration, hub and clique
// shares, spectral mass). Classifier is a deliberately simple pre-trainable
// model over those fingerprints (z-scored nearest centroid): small enough
// to be trained on synthetic workloads in a unit test, useful enough to
// recognize which canonical workload family an unseen subscription's graph
// belongs to, and to notice when an hour no longer looks like its past.
package model

import (
	"fmt"
	"math"
	"sort"

	"cloudgraph/internal/graph"
	"cloudgraph/internal/matrix"
	"cloudgraph/internal/summarize"
)

// FingerprintLen is the fixed input size of the model.
const FingerprintLen = 18

// FeatureNames documents each fingerprint dimension, index-aligned.
var FeatureNames = [FingerprintLen]string{
	"log10_nodes",
	"density",
	"degree_p50_norm",
	"degree_p90_norm",
	"degree_max_norm",
	"strength_gini",
	"bytes_top1pct_share",
	"bytes_top10pct_share",
	"hub_count_norm",
	"hub_byte_share",
	"clique_count_norm",
	"clique_byte_share",
	"spectral_top1_share",
	"spectral_top5_share",
	"conns_per_node_log",
	"bytes_per_conn_log",
	"reciprocity",
	"external_share",
}

// Fingerprint quantizes a graph into the fixed-size vector. Spectral
// features use power iteration, so graphs of any size are affordable.
func Fingerprint(g *graph.Graph) []float64 {
	fp := make([]float64, FingerprintLen)
	n := g.NumNodes()
	if n == 0 {
		return fp
	}
	stats := g.ComputeStats()
	nodes := g.Nodes()

	degrees := make([]float64, 0, n)
	strengths := make([]float64, 0, n)
	for _, node := range nodes {
		degrees = append(degrees, float64(g.Degree(node)))
		strengths = append(strengths, float64(g.NodeStrength(node, graph.Bytes)))
	}
	sort.Float64s(degrees)
	sort.Float64s(strengths)

	fp[0] = math.Log10(float64(n))
	fp[1] = stats.Density
	fn := float64(n)
	fp[2] = quantile(degrees, 0.5) / fn
	fp[3] = quantile(degrees, 0.9) / fn
	fp[4] = degrees[len(degrees)-1] / fn
	fp[5] = gini(strengths)

	ccdf := summarize.CCDF(g, graph.Bytes)
	fp[6] = 1 - ccdfAt(ccdf, 0.01)
	fp[7] = 1 - ccdfAt(ccdf, 0.10)

	hubs := summarize.Hubs(g, 0.5)
	fp[8] = math.Min(1, float64(len(hubs))*10/fn)
	for _, h := range hubs {
		fp[9] += h.ByteShare
	}
	fp[9] = math.Min(1, fp[9])

	cliques := summarize.ChattyCliques(g, 3, 0.5, 0.01)
	fp[10] = math.Min(1, float64(len(cliques))*10/fn)
	for _, c := range cliques {
		fp[11] += c.ByteShare
	}
	fp[11] = math.Min(1, fp[11])

	// Spectral mass concentration of the (size-normalized) byte matrix.
	adj := g.AdjacencyMatrix(graph.Bytes)
	sym := adj.Symmetrized()
	var total float64
	for i := 0; i < adj.N; i++ {
		for j := 0; j < adj.N; j++ {
			total += math.Abs(sym[i*adj.N+j])
		}
	}
	if total > 0 {
		vals, _ := matrix.TopEigenSym(sym, adj.N, 5, 60, 1)
		var absSum float64
		for _, v := range vals {
			absSum += math.Abs(v)
		}
		if len(vals) > 0 {
			fp[12] = math.Min(1, math.Abs(vals[0])/total)
		}
		fp[13] = math.Min(1, absSum/total)
	}

	t := g.TotalTraffic()
	fp[14] = math.Log10(1 + float64(t.Conns)/fn)
	if t.Conns > 0 {
		fp[15] = math.Log10(1 + float64(t.Bytes)/float64(t.Conns))
	}
	fp[16] = reciprocity(g)
	fp[17] = externalShare(g)
	return fp
}

// quantile reads the p-quantile of a sorted slice by nearest rank.
func quantile(sorted []float64, p float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	i := int(math.Ceil(p*float64(len(sorted)))) - 1
	if i < 0 {
		i = 0
	}
	if i >= len(sorted) {
		i = len(sorted) - 1
	}
	return sorted[i]
}

// gini computes the Gini coefficient of a sorted non-negative slice — the
// concentration of traffic across nodes.
func gini(sorted []float64) float64 {
	n := len(sorted)
	if n == 0 {
		return 0
	}
	var sum, weighted float64
	for i, v := range sorted {
		sum += v
		weighted += float64(i+1) * v
	}
	if sum == 0 {
		return 0
	}
	return (2*weighted/(float64(n)*sum) - float64(n+1)/float64(n))
}

// reciprocity is the fraction of communicating pairs with traffic in both
// directions.
func reciprocity(g *graph.Graph) float64 {
	edges := g.UndirectedEdges()
	if len(edges) == 0 {
		return 0
	}
	both := 0
	for _, e := range edges {
		a := g.OutEdge(e.A, e.B)
		b := g.OutEdge(e.B, e.A)
		if a != nil && b != nil && a.Bytes > 0 && b.Bytes > 0 {
			both++
		}
	}
	return float64(both) / float64(len(edges))
}

// externalShare is the byte share of pairs involving a non-RFC1918 (or
// collapsed) endpoint — the internet-facing fraction of the traffic.
func externalShare(g *graph.Graph) float64 {
	isExternal := func(n graph.Node) bool {
		if n.IsCollapsed() {
			return true
		}
		return n.Addr.IsValid() && !n.Addr.IsPrivate()
	}
	t := g.TotalTraffic()
	if t.Bytes == 0 {
		return 0
	}
	var ext uint64
	for _, e := range g.UndirectedEdges() {
		if isExternal(e.A) || isExternal(e.B) {
			ext += e.Bytes
		}
	}
	return float64(ext) / float64(t.Bytes)
}

// ccdfAt interpolates a CCDF curve at a node fraction.
func ccdfAt(points []summarize.CCDFPoint, frac float64) float64 {
	for _, p := range points {
		if p.Fraction >= frac {
			return p.CCDF
		}
	}
	if len(points) == 0 {
		return 1
	}
	return points[len(points)-1].CCDF
}

// Sample is one labelled training graph fingerprint.
type Sample struct {
	Label string
	FP    []float64
}

// Classifier is a z-score-normalized nearest-centroid model over
// fingerprints.
type Classifier struct {
	mean, std []float64
	centroids map[string][]float64
	labels    []string
}

// Train fits a classifier. It fails on empty input or inconsistent
// fingerprint lengths.
func Train(samples []Sample) (*Classifier, error) {
	if len(samples) == 0 {
		return nil, fmt.Errorf("model: no training samples")
	}
	d := len(samples[0].FP)
	for _, s := range samples {
		if len(s.FP) != d {
			return nil, fmt.Errorf("model: inconsistent fingerprint length %d != %d", len(s.FP), d)
		}
	}
	c := &Classifier{
		mean:      make([]float64, d),
		std:       make([]float64, d),
		centroids: make(map[string][]float64),
	}
	for _, s := range samples {
		for i, v := range s.FP {
			c.mean[i] += v
		}
	}
	for i := range c.mean {
		c.mean[i] /= float64(len(samples))
	}
	for _, s := range samples {
		for i, v := range s.FP {
			dlt := v - c.mean[i]
			c.std[i] += dlt * dlt
		}
	}
	for i := range c.std {
		c.std[i] = math.Sqrt(c.std[i] / float64(len(samples)))
		if c.std[i] < 1e-9 {
			c.std[i] = 1 // constant feature: neutral scale
		}
	}
	counts := make(map[string]int)
	for _, s := range samples {
		z := c.zscore(s.FP)
		cen := c.centroids[s.Label]
		if cen == nil {
			cen = make([]float64, d)
			c.centroids[s.Label] = cen
			c.labels = append(c.labels, s.Label)
		}
		for i, v := range z {
			cen[i] += v
		}
		counts[s.Label]++
	}
	for label, cen := range c.centroids {
		for i := range cen {
			cen[i] /= float64(counts[label])
		}
	}
	sort.Strings(c.labels)
	return c, nil
}

func (c *Classifier) zscore(fp []float64) []float64 {
	z := make([]float64, len(fp))
	for i, v := range fp {
		z[i] = (v - c.mean[i]) / c.std[i]
	}
	return z
}

// Classify returns the nearest centroid's label and a confidence in (0, 1]:
// the margin between the best and second-best distances.
func (c *Classifier) Classify(fp []float64) (label string, confidence float64) {
	z := c.zscore(fp)
	best, second := math.Inf(1), math.Inf(1)
	for _, l := range c.labels {
		d := dist(z, c.centroids[l])
		if d < best {
			second = best
			best, label = d, l
		} else if d < second {
			second = d
		}
	}
	if math.IsInf(second, 1) {
		return label, 1
	}
	if second == 0 {
		return label, 0
	}
	confidence = 1 - best/second
	if confidence < 0 {
		confidence = 0
	}
	return label, confidence
}

// Distance returns the z-scored distance from fp to a label's centroid —
// usable as a drift score ("this hour no longer looks like k8s traffic").
func (c *Classifier) Distance(fp []float64, label string) (float64, bool) {
	cen, ok := c.centroids[label]
	if !ok {
		return 0, false
	}
	return dist(c.zscore(fp), cen), true
}

// Labels lists the trained labels.
func (c *Classifier) Labels() []string { return append([]string(nil), c.labels...) }

func dist(a, b []float64) float64 {
	var s float64
	for i := range a {
		d := a[i] - b[i]
		s += d * d
	}
	return math.Sqrt(s)
}
