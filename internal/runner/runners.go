package runner

import (
	"math"
	"sort"

	"cloudgraph/internal/counterfactual"
	"cloudgraph/internal/graph"
	"cloudgraph/internal/policy"
	"cloudgraph/internal/segment"
	"cloudgraph/internal/summarize"
)

// DefaultRunners returns the paper's §2 analyses with default tuning —
// what cloudgraphd puts online when -live is set.
func DefaultRunners() []Runner {
	return []Runner{
		NewSegment(segment.StrategyJaccardLouvain, segment.Options{}),
		NewSummarize(summarize.AnomalyOptions{}),
		NewCounterfactual(0, 0.8, 10),
		NewPolicyChurn(segment.StrategyJaccardLouvain, segment.Options{}),
	}
}

// ---- segment ----

// SegmentResult is the auto micro-segmentation of one window.
//
//wire:schema
type SegmentResult struct {
	Epoch       uint64     `json:"epoch"`
	NumSegments int        `json:"num_segments"`
	Segments    [][]string `json:"segments"`
	Error       string     `json:"error,omitempty"`
}

// SegmentRunner re-segments each window with the configured strategy.
type SegmentRunner struct {
	strategy segment.Strategy
	opts     segment.Options
	last     SegmentResult
}

// NewSegment returns the "segment" runner.
func NewSegment(s segment.Strategy, opts segment.Options) *SegmentRunner {
	return &SegmentRunner{strategy: s, opts: opts}
}

func (r *SegmentRunner) Name() string { return "segment" }

func (r *SegmentRunner) OnSnapshot(epoch uint64, g *graph.Graph) {
	r.last = SegmentResult{Epoch: epoch}
	assign, err := segment.Run(r.strategy, g, r.opts)
	if err != nil {
		r.last.Error = err.Error()
		return
	}
	r.last.NumSegments = assign.NumSegments()
	r.last.Segments = segmentNames(assign)
}

func (r *SegmentRunner) Result() any { return r.last }

// segmentNames renders an assignment as sorted member-name lists, the
// stable wire form (graph.Node maps cannot marshal as JSON keys).
func segmentNames(assign segment.Assignment) [][]string {
	segs := assign.Segments()
	out := make([][]string, 0, len(segs))
	for _, seg := range segs {
		if len(seg) == 0 {
			continue
		}
		names := make([]string, len(seg))
		for i, n := range seg {
			names[i] = n.String()
		}
		out = append(out, names)
	}
	sort.Slice(out, func(i, j int) bool { return out[i][0] < out[j][0] })
	return out
}

// ---- summarize ----

// SummarizeResult is the succinct summary plus anomaly score of one
// window.
//
//wire:schema
type SummarizeResult struct {
	Epoch    uint64 `json:"epoch"`
	Headline string `json:"headline"`
	Nodes    int    `json:"nodes"`
	Edges    int    `json:"edges"`
	Hubs     int    `json:"hubs"`
	Cliques  int    `json:"cliques"`
	// FractionFor90 is the CCDF headline: the smallest fraction of nodes
	// carrying 90% of the bytes.
	FractionFor90 float64 `json:"fraction_for_90"`
	// Score is the hour-over-hour drift assessment, computed
	// incrementally with exactly the batch semantics of
	// summarize.ScoreWindows.
	Score summarize.WindowScore `json:"score"`
}

// SummarizeRunner computes per-window summaries and maintains the
// incremental anomaly baseline: drift vs the previous window, flagged
// when it exceeds mean + Sigma·stddev of the non-anomalous history —
// bit-for-bit the summarize.ScoreWindows recurrence, so the online score
// of window i equals the batch score over windows [0..i].
type SummarizeRunner struct {
	opts    summarize.AnomalyOptions
	prev    *graph.Graph
	history []float64
	index   int
	last    SummarizeResult
}

// NewSummarize returns the "summarize" runner.
func NewSummarize(opts summarize.AnomalyOptions) *SummarizeRunner {
	if opts.Sigma <= 0 {
		opts.Sigma = 3
	}
	if opts.MinHistory <= 0 {
		opts.MinHistory = 3
	}
	return &SummarizeRunner{opts: opts}
}

func (r *SummarizeRunner) Name() string { return "summarize" }

func (r *SummarizeRunner) OnSnapshot(epoch uint64, g *graph.Graph) {
	s := summarize.Summarize(g)
	res := SummarizeResult{
		Epoch:         epoch,
		Headline:      s.Headline,
		Nodes:         s.Stats.Nodes,
		Edges:         s.Stats.Edges,
		Hubs:          len(s.Hubs),
		Cliques:       len(s.Cliques),
		FractionFor90: summarize.FractionForShare(s.CCDF, 0.9),
	}
	score := summarize.WindowScore{Index: r.index}
	if r.prev != nil {
		d := graph.Diff(r.prev, g)
		score.Drift = d.ByteChange
		score.NewPairs = len(d.AddedPairs)
		score.LostPairs = len(d.RemovedPairs)
		if len(r.history) >= r.opts.MinHistory {
			mean, sd := meanStd(r.history)
			if score.Drift > mean+r.opts.Sigma*sd {
				score.Anomalous = true
			}
		}
		if !score.Anomalous {
			// Matching ScoreWindows: only normal windows feed the
			// baseline, so a sustained attack doesn't poison its own
			// detector.
			r.history = append(r.history, score.Drift)
		}
	}
	res.Score = score
	r.prev = g
	r.index++
	r.last = res
}

func (r *SummarizeRunner) Result() any { return r.last }

// meanStd mirrors summarize's baseline statistics, including the 1e-3
// stddev floor that keeps perfectly steady baselines from zero-slack
// flagging.
func meanStd(xs []float64) (mean, sd float64) {
	for _, x := range xs {
		mean += x
	}
	mean /= float64(len(xs))
	for _, x := range xs {
		sd += (x - mean) * (x - mean)
	}
	sd = math.Sqrt(sd / float64(len(xs)))
	if sd < 1e-3 {
		sd = 1e-3
	}
	return mean, sd
}

// ---- counterfactual ----

// CounterfactualResult is the capacity plan for one window.
//
//wire:schema
type CounterfactualResult struct {
	Epoch uint64 `json:"epoch"`
	// Upgrades lists nodes above the utilization threshold, worst first.
	Upgrades []NodeLoadJSON `json:"upgrades"`
	// Proximity lists the heaviest-exchanging pairs — co-location
	// candidates — best first.
	Proximity []PairJSON `json:"proximity"`
}

// NodeLoadJSON is counterfactual.NodeLoad in wire form.
//
//wire:schema
type NodeLoadJSON struct {
	Node        string  `json:"node"`
	BytesPerMin float64 `json:"bytes_per_min"`
	Utilization float64 `json:"utilization"`
}

// PairJSON is a graph.UndirectedEdge in wire form.
//
//wire:schema
type PairJSON struct {
	A     string `json:"a"`
	B     string `json:"b"`
	Bytes uint64 `json:"bytes"`
}

// CounterfactualRunner plans capacity per window via
// counterfactual.PlanCapacity.
type CounterfactualRunner struct {
	capacityPerMin float64
	utilThreshold  float64
	topPairs       int
	last           CounterfactualResult
}

// NewCounterfactual returns the "counterfactual" runner. capacityPerMin 0
// ranks by raw load; utilThreshold gates upgrade recommendations;
// topPairs bounds the proximity list.
func NewCounterfactual(capacityPerMin, utilThreshold float64, topPairs int) *CounterfactualRunner {
	return &CounterfactualRunner{
		capacityPerMin: capacityPerMin,
		utilThreshold:  utilThreshold,
		topPairs:       topPairs,
	}
}

func (r *CounterfactualRunner) Name() string { return "counterfactual" }

func (r *CounterfactualRunner) OnSnapshot(epoch uint64, g *graph.Graph) {
	plan := counterfactual.PlanCapacity(g, r.capacityPerMin, r.utilThreshold, r.topPairs)
	res := CounterfactualResult{Epoch: epoch}
	for _, u := range plan.Upgrades {
		res.Upgrades = append(res.Upgrades, NodeLoadJSON{
			Node: u.Node.String(), BytesPerMin: u.BytesPerMin, Utilization: u.Utilization,
		})
	}
	for _, e := range plan.Proximity {
		res.Proximity = append(res.Proximity, PairJSON{
			A: e.A.String(), B: e.B.String(), Bytes: e.Bytes,
		})
	}
	r.last = res
}

func (r *CounterfactualRunner) Result() any { return r.last }

// ---- policy churn ----

// PolicyChurnResult quantifies segment churn of one window against the
// baseline learned from the first window.
//
//wire:schema
type PolicyChurnResult struct {
	Epoch uint64 `json:"epoch"`
	// Baseline is true on the first window, which establishes the
	// segmentation and reachability policy all later windows compare to.
	Baseline bool `json:"baseline"`
	// Segments is the segment count (of the baseline when Baseline, of
	// the re-segmented current window otherwise).
	Segments int `json:"segments"`
	// Moved counts nodes whose segment changed vs the baseline.
	Moved int `json:"moved"`
	// NewNodes counts nodes absent from the baseline assignment.
	NewNodes int `json:"new_nodes"`
	// IPRuleUpdates / TagUpdates sum the per-move update costs under
	// per-IP vs tag compilation (policy.ChurnOnMove) — the §2.1 churn
	// comparison, online.
	IPRuleUpdates int `json:"ip_rule_updates"`
	TagUpdates    int `json:"tag_updates"`
	// Error reports a segmentation failure.
	Error string `json:"error,omitempty"`
}

// PolicyChurnRunner learns a baseline policy from the first window and,
// for each later window, re-segments it, aligns the new segments to the
// baseline by maximum member overlap, and prices every node move under
// both rule compilations.
type PolicyChurnRunner struct {
	strategy segment.Strategy
	opts     segment.Options
	assign   segment.Assignment
	reach    *policy.Reachability
	last     PolicyChurnResult
}

// NewPolicyChurn returns the "policy" runner.
func NewPolicyChurn(s segment.Strategy, opts segment.Options) *PolicyChurnRunner {
	return &PolicyChurnRunner{strategy: s, opts: opts}
}

func (r *PolicyChurnRunner) Name() string { return "policy" }

func (r *PolicyChurnRunner) OnSnapshot(epoch uint64, g *graph.Graph) {
	res := PolicyChurnResult{Epoch: epoch}
	assign, err := segment.Run(r.strategy, g, r.opts)
	if err != nil {
		res.Error = err.Error()
		r.last = res
		return
	}
	if r.reach == nil {
		r.assign = assign
		r.reach = policy.Learn(g, assign)
		res.Baseline = true
		res.Segments = assign.NumSegments()
		r.last = res
		return
	}
	res.Segments = assign.NumSegments()
	mapped := alignSegments(assign, r.assign)
	// Deterministic iteration: price moves in node order.
	nodes := make([]graph.Node, 0, len(assign))
	for n := range assign {
		nodes = append(nodes, n)
	}
	sort.Slice(nodes, func(i, j int) bool { return nodes[i].Less(nodes[j]) })
	for _, n := range nodes {
		base, known := r.assign[n]
		if !known {
			res.NewNodes++
			continue
		}
		to, ok := mapped[assign[n]]
		if !ok || to == base {
			continue
		}
		res.Moved++
		rep := r.reach.ChurnOnMove(n, to)
		res.IPRuleUpdates += rep.IPRuleUpdates
		res.TagUpdates += rep.TagUpdates
	}
	r.last = res
}

func (r *PolicyChurnRunner) Result() any { return r.last }

// alignSegments maps each segment id of the new assignment to the
// baseline segment its members overlap most (ties to the smaller
// baseline id, for determinism). New segments with no baseline overlap
// are unmapped.
func alignSegments(now, base segment.Assignment) map[int]int {
	overlap := make(map[int]map[int]int) // new seg -> base seg -> count
	for n, s := range now {
		b, ok := base[n]
		if !ok {
			continue
		}
		if overlap[s] == nil {
			overlap[s] = make(map[int]int)
		}
		overlap[s][b]++
	}
	out := make(map[int]int, len(overlap))
	for s, counts := range overlap {
		best, bestN := -1, 0
		ids := make([]int, 0, len(counts))
		for b := range counts {
			ids = append(ids, b)
		}
		sort.Ints(ids)
		for _, b := range ids {
			if counts[b] > bestN {
				best, bestN = b, counts[b]
			}
		}
		out[s] = best
	}
	return out
}
