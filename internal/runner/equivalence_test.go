package runner

import (
	"encoding/json"
	"testing"
	"time"

	"cloudgraph/internal/cluster"
	"cloudgraph/internal/core"
	"cloudgraph/internal/flowlog"
	"cloudgraph/internal/segment"
	"cloudgraph/internal/summarize"
	"cloudgraph/internal/trace"
)

var t0 = time.Unix(1700000000, 0).UTC().Truncate(time.Hour)

// seededStream replays the determinism-test cluster: a seeded
// microservice bench with a port scan injected mid-hour.
func seededStream(t *testing.T) []flowlog.Record {
	t.Helper()
	c, err := cluster.New(cluster.MicroserviceBench(0.2))
	if err != nil {
		t.Fatal(err)
	}
	c.AddAttack(cluster.PortScan{
		AttackerRole: "frontend",
		TargetRole:   "redis",
		PortsPerMin:  40,
		Start:        t0.Add(10 * time.Minute),
		Duration:     10 * time.Minute,
	})
	recs, err := c.CollectHour(t0)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) == 0 {
		t.Fatal("cluster emitted no records")
	}
	return recs
}

// runOnline pushes the stream through a sharded engine with the plane's
// consumers on the fan-out bus — the cloudgraphd path.
func runOnline(t *testing.T, recs []flowlog.Record, window time.Duration, tr *trace.Tracer) *Plane {
	t.Helper()
	p := New(Config{Trace: tr})
	e := core.NewEngine(core.Config{
		Window:    window,
		Shards:    4,
		Consumers: p.Consumers(),
		Trace:     tr,
	})
	defer e.Close()
	const batch = 512
	for i := 0; i < len(recs); i += batch {
		end := min(i+batch, len(recs))
		if tr != nil {
			// Out-of-band contexts, like a traced collection fabric: the
			// analyses must not see any difference.
			tcs := make([]trace.Context, end-i)
			for j := range tcs {
				tcs[j] = tr.Sample()
			}
			e.IngestTraced(recs[i:end], tcs)
		} else {
			e.Ingest(recs[i:end])
		}
	}
	e.Flush()
	p.Seal()
	return p
}

// runBatch drives the same runners through Plane.Replay — the
// cmd/experiments path.
func runBatch(recs []flowlog.Record, window time.Duration, tr *trace.Tracer) *Plane {
	p := New(Config{Trace: tr})
	p.Replay(recs, ReplayOptions{Window: window})
	return p
}

// comparePlanes asserts both planes retain byte-identical results for
// every analysis at every epoch.
func comparePlanes(t *testing.T, label string, a, b *Plane, epochs uint64) {
	t.Helper()
	for _, name := range a.Runners() {
		_, newest := a.Epochs(name)
		if newest != epochs {
			t.Fatalf("%s: analysis %q reached epoch %d, want %d", label, name, newest, epochs)
		}
		for ep := uint64(1); ep <= epochs; ep++ {
			_, ra, err := a.Query(name, ep)
			if err != nil {
				t.Fatalf("%s: %s@%d (first plane): %v", label, name, ep, err)
			}
			_, rb, err := b.Query(name, ep)
			if err != nil {
				t.Fatalf("%s: %s@%d (second plane): %v", label, name, ep, err)
			}
			if string(ra) != string(rb) {
				t.Errorf("%s: %s@%d diverges:\n  a: %s\n  b: %s", label, name, ep, ra, rb)
			}
		}
	}
}

// TestOnlineBatchEquivalence pins the plane's central promise: the online
// runners — behind a 4-shard engine and the concurrent consumer bus —
// produce byte-identical per-epoch results to the batch Replay path over
// the same seeded stream, and turning tracing on changes nothing.
func TestOnlineBatchEquivalence(t *testing.T) {
	recs := seededStream(t)
	const window = 5 * time.Minute

	online := runOnline(t, recs, window, nil)
	batch := runBatch(recs, window, nil)
	_, epochs := online.Epochs("segment")
	if epochs < 10 {
		t.Fatalf("stream produced %d epochs; equivalence needs a real sequence", epochs)
	}
	comparePlanes(t, "online-vs-batch", online, batch, epochs)

	// The timeline views must agree too: same window count, same sealed
	// roll-ups.
	so, sb := online.Timeline().Latest(), batch.Timeline().Latest()
	if so.Epoch != sb.Epoch || len(so.Windows) != len(sb.Windows) || len(so.Rollups) != len(sb.Rollups) {
		t.Fatalf("timelines diverge: online epoch %d (%d win, %d roll), batch epoch %d (%d win, %d roll)",
			so.Epoch, len(so.Windows), len(so.Rollups), sb.Epoch, len(sb.Windows), len(sb.Rollups))
	}

	// Tracing on must not perturb any result byte. Sample 1-in-101 so the
	// recorder retains whole journeys instead of churning its trace cap.
	tr := trace.New(trace.Options{SampleEvery: 101, Seed: 7, MaxTraces: 1 << 16})
	traced := runOnline(t, recs, window, tr)
	comparePlanes(t, "traced-vs-untraced", traced, batch, epochs)

	// And the traced run must actually have recorded analysis spans — the
	// journey now extends past the store into the plane.
	found := false
	for _, id := range tr.Recorder().TraceIDs() {
		for _, sp := range tr.Recorder().Trace(id) {
			if sp.Stage == "analysis.segment" {
				found = true
			}
		}
	}
	if !found {
		t.Fatal("no analysis.segment span recorded with tracing on")
	}
}

// TestSummarizeRunnerMatchesBatchScorer proves the incremental anomaly
// recurrence equals summarize.ScoreWindows over the full prefix — the
// online score is not an approximation.
func TestSummarizeRunnerMatchesBatchScorer(t *testing.T) {
	recs := seededStream(t)
	p := New(Config{Runners: []Runner{NewSummarize(summarize.AnomalyOptions{})}})
	windows := p.Replay(recs, ReplayOptions{Window: time.Minute})
	if len(windows) < 20 {
		t.Fatalf("only %d windows", len(windows))
	}
	batch := summarize.ScoreWindows(windows, summarize.AnomalyOptions{})
	drifted := false
	for i := range windows {
		_, raw, err := p.Query("summarize", uint64(i+1))
		if err != nil {
			t.Fatal(err)
		}
		var res SummarizeResult
		if err := json.Unmarshal(raw, &res); err != nil {
			t.Fatal(err)
		}
		if res.Score != batch[i] {
			t.Fatalf("window %d: online score %+v != batch %+v", i, res.Score, batch[i])
		}
		if res.Score.Drift > 0 {
			drifted = true
		}
	}
	if !drifted {
		t.Fatal("no window recorded any drift; the scorer saw nothing")
	}
}

// TestPolicyChurnRunnerBaseline sanity-checks the policy runner's shape:
// first window is the baseline, later windows price moves.
func TestPolicyChurnRunnerBaseline(t *testing.T) {
	recs := seededStream(t)
	p := New(Config{Runners: []Runner{NewPolicyChurn(segment.StrategyJaccardLouvain, segment.Options{})}})
	p.Replay(recs, ReplayOptions{Window: 15 * time.Minute})
	_, raw, err := p.Query("policy", 1)
	if err != nil {
		t.Fatal(err)
	}
	var first PolicyChurnResult
	if err := json.Unmarshal(raw, &first); err != nil {
		t.Fatal(err)
	}
	if !first.Baseline || first.Segments < 2 {
		t.Fatalf("first window = %+v, want a baseline with >=2 segments", first)
	}
	_, raw, err = p.Query("policy", 0)
	if err != nil {
		t.Fatal(err)
	}
	var last PolicyChurnResult
	if err := json.Unmarshal(raw, &last); err != nil {
		t.Fatal(err)
	}
	if last.Baseline {
		t.Fatalf("latest window still flagged baseline: %+v", last)
	}
	if last.Moved > 0 && last.IPRuleUpdates <= last.TagUpdates {
		t.Fatalf("moves priced but per-IP cost (%d) not above tag cost (%d)",
			last.IPRuleUpdates, last.TagUpdates)
	}
}
