package runner

import (
	"encoding/json"
	"net/http"
	"strconv"

	"cloudgraph/internal/telemetry"
)

// analyzIndex is the /analyz overview: which analyses are online and what
// epoch range each retains.
type analyzIndex struct {
	Analyses []analyzEntry `json:"analyses"`
	// TimelineOldest/Newest are the timeline's addressable epoch range.
	TimelineOldest uint64 `json:"timeline_oldest"`
	TimelineNewest uint64 `json:"timeline_newest"`
	// HistoryOldest/Newest are the durable store's replayable window
	// epoch range; epochs in it but outside the in-memory retention are
	// served from disk. Both 0 when no history store is attached.
	HistoryOldest uint64 `json:"history_oldest"`
	HistoryNewest uint64 `json:"history_newest"`
}

type analyzEntry struct {
	Name   string `json:"name"`
	Oldest uint64 `json:"oldest"`
	Newest uint64 `json:"newest"`
}

// AnalyzHandler serves the plane over the ops endpoint: GET /analyz lists
// the online analyses and their retained epoch ranges; ?analysis=<name>
// returns that analysis's latest result; &epoch=<n> pins a specific
// epoch. GET/HEAD only, like every ops view.
func (p *Plane) AnalyzHandler() http.Handler {
	return telemetry.GetOnly(http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		name := req.URL.Query().Get("analysis")
		if name == "" {
			idx := analyzIndex{}
			idx.TimelineOldest, idx.TimelineNewest = p.tl.Epochs()
			if h := p.History(); h != nil {
				if lo, hi, ok := h.WindowEpochs(); ok {
					idx.HistoryOldest, idx.HistoryNewest = lo, hi
				}
			}
			for _, n := range p.Runners() {
				e := analyzEntry{Name: n}
				e.Oldest, e.Newest = p.Epochs(n)
				idx.Analyses = append(idx.Analyses, e)
			}
			if err := json.NewEncoder(w).Encode(idx); err != nil {
				return
			}
			return
		}
		var epoch uint64
		if v := req.URL.Query().Get("epoch"); v != "" {
			n, err := strconv.ParseUint(v, 10, 64)
			if err != nil || n == 0 {
				http.Error(w, "epoch must be a positive integer", http.StatusBadRequest)
				return
			}
			epoch = n
		}
		at, res, err := p.Query(name, epoch)
		if err != nil {
			http.Error(w, err.Error(), http.StatusNotFound)
			return
		}
		out := struct {
			Analysis string          `json:"analysis"`
			Epoch    uint64          `json:"epoch"`
			Result   json.RawMessage `json:"result"`
		}{Analysis: name, Epoch: at, Result: res}
		if err := json.NewEncoder(w).Encode(out); err != nil {
			return
		}
	}))
}
