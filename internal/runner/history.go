package runner

import (
	"encoding/json"
	"fmt"
	"time"

	"cloudgraph/internal/graph"
)

// HistorySource is the durable window history behind the plane —
// histstore.Store satisfies it. Epochs older than the in-memory result
// retention fall through to it: the plane replays the recorded windows
// through a fresh runner and re-derives the result, which is byte-equal
// to the online answer because both paths execute the identical runner
// over the identical window sequence (the same property the online/batch
// equivalence test pins).
type HistorySource interface {
	// WindowEpochs returns the epoch range replayable at window
	// resolution.
	WindowEpochs() (lo, hi uint64, ok bool)
	// EpochAt resolves a wall-clock instant to the epoch recorded for it.
	EpochAt(t time.Time) (uint64, bool)
	// ReplayUpTo streams window records with epoch <= limit, in epoch
	// order.
	ReplayUpTo(limit uint64, fn func(epoch uint64, g *graph.Graph) error) error
}

// SetHistory attaches the durable history store and a factory minting
// fresh runner instances for disk-backed queries (nil uses
// DefaultRunners). Call at wiring time, before queries arrive. Online
// runners cannot serve past epochs — they have advanced — so each disk
// query replays history through its own throwaway instance.
func (p *Plane) SetHistory(h HistorySource, factory func() []Runner) {
	if factory == nil {
		factory = DefaultRunners
	}
	p.mu.Lock()
	p.hist = h
	p.histRunners = factory
	p.mu.Unlock()
}

// History returns the attached history source (nil when the plane is
// memory-only).
func (p *Plane) History() HistorySource {
	p.mu.RLock()
	defer p.mu.RUnlock()
	return p.hist
}

// Restore replays one recovered window into the plane synchronously:
// timeline append plus every runner's step, exactly what the bus
// consumers would have done online. Call it from the startup recovery
// loop, before the engine starts publishing.
func (p *Plane) Restore(epoch uint64, g *graph.Graph) {
	p.tl.Append(epoch, g)
	for _, r := range p.runners {
		p.step(r, epoch, g)
	}
}

// ResolveTime maps a wall-clock instant to the epoch that covers it,
// preferring the in-memory timeline and falling back to the history
// index.
func (p *Plane) ResolveTime(t time.Time) (uint64, bool) {
	if ep, ok := p.tl.EpochAt(t); ok {
		return ep, true
	}
	p.mu.RLock()
	h := p.hist
	p.mu.RUnlock()
	if h == nil {
		return 0, false
	}
	return h.EpochAt(t)
}

// queryDisk re-derives the named analysis's result at epoch by replaying
// the durable history through a fresh runner. Called on an in-memory
// miss; holds no plane lock while replaying.
func (p *Plane) queryDisk(name string, epoch uint64) (uint64, json.RawMessage, error) {
	p.mu.RLock()
	h, factory := p.hist, p.histRunners
	p.mu.RUnlock()
	if h == nil {
		return 0, nil, fmt.Errorf("analysis %q has no result at epoch %d and no history store is attached", name, epoch)
	}
	lo, hi, ok := h.WindowEpochs()
	if !ok || epoch < lo || epoch > hi {
		return 0, nil, fmt.Errorf("analysis %q has no result at epoch %d (history holds %d..%d)", name, epoch, lo, hi)
	}
	var r Runner
	for _, cand := range factory() {
		if cand.Name() == name {
			r = cand
			break
		}
	}
	if r == nil {
		return 0, nil, fmt.Errorf("analysis %q cannot replay from history (no such runner)", name)
	}
	var last uint64
	if err := h.ReplayUpTo(epoch, func(ep uint64, g *graph.Graph) error {
		r.OnSnapshot(ep, g)
		last = ep
		return nil
	}); err != nil {
		return 0, nil, fmt.Errorf("history replay: %w", err)
	}
	if last != epoch {
		return 0, nil, fmt.Errorf("analysis %q has no window at epoch %d (nearest replayed %d)", name, epoch, last)
	}
	res, err := json.Marshal(r.Result())
	if err != nil {
		return 0, nil, fmt.Errorf("history result: %w", err)
	}
	return epoch, res, nil
}
