package runner

import (
	"time"

	"cloudgraph/internal/core"
	"cloudgraph/internal/flowlog"
	"cloudgraph/internal/graph"
)

// ReplayOptions parameterizes a batch replay.
type ReplayOptions struct {
	// Window is the graph window size (default one hour).
	Window time.Duration
	// Builder configures facet/labeling/series, like core.Config.
	Builder graph.BuilderOptions
	// Collapse, when Threshold > 0 or Keep set, collapses each window
	// exactly as the engine would.
	Collapse graph.CollapseOptions
}

// Replay drives this plane's runners over a recorded stream, offline:
// records are windowed with the same Windower the engine shards use,
// collapsed the same way, appended to the timeline and analyzed in epoch
// order on the calling goroutine. It is the batch path of
// cmd/experiments — one code path for online and offline, so the figures
// a replay produces are the figures the daemon serves. Returns the
// completed windows.
func (p *Plane) Replay(recs []flowlog.Record, opts ReplayOptions) []*graph.Graph {
	if opts.Window <= 0 {
		opts.Window = time.Hour
	}
	var windows []*graph.Graph
	var epoch uint64
	w := core.NewWindower(opts.Window, opts.Builder)
	w.OnComplete = func(g *graph.Graph) {
		if opts.Collapse.Threshold > 0 || opts.Collapse.Keep != nil {
			g = g.Collapse(opts.Collapse)
		}
		epoch++
		windows = append(windows, g)
		p.tl.Append(epoch, g)
		for _, r := range p.runners {
			p.step(r, epoch, g)
		}
	}
	for _, rec := range recs {
		w.Add(rec)
	}
	w.Flush()
	p.tl.Seal()
	return windows
}
