// Package runner is the online analysis plane: one Runner interface that
// every §2 analysis (auto micro-segmentation, succinct summaries,
// counterfactual capacity planning, policy churn) implements so the same
// code runs both online inside cloudgraphd — as consumers on the engine's
// fan-out bus — and offline in cmd/experiments, driven by Replay over a
// recorded stream. Because both paths execute the identical runner over
// the identical window sequence, online and batch results cannot drift;
// the equivalence test pins this per epoch, byte for byte.
package runner

import (
	"encoding/json"
	"fmt"
	"sort"
	"sync"
	"time"

	"cloudgraph/internal/core"
	"cloudgraph/internal/graph"
	"cloudgraph/internal/telemetry"
	"cloudgraph/internal/timeline"
	"cloudgraph/internal/trace"
	"cloudgraph/internal/watermark"
)

// Runner is one online analysis. The plane invokes OnSnapshot once per
// completed window, in epoch order, always from the same goroutine (the
// analysis's bus consumer), and reads Result immediately after — a Runner
// therefore needs no internal locking. Result must return a
// JSON-marshalable value describing the analysis of the latest snapshot.
type Runner interface {
	Name() string
	OnSnapshot(epoch uint64, g *graph.Graph)
	Result() any
}

// Config parameterizes a Plane.
type Config struct {
	// Timeline configures the versioned window timeline behind the plane.
	Timeline timeline.Config
	// Runners are the online analyses. Defaults to DefaultRunners().
	Runners []Runner
	// History bounds per-runner retained epoch results (default 96).
	History int
	// Telemetry, when set, receives per-analysis run latency histograms
	// and the timeline's metrics.
	Telemetry *telemetry.Registry
	// Trace, when set, records an "analysis.<name>" span against every
	// sampled record riding an analyzed window, continuing the record's
	// journey past the store append.
	Trace *trace.Tracer
	// Watermarks, when set, tracks the plane's epoch progress: the
	// "published" stage advances as the timeline appends, and one
	// SLO-tracked "analyzed.<name>" stage advances per runner as its
	// result lands. Nil disables watermarking.
	Watermarks *watermark.Tracker
}

// Plane wires a timeline and a set of runners to an engine's consumer
// bus, retains per-epoch results, and answers QUERY lookups.
type Plane struct {
	tl      *timeline.Timeline
	runners []Runner
	history int
	tracer  *trace.Tracer

	mu      sync.RWMutex
	results map[string]map[uint64]json.RawMessage // runner -> epoch -> result
	order   map[string][]uint64                   // insertion order, for eviction
	latest  map[string]uint64
	// hist, when set, backs queries for epochs evicted from (or never in)
	// the in-memory result maps; histRunners mints the throwaway runner a
	// disk replay drives. See SetHistory.
	hist        HistorySource
	histRunners func() []Runner

	telRun map[string]*telemetry.Histogram

	// Watermark stages: the timeline's published stage and one analyzed
	// stage per runner. Nil when watermarking is off (nil-safe handles).
	wmPublished *watermark.Stage
	wmAnalyzed  map[string]*watermark.Stage
}

// New builds a Plane. The zero Config is usable: default timeline,
// default runners.
func New(cfg Config) *Plane {
	if cfg.History <= 0 {
		cfg.History = 96
	}
	if cfg.Runners == nil {
		cfg.Runners = DefaultRunners()
	}
	cfg.Timeline.Telemetry = cfg.Telemetry
	cfg.Timeline.Trace = cfg.Trace
	p := &Plane{
		tl:      timeline.New(cfg.Timeline),
		runners: cfg.Runners,
		history: cfg.History,
		tracer:  cfg.Trace,
		results: make(map[string]map[uint64]json.RawMessage),
		order:   make(map[string][]uint64),
		latest:  make(map[string]uint64),
		telRun:  make(map[string]*telemetry.Histogram),

		wmPublished: cfg.Watermarks.Stage("published", false),
		wmAnalyzed:  make(map[string]*watermark.Stage),
	}
	for _, r := range p.runners {
		p.results[r.Name()] = make(map[uint64]json.RawMessage)
		p.wmAnalyzed[r.Name()] = cfg.Watermarks.Stage("analyzed."+r.Name(), true)
		if cfg.Telemetry != nil {
			p.telRun[r.Name()] = cfg.Telemetry.Histogram("cloudgraph_analysis_run_seconds",
				"online analysis latency per completed window",
				telemetry.DurBuckets,
				telemetry.Label{Key: "analysis", Value: r.Name()})
		}
	}
	return p
}

// Timeline exposes the plane's versioned timeline.
func (p *Plane) Timeline() *timeline.Timeline { return p.tl }

// Runners returns the registered analysis names, sorted.
func (p *Plane) Runners() []string {
	out := make([]string, 0, len(p.runners))
	for _, r := range p.runners {
		out = append(out, r.Name())
	}
	sort.Strings(out)
	return out
}

// Consumers returns the bus subscriptions that put this plane online: the
// timeline ingest plus one consumer per analysis. Pass them to
// core.Config.Consumers (or Engine.Subscribe). Each analysis rides its
// own consumer so a slow one degrades alone under the bus's drop-oldest
// policy instead of stalling its peers.
func (p *Plane) Consumers() []core.ConsumerSpec {
	specs := []core.ConsumerSpec{{
		Name: "timeline",
		Fn: func(epoch uint64, g *graph.Graph) {
			p.tl.Append(epoch, g)
			p.wmPublished.Advance(epoch)
		},
	}}
	for _, r := range p.runners {
		r := r
		specs = append(specs, core.ConsumerSpec{
			Name: "analysis." + r.Name(),
			Fn:   func(epoch uint64, g *graph.Graph) { p.step(r, epoch, g) },
		})
	}
	return specs
}

// step runs one analysis over one window and retains its marshaled
// result under the window's epoch.
func (p *Plane) step(r Runner, epoch uint64, g *graph.Graph) {
	start := time.Now()
	r.OnSnapshot(epoch, g)
	res, err := json.Marshal(r.Result())
	d := time.Since(start)
	p.telRun[r.Name()].Observe(d.Seconds())
	if p.tracer != nil && len(g.Traces) > 0 {
		note := "window=" + g.Start.UTC().Format(time.RFC3339)
		for _, tc := range g.Traces {
			p.tracer.Record(tc, "analysis."+r.Name(), start, d, note)
		}
	}
	if err != nil {
		res = json.RawMessage(fmt.Sprintf("{%q:%q}", "error", err.Error()))
	}
	p.mu.Lock()
	name := r.Name()
	p.results[name][epoch] = res
	p.order[name] = append(p.order[name], epoch)
	if len(p.order[name]) > p.history {
		n := len(p.order[name]) - p.history
		for _, old := range p.order[name][:n] {
			delete(p.results[name], old)
		}
		p.order[name] = append([]uint64(nil), p.order[name][n:]...)
	}
	p.latest[name] = epoch
	p.mu.Unlock()
	// Advance only after the result is queryable: the analyzed watermark
	// promises "QUERY at this epoch answers", and the freshness clock
	// stops when the promise holds, not when the computation does.
	p.wmAnalyzed[name].Advance(epoch)
}

// Seal closes the timeline's in-progress roll-up bucket; call once the
// stream has been flushed so partial-bucket roll-ups become readable.
func (p *Plane) Seal() { p.tl.Seal() }

// Query returns the result of the named analysis at the given epoch (0
// means latest). The returned epoch identifies which snapshot answered,
// so "latest" responses are attributable and re-queryable. Epochs evicted
// from the in-memory retention fall through to the history store, which
// re-derives the identical bytes by replaying the recorded windows
// through a fresh runner.
func (p *Plane) Query(name string, epoch uint64) (uint64, json.RawMessage, error) {
	p.mu.RLock()
	byEpoch, ok := p.results[name]
	if !ok {
		p.mu.RUnlock()
		return 0, nil, fmt.Errorf("unknown analysis %q (have %v)", name, p.Runners())
	}
	if epoch == 0 {
		epoch, ok = p.latest[name], p.latest[name] != 0
		if !ok {
			p.mu.RUnlock()
			return 0, nil, fmt.Errorf("analysis %q has no completed window yet", name)
		}
	}
	res, ok := byEpoch[epoch]
	p.mu.RUnlock()
	if !ok {
		return p.queryDisk(name, epoch)
	}
	return epoch, res, nil
}

// Epochs returns the retained epoch range of the named analysis
// ((0,0) when it has produced nothing or is unknown).
func (p *Plane) Epochs(name string) (oldest, newest uint64) {
	p.mu.RLock()
	defer p.mu.RUnlock()
	ord := p.order[name]
	if len(ord) == 0 {
		return 0, 0
	}
	return ord[0], ord[len(ord)-1]
}
