package runner

import (
	"strings"
	"testing"
	"time"

	"cloudgraph/internal/histstore"
)

// TestQueryFallsThroughToDisk pins the acceptance property of the durable
// history wiring: an epoch evicted from the plane's in-memory result
// retention is still answerable — QUERY falls through to the history
// store, replays the recorded windows through a fresh runner, and the
// re-derived result is byte-equal to what a plane with unlimited
// retention holds in memory for the same epoch.
func TestQueryFallsThroughToDisk(t *testing.T) {
	recs := seededStream(t)
	const window = 5 * time.Minute

	// The reference plane retains every epoch in memory.
	full := New(Config{})
	windows := full.Replay(recs, ReplayOptions{Window: window})
	if len(windows) < 8 {
		t.Fatalf("stream produced only %d windows", len(windows))
	}

	// The constrained plane keeps just 3 epochs of results but records
	// every window durably — the cloudgraphd -data-dir arrangement.
	hs, err := histstore.Open(t.TempDir(), histstore.Options{SegmentWindows: 4, NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	defer hs.Close()
	short := New(Config{History: 3})
	short.Replay(recs, ReplayOptions{Window: window})
	for i, g := range windows {
		if err := hs.Append(uint64(i+1), g); err != nil {
			t.Fatalf("append window %d: %v", i+1, err)
		}
	}
	short.SetHistory(hs, nil)

	// Epoch 2 must be gone from memory — the miss is what we are testing.
	oldest, newest := short.Epochs("segment")
	if oldest <= 2 {
		t.Fatalf("oldest retained epoch %d; retention did not evict epoch 2", oldest)
	}

	for _, name := range short.Runners() {
		ep, disk, err := short.Query(name, 2)
		if err != nil {
			t.Fatalf("QUERY %s@2 via disk: %v", name, err)
		}
		if ep != 2 {
			t.Fatalf("QUERY %s@2 answered epoch %d", name, ep)
		}
		_, mem, err := full.Query(name, 2)
		if err != nil {
			t.Fatal(err)
		}
		if string(disk) != string(mem) {
			t.Fatalf("%s@2: disk result diverges from in-memory:\n  disk: %s\n  mem:  %s", name, disk, mem)
		}
	}

	// In-memory epochs still answer from memory (same bytes either way).
	if _, _, err := short.Query("segment", newest); err != nil {
		t.Fatalf("QUERY newest from memory: %v", err)
	}

	// Epochs past the recorded history stay an error, and the error names
	// the range so operators can see what is on disk.
	if _, _, err := short.Query("segment", newest+100); err == nil ||
		!strings.Contains(err.Error(), "history holds") {
		t.Fatalf("QUERY far-future epoch: err = %v, want history range error", err)
	}
}
