// Package watermark tracks per-stage epoch progress through the analysis
// pipeline: how far the window stream has advanced (ingested), how many
// windows have sealed (merged + published), and how far each downstream
// consumer — the timeline, every analysis runner, the durable history
// store — has caught up. The paper's value is *timely* detection over the
// dynamic communication graph; the watermark tracker is how timeliness is
// measured while the system runs instead of offline in experiments.
//
// A Tracker is lock-free on every pipeline path: stage watermarks are
// CAS-max atomics, seal times live in a fixed ring of atomic pointers, and
// all accounting (seal→stage latency, freshness-SLO burn) happens on the
// consumer goroutine already handling the window. Stage watermarks are
// monotonic by construction — Advance with an older epoch is a no-op —
// which is the invariant the property test pins and the primitive a future
// multi-node cluster fans in (cross-node window sealing is "min of the
// members' sealed watermarks").
//
// Freshness SLO: when Config.FreshnessTarget is set, every sealed window
// must be processed by each SLO-tracked stage within the target, measured
// seal→advance. A window missing the target — or skipped outright under
// the bus's drop-oldest policy — burns that stage's error budget; Trip
// consecutive burned windows fire Config.OnBurn, the diagnostic-bundle
// trigger.
package watermark

import (
	"sync"
	"sync/atomic"
	"time"

	"cloudgraph/internal/telemetry"
)

// StageIngested and StageSealed are the two stages the Tracker maintains
// itself; downstream stages register with Stage by name.
const (
	StageIngested = "ingested"
	StageSealed   = "sealed"
)

// sealRingSize bounds how many recent seal times are retained for latency
// and staleness accounting. Windows older than the ring simply produce no
// latency sample — accounting degrades, watermarks never do.
const sealRingSize = 512

// Config parameterizes a Tracker.
type Config struct {
	// FreshnessTarget is the per-window freshness SLO: a sealed window must
	// clear every SLO-tracked stage within this duration of its seal or it
	// burns that stage's budget. Zero disables SLO accounting.
	FreshnessTarget time.Duration
	// Trip is how many consecutive burned windows fire OnBurn (default 3).
	Trip int
	// BudgetRatio is the fraction of windows allowed to miss the target
	// before the budget state reports exhausted (default 0.01).
	BudgetRatio float64
	// OnBurn, when set, is called (on the advancing consumer's goroutine)
	// each time a stage reaches Trip consecutive burned windows. Handlers
	// that do real work — writing a diagnostic bundle — must hand off to
	// their own goroutine.
	OnBurn func(stage string, epoch uint64, consecutive uint64)
}

func (c *Config) defaults() {
	if c.Trip <= 0 {
		c.Trip = 3
	}
	if c.BudgetRatio <= 0 {
		c.BudgetRatio = 0.01
	}
}

// sealEntry records when one epoch's window sealed.
type sealEntry struct {
	epoch uint64
	at    time.Time
}

// Tracker is the pipeline-wide watermark state. Construct with New, wire
// the sealed side into the engine (Ingested, Sealed) and register one
// Stage per downstream consumer. All methods are safe on a nil *Tracker
// and cost one branch, matching the telemetry and trace contracts.
type Tracker struct {
	cfg Config

	ingested   atomic.Uint64
	ingestedNS atomic.Int64
	sealed     atomic.Uint64
	sealedNS   atomic.Int64
	seals      [sealRingSize]atomic.Pointer[sealEntry]

	// windows counts seals since construction/resume — the SLO
	// denominator.
	windows atomic.Uint64

	mu     sync.Mutex // guards stage registration only
	stages []*Stage
}

// New returns a Tracker with all watermarks at zero.
func New(cfg Config) *Tracker {
	cfg.defaults()
	return &Tracker{cfg: cfg}
}

// Stage is one downstream consumer's watermark: the highest epoch the
// consumer has fully processed. Advance is lock-free and monotonic.
type Stage struct {
	t    *Tracker
	name string
	slo  bool

	epoch  atomic.Uint64
	lastNS atomic.Int64

	burned      atomic.Uint64 // windows that missed the freshness target (or were skipped)
	consecutive atomic.Uint64 // current run of burned windows
	trips       atomic.Uint64 // OnBurn firings

	latency *telemetry.Histogram // seal→advance seconds (set by Instrument)
}

// Stage registers (or returns the existing) named downstream stage.
// SLO-tracked stages participate in freshness-burn accounting; progress
// views track both kinds identically.
func (t *Tracker) Stage(name string, slo bool) *Stage {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	for _, s := range t.stages {
		if s.name == name {
			return s
		}
	}
	s := &Stage{t: t, name: name, slo: slo}
	t.stages = append(t.stages, s)
	return s
}

// Ingested advances the stream-head watermark: the epoch of the window
// currently being filled (one past the newest sealed window the stream
// has moved beyond). Monotonic; lower epochs are no-ops.
func (t *Tracker) Ingested(epoch uint64) {
	if t == nil {
		return
	}
	if casMax(&t.ingested, epoch) {
		t.ingestedNS.Store(time.Now().UnixNano())
	}
}

// Sealed records that the window published under epoch sealed at the given
// time. It advances the sealed watermark and stores the seal time for the
// downstream latency and staleness accounting.
func (t *Tracker) Sealed(epoch uint64, at time.Time) {
	if t == nil {
		return
	}
	e := &sealEntry{epoch: epoch, at: at}
	t.seals[epoch%sealRingSize].Store(e)
	if casMax(&t.sealed, epoch) {
		t.sealedNS.Store(at.UnixNano())
		t.windows.Add(1)
	}
}

// Resume forces every watermark — sealed, ingested, and all registered
// stages — up to epoch without any latency or SLO accounting: the restart
// path, where a recovered history store hands back the epoch the crashed
// process had reached. Watermarks still never move backwards.
func (t *Tracker) Resume(epoch uint64) {
	if t == nil || epoch == 0 {
		return
	}
	now := time.Now().UnixNano()
	if casMax(&t.sealed, epoch) {
		t.sealedNS.Store(now)
	}
	if casMax(&t.ingested, epoch+1) {
		t.ingestedNS.Store(now)
	}
	t.mu.Lock()
	stages := append([]*Stage(nil), t.stages...)
	t.mu.Unlock()
	for _, s := range stages {
		if casMax(&s.epoch, epoch) {
			s.lastNS.Store(now)
		}
	}
}

// SealedEpoch returns the newest sealed epoch.
func (t *Tracker) SealedEpoch() uint64 {
	if t == nil {
		return 0
	}
	return t.sealed.Load()
}

// sealTime returns when epoch sealed, if the ring still holds it.
func (t *Tracker) sealTime(epoch uint64) (time.Time, bool) {
	e := t.seals[epoch%sealRingSize].Load()
	if e == nil || e.epoch != epoch {
		return time.Time{}, false
	}
	return e.at, true
}

// casMax advances v to epoch if it is greater; reports whether it moved.
func casMax(v *atomic.Uint64, epoch uint64) bool {
	for {
		old := v.Load()
		if epoch <= old {
			return false
		}
		if v.CompareAndSwap(old, epoch) {
			return true
		}
	}
}

// Advance moves the stage watermark to epoch (no-op when not ahead) and
// runs the freshness accounting for every epoch newly covered: the epoch
// itself is timed seal→now against the SLO target, and epochs jumped over
// — deliveries skipped under the bus's drop-oldest policy — burn outright,
// since they were never processed at all. Called from the consumer's own
// goroutine; safe (if pointless) to call concurrently.
func (s *Stage) Advance(epoch uint64) {
	if s == nil {
		return
	}
	for {
		old := s.epoch.Load()
		if epoch <= old {
			return
		}
		if !s.epoch.CompareAndSwap(old, epoch) {
			continue
		}
		now := time.Now()
		s.lastNS.Store(now.UnixNano())
		s.account(old, epoch, now)
		return
	}
}

// account applies latency and SLO accounting for epochs (old, epoch].
func (s *Stage) account(old, epoch uint64, now time.Time) {
	t := s.t
	target := t.cfg.FreshnessTarget
	// Latency sample for the epoch actually processed.
	var lat time.Duration
	sealAt, haveSeal := t.sealTime(epoch)
	if haveSeal {
		lat = now.Sub(sealAt)
		s.latency.Observe(lat.Seconds())
	}
	if target <= 0 || !s.slo {
		return
	}
	// Skipped epochs (drop-oldest casualties) burn; cap the scan at the
	// seal ring so a post-resume jump cannot loop for millions of epochs.
	lo := old + 1
	if epoch-old > sealRingSize {
		lo = epoch - sealRingSize
	}
	for ep := lo; ep <= epoch; ep++ {
		burned := false
		switch {
		case ep == epoch:
			burned = haveSeal && lat > target
		default:
			_, known := t.sealTime(ep)
			burned = known // skipped a window that really sealed
		}
		if !burned {
			s.consecutive.Store(0)
			continue
		}
		s.burned.Add(1)
		run := s.consecutive.Add(1)
		if run != 0 && run%uint64(t.cfg.Trip) == 0 {
			s.trips.Add(1)
			if t.cfg.OnBurn != nil {
				t.cfg.OnBurn(s.name, ep, run)
			}
		}
	}
}

// Epoch returns the stage's current watermark.
func (s *Stage) Epoch() uint64 {
	if s == nil {
		return 0
	}
	return s.epoch.Load()
}

// StageStatus is one stage's row in a Snapshot.
type StageStatus struct {
	Name  string `json:"name"`
	Epoch uint64 `json:"epoch"`
	// Lag is how many sealed windows the stage has not yet processed.
	Lag uint64 `json:"lag"`
	// StalenessSeconds is how long the oldest unprocessed sealed window
	// has been waiting (0 when the stage is caught up).
	StalenessSeconds float64 `json:"staleness_seconds"`
	// SLO reports whether the stage participates in freshness-burn
	// accounting.
	SLO         bool      `json:"slo"`
	Burned      uint64    `json:"burned"`
	Consecutive uint64    `json:"consecutive"`
	Trips       uint64    `json:"trips"`
	LastAdvance time.Time `json:"last_advance"`
}

// Snapshot is a point-in-time view of every watermark — the /statusz and
// metrics payload.
type Snapshot struct {
	Ingested uint64    `json:"ingested"`
	Sealed   uint64    `json:"sealed"`
	SealedAt time.Time `json:"sealed_at"`
	// Windows counts seals since construction/resume: the SLO denominator.
	Windows uint64        `json:"windows"`
	Target  time.Duration `json:"freshness_target_ns"`
	// BudgetRemaining is the fraction of the error budget left, min over
	// SLO stages: 1 = untouched, <= 0 = exhausted. 1 when SLO is off.
	BudgetRemaining float64       `json:"budget_remaining"`
	Stages          []StageStatus `json:"stages"`
}

// Snapshot captures every stage's progress at one instant. Stage rows are
// in registration order (pipeline order, when wired in order).
func (t *Tracker) Snapshot() Snapshot {
	if t == nil {
		return Snapshot{BudgetRemaining: 1}
	}
	now := time.Now()
	snap := Snapshot{
		Ingested:        t.ingested.Load(),
		Sealed:          t.sealed.Load(),
		Windows:         t.windows.Load(),
		Target:          t.cfg.FreshnessTarget,
		BudgetRemaining: 1,
	}
	if ns := t.sealedNS.Load(); ns != 0 {
		snap.SealedAt = time.Unix(0, ns).UTC()
	}
	t.mu.Lock()
	stages := append([]*Stage(nil), t.stages...)
	t.mu.Unlock()
	for _, s := range stages {
		st := StageStatus{
			Name:        s.name,
			Epoch:       s.epoch.Load(),
			SLO:         s.slo,
			Burned:      s.burned.Load(),
			Consecutive: s.consecutive.Load(),
			Trips:       s.trips.Load(),
		}
		if ns := s.lastNS.Load(); ns != 0 {
			st.LastAdvance = time.Unix(0, ns).UTC()
		}
		if sealed := snap.Sealed; st.Epoch < sealed {
			st.Lag = sealed - st.Epoch
			if at, ok := t.sealTime(st.Epoch + 1); ok {
				st.StalenessSeconds = now.Sub(at).Seconds()
			} else if ns := s.lastNS.Load(); ns != 0 {
				st.StalenessSeconds = now.Sub(time.Unix(0, ns)).Seconds()
			}
		}
		if t.cfg.FreshnessTarget > 0 && s.slo && snap.Windows > 0 {
			allowed := t.cfg.BudgetRatio * float64(snap.Windows)
			if allowed > 0 {
				if rem := 1 - float64(st.Burned)/allowed; rem < snap.BudgetRemaining {
					snap.BudgetRemaining = rem
				}
			}
		}
		snap.Stages = append(snap.Stages, st)
	}
	return snap
}

// Instrument registers the tracker's metric families in reg and attaches
// the per-stage latency histograms. Call after every Stage has registered
// (cloudgraphd wires stages at startup, then instruments). A nil registry
// or tracker is a no-op.
func (t *Tracker) Instrument(reg *telemetry.Registry) {
	if t == nil || reg == nil {
		return
	}
	gaugeStage := func(name string, fn func() float64) {
		reg.GaugeFunc("cloudgraph_watermark_epoch",
			"per-stage pipeline epoch watermark",
			fn, telemetry.Label{Key: "stage", Value: name})
	}
	gaugeStage(StageIngested, func() float64 { return float64(t.ingested.Load()) })
	gaugeStage(StageSealed, func() float64 { return float64(t.sealed.Load()) })
	t.mu.Lock()
	stages := append([]*Stage(nil), t.stages...)
	t.mu.Unlock()
	for _, s := range stages {
		s := s
		label := telemetry.Label{Key: "stage", Value: s.name}
		gaugeStage(s.name, func() float64 { return float64(s.epoch.Load()) })
		reg.GaugeFunc("cloudgraph_watermark_lag_windows",
			"sealed windows not yet processed by the stage",
			func() float64 {
				sealed, cur := t.sealed.Load(), s.epoch.Load()
				if cur >= sealed {
					return 0
				}
				return float64(sealed - cur)
			}, label)
		reg.GaugeFunc("cloudgraph_watermark_staleness_seconds",
			"age of the oldest sealed window the stage has not processed",
			func() float64 { return s.staleness(time.Now()) }, label)
		s.latency = reg.Histogram("cloudgraph_watermark_latency_seconds",
			"seal-to-stage latency per window",
			telemetry.DurBuckets, label)
		if s.slo {
			reg.GaugeFunc("cloudgraph_watermark_slo_burned_windows",
				"windows that missed the freshness target per stage",
				func() float64 { return float64(s.burned.Load()) }, label)
		}
	}
	if t.cfg.FreshnessTarget > 0 {
		reg.GaugeFunc("cloudgraph_watermark_freshness_target_seconds",
			"configured freshness SLO target",
			func() float64 { return t.cfg.FreshnessTarget.Seconds() })
		reg.GaugeFunc("cloudgraph_watermark_slo_budget_remaining",
			"freshness error budget remaining (1 = untouched, <=0 = exhausted)",
			func() float64 { return t.Snapshot().BudgetRemaining })
	}
}

// staleness is the gauge form of StageStatus.StalenessSeconds.
func (s *Stage) staleness(now time.Time) float64 {
	sealed, cur := s.t.sealed.Load(), s.epoch.Load()
	if cur >= sealed {
		return 0
	}
	if at, ok := s.t.sealTime(cur + 1); ok {
		return now.Sub(at).Seconds()
	}
	if ns := s.lastNS.Load(); ns != 0 {
		return now.Sub(time.Unix(0, ns)).Seconds()
	}
	return 0
}
