package watermark

import (
	"math/rand"
	"strings"
	"sync"
	"testing"
	"time"

	"cloudgraph/internal/telemetry"
)

// TestWatermarkMonotonic is the property test behind the tracker's core
// invariant: no matter what order Advance/Sealed/Ingested calls arrive in
// — including concurrent, duplicated and out-of-order epochs — every
// watermark observed by a reader is non-decreasing within a run.
func TestWatermarkMonotonic(t *testing.T) {
	tr := New(Config{})
	stages := []*Stage{tr.Stage("published", false), tr.Stage("analyzed.x", true), tr.Stage("durable", true)}

	rng := rand.New(rand.NewSource(1))
	epochs := make([]uint64, 4096)
	for i := range epochs {
		epochs[i] = uint64(rng.Intn(2000)) + 1
	}

	stop := make(chan struct{})
	var fail sync.Once
	var failMsg string
	go func() {
		// Reader: every consecutive pair of snapshots must be ordered.
		var prev Snapshot
		for {
			select {
			case <-stop:
				return
			default:
			}
			cur := tr.Snapshot()
			if cur.Ingested < prev.Ingested || cur.Sealed < prev.Sealed {
				fail.Do(func() { failMsg = "ingested/sealed watermark moved backwards" })
				return
			}
			for i := range cur.Stages {
				if i < len(prev.Stages) && cur.Stages[i].Epoch < prev.Stages[i].Epoch {
					fail.Do(func() { failMsg = "stage " + cur.Stages[i].Name + " moved backwards" })
					return
				}
			}
			prev = cur
		}
	}()

	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i, ep := range epochs {
				switch (i + w) % 3 {
				case 0:
					tr.Sealed(ep, time.Now())
					tr.Ingested(ep + 1)
				default:
					stages[(i+w)%len(stages)].Advance(ep)
				}
			}
		}()
	}
	wg.Wait()
	close(stop)
	if failMsg != "" {
		t.Fatal(failMsg)
	}

	snap := tr.Snapshot()
	if snap.Sealed == 0 || snap.Ingested <= snap.Sealed-1 && snap.Ingested != snap.Sealed+1 {
		t.Fatalf("implausible final snapshot: ingested=%d sealed=%d", snap.Ingested, snap.Sealed)
	}
	for _, s := range snap.Stages {
		if s.Epoch > snap.Sealed+2000 {
			t.Fatalf("stage %s ran past any published epoch: %d", s.Name, s.Epoch)
		}
	}
}

// TestAdvanceOldEpochIsNoOp pins the monotonic contract directly.
func TestAdvanceOldEpochIsNoOp(t *testing.T) {
	tr := New(Config{})
	s := tr.Stage("durable", true)
	s.Advance(10)
	s.Advance(7)
	if got := s.Epoch(); got != 10 {
		t.Fatalf("Advance(7) after Advance(10): epoch %d, want 10", got)
	}
	tr.Sealed(5, time.Now())
	tr.Sealed(3, time.Now())
	if got := tr.SealedEpoch(); got != 5 {
		t.Fatalf("Sealed(3) after Sealed(5): %d, want 5", got)
	}
}

// TestFreshnessBurnAndTrip drives the SLO accounting: windows processed
// within the target leave the budget alone, slow or skipped windows burn,
// and Trip consecutive burns fire OnBurn.
func TestFreshnessBurnAndTrip(t *testing.T) {
	var burns []string
	tr := New(Config{
		FreshnessTarget: 10 * time.Millisecond,
		Trip:            2,
		OnBurn: func(stage string, epoch uint64, consecutive uint64) {
			burns = append(burns, stage)
		},
	})
	s := tr.Stage("analyzed.seg", true)

	// Fresh window: sealed just now, advanced immediately.
	tr.Sealed(1, time.Now())
	s.Advance(1)
	if got := s.burned.Load(); got != 0 {
		t.Fatalf("fresh window burned %d", got)
	}

	// Stale windows: sealed long ago.
	tr.Sealed(2, time.Now().Add(-time.Second))
	s.Advance(2)
	if got := s.burned.Load(); got != 1 {
		t.Fatalf("stale window: burned %d, want 1", got)
	}
	if len(burns) != 0 {
		t.Fatalf("tripped after one burn: %v", burns)
	}
	tr.Sealed(3, time.Now().Add(-time.Second))
	s.Advance(3)
	if got := s.burned.Load(); got != 2 {
		t.Fatalf("second stale window: burned %d, want 2", got)
	}
	if len(burns) != 1 || burns[0] != "analyzed.seg" {
		t.Fatalf("want one trip after 2 consecutive burns, got %v", burns)
	}

	// A skipped epoch (drop-oldest) burns even though never advanced to.
	tr.Sealed(4, time.Now())
	tr.Sealed(5, time.Now())
	s.Advance(5) // skips epoch 4
	if got := s.burned.Load(); got < 3 {
		t.Fatalf("skipped epoch did not burn: burned %d", got)
	}

	// Non-SLO stages never burn.
	p := tr.Stage("published", false)
	tr.Sealed(6, time.Now().Add(-time.Minute))
	p.Advance(6)
	if got := p.burned.Load(); got != 0 {
		t.Fatalf("non-SLO stage burned %d", got)
	}
}

// TestResume pins the restart contract: all watermarks jump to the
// recovered epoch with no SLO accounting, and later progress is measured
// from there.
func TestResume(t *testing.T) {
	tr := New(Config{FreshnessTarget: time.Millisecond, Trip: 1,
		OnBurn: func(string, uint64, uint64) { t.Error("resume must not burn") }})
	s := tr.Stage("durable", true)
	tr.Resume(500)
	if tr.SealedEpoch() != 500 {
		t.Fatalf("sealed after resume: %d", tr.SealedEpoch())
	}
	snap := tr.Snapshot()
	if snap.Ingested != 501 {
		t.Fatalf("ingested after resume: %d", snap.Ingested)
	}
	if s.Epoch() != 500 {
		t.Fatalf("stage after resume: %d", s.Epoch())
	}
	// Resume never regresses.
	tr.Resume(100)
	if s.Epoch() != 500 || tr.SealedEpoch() != 500 {
		t.Fatalf("resume regressed: stage=%d sealed=%d", s.Epoch(), tr.SealedEpoch())
	}
}

// TestSnapshotLagAndStaleness checks the derived progress views.
func TestSnapshotLagAndStaleness(t *testing.T) {
	tr := New(Config{FreshnessTarget: time.Second})
	s := tr.Stage("analyzed.seg", true)
	sealBase := time.Now().Add(-3 * time.Second)
	for ep := uint64(1); ep <= 5; ep++ {
		tr.Sealed(ep, sealBase.Add(time.Duration(ep)*100*time.Millisecond))
	}
	s.Advance(2)
	snap := tr.Snapshot()
	if snap.Sealed != 5 || snap.Ingested != 0 {
		t.Fatalf("sealed=%d ingested=%d", snap.Sealed, snap.Ingested)
	}
	var row StageStatus
	for _, st := range snap.Stages {
		if st.Name == "analyzed.seg" {
			row = st
		}
	}
	if row.Lag != 3 {
		t.Fatalf("lag %d, want 3 (sealed 5, stage 2)", row.Lag)
	}
	// Oldest unprocessed is epoch 3, sealed ~2.7s ago.
	if row.StalenessSeconds < 2 || row.StalenessSeconds > 10 {
		t.Fatalf("staleness %.2fs, want ~2.7s", row.StalenessSeconds)
	}
	// Caught-up stage has zero lag and staleness.
	s.Advance(5)
	snap = tr.Snapshot()
	for _, st := range snap.Stages {
		if st.Name == "analyzed.seg" && (st.Lag != 0 || st.StalenessSeconds != 0) {
			t.Fatalf("caught up but lag=%d staleness=%f", st.Lag, st.StalenessSeconds)
		}
	}
}

// TestInstrumentExposesFamilies spot-checks the Prometheus exposition.
func TestInstrumentExposesFamilies(t *testing.T) {
	reg := telemetry.NewRegistry()
	tr := New(Config{FreshnessTarget: time.Second})
	s := tr.Stage("durable", true)
	tr.Instrument(reg)
	tr.Sealed(1, time.Now().Add(-10*time.Millisecond))
	s.Advance(1)
	var sb strings.Builder
	if err := reg.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		`cloudgraph_watermark_epoch{stage="sealed"} 1`,
		`cloudgraph_watermark_epoch{stage="durable"} 1`,
		`cloudgraph_watermark_lag_windows{stage="durable"} 0`,
		`cloudgraph_watermark_latency_seconds_count{stage="durable"} 1`,
		`cloudgraph_watermark_slo_burned_windows{stage="durable"} 0`,
		`cloudgraph_watermark_freshness_target_seconds 1`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q", want)
		}
	}
}

// TestNilTrackerIsNoOp pins the nil-receiver contract shared with
// telemetry and trace.
func TestNilTrackerIsNoOp(t *testing.T) {
	var tr *Tracker
	tr.Ingested(1)
	tr.Sealed(1, time.Now())
	tr.Resume(5)
	s := tr.Stage("x", true)
	s.Advance(3)
	if s.Epoch() != 0 || tr.SealedEpoch() != 0 {
		t.Fatal("nil tracker advanced")
	}
	if snap := tr.Snapshot(); snap.Sealed != 0 || snap.BudgetRemaining != 1 {
		t.Fatalf("nil snapshot: %+v", snap)
	}
	tr.Instrument(telemetry.NewRegistry())
}
