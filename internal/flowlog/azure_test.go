package flowlog

import (
	"bytes"
	"net/netip"
	"strings"
	"testing"
)

const sampleNSG = `{
  "records": [
    {
      "time": "2018-11-13T12:00:35.3899262Z",
      "properties": {
        "Version": 2,
        "flows": [
          {
            "rule": "DefaultRule_AllowInternetOutBound",
            "flows": [
              {
                "mac": "000D3AF87856",
                "flowTuples": [
                  "1542110377,10.0.0.4,13.67.143.118,44931,443,T,O,A,B,,,,",
                  "1542110437,10.0.0.4,13.67.143.118,44931,443,T,O,A,C,25,4096,12,2500",
                  "1542110497,10.0.0.4,13.67.143.118,44931,443,T,O,A,E,30,5000,14,3000"
                ]
              }
            ]
          },
          {
            "rule": "DefaultRule_AllowVnetInBound",
            "flows": [
              {
                "mac": "000D3AF87856",
                "flowTuples": [
                  "1542110402,10.0.0.5,10.0.0.4,51831,8080,T,I,A,C,100,150000,60,7000",
                  "1542110403,192.0.2.9,10.0.0.4,55555,22,T,I,D,B,,,,"
                ]
              }
            ]
          }
        ]
      }
    }
  ]
}`

func TestParseAzureNSG(t *testing.T) {
	recs, err := ParseAzureNSG(strings.NewReader(sampleNSG))
	if err != nil {
		t.Fatal(err)
	}
	// B tuples and denied tuples yield no record: expect 3 (C, E, C).
	if len(recs) != 3 {
		t.Fatalf("records = %d, want 3: %+v", len(recs), recs)
	}
	out := recs[0]
	if out.LocalIP.String() != "10.0.0.4" || out.LocalPort != 44931 {
		t.Errorf("outbound local = %s:%d", out.LocalIP, out.LocalPort)
	}
	if out.RemoteIP.String() != "13.67.143.118" || out.RemotePort != 443 {
		t.Errorf("outbound remote = %s:%d", out.RemoteIP, out.RemotePort)
	}
	if out.PacketsSent != 25 || out.BytesSent != 4096 || out.PacketsRcvd != 12 || out.BytesRcvd != 2500 {
		t.Errorf("outbound counters = %+v", out)
	}
	if out.Time.Unix() != 1542110437 {
		t.Errorf("time = %v", out.Time)
	}

	in := recs[2]
	if in.LocalIP.String() != "10.0.0.4" || in.LocalPort != 8080 {
		t.Errorf("inbound local = %s:%d (direction not flipped)", in.LocalIP, in.LocalPort)
	}
	if in.RemoteIP.String() != "10.0.0.5" || in.RemotePort != 51831 {
		t.Errorf("inbound remote = %s:%d", in.RemoteIP, in.RemotePort)
	}
	// Inbound: src→dst traffic arrives at the VM.
	if in.BytesRcvd != 150000 || in.BytesSent != 7000 {
		t.Errorf("inbound counters not oriented to the VM: %+v", in)
	}
}

func TestParseAzureNSGErrors(t *testing.T) {
	cases := []string{
		`not json`,
		`{"records":[{"properties":{"Version":1,"flows":[]}}]}`,
		`{"records":[{"properties":{"Version":2,"flows":[{"flows":[{"flowTuples":["bad,tuple"]}]}]}}]}`,
		`{"records":[{"properties":{"Version":2,"flows":[{"flows":[{"flowTuples":["x,10.0.0.4,10.0.0.5,1,2,T,O,A,E,1,1,1,1"]}]}]}}]}`,
		`{"records":[{"properties":{"Version":2,"flows":[{"flows":[{"flowTuples":["1,10.0.0.4,10.0.0.5,1,2,T,X,A,E,1,1,1,1"]}]}]}}]}`,
	}
	for _, c := range cases {
		if _, err := ParseAzureNSG(strings.NewReader(c)); err == nil {
			t.Errorf("want error for %.40q", c)
		}
	}
}

func TestAzureNSGRoundTrip(t *testing.T) {
	want := []Record{
		{
			Time: unixTime(1700000000), LocalIP: mustAddrT(t, "10.1.0.4"), LocalPort: 50000,
			RemoteIP: mustAddrT(t, "10.1.0.9"), RemotePort: 443,
			PacketsSent: 7, PacketsRcvd: 5, BytesSent: 900, BytesRcvd: 1200,
		},
		{
			Time: unixTime(1700000060), LocalIP: mustAddrT(t, "10.1.0.4"), LocalPort: 50001,
			RemoteIP: mustAddrT(t, "198.51.100.7"), RemotePort: 22,
			PacketsSent: 1, PacketsRcvd: 1, BytesSent: 64, BytesRcvd: 64,
		},
	}
	blob, err := AppendAzureNSG(want)
	if err != nil {
		t.Fatal(err)
	}
	got, err := ParseAzureNSG(bytes.NewReader(blob))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("round trip length %d != %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("record %d:\n got %+v\nwant %+v", i, got[i], want[i])
		}
	}
}

func mustAddrT(t *testing.T, s string) netip.Addr {
	t.Helper()
	return mustAddr(t, s)
}
