package flowlog

import (
	"strings"
	"testing"
)

// Fuzz targets for the external input surfaces: CSV lines, binary frames
// and NSG flow-log tuples. Run with `go test -fuzz=FuzzParseCSV` etc.; in
// normal test runs they execute the seed corpus only.

func FuzzParseCSV(f *testing.F) {
	f.Add("1700000000,10.0.1.4,443,10.0.2.9,49152,120,80,90000,6400")
	f.Add("1,::1,0,2001:db8::1,65535,0,0,0,0")
	f.Add("")
	f.Add("a,b,c,d,e,f,g,h,i")
	f.Add("1700000000,10.0.1.4,443,10.0.2.9,49152,120,80,90000")
	f.Fuzz(func(t *testing.T, line string) {
		rec, err := ParseCSV(line)
		if err != nil {
			return
		}
		// Any successfully parsed record must round-trip.
		again, err := ParseCSV(rec.MarshalCSV())
		if err != nil {
			t.Fatalf("re-parse failed for %q: %v", rec.MarshalCSV(), err)
		}
		if again != rec {
			t.Fatalf("round trip mismatch: %+v vs %+v", again, rec)
		}
	})
}

func FuzzDecodeBinary(f *testing.F) {
	r := Record{}
	f.Add(AppendBinary(nil, r))
	f.Add(make([]byte, WireSize))
	f.Add([]byte{1, 2, 3})
	f.Fuzz(func(t *testing.T, b []byte) {
		rec, err := DecodeBinary(b)
		if err != nil {
			return
		}
		// Decoded records re-encode to an equal prefix-decodable frame.
		out := AppendBinary(nil, rec)
		rec2, err := DecodeBinary(out)
		if err != nil || rec2 != rec {
			t.Fatalf("binary round trip failed: %+v vs %+v (%v)", rec, rec2, err)
		}
	})
}

func FuzzNSGTuple(f *testing.F) {
	f.Add("1542110437,10.0.0.4,13.67.143.118,44931,443,T,O,A,C,25,4096,12,2500")
	f.Add("1542110377,10.0.0.4,13.67.143.118,44931,443,T,O,A,B,,,,")
	f.Add("x")
	f.Add(strings.Repeat(",", 12))
	f.Fuzz(func(t *testing.T, tuple string) {
		rec, ok, err := parseNSGTuple(tuple)
		if err != nil || !ok {
			return
		}
		if !rec.Valid() && rec.Time.Unix() != 0 {
			// Valid==false only acceptable for zero addresses, which
			// ParseAddr would have rejected.
			t.Fatalf("parsed record invalid: %+v from %q", rec, tuple)
		}
	})
}
