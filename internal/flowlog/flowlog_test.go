package flowlog

import (
	"bytes"
	"io"
	"math/rand"
	"net/netip"
	"reflect"
	"strings"
	"testing"
	"testing/quick"
	"time"
)

func mustAddr(t *testing.T, s string) netip.Addr {
	t.Helper()
	a, err := netip.ParseAddr(s)
	if err != nil {
		t.Fatalf("ParseAddr(%q): %v", s, err)
	}
	return a
}

func sampleRecord(t *testing.T) Record {
	return Record{
		Time:        time.Unix(1700000000, 0).UTC(),
		LocalIP:     mustAddr(t, "10.0.1.4"),
		LocalPort:   443,
		RemoteIP:    mustAddr(t, "10.0.2.9"),
		RemotePort:  49152,
		PacketsSent: 120,
		PacketsRcvd: 80,
		BytesSent:   90000,
		BytesRcvd:   6400,
	}
}

// Generate lets testing/quick build arbitrary valid records.
func (Record) Generate(r *rand.Rand, _ int) reflect.Value {
	addr := func() netip.Addr {
		if r.Intn(4) == 0 {
			var b [16]byte
			r.Read(b[:])
			b[15] |= 1 // never the unspecified address (rejected on decode)
			return netip.AddrFrom16(b)
		}
		var b [4]byte
		r.Read(b[:])
		b[3] |= 1
		return netip.AddrFrom4(b)
	}
	rec := Record{
		Time:        time.Unix(r.Int63n(4e9), 0).UTC(),
		LocalIP:     addr(),
		LocalPort:   uint16(r.Intn(65536)),
		RemoteIP:    addr(),
		RemotePort:  uint16(r.Intn(65536)),
		PacketsSent: uint64(r.Int63()),
		PacketsRcvd: uint64(r.Int63()),
		BytesSent:   uint64(r.Int63()),
		BytesRcvd:   uint64(r.Int63()),
	}
	return reflect.ValueOf(rec)
}

func TestCSVRoundTrip(t *testing.T) {
	want := sampleRecord(t)
	got, err := ParseCSV(want.MarshalCSV())
	if err != nil {
		t.Fatalf("ParseCSV: %v", err)
	}
	if got != want {
		t.Errorf("round trip mismatch:\n got %+v\nwant %+v", got, want)
	}
}

func TestCSVRoundTripQuick(t *testing.T) {
	f := func(r Record) bool {
		got, err := ParseCSV(r.MarshalCSV())
		return err == nil && got == r
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestBinaryRoundTripQuick(t *testing.T) {
	f := func(r Record) bool {
		got, err := DecodeBinary(AppendBinary(nil, r))
		return err == nil && got == r
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestBinaryFrameSize(t *testing.T) {
	b := AppendBinary(nil, sampleRecord(t))
	if len(b) != WireSize {
		t.Errorf("frame size = %d, want WireSize = %d", len(b), WireSize)
	}
}

func TestParseCSVErrors(t *testing.T) {
	cases := []string{
		"",
		"1,2,3",
		"x,10.0.0.1,1,10.0.0.2,2,1,1,1,1",
		"1,notanip,1,10.0.0.2,2,1,1,1,1",
		"1,10.0.0.1,99999,10.0.0.2,2,1,1,1,1",
		"1,10.0.0.1,1,alsobad,2,1,1,1,1",
		"1,10.0.0.1,1,10.0.0.2,2,x,1,1,1",
		"1,10.0.0.1,1,10.0.0.2,2,1,1,1,-5",
	}
	for _, c := range cases {
		if _, err := ParseCSV(c); err == nil {
			t.Errorf("ParseCSV(%q): want error, got nil", c)
		}
	}
}

func TestReverseInvolution(t *testing.T) {
	f := func(r Record) bool { return r.Reverse().Reverse() == r }
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestReverseSwapsCounters(t *testing.T) {
	r := sampleRecord(t)
	rev := r.Reverse()
	if rev.LocalIP != r.RemoteIP || rev.RemoteIP != r.LocalIP {
		t.Error("Reverse did not swap endpoints")
	}
	if rev.BytesSent != r.BytesRcvd || rev.BytesRcvd != r.BytesSent {
		t.Error("Reverse did not swap byte counters")
	}
	if rev.PacketsSent != r.PacketsRcvd || rev.PacketsRcvd != r.PacketsSent {
		t.Error("Reverse did not swap packet counters")
	}
}

func TestKeyDirectionless(t *testing.T) {
	f := func(r Record) bool { return r.Key() == r.Reverse().Key() }
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestWriterReaderStream(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	want := make([]Record, 0, 100)
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 100; i++ {
		r := Record{}.Generate(rng, 0).Interface().(Record)
		want = append(want, r)
		if err := w.Write(r); err != nil {
			t.Fatalf("Write: %v", err)
		}
	}
	if w.Count() != 100 {
		t.Errorf("Count = %d, want 100", w.Count())
	}
	if err := w.Flush(); err != nil {
		t.Fatalf("Flush: %v", err)
	}
	rd := NewReader(&buf)
	for i, wantRec := range want {
		got, err := rd.Read()
		if err != nil {
			t.Fatalf("Read %d: %v", i, err)
		}
		if got != wantRec {
			t.Fatalf("record %d mismatch:\n got %+v\nwant %+v", i, got, wantRec)
		}
	}
	if _, err := rd.Read(); err != io.EOF {
		t.Errorf("after stream: err = %v, want io.EOF", err)
	}
}

func TestReaderTruncated(t *testing.T) {
	b := AppendBinary(nil, sampleRecord(t))
	rd := NewReader(bytes.NewReader(b[:WireSize-3]))
	if _, err := rd.Read(); err != io.ErrUnexpectedEOF {
		t.Errorf("truncated read: err = %v, want io.ErrUnexpectedEOF", err)
	}
}

func TestValid(t *testing.T) {
	if (Record{}).Valid() {
		t.Error("zero record should be invalid")
	}
	if !sampleRecord(t).Valid() {
		t.Error("sample record should be valid")
	}
}

func TestProviderProfiles(t *testing.T) {
	ps := Providers()
	if len(ps) != 3 {
		t.Fatalf("Providers() len = %d, want 3", len(ps))
	}
	if Azure.AggInterval != time.Minute || AWS.AggInterval != time.Minute {
		t.Error("Azure/AWS aggregation interval should be 1 minute (Table 3)")
	}
	if GCP.AggInterval != 5*time.Second {
		t.Error("GCP aggregation interval should be 5s (Table 3)")
	}
	if GCP.PacketSample != 0.03 || GCP.FlowSample != 0.50 {
		t.Error("GCP should sample 3% of packets and 50% of flows (Table 3)")
	}
}

func TestSamplerUnsampledPassthrough(t *testing.T) {
	s := NewSampler(Azure, 1)
	r := sampleRecord(t)
	got, ok := s.Sample(r)
	if !ok || got != r {
		t.Errorf("Azure sampler should pass records through unchanged")
	}
}

func TestSamplerFlowFractionApprox(t *testing.T) {
	s := NewSampler(GCP, 42)
	rng := rand.New(rand.NewSource(99))
	kept := 0
	const n = 5000
	for i := 0; i < n; i++ {
		r := Record{}.Generate(rng, 0).Interface().(Record)
		if _, ok := s.Sample(r); ok {
			kept++
		}
	}
	frac := float64(kept) / n
	if frac < 0.45 || frac > 0.55 {
		t.Errorf("GCP flow sampling kept %.3f of flows, want ~0.50", frac)
	}
}

func TestSamplerDeterministicPerFlow(t *testing.T) {
	s := NewSampler(GCP, 42)
	r := sampleRecord(t)
	_, first := s.Sample(r)
	for i := 0; i < 10; i++ {
		r.BytesSent += 1000 // same flow key, different counters
		if _, ok := s.Sample(r); ok != first {
			t.Fatal("sampling decision changed for the same flow key")
		}
	}
}

func TestSamplerPacketScalingQuantizes(t *testing.T) {
	s := NewSampler(Provider{Name: "x", PacketSample: 0.5, FlowSample: 1}, 1)
	r := sampleRecord(t)
	r.PacketsSent = 101
	got, ok := s.Sample(r)
	if !ok {
		t.Fatal("flow-unsampled provider dropped a record")
	}
	if got.PacketsSent != 100 {
		t.Errorf("PacketsSent = %d, want 100 (quantized to 1/rate)", got.PacketsSent)
	}
}

func TestCollectionCost(t *testing.T) {
	// 1e9/WireSize records is exactly a gigabyte: cost = PricePerGB.
	n := int(1e9) / WireSize
	got := Azure.CollectionCost(n)
	want := float64(n) * WireSize / 1e9 * 0.5
	if got != want {
		t.Errorf("CollectionCost = %v, want %v", got, want)
	}
}

func TestParseCSVIgnoresWhitespace(t *testing.T) {
	r := sampleRecord(t)
	got, err := ParseCSV("  " + r.MarshalCSV() + "\n")
	if err != nil || got != r {
		t.Errorf("ParseCSV with surrounding whitespace failed: %v", err)
	}
}

func TestCSVFieldOrderMatchesTable2(t *testing.T) {
	line := sampleRecord(t).MarshalCSV()
	fields := strings.Split(line, ",")
	if len(fields) != 9 {
		t.Fatalf("got %d fields, want 9", len(fields))
	}
	if fields[1] != "10.0.1.4" || fields[2] != "443" {
		t.Errorf("local endpoint fields out of order: %v", fields[1:3])
	}
	if fields[3] != "10.0.2.9" || fields[4] != "49152" {
		t.Errorf("remote endpoint fields out of order: %v", fields[3:5])
	}
}
