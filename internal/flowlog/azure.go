package flowlog

import (
	"encoding/json"
	"fmt"
	"io"
	"net/netip"
	"strconv"
	"strings"
	"time"
)

// Azure NSG flow log (version 2) ingestion: the concrete format behind the
// Table 3 "NSG Flow Logs" row, so real exports can replay through the same
// pipeline as synthetic telemetry. The format nests flow tuples under
// records → properties → flows (per rule) → flows (per MAC):
//
//	{"records": [{"time": "...", "properties": {"Version": 2, "flows": [
//	  {"rule": "...", "flows": [{"mac": "...", "flowTuples": [
//	    "1542110377,10.0.0.4,13.67.143.118,44931,443,T,O,A,B,,,,",
//	    "1542110437,10.0.0.4,13.67.143.118,44931,443,T,O,A,C,25,4096,12,2500"
//	  ]}]}]}}]}
//
// A version-2 tuple is: unix time, src IP, dst IP, src port, dst port,
// protocol (T/U), direction (I = into the NIC's VM, O = out of it), action
// (A/D), flow state (B begin, C continuing, E end) and, for C/E tuples,
// packets src→dst, bytes src→dst, packets dst→src, bytes dst→src.

// nsgEnvelope mirrors the JSON structure (fields we consume only).
type nsgEnvelope struct {
	Records []struct {
		Time       string `json:"time"`
		Properties struct {
			Version int `json:"Version"`
			Flows   []struct {
				Rule  string `json:"rule"`
				Flows []struct {
					Mac        string   `json:"mac"`
					FlowTuples []string `json:"flowTuples"`
				} `json:"flows"`
			} `json:"flows"`
		} `json:"properties"`
	} `json:"records"`
}

// ParseAzureNSG decodes a version-2 NSG flow log export into connection
// summaries. Tuples without counters (state B, or denied flows) produce no
// record — they carry no traffic. Denied (action D) tuples are skipped;
// the paper's telemetry summarizes traffic that flowed.
func ParseAzureNSG(r io.Reader) ([]Record, error) {
	var env nsgEnvelope
	dec := json.NewDecoder(r)
	if err := dec.Decode(&env); err != nil {
		return nil, fmt.Errorf("flowlog: decoding NSG log: %w", err)
	}
	var out []Record
	for ri := range env.Records {
		rec := &env.Records[ri]
		if v := rec.Properties.Version; v != 0 && v != 2 {
			return nil, fmt.Errorf("flowlog: unsupported NSG flow log version %d", v)
		}
		for _, rule := range rec.Properties.Flows {
			for _, mac := range rule.Flows {
				for _, tuple := range mac.FlowTuples {
					fr, ok, err := parseNSGTuple(tuple)
					if err != nil {
						return nil, fmt.Errorf("flowlog: tuple %q: %w", tuple, err)
					}
					if ok {
						out = append(out, fr)
					}
				}
			}
		}
	}
	return out, nil
}

// parseNSGTuple converts one version-2 tuple. ok is false for tuples that
// legitimately carry no summary (begin-state, denied).
func parseNSGTuple(tuple string) (Record, bool, error) {
	var r Record
	f := strings.Split(tuple, ",")
	if len(f) != 13 && len(f) != 9 {
		return r, false, fmt.Errorf("want 9 or 13 fields, got %d", len(f))
	}
	sec, err := strconv.ParseInt(f[0], 10, 64)
	if err != nil {
		return r, false, fmt.Errorf("time: %v", err)
	}
	srcIP, err := netip.ParseAddr(f[1])
	if err != nil {
		return r, false, fmt.Errorf("src ip: %v", err)
	}
	dstIP, err := netip.ParseAddr(f[2])
	if err != nil {
		return r, false, fmt.Errorf("dst ip: %v", err)
	}
	srcPort, err := strconv.ParseUint(f[3], 10, 16)
	if err != nil {
		return r, false, fmt.Errorf("src port: %v", err)
	}
	dstPort, err := strconv.ParseUint(f[4], 10, 16)
	if err != nil {
		return r, false, fmt.Errorf("dst port: %v", err)
	}
	direction, action := f[6], f[7]
	if action == "D" {
		return r, false, nil // denied: no traffic to summarize
	}
	if len(f) == 9 || f[9] == "" {
		return r, false, nil // begin-state tuple: counters absent
	}
	var counters [4]uint64
	for i := 0; i < 4; i++ {
		if f[9+i] == "" {
			counters[i] = 0
			continue
		}
		v, err := strconv.ParseUint(f[9+i], 10, 64)
		if err != nil {
			return r, false, fmt.Errorf("counter %d: %v", i, err)
		}
		counters[i] = v
	}

	r.Time = time.Unix(sec, 0).UTC()
	// Orient to the monitored VM: for Outbound tuples the source is the
	// VM; for Inbound the destination is.
	switch direction {
	case "O":
		r.LocalIP, r.LocalPort = srcIP, uint16(srcPort)
		r.RemoteIP, r.RemotePort = dstIP, uint16(dstPort)
		r.PacketsSent, r.BytesSent = counters[0], counters[1]
		r.PacketsRcvd, r.BytesRcvd = counters[2], counters[3]
	case "I":
		r.LocalIP, r.LocalPort = dstIP, uint16(dstPort)
		r.RemoteIP, r.RemotePort = srcIP, uint16(srcPort)
		// src→dst flows *into* the VM: received from its perspective.
		r.PacketsRcvd, r.BytesRcvd = counters[0], counters[1]
		r.PacketsSent, r.BytesSent = counters[2], counters[3]
	default:
		return r, false, fmt.Errorf("direction %q", direction)
	}
	return r, true, nil
}

// AppendAzureNSG renders records as a version-2 NSG flow log export, the
// inverse of ParseAzureNSG (all under one synthetic rule and MAC). Useful
// for integration tests and for feeding tools that expect the cloud format.
func AppendAzureNSG(records []Record) ([]byte, error) {
	tuples := make([]string, 0, len(records))
	for _, r := range records {
		tuples = append(tuples, fmt.Sprintf("%d,%s,%s,%d,%d,T,O,A,E,%d,%d,%d,%d",
			r.Time.Unix(), r.LocalIP, r.RemoteIP, r.LocalPort, r.RemotePort,
			r.PacketsSent, r.BytesSent, r.PacketsRcvd, r.BytesRcvd))
	}
	env := map[string]any{
		"records": []map[string]any{{
			"time": time.Unix(0, 0).UTC().Format(time.RFC3339),
			"properties": map[string]any{
				"Version": 2,
				"flows": []map[string]any{{
					"rule": "cloudgraph-export",
					"flows": []map[string]any{{
						"mac":        "000D3AF87856",
						"flowTuples": tuples,
					}},
				}},
			},
		}},
	}
	return json.Marshal(env)
}
