package flowlog

import (
	"bytes"
	"io"
	"math/rand"
	"net/netip"
	"testing"
	"time"
)

// reuseRecords builds n distinct valid records.
func reuseRecords(n int) []Record {
	rng := rand.New(rand.NewSource(11))
	recs := make([]Record, n)
	for i := range recs {
		recs[i] = Record{
			Time:        time.Unix(1700000000+int64(i), 0).UTC(),
			LocalIP:     netip.AddrFrom4([4]byte{10, 0, byte(i >> 8), byte(1 + i%250)}),
			LocalPort:   uint16(1024 + i),
			RemoteIP:    netip.AddrFrom4([4]byte{10, 1, byte(rng.Intn(4)), byte(1 + rng.Intn(250))}),
			RemotePort:  443,
			PacketsSent: uint64(rng.Intn(1000)),
			PacketsRcvd: uint64(rng.Intn(1000)),
			BytesSent:   uint64(rng.Intn(1 << 20)),
			BytesRcvd:   uint64(rng.Intn(1 << 20)),
		}
	}
	return recs
}

func encodeAll(recs []Record) []byte {
	var wire []byte
	for _, r := range recs {
		wire = AppendBinary(wire, r)
	}
	return wire
}

// TestReadBatchReuseNoAliasing is the reuse contract: records decoded into a
// buffer on an earlier ReadBatch call, then copied out, must be unaffected
// by later decodes into the same buffer. Run under -race in CI.
func TestReadBatchReuseNoAliasing(t *testing.T) {
	recs := reuseRecords(64)
	r := NewReader(bytes.NewReader(encodeAll(recs)))
	buf := make([]Record, 8) // reused across all batches
	var copies []Record
	var got int
	for {
		n, err := r.ReadBatch(buf)
		copies = append(copies, buf[:n]...) // copy out before reuse
		got += n
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatalf("ReadBatch: %v", err)
		}
		// Scribble over the buffer before the next decode: if anything
		// copied out aliases it, the scribble shows up in copies.
		for i := range buf {
			buf[i] = Record{LocalIP: netip.MustParseAddr("255.255.255.255")}
		}
	}
	if got != len(recs) {
		t.Fatalf("decoded %d records, want %d", got, len(recs))
	}
	for i, c := range copies {
		if c != recs[i] {
			t.Fatalf("record %d corrupted by buffer reuse: %+v != %+v", i, c, recs[i])
		}
	}
}

// TestDecodeBinaryIntoErrorZeroes pins that a failed decode cannot leak a
// half-decoded frame into a reused slot.
func TestDecodeBinaryIntoErrorZeroes(t *testing.T) {
	var r Record
	if err := DecodeBinaryInto(&r, encodeAll(reuseRecords(1))); err != nil {
		t.Fatal(err)
	}
	if err := DecodeBinaryInto(&r, make([]byte, WireSize)); err == nil {
		t.Fatal("all-zero frame decoded")
	}
	if r != (Record{}) {
		t.Fatalf("failed decode left stale fields in reused record: %+v", r)
	}
	if err := DecodeBinaryInto(&r, []byte{1, 2, 3}); err == nil {
		t.Fatal("short frame decoded")
	}
	if r != (Record{}) {
		t.Fatalf("short frame left stale fields: %+v", r)
	}
}

// TestBatchDecodeZeroAlloc pins the tentpole's allocation claim:
// steady-state batch decode — ReadBatch into a reused buffer, and the raw
// DecodeBinaryInto — performs zero heap allocations per run. A regression
// here silently reintroduces per-record garbage on the INGEST hot path, so
// this gate fails the build rather than just skewing a benchmark.
func TestBatchDecodeZeroAlloc(t *testing.T) {
	recs := reuseRecords(256)
	wire := encodeAll(recs)
	src := bytes.NewReader(wire)
	r := NewReader(src)
	buf := make([]Record, 64)

	if avg := testing.AllocsPerRun(50, func() {
		src.Reset(wire)
		r.Reset(src)
		for {
			_, err := r.ReadBatch(buf)
			if err != nil {
				break
			}
		}
	}); avg != 0 {
		t.Fatalf("ReadBatch allocates %.1f times per stream, want 0", avg)
	}

	frame := wire[:WireSize]
	var rec Record
	if avg := testing.AllocsPerRun(1000, func() {
		if err := DecodeBinaryInto(&rec, frame); err != nil {
			t.Fatal(err)
		}
	}); avg != 0 {
		t.Fatalf("DecodeBinaryInto allocates %.1f times per frame, want 0", avg)
	}
}

// FuzzDecodeBinaryReuse feeds arbitrary frames through the into-style
// decoder twice over one reused record and checks it agrees byte for byte
// with the value-returning decoder, including the zero-on-error contract.
func FuzzDecodeBinaryReuse(f *testing.F) {
	f.Add(encodeAll(reuseRecords(1)), []byte{})
	f.Add(make([]byte, WireSize), encodeAll(reuseRecords(2)))
	f.Add([]byte{1, 2, 3}, []byte(nil))
	f.Fuzz(func(t *testing.T, a, b []byte) {
		var r Record
		for _, frame := range [][]byte{a, b} {
			want, wantErr := DecodeBinary(frame)
			gotErr := DecodeBinaryInto(&r, frame)
			if (wantErr == nil) != (gotErr == nil) {
				t.Fatalf("decoder disagreement: %v vs %v", wantErr, gotErr)
			}
			if r != want {
				t.Fatalf("reused decode diverged: %+v vs %+v", r, want)
			}
		}
	})
}
