package flowlog

import "time"

// Provider describes how one public cloud exposes connection summaries:
// Table 3 of the paper. AggInterval is the summarization period;
// PacketSample and FlowSample are the fractions of packets and flows that
// survive provider-side sampling (1.0 = unsampled); PricePerGB is the
// collection cost used for COGS accounting.
type Provider struct {
	Name         string
	LogName      string
	AggInterval  time.Duration
	PacketSample float64
	FlowSample   float64
	PricePerGB   float64
}

// The three provider profiles from Table 3. GCP samples 3% of packets within
// 50% of flows; Azure and AWS emit unsampled one-minute summaries. All three
// charge on the order of $0.5/GB collected.
var (
	Azure = Provider{Name: "Azure", LogName: "NSG Flow Logs", AggInterval: time.Minute, PacketSample: 1, FlowSample: 1, PricePerGB: 0.5}
	AWS   = Provider{Name: "AWS", LogName: "VPC Flow Logs", AggInterval: time.Minute, PacketSample: 1, FlowSample: 1, PricePerGB: 0.5}
	GCP   = Provider{Name: "GCP", LogName: "VPC Flow Logs", AggInterval: 5 * time.Second, PacketSample: 0.03, FlowSample: 0.50, PricePerGB: 0.5}
)

// Providers lists the Table 3 profiles in paper order.
func Providers() []Provider { return []Provider{Azure, AWS, GCP} }

// Sampler applies a provider's sampling policy to a record stream. Flow
// selection is deterministic per flow key (a sampled flow stays sampled for
// its lifetime, as providers do), and packet sampling scales the counters by
// the sampling rate, mimicking count estimation from sampled packets.
type Sampler struct {
	p    Provider
	seed uint64
}

// NewSampler returns a sampler for provider p. seed varies which flows are
// selected; the same seed always selects the same flows, so experiments are
// reproducible across processes.
func NewSampler(p Provider, seed uint64) *Sampler {
	return &Sampler{p: p, seed: seed}
}

// fnv64 hashes the flow key with the sampler's seed using FNV-1a, which is
// deterministic across processes (unlike hash/maphash seeds).
func fnv64(k FlowKey, seed uint64) uint64 {
	const (
		offset = 14695981039346656037
		prime  = 1099511628211
	)
	h := uint64(offset) ^ seed
	mix := func(b []byte) {
		for _, c := range b {
			h ^= uint64(c)
			h *= prime
		}
	}
	a16 := k.A.Addr().As16()
	b16 := k.B.Addr().As16()
	mix(a16[:])
	mix(b16[:])
	mix([]byte{byte(k.A.Port()), byte(k.A.Port() >> 8), byte(k.B.Port()), byte(k.B.Port() >> 8)})
	return h
}

// Sample applies the provider policy to one record. The boolean reports
// whether the record survives flow sampling; when it does, the returned
// record has its packet and byte counters scaled down by the packet sampling
// rate and then re-inflated, modelling the estimate a provider publishes
// from sampled packets (so totals remain comparable, but per-record values
// quantize).
func (s *Sampler) Sample(r Record) (Record, bool) {
	if s.p.FlowSample < 1 {
		h := fnv64(r.Key(), s.seed)
		// Keep the flow if its hash falls below the sampling fraction.
		if float64(h>>11)/float64(1<<53) >= s.p.FlowSample {
			return Record{}, false
		}
	}
	if s.p.PacketSample < 1 {
		r.PacketsSent = inflate(r.PacketsSent, s.p.PacketSample)
		r.PacketsRcvd = inflate(r.PacketsRcvd, s.p.PacketSample)
		r.BytesSent = inflate(r.BytesSent, s.p.PacketSample)
		r.BytesRcvd = inflate(r.BytesRcvd, s.p.PacketSample)
	}
	return r, true
}

// inflate simulates sampling v at rate p and scaling the observed count back
// up: the result is v quantized to multiples of 1/p, which is what a
// sampling provider reports.
func inflate(v uint64, p float64) uint64 {
	sampled := uint64(float64(v) * p)
	return uint64(float64(sampled) / p)
}

// CollectionCost returns the provider's charge in dollars for n records.
func (p Provider) CollectionCost(n int) float64 {
	gb := float64(n) * WireSize / 1e9
	return gb * p.PricePerGB
}
