package flowlog

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
)

// Binary wire format: fixed 76-byte little-endian frames so a stream can be
// read without per-record framing overhead. Layout:
//
//	0   int64   unix seconds
//	8   [16]b   local IP (IPv4 stored as v4-mapped v6)
//	24  uint16  local port
//	26  [16]b   remote IP
//	42  uint16  remote port
//	44  uint64  packets sent
//	52  uint64  packets received
//	60  uint64  bytes sent
//	68  uint64  bytes received
//
// Total = 76 bytes = WireSize.

// AppendBinary appends the fixed binary encoding of r to dst and returns the
// extended slice. It never fails for a Valid record.
//
//wire:codec Record
func AppendBinary(dst []byte, r Record) []byte {
	var buf [WireSize]byte
	binary.LittleEndian.PutUint64(buf[0:], uint64(r.Time.Unix()))
	a16 := r.LocalIP.As16()
	copy(buf[8:], a16[:])
	binary.LittleEndian.PutUint16(buf[24:], r.LocalPort)
	b16 := r.RemoteIP.As16()
	copy(buf[26:], b16[:])
	binary.LittleEndian.PutUint16(buf[42:], r.RemotePort)
	binary.LittleEndian.PutUint64(buf[44:], r.PacketsSent)
	binary.LittleEndian.PutUint64(buf[52:], r.PacketsRcvd)
	binary.LittleEndian.PutUint64(buf[60:], r.BytesSent)
	binary.LittleEndian.PutUint64(buf[68:], r.BytesRcvd)
	return append(dst, buf[:]...)
}

// DecodeBinary decodes one fixed-size frame from b. It returns ErrBadRecord
// if b is shorter than WireSize or the frame does not hold a plausible
// record: a real connection summary always names two specific endpoints,
// so an unspecified (all-zero) address means the frame is garbage — e.g. a
// stream that lost alignment. Field coverage lives in DecodeBinaryInto,
// which this wraps.
func DecodeBinary(b []byte) (Record, error) {
	var r Record
	err := DecodeBinaryInto(&r, b)
	return r, err
}

// DecodeBinaryInto decodes one fixed-size frame from b into *r, the
// allocation-free form of DecodeBinary the batch paths use: the caller owns
// r (typically one slot of a reused batch buffer) and may recycle it for the
// next frame. Every field of r is overwritten — nothing decoded earlier can
// alias through, because a Record holds only value types (netip.Addr,
// time.Time, integers). On error r is zeroed so a half-decoded frame can
// never leak into a reused buffer.
//
//wire:codec Record
//vet:borrowed r b
func DecodeBinaryInto(r *Record, b []byte) error {
	if len(b) < WireSize {
		*r = Record{}
		return fmt.Errorf("%w: short frame: %d bytes", ErrBadRecord, len(b))
	}
	r.Time = unixTime(int64(binary.LittleEndian.Uint64(b[0:])))
	r.LocalIP = addrFrom16(b[8:24])
	r.LocalPort = binary.LittleEndian.Uint16(b[24:])
	r.RemoteIP = addrFrom16(b[26:42])
	r.RemotePort = binary.LittleEndian.Uint16(b[42:])
	r.PacketsSent = binary.LittleEndian.Uint64(b[44:])
	r.PacketsRcvd = binary.LittleEndian.Uint64(b[52:])
	r.BytesSent = binary.LittleEndian.Uint64(b[60:])
	r.BytesRcvd = binary.LittleEndian.Uint64(b[68:])
	if r.LocalIP.IsUnspecified() || r.RemoteIP.IsUnspecified() {
		*r = Record{}
		return fmt.Errorf("%w: unspecified address", ErrBadRecord)
	}
	return nil
}

// Writer streams records in the binary wire format onto an io.Writer,
// buffering internally. Call Flush before relying on the output.
type Writer struct {
	w   *bufio.Writer
	buf []byte
	n   int
}

// NewWriter returns a Writer emitting onto w.
func NewWriter(w io.Writer) *Writer {
	return &Writer{w: bufio.NewWriterSize(w, 64<<10), buf: make([]byte, 0, WireSize)}
}

// Write encodes and buffers one record.
func (w *Writer) Write(r Record) error {
	w.buf = AppendBinary(w.buf[:0], r)
	if _, err := w.w.Write(w.buf); err != nil {
		return err
	}
	w.n++
	return nil
}

// Count returns the number of records written so far.
func (w *Writer) Count() int { return w.n }

// Flush flushes buffered frames to the underlying writer.
func (w *Writer) Flush() error { return w.w.Flush() }

// Reader streams records in the binary wire format from an io.Reader.
type Reader struct {
	r   *bufio.Reader
	buf [WireSize]byte
}

// NewReader returns a Reader consuming from r.
func NewReader(r io.Reader) *Reader {
	return &Reader{r: bufio.NewReaderSize(r, 64<<10)}
}

// Read decodes the next record. It returns io.EOF at a clean end of stream
// and io.ErrUnexpectedEOF on a truncated frame.
func (r *Reader) Read() (Record, error) {
	if _, err := io.ReadFull(r.r, r.buf[:]); err != nil {
		if err == io.EOF {
			return Record{}, io.EOF
		}
		return Record{}, io.ErrUnexpectedEOF
	}
	return DecodeBinary(r.buf[:])
}

// ReadBatch decodes up to len(dst) records into the caller-owned dst and
// returns how many slots it filled. It allocates nothing: frames decode in
// place into dst's slots via DecodeBinaryInto, so the caller reuses one
// batch buffer across calls (records from earlier calls must not be
// retained across reuse; copy any that are). A clean end of stream before
// the first frame returns (n, io.EOF) with n possibly positive; a truncated
// frame returns io.ErrUnexpectedEOF; a garbage frame returns ErrBadRecord
// with the preceding good records counted in n.
//
//vet:borrowed dst
func (r *Reader) ReadBatch(dst []Record) (int, error) {
	for n := range dst {
		if _, err := io.ReadFull(r.r, r.buf[:]); err != nil {
			if err == io.EOF {
				return n, io.EOF
			}
			return n, io.ErrUnexpectedEOF
		}
		if err := DecodeBinaryInto(&dst[n], r.buf[:]); err != nil {
			return n, err
		}
	}
	return len(dst), nil
}

// Reset redirects the Reader to a new stream, reusing its buffer — the
// per-connection pooling hook for servers.
func (r *Reader) Reset(rd io.Reader) { r.r.Reset(rd) }
