package flowlog

import (
	"net/netip"
	"time"
)

// addrFrom16 reconstructs an address from its 16-byte form, unmapping
// v4-mapped-v6 back to a plain IPv4 address so that round-tripped addresses
// compare equal to the originals.
func addrFrom16(b []byte) netip.Addr {
	var a16 [16]byte
	copy(a16[:], b)
	return netip.AddrFrom16(a16).Unmap()
}

// unixTime converts Unix seconds to a UTC time.Time.
func unixTime(sec int64) time.Time { return time.Unix(sec, 0).UTC() }
