// Package flowlog defines the connection-summary telemetry record that the
// whole system consumes, mirroring Table 2 of the paper: periodic per-VM
// summaries of every flow that enters or leaves the VM, with packet and byte
// counters in both directions.
//
// A Record is the log line a single monitored VM (more precisely, the
// smartNIC or virtual switch attached to its host) emits for one flow during
// one aggregation interval. Flows between two monitored VMs therefore appear
// twice in the stream — once from each side, with Local and Remote swapped —
// and downstream consumers deduplicate (see internal/ingest).
package flowlog

import (
	"errors"
	"fmt"
	"net/netip"
	"strconv"
	"strings"
	"time"
)

// Record is one connection summary: the Table 2 schema.
//
// Time is the start of the aggregation interval. Local identifies the
// monitored endpoint (the VM whose NIC produced the record); Remote is the
// peer, which may or may not be monitored. Counters are from the local
// endpoint's perspective: PacketsSent/BytesSent left the local VM,
// PacketsRcvd/BytesRcvd arrived at it.
//
// Record is a wire type: its fields cross process boundaries through the
// CSV and binary codecs, so construction must use keyed literals and every
// codec must handle every field (enforced by cloudgraph-vet's wirestruct
// analyzer).
//
//wire:schema
type Record struct {
	Time        time.Time
	LocalIP     netip.Addr
	LocalPort   uint16
	RemoteIP    netip.Addr
	RemotePort  uint16
	PacketsSent uint64
	PacketsRcvd uint64
	BytesSent   uint64
	BytesRcvd   uint64
}

// Valid reports whether the record is well-formed: both addresses must be
// valid and the timestamp non-zero.
func (r Record) Valid() bool {
	return r.LocalIP.IsValid() && r.RemoteIP.IsValid() && !r.Time.IsZero()
}

// Reverse returns the record as the remote side would have logged it, with
// the endpoints and the directional counters swapped. This is how the second
// copy of an intra-subscription flow appears in the stream.
func (r Record) Reverse() Record {
	return Record{
		Time:        r.Time,
		LocalIP:     r.RemoteIP,
		LocalPort:   r.RemotePort,
		RemoteIP:    r.LocalIP,
		RemotePort:  r.LocalPort,
		PacketsSent: r.PacketsRcvd,
		PacketsRcvd: r.PacketsSent,
		BytesSent:   r.BytesRcvd,
		BytesRcvd:   r.BytesSent,
	}
}

// TotalBytes returns the bytes exchanged in both directions.
func (r Record) TotalBytes() uint64 { return r.BytesSent + r.BytesRcvd }

// TotalPackets returns the packets exchanged in both directions.
func (r Record) TotalPackets() uint64 { return r.PacketsSent + r.PacketsRcvd }

// FlowKey identifies the flow a record summarizes, directionless: the lower
// endpoint sorts first so the key is identical regardless of which side
// logged the flow. It is comparable and suitable as a map key.
type FlowKey struct {
	A, B netip.AddrPort
}

// Key returns the directionless FlowKey for the record.
func (r Record) Key() FlowKey {
	a := netip.AddrPortFrom(r.LocalIP, r.LocalPort)
	b := netip.AddrPortFrom(r.RemoteIP, r.RemotePort)
	if b.Compare(a) < 0 {
		a, b = b, a
	}
	return FlowKey{A: a, B: b}
}

// MarshalCSV renders the record as one comma-separated line without a
// trailing newline, fields in Table 2 order:
//
//	time,localIP,localPort,remoteIP,remotePort,pktsSent,pktsRcvd,bytesSent,bytesRcvd
//
// Time is formatted as Unix seconds to keep lines compact and parseable
// across providers.
//
//wire:codec Record
func (r Record) MarshalCSV() string {
	var b strings.Builder
	b.Grow(96)
	b.WriteString(strconv.FormatInt(r.Time.Unix(), 10))
	b.WriteByte(',')
	b.WriteString(r.LocalIP.String())
	b.WriteByte(',')
	b.WriteString(strconv.FormatUint(uint64(r.LocalPort), 10))
	b.WriteByte(',')
	b.WriteString(r.RemoteIP.String())
	b.WriteByte(',')
	b.WriteString(strconv.FormatUint(uint64(r.RemotePort), 10))
	b.WriteByte(',')
	b.WriteString(strconv.FormatUint(r.PacketsSent, 10))
	b.WriteByte(',')
	b.WriteString(strconv.FormatUint(r.PacketsRcvd, 10))
	b.WriteByte(',')
	b.WriteString(strconv.FormatUint(r.BytesSent, 10))
	b.WriteByte(',')
	b.WriteString(strconv.FormatUint(r.BytesRcvd, 10))
	return b.String()
}

// ErrBadRecord is returned by ParseCSV for malformed lines.
var ErrBadRecord = errors.New("flowlog: malformed record")

// ParseCSV parses a line produced by MarshalCSV.
//
//wire:codec Record
func ParseCSV(line string) (Record, error) {
	var r Record
	fields := strings.Split(strings.TrimSpace(line), ",")
	if len(fields) != 9 {
		return r, fmt.Errorf("%w: want 9 fields, got %d", ErrBadRecord, len(fields))
	}
	sec, err := strconv.ParseInt(fields[0], 10, 64)
	if err != nil {
		return r, fmt.Errorf("%w: time: %v", ErrBadRecord, err)
	}
	r.Time = time.Unix(sec, 0).UTC()
	if r.LocalIP, err = netip.ParseAddr(fields[1]); err != nil {
		return r, fmt.Errorf("%w: local ip: %v", ErrBadRecord, err)
	}
	lp, err := strconv.ParseUint(fields[2], 10, 16)
	if err != nil {
		return r, fmt.Errorf("%w: local port: %v", ErrBadRecord, err)
	}
	r.LocalPort = uint16(lp)
	if r.RemoteIP, err = netip.ParseAddr(fields[3]); err != nil {
		return r, fmt.Errorf("%w: remote ip: %v", ErrBadRecord, err)
	}
	rp, err := strconv.ParseUint(fields[4], 10, 16)
	if err != nil {
		return r, fmt.Errorf("%w: remote port: %v", ErrBadRecord, err)
	}
	r.RemotePort = uint16(rp)
	counters := [...]*uint64{&r.PacketsSent, &r.PacketsRcvd, &r.BytesSent, &r.BytesRcvd}
	for i, p := range counters {
		v, err := strconv.ParseUint(fields[5+i], 10, 64)
		if err != nil {
			return r, fmt.Errorf("%w: counter %d: %v", ErrBadRecord, i, err)
		}
		*p = v
	}
	return r, nil
}

// WireSize is the approximate on-the-wire size of one record in bytes, used
// for telemetry-cost (COGS) accounting. It matches the fixed binary encoding
// in codec.go.
const WireSize = 8 + 16 + 2 + 16 + 2 + 8*4
