package counterfactual

import (
	"math"
	"net/netip"
	"testing"
	"time"

	"cloudgraph/internal/flowlog"
	"cloudgraph/internal/graph"
)

var (
	a  = netip.MustParseAddr("10.0.0.1")
	b  = netip.MustParseAddr("10.0.0.2")
	t0 = time.Unix(1700000000, 0).UTC().Truncate(time.Minute)
)

func TestDistQuantiles(t *testing.T) {
	var d Dist
	for i := 1; i <= 100; i++ {
		d.Add(float64(i))
	}
	if d.N() != 100 || d.Mean() != 50.5 {
		t.Errorf("N=%d mean=%v", d.N(), d.Mean())
	}
	if q := d.Quantile(0.5); q != 50 {
		t.Errorf("p50 = %v", q)
	}
	if q := d.Quantile(0.99); q != 99 {
		t.Errorf("p99 = %v", q)
	}
	if q := d.Quantile(0); q != 1 {
		t.Errorf("p0 = %v", q)
	}
	if q := d.Quantile(1); q != 100 {
		t.Errorf("p100 = %v", q)
	}
}

func TestDistEmpty(t *testing.T) {
	var d Dist
	if d.Mean() != 0 || d.Quantile(0.5) != 0 || d.N() != 0 {
		t.Error("empty dist should be zeros")
	}
}

func TestFlowSizesAggregatesByKey(t *testing.T) {
	r1 := flowlog.Record{Time: t0, LocalIP: a, LocalPort: 1, RemoteIP: b, RemotePort: 2, BytesSent: 100, BytesRcvd: 50}
	r2 := r1
	r2.Time = t0.Add(time.Minute) // same flow, next interval
	r3 := flowlog.Record{Time: t0, LocalIP: a, LocalPort: 9, RemoteIP: b, RemotePort: 2, BytesSent: 1000}
	d := FlowSizes([]flowlog.Record{r1, r2, r3})
	if d.N() != 2 {
		t.Fatalf("flows = %d, want 2", d.N())
	}
	if d.Quantile(1) != 1000 || d.Quantile(0) != 300 {
		t.Errorf("sizes = [%v, %v]", d.Quantile(0), d.Quantile(1))
	}
}

func TestInterArrivalsQuantized(t *testing.T) {
	mk := func(port uint16, at time.Time) flowlog.Record {
		return flowlog.Record{Time: at, LocalIP: a, LocalPort: port, RemoteIP: b, RemotePort: 2, BytesSent: 1}
	}
	recs := []flowlog.Record{
		mk(1, t0),
		mk(2, t0.Add(time.Minute)),
		mk(3, t0.Add(3*time.Minute)),
		mk(1, t0.Add(5*time.Minute)), // not a new arrival
	}
	d := InterArrivals(recs, time.Minute)
	if d.N() != 2 {
		t.Fatalf("gaps = %d, want 2", d.N())
	}
	if d.Quantile(0) != 60 || d.Quantile(1) != 120 {
		t.Errorf("gaps = [%v, %v]", d.Quantile(0), d.Quantile(1))
	}
}

func TestFCTModel(t *testing.T) {
	m := FCTModel{CapacityBps: 1000, Rho: 0}
	if got := m.FCT(2000); got != 2*time.Second {
		t.Errorf("idle FCT = %v, want 2s", got)
	}
	loaded := FCTModel{CapacityBps: 1000, Rho: 0.5}
	if got := loaded.FCT(2000); got != 4*time.Second {
		t.Errorf("loaded FCT = %v, want 4s (2x slowdown)", got)
	}
	if s := loaded.Slowdown(); s != 2 {
		t.Errorf("slowdown = %v", s)
	}
	if s := (FCTModel{Rho: 1}).Slowdown(); !math.IsInf(s, 1) {
		t.Errorf("saturated slowdown = %v", s)
	}
	if d := (FCTModel{}).FCT(10); d != time.Duration(math.MaxInt64) {
		t.Errorf("zero capacity FCT = %v", d)
	}
}

func TestFCTQuantiles(t *testing.T) {
	var sizes Dist
	sizes.Add(1000)
	sizes.Add(2000)
	sizes.Add(4000)
	m := FCTModel{CapacityBps: 1000}
	fcts := m.FCTQuantiles(&sizes, []float64{0, 1})
	if fcts[0] != time.Second || fcts[1] != 4*time.Second {
		t.Errorf("FCT quantiles = %v", fcts)
	}
}

func loadedGraph() *graph.Graph {
	g := graph.New(graph.FacetIP)
	g.Start = t0
	g.End = t0.Add(time.Hour)
	hot := graph.IPNode(a)
	g.AddEdge(hot, graph.IPNode(b), graph.Counters{Bytes: 60_000_000}) // 1MB/min
	g.AddEdge(hot, graph.IPNode(netip.MustParseAddr("10.0.0.3")), graph.Counters{Bytes: 6_000_000})
	g.AddEdge(graph.IPNode(netip.MustParseAddr("10.0.0.4")), graph.IPNode(netip.MustParseAddr("10.0.0.5")), graph.Counters{Bytes: 600_000})
	return g
}

func TestBottlenecksRanking(t *testing.T) {
	g := loadedGraph()
	loads := Bottlenecks(g, 2_000_000) // 2MB/min capacity
	if loads[0].Node != graph.IPNode(a) {
		t.Fatalf("hottest node = %v, want %v", loads[0].Node, a)
	}
	// a: 66MB over 60 min = 1.1MB/min, util 0.55.
	if math.Abs(loads[0].BytesPerMin-1_100_000) > 1 {
		t.Errorf("BytesPerMin = %v", loads[0].BytesPerMin)
	}
	if math.Abs(loads[0].Utilization-0.55) > 1e-9 {
		t.Errorf("Utilization = %v", loads[0].Utilization)
	}
	for i := 1; i < len(loads); i++ {
		if loads[i].BytesPerMin > loads[i-1].BytesPerMin {
			t.Fatal("loads not sorted")
		}
	}
}

func TestPlanCapacity(t *testing.T) {
	g := loadedGraph()
	plan := PlanCapacity(g, 2_000_000, 0.52, 2)
	if len(plan.Upgrades) != 1 || plan.Upgrades[0].Node != graph.IPNode(a) {
		t.Errorf("upgrades = %+v, want just the hot node", plan.Upgrades)
	}
	if len(plan.Proximity) != 2 {
		t.Fatalf("proximity = %d pairs", len(plan.Proximity))
	}
	if plan.Proximity[0].Bytes != 60_000_000 {
		t.Errorf("heaviest pair bytes = %d", plan.Proximity[0].Bytes)
	}
}

func TestBottlenecksDefaultWindow(t *testing.T) {
	g := graph.New(graph.FacetIP) // zero Start/End: assumes an hour
	g.AddEdge(graph.IPNode(a), graph.IPNode(b), graph.Counters{Bytes: 60})
	loads := Bottlenecks(g, 0)
	if loads[0].BytesPerMin != 1 {
		t.Errorf("BytesPerMin = %v, want 1 (60 bytes / 60 min)", loads[0].BytesPerMin)
	}
	if loads[0].Utilization != 0 {
		t.Errorf("utilization without capacity = %v, want 0", loads[0].Utilization)
	}
}
