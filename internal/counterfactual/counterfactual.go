// Package counterfactual implements the §2.3 analyses: connection summaries
// converted into flow-size and inter-arrival distributions (quantized to
// the summary frequency), a flow-completion-time model in the spirit of the
// paper's reference [71] that answers "what if" questions about load, and a
// capacity planner that finds communication bottlenecks and recommends SKU
// upgrades or proximity placement.
package counterfactual

import (
	"math"
	"sort"
	"time"

	"cloudgraph/internal/flowlog"
	"cloudgraph/internal/graph"
)

// Dist is an empirical distribution.
type Dist struct {
	xs     []float64
	sorted bool
}

// Add appends an observation.
func (d *Dist) Add(v float64) {
	d.xs = append(d.xs, v)
	d.sorted = false
}

// N returns the number of observations.
func (d *Dist) N() int { return len(d.xs) }

// Mean returns the average, or 0 when empty.
func (d *Dist) Mean() float64 {
	if len(d.xs) == 0 {
		return 0
	}
	var s float64
	for _, x := range d.xs {
		s += x
	}
	return s / float64(len(d.xs))
}

// Quantile returns the p-quantile (0<=p<=1) by nearest-rank, or 0 when
// empty.
func (d *Dist) Quantile(p float64) float64 {
	if len(d.xs) == 0 {
		return 0
	}
	if !d.sorted {
		sort.Float64s(d.xs)
		d.sorted = true
	}
	if p <= 0 {
		return d.xs[0]
	}
	if p >= 1 {
		return d.xs[len(d.xs)-1]
	}
	i := int(math.Ceil(p*float64(len(d.xs)))) - 1
	if i < 0 {
		i = 0
	}
	return d.xs[i]
}

// Sample returns the i-th smallest observation (for iterating the CDF).
func (d *Dist) Sample(i int) float64 {
	if !d.sorted {
		sort.Float64s(d.xs)
		d.sorted = true
	}
	return d.xs[i]
}

// FlowSizes aggregates records by flow key and returns the distribution of
// total bytes per flow.
func FlowSizes(recs []flowlog.Record) *Dist {
	perFlow := make(map[flowlog.FlowKey]uint64)
	for _, r := range recs {
		perFlow[r.Key()] += r.TotalBytes()
	}
	d := &Dist{xs: make([]float64, 0, len(perFlow))}
	for _, b := range perFlow {
		d.Add(float64(b))
	}
	return d
}

// InterArrivals returns the distribution of gaps between consecutive new
// flow arrivals, quantized to the telemetry interval: each flow key's first
// record timestamp is an arrival.
func InterArrivals(recs []flowlog.Record, interval time.Duration) *Dist {
	if interval <= 0 {
		interval = time.Minute
	}
	first := make(map[flowlog.FlowKey]time.Time)
	for _, r := range recs {
		k := r.Key()
		t := r.Time.Truncate(interval)
		if cur, ok := first[k]; !ok || t.Before(cur) {
			first[k] = t
		}
	}
	arrivals := make([]time.Time, 0, len(first))
	for _, t := range first {
		arrivals = append(arrivals, t)
	}
	sort.Slice(arrivals, func(i, j int) bool { return arrivals[i].Before(arrivals[j]) })
	d := &Dist{}
	for i := 1; i < len(arrivals); i++ {
		d.Add(arrivals[i].Sub(arrivals[i-1]).Seconds())
	}
	return d
}

// FCTModel is a processor-sharing approximation of flow completion time on
// a bottleneck link: a flow of size s on a link of capacity C at utilization
// ρ completes in (s/C)/(1−ρ). It captures the first-order effect the
// paper's counterfactuals need: how FCTs degrade as load concentrates.
type FCTModel struct {
	// CapacityBps is the link capacity in bytes per second.
	CapacityBps float64
	// Rho is the background utilization in [0, 1).
	Rho float64
}

// FCT returns the modelled completion time of a flow of sizeBytes. An
// overloaded or zero-capacity link returns a very large duration rather
// than dividing by zero.
func (m FCTModel) FCT(sizeBytes float64) time.Duration {
	if m.CapacityBps <= 0 || m.Rho >= 1 {
		return time.Duration(math.MaxInt64)
	}
	secs := sizeBytes / m.CapacityBps / (1 - m.Rho)
	if secs > 1e12 {
		return time.Duration(math.MaxInt64)
	}
	return time.Duration(secs * float64(time.Second))
}

// Slowdown is the FCT inflation factor relative to an idle link.
func (m FCTModel) Slowdown() float64 {
	if m.Rho >= 1 {
		return math.Inf(1)
	}
	return 1 / (1 - m.Rho)
}

// FCTQuantiles evaluates the model over a flow-size distribution and
// returns the FCT at each requested quantile of flow size.
func (m FCTModel) FCTQuantiles(sizes *Dist, ps []float64) []time.Duration {
	out := make([]time.Duration, len(ps))
	for i, p := range ps {
		out[i] = m.FCT(sizes.Quantile(p))
	}
	return out
}

// NodeLoad is one node's traffic load against its capacity.
type NodeLoad struct {
	Node graph.Node
	// BytesPerMin is the node's total exchanged bytes per minute of the
	// graph window.
	BytesPerMin float64
	// Utilization is BytesPerMin over capacity (0 when capacity unknown).
	Utilization float64
}

// Bottlenecks ranks nodes by utilization (or raw load when capacityPerMin
// is zero), descending — Figure 6's "where to invest more capacity"
// question made actionable.
func Bottlenecks(g *graph.Graph, capacityPerMin float64) []NodeLoad {
	minutes := g.End.Sub(g.Start).Minutes()
	if minutes <= 0 {
		minutes = 60
	}
	nodes := g.Nodes()
	out := make([]NodeLoad, 0, len(nodes))
	for _, n := range nodes {
		load := float64(g.NodeStrength(n, graph.Bytes)) / minutes
		nl := NodeLoad{Node: n, BytesPerMin: load}
		if capacityPerMin > 0 {
			nl.Utilization = load / capacityPerMin
		}
		out = append(out, nl)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].BytesPerMin != out[j].BytesPerMin {
			return out[i].BytesPerMin > out[j].BytesPerMin
		}
		return out[i].Node.Less(out[j].Node)
	})
	return out
}

// Plan is a capacity plan: which VMs to upgrade (change SKU) and which
// pairs to co-locate into a proximity group or availability zone.
type Plan struct {
	// Upgrades lists nodes above the utilization threshold, worst first.
	Upgrades []NodeLoad
	// Proximity lists the heaviest-exchanging pairs, best co-location
	// candidates first.
	Proximity []graph.UndirectedEdge
}

// PlanCapacity builds a plan: nodes above utilThreshold become upgrade
// recommendations and the topPairs heaviest pairs become proximity-group
// candidates (§2.3: "relocate VMs that exchange a lot of data into the same
// availability zone or a proximity group").
func PlanCapacity(g *graph.Graph, capacityPerMin float64, utilThreshold float64, topPairs int) Plan {
	var plan Plan
	for _, nl := range Bottlenecks(g, capacityPerMin) {
		if nl.Utilization >= utilThreshold && utilThreshold > 0 {
			plan.Upgrades = append(plan.Upgrades, nl)
		}
	}
	edges := g.UndirectedEdges()
	sort.Slice(edges, func(i, j int) bool {
		if edges[i].Bytes != edges[j].Bytes {
			return edges[i].Bytes > edges[j].Bytes
		}
		if edges[i].A != edges[j].A {
			return edges[i].A.Less(edges[j].A)
		}
		return edges[i].B.Less(edges[j].B)
	})
	if topPairs > len(edges) {
		topPairs = len(edges)
	}
	plan.Proximity = edges[:topPairs]
	return plan
}
