package heatmap

import (
	"bytes"
	"strings"
	"testing"
)

func TestLogScale(t *testing.T) {
	if v := logScale(100, 100, 6); v != 1 {
		t.Errorf("max scales to %v, want 1", v)
	}
	if v := logScale(0, 100, 6); v != 0 {
		t.Errorf("zero scales to %v, want 0", v)
	}
	if v := logScale(100e-7, 100, 6); v > 1e-9 {
		t.Errorf("six decades down scales to %v, want 0", v)
	}
	mid := logScale(100e-3, 100, 6) // three decades down
	if mid < 0.49 || mid > 0.51 {
		t.Errorf("three decades down = %v, want ~0.5", mid)
	}
}

func TestASCIIRendering(t *testing.T) {
	// Bright diagonal on a dark field.
	n := 8
	m := make([]float64, n*n)
	for i := 0; i < n; i++ {
		m[i*n+i] = 1000
	}
	art := ASCII(m, n, 16)
	lines := strings.Split(strings.TrimRight(art, "\n"), "\n")
	if len(lines) != n {
		t.Fatalf("lines = %d, want %d", len(lines), n)
	}
	for i, line := range lines {
		if line[i] != '@' {
			t.Errorf("diagonal (%d,%d) = %q, want '@'", i, i, line[i])
		}
		for j := 0; j < n; j++ {
			if j != i && line[j] != ' ' {
				t.Errorf("off-diagonal (%d,%d) = %q, want ' '", i, j, line[j])
			}
		}
	}
}

func TestASCIIDownsamples(t *testing.T) {
	n := 100
	m := make([]float64, n*n)
	m[0] = 5 // single hot pixel must survive max-pooling
	art := ASCII(m, n, 10)
	lines := strings.Split(strings.TrimRight(art, "\n"), "\n")
	if len(lines) != 10 {
		t.Fatalf("downsampled lines = %d, want 10", len(lines))
	}
	if lines[0][0] != '@' {
		t.Errorf("hot pixel lost in downsampling: %q", lines[0][0])
	}
}

func TestASCIIEmpty(t *testing.T) {
	if got := ASCII(nil, 0, 10); got != "(empty)\n" {
		t.Errorf("empty = %q", got)
	}
}

func TestPGMFormat(t *testing.T) {
	m := []float64{0, 10, 10, 0}
	img := PGM(m, 2)
	if !bytes.HasPrefix(img, []byte("P5\n2 2\n255\n")) {
		t.Fatalf("bad header: %q", img[:12])
	}
	pixels := img[len("P5\n2 2\n255\n"):]
	if len(pixels) != 4 {
		t.Fatalf("pixel count = %d", len(pixels))
	}
	if pixels[0] != 0 || pixels[1] != 255 {
		t.Errorf("pixels = %v", pixels)
	}
}

func TestPGMDegenerate(t *testing.T) {
	img := PGM(nil, 0)
	if !bytes.HasPrefix(img, []byte("P5\n1 1\n255\n")) {
		t.Errorf("degenerate PGM header wrong: %q", img)
	}
}
