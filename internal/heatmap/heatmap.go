// Package heatmap renders adjacency matrices the way Figures 4 and 5 of
// the paper display them: entries are byte counts, normalized and
// color-coded in log scale, so chatty cliques appear as blocks and hubs as
// bands. Output formats are ASCII art (for terminals and docs) and binary
// PGM (viewable in any image tool), both stdlib-only.
package heatmap

import (
	"fmt"
	"math"
	"strings"
)

// ramp is the ASCII intensity ramp, dark to bright.
const ramp = " .:-=+*#%@"

// logScale maps v into [0,1] on a log axis spanning `decades` below max.
func logScale(v, max float64, decades float64) float64 {
	if v <= 0 || max <= 0 {
		return 0
	}
	l := math.Log10(v/max)/decades + 1 // v==max -> 1; max/10^decades -> 0
	if l < 0 {
		return 0
	}
	if l > 1 {
		return 1
	}
	return l
}

// downsample reduces an n×n matrix to at most size×size by max-pooling, so
// big graphs stay legible; max (not mean) preserves thin bands.
func downsample(m []float64, n, size int) ([]float64, int) {
	if n <= size {
		return m, n
	}
	out := make([]float64, size*size)
	for i := 0; i < size; i++ {
		for j := 0; j < size; j++ {
			i0, i1 := i*n/size, (i+1)*n/size
			j0, j1 := j*n/size, (j+1)*n/size
			var mx float64
			for r := i0; r < i1; r++ {
				for c := j0; c < j1; c++ {
					if m[r*n+c] > mx {
						mx = m[r*n+c]
					}
				}
			}
			out[i*size+j] = mx
		}
	}
	return out, size
}

// ASCII renders the matrix as ASCII art at most maxSize characters wide,
// log-scaled over 6 decades like the paper's color bars.
func ASCII(m []float64, n, maxSize int) string {
	if n == 0 {
		return "(empty)\n"
	}
	if maxSize <= 0 {
		maxSize = 64
	}
	d, size := downsample(m, n, maxSize)
	var max float64
	for _, v := range d {
		if v > max {
			max = v
		}
	}
	var b strings.Builder
	b.Grow(size * (size + 1))
	for i := 0; i < size; i++ {
		for j := 0; j < size; j++ {
			idx := int(logScale(d[i*size+j], max, 6) * float64(len(ramp)-1))
			b.WriteByte(ramp[idx])
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// PGM renders the matrix as a binary (P5) PGM image, one pixel per entry,
// log-scaled over 6 decades. The result can be written directly to a file.
func PGM(m []float64, n int) []byte {
	if n == 0 {
		n = 1
		m = []float64{0}
	}
	var max float64
	for _, v := range m {
		if v > max {
			max = v
		}
	}
	header := fmt.Sprintf("P5\n%d %d\n255\n", n, n)
	out := make([]byte, 0, len(header)+n*n)
	out = append(out, header...)
	for _, v := range m {
		out = append(out, byte(logScale(v, max, 6)*255))
	}
	return out
}
