package matrix

import "math"

// PCA is the eigendecomposition of one symmetric matrix, ready to be
// truncated to any rank. Build it once, then sweep k.
type PCA struct {
	N      int
	M      []float64 // the original matrix
	Values []float64 // eigenvalues, |λ| descending
	Vecs   []float64 // eigenvectors, column j pairs with Values[j]
}

// NewPCA decomposes the symmetric n×n matrix m.
func NewPCA(m []float64, n int) (*PCA, error) {
	vals, vecs, err := EigenSym(m, n)
	if err != nil {
		return nil, err
	}
	cp := make([]float64, len(m))
	copy(cp, m)
	return &PCA{N: n, M: cp, Values: vals, Vecs: vecs}, nil
}

// Reconstruct returns the rank-k truncation Mk = Ek·Dk·Ekᵀ (§2.2). k is
// clamped to [0, N].
func (p *PCA) Reconstruct(k int) []float64 {
	if k < 0 {
		k = 0
	}
	if k > p.N {
		k = p.N
	}
	n := p.N
	mk := make([]float64, n*n)
	for l := 0; l < k; l++ {
		lambda := p.Values[l]
		//lint:allow floatcmp exact-zero skip of an empty eigenvalue; a tolerance would silently drop genuinely small signal
		if lambda == 0 {
			continue
		}
		col := Column(p.Vecs, n, l)
		for i := 0; i < n; i++ {
			li := lambda * col[i]
			//lint:allow floatcmp exact-zero sparsity skip: adding 0·col[j] is a no-op, so only bit-exact zeros may be skipped
			if li == 0 {
				continue
			}
			row := mk[i*n : (i+1)*n]
			for j := 0; j < n; j++ {
				row[j] += li * col[j]
			}
		}
	}
	return mk
}

// ReconErr returns the paper's reconstruction error: the absolute sum of
// entries of M−Mk, normalized by the absolute sum of M. By construction
// ReconErr(N) ≈ 0 and the error is non-increasing in signal captured.
func (p *PCA) ReconErr(k int) float64 {
	mk := p.Reconstruct(k)
	return ReconErr(p.M, mk)
}

// ReconErr computes sum|m−mk| / sum|m| for equal-shape flat matrices.
// A zero matrix reconstructs perfectly (error 0).
func ReconErr(m, mk []float64) float64 {
	var num, den float64
	for i := range m {
		num += math.Abs(m[i] - mk[i])
		den += math.Abs(m[i])
	}
	//lint:allow floatcmp guard against dividing by an exactly-zero matrix norm; any nonzero norm is a valid denominator
	if den == 0 {
		return 0
	}
	return num / den
}

// ErrorCurve returns ReconErr for each k in ks, reusing the decomposition.
func (p *PCA) ErrorCurve(ks []int) []float64 {
	out := make([]float64, len(ks))
	for i, k := range ks {
		out[i] = p.ReconErr(k)
	}
	return out
}

// RankFor returns the smallest k whose reconstruction error is at or below
// target — "how many eigenvectors suffice" (the paper reports k=25 of n>500
// reaching < 0.05 on K8s PaaS).
func (p *PCA) RankFor(target float64) int {
	for k := 0; k <= p.N; k++ {
		if p.ReconErr(k) <= target {
			return k
		}
	}
	return p.N
}
