package matrix

import (
	"math"
	"math/rand"
	"testing"
)

func TestTopEigenSymMatchesJacobi(t *testing.T) {
	// Power iteration needs spectral separation to converge; build a
	// matrix with a geometric spectrum (like real traffic matrices, whose
	// block structure yields a few dominant, well-separated eigenvalues).
	rng := rand.New(rand.NewSource(19))
	n := 30
	a := make([]float64, n*n)
	for i := 0; i < n; i++ {
		a[i*n+i] = 100 / math.Pow(2, float64(i))
		for j := 0; j < i; j++ {
			v := rng.NormFloat64() * 1e-3
			a[i*n+j] = v
			a[j*n+i] = v
		}
	}
	exact, _, err := EigenSym(a, n)
	if err != nil {
		t.Fatal(err)
	}
	approx, vecs := TopEigenSym(a, n, 3, 500, 1)
	for i := 0; i < 3; i++ {
		if math.Abs(math.Abs(approx[i])-math.Abs(exact[i])) > 1e-6*(1+math.Abs(exact[i])) {
			t.Errorf("eigenvalue %d: power %v vs jacobi %v", i, approx[i], exact[i])
		}
		// Residual check: ||A·v − λ·v|| small.
		v := vecs[i*n : (i+1)*n]
		av := MatVec(a, n, v)
		var res float64
		for j := 0; j < n; j++ {
			d := av[j] - approx[i]*v[j]
			res += d * d
		}
		if math.Sqrt(res) > 1e-4*(1+math.Abs(approx[i])) {
			t.Errorf("eigenpair %d residual %v", i, math.Sqrt(res))
		}
	}
}

func TestTopEigenSymDegenerate(t *testing.T) {
	vals, _ := TopEigenSym(make([]float64, 9), 3, 5, 50, 1)
	if len(vals) != 3 {
		t.Fatalf("k clamped wrong: %v", vals)
	}
	for _, v := range vals {
		if math.Abs(v) > 1e-9 {
			t.Errorf("zero matrix eigenvalue %v", v)
		}
	}
}
