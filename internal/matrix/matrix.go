// Package matrix provides the small dense linear-algebra kernel behind the
// paper's succinct-summary analysis (§2.2): a symmetric eigendecomposition
// M = E·D·Eᵀ, rank-k spectral truncation Mk = Ek·Dk·Ekᵀ, and the normalized
// reconstruction error ReconErr(M, Mk). Everything is stdlib-only; the
// eigensolver is a cyclic Jacobi iteration, which is simple, numerically
// robust and entirely adequate for communication graphs with a few thousand
// nodes.
package matrix

import (
	"errors"
	"math"
)

// ErrNotSquare is returned when a flat slice's length is not n*n.
var ErrNotSquare = errors.New("matrix: data length is not n*n")

// ErrNotSymmetric is returned by EigenSym for asymmetric input.
var ErrNotSymmetric = errors.New("matrix: matrix is not symmetric")

// symCheckTol is the relative tolerance used to verify symmetry.
const symCheckTol = 1e-9

// EigenSym computes the full eigendecomposition of the symmetric n×n matrix
// a (row-major, not modified). It returns the eigenvalues and the matrix of
// eigenvectors V (row-major, column j is the eigenvector of values[j]),
// sorted by descending absolute eigenvalue — the order PCA consumes them in.
func EigenSym(a []float64, n int) (values []float64, vectors []float64, err error) {
	if len(a) != n*n {
		return nil, nil, ErrNotSquare
	}
	// Verify symmetry relative to the largest entry.
	var scale float64
	for _, v := range a {
		if av := math.Abs(v); av > scale {
			scale = av
		}
	}
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if math.Abs(a[i*n+j]-a[j*n+i]) > symCheckTol*math.Max(scale, 1) {
				return nil, nil, ErrNotSymmetric
			}
		}
	}

	// Work on a copy; initialize V to identity.
	w := make([]float64, n*n)
	copy(w, a)
	v := make([]float64, n*n)
	for i := 0; i < n; i++ {
		v[i*n+i] = 1
	}

	const maxSweeps = 64
	for sweep := 0; sweep < maxSweeps; sweep++ {
		off := offDiagNorm(w, n)
		if off <= 1e-12*math.Max(scale, 1) {
			break
		}
		for p := 0; p < n-1; p++ {
			for q := p + 1; q < n; q++ {
				apq := w[p*n+q]
				if math.Abs(apq) <= 1e-14*math.Max(scale, 1) {
					continue
				}
				app, aqq := w[p*n+p], w[q*n+q]
				// Compute the Jacobi rotation (c, s) annihilating w[p][q].
				theta := (aqq - app) / (2 * apq)
				t := math.Copysign(1, theta) / (math.Abs(theta) + math.Sqrt(theta*theta+1))
				c := 1 / math.Sqrt(t*t+1)
				s := t * c
				rotate(w, v, n, p, q, c, s)
			}
		}
	}

	values = make([]float64, n)
	for i := 0; i < n; i++ {
		values[i] = w[i*n+i]
	}
	order := sortByAbsDesc(values)
	return reorder(values, v, order, n)
}

// rotate applies the two-sided Jacobi rotation on (p, q) to w and the
// one-sided update to the eigenvector accumulator v.
func rotate(w, v []float64, n, p, q int, c, s float64) {
	for i := 0; i < n; i++ {
		wip, wiq := w[i*n+p], w[i*n+q]
		w[i*n+p] = c*wip - s*wiq
		w[i*n+q] = s*wip + c*wiq
	}
	for j := 0; j < n; j++ {
		wpj, wqj := w[p*n+j], w[q*n+j]
		w[p*n+j] = c*wpj - s*wqj
		w[q*n+j] = s*wpj + c*wqj
	}
	for i := 0; i < n; i++ {
		vip, viq := v[i*n+p], v[i*n+q]
		v[i*n+p] = c*vip - s*viq
		v[i*n+q] = s*vip + c*viq
	}
}

// offDiagNorm returns the Frobenius norm of the off-diagonal part.
func offDiagNorm(a []float64, n int) float64 {
	var sum float64
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if i != j {
				sum += a[i*n+j] * a[i*n+j]
			}
		}
	}
	return math.Sqrt(sum)
}

// sortByAbsDesc returns the permutation ordering values by |v| descending.
func sortByAbsDesc(values []float64) []int {
	order := make([]int, len(values))
	for i := range order {
		order[i] = i
	}
	// Insertion sort keeps this dependency-free and stable.
	for i := 1; i < len(order); i++ {
		for j := i; j > 0 && math.Abs(values[order[j]]) > math.Abs(values[order[j-1]]); j-- {
			order[j], order[j-1] = order[j-1], order[j]
		}
	}
	return order
}

// reorder permutes eigenvalues and eigenvector columns by order.
func reorder(values, v []float64, order []int, n int) ([]float64, []float64, error) {
	outVals := make([]float64, n)
	outVecs := make([]float64, n*n)
	for newJ, oldJ := range order {
		outVals[newJ] = values[oldJ]
		for i := 0; i < n; i++ {
			outVecs[i*n+newJ] = v[i*n+oldJ]
		}
	}
	return outVals, outVecs, nil
}

// MatVec computes y = A·x for row-major n×n A.
func MatVec(a []float64, n int, x []float64) []float64 {
	y := make([]float64, n)
	for i := 0; i < n; i++ {
		row := a[i*n : (i+1)*n]
		var sum float64
		for j, xv := range x {
			sum += row[j] * xv
		}
		y[i] = sum
	}
	return y
}

// Column extracts column j of row-major n×n V.
func Column(v []float64, n, j int) []float64 {
	col := make([]float64, n)
	for i := 0; i < n; i++ {
		col[i] = v[i*n+j]
	}
	return col
}

// Dot returns the inner product of equal-length vectors.
func Dot(a, b []float64) float64 {
	var s float64
	for i := range a {
		s += a[i] * b[i]
	}
	return s
}
