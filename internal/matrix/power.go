package matrix

import (
	"math"
	"math/rand"
)

// TopEigenSym estimates the k largest-magnitude eigenvalues (and vectors)
// of a symmetric n×n matrix by power iteration with deflation — O(k·iters·n²)
// instead of Jacobi's O(n³), which keeps spectral features affordable for
// the multi-thousand-node graphs (Portal, KQuery) where a full
// decomposition is overkill.
func TopEigenSym(a []float64, n, k, iters int, seed int64) (values []float64, vectors []float64) {
	if k > n {
		k = n
	}
	if iters <= 0 {
		iters = 100
	}
	rng := rand.New(rand.NewSource(seed))
	values = make([]float64, 0, k)
	vectors = make([]float64, 0, k*n)
	// work holds the deflated matrix; deflation subtracts λ·v·vᵀ.
	work := make([]float64, len(a))
	copy(work, a)
	for c := 0; c < k; c++ {
		v := make([]float64, n)
		for i := range v {
			v[i] = rng.NormFloat64()
		}
		normalize(v)
		var lambda float64
		for it := 0; it < iters; it++ {
			next := MatVec(work, n, v)
			lambda = Dot(v, next)
			norm := math.Sqrt(Dot(next, next))
			if norm < 1e-15 {
				lambda = 0
				break
			}
			for i := range next {
				next[i] /= norm
			}
			// Converged when direction is stable (sign-insensitive).
			if math.Abs(math.Abs(Dot(next, v))-1) < 1e-10 {
				v = next
				lambda = Dot(v, MatVec(work, n, v))
				break
			}
			v = next
		}
		values = append(values, lambda)
		vectors = append(vectors, v...)
		// Deflate: work -= λ·v·vᵀ.
		for i := 0; i < n; i++ {
			li := lambda * v[i]
			//lint:allow floatcmp exact-zero sparsity skip in deflation; see PCA.Reconstruct
			if li == 0 {
				continue
			}
			row := work[i*n : (i+1)*n]
			for j := 0; j < n; j++ {
				row[j] -= li * v[j]
			}
		}
	}
	return values, vectors
}
