package matrix

import (
	"math"
	"math/rand"
	"testing"
)

const tol = 1e-8

func almostEq(a, b, eps float64) bool { return math.Abs(a-b) <= eps }

func TestEigenSym2x2(t *testing.T) {
	// [[2,1],[1,2]] has eigenvalues 3 and 1.
	a := []float64{2, 1, 1, 2}
	vals, vecs, err := EigenSym(a, 2)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEq(vals[0], 3, tol) || !almostEq(vals[1], 1, tol) {
		t.Errorf("eigenvalues = %v, want [3 1]", vals)
	}
	// Eigenvector for λ=3 is (1,1)/√2 up to sign.
	v0 := Column(vecs, 2, 0)
	if !almostEq(math.Abs(v0[0]), 1/math.Sqrt2, 1e-6) || !almostEq(math.Abs(v0[1]), 1/math.Sqrt2, 1e-6) {
		t.Errorf("v0 = %v", v0)
	}
}

func TestEigenSymDiagonal(t *testing.T) {
	a := []float64{
		5, 0, 0,
		0, -7, 0,
		0, 0, 2,
	}
	vals, _, err := EigenSym(a, 3)
	if err != nil {
		t.Fatal(err)
	}
	// Sorted by |λ| descending: -7, 5, 2.
	want := []float64{-7, 5, 2}
	for i := range want {
		if !almostEq(vals[i], want[i], tol) {
			t.Errorf("vals[%d] = %v, want %v", i, vals[i], want[i])
		}
	}
}

func randomSym(rng *rand.Rand, n int) []float64 {
	a := make([]float64, n*n)
	for i := 0; i < n; i++ {
		for j := 0; j <= i; j++ {
			v := rng.NormFloat64() * 10
			a[i*n+j] = v
			a[j*n+i] = v
		}
	}
	return a
}

func TestEigenSymProperties(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 5; trial++ {
		n := 10 + rng.Intn(30)
		a := randomSym(rng, n)
		vals, vecs, err := EigenSym(a, n)
		if err != nil {
			t.Fatal(err)
		}
		// A·v_j = λ_j·v_j for every pair.
		for j := 0; j < n; j++ {
			v := Column(vecs, n, j)
			av := MatVec(a, n, v)
			for i := 0; i < n; i++ {
				if !almostEq(av[i], vals[j]*v[i], 1e-6*(1+math.Abs(vals[j]))) {
					t.Fatalf("trial %d: A·v != λ·v at (%d,%d): %v vs %v", trial, i, j, av[i], vals[j]*v[i])
				}
			}
		}
		// Eigenvectors orthonormal.
		for j := 0; j < n; j++ {
			for k := j; k < n; k++ {
				d := Dot(Column(vecs, n, j), Column(vecs, n, k))
				want := 0.0
				if j == k {
					want = 1
				}
				if !almostEq(d, want, 1e-8) {
					t.Fatalf("trial %d: v%d·v%d = %v, want %v", trial, j, k, d, want)
				}
			}
		}
		// Trace preserved: Σλ = tr(A).
		var trace, sum float64
		for i := 0; i < n; i++ {
			trace += a[i*n+i]
			sum += vals[i]
		}
		if !almostEq(trace, sum, 1e-6*(1+math.Abs(trace))) {
			t.Fatalf("trial %d: trace %v != Σλ %v", trial, trace, sum)
		}
		// Sorted by |λ| descending.
		for i := 1; i < n; i++ {
			if math.Abs(vals[i]) > math.Abs(vals[i-1])+tol {
				t.Fatalf("trial %d: eigenvalues not sorted: %v", trial, vals)
			}
		}
	}
}

func TestEigenSymErrors(t *testing.T) {
	if _, _, err := EigenSym([]float64{1, 2, 3}, 2); err != ErrNotSquare {
		t.Errorf("want ErrNotSquare, got %v", err)
	}
	if _, _, err := EigenSym([]float64{1, 2, 3, 4}, 2); err != ErrNotSymmetric {
		t.Errorf("want ErrNotSymmetric, got %v", err)
	}
}

func TestPCAFullRankExact(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	n := 20
	a := randomSym(rng, n)
	p, err := NewPCA(a, n)
	if err != nil {
		t.Fatal(err)
	}
	if e := p.ReconErr(n); e > 1e-8 {
		t.Errorf("full-rank ReconErr = %v, want ~0", e)
	}
	if e := p.ReconErr(0); !almostEq(e, 1, tol) {
		t.Errorf("rank-0 ReconErr = %v, want 1", e)
	}
}

func TestPCALowRankMatrixRecovers(t *testing.T) {
	// Build an exactly rank-3 symmetric matrix; k=3 must reconstruct it.
	rng := rand.New(rand.NewSource(21))
	n := 30
	a := make([]float64, n*n)
	for r := 0; r < 3; r++ {
		v := make([]float64, n)
		for i := range v {
			v[i] = rng.NormFloat64()
		}
		lambda := float64(10 * (r + 1))
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				a[i*n+j] += lambda * v[i] * v[j]
			}
		}
	}
	p, err := NewPCA(a, n)
	if err != nil {
		t.Fatal(err)
	}
	if e := p.ReconErr(3); e > 1e-6 {
		t.Errorf("rank-3 matrix not recovered at k=3: err %v", e)
	}
	if e := p.ReconErr(1); e < 0.01 {
		t.Errorf("k=1 should not capture a rank-3 matrix: err %v", e)
	}
	if k := p.RankFor(1e-6); k != 3 {
		t.Errorf("RankFor(1e-6) = %d, want 3", k)
	}
}

func TestPCAErrorCurveMonotone(t *testing.T) {
	// For block-structured (community-like) matrices the error curve
	// should fall steeply then flatten — the paper's sparse-transform
	// observation. Verify non-increasing within tolerance.
	rng := rand.New(rand.NewSource(33))
	n := 40
	a := make([]float64, n*n)
	// Four blocks of heavy intra-traffic plus noise.
	for i := 0; i < n; i++ {
		for j := 0; j <= i; j++ {
			v := rng.Float64() * 0.1
			if i/10 == j/10 {
				v += 5
			}
			a[i*n+j] = v
			a[j*n+i] = v
		}
	}
	p, err := NewPCA(a, n)
	if err != nil {
		t.Fatal(err)
	}
	// Truncation is optimal in Frobenius norm, so the paper's L1-style
	// ReconErr need not fall monotonically at tiny k; the observation to
	// reproduce is the steep drop once the block structure is captured.
	ks := []int{4, 8, 16, 40}
	curve := p.ErrorCurve(ks)
	for i := 1; i < len(curve); i++ {
		if curve[i] > curve[i-1]+1e-6 {
			t.Errorf("error curve increased at k=%d: %v -> %v", ks[i], curve[i-1], curve[i])
		}
	}
	// Block structure: a handful of eigenvectors capture most of it.
	if curve[0] > 0.2 {
		t.Errorf("k=4 on 4-block matrix should reconstruct well, err %v", curve[0])
	}
	if curve[len(curve)-1] > 1e-8 {
		t.Errorf("full rank err %v", curve[len(curve)-1])
	}
}

func TestReconErrZeroMatrix(t *testing.T) {
	if e := ReconErr(make([]float64, 9), make([]float64, 9)); e != 0 {
		t.Errorf("ReconErr(0,0) = %v", e)
	}
}

func TestMatVecAndDot(t *testing.T) {
	a := []float64{1, 2, 3, 4}
	y := MatVec(a, 2, []float64{1, 1})
	if y[0] != 3 || y[1] != 7 {
		t.Errorf("MatVec = %v", y)
	}
	if Dot([]float64{1, 2, 3}, []float64{4, 5, 6}) != 32 {
		t.Error("Dot wrong")
	}
}
