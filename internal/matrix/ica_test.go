package matrix

import (
	"math"
	"math/rand"
	"testing"
)

// blockMatrix builds a symmetric community-structured matrix with noise.
func blockMatrix(rng *rand.Rand, n, blocks int) []float64 {
	a := make([]float64, n*n)
	for i := 0; i < n; i++ {
		for j := 0; j <= i; j++ {
			v := rng.Float64() * 0.05
			if i*blocks/n == j*blocks/n {
				v += 4 + rng.Float64()
			}
			a[i*n+j] = v
			a[j*n+i] = v
		}
	}
	return a
}

func TestFastICAMatchesPCAReconstruction(t *testing.T) {
	// Footnote 6: independent components give similar reconstruction to
	// PCA's eigenvectors — by construction they share the rank-k subspace.
	rng := rand.New(rand.NewSource(8))
	n, k := 40, 6
	m := blockMatrix(rng, n, 4)
	p, err := NewPCA(m, n)
	if err != nil {
		t.Fatal(err)
	}
	ica, err := FastICA(m, n, k, 300, 1)
	if err != nil {
		t.Fatal(err)
	}
	pcaErr := p.ReconErr(k)
	icaErr := ica.ReconErr(m)
	// ICA reconstructs the centered data in the PCA subspace plus the
	// mean; both should be small and close on block matrices.
	if icaErr > pcaErr+0.1 {
		t.Errorf("ICA ReconErr %v much worse than PCA %v", icaErr, pcaErr)
	}
	if icaErr > 0.2 {
		t.Errorf("ICA ReconErr %v too high for a 4-block matrix", icaErr)
	}
}

func TestFastICAComponentsOrthonormal(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	n, k := 30, 4
	m := blockMatrix(rng, n, 3)
	ica, err := FastICA(m, n, k, 300, 2)
	if err != nil {
		t.Fatal(err)
	}
	for a := 0; a < k; a++ {
		for b := a; b < k; b++ {
			d := Dot(ica.W[a*k:(a+1)*k], ica.W[b*k:(b+1)*k])
			want := 0.0
			if a == b {
				want = 1
			}
			if math.Abs(d-want) > 1e-4 {
				t.Errorf("W row %d·%d = %v, want %v", a, b, d, want)
			}
		}
	}
}

func TestFastICADeterministicForSeed(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	n := 25
	m := blockMatrix(rng, n, 5)
	a, err := FastICA(m, n, 3, 200, 7)
	if err != nil {
		t.Fatal(err)
	}
	b, err := FastICA(m, n, 3, 200, 7)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.W {
		if a.W[i] != b.W[i] {
			t.Fatal("FastICA not deterministic for fixed seed")
		}
	}
}

func TestFastICAErrors(t *testing.T) {
	if _, err := FastICA([]float64{1, 2, 3}, 2, 1, 10, 1); err != ErrNotSquare {
		t.Errorf("want ErrNotSquare, got %v", err)
	}
	m := make([]float64, 16)
	if _, err := FastICA(m, 4, 0, 10, 1); err != ErrRankTooSmall {
		t.Errorf("k=0: want ErrRankTooSmall, got %v", err)
	}
	if _, err := FastICA(m, 4, 5, 10, 1); err != ErrRankTooSmall {
		t.Errorf("k>n: want ErrRankTooSmall, got %v", err)
	}
	// Zero matrix has no significant eigenvalues.
	if _, err := FastICA(m, 4, 2, 10, 1); err != ErrRankTooSmall {
		t.Errorf("zero matrix: want ErrRankTooSmall, got %v", err)
	}
}

func TestFastICASourcesDecorrelated(t *testing.T) {
	rng := rand.New(rand.NewSource(15))
	n, k := 36, 4
	m := blockMatrix(rng, n, 4)
	ica, err := FastICA(m, n, k, 300, 4)
	if err != nil {
		t.Fatal(err)
	}
	// Sources should be (near) uncorrelated with unit variance.
	for a := 0; a < k; a++ {
		for b := a; b < k; b++ {
			var s float64
			for r := 0; r < n; r++ {
				s += ica.Sources[r*k+a] * ica.Sources[r*k+b]
			}
			s /= float64(n)
			want := 0.0
			if a == b {
				want = 1
			}
			if math.Abs(s-want) > 0.05 {
				t.Errorf("source cov(%d,%d) = %v, want %v", a, b, s, want)
			}
		}
	}
}
