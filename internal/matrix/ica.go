package matrix

import (
	"errors"
	"math"
	"math/rand"
)

// FastICA (Hyvärinen's fixed-point algorithm) for the paper's footnote 6:
// "Similar results hold when using independent components, e.g., FastICA,
// instead of PCA's eigen vectors." The rows of the (symmetrized) adjacency
// matrix are treated as n observations of n-dimensional traffic vectors;
// the data is centered, whitened through the top-k PCA subspace, and the
// fixed-point iteration with the tanh nonlinearity extracts k maximally
// non-Gaussian components. Because whitening restricts ICA to the rank-k
// PCA subspace, the rank-k reconstruction error necessarily matches PCA's —
// which is exactly the footnote's observation; what ICA adds is a rotated,
// often more interpretable basis of traffic patterns.

// ICA is a fitted FastICA decomposition.
type ICA struct {
	N, K int
	// Mean is the per-column mean removed before whitening.
	Mean []float64
	// Whitening (n×k) maps centered rows into the whitened space;
	// Dewhitening (k×n) maps back.
	Whitening, Dewhitening []float64
	// W is the k×k orthonormal unmixing matrix found by FastICA.
	W []float64
	// Sources is the n×k matrix of independent components per row.
	Sources []float64
	// Iterations actually used per component.
	Iterations int
	// Converged reports whether every component reached tolerance.
	Converged bool
}

// ErrRankTooSmall is returned when the matrix has fewer than k significant
// eigenvalues to whiten against.
var ErrRankTooSmall = errors.New("matrix: insufficient rank for requested components")

// FastICA fits k independent components to the symmetric n×n matrix m.
// The seed makes the random initialization reproducible.
func FastICA(m []float64, n, k, maxIter int, seed int64) (*ICA, error) {
	if len(m) != n*n {
		return nil, ErrNotSquare
	}
	if k <= 0 || k > n {
		return nil, ErrRankTooSmall
	}
	if maxIter <= 0 {
		maxIter = 200
	}

	// Center columns.
	mean := make([]float64, n)
	for j := 0; j < n; j++ {
		var s float64
		for i := 0; i < n; i++ {
			s += m[i*n+j]
		}
		mean[j] = s / float64(n)
	}
	x := make([]float64, n*n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			x[i*n+j] = m[i*n+j] - mean[j]
		}
	}

	// Whiten via the covariance eigendecomposition. For symmetric
	// centered X, cov = XᵀX/n is symmetric PSD.
	cov := make([]float64, n*n)
	for i := 0; i < n; i++ {
		for j := i; j < n; j++ {
			var s float64
			for r := 0; r < n; r++ {
				s += x[r*n+i] * x[r*n+j]
			}
			s /= float64(n)
			cov[i*n+j] = s
			cov[j*n+i] = s
		}
	}
	vals, vecs, err := EigenSym(cov, n)
	if err != nil {
		return nil, err
	}
	for i := 0; i < k; i++ {
		if vals[i] <= 1e-12 {
			return nil, ErrRankTooSmall
		}
	}
	// Whitening: columns of V_k scaled by λ^{-1/2}; dewhitening scaled by λ^{1/2}.
	wh := make([]float64, n*k)
	dw := make([]float64, k*n)
	for j := 0; j < k; j++ {
		s := math.Sqrt(vals[j])
		for i := 0; i < n; i++ {
			v := vecs[i*n+j]
			wh[i*k+j] = v / s
			dw[j*n+i] = v * s
		}
	}
	// Z = X · Wh  (n×k), unit covariance.
	z := mulRect(x, n, n, wh, k)

	// Fixed-point iteration with symmetric-ish deflation (Gram-Schmidt).
	rng := rand.New(rand.NewSource(seed))
	w := make([]float64, k*k) // rows are unmixing vectors in whitened space
	ica := &ICA{N: n, K: k, Mean: mean, Whitening: wh, Dewhitening: dw, Converged: true}
	const tol = 1e-6
	for c := 0; c < k; c++ {
		wc := make([]float64, k)
		for i := range wc {
			wc[i] = rng.NormFloat64()
		}
		normalize(wc)
		converged := false
		iter := 0
		for ; iter < maxIter; iter++ {
			next := make([]float64, k)
			var gPrimeMean float64
			for r := 0; r < n; r++ {
				row := z[r*k : (r+1)*k]
				u := Dot(wc, row)
				g := math.Tanh(u)
				gp := 1 - g*g
				gPrimeMean += gp
				for i := 0; i < k; i++ {
					next[i] += row[i] * g
				}
			}
			for i := 0; i < k; i++ {
				next[i] = next[i]/float64(n) - gPrimeMean/float64(n)*wc[i]
			}
			// Deflate against previously found components.
			for p := 0; p < c; p++ {
				prev := w[p*k : (p+1)*k]
				d := Dot(next, prev)
				for i := 0; i < k; i++ {
					next[i] -= d * prev[i]
				}
			}
			normalize(next)
			// Convergence: |<w, w'>| close to 1.
			if math.Abs(math.Abs(Dot(next, wc))-1) < tol {
				copy(wc, next)
				converged = true
				break
			}
			copy(wc, next)
		}
		if !converged {
			ica.Converged = false
		}
		if iter+1 > ica.Iterations {
			ica.Iterations = iter + 1
		}
		copy(w[c*k:(c+1)*k], wc)
	}
	ica.W = w
	// Sources S = Z·Wᵀ (n×k).
	wt := transpose(w, k, k)
	ica.Sources = mulRect(z, n, k, wt, k)
	return ica, nil
}

// Reconstruct maps the sources back through the ICA pipeline:
// X̂ = S·W·Dewhiten + mean. Because W is orthonormal this equals the rank-k
// PCA reconstruction of the centered data (see package comment).
func (ica *ICA) Reconstruct() []float64 {
	n, k := ica.N, ica.K
	// Ẑ = S·W (n×k), then X̂c = Ẑ·Dw (n×n), then add means back.
	zhat := mulRect(ica.Sources, n, k, ica.W, k)
	xc := mulRect(zhat, n, k, ica.Dewhitening, n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			xc[i*n+j] += ica.Mean[j]
		}
	}
	return xc
}

// ReconErr returns the paper's normalized L1 reconstruction error of the
// ICA pipeline against the original matrix.
func (ica *ICA) ReconErr(original []float64) float64 {
	return ReconErr(original, ica.Reconstruct())
}

// mulRect multiplies a (ra×ca) by b (ca×cb), both row-major.
func mulRect(a []float64, ra, ca int, b []float64, cb int) []float64 {
	out := make([]float64, ra*cb)
	for i := 0; i < ra; i++ {
		arow := a[i*ca : (i+1)*ca]
		orow := out[i*cb : (i+1)*cb]
		for t, av := range arow {
			//lint:allow floatcmp exact-zero sparsity skip: 0·brow[j] contributes nothing, so only bit-exact zeros are skipped
			if av == 0 {
				continue
			}
			brow := b[t*cb : (t+1)*cb]
			for j := 0; j < cb; j++ {
				orow[j] += av * brow[j]
			}
		}
	}
	return out
}

// transpose returns the r×c matrix transposed.
func transpose(a []float64, r, c int) []float64 {
	out := make([]float64, r*c)
	for i := 0; i < r; i++ {
		for j := 0; j < c; j++ {
			out[j*r+i] = a[i*c+j]
		}
	}
	return out
}

// normalize scales v to unit length (no-op on the zero vector).
func normalize(v []float64) {
	n := math.Sqrt(Dot(v, v))
	//lint:allow floatcmp only the bit-exact zero vector must be left unscaled; dividing by any nonzero norm is well-defined
	if n == 0 {
		return
	}
	for i := range v {
		v[i] /= n
	}
}
