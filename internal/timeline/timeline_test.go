package timeline

import (
	"net/netip"
	"sort"
	"strings"
	"testing"
	"time"

	"cloudgraph/internal/cluster"
	"cloudgraph/internal/flowlog"
	"cloudgraph/internal/graph"
	"cloudgraph/internal/telemetry"
)

var t0 = time.Unix(1700000000, 0).UTC().Truncate(time.Hour)

// win builds a one-record window graph starting at the given offset.
func win(offset time.Duration, bytes uint64) *graph.Graph {
	g := graph.New(graph.FacetIP)
	g.AddEdge(graph.IPNode(netip.MustParseAddr("10.0.0.1")),
		graph.IPNode(netip.MustParseAddr("10.0.0.2")),
		graph.Counters{Bytes: bytes, Packets: 1, Conns: 1})
	g.Start = t0.Add(offset)
	g.End = g.Start.Add(time.Minute)
	return g
}

func TestTimelineSnapshotsAndRetention(t *testing.T) {
	tl := New(Config{Retention: 3, History: 3, Rollup: time.Hour})
	var snaps []*Snapshot
	for i := 0; i < 5; i++ {
		snaps = append(snaps, tl.Append(uint64(i+1), win(time.Duration(i)*time.Minute, 100)))
	}
	// Copy-on-write: the first snapshot still sees exactly one window even
	// though the timeline has advanced past it.
	if got := len(snaps[0].Windows); got != 1 {
		t.Fatalf("snapshot 1 sees %d windows after later appends, want 1", got)
	}
	if snaps[0].Epoch != 1 || snaps[0].Window != snaps[0].Windows[0] {
		t.Fatal("snapshot 1 lost its identity")
	}
	// Retention: the latest view holds only the newest 3 windows.
	latest := tl.Latest()
	if latest.Epoch != 5 || len(latest.Windows) != 3 {
		t.Fatalf("latest = epoch %d with %d windows, want epoch 5 with 3", latest.Epoch, len(latest.Windows))
	}
	// History: epochs 1 and 2 evicted, 3..5 addressable.
	if tl.At(1) != nil || tl.At(2) != nil {
		t.Fatal("evicted epochs still addressable")
	}
	for ep := uint64(3); ep <= 5; ep++ {
		s := tl.At(ep)
		if s == nil || s.Epoch != ep {
			t.Fatalf("At(%d) = %v", ep, s)
		}
	}
	if oldest, newest := tl.Epochs(); oldest != 3 || newest != 5 {
		t.Fatalf("Epochs() = %d..%d, want 3..5", oldest, newest)
	}
	if tl.At(99) != nil {
		t.Fatal("unknown epoch resolved")
	}
}

func TestTimelineRollupSealing(t *testing.T) {
	reg := telemetry.NewRegistry()
	tl := New(Config{Rollup: time.Hour, Telemetry: reg})
	// Two windows in hour 0, one in hour 1: appending the hour-1 window
	// must seal hour 0.
	tl.Append(1, win(0, 100))
	s := tl.Append(2, win(10*time.Minute, 50))
	if len(s.Rollups) != 0 {
		t.Fatalf("in-progress bucket leaked into snapshot: %d rollups", len(s.Rollups))
	}
	s = tl.Append(3, win(time.Hour, 70))
	if len(s.Rollups) != 1 {
		t.Fatalf("rollups after bucket advance = %d, want 1", len(s.Rollups))
	}
	r := s.Rollups[0]
	if !r.Start.Equal(t0) || !r.End.Equal(t0.Add(time.Hour)) {
		t.Fatalf("sealed rollup spans %s..%s, want the hour bucket", r.Start, r.End)
	}
	if tc := r.TotalTraffic(); tc.Bytes != 150 {
		t.Fatalf("sealed rollup bytes = %d, want 150 (merged members)", tc.Bytes)
	}
	// Seal flushes the final partial bucket without minting a new epoch.
	tl.Seal()
	latest := tl.Latest()
	if latest.Epoch != 3 || len(latest.Rollups) != 2 {
		t.Fatalf("after Seal: epoch %d, %d rollups, want epoch 3 with 2", latest.Epoch, len(latest.Rollups))
	}
	if tl.At(3) != latest {
		t.Fatal("Seal must re-issue the latest epoch's snapshot in history")
	}
	var b strings.Builder
	if err := reg.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"cloudgraph_timeline_rollups_sealed_total 2",
		"cloudgraph_timeline_rollups_held 2",
		"cloudgraph_timeline_snapshots_held 3",
		"cloudgraph_timeline_rollup_seal_seconds",
		"cloudgraph_timeline_bytes_retained",
	} {
		if !strings.Contains(b.String(), want) {
			t.Fatalf("telemetry missing %q:\n%s", want, b.String())
		}
	}
}

// diffEmpty reports whether d records no structural or traffic change.
func diffEmpty(d graph.Delta) bool {
	return len(d.AddedNodes) == 0 && len(d.RemovedNodes) == 0 &&
		len(d.AddedPairs) == 0 && len(d.RemovedPairs) == 0 && d.ByteChange == 0
}

// TestRollupEqualsDirectBuild is the roll-up correctness property: merging
// the minute-window graphs of a seeded cluster replay yields exactly the
// graph built directly over the same records. Roll-ups are therefore
// lossless re-aggregations, not approximations.
func TestRollupEqualsDirectBuild(t *testing.T) {
	c, err := cluster.New(cluster.MicroserviceBench(0.2))
	if err != nil {
		t.Fatal(err)
	}
	recs, err := c.CollectHour(t0)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) == 0 {
		t.Fatal("cluster emitted no records")
	}

	// Minute windows, built the same way the engine builds them.
	byMinute := make(map[int64][]flowlog.Record)
	for _, r := range recs {
		byMinute[r.Time.Truncate(time.Minute).UnixNano()] = append(
			byMinute[r.Time.Truncate(time.Minute).UnixNano()], r)
	}
	keys := make([]int64, 0, len(byMinute))
	for k := range byMinute {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	if len(keys) < 2 {
		t.Fatalf("replay spans %d minute windows; property needs several", len(keys))
	}

	tl := New(Config{Rollup: time.Hour, Retention: -1})
	for i, k := range keys {
		g := graph.Build(byMinute[k], graph.BuilderOptions{})
		g.Start = time.Unix(0, k).UTC()
		g.End = g.Start.Add(time.Minute)
		tl.Append(uint64(i+1), g)
	}
	tl.Seal()
	snap := tl.Latest()
	if len(snap.Rollups) != 1 {
		t.Fatalf("hour of minutes sealed into %d rollups, want 1", len(snap.Rollups))
	}
	direct := graph.Build(recs, graph.BuilderOptions{})
	if d := graph.Diff(direct, snap.Rollups[0]); !diffEmpty(d) {
		t.Fatalf("rollup != direct build: +%d/-%d nodes, +%d/-%d pairs, drift %g",
			len(d.AddedNodes), len(d.RemovedNodes), len(d.AddedPairs), len(d.RemovedPairs), d.ByteChange)
	}
	if d := graph.Diff(snap.Rollups[0], direct); !diffEmpty(d) {
		t.Fatal("rollup != direct build in reverse direction")
	}
}

// TestRollupOverlappingWindowsEqualsDirectBuild extends the roll-up
// property to overlapping-interval inputs: two window graphs spanning the
// same hour (the shape sharded ingest partials take) must merge into a
// roll-up identical to the direct build — including per-edge time series,
// where samples whose interval starts collide must sum rather than
// duplicate.
func TestRollupOverlappingWindowsEqualsDirectBuild(t *testing.T) {
	c, err := cluster.New(cluster.MicroserviceBench(0.2))
	if err != nil {
		t.Fatal(err)
	}
	recs, err := c.CollectHour(t0)
	if err != nil {
		t.Fatal(err)
	}
	// Split the stream by flow key into two halves covering the same
	// intervals — exactly how the engine shards, so both reports of a flow
	// stay together and dedup matches the serial build.
	var a, b []flowlog.Record
	for _, r := range recs {
		if r.Key().A.Port()%2 == 0 {
			a = append(a, r)
		} else {
			b = append(b, r)
		}
	}
	ga := graph.Build(a, graph.BuilderOptions{KeepSeries: true})
	gb := graph.Build(b, graph.BuilderOptions{KeepSeries: true})

	tl := New(Config{Rollup: time.Hour, Retention: -1})
	tl.Append(1, ga)
	tl.Append(2, gb)
	tl.Seal()
	snap := tl.Latest()
	if len(snap.Rollups) != 1 {
		t.Fatalf("overlapping windows sealed into %d rollups, want 1", len(snap.Rollups))
	}
	roll := snap.Rollups[0]
	if !roll.Frozen() {
		t.Fatal("sealed rollup not frozen")
	}

	direct := graph.Build(recs, graph.BuilderOptions{KeepSeries: true})
	if d := graph.Diff(direct, roll); !diffEmpty(d) {
		t.Fatalf("rollup != direct build: +%d/-%d nodes, +%d/-%d pairs, drift %g",
			len(d.AddedNodes), len(d.RemovedNodes), len(d.AddedPairs), len(d.RemovedPairs), d.ByteChange)
	}
	if d := graph.Diff(roll, direct); !diffEmpty(d) {
		t.Fatal("rollup != direct build in reverse direction")
	}
	// The series must fold, not concatenate: every directed edge of the
	// roll-up carries exactly the direct build's samples.
	bad := 0
	direct.EachOut(func(src, dst graph.Node, e *graph.Edge) {
		re := roll.OutEdge(src, dst)
		if re == nil || len(re.Series) != len(e.Series) {
			bad++
			return
		}
		for i := range e.Series {
			if re.Series[i] != e.Series[i] {
				bad++
				return
			}
		}
	})
	if bad > 0 {
		t.Fatalf("%d edges have duplicated or drifted series after overlapping merge", bad)
	}
}

// TestTimelineRetentionEdgeStaysQueryable pins the eviction boundary: with
// History=N, the snapshot sitting exactly at the retention edge (the oldest
// of the N) must stay addressable by epoch until the next append advances
// the timeline — an off-by-one that trimmed to N-1, or trimmed before
// publishing, would break QUERY <analysis> <oldest-epoch>.
func TestTimelineRetentionEdgeStaysQueryable(t *testing.T) {
	tl := New(Config{Retention: 3, History: 3, Rollup: time.Hour})
	for i := 1; i <= 3; i++ {
		tl.Append(uint64(i), win(time.Duration(i)*time.Minute, 100))
	}
	// Exactly at capacity: the oldest epoch is the retention edge and must
	// answer queries.
	if oldest, newest := tl.Epochs(); oldest != 1 || newest != 3 {
		t.Fatalf("Epochs() = %d..%d, want 1..3", oldest, newest)
	}
	edge := tl.At(1)
	if edge == nil || edge.Epoch != 1 || len(edge.Windows) != 1 {
		t.Fatalf("snapshot at retention edge not queryable: %+v", edge)
	}
	// Seal mints no epoch, so it must not advance eviction either.
	tl.Seal()
	if tl.At(1) == nil {
		t.Fatal("Seal evicted the retention-edge snapshot")
	}
	// The next advance shifts the edge by exactly one: epoch 1 goes, epoch
	// 2 becomes the new edge and stays queryable.
	tl.Append(4, win(4*time.Minute, 100))
	if tl.At(1) != nil {
		t.Fatal("evicted epoch still addressable after advance")
	}
	next := tl.At(2)
	if next == nil || next.Epoch != 2 {
		t.Fatalf("new retention edge lost: %+v", next)
	}
	if oldest, newest := tl.Epochs(); oldest != 2 || newest != 4 {
		t.Fatalf("Epochs() after advance = %d..%d, want 2..4", oldest, newest)
	}
	// The edge snapshot keeps its copy-on-write view even after eviction
	// of its predecessor.
	if next.Window != next.Windows[len(next.Windows)-1] {
		t.Fatal("retention-edge snapshot lost its identity")
	}
}
