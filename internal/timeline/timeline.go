// Package timeline maintains a versioned in-memory timeline of completed
// window graphs: bounded retention of the fine-resolution windows,
// multi-resolution roll-ups built on the fly with graph.Merge, and
// copy-on-write snapshots identified by epoch so concurrent readers get
// repeatable queries while the stream keeps advancing.
//
// The timeline sits behind the engine's consumer bus (core.ConsumerSpec):
// each completed window appended under its bus epoch produces one new
// Snapshot. Window graphs are never mutated after they are appended —
// roll-ups merge members into a fresh graph — so a Snapshot is just an
// immutable view: copying slice headers is all the copy-on-write there is.
package timeline

import (
	"fmt"
	"sync"
	"time"

	"cloudgraph/internal/graph"
	"cloudgraph/internal/telemetry"
	"cloudgraph/internal/trace"
)

// Config parameterizes a Timeline.
type Config struct {
	// Retention bounds how many fine-resolution windows are kept
	// (default 96; <0 keeps everything).
	Retention int
	// RollupRetention bounds how many sealed roll-up graphs are kept
	// (default 48; <0 keeps everything).
	RollupRetention int
	// Rollup is the coarse resolution: windows whose starts fall in the
	// same Rollup-sized bucket merge into one roll-up graph, sealed when
	// the stream moves to the next bucket (default one hour; 0 uses the
	// default, <0 disables roll-ups).
	Rollup time.Duration
	// History bounds how many past snapshots stay addressable by epoch
	// (default Retention). Queries for evicted epochs miss.
	History int
	// Telemetry, when set, receives the timeline's metrics: snapshots and
	// graphs held, approximate bytes retained, and roll-up seal latency.
	Telemetry *telemetry.Registry
	// Trace, when set, records a "timeline.rollup" span against every
	// sampled record whose window folded into a sealed roll-up.
	Trace *trace.Tracer
}

func (c *Config) defaults() {
	if c.Retention == 0 {
		c.Retention = 96
	}
	if c.RollupRetention == 0 {
		c.RollupRetention = 48
	}
	if c.Rollup == 0 {
		c.Rollup = time.Hour
	}
	if c.History == 0 {
		c.History = c.Retention
	}
}

// Snapshot is one immutable version of the timeline, produced by one
// window append. Readers may hold it as long as they like; the graphs it
// references are never mutated.
type Snapshot struct {
	// Epoch is the bus epoch of the window whose append produced this
	// snapshot; queries quoting it are repeatable until eviction.
	Epoch uint64
	// Window is that window graph — the finest-resolution latest view.
	Window *graph.Graph
	// Windows are the retained fine-resolution windows, oldest first;
	// the last entry is Window.
	Windows []*graph.Graph
	// Rollups are the sealed coarse-resolution graphs, oldest first. The
	// in-progress bucket is excluded: it is still being merged into and
	// would not be safe to read.
	Rollups []*graph.Graph
}

// Timeline is the versioned store. Append is single-writer (the bus
// delivers windows on one goroutine); every read API is safe under
// concurrent Appends.
type Timeline struct {
	cfg Config

	mu      sync.RWMutex
	windows []*graph.Graph
	rollups []*graph.Graph
	bucket  *graph.Graph // in-progress roll-up accumulator, never exposed
	bucketK int64        // unix nanos of bucket start
	history []*Snapshot  // bounded, oldest first
	latest  *Snapshot

	tracer      *trace.Tracer
	telRollup   *telemetry.Histogram
	telSeals    *telemetry.Counter
	telEvicted  *telemetry.Counter
	approxBytes int64
}

// New returns an empty timeline.
func New(cfg Config) *Timeline {
	cfg.defaults()
	t := &Timeline{cfg: cfg, tracer: cfg.Trace}
	t.instrument(cfg.Telemetry)
	return t
}

func (t *Timeline) instrument(reg *telemetry.Registry) {
	if reg == nil {
		return
	}
	t.telRollup = reg.Histogram("cloudgraph_timeline_rollup_seal_seconds",
		"time merging a roll-up bucket's member windows into its sealed graph",
		telemetry.DurBuckets)
	t.telSeals = reg.Counter("cloudgraph_timeline_rollups_sealed_total",
		"roll-up graphs sealed")
	t.telEvicted = reg.Counter("cloudgraph_timeline_snapshots_evicted_total",
		"snapshots evicted from the epoch-addressable history")
	reg.GaugeFunc("cloudgraph_timeline_snapshots_held",
		"epoch-addressable snapshots currently retained",
		func() float64 {
			t.mu.RLock()
			defer t.mu.RUnlock()
			return float64(len(t.history))
		})
	reg.GaugeFunc("cloudgraph_timeline_windows_held",
		"fine-resolution window graphs currently retained",
		func() float64 {
			t.mu.RLock()
			defer t.mu.RUnlock()
			return float64(len(t.windows))
		})
	reg.GaugeFunc("cloudgraph_timeline_rollups_held",
		"sealed roll-up graphs currently retained",
		func() float64 {
			t.mu.RLock()
			defer t.mu.RUnlock()
			return float64(len(t.rollups))
		})
	reg.GaugeFunc("cloudgraph_timeline_bytes_retained",
		"approximate memory retained by timeline graphs (graph.MemBytes layout accounting)",
		func() float64 {
			t.mu.RLock()
			defer t.mu.RUnlock()
			return float64(t.approxBytes)
		})
}

// approxGraphBytes is the bytes-retained gauge's per-graph cost. Frozen
// graphs report their exact CSR footprint; map-backed ones a cardinality
// estimate (see graph.MemBytes). The gauge's point is trend and relative
// weight, not accounting — and since windows arrive frozen from the engine,
// the trend now tracks real residency.
func approxGraphBytes(g *graph.Graph) int64 { return g.MemBytes() }

// Append folds one completed window into the timeline under the given
// epoch and returns the resulting snapshot. Windows must arrive in epoch
// order from a single goroutine (the bus consumer contract). The window
// graph must not be mutated afterwards.
func (t *Timeline) Append(epoch uint64, g *graph.Graph) *Snapshot {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.windows = append(t.windows, g)
	t.approxBytes += approxGraphBytes(g)
	if t.cfg.Retention > 0 && len(t.windows) > t.cfg.Retention {
		evict := t.windows[:len(t.windows)-t.cfg.Retention]
		for _, old := range evict {
			t.approxBytes -= approxGraphBytes(old)
		}
		t.windows = append([]*graph.Graph(nil), t.windows[len(t.windows)-t.cfg.Retention:]...)
	}
	t.rollupLocked(g)

	snap := &Snapshot{
		Epoch:   epoch,
		Window:  g,
		Windows: append([]*graph.Graph(nil), t.windows...),
		Rollups: append([]*graph.Graph(nil), t.rollups...),
	}
	t.latest = snap
	t.history = append(t.history, snap)
	if t.cfg.History > 0 && len(t.history) > t.cfg.History {
		n := len(t.history) - t.cfg.History
		t.telEvicted.Add(int64(n))
		t.history = append([]*Snapshot(nil), t.history[n:]...)
	}
	return snap
}

// rollupLocked folds g into the in-progress roll-up bucket, sealing the
// previous bucket when g starts a new one. Caller holds t.mu.
func (t *Timeline) rollupLocked(g *graph.Graph) {
	if t.cfg.Rollup < 0 {
		return
	}
	k := g.Start.Truncate(t.cfg.Rollup).UnixNano()
	if t.bucket != nil && k != t.bucketK {
		t.sealLocked()
	}
	if t.bucket == nil {
		t.bucket = graph.New(g.Facet)
		t.bucket.Start = g.Start.Truncate(t.cfg.Rollup)
		t.bucketK = k
	}
	t.bucket.Merge(g)
	// Merge widened Start to the member's; pin the bucket boundary back.
	t.bucket.Start = time.Unix(0, t.bucketK).UTC()
	if end := t.bucket.Start.Add(t.cfg.Rollup); t.bucket.End.Before(end) {
		t.bucket.End = end
	}
	// Carry the members' sampled-record contexts so the seal can close
	// their journeys with a "timeline.rollup" span.
	t.bucket.Traces = append(t.bucket.Traces, g.Traces...)
}

// sealLocked freezes the in-progress bucket into the sealed roll-ups.
// Caller holds t.mu.
func (t *Timeline) sealLocked() {
	if t.bucket == nil {
		return
	}
	start := time.Now()
	sealed := t.bucket
	t.bucket = nil
	// The bucket accumulated in map form (Merge mutates it per member
	// window); sealing is its last write, so drop it to the CSR form before
	// it becomes reachable from snapshots.
	sealed.Freeze()
	t.rollups = append(t.rollups, sealed)
	t.approxBytes += approxGraphBytes(sealed)
	if t.cfg.RollupRetention > 0 && len(t.rollups) > t.cfg.RollupRetention {
		evict := t.rollups[:len(t.rollups)-t.cfg.RollupRetention]
		for _, old := range evict {
			t.approxBytes -= approxGraphBytes(old)
		}
		t.rollups = append([]*graph.Graph(nil), t.rollups[len(t.rollups)-t.cfg.RollupRetention:]...)
	}
	d := time.Since(start)
	t.telRollup.Observe(d.Seconds())
	t.telSeals.Add(1)
	if t.tracer != nil && len(sealed.Traces) > 0 {
		note := fmt.Sprintf("rollup=%s windows=%s",
			sealed.Start.UTC().Format(time.RFC3339), t.cfg.Rollup)
		for _, tc := range sealed.Traces {
			t.tracer.Record(tc, "timeline.rollup", start, d, note)
		}
	}
}

// Seal closes the in-progress roll-up bucket — call at end of stream
// (flush) so the final partial bucket becomes readable. The next Append
// simply opens a fresh bucket.
func (t *Timeline) Seal() {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.sealLocked()
	// Re-issue the latest snapshot's roll-up view so Latest reflects the
	// seal without inventing a new epoch.
	if t.latest != nil {
		snap := &Snapshot{
			Epoch:   t.latest.Epoch,
			Window:  t.latest.Window,
			Windows: t.latest.Windows,
			Rollups: append([]*graph.Graph(nil), t.rollups...),
		}
		t.latest = snap
		if n := len(t.history); n > 0 && t.history[n-1].Epoch == snap.Epoch {
			t.history[n-1] = snap
		}
	}
}

// Latest returns the most recent snapshot, or nil before the first append.
func (t *Timeline) Latest() *Snapshot {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return t.latest
}

// At returns the snapshot for the given epoch, or nil if that epoch never
// produced one or has been evicted from history.
func (t *Timeline) At(epoch uint64) *Snapshot {
	t.mu.RLock()
	defer t.mu.RUnlock()
	// history is sorted by epoch (single-writer, in-order appends);
	// binary search it.
	lo, hi := 0, len(t.history)
	for lo < hi {
		mid := (lo + hi) / 2
		if t.history[mid].Epoch < epoch {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo < len(t.history) && t.history[lo].Epoch == epoch {
		return t.history[lo]
	}
	return nil
}

// EpochAt resolves a wall-clock instant to the epoch of the retained
// window whose [Start, End) covers it, or false when no retained window
// does (evicted epochs resolve through the durable history instead).
func (t *Timeline) EpochAt(at time.Time) (uint64, bool) {
	t.mu.RLock()
	defer t.mu.RUnlock()
	for i := len(t.history) - 1; i >= 0; i-- {
		s := t.history[i]
		if s.Window == nil {
			continue
		}
		if !s.Window.Start.After(at) && s.Window.End.After(at) {
			return s.Epoch, true
		}
	}
	return 0, false
}

// Epochs returns the addressable epoch range [oldest, newest], or (0, 0)
// when the history is empty.
func (t *Timeline) Epochs() (oldest, newest uint64) {
	t.mu.RLock()
	defer t.mu.RUnlock()
	if len(t.history) == 0 {
		return 0, 0
	}
	return t.history[0].Epoch, t.history[len(t.history)-1].Epoch
}
