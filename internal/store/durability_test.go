package store

import (
	"math/rand"
	"path/filepath"
	"testing"

	"cloudgraph/internal/telemetry"
)

func TestSyncMakesWindowsDurable(t *testing.T) {
	// After Sync, every appended window must be readable by a concurrent
	// Open — no Close required. This is the crash-durability contract the
	// daemon's OnWindow hook relies on.
	path := filepath.Join(t.TempDir(), "sync.cg")
	reg := telemetry.NewRegistry()
	w, err := Create(path)
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	w.Instrument(reg)

	rng := rand.New(rand.NewSource(11))
	g := randomGraph(rng, t0)
	if err := w.Append(g); err != nil {
		t.Fatal(err)
	}
	if err := w.Sync(); err != nil {
		t.Fatal(err)
	}
	got, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 {
		t.Fatalf("windows visible after Sync = %d, want 1", len(got))
	}
	sameGraph(t, g, got[0])

	if v := w.telWindows.Value(); v != 1 {
		t.Errorf("windows counter = %d, want 1", v)
	}
	if v := w.telBytes.Value(); v <= 4 {
		t.Errorf("bytes counter = %d, want > 4", v)
	}
	if c := w.telFsync.Count(); c != 1 {
		t.Errorf("fsync histogram count = %d, want 1", c)
	}
}

func TestCloseReportsFlushError(t *testing.T) {
	// Regression guard for the satellite fix: a window still sitting in
	// the bufio buffer that cannot reach the disk must surface from Close
	// as an error — the old path could mask it behind the file close.
	path := filepath.Join(t.TempDir(), "lost.cg")
	w, err := Create(path)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(12))
	if err := w.Append(randomGraph(rng, t0)); err != nil {
		t.Fatal(err)
	}
	// Yank the descriptor out from under the buffered writer: the
	// window is buffered but can never be written.
	if err := w.f.Close(); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err == nil {
		t.Fatal("Close returned nil although the buffered window was lost")
	}
}
