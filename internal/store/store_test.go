package store

import (
	"math/rand"
	"net/netip"
	"os"
	"path/filepath"
	"testing"
	"time"

	"cloudgraph/internal/graph"
)

var t0 = time.Unix(1700000000, 0).UTC().Truncate(time.Hour)

func randomGraph(rng *rand.Rand, start time.Time) *graph.Graph {
	g := graph.New(graph.FacetIP)
	g.Start, g.End = start, start.Add(time.Hour)
	for i := 0; i < 20+rng.Intn(30); i++ {
		a := graph.IPNode(netip.AddrFrom4([4]byte{10, 0, 0, byte(1 + rng.Intn(30))}))
		b := graph.IPNode(netip.AddrFrom4([4]byte{10, 0, 1, byte(1 + rng.Intn(30))}))
		if a == b {
			continue
		}
		g.AddEdge(a, b, graph.Counters{
			Bytes:   uint64(rng.Intn(1_000_000)),
			Packets: uint64(rng.Intn(1000)),
			Conns:   uint64(1 + rng.Intn(10)),
		})
	}
	// A few exotic nodes: IPv6, IP-port, service, collapsed, isolated.
	g.AddEdge(graph.IPNode(netip.MustParseAddr("2001:db8::1")), graph.Collapsed, graph.Counters{Bytes: 7})
	g.AddEdge(graph.IPPortNode(netip.MustParseAddr("10.9.9.9"), 443), graph.ServiceNode("svc"), graph.Counters{Bytes: 9, Conns: 1})
	g.AddNode(graph.IPNode(netip.MustParseAddr("192.0.2.200")))
	return g
}

func sameGraph(t *testing.T, a, b *graph.Graph) {
	t.Helper()
	if a.Facet != b.Facet || !a.Start.Equal(b.Start) || !a.End.Equal(b.End) {
		t.Fatalf("meta mismatch: %v %v-%v vs %v %v-%v", a.Facet, a.Start, a.End, b.Facet, b.Start, b.End)
	}
	if a.NumNodes() != b.NumNodes() || a.NumEdges() != b.NumEdges() {
		t.Fatalf("size mismatch: %d/%d vs %d/%d", a.NumNodes(), a.NumEdges(), b.NumNodes(), b.NumEdges())
	}
	an, bn := a.Nodes(), b.Nodes()
	for i := range an {
		if an[i] != bn[i] {
			t.Fatalf("node %d: %v vs %v", i, an[i], bn[i])
		}
	}
	for _, n := range an {
		for _, m := range an {
			ae, be := a.OutEdge(n, m), b.OutEdge(n, m)
			switch {
			case ae == nil && be == nil:
			case ae == nil || be == nil:
				t.Fatalf("edge presence mismatch %v->%v", n, m)
			case ae.Counters != be.Counters:
				t.Fatalf("edge %v->%v: %+v vs %+v", n, m, ae.Counters, be.Counters)
			}
		}
	}
}

func TestRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "windows.cg")
	rng := rand.New(rand.NewSource(77))
	var want []*graph.Graph
	w, err := Create(path)
	if err != nil {
		t.Fatal(err)
	}
	for h := 0; h < 5; h++ {
		g := randomGraph(rng, t0.Add(time.Duration(h)*time.Hour))
		want = append(want, g)
		if err := w.Append(g); err != nil {
			t.Fatal(err)
		}
	}
	if w.Count() != 5 {
		t.Errorf("Count = %d", w.Count())
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	got, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("windows = %d, want %d", len(got), len(want))
	}
	for i := range want {
		sameGraph(t, want[i], got[i])
	}
}

func TestAppendToExisting(t *testing.T) {
	path := filepath.Join(t.TempDir(), "w.cg")
	rng := rand.New(rand.NewSource(5))
	w, err := Create(path)
	if err != nil {
		t.Fatal(err)
	}
	w.Append(randomGraph(rng, t0))
	w.Close()
	w2, err := Create(path)
	if err != nil {
		t.Fatal(err)
	}
	w2.Append(randomGraph(rng, t0.Add(time.Hour)))
	w2.Close()
	got, err := Open(path)
	if err != nil || len(got) != 2 {
		t.Fatalf("after reopen: %d windows, %v", len(got), err)
	}
	if !got[1].Start.Equal(t0.Add(time.Hour)) {
		t.Errorf("second window start = %v", got[1].Start)
	}
}

func TestRangeQuery(t *testing.T) {
	path := filepath.Join(t.TempDir(), "r.cg")
	rng := rand.New(rand.NewSource(9))
	w, _ := Create(path)
	for h := 0; h < 6; h++ {
		w.Append(randomGraph(rng, t0.Add(time.Duration(h)*time.Hour)))
	}
	w.Close()
	got, err := Range(path, t0.Add(2*time.Hour), t0.Add(4*time.Hour))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 {
		t.Fatalf("range windows = %d, want 2", len(got))
	}
	if !got[0].Start.Equal(t0.Add(2 * time.Hour)) {
		t.Errorf("first in range = %v", got[0].Start)
	}
}

func TestOpenErrors(t *testing.T) {
	if _, err := Open(filepath.Join(t.TempDir(), "missing.cg")); err == nil {
		t.Error("want error for missing file")
	}
	bad := filepath.Join(t.TempDir(), "bad.cg")
	os.WriteFile(bad, []byte("not a store file at all"), 0o644)
	if _, err := Open(bad); err == nil {
		t.Error("want error for foreign file")
	}
	if _, err := Create(bad); err == nil {
		t.Error("Create on foreign file should fail")
	}
}

func TestTruncatedWindow(t *testing.T) {
	path := filepath.Join(t.TempDir(), "trunc.cg")
	rng := rand.New(rand.NewSource(2))
	w, _ := Create(path)
	w.Append(randomGraph(rng, t0))
	w.Close()
	b, _ := os.ReadFile(path)
	os.WriteFile(path, b[:len(b)-5], 0o644)
	if _, err := Open(path); err == nil {
		t.Error("want error for truncated window")
	}
}

func TestHistoricalDiffFromStore(t *testing.T) {
	// The §1 use case: load two past windows and ask "what changed?".
	path := filepath.Join(t.TempDir(), "hist.cg")
	a := graph.New(graph.FacetIP)
	a.Start, a.End = t0, t0.Add(time.Hour)
	a.AddEdge(graph.IPNode(netip.MustParseAddr("10.0.0.1")), graph.IPNode(netip.MustParseAddr("10.0.0.2")), graph.Counters{Bytes: 100})
	b := graph.New(graph.FacetIP)
	b.Start, b.End = t0.Add(time.Hour), t0.Add(2*time.Hour)
	b.AddEdge(graph.IPNode(netip.MustParseAddr("10.0.0.1")), graph.IPNode(netip.MustParseAddr("10.0.0.9")), graph.Counters{Bytes: 500})
	w, _ := Create(path)
	w.Append(a)
	w.Append(b)
	w.Close()
	windows, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	d := graph.Diff(windows[0], windows[1])
	if len(d.AddedPairs) != 1 || len(d.RemovedPairs) != 1 {
		t.Errorf("historical diff = %+v", d)
	}
}
