// Package store persists communication-graph windows to disk, the "store"
// box of the Figure 8 architecture: the telemetry is continuous, so an
// administrator needs "up-to-date views while also being able to do
// historical analysis such as 'what changed?' or 'what happened during that
// (past) event?'" (§1). Windows append to a single file in a compact
// binary format; readers can stream every window or load a time range.
//
// Format: a 16-byte file header (magic, version), then one length-prefixed
// window record per graph. Within a window: facet, start/end, the node
// table (deduplicated, referenced by index), then directed edges with
// counters. Edge time series are not persisted — the per-window graphs ARE
// the retained time series at window granularity.
package store

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net/netip"
	"os"
	"time"

	"cloudgraph/internal/graph"
	"cloudgraph/internal/telemetry"
	"cloudgraph/internal/trace"
)

var magic = [8]byte{'c', 'g', 'r', 'a', 'p', 'h', '0', '1'}

// ErrBadFormat is returned for corrupt or foreign files.
var ErrBadFormat = errors.New("store: bad file format")

// Writer appends window graphs to a store file.
type Writer struct {
	f *os.File
	w *bufio.Writer
	n int

	// Telemetry handles, bound by Instrument (nil when off).
	telWindows *telemetry.Counter
	telBytes   *telemetry.Counter
	telFsync   *telemetry.Histogram

	// tracer, bound by Trace (nil when off): Append closes the journey of
	// every sampled record riding the window with a "store.append" span,
	// and a failed fsync trips the flight recorder.
	tracer *trace.Tracer
}

// Instrument registers the store's metric families in reg: windows and
// bytes appended, and fsync latency. A nil registry is a no-op.
func (w *Writer) Instrument(reg *telemetry.Registry) {
	w.telWindows = reg.Counter("cloudgraph_store_windows_written_total",
		"window graphs appended to the store file")
	w.telBytes = reg.Counter("cloudgraph_store_bytes_written_total",
		"serialized window bytes appended to the store file")
	w.telFsync = reg.Histogram("cloudgraph_store_fsync_seconds",
		"time spent in fsync making appended windows durable",
		telemetry.DurBuckets)
}

// Create opens (or creates) a store file for appending. A new file gets the
// header; an existing file is validated.
func Create(path string) (*Writer, error) {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		return nil, err
	}
	st, err := f.Stat()
	if err != nil {
		//lint:allow errdrop best-effort cleanup; the Stat error is the one the caller needs
		f.Close()
		return nil, err
	}
	if st.Size() == 0 {
		if _, err := f.Write(magic[:]); err != nil {
			//lint:allow errdrop best-effort cleanup; the Write error is the one the caller needs
			f.Close()
			return nil, err
		}
		var pad [8]byte
		if _, err := f.Write(pad[:]); err != nil {
			//lint:allow errdrop best-effort cleanup; the Write error is the one the caller needs
			f.Close()
			return nil, err
		}
	} else {
		var got [8]byte
		if _, err := io.ReadFull(f, got[:]); err != nil || got != magic {
			//lint:allow errdrop best-effort cleanup; ErrBadFormat is the error the caller needs
			f.Close()
			return nil, ErrBadFormat
		}
	}
	if _, err := f.Seek(0, io.SeekEnd); err != nil {
		//lint:allow errdrop best-effort cleanup; the Seek error is the one the caller needs
		f.Close()
		return nil, err
	}
	return &Writer{f: f, w: bufio.NewWriterSize(f, 256<<10)}, nil
}

// Trace attaches tr (nil-safe, see Writer fields). Call before Append.
func (w *Writer) Trace(tr *trace.Tracer) { w.tracer = tr }

// Append serializes one window graph.
func (w *Writer) Append(g *graph.Graph) error {
	var appendStart time.Time
	if w.tracer != nil && len(g.Traces) > 0 {
		appendStart = time.Now()
	}
	body := encodeGraph(g)
	var hdr [4]byte
	binary.LittleEndian.PutUint32(hdr[:], uint32(len(body)))
	if _, err := w.w.Write(hdr[:]); err != nil {
		return err
	}
	if _, err := w.w.Write(body); err != nil {
		return err
	}
	w.n++
	w.telWindows.Add(1)
	w.telBytes.Add(int64(4 + len(body)))
	if w.tracer != nil && len(g.Traces) > 0 {
		// The last span of the record's journey: the window it folded
		// into is on disk (buffered; Sync makes it durable).
		d := time.Since(appendStart)
		note := fmt.Sprintf("window=%s bytes=%d", g.Start.UTC().Format(time.RFC3339), 4+len(body))
		for _, tc := range g.Traces {
			w.tracer.Record(tc, "store.append", appendStart, d, note)
		}
	}
	return nil
}

// Count returns windows appended by this writer.
func (w *Writer) Count() int { return w.n }

// Sync flushes buffered windows to the file and fsyncs it, making every
// Append so far durable. Call it after each window (or batch) when the
// store must survive a crash; Close syncs once more regardless.
func (w *Writer) Sync() error {
	if err := w.w.Flush(); err != nil {
		w.tracer.Trip("store", "flush failed: "+err.Error())
		return err
	}
	sp := telemetry.StartSpan(w.telFsync)
	err := w.f.Sync()
	sp.End()
	if err != nil {
		// A failed fsync means windows believed durable may be lost on
		// crash — exactly the fault the flight recorder's pre-fault
		// window exists to explain.
		w.tracer.Trip("store", "fsync failed: "+err.Error())
	}
	return err
}

// Close makes all appended windows durable and closes the file. The file
// is closed even when the flush or fsync fails, and that earlier error —
// the one that says data was lost — is the one returned, never masked by
// the close's outcome.
func (w *Writer) Close() error {
	err := w.Sync()
	if cerr := w.f.Close(); err == nil {
		err = cerr
	}
	return err
}

// encodeGraph serializes a graph. Layout (little endian):
//
//	u8  facet
//	i64 start unix, i64 end unix
//	u32 node count, then per node: u8 kind(0 ip,1 ipport,2 name),
//	    [16]addr, u16 port, u16 nameLen, name bytes
//	u32 directed edge count, then per edge: u32 src, u32 dst,
//	    u64 bytes, u64 packets, u64 conns
func encodeGraph(g *graph.Graph) []byte {
	nodes := g.Nodes()
	idx := make(map[graph.Node]uint32, len(nodes))
	buf := make([]byte, 0, 64+len(nodes)*24)
	buf = append(buf, byte(g.Facet))
	buf = binary.LittleEndian.AppendUint64(buf, uint64(g.Start.Unix()))
	buf = binary.LittleEndian.AppendUint64(buf, uint64(g.End.Unix()))
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(nodes)))
	for i, n := range nodes {
		idx[n] = uint32(i)
		kind := byte(0)
		switch {
		case n.Name != "":
			kind = 2
		case n.Port != 0:
			kind = 1
		}
		buf = append(buf, kind)
		a16 := n.Addr.As16()
		if !n.Addr.IsValid() {
			a16 = [16]byte{}
		}
		buf = append(buf, a16[:]...)
		// Remember whether the address was v4 to restore faithfully.
		if n.Addr.Is4() {
			buf = append(buf, 1)
		} else {
			buf = append(buf, 0)
		}
		buf = binary.LittleEndian.AppendUint16(buf, n.Port)
		buf = binary.LittleEndian.AppendUint16(buf, uint16(len(n.Name)))
		buf = append(buf, n.Name...)
	}
	type edge struct {
		src, dst uint32
		c        graph.Counters
	}
	var edges []edge
	g.EachOut(func(src, dst graph.Node, e *graph.Edge) {
		edges = append(edges, edge{src: idx[src], dst: idx[dst], c: e.Counters})
	})
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(edges)))
	for _, e := range edges {
		buf = binary.LittleEndian.AppendUint32(buf, e.src)
		buf = binary.LittleEndian.AppendUint32(buf, e.dst)
		buf = binary.LittleEndian.AppendUint64(buf, e.c.Bytes)
		buf = binary.LittleEndian.AppendUint64(buf, e.c.Packets)
		buf = binary.LittleEndian.AppendUint64(buf, e.c.Conns)
	}
	return buf
}

// decodeGraph is the inverse of encodeGraph.
func decodeGraph(b []byte) (*graph.Graph, error) {
	r := &byteReader{b: b}
	facet := graph.Facet(r.u8())
	start := time.Unix(int64(r.u64()), 0).UTC()
	end := time.Unix(int64(r.u64()), 0).UTC()
	nNodes := int(r.u32())
	if r.err != nil || nNodes < 0 {
		return nil, ErrBadFormat
	}
	g := graph.New(facet)
	g.Start, g.End = start, end
	nodes := make([]graph.Node, 0, nNodes)
	for i := 0; i < nNodes; i++ {
		kind := r.u8()
		var a16 [16]byte
		copy(a16[:], r.bytes(16))
		wasV4 := r.u8() == 1
		port := r.u16()
		nameLen := int(r.u16())
		name := string(r.bytes(nameLen))
		if r.err != nil {
			return nil, ErrBadFormat
		}
		var n graph.Node
		switch kind {
		case 2:
			n = graph.ServiceNode(name)
		default:
			addr := netip.AddrFrom16(a16)
			if wasV4 {
				addr = addr.Unmap()
			}
			if kind == 1 {
				n = graph.IPPortNode(addr, port)
			} else {
				n = graph.IPNode(addr)
			}
		}
		nodes = append(nodes, n)
		g.AddNode(n)
	}
	nEdges := int(r.u32())
	for i := 0; i < nEdges; i++ {
		src, dst := int(r.u32()), int(r.u32())
		c := graph.Counters{Bytes: r.u64(), Packets: r.u64(), Conns: r.u64()}
		if r.err != nil || src >= len(nodes) || dst >= len(nodes) {
			return nil, ErrBadFormat
		}
		g.AddEdge(nodes[src], nodes[dst], c)
	}
	if r.err != nil {
		return nil, ErrBadFormat
	}
	return g, nil
}

// byteReader is a tiny cursor with sticky errors.
type byteReader struct {
	b   []byte
	err error
}

func (r *byteReader) take(n int) []byte {
	if r.err != nil || len(r.b) < n {
		r.err = ErrBadFormat
		return nil
	}
	out := r.b[:n]
	r.b = r.b[n:]
	return out
}

func (r *byteReader) bytes(n int) []byte { return r.take(n) }
func (r *byteReader) u8() byte {
	b := r.take(1)
	if b == nil {
		return 0
	}
	return b[0]
}
func (r *byteReader) u16() uint16 {
	b := r.take(2)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint16(b)
}
func (r *byteReader) u32() uint32 {
	b := r.take(4)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint32(b)
}
func (r *byteReader) u64() uint64 {
	b := r.take(8)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint64(b)
}

// EncodeGraph serializes one window graph in the store's record layout
// (see encodeGraph for the byte-level format). Exported so other on-disk
// forms — the epoch-indexed history store in internal/histstore — reuse
// one codec instead of inventing a second graph serialization.
func EncodeGraph(g *graph.Graph) []byte { return encodeGraph(g) }

// DecodeGraph is the inverse of EncodeGraph. The returned graph is
// map-backed; callers retaining it long-term should Freeze it.
func DecodeGraph(b []byte) (*graph.Graph, error) { return decodeGraph(b) }

// Reader streams windows out of a store file one at a time, so replaying
// days of history holds one window in memory rather than the whole file.
// Open and Range are reimplemented on top of it.
type Reader struct {
	f  *os.File
	br *bufio.Reader
}

// OpenReader opens a store file for streaming reads, validating the
// header. The caller owns Close.
func OpenReader(path string) (*Reader, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	br := bufio.NewReaderSize(f, 256<<10)
	var got [8]byte
	if _, err := io.ReadFull(br, got[:]); err != nil || got != magic {
		//lint:allow errdrop best-effort cleanup; ErrBadFormat is the error the caller needs
		f.Close()
		return nil, ErrBadFormat
	}
	if _, err := io.CopyN(io.Discard, br, 8); err != nil {
		//lint:allow errdrop best-effort cleanup; ErrBadFormat is the error the caller needs
		f.Close()
		return nil, ErrBadFormat
	}
	return &Reader{f: f, br: br}, nil
}

// Next returns the next window in file order, or io.EOF at a clean end of
// file. A record cut off mid-body reports ErrBadFormat.
func (r *Reader) Next() (*graph.Graph, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(r.br, hdr[:]); err == io.EOF {
		return nil, io.EOF
	} else if err != nil {
		return nil, ErrBadFormat
	}
	n := binary.LittleEndian.Uint32(hdr[:])
	if n > 1<<31 {
		return nil, ErrBadFormat
	}
	body := make([]byte, n)
	if _, err := io.ReadFull(r.br, body); err != nil {
		return nil, fmt.Errorf("%w: truncated window", ErrBadFormat)
	}
	return decodeGraph(body)
}

// Close releases the underlying file.
func (r *Reader) Close() error { return r.f.Close() }

// Open reads a store file and returns all windows in file order. Use Range
// to restrict by time, or OpenReader to stream without materializing the
// slice.
func Open(path string) ([]*graph.Graph, error) {
	r, err := OpenReader(path)
	if err != nil {
		return nil, err
	}
	defer r.Close()
	var out []*graph.Graph
	for {
		g, err := r.Next()
		if err == io.EOF {
			return out, nil
		}
		if err != nil {
			return nil, err
		}
		out = append(out, g)
	}
}

// Range loads only the windows overlapping [from, to), streaming the file
// so out-of-range windows are never retained.
func Range(path string, from, to time.Time) ([]*graph.Graph, error) {
	r, err := OpenReader(path)
	if err != nil {
		return nil, err
	}
	defer r.Close()
	var out []*graph.Graph
	for {
		g, err := r.Next()
		if err == io.EOF {
			return out, nil
		}
		if err != nil {
			return nil, err
		}
		if g.End.After(from) && g.Start.Before(to) {
			out = append(out, g)
		}
	}
}
