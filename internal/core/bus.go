package core

import (
	"log/slog"
	"sync"
	"sync/atomic"

	"cloudgraph/internal/graph"
	"cloudgraph/internal/telemetry"
	"cloudgraph/internal/trace"
)

// WindowConsumer receives completed windows from the engine's fan-out bus.
// epoch is the window's position in the engine's completed-window sequence
// (1-based, strictly increasing); the same epoch identifies the window in
// the timeline and in every analysis result, so queries against different
// consumers line up. A consumer runs on its own goroutine and sees windows
// in epoch order, though it may skip epochs if it falls behind (see the
// slow-consumer policy on Bus). Consumers may use the engine's read APIs
// (Windows, Latest, Monitor, Summary) but must not call Ingest or Flush —
// Flush waits for consumers to drain, so a consumer flushing would
// deadlock waiting on itself (cloudgraph-vet's busconsumer rule enforces
// this).
type WindowConsumer func(epoch uint64, g *graph.Graph)

// ConsumerSpec declares one bus consumer registered at engine
// construction via Config.Consumers.
type ConsumerSpec struct {
	// Name labels the consumer in telemetry (bus depth and drop counters)
	// and log events.
	Name string
	// Fn receives each completed window.
	Fn WindowConsumer
	// Buffer overrides Config.ConsumerBuffer for this consumer (0 keeps
	// the config-wide default).
	Buffer int
}

// defaultConsumerBuffer is the per-consumer queue capacity when neither
// Config.ConsumerBuffer nor ConsumerSpec.Buffer sets one.
const defaultConsumerBuffer = 64

// busItem is one queued window delivery.
type busItem struct {
	epoch uint64
	g     *graph.Graph
}

// busConsumer is one subscriber lane: a bounded FIFO drained by a
// dedicated goroutine. The publisher never blocks on it — when the queue
// is full the oldest undelivered window is dropped (and counted) so the
// freshest view always gets through. A single publisher (the engine's
// close path, serialized by closeMu) guarantees deliveries stay in epoch
// order.
type busConsumer struct {
	name string
	fn   WindowConsumer
	cap  int

	mu     sync.Mutex
	cond   *sync.Cond
	queue  []busItem
	busy   bool // fn currently running
	closed bool

	depth     *telemetry.Gauge
	drops     *telemetry.Counter
	delivered *telemetry.Counter

	// Plain counters mirror the telemetry handles so Bus.Stats (the
	// /statusz view) works with telemetry disabled too.
	dropsN     atomic.Uint64
	deliveredN atomic.Uint64
}

func newBusConsumer(spec ConsumerSpec, buffer int) *busConsumer {
	if spec.Buffer > 0 {
		buffer = spec.Buffer
	}
	if buffer <= 0 {
		buffer = defaultConsumerBuffer
	}
	c := &busConsumer{name: spec.Name, fn: spec.Fn, cap: buffer}
	c.cond = sync.NewCond(&c.mu)
	return c
}

// publish enqueues one window, dropping the oldest queued item when the
// consumer is at capacity. It never blocks: the merge path must finish in
// window-construction time regardless of how slow any consumer is.
func (c *busConsumer) publish(epoch uint64, g *graph.Graph) (dropped bool) {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return false
	}
	if len(c.queue) >= c.cap {
		// Drop-oldest: a consumer in arrears wants the freshest windows,
		// and analyses resynchronize on the next epoch they do see.
		copy(c.queue, c.queue[1:])
		c.queue = c.queue[:len(c.queue)-1]
		dropped = true
	}
	c.queue = append(c.queue, busItem{epoch: epoch, g: g})
	c.depth.Set(int64(len(c.queue)))
	c.cond.Broadcast()
	c.mu.Unlock()
	if dropped {
		c.drops.Add(1)
		c.dropsN.Add(1)
	}
	return dropped
}

// loop drains the queue, invoking fn outside the lock. It keeps draining
// after close until the queue is empty, so Close never loses queued
// windows.
func (c *busConsumer) loop() {
	for {
		c.mu.Lock()
		for len(c.queue) == 0 && !c.closed {
			//lint:allow lockscope Cond.Wait atomically releases c.mu while parked; nothing is held
			c.cond.Wait()
		}
		if len(c.queue) == 0 {
			c.mu.Unlock()
			return
		}
		it := c.queue[0]
		copy(c.queue, c.queue[1:])
		c.queue = c.queue[:len(c.queue)-1]
		c.busy = true
		c.depth.Set(int64(len(c.queue)))
		c.mu.Unlock()
		c.fn(it.epoch, it.g)
		c.delivered.Add(1)
		c.deliveredN.Add(1)
		c.mu.Lock()
		c.busy = false
		c.cond.Broadcast() // wake drain waiters
		c.mu.Unlock()
	}
}

// drain blocks until the queue is empty and no delivery is in flight.
func (c *busConsumer) drain() {
	c.mu.Lock()
	for len(c.queue) > 0 || c.busy {
		//lint:allow lockscope Cond.Wait atomically releases c.mu while parked; nothing is held
		c.cond.Wait()
	}
	c.mu.Unlock()
}

// close stops the loop once the queue drains.
func (c *busConsumer) close() {
	c.mu.Lock()
	c.closed = true
	c.cond.Broadcast()
	c.mu.Unlock()
}

// Bus fans completed windows out to registered consumers. One bus lives
// inside each Engine; the engine's close path is its only publisher, so
// every consumer observes windows in epoch order.
//
// Slow-consumer policy: each consumer has a bounded queue (ConsumerSpec
// .Buffer / Config.ConsumerBuffer, default 64 windows). Publishing never
// blocks the merge path; when a queue is full the oldest undelivered
// window is dropped and counted in
// cloudgraph_core_bus_dropped_total{consumer=...}. A drop skips epochs
// for that consumer only — the store, the timeline and every analysis
// degrade independently instead of backpressuring graph construction.
type Bus struct {
	mu        sync.Mutex
	consumers []*busConsumer
	wg        sync.WaitGroup
	closed    bool
	buffer    int
	reg       *telemetry.Registry
	tracer    *trace.Tracer
}

func newBus(buffer int, reg *telemetry.Registry, tracer *trace.Tracer) *Bus {
	return &Bus{buffer: buffer, reg: reg, tracer: tracer}
}

// Subscribe registers a consumer and starts its delivery goroutine.
// Consumers registered after windows have completed simply miss the
// earlier epochs. Subscribing on a closed bus is a no-op.
func (b *Bus) Subscribe(spec ConsumerSpec) {
	if spec.Fn == nil {
		return
	}
	c := newBusConsumer(spec, b.buffer)
	if b.reg != nil {
		label := telemetry.Label{Key: "consumer", Value: c.name}
		c.depth = b.reg.Gauge("cloudgraph_core_bus_depth",
			"windows queued per bus consumer", label)
		c.drops = b.reg.Counter("cloudgraph_core_bus_dropped_total",
			"windows dropped per bus consumer under the drop-oldest policy", label)
		c.delivered = b.reg.Counter("cloudgraph_core_bus_delivered_total",
			"windows delivered per bus consumer", label)
	}
	b.mu.Lock()
	if b.closed {
		b.mu.Unlock()
		return
	}
	b.consumers = append(b.consumers, c)
	b.mu.Unlock()
	b.wg.Add(1)
	go func() {
		defer b.wg.Done()
		c.loop()
	}()
}

// snapshot returns the current consumer set.
func (b *Bus) snapshot() []*busConsumer {
	b.mu.Lock()
	out := make([]*busConsumer, len(b.consumers))
	copy(out, b.consumers)
	b.mu.Unlock()
	return out
}

// publish hands one completed window to every consumer.
func (b *Bus) publish(epoch uint64, g *graph.Graph) {
	for _, c := range b.snapshot() {
		if c.publish(epoch, g) {
			b.tracer.Eventf(trace.Context{}, "core", slog.LevelWarn,
				"bus consumer %q in arrears: dropped oldest queued window (epoch %d published)", c.name, epoch)
		}
	}
}

// Drain blocks until every consumer has processed everything published so
// far. It must not be called from a consumer (that would wait on itself);
// the engine calls it from Flush so tests and the FLUSH command observe a
// fully settled plane.
func (b *Bus) Drain() {
	for _, c := range b.snapshot() {
		c.drain()
	}
}

// Close drains and stops all consumer goroutines. Windows published
// before Close are still delivered. Idempotent.
func (b *Bus) Close() {
	b.mu.Lock()
	if b.closed {
		b.mu.Unlock()
		return
	}
	b.closed = true
	consumers := make([]*busConsumer, len(b.consumers))
	copy(consumers, b.consumers)
	b.mu.Unlock()
	for _, c := range consumers {
		c.close()
	}
	b.wg.Wait()
}

// Consumers returns the registered consumer names in subscription order.
func (b *Bus) Consumers() []string {
	b.mu.Lock()
	defer b.mu.Unlock()
	out := make([]string, len(b.consumers))
	for i, c := range b.consumers {
		out[i] = c.name
	}
	return out
}

// ConsumerStat is one bus consumer's point-in-time accounting — the
// /statusz row.
type ConsumerStat struct {
	Name      string `json:"name"`
	Depth     int    `json:"depth"`
	Capacity  int    `json:"capacity"`
	Dropped   uint64 `json:"dropped"`
	Delivered uint64 `json:"delivered"`
}

// Stats returns per-consumer depth, capacity and drop/delivery totals in
// subscription order. Unlike the telemetry handles these always count, so
// the view works on an uninstrumented engine.
func (b *Bus) Stats() []ConsumerStat {
	consumers := b.snapshot()
	out := make([]ConsumerStat, len(consumers))
	for i, c := range consumers {
		c.mu.Lock()
		depth := len(c.queue)
		c.mu.Unlock()
		out[i] = ConsumerStat{
			Name:      c.name,
			Depth:     depth,
			Capacity:  c.cap,
			Dropped:   c.dropsN.Load(),
			Delivered: c.deliveredN.Load(),
		}
	}
	return out
}

// Depth returns the queued-window count for the named consumer (0 if
// unknown).
func (b *Bus) Depth(name string) int {
	for _, c := range b.snapshot() {
		if c.name == name {
			c.mu.Lock()
			n := len(c.queue)
			c.mu.Unlock()
			return n
		}
	}
	return 0
}
