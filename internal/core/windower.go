// Package core is the heart of the system: it turns the continuous
// connection-summary stream into the time series of communication graphs
// the paper's analyses consume ("we can generate a time-series of graphs",
// §1), and orchestrates those analyses — segmentation, policy monitoring,
// succinct summaries and anomaly detection — over the windows.
package core

import (
	"sort"
	"time"

	"cloudgraph/internal/flowlog"
	"cloudgraph/internal/graph"
)

// Windower splits a record stream into fixed windows (hours, in the paper's
// figures) and builds one communication graph per window. Records may
// arrive slightly out of order; a window closes when a record at least one
// full window newer arrives, or at Flush.
type Windower struct {
	window time.Duration
	opts   graph.BuilderOptions
	// OnComplete, when set, is called with each finished graph in window
	// order.
	OnComplete func(*graph.Graph)

	builders map[time.Time]*graph.Builder
	maxStart time.Time
	done     []*graph.Graph
}

// NewWindower returns a Windower with the given window size (default one
// hour) and builder options.
func NewWindower(window time.Duration, opts graph.BuilderOptions) *Windower {
	if window <= 0 {
		window = time.Hour
	}
	return &Windower{
		window:   window,
		opts:     opts,
		builders: make(map[time.Time]*graph.Builder),
	}
}

// Add routes one record into its window's builder.
func (w *Windower) Add(rec flowlog.Record) {
	if !rec.Valid() {
		return
	}
	start := rec.Time.Truncate(w.window)
	b, ok := w.builders[start]
	if !ok {
		b = graph.NewBuilder(w.opts)
		w.builders[start] = b
	}
	b.Add(rec)
	if start.After(w.maxStart) {
		w.maxStart = start
		w.closeBefore(start)
	}
}

// closeBefore finishes every window strictly older than cutoff.
func (w *Windower) closeBefore(cutoff time.Time) {
	var starts []time.Time
	for s := range w.builders {
		if s.Before(cutoff) {
			starts = append(starts, s)
		}
	}
	sort.Slice(starts, func(i, j int) bool { return starts[i].Before(starts[j]) })
	for _, s := range starts {
		g := w.builders[s].Finish()
		// The graph covers its whole window, not just the span of the
		// records that happened to arrive.
		g.Start = s
		g.End = s.Add(w.window)
		delete(w.builders, s)
		w.done = append(w.done, g)
		if w.OnComplete != nil {
			w.OnComplete(g)
		}
	}
}

// Flush closes all open windows and returns every completed graph in
// window order. The Windower can keep accepting records afterwards.
func (w *Windower) Flush() []*graph.Graph {
	w.closeBefore(w.maxStart.Add(w.window))
	out := make([]*graph.Graph, len(w.done))
	copy(out, w.done)
	sort.Slice(out, func(i, j int) bool { return out[i].Start.Before(out[j].Start) })
	return out
}

// Pending returns the number of still-open windows.
func (w *Windower) Pending() int { return len(w.builders) }
