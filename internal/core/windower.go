// Package core is the heart of the system: it turns the continuous
// connection-summary stream into the time series of communication graphs
// the paper's analyses consume ("we can generate a time-series of graphs",
// §1), and orchestrates those analyses — segmentation, policy monitoring,
// succinct summaries and anomaly detection — over the windows.
package core

import (
	"sort"
	"time"

	"cloudgraph/internal/flowlog"
	"cloudgraph/internal/graph"
)

// Windower splits a record stream into fixed windows (hours, in the paper's
// figures) and builds one communication graph per window. Records may
// arrive slightly out of order; a window closes when a record at least one
// full window newer arrives, or at Flush.
type Windower struct {
	window time.Duration
	opts   graph.BuilderOptions
	// OnComplete, when set, is called with each finished graph in window
	// order.
	OnComplete func(*graph.Graph)

	builders map[time.Time]*graph.Builder
	maxStart time.Time
	done     []*graph.Graph
}

// NewWindower returns a Windower with the given window size (default one
// hour) and builder options.
func NewWindower(window time.Duration, opts graph.BuilderOptions) *Windower {
	if window <= 0 {
		window = time.Hour
	}
	return &Windower{
		window:   window,
		opts:     opts,
		builders: make(map[time.Time]*graph.Builder),
	}
}

// Add routes one record into its window's builder.
func (w *Windower) Add(rec flowlog.Record) {
	if !rec.Valid() {
		return
	}
	start := rec.Time.Truncate(w.window)
	b, ok := w.builders[start]
	if !ok {
		b = graph.NewBuilder(w.opts)
		w.builders[start] = b
	}
	b.Add(rec)
	if start.After(w.maxStart) {
		w.maxStart = start
		w.emit(w.closeBefore(start))
	}
}

// closeBefore finishes every window strictly older than cutoff and returns
// the completed graphs in window order.
func (w *Windower) closeBefore(cutoff time.Time) []*graph.Graph {
	var starts []time.Time
	for s := range w.builders {
		if s.Before(cutoff) {
			starts = append(starts, s)
		}
	}
	sort.Slice(starts, func(i, j int) bool { return starts[i].Before(starts[j]) })
	closed := make([]*graph.Graph, 0, len(starts))
	for _, s := range starts {
		g := w.builders[s].Finish()
		// The graph covers its whole window, not just the span of the
		// records that happened to arrive.
		g.Start = s
		g.End = s.Add(w.window)
		delete(w.builders, s)
		closed = append(closed, g)
	}
	return closed
}

// emit hands completed graphs to OnComplete, or retains them for Flush when
// no hook is set. A hook consumer owns the graphs; retaining them here too
// would hold every window in memory twice for the life of the process.
func (w *Windower) emit(closed []*graph.Graph) {
	for _, g := range closed {
		if w.OnComplete != nil {
			w.OnComplete(g)
		} else {
			w.done = append(w.done, g)
		}
	}
}

// CloseUpTo finishes every window strictly older than cutoff, regardless of
// what record times have been seen, delivering the graphs as usual (to
// OnComplete, or to the next Flush). The sharded engine uses this to force
// all shards to close a window once any shard has advanced past it.
func (w *Windower) CloseUpTo(cutoff time.Time) {
	w.emit(w.closeBefore(cutoff))
}

// MaxStart returns the start of the newest window any record has touched.
func (w *Windower) MaxStart() time.Time { return w.maxStart }

// Flush closes all open windows and returns the completed graphs not yet
// consumed, in window order, draining them from the Windower: a second
// Flush with no intervening records returns nothing, and graphs delivered
// through OnComplete are never retained here. The Windower can keep
// accepting records afterwards.
func (w *Windower) Flush() []*graph.Graph {
	w.emit(w.closeBefore(w.maxStart.Add(w.window)))
	out := w.done
	w.done = nil
	sort.Slice(out, func(i, j int) bool { return out[i].Start.Before(out[j].Start) })
	return out
}

// Pending returns the number of still-open windows.
func (w *Windower) Pending() int { return len(w.builders) }

// Retained returns the number of completed graphs held for the next Flush.
func (w *Windower) Retained() int { return len(w.done) }
