package core

import (
	"strconv"

	"cloudgraph/internal/telemetry"
)

// engineMetrics holds the engine's preallocated telemetry handles. All
// handles are grabbed once at construction so the hot path never touches
// the registry; with telemetry disabled every handle is nil and each
// instrumentation point costs one predictable branch (the nil-receiver
// no-op), which is what keeps the instrumented ingest path within the
// benchmark budget.
type engineMetrics struct {
	// shardRecords counts records folded per ingest shard — the shard
	// balance view. Always sized len(shards); entries are nil when
	// telemetry is off.
	shardRecords []*telemetry.Counter
	// merge times closeShards: closing windows across shards plus the
	// cross-shard partial merge.
	merge *telemetry.Histogram
	// hook times the OnWindow callback (store appends ride on it).
	hook *telemetry.Histogram
	// windows counts completed (merged, collapsed) windows.
	windows *telemetry.Counter
	// flushLag samples how many whole windows each merge pass emitted: 1
	// is a stream keeping up, larger values mean windows were closed in
	// arrears (the window-lag view of the ops endpoint).
	flushLag *telemetry.Histogram
}

// instrument registers the engine's metric families in reg and
// preallocates the handles. A nil registry leaves every handle nil.
func (e *Engine) instrument(reg *telemetry.Registry) {
	e.tel.shardRecords = make([]*telemetry.Counter, len(e.shards))
	if reg == nil {
		return
	}
	for i := range e.shards {
		e.tel.shardRecords[i] = reg.Counter("cloudgraph_core_shard_records_total",
			"records folded per ingest shard",
			telemetry.Label{Key: "shard", Value: strconv.Itoa(i)})
	}
	e.tel.merge = reg.Histogram("cloudgraph_core_window_merge_seconds",
		"time closing windows across shards and merging their partial graphs",
		telemetry.DurBuckets)
	e.tel.hook = reg.Histogram("cloudgraph_core_onwindow_seconds",
		"time spent in the OnWindow hook per completed window",
		telemetry.DurBuckets)
	e.tel.windows = reg.Counter("cloudgraph_core_windows_completed_total",
		"completed window graphs emitted by the engine")
	e.tel.flushLag = reg.Histogram("cloudgraph_core_window_flush_lag_windows",
		"whole windows emitted per merge pass; >1 means the close ran in arrears",
		telemetry.CountBuckets)
	reg.GaugeFunc("cloudgraph_core_open_windows",
		"still-open windows summed across shards",
		func() float64 {
			total := 0
			for _, sh := range e.shards {
				sh.mu.Lock()
				total += sh.windower.Pending()
				sh.mu.Unlock()
			}
			return float64(total)
		})
	reg.GaugeFunc("cloudgraph_core_pending_merge_windows",
		"per-shard partial windows queued for the cross-shard merge",
		func() float64 {
			e.pendMu.Lock()
			n := len(e.pending)
			e.pendMu.Unlock()
			return float64(n)
		})
	e.meter.Instrument(reg)
}
