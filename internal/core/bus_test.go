package core

import (
	"strings"
	"sync"
	"testing"
	"time"

	"cloudgraph/internal/flowlog"
	"cloudgraph/internal/graph"
	"cloudgraph/internal/telemetry"
)

// busRecs builds a tiny deterministic batch spanning n hourly windows.
func busRecs(n int) []flowlog.Record {
	recs := make([]flowlog.Record, 0, n)
	for i := 0; i < n; i++ {
		recs = append(recs, rec(t0.Add(time.Duration(i)*time.Hour), 1000, 100))
	}
	return recs
}

// TestBusFanOut: every consumer sees every window, in epoch order, with
// epochs starting at 1 and contiguous; Flush drains all consumers.
func TestBusFanOut(t *testing.T) {
	type seen struct {
		mu     sync.Mutex
		epochs []uint64
	}
	var a, b seen
	collect := func(s *seen) WindowConsumer {
		return func(epoch uint64, g *graph.Graph) {
			s.mu.Lock()
			s.epochs = append(s.epochs, epoch)
			s.mu.Unlock()
		}
	}
	e := NewEngine(Config{
		Window: time.Hour,
		Consumers: []ConsumerSpec{
			{Name: "a", Fn: collect(&a)},
			{Name: "b", Fn: collect(&b)},
		},
	})
	defer e.Close()
	e.Ingest(busRecs(4))
	wins := e.Flush()
	if len(wins) != 4 {
		t.Fatalf("windows = %d, want 4", len(wins))
	}
	for name, s := range map[string]*seen{"a": &a, "b": &b} {
		s.mu.Lock()
		got := append([]uint64(nil), s.epochs...)
		s.mu.Unlock()
		if len(got) != 4 {
			t.Fatalf("consumer %s saw %d windows, want 4 (Flush must drain)", name, len(got))
		}
		for i, ep := range got {
			if ep != uint64(i+1) {
				t.Fatalf("consumer %s epochs = %v, want contiguous from 1", name, got)
			}
		}
	}
	if e.Epoch() != 4 {
		t.Fatalf("Epoch() = %d, want 4", e.Epoch())
	}
}

// TestBusOnWindowCompat: the legacy OnWindow hook rides the bus as the
// "hook" consumer and still observes every window by the time Flush
// returns.
func TestBusOnWindowCompat(t *testing.T) {
	var mu sync.Mutex
	var n int
	e := NewEngine(Config{
		Window: time.Hour,
		OnWindow: func(g *graph.Graph) {
			mu.Lock()
			n++
			mu.Unlock()
		},
	})
	defer e.Close()
	e.Ingest(busRecs(3))
	e.Flush()
	mu.Lock()
	defer mu.Unlock()
	if n != 3 {
		t.Fatalf("OnWindow fired %d times, want 3", n)
	}
	if got := e.Bus().Consumers(); len(got) != 1 || got[0] != "hook" {
		t.Fatalf("bus consumers = %v, want [hook]", got)
	}
}

// TestBusDropOldest: a consumer slower than the stream loses the oldest
// queued windows — never the newest — and the drops are counted; the
// publisher is never blocked.
func TestBusDropOldest(t *testing.T) {
	reg := telemetry.NewRegistry()
	entered := make(chan struct{}) // closed when the first delivery is in flight
	release := make(chan struct{})
	var once sync.Once
	var mu sync.Mutex
	var got []uint64
	e := NewEngine(Config{
		Window:    time.Hour,
		Telemetry: reg,
		Consumers: []ConsumerSpec{{
			Name:   "slow",
			Buffer: 2,
			Fn: func(epoch uint64, g *graph.Graph) {
				once.Do(func() { close(entered) })
				<-release // hold deliveries until all windows are published
				mu.Lock()
				got = append(got, epoch)
				mu.Unlock()
			},
		}},
	})
	defer e.Close()

	all := busRecs(6)
	e.Ingest(all[:2]) // closes the first window: epoch 1 delivered
	<-entered         // epoch 1 now in flight, queue empty
	// Publish epochs 2..6 while the consumer is stuck. The queue holds 2,
	// so only the newest two survive: 4 evicts 2, 5 evicts 3, 6 evicts 4.
	e.Ingest(all[2:])
	e.closeMu.Lock()
	e.closeShards(time.Time{}, true)
	e.closeMu.Unlock()
	// All six published (publish never blocks even with fn stuck).
	if e.Epoch() != 6 {
		t.Fatalf("Epoch() = %d before release, want 6 (publisher must not block)", e.Epoch())
	}
	close(release)
	e.bus.Drain()

	mu.Lock()
	defer mu.Unlock()
	// Deterministic final state: epoch 1 in flight, epochs 5 and 6 queued.
	want := []uint64{1, 5, 6}
	if len(got) != len(want) {
		t.Fatalf("delivered epochs = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("delivered epochs = %v, want %v", got, want)
		}
	}
	var b strings.Builder
	if err := reg.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), `cloudgraph_core_bus_dropped_total{consumer="slow"} 3`) {
		t.Fatalf("drop counter missing or wrong:\n%s", b.String())
	}
}

// TestBusCloseIdempotent: Close twice, and Close delivers queued windows.
func TestBusCloseIdempotent(t *testing.T) {
	var mu sync.Mutex
	var n int
	e := NewEngine(Config{
		Window: time.Hour,
		Consumers: []ConsumerSpec{{Name: "c", Fn: func(uint64, *graph.Graph) {
			mu.Lock()
			n++
			mu.Unlock()
		}}},
	})
	e.Ingest(busRecs(2))
	e.closeMu.Lock()
	e.closeShards(time.Time{}, true)
	e.closeMu.Unlock()
	e.Close() // must deliver both queued windows before stopping
	e.Close()
	mu.Lock()
	defer mu.Unlock()
	if n != 2 {
		t.Fatalf("consumer saw %d windows across Close, want 2", n)
	}
}

// TestBusLateSubscribe: a consumer added after some windows completed sees
// only the later epochs.
func TestBusLateSubscribe(t *testing.T) {
	var mu sync.Mutex
	var got []uint64
	e := NewEngine(Config{Window: time.Hour})
	defer e.Close()
	e.Ingest(busRecs(2))
	e.closeMu.Lock()
	e.closeShards(time.Time{}, true)
	e.closeMu.Unlock()
	first := e.Epoch()
	e.Subscribe(ConsumerSpec{Name: "late", Fn: func(epoch uint64, g *graph.Graph) {
		mu.Lock()
		got = append(got, epoch)
		mu.Unlock()
	}})
	e.Ingest(busRecs(4)[first:]) // two more hourly windows
	e.Flush()
	mu.Lock()
	defer mu.Unlock()
	for _, ep := range got {
		if ep <= first {
			t.Fatalf("late subscriber saw pre-subscription epoch %d (subscribed after %d)", ep, first)
		}
	}
	if len(got) == 0 {
		t.Fatal("late subscriber saw nothing")
	}
}
