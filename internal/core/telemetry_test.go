package core

import (
	"strconv"
	"strings"
	"testing"
	"time"

	"cloudgraph/internal/graph"
	"cloudgraph/internal/telemetry"
)

func TestEngineTelemetry(t *testing.T) {
	reg := telemetry.NewRegistry()
	var hooked int
	e := NewEngine(Config{
		Window:    time.Hour,
		Shards:    4,
		Telemetry: reg,
		OnWindow:  func(*graph.Graph) { hooked++ },
	})
	recs := engineRecords(t, 3)
	for i := 0; i < len(recs); i += 97 {
		end := i + 97
		if end > len(recs) {
			end = len(recs)
		}
		e.Ingest(recs[i:end])
	}
	if got := len(e.Flush()); got != 3 {
		t.Fatalf("windows = %d, want 3", got)
	}

	var perShard int64
	for i := 0; i < 4; i++ {
		perShard += reg.Counter("cloudgraph_core_shard_records_total",
			"records folded per ingest shard",
			telemetry.Label{Key: "shard", Value: strconv.Itoa(i)}).Value()
	}
	if perShard != int64(len(recs)) {
		t.Errorf("shard counters sum to %d, want %d", perShard, len(recs))
	}
	if got := e.tel.windows.Value(); got != 3 {
		t.Errorf("windows counter = %d, want 3", got)
	}
	if hooked != 3 {
		t.Fatalf("OnWindow fired %d times, want 3", hooked)
	}
	if got := e.tel.hook.Count(); got != 3 {
		t.Errorf("hook histogram count = %d, want 3", got)
	}
	if e.tel.merge.Count() == 0 {
		t.Error("merge histogram recorded nothing")
	}
	if e.tel.flushLag.Count() == 0 {
		t.Error("flush-lag histogram recorded nothing")
	}
	// The engine's meter mirrors into the shared ingest families.
	if got := reg.Counter("cloudgraph_ingest_records_total",
		"connection summaries accepted by an ingest path").Value(); got != int64(len(recs)) {
		t.Errorf("ingest records counter = %d, want %d", got, len(recs))
	}

	var b strings.Builder
	if err := reg.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, fam := range []string{
		"cloudgraph_core_shard_records_total",
		"cloudgraph_core_window_merge_seconds_bucket",
		"cloudgraph_core_windows_completed_total 3",
		"cloudgraph_core_open_windows 0",
		"cloudgraph_core_pending_merge_windows 0",
		"cloudgraph_ingest_bytes_total",
	} {
		if !strings.Contains(out, fam) {
			t.Errorf("exposition missing %q", fam)
		}
	}
}

func TestEngineTelemetryDisabled(t *testing.T) {
	// With no registry every handle is nil and ingest must still work —
	// the nil-receiver no-op path the overhead budget depends on.
	e := NewEngine(Config{Window: time.Hour, Shards: 2})
	e.Ingest(engineRecords(t, 1))
	if got := len(e.Flush()); got != 1 {
		t.Fatalf("windows = %d, want 1", got)
	}
	if len(e.tel.shardRecords) != 2 {
		t.Fatalf("shardRecords len = %d, want 2 (sized even when off)", len(e.tel.shardRecords))
	}
	for i, c := range e.tel.shardRecords {
		if c != nil {
			t.Errorf("shard %d counter non-nil with telemetry off", i)
		}
	}
}
