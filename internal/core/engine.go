package core

import (
	"sync"
	"time"

	"cloudgraph/internal/flowlog"
	"cloudgraph/internal/graph"
	"cloudgraph/internal/ingest"
	"cloudgraph/internal/policy"
	"cloudgraph/internal/segment"
	"cloudgraph/internal/summarize"
)

// Config parameterizes an Engine.
type Config struct {
	// Window is the graph window size. Default one hour.
	Window time.Duration
	// Facet selects node granularity for the graphs. Default FacetIP.
	Facet graph.Facet
	// Label maps addresses to services for FacetService graphs.
	Label graph.Labeler
	// Collapse configures heavy-hitter collapsing applied to each
	// completed window (Threshold 0 disables).
	Collapse graph.CollapseOptions
	// Strategy and Segment configure auto-segmentation. Default is the
	// paper's Jaccard+Louvain.
	Strategy segment.Strategy
	Segment  segment.Options
	// MaxWindows bounds retained history (0 = keep everything).
	MaxWindows int
	// KeepSeries records per-interval time series on edges.
	KeepSeries bool
	// OnWindow, when set, is called with each completed (and collapsed)
	// window — the hook durable stores attach to.
	OnWindow func(*graph.Graph)
}

func (c *Config) defaults() {
	if c.Window <= 0 {
		c.Window = time.Hour
	}
	if c.Strategy == "" {
		c.Strategy = segment.StrategyJaccardLouvain
	}
}

// Engine consumes connection summaries and maintains the dynamic view: the
// rolling window graphs plus the learned segmentation and reachability
// policy. It is safe for concurrent use.
type Engine struct {
	cfg Config

	mu       sync.Mutex
	windower *Windower
	windows  []*graph.Graph // collapsed, completed windows in order
	meter    *ingest.Meter

	// baseline state, established by Learn.
	assign segment.Assignment
	reach  *policy.Reachability
}

// NewEngine returns an Engine with the given config.
func NewEngine(cfg Config) *Engine {
	cfg.defaults()
	e := &Engine{cfg: cfg, meter: ingest.NewMeter()}
	e.windower = NewWindower(cfg.Window, graph.BuilderOptions{
		Facet:      cfg.Facet,
		Label:      cfg.Label,
		KeepSeries: cfg.KeepSeries,
	})
	e.windower.OnComplete = e.onWindow
	return e
}

// onWindow collapses and stores a completed window. Caller holds e.mu.
func (e *Engine) onWindow(g *graph.Graph) {
	if e.cfg.Collapse.Threshold > 0 || e.cfg.Collapse.Keep != nil {
		g = g.Collapse(e.cfg.Collapse)
	}
	e.windows = append(e.windows, g)
	if e.cfg.MaxWindows > 0 && len(e.windows) > e.cfg.MaxWindows {
		e.windows = e.windows[len(e.windows)-e.cfg.MaxWindows:]
	}
	if e.cfg.OnWindow != nil {
		e.cfg.OnWindow(g)
	}
}

// Ingest adds a batch of records.
func (e *Engine) Ingest(recs []flowlog.Record) {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.meter.Observe(len(recs))
	for _, r := range recs {
		e.windower.Add(r)
	}
}

// Collect implements nicsim.Collector, so an Engine can sit directly at the
// end of the collection path of Figure 7.
func (e *Engine) Collect(recs []flowlog.Record) error {
	e.Ingest(recs)
	return nil
}

// Flush closes open windows and returns all completed window graphs.
func (e *Engine) Flush() []*graph.Graph {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.windower.Flush()
	out := make([]*graph.Graph, len(e.windows))
	copy(out, e.windows)
	return out
}

// Windows returns the completed window graphs without flushing.
func (e *Engine) Windows() []*graph.Graph {
	e.mu.Lock()
	defer e.mu.Unlock()
	out := make([]*graph.Graph, len(e.windows))
	copy(out, e.windows)
	return out
}

// Latest returns the most recent completed window, or nil.
func (e *Engine) Latest() *graph.Graph {
	e.mu.Lock()
	defer e.mu.Unlock()
	if len(e.windows) == 0 {
		return nil
	}
	return e.windows[len(e.windows)-1]
}

// Cost returns the ingest cost report so far.
func (e *Engine) Cost() ingest.CostReport {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.meter.Snapshot()
}

// Learn segments the given window (typically the first clean one) and
// derives the reachability policy from it, establishing the engine's
// baseline. It returns the segmentation.
func (e *Engine) Learn(g *graph.Graph) (segment.Assignment, error) {
	assign, err := segment.Run(e.cfg.Strategy, g, e.cfg.Segment)
	if err != nil {
		return nil, err
	}
	e.mu.Lock()
	e.assign = assign
	e.reach = policy.Learn(g, assign)
	e.mu.Unlock()
	return assign, nil
}

// Baseline returns the learned segmentation and policy (nil before Learn).
func (e *Engine) Baseline() (segment.Assignment, *policy.Reachability) {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.assign, e.reach
}

// Monitor evaluates a window against the learned baseline: raw reachability
// violations, similarity-filtered cohort changes, and proportionality
// assessments. It returns nil results before Learn.
func (e *Engine) Monitor(g *graph.Graph) *MonitorReport {
	e.mu.Lock()
	reach := e.reach
	var base *graph.Graph
	if len(e.windows) > 0 {
		base = e.windows[0]
	}
	e.mu.Unlock()
	if reach == nil {
		return nil
	}
	rep := &MonitorReport{
		Violations: reach.CheckGraph(g),
		Cohorts:    policy.SimilarityPolicy{R: reach}.Evaluate(g),
	}
	if base != nil {
		rep.Growth = policy.ProportionalityPolicy{R: reach}.Evaluate(base, g)
	}
	for _, c := range rep.Cohorts {
		if !c.Suppressed {
			rep.Alerts += len(c.Violations)
		}
	}
	// Violations touching nodes outside the baseline assignment — e.g. a
	// brand-new external endpoint receiving exfiltrated data or serving
	// as a C2 — have no cohort to vouch for them and always alert.
	assign := reach.Assign
	for _, v := range rep.Violations {
		_, okA := assign[v.A]
		_, okB := assign[v.B]
		if !okA || !okB {
			rep.Alerts++
			rep.Unknown = append(rep.Unknown, v)
		}
	}
	return rep
}

// MonitorReport is the security assessment of one window.
type MonitorReport struct {
	// Violations are raw reachability denials.
	Violations []policy.Violation
	// Cohorts groups the violations per segment pair with similarity
	// suppression applied.
	Cohorts []policy.CohortChange
	// Growth is the proportionality assessment vs the baseline window.
	Growth []policy.PairGrowth
	// Unknown lists violations involving nodes absent from the baseline
	// assignment (new endpoints); these always alert.
	Unknown []policy.Violation
	// Alerts counts violations that survive similarity suppression plus
	// all Unknown violations.
	Alerts int
}

// Anomalies scores all completed windows for hour-over-hour drift.
func (e *Engine) Anomalies(opts summarize.AnomalyOptions) []summarize.WindowScore {
	return summarize.ScoreWindows(e.Windows(), opts)
}

// Summary returns the succinct summary of the latest window, or a zero
// Summary when no window has completed.
func (e *Engine) Summary() summarize.Summary {
	g := e.Latest()
	if g == nil {
		return summarize.Summary{}
	}
	return summarize.Summarize(g)
}
