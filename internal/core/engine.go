package core

import (
	"log/slog"
	"math"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"cloudgraph/internal/flowlog"
	"cloudgraph/internal/graph"
	"cloudgraph/internal/ingest"
	"cloudgraph/internal/policy"
	"cloudgraph/internal/segment"
	"cloudgraph/internal/summarize"
	"cloudgraph/internal/telemetry"
	"cloudgraph/internal/trace"
	"cloudgraph/internal/watermark"
)

// Config parameterizes an Engine.
type Config struct {
	// Window is the graph window size. Default one hour.
	Window time.Duration
	// Facet selects node granularity for the graphs. Default FacetIP.
	Facet graph.Facet
	// Label maps addresses to services for FacetService graphs.
	Label graph.Labeler
	// Collapse configures heavy-hitter collapsing applied to each
	// completed window (Threshold 0 disables).
	Collapse graph.CollapseOptions
	// Strategy and Segment configure auto-segmentation. Default is the
	// paper's Jaccard+Louvain.
	Strategy segment.Strategy
	Segment  segment.Options
	// MaxWindows bounds retained history (0 = keep everything).
	MaxWindows int
	// KeepSeries records per-interval time series on edges.
	KeepSeries bool
	// Shards is the width of the ingest hot path: records are hashed by
	// flow key onto Shards independent windowers, each behind its own
	// lock, so concurrent Ingest calls touching different flows proceed
	// in parallel. Completed windows merge across shards before they are
	// collapsed, stored and handed to OnWindow, so window semantics are
	// identical at any width. Default 1.
	Shards int
	// OnWindow, when set, is called with each completed (and collapsed)
	// window. It is a compatibility shim over the consumer bus: the hook
	// is auto-registered as the bus consumer named "hook", so it runs on
	// a dedicated goroutine in window order and is drained by Flush. Like
	// every consumer it may use the read APIs (Windows, Latest, Monitor,
	// Summary) but must not call Ingest or Flush. New code should declare
	// Consumers instead.
	OnWindow func(*graph.Graph)
	// Consumers are the fan-out bus subscribers receiving each completed
	// window together with its epoch. See WindowConsumer for the
	// contract and Bus for the slow-consumer policy. More can be added
	// later with Engine.Subscribe.
	Consumers []ConsumerSpec
	// ConsumerBuffer is the per-consumer queue capacity before the bus
	// drops the oldest undelivered window (default 64).
	ConsumerBuffer int
	// Telemetry, when set, receives the engine's metrics: per-shard
	// ingest counts, window merge latency, OnWindow hook duration, open
	// and pending-merge window gauges, and the shared ingest counters.
	// Handles are preallocated at construction and lock-free on the hot
	// path; nil disables instrumentation for the cost of a branch.
	Telemetry *telemetry.Registry
	// Trace, when set, records "core.shard" and "core.merge" spans for
	// sampled records handed to IngestTraced, attaches their contexts to
	// completed windows (graph.Graph.Traces), and trips the flight
	// recorder when a merge pass runs badly in arrears. Nil disables
	// tracing for the cost of a branch, like Telemetry.
	Trace *trace.Tracer
	// StartEpoch seeds the epoch counter: the first completed window is
	// published as StartEpoch+1. A restarting daemon passes the last
	// epoch recovered from its history store so epochs keep ascending
	// across the crash instead of restarting from 1.
	StartEpoch uint64
	// Watermarks, when set, receives the engine's epoch progress: the
	// ingested watermark (the window the stream is currently filling)
	// advances on every window-start move, and each published window's
	// seal is recorded so downstream stages can account seal-to-stage
	// freshness. Nil disables watermarking for the cost of a branch, like
	// Telemetry and Trace.
	Watermarks *watermark.Tracker
}

func (c *Config) defaults() {
	if c.Window <= 0 {
		c.Window = time.Hour
	}
	if c.Strategy == "" {
		c.Strategy = segment.StrategyJaccardLouvain
	}
	if c.Shards <= 0 {
		c.Shards = 1
	}
	if c.Shards > 256 {
		c.Shards = 256 // shard ids travel as one byte on the hot path
	}
}

// Engine consumes connection summaries and maintains the dynamic view: the
// rolling window graphs plus the learned segmentation and reachability
// policy. It is safe for concurrent use; with Config.Shards > 1 concurrent
// Ingest calls contend only per flow-key shard, not on one engine-wide
// lock.
type Engine struct {
	cfg   Config
	meter *ingest.Meter

	// The ingest hot path: one windower per shard, each behind its own
	// lock. A record only ever takes its shard's lock.
	shards []*engineShard

	// closeMu serializes cross-shard window closes; maxStartNS (unix
	// nanos of the newest window start seen) gates them so the steady
	// state is one atomic load per batch.
	closeMu    sync.Mutex
	maxStartNS atomic.Int64
	mergeNS    atomic.Int64

	// pendMu guards pending: per-window partial graphs produced by shard
	// windowers, keyed by window start, awaiting the cross-shard merge.
	pendMu  sync.Mutex
	pending map[int64][]*graph.Graph

	// traceMu guards winTraces: sampled-record contexts queued per window
	// start, popped by the cross-shard merge and attached to the completed
	// window. A leaf lock like pendMu — nothing is called while held.
	traceMu   sync.Mutex
	winTraces map[int64][]trace.Context
	tracer    *trace.Tracer

	// tel holds the preallocated metric handles (all nil when
	// Config.Telemetry is unset).
	tel engineMetrics

	// bus fans completed windows out to consumers; epoch numbers them.
	// onWindow (serialized by closeMu) is the only publisher and the only
	// writer of epoch.
	bus   *Bus
	epoch atomic.Uint64

	mu      sync.Mutex
	windows []*graph.Graph // collapsed, completed windows in order

	// baseline state, established by Learn.
	assign segment.Assignment
	reach  *policy.Reachability
	base   *graph.Graph // proportionality baseline, pinned at Learn time
}

// engineShard is one lane of the ingest hot path.
type engineShard struct {
	mu       sync.Mutex
	windower *Windower
	records  int64
	busy     time.Duration
}

// add folds a batch into the shard and returns the newest window start the
// shard has seen.
func (sh *engineShard) add(recs []flowlog.Record) time.Time {
	sh.mu.Lock()
	start := time.Now()
	for _, r := range recs {
		//lint:allow lockscope OnComplete here is always Engine.addPartial, which only takes the leaf lock pendMu; partials must queue before the shard lock releases so a window closes atomically per shard
		sh.windower.Add(r)
	}
	sh.busy += time.Since(start)
	sh.records += int64(len(recs))
	m := sh.windower.MaxStart()
	sh.mu.Unlock()
	return m
}

// addFiltered folds the batch records whose shard id matches s, scanning
// the shared batch in place instead of materializing per-shard copies —
// the id buffer costs one byte per record where slicing the batch out
// costs a record copy.
func (sh *engineShard) addFiltered(recs []flowlog.Record, ids []uint8, s uint8, count int) time.Time {
	sh.mu.Lock()
	start := time.Now()
	for i := range recs {
		if ids[i] == s {
			//lint:allow lockscope OnComplete here is always Engine.addPartial (leaf lock pendMu only); see add
			sh.windower.Add(recs[i])
		}
	}
	sh.busy += time.Since(start)
	sh.records += int64(count)
	m := sh.windower.MaxStart()
	sh.mu.Unlock()
	return m
}

// NewEngine returns an Engine with the given config.
func NewEngine(cfg Config) *Engine {
	cfg.defaults()
	e := &Engine{
		cfg:       cfg,
		meter:     ingest.NewMeter(),
		pending:   make(map[int64][]*graph.Graph),
		winTraces: make(map[int64][]trace.Context),
		tracer:    cfg.Trace,
	}
	e.maxStartNS.Store(math.MinInt64)
	e.epoch.Store(cfg.StartEpoch)
	opts := graph.BuilderOptions{
		Facet:      cfg.Facet,
		Label:      cfg.Label,
		KeepSeries: cfg.KeepSeries,
	}
	for i := 0; i < cfg.Shards; i++ {
		w := NewWindower(cfg.Window, opts)
		w.OnComplete = e.addPartial
		e.shards = append(e.shards, &engineShard{windower: w})
	}
	e.instrument(cfg.Telemetry)
	e.bus = newBus(cfg.ConsumerBuffer, cfg.Telemetry, cfg.Trace)
	if cfg.OnWindow != nil {
		hook := cfg.OnWindow
		e.bus.Subscribe(ConsumerSpec{Name: "hook", Fn: func(_ uint64, g *graph.Graph) {
			sp := telemetry.StartSpan(e.tel.hook)
			hook(g)
			sp.End()
		}})
	}
	for _, spec := range cfg.Consumers {
		e.bus.Subscribe(spec)
	}
	return e
}

// Subscribe registers an additional bus consumer. Consumers added after
// windows completed miss the earlier epochs.
func (e *Engine) Subscribe(spec ConsumerSpec) { e.bus.Subscribe(spec) }

// Bus exposes the engine's fan-out bus for introspection (consumer
// names, queue depths).
func (e *Engine) Bus() *Bus { return e.bus }

// Epoch returns the number of windows published so far; the most recent
// completed window carries this epoch.
func (e *Engine) Epoch() uint64 { return e.epoch.Load() }

// Close drains the consumer bus and stops its goroutines. The engine
// must not be flushed or ingested into afterwards. Idempotent.
func (e *Engine) Close() { e.bus.Close() }

// addPartial queues one shard's view of a completed window for merging.
// Called by shard windowers with that shard's lock held.
func (e *Engine) addPartial(g *graph.Graph) {
	k := g.Start.UnixNano()
	e.pendMu.Lock()
	e.pending[k] = append(e.pending[k], g)
	e.pendMu.Unlock()
}

// onWindow collapses and stores a completed, fully merged window, then
// publishes it on the consumer bus under the next epoch. Publishing never
// blocks (see Bus); consumers run on their own goroutines with no engine
// lock held, so a consumer may call the engine's read APIs (Windows,
// Latest, Monitor) without deadlocking on the non-reentrant mutex. Epochs
// stay in window order because every caller holds e.closeMu. traces
// carries the sampled-record contexts that folded into the window; it is
// attached after the collapse so downstream consumers see it on the graph
// they actually receive.
func (e *Engine) onWindow(g *graph.Graph, traces []trace.Context) {
	if e.cfg.Collapse.Threshold > 0 || e.cfg.Collapse.Keep != nil {
		g = g.Collapse(e.cfg.Collapse)
	}
	g.Traces = traces
	// A completed window is never mutated again (the bus and timeline
	// contract), so drop it to the CSR form before anyone retains it: the
	// builder maps are released here, and every consumer holds the compact
	// representation.
	g.Freeze()
	e.mu.Lock()
	e.windows = append(e.windows, g)
	if e.cfg.MaxWindows > 0 && len(e.windows) > e.cfg.MaxWindows {
		e.windows = e.windows[len(e.windows)-e.cfg.MaxWindows:]
	}
	e.mu.Unlock()
	e.tel.windows.Add(1)
	e.tracer.Eventf(trace.Context{}, "core", slog.LevelDebug,
		"window %s completed: %d nodes, %d edges, %d sampled traces",
		g.Start.UTC().Format(time.RFC3339), g.NumNodes(), g.NumEdges(), len(traces))
	epoch := e.epoch.Add(1)
	// Record the seal before any consumer can see the window: a stage
	// advancing past this epoch must find its seal time already in the
	// tracker's ring, or its freshness accounting would miss the window.
	e.cfg.Watermarks.Sealed(epoch, time.Now())
	e.bus.publish(epoch, g)
}

// Ingest adds a batch of records. Records are routed to shards by flow
// key (the ingest.ShardOf scheme), so both reports of an
// intra-subscription flow deduplicate in the same shard.
//
// Ingest borrows recs only for the duration of the call: shards scan the
// batch in place and copy what they keep, so the caller may reuse the
// backing array for the next batch as soon as Ingest returns. This is what
// lets servers decode the wire into one per-connection buffer with no
// per-batch allocation.
//
//vet:borrowed recs
func (e *Engine) Ingest(recs []flowlog.Record) { e.IngestTraced(recs, nil) }

// shardScratch is the pooled per-batch scratch of the sharded ingest path:
// the per-record shard ids and per-shard counts that would otherwise be two
// heap allocations per batch.
type shardScratch struct {
	ids    []uint8
	counts []int
}

var shardScratchPool = sync.Pool{New: func() any { return new(shardScratch) }}

// IngestTraced is Ingest with out-of-band trace contexts: tcs is nil or
// parallel to recs, with the zero Context on unsampled records. Each
// sampled record gets a "core.shard" span covering the shard fold, and its
// context is queued against the record's window so the merge pass can
// continue the trace. Aggregation output is identical to Ingest — contexts
// never enter the records or the graphs' counters.
//
//vet:borrowed recs tcs
func (e *Engine) IngestTraced(recs []flowlog.Record, tcs []trace.Context) {
	if len(recs) == 0 {
		return
	}
	if e.tracer == nil || len(tcs) != len(recs) {
		tcs = nil
	}
	var traceStart time.Time
	if tcs != nil {
		traceStart = time.Now()
	}
	e.meter.Observe(len(recs))
	n := len(e.shards)
	var maxStart time.Time
	if n == 1 {
		maxStart = e.shards[0].add(recs)
		e.tel.shardRecords[0].Add(int64(len(recs)))
		e.recordShardSpans(recs, tcs, nil, traceStart)
	} else {
		// One byte of shard id per record instead of per-shard record
		// copies: each shard then scans the shared batch in place. The id
		// and count slices come from a pool — the steady state allocates
		// nothing per batch.
		sc := shardScratchPool.Get().(*shardScratch)
		if cap(sc.ids) < len(recs) {
			sc.ids = make([]uint8, len(recs))
		}
		if cap(sc.counts) < n {
			sc.counts = make([]int, n)
		}
		ids, counts := sc.ids[:len(recs)], sc.counts[:n]
		clear(counts)
		for i := range recs {
			s := ingest.ShardOf(recs[i].Key(), n)
			ids[i] = uint8(s)
			counts[s]++
		}
		for i, sh := range e.shards {
			if counts[i] == 0 {
				continue
			}
			if m := sh.addFiltered(recs, ids, uint8(i), counts[i]); m.After(maxStart) {
				maxStart = m
			}
			e.tel.shardRecords[i].Add(int64(counts[i]))
		}
		e.recordShardSpans(recs, tcs, ids, traceStart)
		shardScratchPool.Put(sc)
	}
	e.advance(maxStart)
}

// recordShardSpans emits a "core.shard" span per sampled record of the
// batch and queues the contexts against their windows for the merge pass.
// Runs after the shard folds with no engine lock held; a nil tcs is the
// single-branch no-op of the untraced path.
func (e *Engine) recordShardSpans(recs []flowlog.Record, tcs []trace.Context, ids []uint8, start time.Time) {
	if tcs == nil {
		return
	}
	d := time.Since(start)
	for i, tc := range tcs {
		if !tc.Sampled() {
			continue
		}
		shard := 0
		if ids != nil {
			shard = int(ids[i])
		}
		e.tracer.Record(tc, "core.shard", start, d, "shard="+strconv.Itoa(shard))
		if !recs[i].Valid() {
			// The windower drops invalid records, so no window will ever
			// pick this context up; the shard span is the trace's end.
			continue
		}
		k := recs[i].Time.Truncate(e.cfg.Window).UnixNano()
		e.traceMu.Lock()
		e.winTraces[k] = append(e.winTraces[k], tc)
		e.traceMu.Unlock()
	}
}

// advance closes windows across all shards once the stream has moved past
// them: when the newest window start grows, every window strictly older
// than it is closed in every shard and the partials merge into whole
// windows. The fast path — stream still inside the current window — is one
// atomic load.
func (e *Engine) advance(maxStart time.Time) {
	if maxStart.IsZero() || maxStart.UnixNano() <= e.maxStartNS.Load() {
		return
	}
	e.closeMu.Lock()
	defer e.closeMu.Unlock()
	ns := maxStart.UnixNano()
	if ns <= e.maxStartNS.Load() {
		return
	}
	e.maxStartNS.Store(ns)
	//lint:allow lockscope closeMu serializes window closes so OnWindow fires in window order; it is never taken by the read APIs a hook may call, only by Ingest/Flush, which a hook must not reenter (documented on Config.OnWindow)
	e.closeShards(maxStart, false)
}

// closeShards closes windows older than cutoff in every shard (all open
// windows when flush is set) and merges the resulting partials. Caller
// holds e.closeMu.
func (e *Engine) closeShards(cutoff time.Time, flush bool) {
	start := time.Now()
	for _, sh := range e.shards {
		sh.mu.Lock()
		if flush {
			//lint:allow lockscope OnComplete is Engine.addPartial (leaf lock pendMu only); see add
			sh.windower.Flush()
		} else {
			//lint:allow lockscope OnComplete is Engine.addPartial (leaf lock pendMu only); see add
			sh.windower.CloseUpTo(cutoff)
		}
		sh.mu.Unlock()
	}
	exemplar := e.mergePending(cutoff, flush)
	elapsed := time.Since(start)
	e.mergeNS.Add(int64(elapsed))
	e.tel.merge.ObserveEx(elapsed.Seconds(), exemplar)
	// The stream is now filling the window one past everything sealed;
	// that is the ingested watermark. Serialized by closeMu, so it never
	// races a concurrent seal's epoch increment.
	e.cfg.Watermarks.Ingested(e.epoch.Load() + 1)
}

// flushLagTripWindows is the arrears threshold that trips the flight
// recorder: a merge pass emitting this many whole windows at once means
// the stream ran far ahead of window closes (stalled ingest, clock jumps,
// or replay bursts) and the pre-fault event window is worth keeping.
const flushLagTripWindows = 8

// mergePending combines per-shard partials for every window starting
// before cutoff (or all of them) and emits the merged windows in order.
// It returns the trace ID of the last sampled context that rode one of the
// merged windows (0 when none) — the exemplar the merge histogram links to.
func (e *Engine) mergePending(cutoff time.Time, all bool) uint64 {
	e.pendMu.Lock()
	var keys []int64
	for k := range e.pending {
		if all || k < cutoff.UnixNano() {
			keys = append(keys, k)
		}
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	groups := make([][]*graph.Graph, len(keys))
	for i, k := range keys {
		groups[i] = e.pending[k]
		delete(e.pending, k)
	}
	e.pendMu.Unlock()
	if len(groups) > 0 {
		e.tel.flushLag.Observe(float64(len(groups)))
		if len(groups) >= flushLagTripWindows && e.tracer != nil {
			e.tracer.Eventf(trace.Context{}, "core", slog.LevelWarn,
				"merge pass emitted %d windows in arrears", len(groups))
			e.tracer.Trip("core", "window flush lag: "+strconv.Itoa(len(groups))+" windows in one merge pass")
		}
	}

	// Pop the queued sampled-record contexts for the same key range. The
	// condition matches on key value, not membership in pending, so
	// contexts queued late for an already-merged window (a benign race
	// with concurrent ingest) are swept out on the next pass instead of
	// accumulating.
	var traces map[int64][]trace.Context
	if e.tracer != nil {
		e.traceMu.Lock()
		for k := range e.winTraces {
			if all || k < cutoff.UnixNano() {
				if e.winTraces[k] != nil {
					if traces == nil {
						traces = make(map[int64][]trace.Context)
					}
					traces[k] = e.winTraces[k]
				}
				delete(e.winTraces, k)
			}
		}
		e.traceMu.Unlock()
	}

	var exemplar uint64
	for i, parts := range groups {
		mergeStart := time.Now()
		g := parts[0]
		for _, p := range parts[1:] {
			g.Merge(p)
		}
		var wtcs []trace.Context
		if traces != nil {
			wtcs = traces[keys[i]]
		}
		if len(wtcs) > 0 {
			d := time.Since(mergeStart)
			note := "window=" + g.Start.UTC().Format(time.RFC3339) + " parts=" + strconv.Itoa(len(parts))
			for _, tc := range wtcs {
				e.tracer.Record(tc, "core.merge", mergeStart, d, note)
			}
			exemplar = wtcs[len(wtcs)-1].TraceID
		}
		e.onWindow(g, wtcs)
	}
	return exemplar
}

// Collect implements nicsim.Collector, so an Engine can sit directly at the
// end of the collection path of Figure 7.
func (e *Engine) Collect(recs []flowlog.Record) error {
	e.Ingest(recs)
	return nil
}

// CollectTraced implements nicsim.TracedCollector, carrying host agents'
// sampled contexts straight into the traced ingest path.
func (e *Engine) CollectTraced(recs []flowlog.Record, tcs []trace.Context) error {
	e.IngestTraced(recs, tcs)
	return nil
}

// Tracer returns the tracer the engine was configured with (nil when
// tracing is off), so servers fronting the engine can continue its traces.
func (e *Engine) Tracer() *trace.Tracer { return e.tracer }

// Flush closes open windows across all shards, waits for every bus
// consumer to process all published windows, and returns all completed
// window graphs. The drain means that when Flush returns, the store, the
// timeline, and every analysis have observed the full stream — which is
// what makes online results comparable to batch ones.
func (e *Engine) Flush() []*graph.Graph {
	e.closeMu.Lock()
	//lint:allow lockscope closeMu keeps window publication ordered; see advance
	e.closeShards(time.Time{}, true)
	e.closeMu.Unlock()
	e.bus.Drain()
	return e.Windows()
}

// Windows returns the completed window graphs without flushing.
func (e *Engine) Windows() []*graph.Graph {
	e.mu.Lock()
	defer e.mu.Unlock()
	out := make([]*graph.Graph, len(e.windows))
	copy(out, e.windows)
	return out
}

// Latest returns the most recent completed window, or nil.
func (e *Engine) Latest() *graph.Graph {
	e.mu.Lock()
	defer e.mu.Unlock()
	if len(e.windows) == 0 {
		return nil
	}
	return e.windows[len(e.windows)-1]
}

// Cost returns the ingest cost report so far, including the per-shard
// breakdown of the hot path.
func (e *Engine) Cost() ingest.CostReport {
	r := e.meter.Snapshot()
	r.Workers = len(e.shards)
	r.Shards = make([]ingest.ShardStat, len(e.shards))
	var busy time.Duration
	for i, sh := range e.shards {
		sh.mu.Lock()
		st := ingest.ShardStat{
			Records: sh.records,
			Busy:    sh.busy,
			Depth:   sh.windower.Pending(),
		}
		sh.mu.Unlock()
		r.Shards[i] = st
		busy += st.Busy
	}
	r.WorkerBusy = busy
	r.Merge = time.Duration(e.mergeNS.Load())
	return r
}

// Learn segments the given window (typically the first clean one) and
// derives the reachability policy from it, establishing the engine's
// baseline. The window is also pinned as the proportionality-growth base,
// so later history trimming (MaxWindows) cannot silently shift what
// Monitor compares against. It returns the segmentation.
func (e *Engine) Learn(g *graph.Graph) (segment.Assignment, error) {
	assign, err := segment.Run(e.cfg.Strategy, g, e.cfg.Segment)
	if err != nil {
		return nil, err
	}
	e.mu.Lock()
	e.assign = assign
	e.reach = policy.Learn(g, assign)
	e.base = g
	e.mu.Unlock()
	return assign, nil
}

// Baseline returns the learned segmentation and policy (nil before Learn).
func (e *Engine) Baseline() (segment.Assignment, *policy.Reachability) {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.assign, e.reach
}

// Monitor evaluates a window against the learned baseline: raw reachability
// violations, similarity-filtered cohort changes, and proportionality
// assessments against the window pinned at Learn time. It returns nil
// results before Learn.
func (e *Engine) Monitor(g *graph.Graph) *MonitorReport {
	e.mu.Lock()
	reach := e.reach
	base := e.base
	e.mu.Unlock()
	if reach == nil {
		return nil
	}
	rep := &MonitorReport{
		Violations: reach.CheckGraph(g),
		Cohorts:    policy.SimilarityPolicy{R: reach}.Evaluate(g),
	}
	if base != nil {
		rep.Growth = policy.ProportionalityPolicy{R: reach}.Evaluate(base, g)
	}
	for _, c := range rep.Cohorts {
		if !c.Suppressed {
			rep.Alerts += len(c.Violations)
		}
	}
	// Violations touching nodes outside the baseline assignment — e.g. a
	// brand-new external endpoint receiving exfiltrated data or serving
	// as a C2 — have no cohort to vouch for them and always alert.
	assign := reach.Assign
	for _, v := range rep.Violations {
		_, okA := assign[v.A]
		_, okB := assign[v.B]
		if !okA || !okB {
			rep.Alerts++
			rep.Unknown = append(rep.Unknown, v)
		}
	}
	return rep
}

// MonitorReport is the security assessment of one window.
type MonitorReport struct {
	// Violations are raw reachability denials.
	Violations []policy.Violation
	// Cohorts groups the violations per segment pair with similarity
	// suppression applied.
	Cohorts []policy.CohortChange
	// Growth is the proportionality assessment vs the baseline window.
	Growth []policy.PairGrowth
	// Unknown lists violations involving nodes absent from the baseline
	// assignment (new endpoints); these always alert.
	Unknown []policy.Violation
	// Alerts counts violations that survive similarity suppression plus
	// all Unknown violations.
	Alerts int
}

// Anomalies scores all completed windows for hour-over-hour drift.
func (e *Engine) Anomalies(opts summarize.AnomalyOptions) []summarize.WindowScore {
	return summarize.ScoreWindows(e.Windows(), opts)
}

// Summary returns the succinct summary of the latest window, or a zero
// Summary when no window has completed.
func (e *Engine) Summary() summarize.Summary {
	g := e.Latest()
	if g == nil {
		return summarize.Summary{}
	}
	return summarize.Summarize(g)
}
