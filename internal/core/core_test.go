package core

import (
	"net/netip"
	"sync"
	"testing"
	"time"

	"cloudgraph/internal/cluster"
	"cloudgraph/internal/flowlog"
	"cloudgraph/internal/graph"
	"cloudgraph/internal/nicsim"
	"cloudgraph/internal/summarize"
)

var (
	ipA = netip.MustParseAddr("10.0.0.1")
	ipB = netip.MustParseAddr("10.0.0.2")
	t0  = time.Unix(1700000000, 0).UTC().Truncate(time.Hour)
)

func rec(at time.Time, lport uint16, bytes uint64) flowlog.Record {
	return flowlog.Record{
		Time: at, LocalIP: ipA, LocalPort: lport, RemoteIP: ipB, RemotePort: 443,
		PacketsSent: 1, BytesSent: bytes,
	}
}

func TestWindowerSplitsByHour(t *testing.T) {
	w := NewWindower(time.Hour, graph.BuilderOptions{})
	w.Add(rec(t0.Add(5*time.Minute), 1, 100))
	w.Add(rec(t0.Add(50*time.Minute), 2, 200))
	w.Add(rec(t0.Add(70*time.Minute), 3, 300)) // next hour: closes first
	if w.Pending() != 1 {
		t.Errorf("pending = %d, want 1 (first hour closed)", w.Pending())
	}
	gs := w.Flush()
	if len(gs) != 2 {
		t.Fatalf("windows = %d, want 2", len(gs))
	}
	if gs[0].TotalTraffic().Bytes != 300 || gs[1].TotalTraffic().Bytes != 300 {
		t.Errorf("window traffic = %d, %d", gs[0].TotalTraffic().Bytes, gs[1].TotalTraffic().Bytes)
	}
	if !gs[0].Start.Equal(t0) {
		t.Errorf("window 0 start = %v", gs[0].Start)
	}
}

func TestWindowerOnComplete(t *testing.T) {
	w := NewWindower(time.Hour, graph.BuilderOptions{})
	var got []*graph.Graph
	w.OnComplete = func(g *graph.Graph) { got = append(got, g) }
	w.Add(rec(t0, 1, 1))
	w.Add(rec(t0.Add(time.Hour), 2, 2))
	if len(got) != 1 {
		t.Fatalf("OnComplete fired %d times, want 1", len(got))
	}
	w.Flush()
	if len(got) != 2 {
		t.Errorf("after Flush: %d, want 2", len(got))
	}
}

func TestWindowerIgnoresInvalid(t *testing.T) {
	w := NewWindower(time.Hour, graph.BuilderOptions{})
	w.Add(flowlog.Record{})
	if w.Pending() != 0 {
		t.Error("invalid record opened a window")
	}
}

func TestEngineEndToEnd(t *testing.T) {
	// Drive a small synthetic cluster through the engine for three hours:
	// learn on hour one, monitor an attack in hour three.
	spec := cluster.Spec{
		Name: "core-e2e", Seed: 5,
		Roles: []cluster.RoleSpec{
			{Name: "fe", Count: 4, Port: 443},
			{Name: "be", Count: 3, Port: 9000},
			{Name: "client", Count: 10, External: true},
		},
		Links: []cluster.LinkSpec{
			{Src: "client", Dst: "fe", FlowsPerMin: 6, Fanout: 2, FwdBytes: 500, RevBytes: 8000},
			{Src: "fe", Dst: "be", FlowsPerMin: 20, Fanout: -1, FwdBytes: 1000, RevBytes: 3000},
		},
	}
	c, err := cluster.New(spec)
	if err != nil {
		t.Fatal(err)
	}
	e := NewEngine(Config{Window: time.Hour})

	// Hours 1 and 2: clean traffic.
	if _, err := c.Run(t0, 120, e); err != nil {
		t.Fatal(err)
	}
	// Hour 3: a frontend goes rogue and scans its own role's peers —
	// fe-fe contact never occurs in the baseline, so every probe violates
	// the learned reachability.
	c.AddAttack(cluster.PortScan{
		AttackerRole: "fe", AttackerIdx: 0, TargetRole: "fe",
		PortsPerMin: 30, Start: t0.Add(2 * time.Hour), Duration: time.Hour,
	})
	if _, err := c.Run(t0.Add(2*time.Hour), 60, e); err != nil {
		t.Fatal(err)
	}
	windows := e.Flush()
	if len(windows) != 3 {
		t.Fatalf("windows = %d, want 3", len(windows))
	}

	assign, err := e.Learn(windows[0])
	if err != nil {
		t.Fatal(err)
	}
	if assign.NumSegments() < 2 {
		t.Errorf("segments = %d, want at least client/fe/be structure", assign.NumSegments())
	}

	// Hour two should be mostly quiet; hour three should alert.
	repClean := e.Monitor(windows[1])
	repAttack := e.Monitor(windows[2])
	if repClean == nil || repAttack == nil {
		t.Fatal("Monitor returned nil after Learn")
	}
	if len(repAttack.Violations) == 0 {
		t.Error("attack window produced no reachability violations")
	}
	if repAttack.Alerts == 0 {
		t.Error("attack alerts were all suppressed")
	}

	// Anomaly scoring sees the drift, though with only 3 windows it
	// cannot flag; just confirm the drift ordering.
	scores := e.Anomalies(summarize.AnomalyOptions{MinHistory: 1})
	if len(scores) != 3 {
		t.Fatalf("scores = %d", len(scores))
	}
	if scores[2].NewPairs == 0 {
		t.Error("attack window should add new communicating pairs")
	}

	if e.Summary().Stats.Nodes == 0 {
		t.Error("summary empty")
	}
	if e.Cost().Records == 0 {
		t.Error("meter recorded nothing")
	}
}

func TestEngineMonitorBeforeLearn(t *testing.T) {
	e := NewEngine(Config{})
	if e.Monitor(graph.New(graph.FacetIP)) != nil {
		t.Error("Monitor before Learn should be nil")
	}
	if a, r := e.Baseline(); a != nil || r != nil {
		t.Error("baseline should be empty")
	}
	if e.Latest() != nil {
		t.Error("Latest on empty engine")
	}
	if e.Summary().Stats.Nodes != 0 {
		t.Error("Summary on empty engine")
	}
}

func TestEngineMaxWindows(t *testing.T) {
	e := NewEngine(Config{Window: time.Hour, MaxWindows: 2})
	for h := 0; h < 5; h++ {
		e.Ingest([]flowlog.Record{rec(t0.Add(time.Duration(h)*time.Hour), uint16(h+1), 10)})
	}
	ws := e.Flush()
	if len(ws) != 2 {
		t.Errorf("retained windows = %d, want 2", len(ws))
	}
}

func TestEngineCollapseApplied(t *testing.T) {
	e := NewEngine(Config{
		Window:   time.Hour,
		Collapse: graph.CollapseOptions{Threshold: 0.01},
	})
	recs := []flowlog.Record{rec(t0, 1, 1_000_000)}
	for i := 0; i < 300; i++ {
		r := flowlog.Record{
			Time: t0, LocalIP: ipA, LocalPort: uint16(1000 + i),
			RemoteIP: netip.AddrFrom4([4]byte{198, 18, byte(i >> 8), byte(i)}), RemotePort: 80,
			PacketsSent: 1, BytesSent: 10,
		}
		recs = append(recs, r)
	}
	e.Ingest(recs)
	ws := e.Flush()
	if len(ws) != 1 {
		t.Fatal("expected one window")
	}
	if !ws[0].HasNode(graph.Collapsed) {
		t.Error("collapse was not applied to the completed window")
	}
}

func TestEngineAsCollector(t *testing.T) {
	var _ nicsim.Collector = NewEngine(Config{})
}

func TestMonitorAlertsOnUnknownEndpoint(t *testing.T) {
	e := NewEngine(Config{Window: time.Hour})
	base := graph.New(graph.FacetIP)
	base.AddEdge(graph.IPNode(ipA), graph.IPNode(ipB), graph.Counters{Bytes: 1000, Conns: 1})
	if _, err := e.Learn(base); err != nil {
		t.Fatal(err)
	}
	// New window: ipA starts talking to a brand-new external endpoint.
	next := graph.New(graph.FacetIP)
	next.AddEdge(graph.IPNode(ipA), graph.IPNode(ipB), graph.Counters{Bytes: 1000, Conns: 1})
	c2 := graph.IPNode(netip.MustParseAddr("198.51.100.66"))
	next.AddEdge(graph.IPNode(ipA), c2, graph.Counters{Bytes: 1 << 30, Conns: 1})
	rep := e.Monitor(next)
	if rep == nil || len(rep.Violations) != 1 {
		t.Fatalf("violations = %+v", rep)
	}
	if len(rep.Unknown) != 1 || rep.Alerts != 1 {
		t.Errorf("unknown endpoint should alert: unknown=%d alerts=%d", len(rep.Unknown), rep.Alerts)
	}
}

func TestWindowerFlushDrains(t *testing.T) {
	// Regression: completed graphs used to accumulate in the Windower
	// forever, so every Flush re-returned the entire history and a
	// long-running process retained every window.
	w := NewWindower(time.Hour, graph.BuilderOptions{})
	w.Add(rec(t0, 1, 100))
	w.Add(rec(t0.Add(time.Hour), 2, 200))
	if got := len(w.Flush()); got != 2 {
		t.Fatalf("first Flush = %d windows, want 2", got)
	}
	if got := len(w.Flush()); got != 0 {
		t.Errorf("second Flush re-returned %d windows, want 0 (drained)", got)
	}
	if w.Retained() != 0 {
		t.Errorf("windower retains %d graphs after Flush", w.Retained())
	}
	// The windower stays usable after a drain.
	w.Add(rec(t0.Add(2*time.Hour), 3, 300))
	if got := len(w.Flush()); got != 1 {
		t.Errorf("Flush after drain = %d windows, want 1", got)
	}
}

func TestWindowerOnCompleteDoesNotRetain(t *testing.T) {
	// Regression: graphs delivered through OnComplete were also appended
	// to the internal done list, holding every window in memory twice.
	w := NewWindower(time.Hour, graph.BuilderOptions{})
	var got int
	w.OnComplete = func(*graph.Graph) { got++ }
	for h := 0; h < 6; h++ {
		w.Add(rec(t0.Add(time.Duration(h)*time.Hour), uint16(h+1), 10))
	}
	w.Flush()
	if got != 6 {
		t.Fatalf("OnComplete fired %d times, want 6", got)
	}
	if w.Retained() != 0 {
		t.Errorf("windower retains %d graphs alongside the OnComplete consumer", w.Retained())
	}
}

func TestEngineRetentionBoundedWithMaxWindows(t *testing.T) {
	// Regression for the same leak at engine level: with MaxWindows set,
	// nothing below the engine may keep unbounded window history.
	e := NewEngine(Config{Window: time.Hour, MaxWindows: 2})
	for h := 0; h < 10; h++ {
		e.Ingest([]flowlog.Record{rec(t0.Add(time.Duration(h)*time.Hour), uint16(h+1), 10)})
	}
	if got := len(e.Flush()); got != 2 {
		t.Fatalf("retained windows = %d, want 2", got)
	}
	for _, sh := range e.shards {
		if n := sh.windower.Retained(); n != 0 {
			t.Errorf("shard windower retains %d graphs, want 0", n)
		}
	}
	if len(e.pending) != 0 {
		t.Errorf("%d partial windows left pending after Flush", len(e.pending))
	}
}

// engineRecords builds a deterministic multi-window record stream with
// enough distinct flows to spread across shards, including double-reported
// intra-subscription flows that must deduplicate.
func engineRecords(t *testing.T, hours int) []flowlog.Record {
	t.Helper()
	var recs []flowlog.Record
	for h := 0; h < hours; h++ {
		for m := 0; m < 60; m += 5 {
			at := t0.Add(time.Duration(h)*time.Hour + time.Duration(m)*time.Minute)
			for i := 0; i < 40; i++ {
				r := flowlog.Record{
					Time:      at,
					LocalIP:   netip.AddrFrom4([4]byte{10, 0, byte(i / 8), byte(i%8 + 1)}),
					LocalPort: uint16(30000 + i), RemoteIP: netip.AddrFrom4([4]byte{10, 0, 9, byte(i%16 + 1)}),
					RemotePort:  443,
					PacketsSent: 2, BytesSent: uint64(100 * (i + 1)), PacketsRcvd: 1, BytesRcvd: 50,
				}
				recs = append(recs, r)
				if i%2 == 0 {
					recs = append(recs, r.Reverse()) // second NIC's report
				}
			}
		}
	}
	return recs
}

func TestEngineShardEquivalence(t *testing.T) {
	// The sharded hot path must be invisible in the output: same record
	// stream, same merged windows, at any shard width.
	recs := engineRecords(t, 3)
	base := NewEngine(Config{Window: time.Hour, Shards: 1})
	base.Ingest(recs)
	want := base.Flush()
	if len(want) != 3 {
		t.Fatalf("single-shard windows = %d, want 3", len(want))
	}
	for _, shards := range []int{2, 4, 8} {
		e := NewEngine(Config{Window: time.Hour, Shards: shards})
		for i := 0; i < len(recs); i += 97 { // minibatches, like the wire path
			end := i + 97
			if end > len(recs) {
				end = len(recs)
			}
			e.Ingest(recs[i:end])
		}
		got := e.Flush()
		if len(got) != len(want) {
			t.Fatalf("shards=%d: windows = %d, want %d", shards, len(got), len(want))
		}
		for i := range want {
			if !got[i].Start.Equal(want[i].Start) || !got[i].End.Equal(want[i].End) {
				t.Errorf("shards=%d window %d bounds = [%v,%v), want [%v,%v)",
					shards, i, got[i].Start, got[i].End, want[i].Start, want[i].End)
			}
			if got[i].NumNodes() != want[i].NumNodes() || got[i].NumEdges() != want[i].NumEdges() {
				t.Errorf("shards=%d window %d = %d nodes / %d edges, want %d / %d",
					shards, i, got[i].NumNodes(), got[i].NumEdges(), want[i].NumNodes(), want[i].NumEdges())
			}
			if gt, wt := got[i].TotalTraffic(), want[i].TotalTraffic(); gt != wt {
				t.Errorf("shards=%d window %d traffic = %+v, want %+v", shards, i, gt, wt)
			}
		}
		cost := e.Cost()
		if cost.Workers != shards || len(cost.Shards) != shards {
			t.Errorf("cost workers = %d shards = %d, want %d", cost.Workers, len(cost.Shards), shards)
		}
		var perShard int64
		for _, st := range cost.Shards {
			perShard += st.Records
		}
		if perShard != int64(len(recs)) {
			t.Errorf("per-shard records sum to %d, want %d", perShard, len(recs))
		}
	}
}

func TestEngineShardedConcurrentIngest(t *testing.T) {
	// Many goroutines ingesting one window's records concurrently (run
	// with -race): the merged window must cover the same nodes and edges
	// as a serial single-shard pass, and the meter must not lose records.
	recs := engineRecords(t, 1)
	serial := NewEngine(Config{Window: time.Hour})
	serial.Ingest(recs)
	want := serial.Flush()[0]

	e := NewEngine(Config{Window: time.Hour, Shards: 4})
	const workers = 8
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := w * 50; i < len(recs); i += workers * 50 {
				end := i + 50
				if end > len(recs) {
					end = len(recs)
				}
				e.Ingest(recs[i:end])
			}
		}(w)
	}
	wg.Wait()
	ws := e.Flush()
	if len(ws) != 1 {
		t.Fatalf("windows = %d, want 1", len(ws))
	}
	if ws[0].NumNodes() != want.NumNodes() || ws[0].NumEdges() != want.NumEdges() {
		t.Errorf("concurrent window = %d nodes / %d edges, want %d / %d",
			ws[0].NumNodes(), ws[0].NumEdges(), want.NumNodes(), want.NumEdges())
	}
	if got := e.Cost().Records; got != int64(len(recs)) {
		t.Errorf("meter records = %d, want %d", got, len(recs))
	}
}

func TestMonitorBaselinePinnedAcrossTrim(t *testing.T) {
	// Regression: Monitor used e.windows[0] as the proportionality base,
	// which silently became a different window once MaxWindows trimmed
	// history. The base is now pinned at Learn time.
	e := NewEngine(Config{Window: time.Hour, MaxWindows: 2})
	e.Ingest([]flowlog.Record{rec(t0, 1, 1000)})
	ws := e.Flush()
	if len(ws) != 1 {
		t.Fatalf("windows = %d, want 1", len(ws))
	}
	if _, err := e.Learn(ws[0]); err != nil {
		t.Fatal(err)
	}

	next := graph.New(graph.FacetIP)
	next.AddEdge(graph.IPNode(ipA), graph.IPNode(ipB), graph.Counters{Bytes: 5000, Conns: 1})
	before := e.Monitor(next)
	if before == nil || len(before.Growth) == 0 {
		t.Fatalf("no growth assessment before trim: %+v", before)
	}

	// Push enough much-louder windows through to trim the Learn window
	// out of history.
	for h := 1; h < 5; h++ {
		e.Ingest([]flowlog.Record{rec(t0.Add(time.Duration(h)*time.Hour), uint16(h), 900000)})
	}
	if got := len(e.Flush()); got != 2 {
		t.Fatalf("retained windows = %d, want 2", got)
	}

	after := e.Monitor(next)
	if after == nil || len(after.Growth) != len(before.Growth) {
		t.Fatalf("growth assessment changed shape after trim: %+v vs %+v", after, before)
	}
	for i := range before.Growth {
		if after.Growth[i] != before.Growth[i] {
			t.Errorf("growth[%d] drifted after trim: %+v vs %+v", i, after.Growth[i], before.Growth[i])
		}
	}
	if before.Growth[0].BaseBytes != 1000 {
		t.Errorf("baseline bytes = %d, want the Learn window's 1000", before.Growth[0].BaseBytes)
	}
}

func TestEngineOnWindowHook(t *testing.T) {
	var got []*graph.Graph
	e := NewEngine(Config{Window: time.Hour, OnWindow: func(g *graph.Graph) { got = append(got, g) }})
	e.Ingest([]flowlog.Record{rec(t0, 1, 10)})
	e.Ingest([]flowlog.Record{rec(t0.Add(time.Hour), 2, 10)})
	e.Flush()
	if len(got) != 2 {
		t.Errorf("OnWindow fired %d times, want 2", len(got))
	}
}
