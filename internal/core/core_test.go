package core

import (
	"net/netip"
	"testing"
	"time"

	"cloudgraph/internal/cluster"
	"cloudgraph/internal/flowlog"
	"cloudgraph/internal/graph"
	"cloudgraph/internal/nicsim"
	"cloudgraph/internal/summarize"
)

var (
	ipA = netip.MustParseAddr("10.0.0.1")
	ipB = netip.MustParseAddr("10.0.0.2")
	t0  = time.Unix(1700000000, 0).UTC().Truncate(time.Hour)
)

func rec(at time.Time, lport uint16, bytes uint64) flowlog.Record {
	return flowlog.Record{
		Time: at, LocalIP: ipA, LocalPort: lport, RemoteIP: ipB, RemotePort: 443,
		PacketsSent: 1, BytesSent: bytes,
	}
}

func TestWindowerSplitsByHour(t *testing.T) {
	w := NewWindower(time.Hour, graph.BuilderOptions{})
	w.Add(rec(t0.Add(5*time.Minute), 1, 100))
	w.Add(rec(t0.Add(50*time.Minute), 2, 200))
	w.Add(rec(t0.Add(70*time.Minute), 3, 300)) // next hour: closes first
	if w.Pending() != 1 {
		t.Errorf("pending = %d, want 1 (first hour closed)", w.Pending())
	}
	gs := w.Flush()
	if len(gs) != 2 {
		t.Fatalf("windows = %d, want 2", len(gs))
	}
	if gs[0].TotalTraffic().Bytes != 300 || gs[1].TotalTraffic().Bytes != 300 {
		t.Errorf("window traffic = %d, %d", gs[0].TotalTraffic().Bytes, gs[1].TotalTraffic().Bytes)
	}
	if !gs[0].Start.Equal(t0) {
		t.Errorf("window 0 start = %v", gs[0].Start)
	}
}

func TestWindowerOnComplete(t *testing.T) {
	w := NewWindower(time.Hour, graph.BuilderOptions{})
	var got []*graph.Graph
	w.OnComplete = func(g *graph.Graph) { got = append(got, g) }
	w.Add(rec(t0, 1, 1))
	w.Add(rec(t0.Add(time.Hour), 2, 2))
	if len(got) != 1 {
		t.Fatalf("OnComplete fired %d times, want 1", len(got))
	}
	w.Flush()
	if len(got) != 2 {
		t.Errorf("after Flush: %d, want 2", len(got))
	}
}

func TestWindowerIgnoresInvalid(t *testing.T) {
	w := NewWindower(time.Hour, graph.BuilderOptions{})
	w.Add(flowlog.Record{})
	if w.Pending() != 0 {
		t.Error("invalid record opened a window")
	}
}

func TestEngineEndToEnd(t *testing.T) {
	// Drive a small synthetic cluster through the engine for three hours:
	// learn on hour one, monitor an attack in hour three.
	spec := cluster.Spec{
		Name: "core-e2e", Seed: 5,
		Roles: []cluster.RoleSpec{
			{Name: "fe", Count: 4, Port: 443},
			{Name: "be", Count: 3, Port: 9000},
			{Name: "client", Count: 10, External: true},
		},
		Links: []cluster.LinkSpec{
			{Src: "client", Dst: "fe", FlowsPerMin: 6, Fanout: 2, FwdBytes: 500, RevBytes: 8000},
			{Src: "fe", Dst: "be", FlowsPerMin: 20, Fanout: -1, FwdBytes: 1000, RevBytes: 3000},
		},
	}
	c, err := cluster.New(spec)
	if err != nil {
		t.Fatal(err)
	}
	e := NewEngine(Config{Window: time.Hour})

	// Hours 1 and 2: clean traffic.
	if _, err := c.Run(t0, 120, e); err != nil {
		t.Fatal(err)
	}
	// Hour 3: a frontend goes rogue and scans its own role's peers —
	// fe-fe contact never occurs in the baseline, so every probe violates
	// the learned reachability.
	c.AddAttack(cluster.PortScan{
		AttackerRole: "fe", AttackerIdx: 0, TargetRole: "fe",
		PortsPerMin: 30, Start: t0.Add(2 * time.Hour), Duration: time.Hour,
	})
	if _, err := c.Run(t0.Add(2*time.Hour), 60, e); err != nil {
		t.Fatal(err)
	}
	windows := e.Flush()
	if len(windows) != 3 {
		t.Fatalf("windows = %d, want 3", len(windows))
	}

	assign, err := e.Learn(windows[0])
	if err != nil {
		t.Fatal(err)
	}
	if assign.NumSegments() < 2 {
		t.Errorf("segments = %d, want at least client/fe/be structure", assign.NumSegments())
	}

	// Hour two should be mostly quiet; hour three should alert.
	repClean := e.Monitor(windows[1])
	repAttack := e.Monitor(windows[2])
	if repClean == nil || repAttack == nil {
		t.Fatal("Monitor returned nil after Learn")
	}
	if len(repAttack.Violations) == 0 {
		t.Error("attack window produced no reachability violations")
	}
	if repAttack.Alerts == 0 {
		t.Error("attack alerts were all suppressed")
	}

	// Anomaly scoring sees the drift, though with only 3 windows it
	// cannot flag; just confirm the drift ordering.
	scores := e.Anomalies(summarize.AnomalyOptions{MinHistory: 1})
	if len(scores) != 3 {
		t.Fatalf("scores = %d", len(scores))
	}
	if scores[2].NewPairs == 0 {
		t.Error("attack window should add new communicating pairs")
	}

	if e.Summary().Stats.Nodes == 0 {
		t.Error("summary empty")
	}
	if e.Cost().Records == 0 {
		t.Error("meter recorded nothing")
	}
}

func TestEngineMonitorBeforeLearn(t *testing.T) {
	e := NewEngine(Config{})
	if e.Monitor(graph.New(graph.FacetIP)) != nil {
		t.Error("Monitor before Learn should be nil")
	}
	if a, r := e.Baseline(); a != nil || r != nil {
		t.Error("baseline should be empty")
	}
	if e.Latest() != nil {
		t.Error("Latest on empty engine")
	}
	if e.Summary().Stats.Nodes != 0 {
		t.Error("Summary on empty engine")
	}
}

func TestEngineMaxWindows(t *testing.T) {
	e := NewEngine(Config{Window: time.Hour, MaxWindows: 2})
	for h := 0; h < 5; h++ {
		e.Ingest([]flowlog.Record{rec(t0.Add(time.Duration(h)*time.Hour), uint16(h+1), 10)})
	}
	ws := e.Flush()
	if len(ws) != 2 {
		t.Errorf("retained windows = %d, want 2", len(ws))
	}
}

func TestEngineCollapseApplied(t *testing.T) {
	e := NewEngine(Config{
		Window:   time.Hour,
		Collapse: graph.CollapseOptions{Threshold: 0.01},
	})
	recs := []flowlog.Record{rec(t0, 1, 1_000_000)}
	for i := 0; i < 300; i++ {
		r := flowlog.Record{
			Time: t0, LocalIP: ipA, LocalPort: uint16(1000 + i),
			RemoteIP: netip.AddrFrom4([4]byte{198, 18, byte(i >> 8), byte(i)}), RemotePort: 80,
			PacketsSent: 1, BytesSent: 10,
		}
		recs = append(recs, r)
	}
	e.Ingest(recs)
	ws := e.Flush()
	if len(ws) != 1 {
		t.Fatal("expected one window")
	}
	if !ws[0].HasNode(graph.Collapsed) {
		t.Error("collapse was not applied to the completed window")
	}
}

func TestEngineAsCollector(t *testing.T) {
	var _ nicsim.Collector = NewEngine(Config{})
}

func TestMonitorAlertsOnUnknownEndpoint(t *testing.T) {
	e := NewEngine(Config{Window: time.Hour})
	base := graph.New(graph.FacetIP)
	base.AddEdge(graph.IPNode(ipA), graph.IPNode(ipB), graph.Counters{Bytes: 1000, Conns: 1})
	if _, err := e.Learn(base); err != nil {
		t.Fatal(err)
	}
	// New window: ipA starts talking to a brand-new external endpoint.
	next := graph.New(graph.FacetIP)
	next.AddEdge(graph.IPNode(ipA), graph.IPNode(ipB), graph.Counters{Bytes: 1000, Conns: 1})
	c2 := graph.IPNode(netip.MustParseAddr("198.51.100.66"))
	next.AddEdge(graph.IPNode(ipA), c2, graph.Counters{Bytes: 1 << 30, Conns: 1})
	rep := e.Monitor(next)
	if rep == nil || len(rep.Violations) != 1 {
		t.Fatalf("violations = %+v", rep)
	}
	if len(rep.Unknown) != 1 || rep.Alerts != 1 {
		t.Errorf("unknown endpoint should alert: unknown=%d alerts=%d", len(rep.Unknown), rep.Alerts)
	}
}

func TestEngineOnWindowHook(t *testing.T) {
	var got []*graph.Graph
	e := NewEngine(Config{Window: time.Hour, OnWindow: func(g *graph.Graph) { got = append(got, g) }})
	e.Ingest([]flowlog.Record{rec(t0, 1, 10)})
	e.Ingest([]flowlog.Record{rec(t0.Add(time.Hour), 2, 10)})
	e.Flush()
	if len(got) != 2 {
		t.Errorf("OnWindow fired %d times, want 2", len(got))
	}
}
