package cluster

import (
	"net/netip"
	"testing"
	"time"

	"cloudgraph/internal/flowlog"
	"cloudgraph/internal/graph"
	"cloudgraph/internal/nicsim"
)

var t0 = time.Unix(1700000000, 0).UTC().Truncate(time.Minute)

// tinySpec is a fast two-role cluster for unit tests.
func tinySpec() Spec {
	return Spec{
		Name: "tiny",
		Seed: 7,
		Roles: []RoleSpec{
			{Name: "fe", Count: 3, Port: 443},
			{Name: "be", Count: 2, Port: 9000},
			{Name: "client", Count: 5, External: true},
		},
		Links: []LinkSpec{
			{Src: "client", Dst: "fe", FlowsPerMin: 4, Fanout: 1, FwdBytes: 500, RevBytes: 5000},
			{Src: "fe", Dst: "be", FlowsPerMin: 10, Fanout: -1, FwdBytes: 1000, RevBytes: 2000},
		},
	}
}

func mustCluster(t *testing.T, s Spec) *Cluster {
	t.Helper()
	c, err := New(s)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	return c
}

func TestNewValidation(t *testing.T) {
	if _, err := New(Spec{Name: "empty"}); err == nil {
		t.Error("want error for spec with no roles")
	}
	bad := tinySpec()
	bad.Links = append(bad.Links, LinkSpec{Src: "fe", Dst: "nosuch"})
	if _, err := New(bad); err == nil {
		t.Error("want error for unknown link role")
	}
	dup := tinySpec()
	dup.Roles = append(dup.Roles, RoleSpec{Name: "fe", Count: 1})
	if _, err := New(dup); err == nil {
		t.Error("want error for duplicate role")
	}
	zero := tinySpec()
	zero.Roles[0].Count = 0
	if _, err := New(zero); err == nil {
		t.Error("want error for zero-count role")
	}
}

func TestRolesAndMonitoring(t *testing.T) {
	c := mustCluster(t, tinySpec())
	if got := c.MonitoredIPs(); got != 5 {
		t.Errorf("MonitoredIPs = %d, want 5 (3 fe + 2 be)", got)
	}
	fes := c.Addresses("fe")
	if len(fes) != 3 {
		t.Fatalf("fe addresses = %v", fes)
	}
	if c.RoleOf(fes[0]) != "fe" {
		t.Errorf("RoleOf(fe[0]) = %q", c.RoleOf(fes[0]))
	}
	if !c.Monitored(fes[0]) {
		t.Error("fe instance should be monitored")
	}
	clients := c.Addresses("client")
	if c.Monitored(clients[0]) {
		t.Error("external client should not be monitored")
	}
	gt := c.GroundTruth()
	if len(gt) != 5 {
		t.Errorf("GroundTruth size = %d, want 5", len(gt))
	}
	if gt[graph.IPNode(fes[0])] != "fe" {
		t.Error("ground truth label wrong")
	}
}

func TestDeterministicGeneration(t *testing.T) {
	collect := func() []flowlog.Record {
		c := mustCluster(t, tinySpec())
		recs, err := c.CollectHour(t0)
		if err != nil {
			t.Fatalf("CollectHour: %v", err)
		}
		return recs
	}
	a, b := collect(), collect()
	if len(a) != len(b) {
		t.Fatalf("non-deterministic record count: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("record %d differs between runs", i)
		}
	}
	if len(a) == 0 {
		t.Fatal("no records generated")
	}
}

func TestTrafficFollowsLinks(t *testing.T) {
	c := mustCluster(t, tinySpec())
	recs, err := c.CollectHour(t0)
	if err != nil {
		t.Fatal(err)
	}
	g := graph.Build(recs, graph.BuilderOptions{Facet: graph.FacetIP})
	// fe <-> be must be fully connected (fanout -1, high rate).
	for _, fe := range c.Addresses("fe") {
		for _, be := range c.Addresses("be") {
			if pc := g.PairCounters(graph.IPNode(fe), graph.IPNode(be)); pc.Bytes == 0 {
				t.Errorf("no traffic between fe %v and be %v", fe, be)
			}
		}
	}
	// clients never talk to be directly.
	for _, cl := range c.Addresses("client") {
		for _, be := range c.Addresses("be") {
			if pc := g.PairCounters(graph.IPNode(cl), graph.IPNode(be)); pc.Bytes != 0 {
				t.Errorf("client %v talked to backend %v: traffic outside declared links", cl, be)
			}
		}
	}
}

func TestPersistentLinkReusesFlow(t *testing.T) {
	s := Spec{
		Name: "p", Seed: 1,
		Roles: []RoleSpec{
			{Name: "a", Count: 1, Port: 1000},
			{Name: "b", Count: 1, Port: 2000},
		},
		Links: []LinkSpec{{Src: "a", Dst: "b", FlowsPerMin: 5, Fanout: -1, FwdBytes: 100, RevBytes: 100, Persistent: true}},
	}
	c := mustCluster(t, s)
	recs, err := c.CollectHour(t0)
	if err != nil {
		t.Fatal(err)
	}
	keys := make(map[flowlog.FlowKey]bool)
	for _, r := range recs {
		keys[r.Key()] = true
	}
	if len(keys) != 1 {
		t.Errorf("persistent link produced %d distinct flows, want 1", len(keys))
	}
}

func TestEphemeralPortsAdvance(t *testing.T) {
	s := tinySpec()
	c := mustCluster(t, s)
	recs, err := c.CollectHour(t0)
	if err != nil {
		t.Fatal(err)
	}
	keys := make(map[flowlog.FlowKey]bool)
	for _, r := range recs {
		keys[r.Key()] = true
	}
	if len(keys) < 100 {
		t.Errorf("expected many distinct ephemeral flows, got %d", len(keys))
	}
}

func TestPresetsConstruct(t *testing.T) {
	for _, name := range PresetNames() {
		spec, err := Preset(name, 0.05)
		if err != nil {
			t.Fatalf("Preset(%q): %v", name, err)
		}
		if _, err := New(spec); err != nil {
			t.Errorf("New(%s): %v", name, err)
		}
	}
	if _, err := Preset("nosuch", 1); err == nil {
		t.Error("want error for unknown preset")
	}
}

func TestPresetMonitoredCounts(t *testing.T) {
	// Full-scale monitored-VM counts should match Table 1's "#IPs mon.".
	cases := []struct {
		name string
		want int
	}{
		{"portal", 4},
		{"microservicebench", 16},
		{"k8spaas", 390},
		{"kquery", 1400},
	}
	for _, cse := range cases {
		spec, err := Preset(cse.name, 1)
		if err != nil {
			t.Fatal(err)
		}
		mon := 0
		for _, r := range spec.Roles {
			if !r.External {
				mon += r.Count
			}
		}
		if mon != cse.want {
			t.Errorf("%s: monitored = %d, want %d (Table 1)", cse.name, mon, cse.want)
		}
	}
}

func TestPortScanInjection(t *testing.T) {
	c := mustCluster(t, tinySpec())
	c.AddAttack(PortScan{
		AttackerRole: "fe", AttackerIdx: 0, TargetRole: "be",
		PortsPerMin: 50, Start: t0, Duration: 5 * time.Minute,
	})
	var recs []flowlog.Record
	if _, err := c.Run(t0, 10, nicsim.CollectorFunc(func(b []flowlog.Record) error {
		recs = append(recs, b...)
		return nil
	})); err != nil {
		t.Fatal(err)
	}
	attacker := c.Addresses("fe")[0]
	scanPorts := make(map[uint16]bool)
	for _, r := range recs {
		if r.LocalIP == attacker && r.RemotePort < 10001 && r.RemotePort != 9000 {
			scanPorts[r.RemotePort] = true
		}
	}
	if len(scanPorts) < 40 {
		t.Errorf("port scan produced %d distinct scanned ports, want many", len(scanPorts))
	}
}

func TestExfiltrationInjection(t *testing.T) {
	c := mustCluster(t, tinySpec())
	c2 := netip.MustParseAddr("198.51.100.66")
	c.AddAttack(Exfiltration{
		SourceRole: "be", SourceIdx: 1, Destination: c2,
		BytesPerMin: 50_000_000, Start: t0, Duration: 10 * time.Minute,
	})
	recs, err := c.CollectHour(t0)
	if err != nil {
		t.Fatal(err)
	}
	victim := c.Addresses("be")[1]
	var exfil uint64
	for _, r := range recs {
		if r.LocalIP == victim && r.RemoteIP == c2 {
			exfil += r.BytesSent
		}
	}
	if exfil != 10*50_000_000 {
		t.Errorf("exfiltrated bytes = %d, want %d", exfil, uint64(10*50_000_000))
	}
}

func TestBeaconPeriodicity(t *testing.T) {
	c := mustCluster(t, tinySpec())
	c2 := netip.MustParseAddr("198.51.100.99")
	c.AddAttack(Beacon{
		SourceRole: "fe", SourceIdx: 1, C2: c2, Period: 5 * time.Minute,
		Bytes: 256, Start: t0, Duration: time.Hour,
	})
	recs, err := c.CollectHour(t0)
	if err != nil {
		t.Fatal(err)
	}
	beacons := 0
	for _, r := range recs {
		if r.RemoteIP == c2 {
			beacons++
		}
	}
	if beacons != 12 {
		t.Errorf("beacon count over an hour at 5m period = %d, want 12", beacons)
	}
}

func TestLateralMovementTargetsServicePort(t *testing.T) {
	c := mustCluster(t, tinySpec())
	c.AddAttack(LateralMovement{
		AttackerRole: "client", AttackerIdx: 0, TargetRole: "be",
		FlowsPerMin: 3, Bytes: 4096, Start: t0, Duration: 3 * time.Minute,
	})
	recs, err := c.CollectHour(t0)
	if err != nil {
		t.Fatal(err)
	}
	attacker := c.Addresses("client")[0]
	hits := 0
	for _, r := range recs {
		if r.RemoteIP == attacker && r.LocalPort == 9000 {
			hits++
		}
	}
	if hits == 0 {
		t.Error("lateral movement left no trace at the victim's service port")
	}
}

func TestAttackOutsideWindowInert(t *testing.T) {
	c := mustCluster(t, tinySpec())
	c.AddAttack(PortScan{
		AttackerRole: "fe", AttackerIdx: 0, TargetRole: "be",
		PortsPerMin: 50, Start: t0.Add(-time.Hour), Duration: 5 * time.Minute,
	})
	recs, err := c.CollectHour(t0)
	if err != nil {
		t.Fatal(err)
	}
	attacker := c.Addresses("fe")[0]
	for _, r := range recs {
		if r.LocalIP == attacker && r.RemotePort != 9000 && r.RemotePort >= 1 && r.RemotePort <= 10000 {
			t.Fatalf("scan flow observed outside attack window: %+v", r)
		}
	}
}

func TestDerivePortStable(t *testing.T) {
	if derivePort("frontend") != derivePort("frontend") {
		t.Error("derivePort not deterministic")
	}
	p := derivePort("x")
	if p < 1024 {
		t.Errorf("derived port %d below 1024", p)
	}
}

func TestColocatedRoles(t *testing.T) {
	s := Spec{
		Name: "colo", Seed: 4,
		Roles: []RoleSpec{
			{Name: "web", Count: 4, Port: 443},
			{Name: "metrics", ColocateWith: "web", Port: 9100},
			{Name: "scraper", Count: 2, Port: 9999},
			{Name: "client", Count: 6, External: true},
		},
		Links: []LinkSpec{
			{Src: "client", Dst: "web", FlowsPerMin: 10, Fanout: -1, FwdBytes: 500, RevBytes: 4000},
			{Src: "scraper", Dst: "metrics", FlowsPerMin: 10, Fanout: -1, FwdBytes: 200, RevBytes: 9000},
		},
	}
	c := mustCluster(t, s)
	// Colocated role shares addresses with its host role.
	web, metrics := c.Addresses("web"), c.Addresses("metrics")
	if len(metrics) != len(web) {
		t.Fatalf("metrics instances = %d, want %d (shared)", len(metrics), len(web))
	}
	for i := range web {
		if web[i] != metrics[i] {
			t.Errorf("instance %d not shared: %v vs %v", i, web[i], metrics[i])
		}
	}
	if c.MonitoredIPs() != 6 {
		t.Errorf("MonitoredIPs = %d, want 6 (no extra VMs for colocated role)", c.MonitoredIPs())
	}
	// Traffic reaches the colocated service's own port.
	recs, err := c.CollectHour(t0)
	if err != nil {
		t.Fatal(err)
	}
	sawMetrics := false
	for _, r := range recs {
		if r.LocalPort == 9100 || r.RemotePort == 9100 {
			sawMetrics = true
			break
		}
	}
	if !sawMetrics {
		t.Error("no traffic on the colocated service port")
	}
	// Endpoint-facet ground truth distinguishes the two services.
	gte := c.GroundTruthEndpoints()
	if gte[graph.IPPortNode(web[0], 443)] != "web" || gte[graph.IPPortNode(web[0], 9100)] != "metrics" {
		t.Errorf("endpoint ground truth wrong: %v", gte)
	}
}

func TestColocatedValidation(t *testing.T) {
	if _, err := New(Spec{Name: "x", Roles: []RoleSpec{{Name: "a", ColocateWith: "nosuch"}}}); err == nil {
		t.Error("want error for unknown colocate target")
	}
	if _, err := New(Spec{Name: "x", Roles: []RoleSpec{
		{Name: "a", Count: 2},
		{Name: "b", ColocateWith: "a", Count: 2},
	}}); err == nil {
		t.Error("want error for colocated role with Count")
	}
}

func TestDiurnalModulation(t *testing.T) {
	s := Spec{
		Name: "diurnal", Seed: 6,
		Roles: []RoleSpec{
			{Name: "a", Count: 4, Port: 1000},
			{Name: "b", Count: 2, Port: 2000},
		},
		Links: []LinkSpec{{Src: "a", Dst: "b", FlowsPerMin: 50, Fanout: -1, FwdBytes: 500, RevBytes: 500, Diurnal: 0.9}},
	}
	countAt := func(hour int) int {
		c := mustCluster(t, s)
		day := time.Date(2024, 3, 1, hour, 0, 0, 0, time.UTC)
		recs, err := c.CollectHour(day)
		if err != nil {
			t.Fatal(err)
		}
		return len(recs)
	}
	noon, midnight := countAt(12), countAt(0)
	if float64(noon) < 3*float64(midnight) {
		t.Errorf("diurnal peak/trough = %d/%d, want strong contrast", noon, midnight)
	}
}
