// Package cluster generates synthetic cloud-subscription workloads that
// stand in for the four production/testbed clusters of Table 1 in the paper
// (Portal, µserviceBench, K8s PaaS, KQuery). Each cluster is a set of roles
// — redundant groups of VMs running the same code — plus a set of
// communication links between roles. Traffic is driven minute by minute
// through the nicsim fabric, so the telemetry the rest of the system
// consumes goes through the same collection path as Figure 7.
//
// Because the generator knows each VM's role, it provides the ground truth
// that the paper could only approximate with developer interviews, enabling
// quantitative scoring of segmentation strategies (§2.1).
package cluster

import (
	"fmt"
	"math"
	"math/rand"
	"net/netip"
	"time"

	"cloudgraph/internal/flowlog"
	"cloudgraph/internal/graph"
	"cloudgraph/internal/nicsim"
)

// RoleSpec declares one role: Count identical instances running the same
// code. External roles model endpoints outside the subscription (internet
// clients, SaaS dependencies); they are not monitored, so only the internal
// peer's NIC logs their flows.
type RoleSpec struct {
	Name     string
	Count    int
	External bool
	// Port is the well-known port instances of this role serve on; 0
	// assigns a deterministic port derived from the role name.
	Port uint16
	// ActiveFraction is the fraction of instances that originate traffic
	// in a given minute (1.0 if zero). Client pools with churn — e.g.
	// Portal's internet users — set this below 1.
	ActiveFraction float64
	// RateSkew makes instances heterogeneous: each instance's outbound
	// flow rates are multiplied by a log-normal factor with this sigma
	// (mean preserved). Real fleets concentrate traffic on a few hot
	// nodes (Figure 6); zero means homogeneous instances.
	RateSkew float64
	// ColocateWith places this role's service on the instances of the
	// named (earlier-declared) role instead of allocating its own VMs —
	// one VM running multiple services, the §2.1 "resources may have
	// multiple roles" concern. Count must be zero; the role serves on
	// its own Port.
	ColocateWith string
}

// LinkSpec declares traffic from every instance of Src to instances of Dst.
type LinkSpec struct {
	Src, Dst string
	// FlowsPerMin is the mean number of flows each active Src instance
	// opens per minute (Poisson).
	FlowsPerMin float64
	// Fanout is the size of the stable peer set each Src instance talks
	// to (flows pick peers uniformly from that set). 0 means one peer;
	// negative means all Dst instances.
	Fanout int
	// FwdBytes / RevBytes are mean request/response sizes per flow;
	// actual sizes are log-normal around the mean.
	FwdBytes, RevBytes float64
	// Persistent reuses one long-lived flow (stable ephemeral port) per
	// (src, dst) pair instead of a fresh flow each time — e.g. etcd
	// watch channels or storage sessions.
	Persistent bool
	// Diurnal modulates the flow rate over the day with amplitude in
	// [0, 1): rate × (1 + Diurnal·sin(2π·(hour−6)/24)), peaking at noon
	// and bottoming at midnight. It makes multi-hour windows genuinely
	// dynamic ("what changed?" analyses, Figure 5's shifting bands).
	Diurnal float64
}

// MeshSpec declares low-rate all-to-all style traffic among the union of
// instances of several roles — node-level plumbing such as kubelet health
// checks or overlay gossip that densifies small clusters' IP-graphs.
type MeshSpec struct {
	Roles       []string
	FlowsPerMin float64
	Fanout      int
	Port        uint16
	FwdBytes    float64
	RevBytes    float64
}

// Spec declares a synthetic cluster.
type Spec struct {
	Name string
	Seed int64
	// InternalNet and ExternalNet are carved for instance addresses.
	InternalNet netip.Prefix
	ExternalNet netip.Prefix
	Roles       []RoleSpec
	Links       []LinkSpec
	Meshes      []MeshSpec
	// CollapseThreshold is the dataset's heavy-hitter collapse setting
	// used when reproducing Table 1 (0 disables collapsing).
	CollapseThreshold float64
	// VMsPerHost controls fabric packing; 0 defaults to 16.
	VMsPerHost int
}

// instance is one VM or external endpoint.
type instance struct {
	addr netip.Addr
	role *role
	// rateMul skews this instance's outbound flow rates (RateSkew).
	rateMul float64
	// nextEphemeral cycles the ephemeral port range per instance.
	nextEphemeral uint16
}

// role is the materialized form of a RoleSpec.
type role struct {
	RoleSpec
	instances []*instance
}

// link is the materialized form of a LinkSpec: per-source stable peer sets.
type link struct {
	LinkSpec
	src, dst *role
	// peers[i] is the index set of dst instances src instance i uses.
	peers [][]int
	// persistentPort[i*len(dst)+j] caches the ephemeral port of the
	// long-lived flow between src i and dst j (0 = not yet opened).
	persistentPort []uint16
}

// Cluster is a runnable synthetic workload.
type Cluster struct {
	spec    Spec
	rng     *rand.Rand
	roles   map[string]*role
	byAddr  map[netip.Addr]*instance
	links   []*link
	fabric  *nicsim.Fabric
	attacks []Attack
	// attackKeys records the flow keys the attack injector created, so
	// experiments can label records as malicious ground truth.
	attackKeys map[flowlog.FlowKey]bool
}

// New materializes a spec: allocates addresses, builds stable peer sets and
// places monitored VMs on the fabric. It fails on inconsistent specs
// (unknown roles in links, empty roles, address exhaustion).
func New(spec Spec) (*Cluster, error) {
	if len(spec.Roles) == 0 {
		return nil, fmt.Errorf("cluster %q: no roles", spec.Name)
	}
	if !spec.InternalNet.IsValid() {
		spec.InternalNet = netip.MustParsePrefix("10.10.0.0/16")
	}
	if !spec.ExternalNet.IsValid() {
		spec.ExternalNet = netip.MustParsePrefix("198.18.0.0/15")
	}
	c := &Cluster{
		spec:       spec,
		rng:        rand.New(rand.NewSource(spec.Seed)),
		roles:      make(map[string]*role, len(spec.Roles)),
		byAddr:     make(map[netip.Addr]*instance),
		fabric:     nicsim.NewFabric(spec.VMsPerHost, 4*time.Minute),
		attackKeys: make(map[flowlog.FlowKey]bool),
	}
	intNext, extNext := spec.InternalNet.Addr(), spec.ExternalNet.Addr()
	for i := range spec.Roles {
		rs := spec.Roles[i]
		if _, dup := c.roles[rs.Name]; dup {
			return nil, fmt.Errorf("role %q: duplicate", rs.Name)
		}
		if rs.Port == 0 {
			rs.Port = derivePort(rs.Name)
		}
		if rs.ActiveFraction <= 0 || rs.ActiveFraction > 1 {
			rs.ActiveFraction = 1
		}
		if rs.ColocateWith != "" {
			host, ok := c.roles[rs.ColocateWith]
			if !ok {
				return nil, fmt.Errorf("role %q: colocate target %q not declared earlier", rs.Name, rs.ColocateWith)
			}
			if rs.Count != 0 {
				return nil, fmt.Errorf("role %q: colocated roles must not set Count", rs.Name)
			}
			r := &role{RoleSpec: rs, instances: host.instances}
			c.roles[rs.Name] = r
			continue
		}
		if rs.Count <= 0 {
			return nil, fmt.Errorf("role %q: count must be positive", rs.Name)
		}
		r := &role{RoleSpec: rs}
		for j := 0; j < rs.Count; j++ {
			var addr netip.Addr
			if rs.External {
				extNext = extNext.Next()
				addr = extNext
				if !spec.ExternalNet.Contains(addr) {
					return nil, fmt.Errorf("external network %v exhausted", spec.ExternalNet)
				}
			} else {
				intNext = intNext.Next()
				addr = intNext
				if !spec.InternalNet.Contains(addr) {
					return nil, fmt.Errorf("internal network %v exhausted", spec.InternalNet)
				}
			}
			inst := &instance{addr: addr, role: r, rateMul: 1, nextEphemeral: 32768}
			if rs.RateSkew > 0 {
				sigma := rs.RateSkew
				inst.rateMul = math.Exp(sigma*c.rng.NormFloat64() - sigma*sigma/2)
			}
			r.instances = append(r.instances, inst)
			c.byAddr[addr] = inst
			if !rs.External {
				c.fabric.AddVM(addr)
			}
		}
		c.roles[rs.Name] = r
	}
	for i := range spec.Links {
		ls := spec.Links[i]
		src, ok := c.roles[ls.Src]
		if !ok {
			return nil, fmt.Errorf("link %d: unknown src role %q", i, ls.Src)
		}
		dst, ok := c.roles[ls.Dst]
		if !ok {
			return nil, fmt.Errorf("link %d: unknown dst role %q", i, ls.Dst)
		}
		l := &link{LinkSpec: ls, src: src, dst: dst}
		l.peers = make([][]int, len(src.instances))
		for s := range src.instances {
			l.peers[s] = c.pickPeers(len(dst.instances), ls.Fanout)
		}
		if ls.Persistent {
			l.persistentPort = make([]uint16, len(src.instances)*len(dst.instances))
		}
		c.links = append(c.links, l)
	}
	for i := range spec.Meshes {
		ms := spec.Meshes[i]
		var members []*instance
		for _, name := range ms.Roles {
			r, ok := c.roles[name]
			if !ok {
				return nil, fmt.Errorf("mesh %d: unknown role %q", i, name)
			}
			members = append(members, r.instances...)
		}
		if len(members) < 2 {
			return nil, fmt.Errorf("mesh %d: needs at least two instances", i)
		}
		port := ms.Port
		if port == 0 {
			port = 10250
		}
		union := &role{
			RoleSpec:  RoleSpec{Name: "(mesh)", Port: port, ActiveFraction: 1},
			instances: members,
		}
		l := &link{
			LinkSpec: LinkSpec{
				FlowsPerMin: ms.FlowsPerMin,
				Fanout:      ms.Fanout,
				FwdBytes:    ms.FwdBytes,
				RevBytes:    ms.RevBytes,
			},
			src: union, dst: union,
		}
		l.peers = make([][]int, len(members))
		for s := range members {
			l.peers[s] = c.pickPeersExcluding(len(members), ms.Fanout, s)
		}
		c.links = append(c.links, l)
	}
	return c, nil
}

// pickPeersExcluding is pickPeers but never includes self, for meshes whose
// source and destination pools coincide.
func (c *Cluster) pickPeersExcluding(n, fanout, self int) []int {
	if fanout <= 0 || fanout >= n-1 {
		all := make([]int, 0, n-1)
		for i := 0; i < n; i++ {
			if i != self {
				all = append(all, i)
			}
		}
		return all
	}
	perm := c.rng.Perm(n)
	peers := make([]int, 0, fanout)
	for _, p := range perm {
		if p == self {
			continue
		}
		peers = append(peers, p)
		if len(peers) == fanout {
			break
		}
	}
	return peers
}

// pickPeers returns a stable random subset of [0, n) of size fanout
// (fanout<0 = all, 0 = 1).
func (c *Cluster) pickPeers(n, fanout int) []int {
	if fanout < 0 || fanout >= n {
		all := make([]int, n)
		for i := range all {
			all[i] = i
		}
		return all
	}
	if fanout == 0 {
		fanout = 1
	}
	return c.rng.Perm(n)[:fanout]
}

// derivePort maps a role name to a deterministic service port in
// [1024, 32768).
func derivePort(name string) uint16 {
	h := uint32(2166136261)
	for i := 0; i < len(name); i++ {
		h = (h ^ uint32(name[i])) * 16777619
	}
	return uint16(1024 + h%(32768-1024))
}

// Spec returns the cluster's spec.
func (c *Cluster) Spec() Spec { return c.spec }

// Fabric exposes the nicsim fabric carrying the cluster's telemetry.
func (c *Cluster) Fabric() *nicsim.Fabric { return c.fabric }

// MonitoredIPs returns the number of monitored (internal) VMs: the "#IPs
// mon." column of Table 1. Co-located services share a VM and count once.
func (c *Cluster) MonitoredIPs() int {
	n := 0
	for _, inst := range c.byAddr {
		if !inst.role.External {
			n++
		}
	}
	return n
}

// RoleOf returns the role name of addr, or "" if unknown.
func (c *Cluster) RoleOf(addr netip.Addr) string {
	if inst, ok := c.byAddr[addr]; ok {
		return inst.role.Name
	}
	return ""
}

// Monitored reports whether addr belongs to a monitored VM.
func (c *Cluster) Monitored(addr netip.Addr) bool {
	inst, ok := c.byAddr[addr]
	return ok && !inst.role.External
}

// GroundTruth returns the true role label of every monitored VM as IP-facet
// graph nodes — the reference segmentation that quality metrics score
// against. A VM hosting co-located services carries its primary role's
// label (at the IP facet the services are indistinguishable anyway; see
// GroundTruthEndpoints).
func (c *Cluster) GroundTruth() map[graph.Node]string {
	gt := make(map[graph.Node]string)
	for addr, inst := range c.byAddr {
		if !inst.role.External {
			gt[graph.IPNode(addr)] = inst.role.Name
		}
	}
	return gt
}

// GroundTruthEndpoints labels service endpoints at the endpoint facet:
// each role (including co-located ones) contributes {addr, port} nodes.
// This is the reference for §2.1's multi-role concern — endpoints of two
// services on the same VM carry different labels here.
func (c *Cluster) GroundTruthEndpoints() map[graph.Node]string {
	gt := make(map[graph.Node]string)
	for _, r := range c.roles {
		if r.External {
			continue
		}
		for _, inst := range r.instances {
			gt[graph.IPPortNode(inst.addr, r.Port)] = r.Name
		}
	}
	return gt
}

// Labeler returns a graph.Labeler mapping addresses to role names, for
// FacetService graphs.
func (c *Cluster) Labeler() graph.Labeler {
	return func(a netip.Addr) string { return c.RoleOf(a) }
}

// Addresses returns the instance addresses of a role (nil if unknown).
func (c *Cluster) Addresses(roleName string) []netip.Addr {
	r := c.roles[roleName]
	if r == nil {
		return nil
	}
	addrs := make([]netip.Addr, len(r.instances))
	for i, inst := range r.instances {
		addrs[i] = inst.addr
	}
	return addrs
}

// ephemeral returns the next ephemeral source port for inst.
func (inst *instance) ephemeral() uint16 {
	p := inst.nextEphemeral
	inst.nextEphemeral++
	if inst.nextEphemeral < 32768 { // wrapped past 65535
		inst.nextEphemeral = 32768
	}
	return p
}

// Tick generates one minute of traffic starting at t into the fabric. Call
// fabric.PullAll (or Run) afterwards to obtain the connection summaries.
func (c *Cluster) Tick(t time.Time) {
	for _, l := range c.links {
		c.tickLink(l, t)
	}
	for _, a := range c.attacks {
		a.Inject(c, t)
	}
}

func (c *Cluster) tickLink(l *link, t time.Time) {
	nDst := len(l.dst.instances)
	if nDst == 0 {
		return
	}
	diurnal := 1.0
	if l.Diurnal > 0 {
		hour := float64(t.Hour()) + float64(t.Minute())/60
		diurnal = 1 + l.Diurnal*math.Sin(2*math.Pi*(hour-6)/24)
	}
	for si, src := range l.src.instances {
		if l.src.ActiveFraction < 1 && c.rng.Float64() >= l.src.ActiveFraction {
			continue
		}
		flows := c.poisson(l.FlowsPerMin * src.rateMul * diurnal)
		for f := 0; f < flows; f++ {
			peerSet := l.peers[si]
			di := peerSet[c.rng.Intn(len(peerSet))]
			dst := l.dst.instances[di]
			var sport uint16
			if l.Persistent {
				idx := si*nDst + di
				if l.persistentPort[idx] == 0 {
					l.persistentPort[idx] = src.ephemeral()
				}
				sport = l.persistentPort[idx]
			} else {
				sport = src.ephemeral()
			}
			fwdBytes := c.lognormal(l.FwdBytes)
			revBytes := c.lognormal(l.RevBytes)
			c.fabric.ObserveFlow(
				netip.AddrPortFrom(src.addr, sport),
				netip.AddrPortFrom(dst.addr, l.dst.Port),
				packetsFor(fwdBytes), packetsFor(revBytes),
				fwdBytes, revBytes, t,
			)
		}
	}
}

// poisson samples a Poisson variate with the given mean, switching to a
// normal approximation for large means.
func (c *Cluster) poisson(mean float64) int {
	if mean <= 0 {
		return 0
	}
	if mean > 30 {
		v := mean + math.Sqrt(mean)*c.rng.NormFloat64()
		if v < 0 {
			return 0
		}
		return int(v + 0.5)
	}
	l := math.Exp(-mean)
	k, p := 0, 1.0
	for {
		p *= c.rng.Float64()
		if p <= l {
			return k
		}
		k++
	}
}

// lognormal samples a log-normal variate with the given mean (σ=0.5 in log
// space), floored at 64 bytes.
func (c *Cluster) lognormal(mean float64) uint64 {
	if mean <= 0 {
		return 0
	}
	const sigma = 0.5
	mu := math.Log(mean) - sigma*sigma/2
	v := math.Exp(mu + sigma*c.rng.NormFloat64())
	if v < 64 {
		v = 64
	}
	return uint64(v)
}

// packetsFor models the packet count carrying n bytes (1460-byte MSS, at
// least one packet for any nonzero transfer).
func packetsFor(n uint64) uint64 {
	if n == 0 {
		return 0
	}
	return (n + 1459) / 1460
}

// AddAttack registers an attack to be injected on every Tick.
func (c *Cluster) AddAttack(a Attack) { c.attacks = append(c.attacks, a) }

// observeAttack routes attack traffic into the fabric and records its flow
// key as malicious ground truth.
func (c *Cluster) observeAttack(src, dst netip.AddrPort, fwdPkts, revPkts, fwdBytes, revBytes uint64, t time.Time) {
	c.attackKeys[flowlog.Record{LocalIP: src.Addr(), LocalPort: src.Port(), RemoteIP: dst.Addr(), RemotePort: dst.Port()}.Key()] = true
	c.fabric.ObserveFlow(src, dst, fwdPkts, revPkts, fwdBytes, revBytes, t)
}

// IsAttackRecord reports whether a record stems from injected attack
// traffic — the labelled ground truth for detection and enforcement
// experiments.
func (c *Cluster) IsAttackRecord(r flowlog.Record) bool {
	return c.attackKeys[r.Key()]
}

// Run drives the cluster for the given number of one-minute intervals
// starting at start, pulling host agents after each interval and forwarding
// summaries to collect. It returns the total records forwarded.
func (c *Cluster) Run(start time.Time, intervals int, collect nicsim.Collector) (int, error) {
	total := 0
	for i := 0; i < intervals; i++ {
		t := start.Add(time.Duration(i) * time.Minute)
		c.Tick(t)
		n, err := c.fabric.PullAll(t, collect)
		if err != nil {
			return total, err
		}
		total += n
	}
	return total, nil
}

// CollectHour runs one hour of the cluster and returns all records — the
// unit the paper's hourly graphs are built from.
func (c *Cluster) CollectHour(start time.Time) ([]flowlog.Record, error) {
	var recs []flowlog.Record
	_, err := c.Run(start, 60, nicsim.CollectorFunc(func(batch []flowlog.Record) error {
		recs = append(recs, batch...)
		return nil
	}))
	return recs, err
}
