package cluster

import (
	"bytes"
	"testing"
	"time"

	"cloudgraph/internal/flowlog"
	"cloudgraph/internal/trace"
)

// TestDeterministicReplay pins the invariant cloudgraph-vet's detclock
// analyzer exists to protect: two clusters built from the same spec and
// seed must emit byte-identical flow-log streams. Any ambient clock read,
// global-RNG draw, or map-iteration order leaking into the record stream
// shows up here as a diff.
func TestDeterministicReplay(t *testing.T) {
	run := func(tr *trace.Tracer) []byte {
		spec := MicroserviceBench(0.2)
		c, err := New(spec)
		if err != nil {
			t.Fatal(err)
		}
		c.Fabric().Trace(tr)
		start := time.Unix(1700000000, 0).UTC()
		c.AddAttack(PortScan{
			AttackerRole: "frontend",
			TargetRole:   "redis",
			PortsPerMin:  40,
			Start:        start.Add(10 * time.Minute),
			Duration:     10 * time.Minute,
		})
		recs, err := c.CollectHour(start)
		if err != nil {
			t.Fatal(err)
		}
		if len(recs) == 0 {
			t.Fatal("cluster emitted no records")
		}
		var stream []byte
		for _, r := range recs {
			stream = flowlog.AppendBinary(stream, r)
		}
		return stream
	}

	diff := func(label string, first, second []byte) {
		t.Helper()
		if bytes.Equal(first, second) {
			return
		}
		n := len(first)
		if len(second) < n {
			n = len(second)
		}
		at := n
		for i := 0; i < n; i++ {
			if first[i] != second[i] {
				at = i
				break
			}
		}
		t.Fatalf("%s: replay diverged: %d vs %d bytes, first difference at offset %d (record %d)",
			label, len(first), len(second), at, at/flowlog.WireSize)
	}

	first := run(nil)
	second := run(nil)
	diff("untraced", first, second)

	// Tracing must never perturb the record stream: trace contexts travel
	// out of band, so a run with sampling enabled is still byte-identical
	// to the untraced baseline.
	traced := run(trace.New(trace.Options{SampleEvery: 64, Seed: 1}))
	diff("traced vs untraced", first, traced)
}
