package cluster

import (
	"bytes"
	"testing"
	"time"

	"cloudgraph/internal/flowlog"
)

// TestDeterministicReplay pins the invariant cloudgraph-vet's detclock
// analyzer exists to protect: two clusters built from the same spec and
// seed must emit byte-identical flow-log streams. Any ambient clock read,
// global-RNG draw, or map-iteration order leaking into the record stream
// shows up here as a diff.
func TestDeterministicReplay(t *testing.T) {
	run := func() []byte {
		spec := MicroserviceBench(0.2)
		c, err := New(spec)
		if err != nil {
			t.Fatal(err)
		}
		start := time.Unix(1700000000, 0).UTC()
		c.AddAttack(PortScan{
			AttackerRole: "frontend",
			TargetRole:   "redis",
			PortsPerMin:  40,
			Start:        start.Add(10 * time.Minute),
			Duration:     10 * time.Minute,
		})
		recs, err := c.CollectHour(start)
		if err != nil {
			t.Fatal(err)
		}
		if len(recs) == 0 {
			t.Fatal("cluster emitted no records")
		}
		var stream []byte
		for _, r := range recs {
			stream = flowlog.AppendBinary(stream, r)
		}
		return stream
	}

	first := run()
	second := run()
	if !bytes.Equal(first, second) {
		n := len(first)
		if len(second) < n {
			n = len(second)
		}
		at := n
		for i := 0; i < n; i++ {
			if first[i] != second[i] {
				at = i
				break
			}
		}
		t.Fatalf("replay diverged: %d vs %d bytes, first difference at offset %d (record %d)",
			len(first), len(second), at, at/flowlog.WireSize)
	}
}
