package cluster

import (
	"net/netip"
	"time"
)

// Attack injects malicious traffic into a cluster, standing in for the
// breach-and-attack-simulation tool the paper runs against µserviceBench.
// Attacks add flows through the same fabric as legitimate traffic, so they
// appear in the telemetry exactly as a real breach would — and, per §3.1,
// the telemetry remains trustworthy because the breached VM cannot tamper
// with NIC-level collection.
type Attack interface {
	// Name identifies the attack in reports.
	Name() string
	// Inject adds the attack's flows for the minute starting at t.
	Inject(c *Cluster, t time.Time)
}

// window reports whether t falls in [start, start+d).
func window(t, start time.Time, d time.Duration) bool {
	return !t.Before(start) && t.Before(start.Add(d))
}

// PortScan models reconnaissance: a compromised instance probes many ports
// on the instances of a target role, creating a burst of tiny flows that
// violates the role's learned reachability.
type PortScan struct {
	AttackerRole string // role of the compromised instance
	AttackerIdx  int    // which instance of the role is compromised
	TargetRole   string
	PortsPerMin  int
	Start        time.Time
	Duration     time.Duration
}

// Name implements Attack.
func (a PortScan) Name() string { return "port-scan" }

// Inject implements Attack.
func (a PortScan) Inject(c *Cluster, t time.Time) {
	if !window(t, a.Start, a.Duration) {
		return
	}
	src := c.instanceOf(a.AttackerRole, a.AttackerIdx)
	targets := c.roles[a.TargetRole]
	if src == nil || targets == nil || len(targets.instances) == 0 {
		return
	}
	for i := 0; i < a.PortsPerMin; i++ {
		dst := targets.instances[c.rng.Intn(len(targets.instances))]
		port := uint16(1 + c.rng.Intn(10000))
		c.observeAttack(
			netip.AddrPortFrom(src.addr, src.ephemeral()),
			netip.AddrPortFrom(dst.addr, port),
			2, 1, 120, 60, t, // SYN probes: a couple of packets each way
		)
	}
}

// LateralMovement models a breached instance reaching service ports of
// peers its role never legitimately talks to.
type LateralMovement struct {
	AttackerRole string
	AttackerIdx  int
	TargetRole   string
	FlowsPerMin  int
	Bytes        uint64
	Start        time.Time
	Duration     time.Duration
}

// Name implements Attack.
func (a LateralMovement) Name() string { return "lateral-movement" }

// Inject implements Attack.
func (a LateralMovement) Inject(c *Cluster, t time.Time) {
	if !window(t, a.Start, a.Duration) {
		return
	}
	src := c.instanceOf(a.AttackerRole, a.AttackerIdx)
	targets := c.roles[a.TargetRole]
	if src == nil || targets == nil || len(targets.instances) == 0 {
		return
	}
	for i := 0; i < a.FlowsPerMin; i++ {
		dst := targets.instances[c.rng.Intn(len(targets.instances))]
		c.observeAttack(
			netip.AddrPortFrom(src.addr, src.ephemeral()),
			netip.AddrPortFrom(dst.addr, targets.Port),
			packetsFor(a.Bytes), packetsFor(a.Bytes/4),
			a.Bytes, a.Bytes/4, t,
		)
	}
}

// Exfiltration models bulk data theft: sustained large transfers from a
// breached instance to an attacker-controlled external endpoint.
type Exfiltration struct {
	SourceRole  string
	SourceIdx   int
	Destination netip.Addr // attacker-controlled endpoint (outside all roles)
	BytesPerMin uint64
	Start       time.Time
	Duration    time.Duration
}

// Name implements Attack.
func (a Exfiltration) Name() string { return "exfiltration" }

// Inject implements Attack.
func (a Exfiltration) Inject(c *Cluster, t time.Time) {
	if !window(t, a.Start, a.Duration) {
		return
	}
	src := c.instanceOf(a.SourceRole, a.SourceIdx)
	if src == nil || !a.Destination.IsValid() {
		return
	}
	c.observeAttack(
		netip.AddrPortFrom(src.addr, 45123), // stable port: one long-lived flow
		netip.AddrPortFrom(a.Destination, 443),
		packetsFor(a.BytesPerMin), packetsFor(a.BytesPerMin/100),
		a.BytesPerMin, a.BytesPerMin/100, t,
	)
}

// Beacon models command-and-control keepalives: small, metronomically
// periodic flows from a breached instance to an external C2 endpoint.
type Beacon struct {
	SourceRole string
	SourceIdx  int
	C2         netip.Addr
	Period     time.Duration // beacon every Period (rounded to minutes)
	Bytes      uint64
	Start      time.Time
	Duration   time.Duration
}

// Name implements Attack.
func (a Beacon) Name() string { return "c2-beacon" }

// Inject implements Attack.
func (a Beacon) Inject(c *Cluster, t time.Time) {
	if !window(t, a.Start, a.Duration) {
		return
	}
	period := a.Period
	if period < time.Minute {
		period = time.Minute
	}
	if t.Sub(a.Start)%period >= time.Minute {
		return // not a beacon minute
	}
	src := c.instanceOf(a.SourceRole, a.SourceIdx)
	if src == nil || !a.C2.IsValid() {
		return
	}
	c.observeAttack(
		netip.AddrPortFrom(src.addr, 51999),
		netip.AddrPortFrom(a.C2, 8443),
		2, 2, a.Bytes, a.Bytes, t,
	)
}

// instanceOf returns instance idx of the named role, or nil.
func (c *Cluster) instanceOf(roleName string, idx int) *instance {
	r := c.roles[roleName]
	if r == nil || idx < 0 || idx >= len(r.instances) {
		return nil
	}
	return r.instances[idx]
}
