package cluster

import (
	"testing"

	"cloudgraph/internal/graph"
)

// TestPortalCalibration locks the Portal preset near its Table 1 targets:
// ~4K IP-graph nodes, ~5K edges, ~332 records/min. Portal is the only
// full-scale preset cheap enough to regenerate in unit tests; the other
// three are checked by cmd/experiments (see EXPERIMENTS.md).
func TestPortalCalibration(t *testing.T) {
	if testing.Short() {
		t.Skip("generates an hour of telemetry")
	}
	c := mustCluster(t, Portal(1))
	recs, err := c.CollectHour(t0)
	if err != nil {
		t.Fatal(err)
	}
	g := graph.Build(recs, graph.BuilderOptions{Facet: graph.FacetIP})
	s := g.ComputeStats()
	if s.Nodes < 3000 || s.Nodes > 5000 {
		t.Errorf("Portal nodes = %d, want ~4K (Table 1)", s.Nodes)
	}
	if s.Edges < 3500 || s.Edges > 6500 {
		t.Errorf("Portal edges = %d, want ~5K (Table 1)", s.Edges)
	}
	perMin := len(recs) / 60
	if perMin < 200 || perMin > 550 {
		t.Errorf("Portal records/min = %d, want ~332 (Table 1)", perMin)
	}
	// Structural sanity: frontends are the hubs.
	for _, fe := range c.Addresses("web-frontend") {
		if d := g.Degree(graph.IPNode(fe)); d < 500 {
			t.Errorf("frontend %v degree = %d, want a hub", fe, d)
		}
	}
}
