package cluster

import (
	"fmt"
	"math"
	"net/netip"
)

// The four Table 1 datasets. Each preset takes a scale in (0, 1] that
// shrinks instance counts, fanouts and flow rates together, so the graph
// *shape* (role structure, hubs, cliques, density ordering across datasets)
// is preserved while wall-clock and memory cost drop roughly quadratically.
// scale=1 targets the paper's reported graph sizes.

// scaleN scales an instance count, never below 1.
func scaleN(n int, s float64) int {
	v := int(math.Round(float64(n) * s))
	if v < 1 {
		return 1
	}
	return v
}

// Portal models the web portal of a large cloud: a handful of monitored
// frontend VMs serving a large churning population of internet clients.
// Table 1: 4 IPs monitored, hourly IP-graph ≈ 4K nodes (5K edges), ≈332
// records/min. Client IPs each carry far below 0.1% of traffic, so this
// dataset is reported uncollapsed.
func Portal(scale float64) Spec {
	if scale <= 0 {
		scale = 1
	}
	return Spec{
		Name:        "Portal",
		Seed:        101,
		InternalNet: netip.MustParsePrefix("10.1.0.0/16"),
		ExternalNet: netip.MustParsePrefix("198.18.0.0/15"),
		Roles: []RoleSpec{
			{Name: "web-frontend", Count: 4, Port: 443},
			{Name: "client", Count: scaleN(3400, scale), External: true, ActiveFraction: 0.065},
			{Name: "client-multi", Count: scaleN(700, scale), External: true, ActiveFraction: 0.065},
			{Name: "auth-upstream", Count: 2, External: true, Port: 443},
			{Name: "object-store", Count: 3, External: true, Port: 443},
			{Name: "telemetry-sink", Count: 1, External: true, Port: 443},
		},
		Links: []LinkSpec{
			{Src: "client", Dst: "web-frontend", FlowsPerMin: 1.2, Fanout: 1, FwdBytes: 900, RevBytes: 28_000},
			{Src: "client-multi", Dst: "web-frontend", FlowsPerMin: 1.2, Fanout: 2, FwdBytes: 900, RevBytes: 28_000},
			{Src: "web-frontend", Dst: "auth-upstream", FlowsPerMin: 8, Fanout: -1, FwdBytes: 1500, RevBytes: 2500},
			{Src: "web-frontend", Dst: "object-store", FlowsPerMin: 12, Fanout: -1, FwdBytes: 500, RevBytes: 60_000},
			{Src: "web-frontend", Dst: "telemetry-sink", FlowsPerMin: 4, Fanout: -1, FwdBytes: 20_000, RevBytes: 200, Persistent: true},
		},
		CollapseThreshold: 0, // see DESIGN.md: clients dominate the node count
		VMsPerHost:        4,
	}
}

// MicroserviceBench models the public microservices shopping-site benchmark
// the paper injects attacks into: 16 monitored VMs running an online
// boutique (frontend, cart, catalog, checkout, ...) under synthetic load.
// Table 1: 16 IPs monitored, hourly IP-graph 33 nodes (268 edges), ≈48K
// records/min — tiny node count, very dense.
func MicroserviceBench(scale float64) Spec {
	if scale <= 0 {
		scale = 1
	}
	rate := func(v float64) float64 { return v * scale }
	return Spec{
		Name:        "uServiceBench",
		Seed:        202,
		InternalNet: netip.MustParsePrefix("10.2.0.0/16"),
		ExternalNet: netip.MustParsePrefix("198.20.0.0/16"),
		Roles: []RoleSpec{
			{Name: "loadgen", Count: 1, Port: 9999},
			{Name: "frontend", Count: 2, Port: 8080},
			{Name: "cart", Count: 1, Port: 7070},
			{Name: "productcatalog", Count: 2, Port: 3550},
			{Name: "currency", Count: 2, Port: 7000},
			{Name: "payment", Count: 1, Port: 50051},
			{Name: "shipping", Count: 1, Port: 50052},
			{Name: "email", Count: 1, Port: 5000},
			{Name: "checkout", Count: 1, Port: 5050},
			{Name: "recommendation", Count: 2, Port: 8081},
			{Name: "ad", Count: 1, Port: 9555},
			{Name: "redis", Count: 1, Port: 6379},
			// Externals: clients poking the exposed frontend plus the
			// cluster-level dependencies every pod touches.
			{Name: "ext-client", Count: 8, External: true},
			{Name: "dns", Count: 2, External: true, Port: 53},
			{Name: "registry", Count: 1, External: true, Port: 443},
			{Name: "cloud-api", Count: 3, External: true, Port: 443},
			{Name: "monitor", Count: 2, External: true, Port: 443},
			{Name: "ntp", Count: 1, External: true, Port: 123},
		},
		Links: []LinkSpec{
			{Src: "loadgen", Dst: "frontend", FlowsPerMin: rate(5000), Fanout: -1, FwdBytes: 800, RevBytes: 12_000},
			{Src: "ext-client", Dst: "frontend", FlowsPerMin: rate(30), Fanout: -1, FwdBytes: 800, RevBytes: 12_000},
			{Src: "frontend", Dst: "cart", FlowsPerMin: rate(1200), Fanout: -1, FwdBytes: 300, RevBytes: 600},
			{Src: "frontend", Dst: "productcatalog", FlowsPerMin: rate(1800), Fanout: -1, FwdBytes: 300, RevBytes: 2500},
			{Src: "frontend", Dst: "currency", FlowsPerMin: rate(1500), Fanout: -1, FwdBytes: 200, RevBytes: 250},
			{Src: "frontend", Dst: "recommendation", FlowsPerMin: rate(900), Fanout: -1, FwdBytes: 300, RevBytes: 900},
			{Src: "frontend", Dst: "ad", FlowsPerMin: rate(900), Fanout: -1, FwdBytes: 250, RevBytes: 700},
			{Src: "frontend", Dst: "checkout", FlowsPerMin: rate(350), Fanout: -1, FwdBytes: 900, RevBytes: 1200},
			{Src: "checkout", Dst: "payment", FlowsPerMin: rate(350), Fanout: -1, FwdBytes: 600, RevBytes: 400},
			{Src: "checkout", Dst: "shipping", FlowsPerMin: rate(350), Fanout: -1, FwdBytes: 500, RevBytes: 450},
			{Src: "checkout", Dst: "email", FlowsPerMin: rate(330), Fanout: -1, FwdBytes: 1200, RevBytes: 200},
			{Src: "checkout", Dst: "cart", FlowsPerMin: rate(350), Fanout: -1, FwdBytes: 300, RevBytes: 500},
			{Src: "checkout", Dst: "currency", FlowsPerMin: rate(700), Fanout: -1, FwdBytes: 200, RevBytes: 250},
			{Src: "checkout", Dst: "productcatalog", FlowsPerMin: rate(350), Fanout: -1, FwdBytes: 300, RevBytes: 2000},
			{Src: "recommendation", Dst: "productcatalog", FlowsPerMin: rate(900), Fanout: -1, FwdBytes: 300, RevBytes: 2200},
			{Src: "cart", Dst: "redis", FlowsPerMin: rate(2400), Fanout: -1, FwdBytes: 250, RevBytes: 350, Persistent: true},
			// Cluster plumbing: every pod resolves names, reports metrics,
			// pulls images and syncs time — this is what densifies the
			// tiny IP-graph to ~268 of 528 possible edges.
			{Src: "monitor", Dst: "frontend", FlowsPerMin: rate(12), Fanout: -1, FwdBytes: 300, RevBytes: 8000},
			{Src: "monitor", Dst: "cart", FlowsPerMin: rate(12), Fanout: -1, FwdBytes: 300, RevBytes: 8000},
			{Src: "monitor", Dst: "productcatalog", FlowsPerMin: rate(12), Fanout: -1, FwdBytes: 300, RevBytes: 8000},
			{Src: "monitor", Dst: "currency", FlowsPerMin: rate(12), Fanout: -1, FwdBytes: 300, RevBytes: 8000},
			{Src: "monitor", Dst: "payment", FlowsPerMin: rate(12), Fanout: -1, FwdBytes: 300, RevBytes: 8000},
			{Src: "monitor", Dst: "shipping", FlowsPerMin: rate(12), Fanout: -1, FwdBytes: 300, RevBytes: 8000},
			{Src: "monitor", Dst: "email", FlowsPerMin: rate(12), Fanout: -1, FwdBytes: 300, RevBytes: 8000},
			{Src: "monitor", Dst: "checkout", FlowsPerMin: rate(12), Fanout: -1, FwdBytes: 300, RevBytes: 8000},
			{Src: "monitor", Dst: "recommendation", FlowsPerMin: rate(12), Fanout: -1, FwdBytes: 300, RevBytes: 8000},
			{Src: "monitor", Dst: "ad", FlowsPerMin: rate(12), Fanout: -1, FwdBytes: 300, RevBytes: 8000},
			{Src: "monitor", Dst: "redis", FlowsPerMin: rate(12), Fanout: -1, FwdBytes: 300, RevBytes: 8000},
			{Src: "monitor", Dst: "loadgen", FlowsPerMin: rate(12), Fanout: -1, FwdBytes: 300, RevBytes: 8000},
			{Src: "frontend", Dst: "dns", FlowsPerMin: rate(60), Fanout: -1, FwdBytes: 80, RevBytes: 200},
			{Src: "checkout", Dst: "dns", FlowsPerMin: rate(40), Fanout: -1, FwdBytes: 80, RevBytes: 200},
			{Src: "recommendation", Dst: "dns", FlowsPerMin: rate(40), Fanout: -1, FwdBytes: 80, RevBytes: 200},
			{Src: "cart", Dst: "dns", FlowsPerMin: rate(40), Fanout: -1, FwdBytes: 80, RevBytes: 200},
			{Src: "currency", Dst: "dns", FlowsPerMin: rate(20), Fanout: -1, FwdBytes: 80, RevBytes: 200},
			{Src: "productcatalog", Dst: "dns", FlowsPerMin: rate(20), Fanout: -1, FwdBytes: 80, RevBytes: 200},
			{Src: "payment", Dst: "dns", FlowsPerMin: rate(20), Fanout: -1, FwdBytes: 80, RevBytes: 200},
			{Src: "shipping", Dst: "dns", FlowsPerMin: rate(20), Fanout: -1, FwdBytes: 80, RevBytes: 200},
			{Src: "email", Dst: "dns", FlowsPerMin: rate(20), Fanout: -1, FwdBytes: 80, RevBytes: 200},
			{Src: "ad", Dst: "dns", FlowsPerMin: rate(20), Fanout: -1, FwdBytes: 80, RevBytes: 200},
			{Src: "redis", Dst: "dns", FlowsPerMin: rate(20), Fanout: -1, FwdBytes: 80, RevBytes: 200},
			{Src: "loadgen", Dst: "dns", FlowsPerMin: rate(20), Fanout: -1, FwdBytes: 80, RevBytes: 200},
			{Src: "frontend", Dst: "cloud-api", FlowsPerMin: rate(8), Fanout: -1, FwdBytes: 1000, RevBytes: 3000},
			{Src: "checkout", Dst: "cloud-api", FlowsPerMin: rate(8), Fanout: -1, FwdBytes: 1000, RevBytes: 3000},
			{Src: "payment", Dst: "cloud-api", FlowsPerMin: rate(8), Fanout: -1, FwdBytes: 1000, RevBytes: 3000},
			{Src: "shipping", Dst: "cloud-api", FlowsPerMin: rate(8), Fanout: -1, FwdBytes: 1000, RevBytes: 3000},
			{Src: "email", Dst: "cloud-api", FlowsPerMin: rate(8), Fanout: -1, FwdBytes: 1000, RevBytes: 3000},
			{Src: "frontend", Dst: "registry", FlowsPerMin: rate(2), Fanout: -1, FwdBytes: 500, RevBytes: 90_000},
			{Src: "cart", Dst: "registry", FlowsPerMin: rate(2), Fanout: -1, FwdBytes: 500, RevBytes: 90_000},
			{Src: "redis", Dst: "registry", FlowsPerMin: rate(2), Fanout: -1, FwdBytes: 500, RevBytes: 90_000},
			{Src: "productcatalog", Dst: "registry", FlowsPerMin: rate(2), Fanout: -1, FwdBytes: 500, RevBytes: 90_000},
			{Src: "recommendation", Dst: "registry", FlowsPerMin: rate(2), Fanout: -1, FwdBytes: 500, RevBytes: 90_000},
			{Src: "frontend", Dst: "ntp", FlowsPerMin: rate(1), Fanout: -1, FwdBytes: 90, RevBytes: 90},
			{Src: "redis", Dst: "ntp", FlowsPerMin: rate(1), Fanout: -1, FwdBytes: 90, RevBytes: 90},
			{Src: "payment", Dst: "ntp", FlowsPerMin: rate(1), Fanout: -1, FwdBytes: 90, RevBytes: 90},
		},
		Meshes: []MeshSpec{
			// Node-level kubelet/overlay chatter among all 16 VMs: this is
			// what takes the tiny IP-graph to ~268 of 528 possible edges.
			{
				Roles: []string{
					"loadgen", "frontend", "cart", "productcatalog", "currency",
					"payment", "shipping", "email", "checkout", "recommendation",
					"ad", "redis",
				},
				FlowsPerMin: rate(6), Fanout: -1, Port: 10250,
				FwdBytes: 400, RevBytes: 400,
			},
		},
		CollapseThreshold: 0,
		VMsPerHost:        8,
	}
}

// K8sPaaS models the production kubernetes-as-a-service cluster the paper
// uses as its default dataset: customer pods on hundreds of worker VMs plus
// the control plane (API servers, etcd, DNS, ingress) and cluster services.
// Table 1: 390 IPs monitored, hourly IP-graph 541 nodes (12K edges), ≈68K
// records/min. The 0.1% heavy-hitter collapse merges the long tail of tiny
// internet clients into one node while ~150 substantial external endpoints
// survive.
func K8sPaaS(scale float64) Spec {
	if scale <= 0 {
		scale = 1
	}
	workers := scaleN(360, scale)
	rate := func(v float64) float64 { return v }
	fan := func(n int) int {
		v := int(math.Round(float64(n) * scale))
		if v < 1 {
			return 1
		}
		return v
	}
	return Spec{
		Name:        "K8s PaaS",
		Seed:        303,
		InternalNet: netip.MustParsePrefix("10.3.0.0/16"),
		ExternalNet: netip.MustParsePrefix("198.22.0.0/16"),
		Roles: []RoleSpec{
			{Name: "apiserver", Count: 3, Port: 6443},
			{Name: "etcd", Count: 3, Port: 2379},
			{Name: "coredns", Count: scaleN(8, scale), Port: 53},
			{Name: "ingress", Count: scaleN(8, scale), Port: 443},
			{Name: "telemetry", Count: scaleN(6, scale), Port: 4317},
			{Name: "registry-cache", Count: 2, Port: 5000},
			{Name: "worker", Count: workers, Port: 10250, RateSkew: 1.1},
			// Substantial external dependencies (each carries enough
			// traffic to survive the 0.1% collapse)...
			{Name: "cloud-store", Count: scaleN(60, scale), External: true, Port: 443},
			{Name: "customer-api", Count: scaleN(60, scale), External: true, Port: 443},
			{Name: "partner-feed", Count: scaleN(30, scale), External: true, Port: 443},
			// ...and a long tail of tiny internet clients that collapses.
			{Name: "inet-client", Count: scaleN(2000, scale), External: true, ActiveFraction: 0.05},
		},
		Links: []LinkSpec{
			// Control plane.
			{Src: "worker", Dst: "apiserver", FlowsPerMin: rate(10), Fanout: -1, FwdBytes: 2_000, RevBytes: 9_000, Persistent: true},
			{Src: "apiserver", Dst: "etcd", FlowsPerMin: rate(300), Fanout: -1, FwdBytes: 1_500, RevBytes: 3_000, Persistent: true},
			{Src: "worker", Dst: "coredns", FlowsPerMin: rate(15), Fanout: 2, FwdBytes: 90, RevBytes: 220},
			{Src: "worker", Dst: "telemetry", FlowsPerMin: rate(6), Fanout: 1, FwdBytes: 30_000, RevBytes: 300, Persistent: true},
			{Src: "worker", Dst: "registry-cache", FlowsPerMin: rate(0.5), Fanout: -1, FwdBytes: 800, RevBytes: 400_000},
			// Customer pod mesh: each worker exchanges pod traffic with a
			// stable subset of ~40 peers — the chatty cliques of Fig. 4.
			{Src: "worker", Dst: "worker", FlowsPerMin: rate(50), Fanout: fan(15), FwdBytes: 6_000, RevBytes: 8_000},
			// Ingress fans requests out across workers.
			{Src: "ingress", Dst: "worker", FlowsPerMin: rate(400), Fanout: fan(100), FwdBytes: 1_200, RevBytes: 15_000},
			// External dependencies and clients.
			{Src: "worker", Dst: "cloud-store", FlowsPerMin: rate(8), Fanout: 3, FwdBytes: 2_000, RevBytes: 110_000},
			{Src: "worker", Dst: "customer-api", FlowsPerMin: rate(6), Fanout: 6, FwdBytes: 6_000, RevBytes: 90_000},
			{Src: "worker", Dst: "partner-feed", FlowsPerMin: rate(4), Fanout: 4, FwdBytes: 1_000, RevBytes: 80_000},
			{Src: "inet-client", Dst: "ingress", FlowsPerMin: rate(1.5), Fanout: 1, FwdBytes: 700, RevBytes: 9_000},
		},
		CollapseThreshold: 0.001,
		VMsPerHost:        16,
	}
}

// KQuery models the SQL-on-memory analytics cluster: coordinators fan
// queries out to a large worker pool whose shuffle stage is nearly
// all-to-all, producing by far the densest graph of the four datasets.
// Table 1: 1400 IPs monitored, hourly IP-graph 6K nodes (1.3M edges), ≈2.3M
// records/min. Full scale is expensive; the experiment harness defaults to
// scale 0.25 and reports scaled targets (see DESIGN.md).
func KQuery(scale float64) Spec {
	if scale <= 0 {
		scale = 1
	}
	workers := scaleN(1320, scale)
	fan := func(n int) int {
		v := int(math.Round(float64(n) * scale))
		if v < 1 {
			return 1
		}
		return v
	}
	return Spec{
		Name:        "KQuery",
		Seed:        404,
		InternalNet: netip.MustParsePrefix("10.4.0.0/15"),
		ExternalNet: netip.MustParsePrefix("198.24.0.0/15"),
		Roles: []RoleSpec{
			{Name: "coordinator", Count: scaleN(30, scale), Port: 8443},
			{Name: "worker", Count: workers, Port: 9000, RateSkew: 0.9},
			{Name: "cache", Count: scaleN(50, scale), Port: 11211},
			{Name: "analyst", Count: scaleN(4500, scale), External: true, ActiveFraction: 0.12},
			{Name: "lake-store", Count: scaleN(40, scale), External: true, Port: 443},
		},
		Links: []LinkSpec{
			{Src: "analyst", Dst: "coordinator", FlowsPerMin: 1.5, Fanout: 2, FwdBytes: 2_000, RevBytes: 50_000},
			{Src: "coordinator", Dst: "worker", FlowsPerMin: 400 * scale, Fanout: -1, FwdBytes: 4_000, RevBytes: 1_000},
			// The shuffle: each worker streams partials to a large stable
			// peer set every minute.
			{Src: "worker", Dst: "worker", FlowsPerMin: 700 * scale, Fanout: fan(1000), FwdBytes: 40_000, RevBytes: 2_000},
			{Src: "worker", Dst: "cache", FlowsPerMin: 40 * scale, Fanout: fan(50), FwdBytes: 500, RevBytes: 30_000},
			{Src: "worker", Dst: "lake-store", FlowsPerMin: 5, Fanout: 4, FwdBytes: 1_000, RevBytes: 200_000},
		},
		// The Table 1 node count implies the analyst tail was retained for
		// this dataset; see DESIGN.md.
		CollapseThreshold: 0,
		VMsPerHost:        20,
	}
}

// Preset returns the named dataset spec at the given scale. Valid names are
// "portal", "microservicebench" (alias "uservicebench"), "k8spaas" and
// "kquery".
func Preset(name string, scale float64) (Spec, error) {
	switch name {
	case "portal":
		return Portal(scale), nil
	case "microservicebench", "uservicebench":
		return MicroserviceBench(scale), nil
	case "k8spaas":
		return K8sPaaS(scale), nil
	case "kquery":
		return KQuery(scale), nil
	}
	return Spec{}, fmt.Errorf("cluster: unknown preset %q", name)
}

// PresetNames lists the dataset presets in Table 1 order.
func PresetNames() []string {
	return []string{"portal", "microservicebench", "k8spaas", "kquery"}
}
