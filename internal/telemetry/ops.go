package telemetry

import (
	"io"
	"log"
	"math"
	"net"
	"net/http"
	"net/http/pprof"
	"runtime"
	"runtime/metrics"
	"sort"
	"strconv"
	"sync"
	"time"
)

// OpsServer is the daemon's operational HTTP endpoint: /metrics in
// Prometheus text format, /healthz for liveness probes, and the stdlib
// /debug/pprof profiles. Extra views (cloudgraphd's /graphz heatmap)
// attach via Handle.
type OpsServer struct {
	ln  net.Listener
	mux *http.ServeMux
	srv *http.Server

	// viewMu guards views, the read-only patterns registered through
	// HandleView (plus the built-ins) — the route inventory the method
	// -contract test walks.
	viewMu sync.Mutex
	views  []string
}

// ServeOps starts the ops endpoint on addr (e.g. "127.0.0.1:9443"). A nil
// registry gets a fresh one so /metrics always serves. Process-level
// gauges (uptime, goroutines, heap) are registered on reg as a side
// effect.
func ServeOps(addr string, reg *Registry) (*OpsServer, error) {
	if reg == nil {
		reg = NewRegistry()
	}
	registerProcessMetrics(reg)
	mux := http.NewServeMux()
	// pprof's handlers normally live on DefaultServeMux via its package
	// init; wiring them explicitly keeps the ops mux self-contained. They
	// are NOT views: pprof.Symbol legitimately accepts POST, so they stay
	// outside the GetOnly contract.
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)

	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	o := &OpsServer{
		ln:  ln,
		mux: mux,
		srv: &http.Server{Handler: mux, ReadHeaderTimeout: 5 * time.Second},
	}
	o.HandleView("/metrics", reg.Handler())
	o.HandleView("/healthz", http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		if _, err := io.WriteString(w, "ok\n"); err != nil {
			return // probe went away; nothing to clean up
		}
	}))
	go o.serve()
	return o, nil
}

func (o *OpsServer) serve() {
	if err := o.srv.Serve(o.ln); err != nil && err != http.ErrServerClosed {
		// The ops endpoint is best-effort: a late serve error has no
		// caller left to return to, only the log.
		log.Printf("telemetry: ops server: %v", err)
	}
}

// Addr returns the bound listen address (useful with ":0").
func (o *OpsServer) Addr() string { return o.ln.Addr().String() }

// Handle attaches an extra handler under pattern with no method gating —
// for routes with their own method contract (pprof). Read-only views
// belong on HandleView. Safe to call while the server runs; panics if
// pattern is already taken (http.ServeMux rules).
func (o *OpsServer) Handle(pattern string, h http.Handler) {
	o.mux.Handle(pattern, h)
}

// HandleView attaches a read-only view under pattern: the handler is
// wrapped in GetOnly, so every view shares the GET/HEAD-or-405 contract,
// and the pattern is recorded so Views can enumerate the ops surface.
func (o *OpsServer) HandleView(pattern string, h http.Handler) {
	o.mux.Handle(pattern, GetOnly(h))
	o.viewMu.Lock()
	o.views = append(o.views, pattern)
	o.viewMu.Unlock()
}

// Views returns the patterns registered through HandleView (including the
// built-in /metrics and /healthz), sorted — the route inventory tests
// walk to verify the method contract holds everywhere.
func (o *OpsServer) Views() []string {
	o.viewMu.Lock()
	out := make([]string, len(o.views))
	copy(out, o.views)
	o.viewMu.Unlock()
	sort.Strings(out)
	return out
}

// Close shuts the endpoint down immediately, dropping open scrapes.
func (o *OpsServer) Close() error {
	return o.srv.Close()
}

// GetOnly restricts h to GET and HEAD requests, answering anything else
// with 405 and an Allow header — the read-only contract every ops view
// shares. (net/http already suppresses response bodies on HEAD, so a
// wrapped handler needs no HEAD-specific code.)
func GetOnly(h http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		switch r.Method {
		case http.MethodGet, http.MethodHead:
			h.ServeHTTP(w, r)
		default:
			w.Header().Set("Allow", "GET, HEAD")
			http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
		}
	})
}

// registerProcessMetrics adds the process-level gauges every ops endpoint
// wants; GaugeFunc keeps the first registration, so calling this for a
// registry that already has them is a no-op. Scheduler and GC figures
// come from runtime/metrics, which reads counters the runtime already
// maintains instead of stopping the world the way ReadMemStats does.
func registerProcessMetrics(reg *Registry) {
	reg.GaugeFunc("cloudgraph_process_uptime_seconds",
		"seconds since the telemetry registry was created",
		func() float64 { return time.Since(reg.start).Seconds() })
	reg.GaugeFunc("cloudgraph_process_goroutines",
		"live goroutines in the process",
		runtimeMetricFunc("/sched/goroutines:goroutines",
			func() float64 { return float64(runtime.NumGoroutine()) }))
	reg.GaugeFunc("cloudgraph_process_heap_alloc_bytes",
		"heap bytes currently allocated",
		func() float64 {
			var ms runtime.MemStats
			runtime.ReadMemStats(&ms)
			return float64(ms.HeapAlloc)
		})
	reg.GaugeFunc("cloudgraph_process_gc_pause_seconds_total",
		"approximate cumulative stop-the-world GC pause time",
		runtimeMetricFunc("/gc/pauses:seconds", func() float64 { return 0 }))
	reg.GaugeFunc("cloudgraph_process_gc_cycles_total",
		"completed GC cycles",
		runtimeMetricFunc("/gc/cycles/total:gc-cycles",
			func() float64 {
				var ms runtime.MemStats
				runtime.ReadMemStats(&ms)
				return float64(ms.NumGC)
			}))
}

// runtimeMetricFunc returns a gauge function backed by one runtime/metrics
// sample. Counter and gauge kinds read directly; histogram kinds (the GC
// pause distribution) are summed as count × bucket midpoint — an
// approximation, but a stable one, and the only total the runtime exposes.
// fallback covers metrics a future runtime might drop (KindBad).
func runtimeMetricFunc(name string, fallback func() float64) func() float64 {
	sample := []metrics.Sample{{Name: name}}
	return func() float64 {
		metrics.Read(sample)
		switch sample[0].Value.Kind() {
		case metrics.KindUint64:
			return float64(sample[0].Value.Uint64())
		case metrics.KindFloat64:
			return sample[0].Value.Float64()
		case metrics.KindFloat64Histogram:
			h := sample[0].Value.Float64Histogram()
			var total float64
			for i, n := range h.Counts {
				lo, hi := h.Buckets[i], h.Buckets[i+1]
				// Skip empty and unbounded edge buckets: an infinite
				// midpoint times even a zero count poisons the total.
				if n == 0 || lo < 0 || math.IsInf(hi, 1) {
					continue
				}
				total += float64(n) * (lo + hi) / 2
			}
			return total
		default:
			return fallback()
		}
	}
}

// BuildInfo registers the cloudgraph_build_info gauge: constant value 1
// with the build identity as labels (Go version, GOMAXPROCS) plus any
// caller-supplied labels (cloudgraphd adds shard count and a flags
// summary). The info-series idiom lets dashboards join build identity
// onto every other series.
func BuildInfo(reg *Registry, extra ...Label) {
	if reg == nil {
		return
	}
	labels := append([]Label{
		{Key: "go_version", Value: runtime.Version()},
		{Key: "gomaxprocs", Value: strconv.Itoa(runtime.GOMAXPROCS(0))},
	}, extra...)
	reg.Gauge("cloudgraph_build_info",
		"build and runtime identity (constant 1; the labels are the data)",
		labels...).Set(1)
}
