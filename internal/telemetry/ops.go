package telemetry

import (
	"io"
	"log"
	"net"
	"net/http"
	"net/http/pprof"
	"runtime"
	"time"
)

// OpsServer is the daemon's operational HTTP endpoint: /metrics in
// Prometheus text format, /healthz for liveness probes, and the stdlib
// /debug/pprof profiles. Extra views (cloudgraphd's /graphz heatmap)
// attach via Handle.
type OpsServer struct {
	ln  net.Listener
	mux *http.ServeMux
	srv *http.Server
}

// ServeOps starts the ops endpoint on addr (e.g. "127.0.0.1:9443"). A nil
// registry gets a fresh one so /metrics always serves. Process-level
// gauges (uptime, goroutines, heap) are registered on reg as a side
// effect.
func ServeOps(addr string, reg *Registry) (*OpsServer, error) {
	if reg == nil {
		reg = NewRegistry()
	}
	registerProcessMetrics(reg)
	mux := http.NewServeMux()
	mux.Handle("/metrics", GetOnly(reg.Handler()))
	mux.Handle("/healthz", GetOnly(http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		if _, err := io.WriteString(w, "ok\n"); err != nil {
			return // probe went away; nothing to clean up
		}
	})))
	// pprof's handlers normally live on DefaultServeMux via its package
	// init; wiring them explicitly keeps the ops mux self-contained.
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)

	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	o := &OpsServer{
		ln:  ln,
		mux: mux,
		srv: &http.Server{Handler: mux, ReadHeaderTimeout: 5 * time.Second},
	}
	go o.serve()
	return o, nil
}

func (o *OpsServer) serve() {
	if err := o.srv.Serve(o.ln); err != nil && err != http.ErrServerClosed {
		// The ops endpoint is best-effort: a late serve error has no
		// caller left to return to, only the log.
		log.Printf("telemetry: ops server: %v", err)
	}
}

// Addr returns the bound listen address (useful with ":0").
func (o *OpsServer) Addr() string { return o.ln.Addr().String() }

// Handle attaches an extra view under pattern. Safe to call while the
// server runs; panics if pattern is already taken (http.ServeMux rules).
func (o *OpsServer) Handle(pattern string, h http.Handler) {
	o.mux.Handle(pattern, h)
}

// Close shuts the endpoint down immediately, dropping open scrapes.
func (o *OpsServer) Close() error {
	return o.srv.Close()
}

// GetOnly restricts h to GET and HEAD requests, answering anything else
// with 405 and an Allow header — the read-only contract every ops view
// shares. (net/http already suppresses response bodies on HEAD, so a
// wrapped handler needs no HEAD-specific code.)
func GetOnly(h http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		switch r.Method {
		case http.MethodGet, http.MethodHead:
			h.ServeHTTP(w, r)
		default:
			w.Header().Set("Allow", "GET, HEAD")
			http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
		}
	})
}

// registerProcessMetrics adds the process-level gauges every ops endpoint
// wants; GaugeFunc keeps the first registration, so calling this for a
// registry that already has them is a no-op.
func registerProcessMetrics(reg *Registry) {
	reg.GaugeFunc("cloudgraph_process_uptime_seconds",
		"seconds since the telemetry registry was created",
		func() float64 { return time.Since(reg.start).Seconds() })
	reg.GaugeFunc("cloudgraph_process_goroutines",
		"live goroutines in the process",
		func() float64 { return float64(runtime.NumGoroutine()) })
	reg.GaugeFunc("cloudgraph_process_heap_alloc_bytes",
		"heap bytes currently allocated",
		func() float64 {
			var ms runtime.MemStats
			runtime.ReadMemStats(&ms)
			return float64(ms.HeapAlloc)
		})
}
