package telemetry

import "time"

// Span measures one timed section into a duration histogram:
//
//	sp := telemetry.StartSpan(m.merge)
//	... hot work ...
//	sp.End()
//
// Spans are plain values — no allocation, no goroutine, no context. With a
// nil histogram StartSpan skips the clock read entirely, so a disabled
// span costs two branches.
type Span struct {
	h     *Histogram
	start time.Time
}

// StartSpan begins timing into h. A nil h yields an inert span.
func StartSpan(h *Histogram) Span {
	if h == nil {
		return Span{}
	}
	return Span{h: h, start: time.Now()}
}

// End records the elapsed time. End on an inert span is a no-op; a Span
// must not be ended twice (each End records a fresh sample).
func (s Span) End() {
	if s.h == nil {
		return
	}
	s.h.ObserveDuration(time.Since(s.start))
}
