package telemetry

import (
	"io"
	"net/http"
	"strings"
	"testing"
	"time"
)

func get(t *testing.T, url string) (int, string) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("read %s: %v", url, err)
	}
	return resp.StatusCode, string(body)
}

func TestOpsServerEndpoints(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("ops_test_total", "a counter").Add(42)
	o, err := ServeOps("127.0.0.1:0", reg)
	if err != nil {
		t.Fatal(err)
	}
	defer o.Close()
	base := "http://" + o.Addr()

	code, body := get(t, base+"/healthz")
	if code != 200 || body != "ok\n" {
		t.Errorf("/healthz = %d %q", code, body)
	}

	code, body = get(t, base+"/metrics")
	if code != 200 {
		t.Fatalf("/metrics = %d", code)
	}
	for _, want := range []string{
		"ops_test_total 42",
		"cloudgraph_process_uptime_seconds",
		"cloudgraph_process_goroutines",
		"cloudgraph_process_heap_alloc_bytes",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("/metrics missing %q", want)
		}
	}

	code, body = get(t, base+"/debug/pprof/")
	if code != 200 || !strings.Contains(body, "goroutine") {
		t.Errorf("/debug/pprof/ = %d (goroutine profile missing)", code)
	}

	// Extra views attach while the server runs.
	o.Handle("/extra", http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		if _, err := io.WriteString(w, "extra-view"); err != nil {
			return
		}
	}))
	code, body = get(t, base+"/extra")
	if code != 200 || body != "extra-view" {
		t.Errorf("/extra = %d %q", code, body)
	}
}

func TestOpsServerClose(t *testing.T) {
	o, err := ServeOps("127.0.0.1:0", nil)
	if err != nil {
		t.Fatal(err)
	}
	addr := o.Addr()
	if err := o.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	client := http.Client{Timeout: time.Second}
	if _, err := client.Get("http://" + addr + "/healthz"); err == nil {
		t.Error("closed ops server still answering")
	}
}
