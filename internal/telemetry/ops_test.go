package telemetry

import (
	"io"
	"math"
	"net/http"
	"strconv"
	"strings"
	"testing"
	"time"
)

func get(t *testing.T, url string) (int, string) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("read %s: %v", url, err)
	}
	return resp.StatusCode, string(body)
}

func TestOpsServerEndpoints(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("ops_test_total", "a counter").Add(42)
	o, err := ServeOps("127.0.0.1:0", reg)
	if err != nil {
		t.Fatal(err)
	}
	defer o.Close()
	base := "http://" + o.Addr()

	code, body := get(t, base+"/healthz")
	if code != 200 || body != "ok\n" {
		t.Errorf("/healthz = %d %q", code, body)
	}

	code, body = get(t, base+"/metrics")
	if code != 200 {
		t.Fatalf("/metrics = %d", code)
	}
	for _, want := range []string{
		"ops_test_total 42",
		"cloudgraph_process_uptime_seconds",
		"cloudgraph_process_goroutines",
		"cloudgraph_process_heap_alloc_bytes",
		"cloudgraph_process_gc_pause_seconds_total",
		"cloudgraph_process_gc_cycles_total",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("/metrics missing %q", want)
		}
	}
	// Every process-metric sample must be a finite number — the GC pause
	// total is summed from a runtime histogram whose edge buckets are
	// unbounded, and an Inf/NaN would poison scrapes silently.
	for _, line := range strings.Split(body, "\n") {
		if !strings.HasPrefix(line, "cloudgraph_process_") {
			continue
		}
		fields := strings.Fields(line)
		val, err := strconv.ParseFloat(fields[len(fields)-1], 64)
		if err != nil || math.IsNaN(val) || math.IsInf(val, 0) {
			t.Errorf("non-finite process metric sample: %q", line)
		}
	}

	code, body = get(t, base+"/debug/pprof/")
	if code != 200 || !strings.Contains(body, "goroutine") {
		t.Errorf("/debug/pprof/ = %d (goroutine profile missing)", code)
	}

	// Extra views attach while the server runs.
	o.Handle("/extra", http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		if _, err := io.WriteString(w, "extra-view"); err != nil {
			return
		}
	}))
	code, body = get(t, base+"/extra")
	if code != 200 || body != "extra-view" {
		t.Errorf("/extra = %d %q", code, body)
	}
}

// TestViewMethodContract walks every view registered on the ops server —
// built-ins plus HandleView attachments, mirroring how cloudgraphd wires
// its statusz/tracez/flightz/analyz/graphz views — and asserts the shared
// read-only contract: GET answers, everything else is 405 with an Allow
// header.
func TestViewMethodContract(t *testing.T) {
	o, err := ServeOps("127.0.0.1:0", NewRegistry())
	if err != nil {
		t.Fatal(err)
	}
	defer o.Close()
	for _, pattern := range []string{"/statusz", "/tracez", "/flightz", "/analyz", "/graphz"} {
		o.HandleView(pattern, http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
			if _, err := io.WriteString(w, "view"); err != nil {
				return
			}
		}))
	}

	views := o.Views()
	if len(views) != 7 { // /metrics, /healthz + the five above
		t.Fatalf("Views() = %v, want 7 entries", views)
	}
	client := &http.Client{Timeout: 5 * time.Second}
	base := "http://" + o.Addr()
	for _, pattern := range views {
		for _, method := range []string{http.MethodPost, http.MethodPut, http.MethodDelete, http.MethodPatch} {
			req, err := http.NewRequest(method, base+pattern, strings.NewReader("x"))
			if err != nil {
				t.Fatal(err)
			}
			resp, err := client.Do(req)
			if err != nil {
				t.Fatalf("%s %s: %v", method, pattern, err)
			}
			resp.Body.Close()
			if resp.StatusCode != http.StatusMethodNotAllowed {
				t.Errorf("%s %s = %d, want 405", method, pattern, resp.StatusCode)
			}
			if allow := resp.Header.Get("Allow"); allow != "GET, HEAD" {
				t.Errorf("%s %s Allow = %q, want \"GET, HEAD\"", method, pattern, allow)
			}
		}
		for _, method := range []string{http.MethodGet, http.MethodHead} {
			req, err := http.NewRequest(method, base+pattern, nil)
			if err != nil {
				t.Fatal(err)
			}
			resp, err := client.Do(req)
			if err != nil {
				t.Fatalf("%s %s: %v", method, pattern, err)
			}
			resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				t.Errorf("%s %s = %d, want 200", method, pattern, resp.StatusCode)
			}
		}
	}
}

func TestBuildInfo(t *testing.T) {
	reg := NewRegistry()
	BuildInfo(reg, Label{Key: "shards", Value: "8"})
	var sb strings.Builder
	if err := reg.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	body := sb.String()
	for _, want := range []string{"cloudgraph_build_info{", `go_version="go`, `shards="8"`, "} 1"} {
		if !strings.Contains(body, want) {
			t.Errorf("exposition missing %q:\n%s", want, body)
		}
	}
	BuildInfo(nil) // nil registry must not panic
}

func TestOpsServerClose(t *testing.T) {
	o, err := ServeOps("127.0.0.1:0", nil)
	if err != nil {
		t.Fatal(err)
	}
	addr := o.Addr()
	if err := o.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	client := http.Client{Timeout: time.Second}
	if _, err := client.Get("http://" + addr + "/healthz"); err == nil {
		t.Error("closed ops server still answering")
	}
}
