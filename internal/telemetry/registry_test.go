package telemetry

import (
	"fmt"
	"math"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestCounterGaugeBasics(t *testing.T) {
	reg := NewRegistry()
	c := reg.Counter("test_records_total", "records seen")
	c.Add(3)
	c.Add(4)
	if got := c.Value(); got != 7 {
		t.Errorf("counter = %d, want 7", got)
	}
	g := reg.Gauge("test_depth", "queue depth")
	g.Set(10)
	g.Add(-3)
	if got := g.Value(); got != 7 {
		t.Errorf("gauge = %d, want 7", got)
	}
	// Re-registration returns the same handle.
	if reg.Counter("test_records_total", "records seen") != c {
		t.Error("re-registering a counter returned a new handle")
	}
	if reg.Gauge("test_depth", "queue depth") != g {
		t.Error("re-registering a gauge returned a new handle")
	}
	// Same family, different labels: distinct series.
	a := reg.Counter("test_shard_total", "per shard", Label{"shard", "0"})
	b := reg.Counter("test_shard_total", "per shard", Label{"shard", "1"})
	if a == b {
		t.Error("distinct label sets share a handle")
	}
}

func TestHistogramBuckets(t *testing.T) {
	reg := NewRegistry()
	h := reg.Histogram("test_latency_seconds", "latency", []float64{0.01, 0.1, 1})
	for _, v := range []float64{0.005, 0.01, 0.05, 0.5, 5} {
		h.Observe(v)
	}
	if h.Count() != 5 {
		t.Errorf("count = %d, want 5", h.Count())
	}
	if got, want := h.Sum(), 0.005+0.01+0.05+0.5+5; math.Abs(got-want) > 1e-9 {
		t.Errorf("sum = %v, want %v", got, want)
	}
	var b strings.Builder
	if err := reg.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	// le is inclusive: 0.01 lands in the first bucket with 0.005.
	for _, want := range []string{
		`test_latency_seconds_bucket{le="0.01"} 2`,
		`test_latency_seconds_bucket{le="0.1"} 3`,
		`test_latency_seconds_bucket{le="1"} 4`,
		`test_latency_seconds_bucket{le="+Inf"} 5`,
		`test_latency_seconds_count 5`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q in:\n%s", want, out)
		}
	}
}

func TestExpositionFormat(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("zz_last_total", "sorts last").Add(1)
	reg.Counter("aa_first_total", "sorts first", Label{"shard", "0"}).Add(2)
	reg.Counter("aa_first_total", "sorts first", Label{"shard", "1"}).Add(3)
	reg.GaugeFunc("mm_sampled", "sampled gauge", func() float64 { return 2.5 })
	var b strings.Builder
	if err := reg.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"# HELP aa_first_total sorts first\n# TYPE aa_first_total counter\n",
		`aa_first_total{shard="0"} 2`,
		`aa_first_total{shard="1"} 3`,
		"# TYPE mm_sampled gauge",
		"mm_sampled 2.5",
		"zz_last_total 1",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q in:\n%s", want, out)
		}
	}
	// Families sort, and HELP/TYPE appear once per family.
	if strings.Count(out, "# TYPE aa_first_total") != 1 {
		t.Error("family header repeated per series")
	}
	if strings.Index(out, "aa_first_total") > strings.Index(out, "zz_last_total") {
		t.Error("families not sorted")
	}
}

func TestNilRegistryAndHandles(t *testing.T) {
	var reg *Registry
	c := reg.Counter("x_total", "")
	g := reg.Gauge("x", "")
	h := reg.Histogram("x_seconds", "", DurBuckets)
	reg.GaugeFunc("x_fn", "", func() float64 { return 1 })
	c.Add(1)
	g.Set(1)
	h.Observe(1)
	sp := StartSpan(h)
	sp.End()
	if c.Value() != 0 || g.Value() != 0 || h.Count() != 0 {
		t.Error("nil handles must stay zero")
	}
	if err := reg.WritePrometheus(&strings.Builder{}); err != nil {
		t.Errorf("nil registry exposition: %v", err)
	}
}

func TestKindMismatchPanics(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("x_total", "")
	defer func() {
		if recover() == nil {
			t.Error("re-registering a counter as a gauge should panic")
		}
	}()
	reg.Gauge("x_total", "")
}

func TestSpanRecordsDuration(t *testing.T) {
	reg := NewRegistry()
	h := reg.Histogram("test_span_seconds", "", DurBuckets)
	sp := StartSpan(h)
	time.Sleep(time.Millisecond)
	sp.End()
	if h.Count() != 1 {
		t.Fatalf("span count = %d, want 1", h.Count())
	}
	if h.Sum() <= 0 {
		t.Errorf("span sum = %v, want > 0", h.Sum())
	}
}

// TestRegistryConcurrency hammers registration, updates and exposition
// from many goroutines; run with -race. Registration of the same family
// must converge on one handle so no counts are lost.
func TestRegistryConcurrency(t *testing.T) {
	reg := NewRegistry()
	const workers = 8
	const perWorker = 1000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				reg.Counter("conc_total", "shared").Add(1)
				reg.Counter("conc_shard_total", "per shard", Label{"shard", fmt.Sprint(w % 4)}).Add(1)
				reg.Histogram("conc_seconds", "shared", DurBuckets).Observe(float64(i) * 1e-6)
				reg.Gauge("conc_depth", "shared").Set(int64(i))
				if i%100 == 0 {
					var b strings.Builder
					if err := reg.WritePrometheus(&b); err != nil {
						t.Errorf("exposition: %v", err)
						return
					}
				}
			}
		}(w)
	}
	wg.Wait()
	if got := reg.Counter("conc_total", "shared").Value(); got != workers*perWorker {
		t.Errorf("shared counter = %d, want %d", got, workers*perWorker)
	}
	var perShard int64
	for s := 0; s < 4; s++ {
		perShard += reg.Counter("conc_shard_total", "per shard", Label{"shard", fmt.Sprint(s)}).Value()
	}
	if perShard != workers*perWorker {
		t.Errorf("sharded counters sum to %d, want %d", perShard, workers*perWorker)
	}
	if got := reg.Histogram("conc_seconds", "shared", DurBuckets).Count(); got != workers*perWorker {
		t.Errorf("histogram count = %d, want %d", got, workers*perWorker)
	}
}
