// Package telemetry is the zero-dependency observability layer of the
// system: a metrics registry (atomic counters, gauges and fixed-bucket
// histograms) exposed in Prometheus text format, lightweight spans for
// hot-path latencies, and an ops HTTP server serving /metrics, /healthz
// and /debug/pprof. The paper's analytics service runs continuously
// against a cloud's full telemetry stream (§1, Fig. 8); this package is
// how that run is watched — shard balance, window lag, wire throughput and
// store growth all report through here, CloudHeatMap-style.
//
// Handles are preallocated at wiring time and lock-free on the hot path:
// Add/Set/Observe are a few atomic operations, and every handle method is
// a no-op on a nil receiver, so an instrumented code path costs one
// predictable branch when telemetry is disabled.
package telemetry

import (
	"bytes"
	"fmt"
	"io"
	"math"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Label is one name=value pair distinguishing a series within its family
// (e.g. shard="3" on the per-shard ingest counters).
type Label struct{ Key, Value string }

type kind uint8

const (
	kindCounter kind = iota
	kindGauge
	kindGaugeFunc
	kindHistogram
)

// String renders the Prometheus TYPE keyword; a GaugeFunc is a gauge on
// the wire.
func (k kind) String() string {
	switch k {
	case kindCounter:
		return "counter"
	case kindHistogram:
		return "histogram"
	default:
		return "gauge"
	}
}

// metric is one registered series: a family name plus a fixed label set
// and the typed value behind it.
type metric struct {
	name   string
	help   string
	kind   kind
	labels []Label
	key    string // name + rendered labels; the dedupe and sort key

	counter *Counter
	gauge   *Gauge
	fn      func() float64
	hist    *Histogram
}

// Registry holds registered metrics and renders them in the Prometheus
// text exposition format. Registration takes a mutex; the handles it
// returns are lock-free. Registering the same (name, labels) twice returns
// the same handle, so independent packages can grab shared families
// without coordinating. Re-registering a key under a different kind panics
// — that is a wiring bug, not a runtime condition.
//
// All methods are safe on a nil *Registry and return nil handles, which
// are themselves no-ops: pass a nil registry to disable telemetry.
type Registry struct {
	start time.Time
	mu    sync.Mutex
	byKey map[string]*metric
}

// NewRegistry returns an empty registry; its creation time anchors the
// uptime gauge the ops server registers.
func NewRegistry() *Registry {
	return &Registry{start: time.Now(), byKey: make(map[string]*metric)}
}

// lookup returns the metric registered under key after checking its kind.
// Caller holds r.mu.
func (r *Registry) lookup(key string, k kind) *metric {
	m, ok := r.byKey[key]
	if !ok {
		return nil
	}
	if m.kind != k {
		panic(fmt.Sprintf("telemetry: %s already registered as %s, not %s", key, m.kind, k))
	}
	return m
}

// add registers m under its key. Caller holds r.mu.
func (r *Registry) add(m *metric) {
	r.byKey[m.key] = m
}

// Counter registers (or returns the existing) counter series.
func (r *Registry) Counter(name, help string, labels ...Label) *Counter {
	if r == nil {
		return nil
	}
	key := name + labelString(labels, nil)
	r.mu.Lock()
	defer r.mu.Unlock()
	if m := r.lookup(key, kindCounter); m != nil {
		return m.counter
	}
	m := &metric{name: name, help: help, kind: kindCounter, labels: labels, key: key, counter: &Counter{}}
	r.add(m)
	return m.counter
}

// Gauge registers (or returns the existing) gauge series.
func (r *Registry) Gauge(name, help string, labels ...Label) *Gauge {
	if r == nil {
		return nil
	}
	key := name + labelString(labels, nil)
	r.mu.Lock()
	defer r.mu.Unlock()
	if m := r.lookup(key, kindGauge); m != nil {
		return m.gauge
	}
	m := &metric{name: name, help: help, kind: kindGauge, labels: labels, key: key, gauge: &Gauge{}}
	r.add(m)
	return m.gauge
}

// GaugeFunc registers a gauge sampled by calling fn at exposition time —
// for values the owner already maintains (open windows, flow-table
// occupancy). fn must be safe to call from any goroutine; it is never
// called with the registry lock held. Registering an existing key keeps
// the first fn.
func (r *Registry) GaugeFunc(name, help string, fn func() float64, labels ...Label) {
	if r == nil {
		return
	}
	key := name + labelString(labels, nil)
	r.mu.Lock()
	defer r.mu.Unlock()
	if m := r.lookup(key, kindGaugeFunc); m != nil {
		return
	}
	r.add(&metric{name: name, help: help, kind: kindGaugeFunc, labels: labels, key: key, fn: fn})
}

// Histogram registers (or returns the existing) histogram series with the
// given upper bucket bounds (an overflow +Inf bucket is implicit). The
// bounds of the first registration win.
func (r *Registry) Histogram(name, help string, bounds []float64, labels ...Label) *Histogram {
	if r == nil {
		return nil
	}
	key := name + labelString(labels, nil)
	r.mu.Lock()
	defer r.mu.Unlock()
	if m := r.lookup(key, kindHistogram); m != nil {
		return m.hist
	}
	m := &metric{name: name, help: help, kind: kindHistogram, labels: labels, key: key, hist: newHistogram(bounds)}
	r.add(m)
	return m.hist
}

// WritePrometheus renders every registered series in the text exposition
// format, grouped by family in sorted order. Gauge functions are invoked
// without the registry lock held, so they may take their owners' locks.
func (r *Registry) WritePrometheus(w io.Writer) error {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	ms := make([]*metric, 0, len(r.byKey))
	for _, m := range r.byKey {
		ms = append(ms, m)
	}
	r.mu.Unlock()
	sort.Slice(ms, func(i, j int) bool { return ms[i].key < ms[j].key })

	var buf bytes.Buffer
	family := ""
	for _, m := range ms {
		if m.name != family {
			family = m.name
			fmt.Fprintf(&buf, "# HELP %s %s\n# TYPE %s %s\n", m.name, m.help, m.name, m.kind)
		}
		ls := labelString(m.labels, nil)
		switch m.kind {
		case kindCounter:
			fmt.Fprintf(&buf, "%s%s %d\n", m.name, ls, m.counter.Value())
		case kindGauge:
			fmt.Fprintf(&buf, "%s%s %d\n", m.name, ls, m.gauge.Value())
		case kindGaugeFunc:
			fmt.Fprintf(&buf, "%s%s %s\n", m.name, ls, formatFloat(m.fn()))
		case kindHistogram:
			m.hist.write(&buf, m.name, m.labels)
		}
	}
	_, err := w.Write(buf.Bytes())
	return err
}

// Handler serves the registry over HTTP — the /metrics endpoint.
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		if err := r.WritePrometheus(w); err != nil {
			return // scraper went away mid-response; nothing to clean up
		}
	})
}

// labelString renders a label set as {k="v",...}; extra labels (the
// histogram le) append after the fixed set. An empty set renders "".
func labelString(labels, extra []Label) string {
	if len(labels)+len(extra) == 0 {
		return ""
	}
	var b strings.Builder
	b.WriteByte('{')
	for i, l := range labels {
		if i > 0 {
			b.WriteByte(',')
		}
		writeLabel(&b, l)
	}
	for i, l := range extra {
		if len(labels)+i > 0 {
			b.WriteByte(',')
		}
		writeLabel(&b, l)
	}
	b.WriteByte('}')
	return b.String()
}

var labelEscaper = strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)

func writeLabel(b *strings.Builder, l Label) {
	b.WriteString(l.Key)
	b.WriteString(`="`)
	b.WriteString(labelEscaper.Replace(l.Value))
	b.WriteByte('"')
}

func formatFloat(v float64) string {
	if math.IsInf(v, +1) {
		return "+Inf"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// Counter is a monotonically increasing metric. The zero value is ready;
// a nil *Counter is a no-op, which is how disabled telemetry costs only a
// branch on the hot path.
type Counter struct{ v atomic.Int64 }

// Add credits n observations.
func (c *Counter) Add(n int64) {
	if c != nil {
		c.v.Add(n)
	}
}

// Value returns the current count (0 on a nil counter).
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is an instantaneous integer value. The zero value is ready; a nil
// *Gauge is a no-op.
type Gauge struct{ v atomic.Int64 }

// Set replaces the gauge value.
func (g *Gauge) Set(v int64) {
	if g != nil {
		g.v.Store(v)
	}
}

// Add moves the gauge by delta (negative to decrement).
func (g *Gauge) Add(delta int64) {
	if g != nil {
		g.v.Add(delta)
	}
}

// Value returns the current value (0 on a nil gauge).
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// Histogram counts observations into fixed cumulative buckets. Observe is
// lock-free: one bucket increment, one count increment, and a CAS loop for
// the running sum. A nil *Histogram is a no-op.
type Histogram struct {
	bounds []float64       // ascending upper bounds (le semantics)
	counts []atomic.Uint64 // one per bound, plus the +Inf overflow bucket
	count  atomic.Uint64
	sum    atomic.Uint64 // float64 bits

	// Exemplar slot: the most recent observation that carried a trace ID
	// (ObserveEx), linking the aggregate distribution back to one concrete
	// /tracez trace. Two words racing independently is fine — an exemplar
	// is an illustration, not an invariant.
	exTrace atomic.Uint64
	exValue atomic.Uint64 // float64 bits
}

// DurBuckets are the default latency buckets: eight decades from 1µs to
// 10s, matching the spread between a shard fold and a full-window merge.
var DurBuckets = []float64{1e-6, 1e-5, 1e-4, 1e-3, 1e-2, 1e-1, 1, 10}

// CountBuckets suit small cardinalities such as windows closed per merge.
var CountBuckets = []float64{1, 2, 4, 8, 16, 32, 64, 128}

func newHistogram(bounds []float64) *Histogram {
	bounds = append([]float64(nil), bounds...)
	sort.Float64s(bounds)
	return &Histogram{bounds: bounds, counts: make([]atomic.Uint64, len(bounds)+1)}
}

// Observe records one sample.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	// First bound >= v is exactly Prometheus' inclusive le bucket; misses
	// land in the +Inf overflow slot.
	i := sort.SearchFloat64s(h.bounds, v)
	h.counts[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sum.Load()
		if h.sum.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+v)) {
			return
		}
	}
}

// ObserveDuration records d in seconds, the Prometheus base unit.
func (h *Histogram) ObserveDuration(d time.Duration) {
	h.Observe(d.Seconds())
}

// ObserveEx records one sample and, when traceID is non-zero, stores it as
// the histogram's exemplar — the concrete trace that illustrates the
// distribution's recent behaviour on /tracez.
func (h *Histogram) ObserveEx(v float64, traceID uint64) {
	if h == nil {
		return
	}
	h.Observe(v)
	if traceID != 0 {
		h.exValue.Store(math.Float64bits(v))
		h.exTrace.Store(traceID)
	}
}

// Exemplar returns the last trace-linked observation (0, 0 when none).
func (h *Histogram) Exemplar() (traceID uint64, v float64) {
	if h == nil {
		return 0, 0
	}
	return h.exTrace.Load(), math.Float64frombits(h.exValue.Load())
}

// Count returns the number of samples observed (0 on nil).
func (h *Histogram) Count() uint64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the running total of observed values (0 on nil).
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	return math.Float64frombits(h.sum.Load())
}

// write renders the histogram exposition: cumulative buckets, sum, count.
// Concurrent Observes may skew a snapshot by a sample; scrapes are
// best-effort views, not barriers.
func (h *Histogram) write(buf *bytes.Buffer, name string, labels []Label) {
	var cum uint64
	for i, bound := range h.bounds {
		cum += h.counts[i].Load()
		fmt.Fprintf(buf, "%s_bucket%s %d\n", name, labelString(labels, []Label{{"le", formatFloat(bound)}}), cum)
	}
	cum += h.counts[len(h.bounds)].Load()
	fmt.Fprintf(buf, "%s_bucket%s %d\n", name, labelString(labels, []Label{{"le", "+Inf"}}), cum)
	fmt.Fprintf(buf, "%s_sum%s %s\n", name, labelString(labels, nil), formatFloat(h.Sum()))
	fmt.Fprintf(buf, "%s_count%s %d\n", name, labelString(labels, nil), cum)
	// The exemplar rides as a comment so plain text-format parsers skip
	// it; scrapers that understand it can jump from the distribution to
	// the concrete trace on /tracez.
	if id, v := h.Exemplar(); id != 0 {
		fmt.Fprintf(buf, "# exemplar %s%s trace_id=\"%016x\" value=%s\n",
			name, labelString(labels, nil), id, formatFloat(v))
	}
}
