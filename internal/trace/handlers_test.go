package trace

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

func tracezReq(t *testing.T, h http.Handler, method, target string) *httptest.ResponseRecorder {
	t.Helper()
	w := httptest.NewRecorder()
	h.ServeHTTP(w, httptest.NewRequest(method, target, nil))
	return w
}

// TestTracezHandler covers the ops contract (GET/HEAD only, Content-Type)
// and the three views: list, waterfall, JSON.
func TestTracezHandler(t *testing.T) {
	rec := NewRecorder(0)
	ctx := Context{TraceID: 0xbeef, SpanID: 1}
	start := time.Unix(1700000000, 0).UTC()
	rec.Record(ctx, "nicsim.pull", start, time.Millisecond, "records=3")
	rec.Record(ctx, "store.append", start.Add(5*time.Millisecond), time.Millisecond, "")
	h := TracezHandler(rec)

	if w := tracezReq(t, h, http.MethodPost, "/tracez"); w.Code != http.StatusMethodNotAllowed {
		t.Fatalf("POST: code %d, want 405", w.Code)
	} else if allow := w.Header().Get("Allow"); allow != "GET, HEAD" {
		t.Fatalf("POST: Allow = %q", allow)
	}

	w := tracezReq(t, h, http.MethodGet, "/tracez")
	if w.Code != http.StatusOK {
		t.Fatalf("list: code %d", w.Code)
	}
	if ct := w.Header().Get("Content-Type"); ct != "text/plain; charset=utf-8" {
		t.Fatalf("list: Content-Type %q", ct)
	}
	if body := w.Body.String(); !strings.Contains(body, "000000000000beef") ||
		!strings.Contains(body, "nicsim.pull -> store.append") {
		t.Fatalf("list body:\n%s", body)
	}

	w = tracezReq(t, h, http.MethodGet, "/tracez?trace=beef")
	if w.Code != http.StatusOK || !strings.Contains(w.Body.String(), "records=3") {
		t.Fatalf("waterfall: code %d body:\n%s", w.Code, w.Body.String())
	}

	w = tracezReq(t, h, http.MethodGet, "/tracez?trace=beef&format=json")
	if ct := w.Header().Get("Content-Type"); ct != "application/json" {
		t.Fatalf("json: Content-Type %q", ct)
	}
	var tt tracezTrace
	if err := json.Unmarshal(w.Body.Bytes(), &tt); err != nil {
		t.Fatalf("json decode: %v", err)
	}
	if tt.TraceID != "000000000000beef" || len(tt.Spans) != 2 {
		t.Fatalf("json trace: %+v", tt)
	}

	if w := tracezReq(t, h, http.MethodGet, "/tracez?trace=ffff"); w.Code != http.StatusNotFound {
		t.Fatalf("unknown trace: code %d, want 404", w.Code)
	}
	if w := tracezReq(t, h, http.MethodGet, "/tracez?trace=zzz"); w.Code != http.StatusBadRequest {
		t.Fatalf("bad trace id: code %d, want 400", w.Code)
	}
	if w := tracezReq(t, TracezHandler(nil), http.MethodGet, "/tracez"); w.Code != http.StatusNotFound {
		t.Fatalf("nil recorder: code %d, want 404", w.Code)
	}
	// HEAD follows GET semantics (net/http suppresses the body on real
	// connections; the handler must not reject the method).
	if w := tracezReq(t, h, http.MethodHead, "/tracez"); w.Code != http.StatusOK {
		t.Fatalf("HEAD: code %d", w.Code)
	}
}

// TestFlightzHandler: text dump, JSON entries, and the method gate.
func TestFlightzHandler(t *testing.T) {
	f := NewFlight(8, nil, 0)
	f.Add(Event{Time: time.Unix(1700000000, 0).UTC(), Component: "analytics", Kind: "trip", Msg: "protocol error"})
	h := FlightzHandler(f)

	if w := tracezReq(t, h, http.MethodDelete, "/flightz"); w.Code != http.StatusMethodNotAllowed {
		t.Fatalf("DELETE: code %d, want 405", w.Code)
	}
	w := tracezReq(t, h, http.MethodGet, "/flightz")
	if w.Code != http.StatusOK {
		t.Fatalf("dump: code %d", w.Code)
	}
	if ct := w.Header().Get("Content-Type"); ct != "text/plain; charset=utf-8" {
		t.Fatalf("dump: Content-Type %q", ct)
	}
	if body := w.Body.String(); !strings.Contains(body, "protocol error") || !strings.Contains(body, "trip") {
		t.Fatalf("dump body:\n%s", body)
	}

	w = tracezReq(t, h, http.MethodGet, "/flightz?format=json")
	var evs []Event
	if err := json.Unmarshal(w.Body.Bytes(), &evs); err != nil {
		t.Fatalf("json decode: %v", err)
	}
	if len(evs) != 1 || evs[0].Msg != "protocol error" {
		t.Fatalf("json entries: %+v", evs)
	}

	if w := tracezReq(t, FlightzHandler(nil), http.MethodGet, "/flightz"); w.Code != http.StatusNotFound {
		t.Fatalf("nil flight: code %d, want 404", w.Code)
	}
}
