package trace

import (
	"sort"
	"sync"
	"time"
)

// Span is one timed pipeline stage of a sampled record's journey.
type Span struct {
	TraceID uint64        `json:"trace_id"`
	SpanID  uint64        `json:"span_id"`
	Stage   string        `json:"stage"`
	Start   time.Time     `json:"start"`
	Dur     time.Duration `json:"dur_ns"`
	Note    string        `json:"note,omitempty"`
}

// DefaultMaxTraces bounds the recorder when no explicit capacity is given.
const DefaultMaxTraces = 256

// maxSpansPerTrace caps one trace's buffer so a pathological trace (e.g. a
// context accidentally reused for a whole stream) cannot grow without
// bound; later spans are dropped and the drop is visible as a count.
const maxSpansPerTrace = 64

// Recorder keeps the spans of recently sampled traces, bounded: at most
// maxTraces traces are retained (oldest evicted first) and each trace holds
// at most maxSpansPerTrace spans. Sampled records are rare by construction
// (the sampler's job), so a mutex is fine here — the hot path never reaches
// the recorder because unsampled contexts short-circuit in Record.
//
// A nil *Recorder is a no-op.
type Recorder struct {
	mu       sync.Mutex
	traces   map[uint64][]Span
	order    []uint64 // trace IDs in arrival order; the eviction queue
	max      int
	dropped  uint64 // spans dropped by the per-trace cap
	evicted  uint64 // whole traces evicted by the capacity bound
	recorded uint64 // spans accepted
}

// NewRecorder returns a recorder retaining up to maxTraces traces
// (DefaultMaxTraces when <= 0).
func NewRecorder(maxTraces int) *Recorder {
	if maxTraces <= 0 {
		maxTraces = DefaultMaxTraces
	}
	return &Recorder{traces: make(map[uint64][]Span), max: maxTraces}
}

// Record appends one span to ctx's trace. Unsampled contexts and nil
// recorders return immediately — the single-branch disabled path.
func (r *Recorder) Record(ctx Context, stage string, start time.Time, d time.Duration, note string) {
	if r == nil || !ctx.Sampled() {
		return
	}
	sp := Span{
		TraceID: ctx.TraceID,
		SpanID:  ctx.SpanID,
		Stage:   stage,
		Start:   start,
		Dur:     d,
		Note:    note,
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	spans, ok := r.traces[ctx.TraceID]
	if !ok {
		if len(r.order) >= r.max {
			oldest := r.order[0]
			r.order = r.order[1:]
			delete(r.traces, oldest)
			r.evicted++
		}
		r.order = append(r.order, ctx.TraceID)
	}
	if len(spans) >= maxSpansPerTrace {
		r.dropped++
		return
	}
	r.traces[ctx.TraceID] = append(spans, sp)
	r.recorded++
}

// Trace returns a copy of the spans recorded for id, ordered by start
// time, or nil when the trace is unknown (or the recorder nil).
func (r *Recorder) Trace(id uint64) []Span {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	spans := append([]Span(nil), r.traces[id]...)
	r.mu.Unlock()
	sort.SliceStable(spans, func(i, j int) bool { return spans[i].Start.Before(spans[j].Start) })
	return spans
}

// TraceIDs returns the retained trace IDs, oldest first.
func (r *Recorder) TraceIDs() []uint64 {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return append([]uint64(nil), r.order...)
}

// Stats reports the recorder's accounting: spans accepted, spans dropped by
// the per-trace cap, and whole traces evicted by the capacity bound.
func (r *Recorder) Stats() (recorded, dropped, evicted uint64) {
	if r == nil {
		return 0, 0, 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.recorded, r.dropped, r.evicted
}
