package trace

import (
	"bytes"
	"fmt"
	"log/slog"
	"strings"
	"sync"
	"testing"
	"time"
)

// TestSamplerDeterminism pins the sampler contract the replay story depends
// on: two samplers with the same seed and rate, fed the same record stream,
// sample the same positions with the same trace IDs.
func TestSamplerDeterminism(t *testing.T) {
	const n = 10_000
	run := func() []Context {
		s := NewSampler(64, 42)
		out := make([]Context, n)
		for i := range out {
			out[i] = s.Next()
		}
		return out
	}
	a, b := run(), run()
	sampled := 0
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("record %d: run A got %+v, run B got %+v", i, a[i], b[i])
		}
		if a[i].Sampled() {
			sampled++
			if a[i].SpanID == 0 {
				t.Fatalf("record %d: sampled context with zero span ID", i)
			}
		}
	}
	if want := n / 64; sampled != want {
		t.Fatalf("sampled %d of %d records, want %d", sampled, n, want)
	}

	// A different seed must produce different IDs at the same positions.
	other := NewSampler(64, 43)
	for i := 0; i < n; i++ {
		c := other.Next()
		if c.Sampled() && c.TraceID == a[i].TraceID {
			t.Fatalf("record %d: seeds 42 and 43 collided on trace ID %016x", i, c.TraceID)
		}
	}
}

// TestSamplerDisabled: rate 0 and nil samplers never emit.
func TestSamplerDisabled(t *testing.T) {
	s := NewSampler(0, 1)
	for i := 0; i < 1000; i++ {
		if c := s.Next(); c.Sampled() {
			t.Fatalf("disabled sampler emitted %+v", c)
		}
	}
	var nilS *Sampler
	if c := nilS.Next(); c.Sampled() {
		t.Fatalf("nil sampler emitted %+v", c)
	}
}

// TestSamplerIDsUnique: the splitmix64-derived trace IDs of one run are
// pairwise distinct (the bijective mixer guarantees it; the test pins the
// k-derivation against off-by-one regressions that would repeat IDs).
func TestSamplerIDsUnique(t *testing.T) {
	s := NewSampler(2, 7)
	seen := make(map[uint64]int)
	for i := 0; i < 10_000; i++ {
		c := s.Next()
		if !c.Sampled() {
			continue
		}
		if prev, dup := seen[c.TraceID]; dup {
			t.Fatalf("trace ID %016x repeated at records %d and %d", c.TraceID, prev, i)
		}
		seen[c.TraceID] = i
	}
}

func testSpanTime(i int) time.Time {
	return time.Unix(1700000000, int64(i)*int64(time.Millisecond)).UTC()
}

// TestRecorderBounds: the recorder evicts oldest traces past maxTraces and
// caps spans per trace, and both drops are visible in Stats.
func TestRecorderBounds(t *testing.T) {
	r := NewRecorder(4)
	for i := 1; i <= 6; i++ {
		ctx := Context{TraceID: uint64(i), SpanID: uint64(i)}
		r.Record(ctx, "stage", testSpanTime(i), time.Millisecond, "")
	}
	ids := r.TraceIDs()
	if len(ids) != 4 {
		t.Fatalf("retained %d traces, want 4", len(ids))
	}
	for i, want := range []uint64{3, 4, 5, 6} {
		if ids[i] != want {
			t.Fatalf("retained IDs %v, want [3 4 5 6]", ids)
		}
	}
	if spans := r.Trace(1); spans != nil {
		t.Fatalf("evicted trace 1 still returns %d spans", len(spans))
	}

	// Per-trace span cap.
	ctx := Context{TraceID: 99, SpanID: 1}
	for i := 0; i < maxSpansPerTrace+10; i++ {
		r.Record(ctx, "stage", testSpanTime(i), 0, "")
	}
	if got := len(r.Trace(99)); got != maxSpansPerTrace {
		t.Fatalf("trace 99 holds %d spans, want cap %d", got, maxSpansPerTrace)
	}
	_, dropped, evicted := r.Stats()
	if dropped != 10 {
		t.Fatalf("dropped = %d, want 10", dropped)
	}
	if evicted != 3 {
		t.Fatalf("evicted = %d, want 3 (traces 1, 2 and one for 99's arrival)", evicted)
	}
}

// TestRecorderOrdersByStart: Trace returns spans sorted by start time even
// when recorded out of order (merge spans land after append spans when
// windows straddle flushes).
func TestRecorderOrdersByStart(t *testing.T) {
	r := NewRecorder(0)
	ctx := Context{TraceID: 5, SpanID: 5}
	r.Record(ctx, "late", testSpanTime(3), 0, "")
	r.Record(ctx, "early", testSpanTime(1), 0, "")
	r.Record(ctx, "mid", testSpanTime(2), 0, "")
	spans := r.Trace(5)
	want := []string{"early", "mid", "late"}
	for i, sp := range spans {
		if sp.Stage != want[i] {
			t.Fatalf("stage order %v, want %v", spans, want)
		}
	}
}

// TestRecorderUnsampledNoop: unsampled contexts and nil recorders record
// nothing — the disabled-path contract every pipeline stage leans on.
func TestRecorderUnsampledNoop(t *testing.T) {
	r := NewRecorder(0)
	r.Record(Context{}, "stage", testSpanTime(0), 0, "")
	if rec, _, _ := r.Stats(); rec != 0 {
		t.Fatalf("unsampled record was stored (recorded=%d)", rec)
	}
	var nilR *Recorder
	nilR.Record(Context{TraceID: 1}, "stage", testSpanTime(0), 0, "")
	if nilR.Trace(1) != nil || nilR.TraceIDs() != nil {
		t.Fatal("nil recorder returned data")
	}
}

// TestFlightRing: the ring retains exactly the last n entries with
// monotonic sequence numbers.
func TestFlightRing(t *testing.T) {
	f := NewFlight(8, nil, 0)
	for i := 0; i < 20; i++ {
		f.Add(Event{Component: "c", Kind: "event", Msg: fmt.Sprintf("m%d", i)})
	}
	evs := f.Snapshot()
	if len(evs) != 8 {
		t.Fatalf("snapshot holds %d entries, want 8", len(evs))
	}
	for i, ev := range evs {
		if want := uint64(13 + i); ev.Seq != want {
			t.Fatalf("entry %d has seq %d, want %d", i, ev.Seq, want)
		}
		if want := fmt.Sprintf("m%d", 12+i); ev.Msg != want {
			t.Fatalf("entry %d is %q, want %q", i, ev.Msg, want)
		}
	}
}

// TestFlightConcurrent hammers Add from many goroutines while snapshotting
// — the lock-free claim, checked under -race.
func TestFlightConcurrent(t *testing.T) {
	f := NewFlight(64, nil, 0)
	const writers, perWriter = 8, 500
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				f.Add(Event{Component: "w", Kind: "event", Msg: fmt.Sprintf("%d/%d", w, i)})
			}
		}(w)
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 100; i++ {
			evs := f.Snapshot()
			for j := 1; j < len(evs); j++ {
				if evs[j].Seq <= evs[j-1].Seq {
					t.Errorf("snapshot out of order: seq %d after %d", evs[j].Seq, evs[j-1].Seq)
					return
				}
			}
		}
	}()
	wg.Wait()
	<-done
	if got := f.pos.Load(); got != writers*perWriter {
		t.Fatalf("counter = %d, want %d", got, writers*perWriter)
	}
}

// TestFlightTripRateLimit: a trip dumps the pre-fault window once; a storm
// of trips inside the gap records events without repeating the dump.
func TestFlightTripRateLimit(t *testing.T) {
	var out bytes.Buffer
	f := NewFlight(16, &out, time.Hour)
	f.Add(Event{Component: "store", Kind: "event", Msg: "pre-fault context"})
	if !f.Trip("store", "fsync failed") {
		t.Fatal("first trip did not dump")
	}
	for i := 0; i < 50; i++ {
		if f.Trip("store", "fsync failed again") {
			t.Fatal("rate-limited trip dumped")
		}
	}
	if f.Trips() != 51 {
		t.Fatalf("trips = %d, want 51", f.Trips())
	}
	dump := out.String()
	if !strings.Contains(dump, "flight recorder tripped: store: fsync failed") {
		t.Fatalf("dump missing trip banner:\n%s", dump)
	}
	if !strings.Contains(dump, "pre-fault context") {
		t.Fatalf("dump missing the pre-fault window:\n%s", dump)
	}
	if got := strings.Count(dump, "flight recorder tripped"); got != 1 {
		t.Fatalf("%d dumps written, want 1", got)
	}
}

// TestEventLogLevelGate: the text output honors its level while the flight
// ring keeps every level — the post-hoc view must not lose debug detail.
func TestEventLogLevelGate(t *testing.T) {
	var out bytes.Buffer
	tr := New(Options{LogOutput: &out, LogLevel: slog.LevelWarn, FlightEvents: 16})
	tr.Eventf(Context{}, "core", slog.LevelDebug, "debug detail %d", 1)
	tr.Eventf(Context{}, "core", slog.LevelWarn, "flush lag")
	text := out.String()
	if strings.Contains(text, "debug detail") {
		t.Fatalf("debug event leaked past warn gate:\n%s", text)
	}
	if !strings.Contains(text, "flush lag") {
		t.Fatalf("warn event missing from text output:\n%s", text)
	}
	evs := tr.Flight().Snapshot()
	if len(evs) != 2 {
		t.Fatalf("flight ring holds %d events, want both levels (2)", len(evs))
	}
	if !strings.Contains(evs[0].Msg, "debug detail") {
		t.Fatalf("flight ring lost the debug event: %+v", evs)
	}
}

// TestEventTraceCrossLink: an event carrying a sampled context exposes its
// trace ID both in the text line and in the flight entry.
func TestEventTraceCrossLink(t *testing.T) {
	var out bytes.Buffer
	tr := New(Options{LogOutput: &out, FlightEvents: 16})
	ctx := Context{TraceID: 0xabcdef, SpanID: 1}
	tr.Eventf(ctx, "analytics", slog.LevelInfo, "protocol error")
	if !strings.Contains(out.String(), "0000000000abcdef") {
		t.Fatalf("text event missing hex trace ID:\n%s", out.String())
	}
	evs := tr.Flight().Snapshot()
	if len(evs) != 1 || evs[0].TraceID != 0xabcdef {
		t.Fatalf("flight entry missing trace ID: %+v", evs)
	}
	if evs[0].Component != "analytics" {
		t.Fatalf("flight entry component = %q, want analytics", evs[0].Component)
	}
}

// TestTracerSpanMirror: Record stores the span and mirrors it to flight.
func TestTracerSpanMirror(t *testing.T) {
	tr := New(Options{FlightEvents: 16})
	ctx := Context{TraceID: 7, SpanID: 8}
	tr.Record(ctx, "core.shard", testSpanTime(0), 3*time.Millisecond, "shard=2")
	spans := tr.Recorder().Trace(7)
	if len(spans) != 1 || spans[0].Stage != "core.shard" || spans[0].Note != "shard=2" {
		t.Fatalf("recorded spans: %+v", spans)
	}
	evs := tr.Flight().Snapshot()
	if len(evs) != 1 || evs[0].Kind != "span" || evs[0].TraceID != 7 {
		t.Fatalf("flight mirror: %+v", evs)
	}
}

// TestNilTracerSafe: every Tracer method must be callable on nil — the
// pipeline threads nil when tracing is off.
func TestNilTracerSafe(t *testing.T) {
	var tr *Tracer
	if c := tr.Sample(); c.Sampled() {
		t.Fatal("nil tracer sampled")
	}
	tr.Record(Context{TraceID: 1}, "s", testSpanTime(0), 0, "")
	tr.Eventf(Context{}, "c", slog.LevelError, "boom")
	tr.Trip("c", "boom")
	if tr.Recorder() != nil || tr.Flight() != nil {
		t.Fatal("nil tracer exposed internals")
	}
	if err := tr.DumpFlight(&bytes.Buffer{}); err != nil {
		t.Fatal(err)
	}
	log := tr.Logger("c")
	if log == nil {
		t.Fatal("nil tracer returned nil logger")
	}
	log.Info("discarded")
}
