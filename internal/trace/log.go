package trace

import (
	"context"
	"fmt"
	"io"
	"log/slog"
)

// The structured event log: a log/slog pipeline whose handler mirrors
// every accepted record into the flight ring before handing it to the
// base (text) handler. Events carry the component that emitted them and,
// when the event concerns a sampled record, its trace ID — which is what
// cross-links the event log with the /tracez span view.

// traceIDKey is the attribute key carrying a Context's trace ID on log
// records; the flight handler lifts it into Event.TraceID.
const traceIDKey = "trace_id"

// componentKey scopes every event to the pipeline stage that emitted it.
const componentKey = "component"

// flightHandler tees records into the flight ring, then delegates.
// slog.Handler.Handle returns an error and dropping it would hide a dead
// log sink, so Handle propagates the base handler's result (enforced
// module-wide by cloudgraph-vet).
//
// The flight ring accepts every level — a post-hoc fault view wants the
// debug detail the live log suppresses — so Enabled is always true and the
// base handler's own level gate is applied before delegating.
type flightHandler struct {
	base      slog.Handler
	flight    *Flight
	component string
	traceID   uint64 // pre-bound by WithAttrs, 0 when unbound
}

func (h *flightHandler) Enabled(context.Context, slog.Level) bool { return true }

func (h *flightHandler) Handle(ctx context.Context, r slog.Record) error {
	ev := Event{
		Time:      r.Time,
		Component: h.component,
		Kind:      "event",
		TraceID:   h.traceID,
		Msg:       r.Level.String() + " " + r.Message,
	}
	r.Attrs(func(a slog.Attr) bool {
		switch a.Key {
		case traceIDKey:
			if id, ok := a.Value.Any().(uint64); ok {
				ev.TraceID = id
			}
		case componentKey:
			ev.Component = a.Value.String()
		default:
			ev.Msg += " " + a.Key + "=" + a.Value.String()
		}
		return true
	})
	h.flight.Add(ev)
	if !h.base.Enabled(ctx, r.Level) {
		return nil
	}
	return h.base.Handle(ctx, r)
}

func (h *flightHandler) WithAttrs(attrs []slog.Attr) slog.Handler {
	nh := *h
	for _, a := range attrs {
		switch a.Key {
		case componentKey:
			nh.component = a.Value.String()
		case traceIDKey:
			if id, ok := a.Value.Any().(uint64); ok {
				nh.traceID = id
			}
		}
	}
	nh.base = h.base.WithAttrs(attrs)
	return &nh
}

func (h *flightHandler) WithGroup(name string) slog.Handler {
	nh := *h
	nh.base = h.base.WithGroup(name)
	return &nh
}

// discardHandler drops everything; it backs the logger a nil Tracer hands
// out so callers never need a nil check before logging.
type discardHandler struct{}

func (discardHandler) Enabled(context.Context, slog.Level) bool  { return false }
func (discardHandler) Handle(context.Context, slog.Record) error { return nil }
func (discardHandler) WithAttrs([]slog.Attr) slog.Handler        { return discardHandler{} }
func (discardHandler) WithGroup(string) slog.Handler             { return discardHandler{} }

var discardLogger = slog.New(discardHandler{})

// newEventLogger builds the base event pipeline: a leveled text handler on
// w wrapped by the flight tee. A nil w keeps the flight mirror but writes
// no text — the daemon's "-log-level off"-style quiet mode.
func newEventLogger(w io.Writer, level slog.Level, flight *Flight) *slog.Logger {
	var base slog.Handler
	if w != nil {
		base = slog.NewTextHandler(w, &slog.HandlerOptions{Level: level})
	} else {
		base = discardHandler{}
	}
	return slog.New(&flightHandler{base: base, flight: flight})
}

// Attrs renders a Context as slog attributes, attaching the trace ID so
// the event cross-links with the /tracez span view. Unsampled contexts
// contribute nothing.
func (c Context) Attrs() []any {
	if !c.Sampled() {
		return nil
	}
	return []any{slog.Any(traceIDKey, c.TraceID), slog.String("trace_hex", fmt.Sprintf("%016x", c.TraceID))}
}
