package trace

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
)

// The ops-endpoint views. Both handlers follow the same HTTP contract as
// the rest of the ops surface: GET and HEAD only (405 otherwise, with an
// Allow header) and an explicit Content-Type.

// allowGetHead gates a handler to GET/HEAD; it reports whether the request
// may proceed. (Kept local so the trace package stays dependency-free;
// telemetry.GetOnly is the shared wrapper for handlers registered on the
// ops mux.)
func allowGetHead(w http.ResponseWriter, r *http.Request) bool {
	switch r.Method {
	case http.MethodGet, http.MethodHead:
		return true
	default:
		w.Header().Set("Allow", "GET, HEAD")
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
		return false
	}
}

// tracezTrace is the JSON shape of one trace in the /tracez list.
type tracezTrace struct {
	TraceID string `json:"trace_id"`
	Spans   []Span `json:"spans"`
}

// TracezHandler serves the span recorder: with no query, the list of
// retained traces (one line per trace: id, span count, stage path); with
// ?trace=<hex id>, that trace's waterfall. ?format=json switches either
// view to a JSON document.
func TracezHandler(rec *Recorder) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if !allowGetHead(w, r) {
			return
		}
		if rec == nil {
			http.Error(w, "tracing disabled", http.StatusNotFound)
			return
		}
		wantJSON := r.URL.Query().Get("format") == "json"
		if idStr := r.URL.Query().Get("trace"); idStr != "" {
			id, err := strconv.ParseUint(strings.TrimPrefix(idStr, "0x"), 16, 64)
			if err != nil {
				http.Error(w, "trace must be a hex trace ID", http.StatusBadRequest)
				return
			}
			spans := rec.Trace(id)
			if len(spans) == 0 {
				http.Error(w, "unknown trace", http.StatusNotFound)
				return
			}
			if wantJSON {
				writeJSON(w, tracezTrace{TraceID: fmt.Sprintf("%016x", id), Spans: spans})
				return
			}
			writeText(w, waterfall(id, spans))
			return
		}
		ids := rec.TraceIDs()
		if wantJSON {
			out := make([]tracezTrace, 0, len(ids))
			for _, id := range ids {
				out = append(out, tracezTrace{TraceID: fmt.Sprintf("%016x", id), Spans: rec.Trace(id)})
			}
			writeJSON(w, out)
			return
		}
		var buf bytes.Buffer
		recorded, dropped, evicted := rec.Stats()
		fmt.Fprintf(&buf, "%d traces retained (%d spans recorded, %d dropped, %d traces evicted)\n",
			len(ids), recorded, dropped, evicted)
		for _, id := range ids {
			spans := rec.Trace(id)
			stages := make([]string, len(spans))
			for i, sp := range spans {
				stages[i] = sp.Stage
			}
			fmt.Fprintf(&buf, "%016x  %2d spans  %s\n", id, len(spans), strings.Join(stages, " -> "))
		}
		writeText(w, buf.Bytes())
	})
}

// waterfall renders one trace as a text waterfall: spans in start order
// with offsets from the first span.
func waterfall(id uint64, spans []Span) []byte {
	var buf bytes.Buffer
	fmt.Fprintf(&buf, "trace %016x — %d spans\n", id, len(spans))
	t0 := spans[0].Start
	for _, sp := range spans {
		note := ""
		if sp.Note != "" {
			note = "  " + sp.Note
		}
		fmt.Fprintf(&buf, "%12s +%-12s %-16s dur=%-12s%s\n",
			sp.Start.UTC().Format("15:04:05.000"), sp.Start.Sub(t0), sp.Stage, sp.Dur, note)
	}
	return buf.Bytes()
}

// WriteWaterfalls renders every retained trace as a text waterfall, oldest
// first — the "recent trace waterfalls" member of a diagnostic bundle, and
// the same rendering /tracez serves per trace. A nil recorder writes a
// placeholder line.
func WriteWaterfalls(w io.Writer, rec *Recorder) error {
	if rec == nil {
		_, err := io.WriteString(w, "tracing disabled\n")
		return err
	}
	ids := rec.TraceIDs()
	if _, err := fmt.Fprintf(w, "%d traces retained\n", len(ids)); err != nil {
		return err
	}
	for _, id := range ids {
		spans := rec.Trace(id)
		if len(spans) == 0 {
			continue
		}
		if _, err := w.Write(waterfall(id, spans)); err != nil {
			return err
		}
	}
	return nil
}

// writeText emits one text/plain document.
func writeText(w http.ResponseWriter, body []byte) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	if _, err := w.Write(body); err != nil {
		return // client went away mid-response
	}
}

// FlightzHandler serves the flight recorder ring: the text dump by
// default, ?format=json for the raw entries.
func FlightzHandler(f *Flight) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if !allowGetHead(w, r) {
			return
		}
		if f == nil {
			http.Error(w, "flight recorder disabled", http.StatusNotFound)
			return
		}
		if r.URL.Query().Get("format") == "json" {
			writeJSON(w, f.Snapshot())
			return
		}
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		if err := f.Dump(w); err != nil {
			return // scraper went away mid-dump; nothing to clean up
		}
	})
}

// writeJSON emits one JSON document with the right Content-Type.
func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	if err := enc.Encode(v); err != nil {
		return // client went away mid-response
	}
}
