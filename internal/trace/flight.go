package trace

import (
	"fmt"
	"io"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Event is one entry of the flight recorder: a structured log event or a
// completed span, flattened to what a post-hoc fault investigation needs.
type Event struct {
	Seq       uint64    `json:"seq"`
	Time      time.Time `json:"time"`
	TraceID   uint64    `json:"trace_id,omitempty"`
	Component string    `json:"component"`
	Kind      string    `json:"kind"` // "event", "span" or "trip"
	Msg       string    `json:"msg"`
}

// DefaultFlightEvents is the ring capacity when none is configured.
const DefaultFlightEvents = 4096

// Flight is the crash/anomaly flight recorder: a fixed-size ring of the
// last N events and spans. Add is lock-free — one atomic counter bump and
// one atomic pointer store — so it can sit on every event path without
// becoming a serialization point; writers never wait for readers or for
// each other beyond cache traffic on the counter.
//
// Snapshot is a best-effort view: slots are read atomically one by one, so
// a dump taken mid-write can contain a newer event in one slot than in its
// neighbor. Seq numbers restore order and expose any gap. A nil *Flight is
// a no-op.
type Flight struct {
	slots []atomic.Pointer[Event]
	pos   atomic.Uint64

	// tripMu serializes dumps; lastTrip rate-limits anomaly-triggered ones
	// so an error storm produces one flight dump, not thousands.
	tripMu   sync.Mutex
	lastTrip atomic.Int64 // unix nanos of the last anomaly dump
	tripGap  time.Duration
	tripOut  io.Writer
	trips    atomic.Uint64

	// onTrip, when set, is notified of rate-limit-passing trips — the
	// diagnostic-bundle trigger. Stored atomically so it can be attached
	// after the tracer is already live.
	onTrip atomic.Pointer[func(component, reason string)]
}

// NewFlight returns a flight recorder retaining the last n entries
// (DefaultFlightEvents when n <= 0). Anomaly dumps go to out (nil
// disables them; /flightz and explicit dumps still work) at most once per
// minGap (default 5s when <= 0).
func NewFlight(n int, out io.Writer, minGap time.Duration) *Flight {
	if n <= 0 {
		n = DefaultFlightEvents
	}
	if minGap <= 0 {
		minGap = 5 * time.Second
	}
	return &Flight{slots: make([]atomic.Pointer[Event], n), tripGap: minGap, tripOut: out}
}

// Add appends one entry, overwriting the oldest once the ring is full.
func (f *Flight) Add(ev Event) {
	if f == nil {
		return
	}
	seq := f.pos.Add(1)
	ev.Seq = seq
	f.slots[(seq-1)%uint64(len(f.slots))].Store(&ev)
}

// Snapshot returns the retained entries ordered by sequence number.
func (f *Flight) Snapshot() []Event {
	if f == nil {
		return nil
	}
	out := make([]Event, 0, len(f.slots))
	for i := range f.slots {
		if p := f.slots[i].Load(); p != nil {
			out = append(out, *p)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Seq < out[j].Seq })
	return out
}

// Dump writes the retained window as text, newest last — the "what
// happened in the seconds before the fault" view.
func (f *Flight) Dump(w io.Writer) error {
	if f == nil {
		return nil
	}
	evs := f.Snapshot()
	if _, err := fmt.Fprintf(w, "flight recorder: %d of %d slots, %d total entries\n",
		len(evs), len(f.slots), f.pos.Load()); err != nil {
		return err
	}
	for _, ev := range evs {
		trace := ""
		if ev.TraceID != 0 {
			trace = fmt.Sprintf(" trace=%016x", ev.TraceID)
		}
		if _, err := fmt.Fprintf(w, "%8d %s %-9s %-5s%s %s\n",
			ev.Seq, ev.Time.UTC().Format("15:04:05.000000"), ev.Component, ev.Kind, trace, ev.Msg); err != nil {
			return err
		}
	}
	return nil
}

// SetOnTrip attaches a callback invoked for every trip that passes the
// rate limit — the hook the diagnostic-bundle writer rides. The callback
// runs on the tripping goroutine (often a hot path); implementations must
// hand real work off to their own goroutine. Safe to call while the
// recorder is live; a nil fn detaches.
func (f *Flight) SetOnTrip(fn func(component, reason string)) {
	if f == nil {
		return
	}
	if fn == nil {
		f.onTrip.Store(nil)
		return
	}
	f.onTrip.Store(&fn)
}

// Trip records an anomaly and dumps the pre-fault window to the configured
// output, rate-limited: trips inside the minimum gap only record the event
// (the storm is visible in the ring, the dump is not repeated). It returns
// true when a dump was written.
func (f *Flight) Trip(component, reason string) bool {
	if f == nil {
		return false
	}
	f.trips.Add(1)
	f.Add(Event{Time: time.Now(), Component: component, Kind: "trip", Msg: reason})
	cb := f.onTrip.Load()
	if f.tripOut == nil && cb == nil {
		return false
	}
	now := time.Now().UnixNano()
	last := f.lastTrip.Load()
	if now-last < int64(f.tripGap) || !f.lastTrip.CompareAndSwap(last, now) {
		return false
	}
	if cb != nil {
		(*cb)(component, reason)
	}
	if f.tripOut == nil {
		return false
	}
	f.tripMu.Lock()
	defer f.tripMu.Unlock()
	if _, err := fmt.Fprintf(f.tripOut, "flight recorder tripped: %s: %s\n", component, reason); err != nil {
		return false
	}
	//lint:allow errdrop the trip dump is best-effort diagnostics on an already-failing path; a broken sink must not mask the original fault
	f.Dump(f.tripOut)
	return true
}

// Trips returns how many anomalies have tripped (including rate-limited
// ones that did not dump).
func (f *Flight) Trips() uint64 {
	if f == nil {
		return 0
	}
	return f.trips.Load()
}
