// Package trace is the causal layer of the observability stack: where
// internal/telemetry answers "how is the pipeline doing in aggregate", this
// package answers "what happened to THIS connection summary". A sampled
// record is assigned a TraceContext at the simulated NIC and the context
// travels with it through every Figure 8 stage — host-agent pull, the
// analytics wire protocol, the engine's ingest shards, the cross-shard
// window merge, and the final store append — leaving one timed span per
// stage in a per-trace buffer served by the /tracez ops endpoint.
//
// Three pieces, all stdlib-only and nil-safe in the internal/telemetry
// house style (a disabled tracer costs one branch per instrumentation
// point):
//
//   - TraceContext + Sampler: 64-bit trace and span IDs drawn from a
//     deterministic seeded sequence, so two runs over the same workload
//     sample the same records and replay stays byte-identical (sampling
//     never alters the record stream — contexts travel out of band).
//   - Recorder: bounded per-trace span buffers behind /tracez (list and
//     per-trace waterfall, text or JSON).
//   - Flight + the slog event layer: component-scoped structured logging
//     with trace IDs attached, mirrored into a fixed-size lock-free ring
//     that dumps the seconds before a fault on demand (/flightz), on
//     SIGQUIT, or when an anomaly trips (protocol error, window flush
//     lag, store fsync failure).
package trace

import "sync/atomic"

// Context identifies one sampled record's journey through the pipeline: a
// 64-bit trace ID shared by every span of the journey plus a span ID
// seeding per-stage parentage. The zero Context means "not sampled" and
// makes every instrumentation point a no-op.
//
// Context is a small value type and must be passed by value — sharing one
// *Context between pipeline stages that run on different goroutines is a
// data race (enforced by cloudgraph-vet's tracectx analyzer).
type Context struct {
	TraceID uint64
	SpanID  uint64
}

// Sampled reports whether the context belongs to a sampled record.
func (c Context) Sampled() bool { return c.TraceID != 0 }

// Sampler decides which records get a TraceContext, deterministically:
// record n of the stream is sampled iff n is a multiple of the rate, and
// the k-th sampled record always receives the trace ID derived from
// (seed, k) by splitmix64. Two runs with the same seed and the same record
// order therefore sample the same records with the same IDs, which keeps
// traced replays comparable run-over-run.
//
// Next is one atomic add on the unsampled path. A nil Sampler never
// samples.
type Sampler struct {
	every uint64
	seed  uint64
	n     atomic.Uint64
}

// NewSampler returns a sampler emitting a context for one in every `every`
// records, seeded deterministically. every <= 0 disables sampling (the
// returned sampler never emits).
func NewSampler(every int, seed uint64) *Sampler {
	if every <= 0 {
		return &Sampler{}
	}
	return &Sampler{every: uint64(every), seed: seed}
}

// Next advances the record counter and returns the context for this
// record: a sampled context every `every` records, the zero Context
// otherwise.
func (s *Sampler) Next() Context {
	if s == nil || s.every == 0 {
		return Context{}
	}
	n := s.n.Add(1)
	if n%s.every != 0 {
		return Context{}
	}
	k := n / s.every
	id := splitmix64(s.seed + k)
	if id == 0 {
		id = 1 // zero means unsampled; remap the one-in-2^64 collision
	}
	return Context{TraceID: id, SpanID: splitmix64(id)}
}

// splitmix64 is the SplitMix64 finalizer: a bijective 64-bit mixer, the
// standard way to expand a small seed into well-distributed IDs.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}
