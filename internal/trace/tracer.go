package trace

import (
	"context"
	"fmt"
	"io"
	"log/slog"
	"time"
)

// Options configures a Tracer. The zero value is usable: sampling off,
// default flight ring, info-level events to no writer (flight-only).
type Options struct {
	// SampleEvery samples one in N records for span tracing (0 disables
	// span sampling; events and the flight ring still work).
	SampleEvery int
	// Seed governs the sampler's deterministic trace-ID sequence.
	Seed uint64
	// MaxTraces bounds the span recorder (DefaultMaxTraces when 0).
	MaxTraces int
	// FlightEvents is the flight ring capacity (DefaultFlightEvents when 0).
	FlightEvents int
	// LogOutput receives structured events as slog text lines; nil keeps
	// events flight-only.
	LogOutput io.Writer
	// LogLevel gates the text output (the flight ring keeps all levels).
	LogLevel slog.Level
	// TripOutput receives anomaly flight dumps; nil falls back to
	// LogOutput, so a quiet tracer records trips without dumping.
	TripOutput io.Writer
	// TripMinGap rate-limits anomaly dumps (default 5s).
	TripMinGap time.Duration
}

// Tracer bundles the three causal-observability pieces — sampler,
// span recorder, and event log + flight recorder — behind one handle the
// pipeline threads from the simulated NIC to the store. Every method is
// safe on a nil *Tracer and unsampled contexts short-circuit, so wiring
// tracing through a stage costs one branch when disabled, matching the
// internal/telemetry contract.
type Tracer struct {
	sampler *Sampler
	rec     *Recorder
	flight  *Flight
	log     *slog.Logger
}

// New builds a Tracer from opts.
func New(opts Options) *Tracer {
	tripOut := opts.TripOutput
	if tripOut == nil {
		tripOut = opts.LogOutput
	}
	flight := NewFlight(opts.FlightEvents, tripOut, opts.TripMinGap)
	return &Tracer{
		sampler: NewSampler(opts.SampleEvery, opts.Seed),
		rec:     NewRecorder(opts.MaxTraces),
		flight:  flight,
		log:     newEventLogger(opts.LogOutput, opts.LogLevel, flight),
	}
}

// Sample draws the next record's context from the deterministic sampler:
// a sampled Context for one in SampleEvery records, zero otherwise.
func (t *Tracer) Sample() Context {
	if t == nil {
		return Context{}
	}
	return t.sampler.Next()
}

// Record stores one completed span for ctx and mirrors it into the flight
// ring. A nil tracer or unsampled context is a single-branch no-op.
func (t *Tracer) Record(ctx Context, stage string, start time.Time, d time.Duration, note string) {
	if t == nil || !ctx.Sampled() {
		return
	}
	t.rec.Record(ctx, stage, start, d, note)
	msg := stage + " " + d.String()
	if note != "" {
		msg += " " + note
	}
	t.flight.Add(Event{Time: start, TraceID: ctx.TraceID, Component: stage, Kind: "span", Msg: msg})
}

// Logger returns the component-scoped structured event logger. On a nil
// tracer it returns a shared discard logger, so call sites never need a
// guard.
func (t *Tracer) Logger(component string) *slog.Logger {
	if t == nil {
		return discardLogger
	}
	return t.log.With(slog.String(componentKey, component))
}

// Eventf logs one formatted event for component at level, attaching ctx's
// trace ID when sampled so the event cross-links with /tracez.
func (t *Tracer) Eventf(ctx Context, component string, level slog.Level, format string, args ...any) {
	if t == nil {
		return
	}
	t.Logger(component).Log(context.Background(), level, fmt.Sprintf(format, args...), ctx.Attrs()...)
}

// Trip records an anomaly — protocol error, window flush lag, store fsync
// failure — and dumps the flight ring's pre-fault window (rate-limited).
func (t *Tracer) Trip(component, reason string) {
	if t == nil {
		return
	}
	t.flight.Trip(component, reason)
}

// Recorder exposes the span store (for /tracez); nil on a nil tracer.
func (t *Tracer) Recorder() *Recorder {
	if t == nil {
		return nil
	}
	return t.rec
}

// Flight exposes the flight ring (for /flightz and SIGQUIT dumps); nil on
// a nil tracer.
func (t *Tracer) Flight() *Flight {
	if t == nil {
		return nil
	}
	return t.flight
}

// DumpFlight writes the flight ring as text — the SIGQUIT handler's view.
func (t *Tracer) DumpFlight(w io.Writer) error {
	if t == nil {
		return nil
	}
	return t.flight.Dump(w)
}
