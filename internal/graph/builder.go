package graph

import (
	"net/netip"
	"time"

	"cloudgraph/internal/flowlog"
)

// BuilderOptions configures a Builder.
type BuilderOptions struct {
	// Facet selects node granularity. Default FacetIP.
	Facet Facet
	// Interval is the telemetry aggregation interval used to bucket
	// deduplication state and time series. Default one minute.
	Interval time.Duration
	// KeepSeries records a per-interval Sample on every directed edge.
	KeepSeries bool
	// Label maps addresses to service names; required for FacetService.
	Label Labeler
}

// pairObs merges the (up to two) reports of one flow during one interval:
// an intra-subscription flow is logged by both endpoints' NICs with the
// directional counters swapped, so we take the max of the two views per
// direction (they should agree; max also tolerates a lost report).
type pairObs struct {
	fwdPkts, fwdBytes uint64 // key.A -> key.B
	revPkts, revBytes uint64 // key.B -> key.A
}

// Builder constructs a Graph from a stream of connection summaries,
// deduplicating double-reported intra-subscription flows per interval. This
// is "naïvely a group-by-aggregation query" (§3.2) with the memory bounded
// by the flows of the most recent interval rather than the whole window.
//
// Records are expected in roughly time order; a record more than one full
// interval older than the newest seen so far may be double-counted.
type Builder struct {
	opts BuilderOptions
	g    *Graph

	cur      map[flowlog.FlowKey]*pairObs
	curStart time.Time
	records  int
	minTime  time.Time
	maxTime  time.Time
}

// NewBuilder returns a Builder with the given options.
func NewBuilder(opts BuilderOptions) *Builder {
	if opts.Interval <= 0 {
		opts.Interval = time.Minute
	}
	return &Builder{
		opts: opts,
		g:    New(opts.Facet),
		cur:  make(map[flowlog.FlowKey]*pairObs),
	}
}

// Records returns how many records have been added.
func (b *Builder) Records() int { return b.records }

// Add ingests one connection summary.
func (b *Builder) Add(rec flowlog.Record) {
	if !rec.Valid() {
		return
	}
	start := rec.Time.Truncate(b.opts.Interval)
	if b.curStart.IsZero() {
		b.curStart = start
	} else if start.After(b.curStart) {
		b.flush()
		b.curStart = start
	} else if start.Before(b.curStart) {
		// Late record: fold into the current interval rather than drop.
		start = b.curStart
	}
	b.records++
	if b.minTime.IsZero() || rec.Time.Before(b.minTime) {
		b.minTime = rec.Time
	}
	if rec.Time.After(b.maxTime) {
		b.maxTime = rec.Time
	}

	key := rec.Key()
	obs := b.cur[key]
	if obs == nil {
		obs = &pairObs{}
		b.cur[key] = obs
	}
	// Orient the record's counters along the canonical key direction.
	local := netip.AddrPortFrom(rec.LocalIP, rec.LocalPort)
	if local == key.A {
		obs.fwdPkts = max(obs.fwdPkts, rec.PacketsSent)
		obs.fwdBytes = max(obs.fwdBytes, rec.BytesSent)
		obs.revPkts = max(obs.revPkts, rec.PacketsRcvd)
		obs.revBytes = max(obs.revBytes, rec.BytesRcvd)
	} else {
		obs.fwdPkts = max(obs.fwdPkts, rec.PacketsRcvd)
		obs.fwdBytes = max(obs.fwdBytes, rec.BytesRcvd)
		obs.revPkts = max(obs.revPkts, rec.PacketsSent)
		obs.revBytes = max(obs.revBytes, rec.BytesSent)
	}
}

// node maps one endpoint to a graph node under the builder's facet.
func (b *Builder) node(ap netip.AddrPort) Node {
	switch b.opts.Facet {
	case FacetIPPort:
		return IPPortNode(ap.Addr(), ap.Port())
	case FacetService:
		if b.opts.Label != nil {
			if name := b.opts.Label(ap.Addr()); name != "" {
				return ServiceNode(name)
			}
		}
		return ServiceNode(ap.Addr().String())
	default:
		return IPNode(ap.Addr())
	}
}

// nodePair maps both endpoints of a flow, handling facets that need to see
// the pair together: FacetEndpoint keys the service side (lower port) by
// {IP, port} and the client side by IP.
func (b *Builder) nodePair(a, z netip.AddrPort) (Node, Node) {
	if b.opts.Facet != FacetEndpoint {
		return b.node(a), b.node(z)
	}
	if a.Port() <= z.Port() {
		return IPPortNode(a.Addr(), a.Port()), IPNode(z.Addr())
	}
	return IPNode(a.Addr()), IPPortNode(z.Addr(), z.Port())
}

// flush folds the current interval's deduplicated flows into the graph.
func (b *Builder) flush() {
	if len(b.cur) == 0 {
		return
	}
	type dirKey struct{ src, dst Node }
	interval := make(map[dirKey]Counters, len(b.cur))
	for key, obs := range b.cur {
		a, z := b.nodePair(key.A, key.B)
		if a == z {
			// Facet merged both endpoints (e.g. two ports of one IP in
			// a FacetService graph): keep as a self-loop-free no-op.
			continue
		}
		fwd := interval[dirKey{a, z}]
		fwd.Bytes += obs.fwdBytes
		fwd.Packets += obs.fwdPkts
		fwd.Conns++ // one distinct flow, attributed to the canonical direction
		interval[dirKey{a, z}] = fwd

		rev := interval[dirKey{z, a}]
		rev.Bytes += obs.revBytes
		rev.Packets += obs.revPkts
		interval[dirKey{z, a}] = rev
	}
	for k, c := range interval {
		if c == (Counters{}) {
			continue
		}
		e := b.g.addDirected(k.src, k.dst, c)
		if b.opts.KeepSeries {
			e.Series = append(e.Series, Sample{Start: b.curStart, Counters: c})
		}
	}
	clear(b.cur)
}

// Finish flushes pending state and returns the completed graph. The builder
// can keep accepting records afterwards, contributing to the same graph.
func (b *Builder) Finish() *Graph {
	b.flush()
	b.g.Start = b.minTime.Truncate(b.opts.Interval)
	if !b.maxTime.IsZero() {
		b.g.End = b.maxTime.Truncate(b.opts.Interval).Add(b.opts.Interval)
	}
	return b.g
}

// Build is a convenience that constructs a graph from a record slice.
func Build(recs []flowlog.Record, opts BuilderOptions) *Graph {
	b := NewBuilder(opts)
	for _, r := range recs {
		b.Add(r)
	}
	return b.Finish()
}
