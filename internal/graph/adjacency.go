package graph

import (
	"fmt"
	"sort"
	"strings"
)

// Adjacency is a dense adjacency-matrix view of a graph under one metric:
// Figure 4's representation. Index i corresponds to Order[i]; M[i*N+j]
// holds the traffic Order[i] sent to Order[j].
type Adjacency struct {
	Order []Node
	N     int
	M     []float64
}

// AdjacencyMatrix exports the graph as a dense matrix under metric m. Nodes
// are ordered deterministically (sorted), which for the synthetic clusters
// groups role peers together the way Figure 4's banded matrices do.
func (g *Graph) AdjacencyMatrix(m Metric) *Adjacency {
	order := g.Nodes()
	idx := make(map[Node]int, len(order))
	for i, n := range order {
		idx[n] = i
	}
	n := len(order)
	a := &Adjacency{Order: order, N: n, M: make([]float64, n*n)}
	g.EachOut(func(src, dst Node, e *Edge) {
		a.M[idx[src]*n+idx[dst]] = float64(e.Get(m))
	})
	return a
}

// At returns entry (i, j).
func (a *Adjacency) At(i, j int) float64 { return a.M[i*a.N+j] }

// Symmetrized returns (M + Mᵀ)/2 as a flat slice, the form the PCA analysis
// consumes (eigendecomposition M = EDEᵀ assumes symmetry).
func (a *Adjacency) Symmetrized() []float64 {
	s := make([]float64, len(a.M))
	n := a.N
	for i := 0; i < n; i++ {
		for j := 0; j <= i; j++ {
			v := (a.M[i*n+j] + a.M[j*n+i]) / 2
			s[i*n+j] = v
			s[j*n+i] = v
		}
	}
	return s
}

// DOT renders the graph in Graphviz format, weighting edges by metric m and
// optionally coloring nodes by a label map (e.g. inferred roles, as in
// Figure 1). Nodes and edges appear in deterministic order.
func (g *Graph) DOT(m Metric, labels map[Node]int) string {
	var b strings.Builder
	b.WriteString("graph comm {\n  node [shape=point];\n")
	palette := []string{
		"#4363d8", "#e6194b", "#3cb44b", "#ffe119", "#f58231", "#911eb4",
		"#46f0f0", "#f032e6", "#bcf60c", "#fabebe", "#008080", "#e6beff",
	}
	for _, n := range g.Nodes() {
		if labels != nil {
			c := palette[labels[n]%len(palette)]
			fmt.Fprintf(&b, "  %q [color=%q];\n", n.String(), c)
		} else {
			fmt.Fprintf(&b, "  %q;\n", n.String())
		}
	}
	edges := g.UndirectedEdges()
	sort.SliceStable(edges, func(i, j int) bool { return edges[i].Get(m) > edges[j].Get(m) })
	for _, e := range edges {
		fmt.Fprintf(&b, "  %q -- %q [weight=%d];\n", e.A.String(), e.B.String(), e.Get(m))
	}
	b.WriteString("}\n")
	return b.String()
}

// Stats summarizes a graph for Figure 2 / Table 1 style reporting.
type Stats struct {
	Facet   Facet
	Nodes   int
	Edges   int
	Density float64
	MaxDeg  int
	MeanDeg float64
	Bytes   uint64
	Packets uint64
	Conns   uint64
}

// ComputeStats returns summary statistics of the graph.
func (g *Graph) ComputeStats() Stats {
	s := Stats{Facet: g.Facet, Nodes: g.NumNodes(), Edges: g.NumEdges(), Density: g.Density()}
	t := g.TotalTraffic()
	s.Bytes, s.Packets, s.Conns = t.Bytes, t.Packets, t.Conns
	var sum int
	g.EachNode(func(n Node) {
		d := g.Degree(n)
		sum += d
		if d > s.MaxDeg {
			s.MaxDeg = d
		}
	})
	if s.Nodes > 0 {
		s.MeanDeg = float64(sum) / float64(s.Nodes)
	}
	return s
}
