package graph

import (
	"math/rand"
	"net/netip"
	"reflect"
	"runtime"
	"testing"
	"testing/quick"
)

// freezeClone builds an independent frozen copy of g (same facet, nodes,
// edges and series).
func freezeClone(g *Graph) *Graph {
	c := New(g.Facet)
	c.Start, c.End = g.Start, g.End
	g.EachNode(c.AddNode)
	g.EachOut(func(src, dst Node, e *Edge) {
		me := c.addDirected(src, dst, e.Counters)
		me.Series = append([]Sample(nil), e.Series...)
	})
	c.Freeze()
	return c
}

// TestFrozenEquivalence is the tentpole's gate: every read accessor, and the
// Merge/Diff/Collapse/adjacency analyses built on them, must return results
// byte-identical to the map-backed form. The CSR representation is an
// encoding change, never a semantic one.
func TestFrozenEquivalence(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		recs := randRecords(rng)
		sortByTime(recs)
		m := Build(recs, BuilderOptions{Facet: FacetIP, KeepSeries: true})
		fz := freezeClone(m)
		if !fz.Frozen() || m.Frozen() {
			t.Fatal("representation flags wrong")
		}

		if fz.NumNodes() != m.NumNodes() || fz.NumEdges() != m.NumEdges() ||
			fz.NumDirectedEdges() != m.NumDirectedEdges() || fz.Density() != m.Density() {
			return false
		}
		if !reflect.DeepEqual(fz.Nodes(), m.Nodes()) {
			return false
		}
		if !reflect.DeepEqual(fz.UndirectedEdges(), m.UndirectedEdges()) {
			return false
		}
		if fz.TotalTraffic() != m.TotalTraffic() {
			return false
		}
		for _, n := range m.Nodes() {
			if !fz.HasNode(n) || fz.Degree(n) != m.Degree(n) {
				return false
			}
			for _, met := range []Metric{Bytes, Packets, Conns} {
				if fz.NodeStrength(n, met) != m.NodeStrength(n, met) {
					return false
				}
			}
			if !reflect.DeepEqual(fz.Neighbors(n), m.Neighbors(n)) {
				return false
			}
		}
		// Directed edges, counters and series agree pairwise.
		same := true
		m.EachOut(func(src, dst Node, e *Edge) {
			fe := fz.OutEdge(src, dst)
			if fe == nil || fe.Counters != e.Counters || !reflect.DeepEqual(fe.Series, e.Series) {
				same = false
			}
		})
		fz.EachOut(func(src, dst Node, e *Edge) {
			if m.OutEdge(src, dst) == nil {
				same = false
			}
		})
		if !same {
			return false
		}

		// The analyses: matrix export, stats, collapse, diff, merge.
		am, af := m.AdjacencyMatrix(Bytes), fz.AdjacencyMatrix(Bytes)
		if !reflect.DeepEqual(am, af) {
			return false
		}
		if m.ComputeStats() != fz.ComputeStats() {
			return false
		}
		cm := m.Collapse(CollapseOptions{Threshold: 0.01})
		cf := fz.Collapse(CollapseOptions{Threshold: 0.01})
		if !reflect.DeepEqual(cm.UndirectedEdges(), cf.UndirectedEdges()) ||
			!reflect.DeepEqual(cm.Nodes(), cf.Nodes()) {
			return false
		}
		if d := Diff(m, fz); d.ByteChange != 0 || len(d.AddedNodes)+len(d.RemovedNodes)+
			len(d.AddedPairs)+len(d.RemovedPairs) != 0 {
			return false
		}
		// Merging a frozen source must equal merging its map-backed twin.
		intoA := Build(recs[:len(recs)/2], BuilderOptions{Facet: FacetIP, KeepSeries: true})
		intoB := Build(recs[:len(recs)/2], BuilderOptions{Facet: FacetIP, KeepSeries: true})
		intoA.Merge(m)
		intoB.Merge(fz)
		return reflect.DeepEqual(intoA.UndirectedEdges(), intoB.UndirectedEdges()) &&
			intoA.TotalTraffic() == intoB.TotalTraffic()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

func TestFreezeThawRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	recs := randRecords(rng)
	sortByTime(recs)
	g := Build(recs, BuilderOptions{Facet: FacetIP, KeepSeries: true})
	wantEdges := g.UndirectedEdges()
	wantNodes := g.Nodes()
	wantPairs := g.NumEdges()

	g.Freeze()
	g.Freeze() // idempotent
	if !g.Frozen() {
		t.Fatal("not frozen after Freeze")
	}
	g.Thaw()
	if g.Frozen() {
		t.Fatal("still frozen after Thaw")
	}
	if g.NumEdges() != wantPairs {
		t.Fatalf("pair count %d after round trip, want %d", g.NumEdges(), wantPairs)
	}
	if !reflect.DeepEqual(g.Nodes(), wantNodes) || !reflect.DeepEqual(g.UndirectedEdges(), wantEdges) {
		t.Fatal("round trip changed graph content")
	}
}

func TestFrozenMutationThaws(t *testing.T) {
	a := IPNode(netip.MustParseAddr("10.0.0.1"))
	b := IPNode(netip.MustParseAddr("10.0.0.2"))
	c := IPNode(netip.MustParseAddr("10.0.0.3"))
	g := New(FacetIP)
	g.AddEdge(a, b, Counters{Bytes: 5})
	g.Freeze()
	g.AddEdge(b, c, Counters{Bytes: 7})
	if g.Frozen() {
		t.Fatal("mutation left the graph frozen")
	}
	if g.NumNodes() != 3 || g.NumEdges() != 2 || g.TotalTraffic().Bytes != 12 {
		t.Fatalf("post-thaw graph wrong: %d nodes %d pairs %d bytes",
			g.NumNodes(), g.NumEdges(), g.TotalTraffic().Bytes)
	}
}

// synthSubscription builds a hypersparse ~n-node subscription graph: every
// node talks to a handful of hub services plus a few random peers — the
// shape §3's 100K-node subscriptions take.
func synthSubscription(n int) *Graph {
	g := New(FacetIP)
	rng := rand.New(rand.NewSource(42))
	addr := func(i int) Node {
		return IPNode(netip.AddrFrom4([4]byte{10, byte(i >> 16), byte(i >> 8), byte(i)}))
	}
	const hubs = 64
	for i := hubs; i < n; i++ {
		g.AddEdge(addr(i), addr(i%hubs), Counters{Bytes: uint64(i), Packets: 2, Conns: 1})
		if rng.Intn(4) == 0 {
			g.AddEdge(addr(i), addr(hubs+rng.Intn(n-hubs)), Counters{Bytes: 100, Packets: 1, Conns: 1})
		}
	}
	return g
}

func heapAlloc() uint64 {
	runtime.GC()
	runtime.GC()
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	return ms.HeapAlloc
}

// TestFrozenBytesPerEdge pins the acceptance criterion: on a 100K-node
// synthetic subscription, freezing must cut the measured heap bytes per
// directed edge by at least 2x versus the map-backed form.
func TestFrozenBytesPerEdge(t *testing.T) {
	if testing.Short() {
		t.Skip("heap measurement on a 100K-node graph")
	}
	base := heapAlloc()
	g := synthSubscription(100_000)
	mapBytes := int64(heapAlloc() - base)
	edges := int64(g.NumDirectedEdges())
	g.Freeze()
	frozenBytes := int64(heapAlloc() - base)
	runtime.KeepAlive(g)
	if mapBytes <= 0 || frozenBytes <= 0 {
		t.Skipf("heap measurement unusable: map=%d frozen=%d", mapBytes, frozenBytes)
	}
	t.Logf("map: %d B (%d B/edge), frozen: %d B (%d B/edge), ratio %.1fx over %d directed edges",
		mapBytes, mapBytes/edges, frozenBytes, frozenBytes/edges,
		float64(mapBytes)/float64(frozenBytes), edges)
	if mapBytes < 2*frozenBytes {
		t.Fatalf("frozen form saves only %.2fx (map %d B, frozen %d B); want >= 2x",
			float64(mapBytes)/float64(frozenBytes), mapBytes, frozenBytes)
	}
}
