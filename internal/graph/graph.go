package graph

import (
	"sort"
	"time"

	"cloudgraph/internal/trace"
)

// Counters is one direction's worth of traffic between a node pair.
type Counters struct {
	Bytes   uint64
	Packets uint64
	Conns   uint64
}

// Add accumulates o into c.
func (c *Counters) Add(o Counters) {
	c.Bytes += o.Bytes
	c.Packets += o.Packets
	c.Conns += o.Conns
}

// Get returns the counter selected by m.
func (c Counters) Get(m Metric) uint64 {
	switch m {
	case Bytes:
		return c.Bytes
	case Packets:
		return c.Packets
	default:
		return c.Conns
	}
}

// Sample is one aggregation interval of an edge's time series.
type Sample struct {
	Start time.Time
	Counters
}

// Edge is the directed traffic from one node to another, with the summed
// counters and, when the builder is configured to keep them, the
// per-interval time series (§1: "embed timeseries in the node and edge
// attributes of one graph").
type Edge struct {
	Counters
	Series []Sample
}

// Graph is a communication graph over one time window. Edges are stored
// directed (out[src][dst] carries what src sent to dst); undirected views
// are derived. The zero value is not usable; call New.
//
// A Graph has two representations behind one API: the mutable map-backed
// form used while the window is open, and the immutable hypersparse CSR
// form (see Freeze) used once it seals. Every read accessor works on both;
// mutation on a frozen graph thaws it first.
type Graph struct {
	Facet Facet
	Start time.Time
	End   time.Time
	// Traces lists the trace contexts of the sampled records folded into
	// this window, attached by the engine when the window completes so
	// downstream consumers (the store append, OnWindow hooks) can record
	// their own spans against the same trace IDs. Nil when tracing is off
	// or no sampled record landed in the window; never serialized.
	Traces []trace.Context
	out    map[Node]map[Node]*Edge
	in     map[Node]map[Node]*Edge
	nodes  map[Node]struct{}
	edges  int     // number of unordered connected pairs
	fz     *frozen // non-nil iff the graph is in CSR form (maps are nil)
}

// New returns an empty graph with the given facet.
func New(f Facet) *Graph {
	return &Graph{
		Facet: f,
		out:   make(map[Node]map[Node]*Edge),
		in:    make(map[Node]map[Node]*Edge),
		nodes: make(map[Node]struct{}),
	}
}

// addDirected accumulates counters onto the directed edge src->dst, creating
// nodes and the edge as needed, and returns the edge.
func (g *Graph) addDirected(src, dst Node, c Counters) *Edge {
	g.thawForWrite()
	g.nodes[src] = struct{}{}
	g.nodes[dst] = struct{}{}
	m := g.out[src]
	if m == nil {
		m = make(map[Node]*Edge)
		g.out[src] = m
	}
	e := m[dst]
	if e == nil {
		e = &Edge{}
		m[dst] = e
		im := g.in[dst]
		if im == nil {
			im = make(map[Node]*Edge)
			g.in[dst] = im
		}
		im[src] = e
		// A new unordered pair is connected iff the reverse edge did
		// not already exist.
		if rev := g.out[dst]; rev == nil || rev[src] == nil {
			g.edges++
		}
	}
	e.Counters.Add(c)
	return e
}

// AddEdge accumulates counters onto the directed edge src->dst. It is the
// low-level mutation used by the builder and by tests.
func (g *Graph) AddEdge(src, dst Node, c Counters) { g.addDirected(src, dst, c) }

// AddNode ensures n exists even if isolated.
func (g *Graph) AddNode(n Node) {
	g.thawForWrite()
	g.nodes[n] = struct{}{}
}

// NumNodes returns the number of nodes.
func (g *Graph) NumNodes() int {
	if g.fz != nil {
		return len(g.fz.nodes)
	}
	return len(g.nodes)
}

// NumEdges returns the number of unordered communicating pairs, the quantity
// Table 1 reports.
func (g *Graph) NumEdges() int { return g.edges }

// NumDirectedEdges returns the number of directed edges.
func (g *Graph) NumDirectedEdges() int {
	if g.fz != nil {
		return len(g.fz.edges)
	}
	var m int
	for _, row := range g.out {
		m += len(row)
	}
	return m
}

// HasNode reports whether n is in the graph.
func (g *Graph) HasNode(n Node) bool {
	if g.fz != nil {
		_, ok := g.fz.nodeID(n)
		return ok
	}
	_, ok := g.nodes[n]
	return ok
}

// EachNode calls fn for every node. Iteration order is unspecified; use
// Nodes when determinism matters.
func (g *Graph) EachNode(fn func(Node)) {
	if g.fz != nil {
		for _, n := range g.fz.nodes {
			fn(n)
		}
		return
	}
	for n := range g.nodes {
		fn(n)
	}
}

// Nodes returns all nodes in deterministic order.
func (g *Graph) Nodes() []Node {
	if g.fz != nil {
		return append([]Node(nil), g.fz.nodes...)
	}
	ns := make([]Node, 0, len(g.nodes))
	for n := range g.nodes {
		ns = append(ns, n)
	}
	sort.Slice(ns, func(i, j int) bool { return ns[i].Less(ns[j]) })
	return ns
}

// OutEdge returns the directed edge src->dst, or nil.
func (g *Graph) OutEdge(src, dst Node) *Edge {
	if g.fz != nil {
		return g.fz.outEdge(src, dst)
	}
	if m := g.out[src]; m != nil {
		return m[dst]
	}
	return nil
}

// PairCounters returns the total traffic between a and b in both directions.
func (g *Graph) PairCounters(a, b Node) Counters {
	var c Counters
	if e := g.OutEdge(a, b); e != nil {
		c.Add(e.Counters)
	}
	if e := g.OutEdge(b, a); e != nil {
		c.Add(e.Counters)
	}
	return c
}

// Neighbors returns the set of nodes n exchanges traffic with in either
// direction. The returned map is freshly allocated.
func (g *Graph) Neighbors(n Node) map[Node]struct{} {
	set := make(map[Node]struct{})
	if g.fz != nil {
		fz := g.fz
		i, ok := fz.nodeID(n)
		if !ok {
			return set
		}
		for _, j := range fz.cols[fz.rowOff[i]:fz.rowOff[i+1]] {
			set[fz.nodes[j]] = struct{}{}
		}
		for _, j := range fz.inSrc[fz.inOff[i]:fz.inOff[i+1]] {
			set[fz.nodes[j]] = struct{}{}
		}
		return set
	}
	for dst := range g.out[n] {
		set[dst] = struct{}{}
	}
	for src := range g.in[n] {
		set[src] = struct{}{}
	}
	return set
}

// Degree returns the undirected degree of n.
func (g *Graph) Degree(n Node) int {
	if g.fz != nil {
		i, ok := g.fz.nodeID(n)
		if !ok {
			return 0
		}
		return g.fz.degree(i)
	}
	return len(g.Neighbors(n))
}

// NodeStrength returns the total traffic n exchanges (sent + received) under
// metric m — its row+column sum in the adjacency matrix.
func (g *Graph) NodeStrength(n Node, m Metric) uint64 {
	var total uint64
	if g.fz != nil {
		fz := g.fz
		i, ok := fz.nodeID(n)
		if !ok {
			return 0
		}
		for k := fz.rowOff[i]; k < fz.rowOff[i+1]; k++ {
			total += fz.edges[k].Get(m)
		}
		for _, k := range fz.inEdge[fz.inOff[i]:fz.inOff[i+1]] {
			total += fz.edges[k].Get(m)
		}
		return total
	}
	for _, e := range g.out[n] {
		total += e.Get(m)
	}
	for _, e := range g.in[n] {
		total += e.Get(m)
	}
	return total
}

// TotalTraffic returns the summed edge counters over the whole graph.
func (g *Graph) TotalTraffic() Counters {
	var total Counters
	if g.fz != nil {
		for i := range g.fz.edges {
			total.Add(g.fz.edges[i].Counters)
		}
		return total
	}
	for _, m := range g.out {
		for _, e := range m {
			total.Add(e.Counters)
		}
	}
	return total
}

// UndirectedEdge is one unordered communicating pair with combined traffic.
type UndirectedEdge struct {
	A, B Node
	Counters
}

// UndirectedEdges returns every unordered pair with combined counters, in
// deterministic order.
func (g *Graph) UndirectedEdges() []UndirectedEdge {
	edges := make([]UndirectedEdge, 0, g.edges)
	if g.fz != nil {
		fz := g.fz
		for i := range fz.nodes {
			for k := fz.rowOff[i]; k < fz.rowOff[i+1]; k++ {
				j := fz.cols[k]
				rev := fz.outIdx(j, int32(i))
				if j < int32(i) && rev >= 0 {
					continue // reverse edge will emit it
				}
				ue := UndirectedEdge{A: fz.nodes[i], B: fz.nodes[j], Counters: fz.edges[k].Counters}
				if rev >= 0 {
					ue.Counters.Add(fz.edges[rev].Counters)
				}
				if j < int32(i) {
					ue.A, ue.B = ue.B, ue.A
				}
				edges = append(edges, ue)
			}
		}
	} else {
		for src, m := range g.out {
			for dst, e := range m {
				// Emit each unordered pair once: from the lesser node, or
				// from src when the reverse edge doesn't exist.
				if dst.Less(src) {
					if rm := g.out[dst]; rm != nil && rm[src] != nil {
						continue // reverse edge will emit it
					}
				}
				ue := UndirectedEdge{A: src, B: dst, Counters: e.Counters}
				if rev := g.OutEdge(dst, src); rev != nil {
					ue.Counters.Add(rev.Counters)
				}
				if dst.Less(src) {
					ue.A, ue.B = ue.B, ue.A
				}
				edges = append(edges, ue)
			}
		}
	}
	sort.Slice(edges, func(i, j int) bool {
		if edges[i].A != edges[j].A {
			return edges[i].A.Less(edges[j].A)
		}
		return edges[i].B.Less(edges[j].B)
	})
	return edges
}

// EachOut calls fn for every directed edge. Iteration order is unspecified
// on the map form and deterministic on the frozen form; use
// Nodes/UndirectedEdges when determinism matters.
func (g *Graph) EachOut(fn func(src, dst Node, e *Edge)) {
	if g.fz != nil {
		fz := g.fz
		for i := range fz.nodes {
			for k := fz.rowOff[i]; k < fz.rowOff[i+1]; k++ {
				fn(fz.nodes[i], fz.nodes[fz.cols[k]], &fz.edges[k])
			}
		}
		return
	}
	for src, m := range g.out {
		for dst, e := range m {
			fn(src, dst, e)
		}
	}
}

// Subgraph returns the induced subgraph over keep (a fresh map-backed
// graph; edge counters are copied, it is a view for analysis).
func (g *Graph) Subgraph(keep map[Node]bool) *Graph {
	sub := New(g.Facet)
	sub.Start, sub.End = g.Start, g.End
	g.EachNode(func(n Node) {
		if keep[n] {
			sub.AddNode(n)
		}
	})
	g.EachOut(func(src, dst Node, e *Edge) {
		if keep[src] && keep[dst] {
			sub.addDirected(src, dst, e.Counters)
		}
	})
	return sub
}

// Density returns edges / possible undirected pairs.
func (g *Graph) Density() float64 {
	n := g.NumNodes()
	if n < 2 {
		return 0
	}
	return float64(g.edges) / (float64(n) * float64(n-1) / 2)
}

// MemBytes returns the approximate heap footprint of the graph's edge
// structure. For the frozen form it is an exact accounting of the CSR
// arrays; for the map form it is the conventional per-entry estimate the
// timeline's bytes-retained gauge has always used. Edge series backing
// arrays are excluded (both forms share them).
func (g *Graph) MemBytes() int64 {
	if g.fz != nil {
		return g.fz.memBytes()
	}
	// Map form: every node costs a set entry plus its inner-map headers;
	// every directed edge costs an out entry, an in entry and the Edge
	// allocation. Entry costs include average bucket overhead.
	const nodeCost = 160 // nodes set + out/in inner map headers
	const dirEdgeCost = 200
	return int64(len(g.nodes))*nodeCost + int64(g.NumDirectedEdges())*dirEdgeCost
}
