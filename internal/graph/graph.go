package graph

import (
	"sort"
	"time"

	"cloudgraph/internal/trace"
)

// Counters is one direction's worth of traffic between a node pair.
type Counters struct {
	Bytes   uint64
	Packets uint64
	Conns   uint64
}

// Add accumulates o into c.
func (c *Counters) Add(o Counters) {
	c.Bytes += o.Bytes
	c.Packets += o.Packets
	c.Conns += o.Conns
}

// Get returns the counter selected by m.
func (c Counters) Get(m Metric) uint64 {
	switch m {
	case Bytes:
		return c.Bytes
	case Packets:
		return c.Packets
	default:
		return c.Conns
	}
}

// Sample is one aggregation interval of an edge's time series.
type Sample struct {
	Start time.Time
	Counters
}

// Edge is the directed traffic from one node to another, with the summed
// counters and, when the builder is configured to keep them, the
// per-interval time series (§1: "embed timeseries in the node and edge
// attributes of one graph").
type Edge struct {
	Counters
	Series []Sample
}

// Graph is a communication graph over one time window. Edges are stored
// directed (out[src][dst] carries what src sent to dst); undirected views
// are derived. The zero value is not usable; call New.
type Graph struct {
	Facet Facet
	Start time.Time
	End   time.Time
	// Traces lists the trace contexts of the sampled records folded into
	// this window, attached by the engine when the window completes so
	// downstream consumers (the store append, OnWindow hooks) can record
	// their own spans against the same trace IDs. Nil when tracing is off
	// or no sampled record landed in the window; never serialized.
	Traces []trace.Context
	out    map[Node]map[Node]*Edge
	in     map[Node]map[Node]*Edge
	nodes  map[Node]struct{}
	edges  int // number of unordered connected pairs
}

// New returns an empty graph with the given facet.
func New(f Facet) *Graph {
	return &Graph{
		Facet: f,
		out:   make(map[Node]map[Node]*Edge),
		in:    make(map[Node]map[Node]*Edge),
		nodes: make(map[Node]struct{}),
	}
}

// addDirected accumulates counters onto the directed edge src->dst, creating
// nodes and the edge as needed, and returns the edge.
func (g *Graph) addDirected(src, dst Node, c Counters) *Edge {
	g.nodes[src] = struct{}{}
	g.nodes[dst] = struct{}{}
	m := g.out[src]
	if m == nil {
		m = make(map[Node]*Edge)
		g.out[src] = m
	}
	e := m[dst]
	if e == nil {
		e = &Edge{}
		m[dst] = e
		im := g.in[dst]
		if im == nil {
			im = make(map[Node]*Edge)
			g.in[dst] = im
		}
		im[src] = e
		// A new unordered pair is connected iff the reverse edge did
		// not already exist.
		if rev := g.out[dst]; rev == nil || rev[src] == nil {
			g.edges++
		}
	}
	e.Counters.Add(c)
	return e
}

// AddEdge accumulates counters onto the directed edge src->dst. It is the
// low-level mutation used by the builder and by tests.
func (g *Graph) AddEdge(src, dst Node, c Counters) { g.addDirected(src, dst, c) }

// AddNode ensures n exists even if isolated.
func (g *Graph) AddNode(n Node) { g.nodes[n] = struct{}{} }

// NumNodes returns the number of nodes.
func (g *Graph) NumNodes() int { return len(g.nodes) }

// NumEdges returns the number of unordered communicating pairs, the quantity
// Table 1 reports.
func (g *Graph) NumEdges() int { return g.edges }

// HasNode reports whether n is in the graph.
func (g *Graph) HasNode(n Node) bool {
	_, ok := g.nodes[n]
	return ok
}

// Nodes returns all nodes in deterministic order.
func (g *Graph) Nodes() []Node {
	ns := make([]Node, 0, len(g.nodes))
	for n := range g.nodes {
		ns = append(ns, n)
	}
	sort.Slice(ns, func(i, j int) bool { return ns[i].Less(ns[j]) })
	return ns
}

// OutEdge returns the directed edge src->dst, or nil.
func (g *Graph) OutEdge(src, dst Node) *Edge {
	if m := g.out[src]; m != nil {
		return m[dst]
	}
	return nil
}

// PairCounters returns the total traffic between a and b in both directions.
func (g *Graph) PairCounters(a, b Node) Counters {
	var c Counters
	if e := g.OutEdge(a, b); e != nil {
		c.Add(e.Counters)
	}
	if e := g.OutEdge(b, a); e != nil {
		c.Add(e.Counters)
	}
	return c
}

// Neighbors returns the set of nodes n exchanges traffic with in either
// direction. The returned map is freshly allocated.
func (g *Graph) Neighbors(n Node) map[Node]struct{} {
	set := make(map[Node]struct{})
	for dst := range g.out[n] {
		set[dst] = struct{}{}
	}
	for src := range g.in[n] {
		set[src] = struct{}{}
	}
	return set
}

// Degree returns the undirected degree of n.
func (g *Graph) Degree(n Node) int { return len(g.Neighbors(n)) }

// NodeStrength returns the total traffic n exchanges (sent + received) under
// metric m — its row+column sum in the adjacency matrix.
func (g *Graph) NodeStrength(n Node, m Metric) uint64 {
	var total uint64
	for _, e := range g.out[n] {
		total += e.Get(m)
	}
	for _, e := range g.in[n] {
		total += e.Get(m)
	}
	return total
}

// TotalTraffic returns the summed edge counters over the whole graph.
func (g *Graph) TotalTraffic() Counters {
	var total Counters
	for _, m := range g.out {
		for _, e := range m {
			total.Add(e.Counters)
		}
	}
	return total
}

// UndirectedEdge is one unordered communicating pair with combined traffic.
type UndirectedEdge struct {
	A, B Node
	Counters
}

// UndirectedEdges returns every unordered pair with combined counters, in
// deterministic order.
func (g *Graph) UndirectedEdges() []UndirectedEdge {
	edges := make([]UndirectedEdge, 0, g.edges)
	for src, m := range g.out {
		for dst, e := range m {
			// Emit each unordered pair once: from the lesser node, or
			// from src when the reverse edge doesn't exist.
			if dst.Less(src) {
				if rm := g.out[dst]; rm != nil && rm[src] != nil {
					continue // reverse edge will emit it
				}
			}
			ue := UndirectedEdge{A: src, B: dst, Counters: e.Counters}
			if rev := g.OutEdge(dst, src); rev != nil {
				ue.Counters.Add(rev.Counters)
			}
			if dst.Less(src) {
				ue.A, ue.B = ue.B, ue.A
			}
			edges = append(edges, ue)
		}
	}
	sort.Slice(edges, func(i, j int) bool {
		if edges[i].A != edges[j].A {
			return edges[i].A.Less(edges[j].A)
		}
		return edges[i].B.Less(edges[j].B)
	})
	return edges
}

// EachOut calls fn for every directed edge. Iteration order is unspecified;
// use Nodes/UndirectedEdges when determinism matters.
func (g *Graph) EachOut(fn func(src, dst Node, e *Edge)) {
	for src, m := range g.out {
		for dst, e := range m {
			fn(src, dst, e)
		}
	}
}

// Subgraph returns the induced subgraph over keep, sharing edge pointers
// with g (it is a view for analysis, not an independent copy).
func (g *Graph) Subgraph(keep map[Node]bool) *Graph {
	sub := New(g.Facet)
	sub.Start, sub.End = g.Start, g.End
	for n := range g.nodes {
		if keep[n] {
			sub.AddNode(n)
		}
	}
	for src, m := range g.out {
		if !keep[src] {
			continue
		}
		for dst, e := range m {
			if keep[dst] {
				sub.addDirected(src, dst, e.Counters)
			}
		}
	}
	return sub
}

// Density returns edges / possible undirected pairs.
func (g *Graph) Density() float64 {
	n := len(g.nodes)
	if n < 2 {
		return 0
	}
	return float64(g.edges) / (float64(n) * float64(n-1) / 2)
}
