// Package graph implements the paper's central data structure: complete,
// dynamic, multi-faceted communication graphs built from connection-summary
// telemetry. Nodes can be IP addresses, {IP, port} tuples, or services
// (§1, "Multi-faceted"); edges carry byte, packet and connection counters
// plus an optional per-interval time series, so one graph embeds the
// dynamics of the communication it summarizes.
package graph

import (
	"fmt"
	"net/netip"
)

// Facet selects the node granularity of a communication graph.
type Facet int

const (
	// FacetIP keys nodes by IP address (the paper's default).
	FacetIP Facet = iota
	// FacetIPPort keys nodes by {IP, port} tuple; these graphs are at
	// least an order of magnitude larger (§2.1 footnote).
	FacetIPPort
	// FacetService keys nodes by service name via a Labeler.
	FacetService
	// FacetEndpoint keys the service side of each flow by {IP, port} and
	// the client side by IP alone (the side with the lower port is taken
	// as the service). It separates multiple services co-located on one
	// VM — §2.1's "resources may have multiple roles" concern — without
	// the full IP-port graph's ephemeral-port explosion.
	FacetEndpoint
)

// String returns the facet name.
func (f Facet) String() string {
	switch f {
	case FacetIP:
		return "ip"
	case FacetIPPort:
		return "ip-port"
	case FacetService:
		return "service"
	case FacetEndpoint:
		return "endpoint"
	}
	return fmt.Sprintf("facet(%d)", int(f))
}

// Node identifies one vertex of a communication graph. It is comparable and
// used directly as a map key. Exactly the fields relevant to the facet are
// set: Addr for FacetIP; Addr+Port for FacetIPPort; Name for FacetService
// and for synthetic nodes such as the heavy-hitter collapse bucket.
type Node struct {
	Addr netip.Addr
	Port uint16
	Name string
}

// IPNode returns the FacetIP node for addr.
func IPNode(addr netip.Addr) Node { return Node{Addr: addr} }

// IPPortNode returns the FacetIPPort node for addr:port.
func IPPortNode(addr netip.Addr, port uint16) Node { return Node{Addr: addr, Port: port} }

// ServiceNode returns the FacetService node for a named service.
func ServiceNode(name string) Node { return Node{Name: name} }

// Collapsed is the synthetic node that absorbs every peer below the
// heavy-hitter threshold (§3.2: IPs contributing less than 0.1% of bytes,
// packets or connections are collapsed together).
var Collapsed = Node{Name: "(other)"}

// IsCollapsed reports whether n is the collapse bucket.
func (n Node) IsCollapsed() bool { return n == Collapsed }

// String renders the node for logs and DOT output.
func (n Node) String() string {
	switch {
	case n.Name != "":
		return n.Name
	case n.Port != 0:
		return netip.AddrPortFrom(n.Addr, n.Port).String()
	case n.Addr.IsValid():
		return n.Addr.String()
	}
	return "(invalid)"
}

// Less orders nodes deterministically: by name, then address, then port.
func (n Node) Less(m Node) bool {
	if n.Name != m.Name {
		return n.Name < m.Name
	}
	if c := n.Addr.Compare(m.Addr); c != 0 {
		return c < 0
	}
	return n.Port < m.Port
}

// Labeler maps an address to a service name for FacetService graphs.
// Returning "" leaves the node keyed by its address string.
type Labeler func(addr netip.Addr) string

// Metric selects which edge counter an analysis weighs by.
type Metric int

const (
	// Bytes weighs edges by bytes exchanged.
	Bytes Metric = iota
	// Packets weighs edges by packets exchanged.
	Packets
	// Conns weighs edges by number of distinct flows.
	Conns
)

// String returns the metric name.
func (m Metric) String() string {
	switch m {
	case Bytes:
		return "bytes"
	case Packets:
		return "packets"
	case Conns:
		return "connections"
	}
	return fmt.Sprintf("metric(%d)", int(m))
}
