package graph

// CollapseOptions configures heavy-hitter collapsing.
type CollapseOptions struct {
	// Threshold is the minimum share (of total bytes, packets or
	// connections — any one suffices) a node must contribute to stay
	// distinct. The paper uses 0.1% (0.001).
	Threshold float64
	// Keep, when non-nil, marks nodes that are never collapsed regardless
	// of traffic share — typically the monitored VMs of the subscription.
	Keep func(Node) bool
}

// DefaultCollapseThreshold is the paper's 0.1% rule (§3.2).
const DefaultCollapseThreshold = 0.001

// Collapse returns a new graph in which every node below the traffic-share
// threshold is merged into the single Collapsed node. This is the paper's
// mitigation for the many-remote-IPs problem: "remote IPs and ephemeral
// ports that do not individually account for a sizable share of traffic are
// collapsed together" (§3.2). Edge time series are not preserved on the
// collapsed graph.
func (g *Graph) Collapse(opts CollapseOptions) *Graph {
	if opts.Threshold <= 0 {
		opts.Threshold = DefaultCollapseThreshold
	}
	total := g.TotalTraffic()
	keep := make(map[Node]bool, g.NumNodes())
	g.EachNode(func(n Node) {
		keep[n] = g.significant(n, total, opts)
	})
	out := New(g.Facet)
	out.Start, out.End = g.Start, g.End
	for n, k := range keep {
		if k {
			out.AddNode(n)
		}
	}
	mapNode := func(n Node) Node {
		if keep[n] {
			return n
		}
		return Collapsed
	}
	g.EachOut(func(src, dst Node, e *Edge) {
		ms, md := mapNode(src), mapNode(dst)
		if ms == md {
			// Traffic entirely inside the collapse bucket (or a
			// self-loop) disappears, like the paper's aggregate node.
			return
		}
		out.addDirected(ms, md, e.Counters)
	})
	return out
}

// significant reports whether n exceeds the share threshold on any metric,
// or is protected by Keep.
func (g *Graph) significant(n Node, total Counters, opts CollapseOptions) bool {
	if opts.Keep != nil && opts.Keep(n) {
		return true
	}
	// Each unit of traffic involves two endpoints, so a node's share is
	// computed against the total (node strength sums to 2x total).
	check := func(strength, tot uint64) bool {
		if tot == 0 {
			return false
		}
		return float64(strength) >= opts.Threshold*float64(2*tot)
	}
	return check(g.NodeStrength(n, Bytes), total.Bytes) ||
		check(g.NodeStrength(n, Packets), total.Packets) ||
		check(g.NodeStrength(n, Conns), total.Conns)
}
