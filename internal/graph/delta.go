package graph

import "sort"

// Delta captures what changed between two graphs of the same facet — the
// paper's "what changed?" historical analysis (§1, "Dynamic").
type Delta struct {
	AddedNodes   []Node
	RemovedNodes []Node
	AddedPairs   []UndirectedEdge // pairs that communicate only in the new graph
	RemovedPairs []UndirectedEdge // pairs that communicate only in the old graph
	// ByteChange is the relative L1 change in pairwise byte counts:
	// sum |new - old| / max(1, sum old), a scalar drift score.
	ByteChange float64
}

// Diff computes the delta from old to new.
func Diff(old, new *Graph) Delta {
	var d Delta
	new.EachNode(func(n Node) {
		if !old.HasNode(n) {
			d.AddedNodes = append(d.AddedNodes, n)
		}
	})
	old.EachNode(func(n Node) {
		if !new.HasNode(n) {
			d.RemovedNodes = append(d.RemovedNodes, n)
		}
	})
	sort.Slice(d.AddedNodes, func(i, j int) bool { return d.AddedNodes[i].Less(d.AddedNodes[j]) })
	sort.Slice(d.RemovedNodes, func(i, j int) bool { return d.RemovedNodes[i].Less(d.RemovedNodes[j]) })

	type pair struct{ a, b Node }
	oldPairs := make(map[pair]uint64)
	for _, e := range old.UndirectedEdges() {
		oldPairs[pair{e.A, e.B}] = e.Bytes
	}
	var l1 float64
	var oldTotal float64
	for _, v := range oldPairs {
		oldTotal += float64(v)
	}
	seen := make(map[pair]bool)
	for _, e := range new.UndirectedEdges() {
		p := pair{e.A, e.B}
		seen[p] = true
		if oldBytes, ok := oldPairs[p]; ok {
			diff := float64(e.Bytes) - float64(oldBytes)
			if diff < 0 {
				diff = -diff
			}
			l1 += diff
		} else {
			d.AddedPairs = append(d.AddedPairs, e)
			l1 += float64(e.Bytes)
		}
	}
	for _, e := range old.UndirectedEdges() {
		if !seen[pair{e.A, e.B}] {
			d.RemovedPairs = append(d.RemovedPairs, e)
			l1 += float64(e.Bytes)
		}
	}
	if oldTotal < 1 {
		oldTotal = 1
	}
	d.ByteChange = l1 / oldTotal
	return d
}
