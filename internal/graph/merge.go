package graph

import "sort"

// Merge folds other's nodes, edges and series into g. Counters accumulate;
// series are concatenated and re-sorted by interval start. Both graphs must
// share a facet; the window expands to cover both. Merge is how parallel
// partial aggregations (internal/ingest) combine into one graph.
func (g *Graph) Merge(other *Graph) {
	for n := range other.nodes {
		g.AddNode(n)
	}
	other.EachOut(func(src, dst Node, e *Edge) {
		me := g.addDirected(src, dst, e.Counters)
		if len(e.Series) > 0 {
			me.Series = append(me.Series, e.Series...)
			sort.Slice(me.Series, func(i, j int) bool {
				return me.Series[i].Start.Before(me.Series[j].Start)
			})
		}
	})
	if g.Start.IsZero() || (!other.Start.IsZero() && other.Start.Before(g.Start)) {
		g.Start = other.Start
	}
	if other.End.After(g.End) {
		g.End = other.End
	}
}
