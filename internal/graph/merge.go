package graph

// Merge folds other's nodes, edges and series into g. Counters accumulate;
// series samples covering the same interval start are summed, the rest are
// interleaved in start order. Both graphs must share a facet; the window
// expands to cover both. Merge is how parallel partial aggregations
// (internal/ingest, the engine's cross-shard fold) combine into one graph.
// Either side may be frozen: g thaws on first mutation, other is only read.
func (g *Graph) Merge(other *Graph) {
	other.EachNode(g.AddNode)
	other.EachOut(func(src, dst Node, e *Edge) {
		me := g.addDirected(src, dst, e.Counters)
		if len(e.Series) > 0 {
			me.Series = mergeSamples(me.Series, e.Series)
		}
	})
	if g.Start.IsZero() || (!other.Start.IsZero() && other.Start.Before(g.Start)) {
		g.Start = other.Start
	}
	if other.End.After(g.End) {
		g.End = other.End
	}
}

// mergeSamples merges two per-edge series sorted by interval start into one.
// Samples whose Start buckets collide are summed, not duplicated: sharded
// partials of the same window both carry the same directed edge's interval,
// and concatenating them would double the sample count while Diff against a
// serial build stays empty only if the buckets fold. Both inputs must be
// sorted ascending by Start (the builder emits them that way); the result is
// too.
func mergeSamples(a, b []Sample) []Sample {
	if len(a) == 0 {
		return append([]Sample(nil), b...)
	}
	out := make([]Sample, 0, len(a)+len(b))
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i].Start.Before(b[j].Start):
			out = append(out, a[i])
			i++
		case b[j].Start.Before(a[i].Start):
			out = append(out, b[j])
			j++
		default:
			s := a[i]
			s.Counters.Add(b[j].Counters)
			out = append(out, s)
			i++
			j++
		}
	}
	out = append(out, a[i:]...)
	out = append(out, b[j:]...)
	return out
}
