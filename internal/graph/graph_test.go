package graph

import (
	"net/netip"
	"testing"
	"time"

	"cloudgraph/internal/flowlog"
)

var (
	ipA = netip.MustParseAddr("10.0.0.1")
	ipB = netip.MustParseAddr("10.0.0.2")
	ipC = netip.MustParseAddr("10.0.0.3")
	ipX = netip.MustParseAddr("203.0.113.9")
	t0  = time.Unix(1700000000, 0).UTC().Truncate(time.Minute)
)

func TestNodeString(t *testing.T) {
	cases := []struct {
		n    Node
		want string
	}{
		{IPNode(ipA), "10.0.0.1"},
		{IPPortNode(ipA, 443), "10.0.0.1:443"},
		{ServiceNode("frontend"), "frontend"},
		{Collapsed, "(other)"},
		{Node{}, "(invalid)"},
	}
	for _, c := range cases {
		if got := c.n.String(); got != c.want {
			t.Errorf("String() = %q, want %q", got, c.want)
		}
	}
}

func TestNodeLessTotalOrder(t *testing.T) {
	ns := []Node{IPNode(ipA), IPNode(ipB), IPPortNode(ipA, 1), IPPortNode(ipA, 2), ServiceNode("a"), ServiceNode("b")}
	for i := range ns {
		for j := range ns {
			li, lj := ns[i].Less(ns[j]), ns[j].Less(ns[i])
			if i == j && (li || lj) {
				t.Errorf("node %v Less itself", ns[i])
			}
			if i != j && li == lj {
				t.Errorf("Less not antisymmetric for %v, %v", ns[i], ns[j])
			}
		}
	}
}

func TestAddEdgeAndCounts(t *testing.T) {
	g := New(FacetIP)
	a, b, c := IPNode(ipA), IPNode(ipB), IPNode(ipC)
	g.AddEdge(a, b, Counters{Bytes: 100, Packets: 10, Conns: 1})
	g.AddEdge(b, a, Counters{Bytes: 50, Packets: 5})
	g.AddEdge(a, c, Counters{Bytes: 7, Packets: 1, Conns: 1})

	if g.NumNodes() != 3 {
		t.Errorf("NumNodes = %d, want 3", g.NumNodes())
	}
	if g.NumEdges() != 2 {
		t.Errorf("NumEdges = %d, want 2 (unordered pairs)", g.NumEdges())
	}
	if got := g.PairCounters(a, b); got.Bytes != 150 || got.Packets != 15 {
		t.Errorf("PairCounters(a,b) = %+v", got)
	}
	if g.Degree(a) != 2 || g.Degree(c) != 1 {
		t.Errorf("degrees wrong: a=%d c=%d", g.Degree(a), g.Degree(c))
	}
	if got := g.NodeStrength(a, Bytes); got != 157 {
		t.Errorf("NodeStrength(a, Bytes) = %d, want 157", got)
	}
}

func TestUndirectedEdgesDedup(t *testing.T) {
	g := New(FacetIP)
	a, b := IPNode(ipA), IPNode(ipB)
	g.AddEdge(a, b, Counters{Bytes: 100})
	g.AddEdge(b, a, Counters{Bytes: 40})
	edges := g.UndirectedEdges()
	if len(edges) != 1 {
		t.Fatalf("UndirectedEdges len = %d, want 1", len(edges))
	}
	if edges[0].Bytes != 140 {
		t.Errorf("combined bytes = %d, want 140", edges[0].Bytes)
	}
	if !edges[0].A.Less(edges[0].B) {
		t.Error("undirected edge endpoints not canonically ordered")
	}
}

func TestUndirectedEdgesOneWay(t *testing.T) {
	g := New(FacetIP)
	// Only b->a exists; it must still be emitted exactly once.
	g.AddEdge(IPNode(ipB), IPNode(ipA), Counters{Bytes: 9})
	edges := g.UndirectedEdges()
	if len(edges) != 1 || edges[0].Bytes != 9 {
		t.Fatalf("one-way UndirectedEdges = %+v", edges)
	}
}

func buildRecords() []flowlog.Record {
	// One flow A<->B double-reported, one flow A<->X single-reported.
	rAB := flowlog.Record{
		Time: t0, LocalIP: ipA, LocalPort: 50000, RemoteIP: ipB, RemotePort: 8080,
		PacketsSent: 10, PacketsRcvd: 6, BytesSent: 5000, BytesRcvd: 300,
	}
	rAX := flowlog.Record{
		Time: t0, LocalIP: ipA, LocalPort: 443, RemoteIP: ipX, RemotePort: 40000,
		PacketsSent: 2, PacketsRcvd: 3, BytesSent: 200, BytesRcvd: 900,
	}
	return []flowlog.Record{rAB, rAB.Reverse(), rAX}
}

func TestBuilderDeduplicatesDoubleReports(t *testing.T) {
	g := Build(buildRecords(), BuilderOptions{Facet: FacetIP})
	if g.NumNodes() != 3 {
		t.Fatalf("NumNodes = %d, want 3", g.NumNodes())
	}
	ab := g.PairCounters(IPNode(ipA), IPNode(ipB))
	if ab.Bytes != 5300 {
		t.Errorf("A<->B bytes = %d, want 5300 (not double counted)", ab.Bytes)
	}
	if ab.Conns != 1 {
		t.Errorf("A<->B conns = %d, want 1", ab.Conns)
	}
	// Direction check: find directed edge carrying 5000 from A to B.
	var aToB uint64
	if e := g.OutEdge(IPNode(ipA), IPNode(ipB)); e != nil {
		aToB = e.Bytes
	}
	var bToA uint64
	if e := g.OutEdge(IPNode(ipB), IPNode(ipA)); e != nil {
		bToA = e.Bytes
	}
	if aToB+bToA != 5300 || (aToB != 5000 && bToA != 5000) {
		t.Errorf("directed split wrong: a->b=%d b->a=%d", aToB, bToA)
	}
}

func TestBuilderIntervalFlushAndSeries(t *testing.T) {
	b := NewBuilder(BuilderOptions{Facet: FacetIP, KeepSeries: true})
	rec := flowlog.Record{
		Time: t0, LocalIP: ipA, LocalPort: 1, RemoteIP: ipB, RemotePort: 2,
		PacketsSent: 1, BytesSent: 100,
	}
	b.Add(rec)
	rec.Time = t0.Add(time.Minute)
	b.Add(rec)
	rec.Time = t0.Add(2 * time.Minute)
	b.Add(rec)
	g := b.Finish()

	pair := g.PairCounters(IPNode(ipA), IPNode(ipB))
	if pair.Bytes != 300 || pair.Conns != 3 {
		t.Errorf("pair counters = %+v, want 300 bytes / 3 conns", pair)
	}
	var e *Edge
	if e = g.OutEdge(IPNode(ipA), IPNode(ipB)); e == nil {
		e = g.OutEdge(IPNode(ipB), IPNode(ipA))
	}
	if e == nil || len(e.Series) != 3 {
		t.Fatalf("series not kept per interval: %+v", e)
	}
	if e.Series[1].Start != t0.Add(time.Minute) {
		t.Errorf("series[1].Start = %v", e.Series[1].Start)
	}
	if g.Start != t0 || g.End != t0.Add(3*time.Minute) {
		t.Errorf("window = [%v, %v]", g.Start, g.End)
	}
}

func TestBuilderFacetIPPort(t *testing.T) {
	g := Build(buildRecords(), BuilderOptions{Facet: FacetIPPort})
	// IP-port facet keeps ports distinct: nodes are A:50000, B:8080, A:443, X:40000.
	if g.NumNodes() != 4 {
		t.Errorf("NumNodes = %d, want 4", g.NumNodes())
	}
	if !g.HasNode(IPPortNode(ipA, 443)) {
		t.Error("missing IP-port node 10.0.0.1:443")
	}
}

func TestBuilderFacetService(t *testing.T) {
	label := func(a netip.Addr) string {
		switch a {
		case ipA:
			return "frontend"
		case ipB:
			return "backend"
		}
		return ""
	}
	g := Build(buildRecords(), BuilderOptions{Facet: FacetService, Label: label})
	if !g.HasNode(ServiceNode("frontend")) || !g.HasNode(ServiceNode("backend")) {
		t.Fatal("service nodes missing")
	}
	// Unlabeled external collapses to its IP string.
	if !g.HasNode(ServiceNode(ipX.String())) {
		t.Error("unlabeled external should key by address string")
	}
}

func TestBuilderIgnoresInvalid(t *testing.T) {
	b := NewBuilder(BuilderOptions{})
	b.Add(flowlog.Record{})
	if g := b.Finish(); g.NumNodes() != 0 || b.Records() != 0 {
		t.Error("invalid record should be ignored")
	}
}

func TestCollapseHeavyHitters(t *testing.T) {
	g := New(FacetIP)
	hub := IPNode(ipA)
	g.AddEdge(hub, IPNode(ipB), Counters{Bytes: 1_000_000, Packets: 1000, Conns: 10})
	// 2000 tiny remote clients, each well under 0.1% of total traffic.
	for i := 0; i < 2000; i++ {
		client := IPNode(netip.AddrFrom4([4]byte{198, 18, byte(i >> 8), byte(i)}))
		g.AddEdge(client, hub, Counters{Bytes: 10, Packets: 1, Conns: 1})
	}
	c := g.Collapse(CollapseOptions{Threshold: DefaultCollapseThreshold})
	// hub, B and the single collapse bucket should remain.
	if c.NumNodes() != 3 {
		t.Fatalf("collapsed NumNodes = %d, want 3", c.NumNodes())
	}
	if !c.HasNode(Collapsed) {
		t.Fatal("collapse bucket missing")
	}
	bucket := c.PairCounters(Collapsed, hub)
	if bucket.Bytes != 20000 || bucket.Conns != 2000 {
		t.Errorf("bucket counters = %+v, want 20000 bytes / 2000 conns", bucket)
	}
	// Total traffic is preserved (nothing was internal to the bucket).
	if got, want := c.TotalTraffic().Bytes, g.TotalTraffic().Bytes; got != want {
		t.Errorf("total bytes changed by collapse: %d != %d", got, want)
	}
}

func TestCollapseKeepsProtectedNodes(t *testing.T) {
	g := New(FacetIP)
	g.AddEdge(IPNode(ipA), IPNode(ipB), Counters{Bytes: 1_000_000})
	tiny := IPNode(ipC)
	g.AddEdge(tiny, IPNode(ipA), Counters{Bytes: 1})
	c := g.Collapse(CollapseOptions{Keep: func(n Node) bool { return n == tiny }})
	if !c.HasNode(tiny) {
		t.Error("protected node was collapsed")
	}
	if c.HasNode(Collapsed) {
		t.Error("no unprotected node should have been collapsed")
	}
}

func TestCollapseAnyMetricSuffices(t *testing.T) {
	g := New(FacetIP)
	g.AddEdge(IPNode(ipA), IPNode(ipB), Counters{Bytes: 1_000_000, Conns: 1})
	// ipC has negligible bytes but is a big share of connections.
	g.AddEdge(IPNode(ipC), IPNode(ipA), Counters{Bytes: 1, Conns: 50})
	c := g.Collapse(CollapseOptions{Threshold: 0.01})
	if !c.HasNode(IPNode(ipC)) {
		t.Error("node significant on connections should survive collapse")
	}
}

func TestAdjacencyMatrix(t *testing.T) {
	g := New(FacetIP)
	g.AddEdge(IPNode(ipA), IPNode(ipB), Counters{Bytes: 100})
	g.AddEdge(IPNode(ipB), IPNode(ipA), Counters{Bytes: 40})
	a := g.AdjacencyMatrix(Bytes)
	if a.N != 2 {
		t.Fatalf("N = %d", a.N)
	}
	// Order is sorted: ipA < ipB.
	if a.At(0, 1) != 100 || a.At(1, 0) != 40 {
		t.Errorf("matrix entries wrong: %v", a.M)
	}
	s := a.Symmetrized()
	if s[0*2+1] != 70 || s[1*2+0] != 70 {
		t.Errorf("symmetrized = %v, want 70 off-diagonal", s)
	}
}

func TestSubgraph(t *testing.T) {
	g := New(FacetIP)
	g.AddEdge(IPNode(ipA), IPNode(ipB), Counters{Bytes: 10})
	g.AddEdge(IPNode(ipB), IPNode(ipC), Counters{Bytes: 20})
	sub := g.Subgraph(map[Node]bool{IPNode(ipA): true, IPNode(ipB): true})
	if sub.NumNodes() != 2 || sub.NumEdges() != 1 {
		t.Errorf("subgraph = %d nodes / %d edges", sub.NumNodes(), sub.NumEdges())
	}
}

func TestDiff(t *testing.T) {
	old := New(FacetIP)
	old.AddEdge(IPNode(ipA), IPNode(ipB), Counters{Bytes: 100})
	old.AddEdge(IPNode(ipA), IPNode(ipC), Counters{Bytes: 50})
	cur := New(FacetIP)
	cur.AddEdge(IPNode(ipA), IPNode(ipB), Counters{Bytes: 150}) // changed
	cur.AddEdge(IPNode(ipA), IPNode(ipX), Counters{Bytes: 30})  // new pair + node

	d := Diff(old, cur)
	if len(d.AddedNodes) != 1 || d.AddedNodes[0] != IPNode(ipX) {
		t.Errorf("AddedNodes = %v", d.AddedNodes)
	}
	if len(d.RemovedNodes) != 1 || d.RemovedNodes[0] != IPNode(ipC) {
		t.Errorf("RemovedNodes = %v", d.RemovedNodes)
	}
	if len(d.AddedPairs) != 1 || len(d.RemovedPairs) != 1 {
		t.Errorf("pairs: +%d -%d, want +1 -1", len(d.AddedPairs), len(d.RemovedPairs))
	}
	// L1 = |150-100| + 30 (added) + 50 (removed) = 130 over oldTotal 150.
	want := 130.0 / 150.0
	if diff := d.ByteChange - want; diff > 1e-9 || diff < -1e-9 {
		t.Errorf("ByteChange = %v, want %v", d.ByteChange, want)
	}
}

func TestDiffIdentical(t *testing.T) {
	g := New(FacetIP)
	g.AddEdge(IPNode(ipA), IPNode(ipB), Counters{Bytes: 100})
	d := Diff(g, g)
	if d.ByteChange != 0 || len(d.AddedPairs)+len(d.RemovedPairs) != 0 {
		t.Errorf("Diff(g,g) = %+v, want empty", d)
	}
}

func TestStats(t *testing.T) {
	g := New(FacetIP)
	g.AddEdge(IPNode(ipA), IPNode(ipB), Counters{Bytes: 10, Packets: 1, Conns: 1})
	g.AddEdge(IPNode(ipA), IPNode(ipC), Counters{Bytes: 20, Packets: 2, Conns: 1})
	s := g.ComputeStats()
	if s.Nodes != 3 || s.Edges != 2 || s.MaxDeg != 2 || s.Bytes != 30 {
		t.Errorf("Stats = %+v", s)
	}
	wantDensity := 2.0 / 3.0
	if s.Density < wantDensity-1e-9 || s.Density > wantDensity+1e-9 {
		t.Errorf("Density = %v, want %v", s.Density, wantDensity)
	}
}

func TestDOTDeterministic(t *testing.T) {
	g := New(FacetIP)
	g.AddEdge(IPNode(ipA), IPNode(ipB), Counters{Bytes: 10})
	g.AddEdge(IPNode(ipC), IPNode(ipA), Counters{Bytes: 5})
	d1 := g.DOT(Bytes, map[Node]int{IPNode(ipA): 0, IPNode(ipB): 1, IPNode(ipC): 1})
	d2 := g.DOT(Bytes, map[Node]int{IPNode(ipA): 0, IPNode(ipB): 1, IPNode(ipC): 1})
	if d1 != d2 {
		t.Error("DOT output not deterministic")
	}
	if len(d1) == 0 || d1[:5] != "graph" {
		t.Errorf("DOT output malformed: %q", d1[:20])
	}
}

func TestBuilderLateRecordFoldedIn(t *testing.T) {
	b := NewBuilder(BuilderOptions{})
	rec := flowlog.Record{
		Time: t0.Add(time.Minute), LocalIP: ipA, LocalPort: 1, RemoteIP: ipB, RemotePort: 2,
		PacketsSent: 1, BytesSent: 100,
	}
	b.Add(rec)
	late := rec
	late.Time = t0 // older than current interval
	late.LocalPort = 3
	b.Add(late)
	g := b.Finish()
	if got := g.PairCounters(IPNode(ipA), IPNode(ipB)); got.Bytes != 200 {
		t.Errorf("late record dropped: bytes = %d, want 200", got.Bytes)
	}
}
