package graph

import (
	"math/rand"
	"net/netip"
	"reflect"
	"testing"
	"testing/quick"
	"time"

	"cloudgraph/internal/flowlog"
)

// randRecords builds a random but valid batch of records within one hour,
// with some flows double-reported, for invariant checking.
func randRecords(rng *rand.Rand) []flowlog.Record {
	n := 1 + rng.Intn(200)
	recs := make([]flowlog.Record, 0, n*2)
	base := time.Unix(1700000000, 0).UTC()
	for i := 0; i < n; i++ {
		a := netip.AddrFrom4([4]byte{10, 0, 0, byte(1 + rng.Intn(20))})
		b := netip.AddrFrom4([4]byte{10, 0, 1, byte(1 + rng.Intn(20))})
		r := flowlog.Record{
			Time:        base.Add(time.Duration(rng.Intn(60)) * time.Minute),
			LocalIP:     a,
			LocalPort:   uint16(1024 + rng.Intn(60000)),
			RemoteIP:    b,
			RemotePort:  uint16(1 + rng.Intn(1024)),
			PacketsSent: uint64(rng.Intn(1000)),
			PacketsRcvd: uint64(rng.Intn(1000)),
			BytesSent:   uint64(rng.Intn(1_000_000)),
			BytesRcvd:   uint64(rng.Intn(1_000_000)),
		}
		recs = append(recs, r)
		if rng.Intn(3) == 0 {
			recs = append(recs, r.Reverse())
		}
	}
	return recs
}

// sortByTime orders records chronologically, as the collection path would.
func sortByTime(recs []flowlog.Record) {
	for i := 1; i < len(recs); i++ {
		for j := i; j > 0 && recs[j].Time.Before(recs[j-1].Time); j-- {
			recs[j], recs[j-1] = recs[j-1], recs[j]
		}
	}
}

func TestPropertyNodeStrengthSumsToTwiceTotal(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		recs := randRecords(rng)
		sortByTime(recs)
		g := Build(recs, BuilderOptions{Facet: FacetIP})
		total := g.TotalTraffic()
		var sum Counters
		for _, n := range g.Nodes() {
			sum.Bytes += g.NodeStrength(n, Bytes)
			sum.Packets += g.NodeStrength(n, Packets)
			sum.Conns += g.NodeStrength(n, Conns)
		}
		return sum.Bytes == 2*total.Bytes && sum.Packets == 2*total.Packets && sum.Conns == 2*total.Conns
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestPropertyUndirectedEdgesMatchTotals(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		recs := randRecords(rng)
		sortByTime(recs)
		g := Build(recs, BuilderOptions{Facet: FacetIP})
		edges := g.UndirectedEdges()
		if len(edges) != g.NumEdges() {
			return false
		}
		var sum Counters
		for _, e := range edges {
			sum.Add(e.Counters)
		}
		return sum == g.TotalTraffic()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestPropertyDoubleReportingNeverInflates(t *testing.T) {
	// Building from records with every flow double-reported must yield
	// exactly the same totals as building from single reports.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		single := randRecords(rng)
		// Strip any double reports randRecords added, then mirror all.
		seen := make(map[flowlog.FlowKey]map[int64]bool)
		var clean []flowlog.Record
		for _, r := range single {
			k := r.Key()
			m := seen[k]
			if m == nil {
				m = make(map[int64]bool)
				seen[k] = m
			}
			minute := r.Time.Truncate(time.Minute).Unix()
			if m[minute] {
				continue
			}
			m[minute] = true
			clean = append(clean, r)
		}
		doubled := make([]flowlog.Record, 0, len(clean)*2)
		for _, r := range clean {
			doubled = append(doubled, r, r.Reverse())
		}
		sortByTime(clean)
		sortByTime(doubled)
		a := Build(clean, BuilderOptions{Facet: FacetIP})
		b := Build(doubled, BuilderOptions{Facet: FacetIP})
		return a.TotalTraffic() == b.TotalTraffic() && a.NumEdges() == b.NumEdges()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

func TestPropertyCollapsePreservesOrReducesTotals(t *testing.T) {
	// Collapse never invents traffic; it only drops intra-bucket traffic.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		recs := randRecords(rng)
		sortByTime(recs)
		g := Build(recs, BuilderOptions{Facet: FacetIP})
		c := g.Collapse(CollapseOptions{Threshold: 0.01})
		tg, tc := g.TotalTraffic(), c.TotalTraffic()
		return tc.Bytes <= tg.Bytes && tc.Packets <= tg.Packets &&
			tc.Conns <= tg.Conns && c.NumNodes() <= g.NumNodes()+1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestPropertyMergeEqualsSequentialBuild(t *testing.T) {
	// Splitting a record stream by flow key across two builders and
	// merging their graphs must equal one sequential build.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		recs := randRecords(rng)
		sortByTime(recs)
		whole := Build(recs, BuilderOptions{Facet: FacetIP})

		var partA, partB []flowlog.Record
		for _, r := range recs {
			if r.Key().A.Port()%2 == 0 {
				partA = append(partA, r)
			} else {
				partB = append(partB, r)
			}
		}
		merged := Build(partA, BuilderOptions{Facet: FacetIP})
		merged.Merge(Build(partB, BuilderOptions{Facet: FacetIP}))
		return merged.TotalTraffic() == whole.TotalTraffic() &&
			merged.NumNodes() == whole.NumNodes() &&
			merged.NumEdges() == whole.NumEdges()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

func TestPropertyDiffSymmetry(t *testing.T) {
	// Added/removed swap when diffing in the opposite direction, and
	// self-diff is empty.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		a := Build(randRecords(rng), BuilderOptions{Facet: FacetIP})
		b := Build(randRecords(rng), BuilderOptions{Facet: FacetIP})
		ab := Diff(a, b)
		ba := Diff(b, a)
		if len(ab.AddedNodes) != len(ba.RemovedNodes) || len(ab.RemovedNodes) != len(ba.AddedNodes) {
			return false
		}
		if len(ab.AddedPairs) != len(ba.RemovedPairs) || len(ab.RemovedPairs) != len(ba.AddedPairs) {
			return false
		}
		self := Diff(a, a)
		return self.ByteChange == 0 && len(self.AddedNodes) == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

func TestPropertyAdjacencyMatchesEdges(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		recs := randRecords(rng)
		sortByTime(recs)
		g := Build(recs, BuilderOptions{Facet: FacetIP})
		adj := g.AdjacencyMatrix(Bytes)
		var matSum float64
		for _, v := range adj.M {
			matSum += v
		}
		return uint64(matSum) == g.TotalTraffic().Bytes
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

func TestPropertyMergeSumsCollidingSeries(t *testing.T) {
	// Splitting a stream by flow key and merging KeepSeries builders must
	// reproduce the serial build's per-edge series exactly. Partials that
	// both carry the same directed edge in the same interval collide on
	// Sample.Start; the merge must sum that bucket, not emit it twice —
	// this is the window-boundary bug the sharded engine hits.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		recs := randRecords(rng)
		sortByTime(recs)
		whole := Build(recs, BuilderOptions{Facet: FacetIP, KeepSeries: true})

		var partA, partB []flowlog.Record
		for _, r := range recs {
			if r.Key().A.Port()%2 == 0 {
				partA = append(partA, r)
			} else {
				partB = append(partB, r)
			}
		}
		merged := Build(partA, BuilderOptions{Facet: FacetIP, KeepSeries: true})
		merged.Merge(Build(partB, BuilderOptions{Facet: FacetIP, KeepSeries: true}))

		if merged.NumDirectedEdges() != whole.NumDirectedEdges() {
			return false
		}
		ok := true
		whole.EachOut(func(src, dst Node, e *Edge) {
			me := merged.OutEdge(src, dst)
			if me == nil || !reflect.DeepEqual(me.Series, e.Series) {
				ok = false
			}
		})
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}
