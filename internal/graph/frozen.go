package graph

import "sort"

// frozen is the hypersparse CSR (compressed sparse row) form of a sealed
// window graph. The mutable map-backed representation is right for the open
// window — records arrive in any order and edges accumulate in place — but
// it costs two map entries plus a heap-allocated Edge per directed edge,
// which does not survive the ~100K-node subscriptions production windows
// reach. Once a window seals it is never mutated again (the timeline and
// consumer-bus contract), so the engine freezes it: nodes become one sorted
// slice whose index is the node id, out-edges become offset+column arrays
// with a parallel slab of per-edge counter blocks, and the in-direction is
// a CSC mirror that shares the slab. Every read accessor answers from the
// arrays; mutation thaws back to maps first (see Thaw), so the Graph API is
// unchanged either side of the seal.
//
// Layout, for n nodes and m directed edges:
//
//	nodes  [n]Node    sorted by Node.Less; index == node id
//	rowOff [n+1]int32 row i's out-edges live at [rowOff[i], rowOff[i+1])
//	cols   [m]int32   destination ids, ascending within each row
//	edges  [m]Edge    counter block (+series header) per directed edge
//	inOff  [n+1]int32 column j's in-edges live at [inOff[j], inOff[j+1])
//	inSrc  [m]int32   source ids, ascending within each column
//	inEdge [m]int32   index into edges for the mirrored directed edge
type frozen struct {
	nodes  []Node
	rowOff []int32
	cols   []int32
	edges  []Edge
	inOff  []int32
	inSrc  []int32
	inEdge []int32
}

// Frozen reports whether the graph is in its immutable CSR form.
func (g *Graph) Frozen() bool { return g.fz != nil }

// Freeze converts the graph to the CSR form, releasing the builder maps.
// Idempotent. Freeze is called by the engine when a window completes and by
// the timeline when a roll-up bucket seals; read accessors are unchanged,
// and a later mutation (AddEdge, Merge into it) transparently thaws.
func (g *Graph) Freeze() {
	if g.fz != nil {
		return
	}
	n := len(g.nodes)
	fz := &frozen{nodes: make([]Node, 0, n)}
	for node := range g.nodes {
		fz.nodes = append(fz.nodes, node)
	}
	sort.Slice(fz.nodes, func(i, j int) bool { return fz.nodes[i].Less(fz.nodes[j]) })
	id := make(map[Node]int32, n)
	for i, node := range fz.nodes {
		id[node] = int32(i)
	}

	var m int
	fz.rowOff = make([]int32, n+1)
	for src, row := range g.out {
		fz.rowOff[id[src]+1] = int32(len(row))
		m += len(row)
	}
	for i := 0; i < n; i++ {
		fz.rowOff[i+1] += fz.rowOff[i]
	}
	fz.cols = make([]int32, m)
	fz.edges = make([]Edge, m)
	fill := make([]int32, n)
	for src, row := range g.out {
		i := id[src]
		for dst, e := range row {
			k := fz.rowOff[i] + fill[i]
			fill[i]++
			fz.cols[k] = id[dst]
			fz.edges[k] = *e
		}
	}
	for i := 0; i < n; i++ {
		lo, hi := fz.rowOff[i], fz.rowOff[i+1]
		sort.Sort(&rowSorter{cols: fz.cols[lo:hi], edges: fz.edges[lo:hi]})
	}

	// CSC mirror from the sorted CSR: visiting rows in ascending order with
	// ascending columns inside each row delivers every column's sources
	// already ascending, so no second sort is needed.
	fz.inOff = make([]int32, n+1)
	for _, j := range fz.cols {
		fz.inOff[j+1]++
	}
	for i := 0; i < n; i++ {
		fz.inOff[i+1] += fz.inOff[i]
	}
	fz.inSrc = make([]int32, m)
	fz.inEdge = make([]int32, m)
	clear(fill)
	for i := 0; i < n; i++ {
		for k := fz.rowOff[i]; k < fz.rowOff[i+1]; k++ {
			j := fz.cols[k]
			p := fz.inOff[j] + fill[j]
			fill[j]++
			fz.inSrc[p] = int32(i)
			fz.inEdge[p] = k
		}
	}

	g.fz = fz
	g.out, g.in, g.nodes = nil, nil, nil
}

// Thaw converts back to the mutable map form. Idempotent. Series slices are
// carried over; the unordered-pair count is recomputed identically.
func (g *Graph) Thaw() {
	fz := g.fz
	if fz == nil {
		return
	}
	g.fz = nil
	g.out = make(map[Node]map[Node]*Edge, len(fz.nodes))
	g.in = make(map[Node]map[Node]*Edge, len(fz.nodes))
	g.nodes = make(map[Node]struct{}, len(fz.nodes))
	g.edges = 0
	for _, nd := range fz.nodes {
		g.nodes[nd] = struct{}{}
	}
	for i := range fz.nodes {
		for k := fz.rowOff[i]; k < fz.rowOff[i+1]; k++ {
			e := g.addDirected(fz.nodes[i], fz.nodes[fz.cols[k]], fz.edges[k].Counters)
			e.Series = fz.edges[k].Series
		}
	}
}

// thawForWrite makes the graph mutable before a mutation lands. The hot
// paths never hit it — builders and merge accumulators stay map-backed —
// so it exists for correctness, not speed.
func (g *Graph) thawForWrite() {
	if g.fz != nil {
		g.Thaw()
	}
}

// rowSorter sorts one CSR row's columns ascending, keeping the parallel
// edge slab in step.
type rowSorter struct {
	cols  []int32
	edges []Edge
}

func (r *rowSorter) Len() int           { return len(r.cols) }
func (r *rowSorter) Less(i, j int) bool { return r.cols[i] < r.cols[j] }
func (r *rowSorter) Swap(i, j int) {
	r.cols[i], r.cols[j] = r.cols[j], r.cols[i]
	r.edges[i], r.edges[j] = r.edges[j], r.edges[i]
}

// nodeID returns the id of n in the sorted node index, or (0, false).
func (fz *frozen) nodeID(n Node) (int32, bool) {
	lo, hi := 0, len(fz.nodes)
	for lo < hi {
		mid := (lo + hi) / 2
		if fz.nodes[mid].Less(n) {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo < len(fz.nodes) && fz.nodes[lo] == n {
		return int32(lo), true
	}
	return 0, false
}

// outIdx returns the slab index of the directed edge i->j, or -1.
func (fz *frozen) outIdx(i, j int32) int32 {
	lo, hi := fz.rowOff[i], fz.rowOff[i+1]
	for lo < hi {
		mid := (lo + hi) / 2
		if fz.cols[mid] < j {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo < fz.rowOff[i+1] && fz.cols[lo] == j {
		return lo
	}
	return -1
}

// outEdge returns the directed edge src->dst, or nil.
func (fz *frozen) outEdge(src, dst Node) *Edge {
	i, ok := fz.nodeID(src)
	if !ok {
		return nil
	}
	j, ok := fz.nodeID(dst)
	if !ok {
		return nil
	}
	if k := fz.outIdx(i, j); k >= 0 {
		return &fz.edges[k]
	}
	return nil
}

// degree counts the distinct neighbors of node id i by merging its sorted
// out-columns and in-sources — no allocation, unlike the map path.
func (fz *frozen) degree(i int32) int {
	out := fz.cols[fz.rowOff[i]:fz.rowOff[i+1]]
	in := fz.inSrc[fz.inOff[i]:fz.inOff[i+1]]
	var d, a, b int
	for a < len(out) || b < len(in) {
		switch {
		case b >= len(in) || (a < len(out) && out[a] < in[b]):
			a++
		case a >= len(out) || in[b] < out[a]:
			b++
		default:
			a++
			b++
		}
		d++
	}
	return d
}

// memBytes returns the exact heap footprint of the CSR arrays (node index,
// offsets, columns, edge slab, CSC mirror), excluding any edge series
// backing arrays, which both representations share.
func (fz *frozen) memBytes() int64 {
	const nodeSize = 48 // netip.Addr(24) + port(2)+pad + string header(16)
	const edgeSize = 48 // Counters(24) + series slice header(24)
	return int64(len(fz.nodes))*nodeSize +
		int64(len(fz.rowOff)+len(fz.inOff))*4 +
		int64(len(fz.cols)+len(fz.inSrc)+len(fz.inEdge))*4 +
		int64(len(fz.edges))*edgeSize
}
