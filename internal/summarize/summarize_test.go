package summarize

import (
	"math"
	"net/netip"
	"testing"
	"time"

	"cloudgraph/internal/flowlog"
	"cloudgraph/internal/graph"
)

func node(i int) graph.Node {
	return graph.IPNode(netip.AddrFrom4([4]byte{10, 0, byte(i >> 8), byte(i)}))
}

// skewedGraph: one hub carries almost all traffic to many spokes.
func skewedGraph(spokes int) *graph.Graph {
	g := graph.New(graph.FacetIP)
	hub := node(1)
	for i := 0; i < spokes; i++ {
		g.AddEdge(node(100+i), hub, graph.Counters{Bytes: 10, Packets: 1, Conns: 1})
	}
	g.AddEdge(hub, node(2), graph.Counters{Bytes: 1_000_000, Packets: 700, Conns: 3})
	return g
}

func TestCCDFShape(t *testing.T) {
	g := skewedGraph(100)
	pts := CCDF(g, graph.Bytes)
	if len(pts) != g.NumNodes() {
		t.Fatalf("points = %d, want %d", len(pts), g.NumNodes())
	}
	// Monotone: CCDF non-increasing, fraction increasing.
	for i := 1; i < len(pts); i++ {
		if pts[i].CCDF > pts[i-1].CCDF+1e-12 {
			t.Fatal("CCDF not non-increasing")
		}
		if pts[i].Fraction <= pts[i-1].Fraction {
			t.Fatal("fractions not increasing")
		}
	}
	if last := pts[len(pts)-1]; last.CCDF > 1e-12 || last.Fraction != 1 {
		t.Errorf("curve should end at (1, 0): %+v", last)
	}
	// Skew: a tiny node fraction carries 90% of bytes.
	if f := FractionForShare(pts, 0.9); f > 0.05 {
		t.Errorf("top %.2f%% of nodes needed for 90%% of bytes, want few", 100*f)
	}
}

func TestCCDFEmpty(t *testing.T) {
	if pts := CCDF(graph.New(graph.FacetIP), graph.Bytes); pts != nil {
		t.Errorf("empty graph CCDF = %v", pts)
	}
}

func TestHubsDetection(t *testing.T) {
	g := skewedGraph(50)
	hubs := Hubs(g, 0.5)
	if len(hubs) != 1 {
		t.Fatalf("hubs = %+v, want exactly the hub", hubs)
	}
	if hubs[0].Node != node(1) {
		t.Errorf("wrong hub: %v", hubs[0].Node)
	}
	if hubs[0].Degree != 51 {
		t.Errorf("hub degree = %d, want 51", hubs[0].Degree)
	}
	if hubs[0].ByteShare < 0.99 {
		t.Errorf("hub byte share = %v", hubs[0].ByteShare)
	}
}

func TestHubsTinyGraph(t *testing.T) {
	g := graph.New(graph.FacetIP)
	g.AddEdge(node(1), node(2), graph.Counters{Bytes: 1})
	if hubs := Hubs(g, 0.5); hubs != nil {
		t.Errorf("2-node graph should have no hubs: %+v", hubs)
	}
}

func TestChattyCliques(t *testing.T) {
	g := graph.New(graph.FacetIP)
	// A 5-clique exchanging heavy traffic.
	for i := 0; i < 5; i++ {
		for j := i + 1; j < 5; j++ {
			g.AddEdge(node(i+1), node(j+1), graph.Counters{Bytes: 100_000, Packets: 70, Conns: 5})
		}
	}
	// Background noise.
	for i := 0; i < 30; i++ {
		g.AddEdge(node(200+i), node(300+i), graph.Counters{Bytes: 50, Packets: 1, Conns: 1})
	}
	cliques := ChattyCliques(g, 3, 0.5, 0.01)
	if len(cliques) != 1 {
		t.Fatalf("cliques = %d, want 1", len(cliques))
	}
	c := cliques[0]
	if len(c.Members) != 5 {
		t.Errorf("clique members = %v, want the 5-clique", c.Members)
	}
	if c.Density != 1 {
		t.Errorf("clique density = %v, want 1", c.Density)
	}
	if c.ByteShare < 0.99 {
		t.Errorf("byte share = %v", c.ByteShare)
	}
}

func TestChattyCliquesEmptyAndSparse(t *testing.T) {
	if c := ChattyCliques(graph.New(graph.FacetIP), 3, 0.5, 0.01); c != nil {
		t.Errorf("empty graph cliques = %v", c)
	}
	// A pure star is not a clique: spokes don't interconnect.
	g := skewedGraph(20)
	for _, c := range ChattyCliques(g, 3, 0.8, 0.01) {
		if len(c.Members) > 2 {
			t.Errorf("star graph produced clique %v", c.Members)
		}
	}
}

func TestSummarizeHeadline(t *testing.T) {
	s := Summarize(skewedGraph(100))
	if s.Headline == "" || s.Stats.Nodes != 102 {
		t.Errorf("summary = %+v", s.Stats)
	}
	if len(s.Hubs) != 1 {
		t.Errorf("summary hubs = %d", len(s.Hubs))
	}
}

func TestScoreWindowsFlagsSpike(t *testing.T) {
	mk := func(extra uint64) *graph.Graph {
		g := graph.New(graph.FacetIP)
		g.AddEdge(node(1), node(2), graph.Counters{Bytes: 1000})
		g.AddEdge(node(1), node(3), graph.Counters{Bytes: 1000})
		if extra > 0 {
			g.AddEdge(node(1), node(99), graph.Counters{Bytes: extra})
		}
		return g
	}
	windows := []*graph.Graph{mk(0), mk(0), mk(0), mk(0), mk(0), mk(50_000)}
	scores := ScoreWindows(windows, AnomalyOptions{})
	for i := 0; i < 5; i++ {
		if scores[i].Anomalous {
			t.Errorf("steady window %d flagged", i)
		}
	}
	last := scores[5]
	if !last.Anomalous {
		t.Errorf("spike window not flagged: %+v", last)
	}
	if last.NewPairs != 1 {
		t.Errorf("NewPairs = %d, want 1", last.NewPairs)
	}
}

func TestScoreWindowsNoHistoryNoFlag(t *testing.T) {
	g1 := graph.New(graph.FacetIP)
	g1.AddEdge(node(1), node(2), graph.Counters{Bytes: 10})
	g2 := graph.New(graph.FacetIP)
	g2.AddEdge(node(1), node(9), graph.Counters{Bytes: 99999})
	scores := ScoreWindows([]*graph.Graph{g1, g2}, AnomalyOptions{})
	if scores[1].Anomalous {
		t.Error("flagged without enough history")
	}
	if scores[1].Drift == 0 {
		t.Error("drift should be nonzero")
	}
}

func TestMeanStdFloor(t *testing.T) {
	mean, sd := meanStd([]float64{0.5, 0.5, 0.5})
	if mean != 0.5 {
		t.Errorf("mean = %v", mean)
	}
	if sd != 1e-3 {
		t.Errorf("sd floor = %v, want 1e-3", sd)
	}
	_, sd2 := meanStd([]float64{0, 10})
	if math.Abs(sd2-5) > 1e-9 {
		t.Errorf("sd = %v, want 5", sd2)
	}
}

func TestFractionForShareDegenerate(t *testing.T) {
	if f := FractionForShare(nil, 0.5); f != 1 {
		t.Errorf("empty curve: %v", f)
	}
}

func scanRecs(src netip.Addr, ports int, base uint16) []flowlog.Record {
	t0 := time.Unix(1700000000, 0).UTC()
	recs := make([]flowlog.Record, 0, ports)
	dst := netip.MustParseAddr("10.0.0.99")
	for i := 0; i < ports; i++ {
		recs = append(recs, flowlog.Record{
			Time: t0, LocalIP: src, LocalPort: uint16(40000 + i),
			RemoteIP: dst, RemotePort: base + uint16(i),
			PacketsSent: 2, BytesSent: 120,
		})
	}
	return recs
}

func TestPortFanouts(t *testing.T) {
	src := netip.MustParseAddr("10.0.0.1")
	recs := scanRecs(src, 50, 100)
	// Duplicate ports must not double count.
	recs = append(recs, recs[0])
	fans := PortFanouts(recs)
	if len(fans) != 1 || fans[0].DistinctPorts != 50 || fans[0].LowPorts != 50 {
		t.Fatalf("fanouts = %+v", fans)
	}
}

func TestDetectScansFlagsScanner(t *testing.T) {
	src := netip.MustParseAddr("10.0.0.1")
	quiet := netip.MustParseAddr("10.0.0.2")
	baseline := append(scanRecs(src, 3, 100), scanRecs(quiet, 3, 100)...)
	window := append(scanRecs(src, 80, 100), scanRecs(quiet, 3, 100)...)
	suspects := DetectScans(baseline, window, 20)
	if len(suspects) != 1 {
		t.Fatalf("suspects = %+v", suspects)
	}
	if suspects[0].Source != graph.IPNode(src) || suspects[0].WindowPorts != 80 {
		t.Errorf("suspect = %+v", suspects[0])
	}
}

func TestDetectScansIgnoresHighPorts(t *testing.T) {
	src := netip.MustParseAddr("10.0.0.3")
	// Many distinct *ephemeral* remote ports (e.g. a server's replies)
	// are not a scan signature.
	window := scanRecs(src, 80, 40000)
	if got := DetectScans(nil, window, 20); len(got) != 0 {
		t.Errorf("high-port fanout flagged: %+v", got)
	}
}
