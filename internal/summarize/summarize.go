// Package summarize implements the succinct-summary analyses of §2.2:
// CCDFs of traffic concentration (Figure 6), mining the canonical patterns
// visible in the adjacency matrices of Figure 4 (chatty cliques, hub and
// spoke), executive summaries ("80% of the bytes in your network are doing
// X"), and the hour-over-hour anomaly scoring that Figure 5's timelapse
// motivates.
package summarize

import (
	"fmt"
	"sort"

	"cloudgraph/internal/graph"
)

// CCDFPoint is one point of Figure 6: after sorting nodes by traffic
// descending, the top Fraction of nodes carry 1-CCDF of the bytes; CCDF is
// the share of total traffic NOT covered by the top Fraction of nodes.
type CCDFPoint struct {
	Fraction float64 // fraction of nodes (x axis)
	CCDF     float64 // remaining traffic share (y axis, log scale in paper)
}

// CCDF computes the traffic-concentration curve for metric m: "a few nodes
// account for most of the traffic". The curve is evaluated after each node
// in descending-traffic order.
func CCDF(g *graph.Graph, m graph.Metric) []CCDFPoint {
	nodes := g.Nodes()
	if len(nodes) == 0 {
		return nil
	}
	strengths := make([]uint64, 0, len(nodes))
	var total float64
	for _, n := range nodes {
		s := g.NodeStrength(n, m)
		strengths = append(strengths, s)
		total += float64(s)
	}
	sort.Slice(strengths, func(i, j int) bool { return strengths[i] > strengths[j] })
	out := make([]CCDFPoint, 0, len(strengths))
	var cum float64
	for i, s := range strengths {
		cum += float64(s)
		ccdf := 1 - cum/total
		if ccdf < 0 {
			ccdf = 0
		}
		out = append(out, CCDFPoint{
			Fraction: float64(i+1) / float64(len(strengths)),
			CCDF:     ccdf,
		})
	}
	return out
}

// FractionForShare returns the smallest fraction of nodes that carries at
// least the given share of traffic — the "where to invest more capacity"
// headline (e.g. 1% of nodes carry 90% of bytes).
func FractionForShare(points []CCDFPoint, share float64) float64 {
	for _, p := range points {
		if 1-p.CCDF >= share {
			return p.Fraction
		}
	}
	return 1
}

// Hub is a hub-and-spoke pattern: one node exchanging traffic with many
// others. Hubs are "likely to be control plane components such as job
// managers, k8s api servers, cloud stores or telemetry sinks".
type Hub struct {
	Node       graph.Node
	Degree     int
	ByteShare  float64 // of total graph bytes
	SpokeShare float64 // degree / (nodes-1)
}

// Hubs returns nodes whose degree covers at least minSpokeShare of the
// graph, sorted by degree descending.
func Hubs(g *graph.Graph, minSpokeShare float64) []Hub {
	n := g.NumNodes()
	if n < 3 {
		return nil
	}
	total := float64(g.TotalTraffic().Bytes)
	var out []Hub
	for _, node := range g.Nodes() {
		deg := g.Degree(node)
		spoke := float64(deg) / float64(n-1)
		if spoke >= minSpokeShare {
			h := Hub{Node: node, Degree: deg, SpokeShare: spoke}
			if total > 0 {
				// Share of all bytes the hub touches (a perfect hub
				// that is an endpoint of every edge scores 1).
				h.ByteShare = float64(g.NodeStrength(node, graph.Bytes)) / total
			}
			out = append(out, h)
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Degree != out[j].Degree {
			return out[i].Degree > out[j].Degree
		}
		return out[i].Node.Less(out[j].Node)
	})
	return out
}

// Clique is a chatty-clique pattern: a set of nodes exchanging large
// amounts of data among each other.
type Clique struct {
	Members []graph.Node
	// InternalBytes is the traffic among members; Density is the filled
	// fraction of member pairs.
	InternalBytes uint64
	Density       float64
	// ByteShare is InternalBytes over the graph total.
	ByteShare float64
}

// ChattyCliques finds dense heavy subgraphs greedily: seeds are the
// heaviest edges; a seed grows by adding the node with the most bytes to
// the current members while pair density stays above minDensity. Cliques
// smaller than minSize or below minByteShare are dropped. The greedy
// approach mirrors how the banded blocks of Figure 4 pop out visually.
func ChattyCliques(g *graph.Graph, minSize int, minDensity, minByteShare float64) []Clique {
	if minSize < 3 {
		minSize = 3
	}
	total := float64(g.TotalTraffic().Bytes)
	//lint:allow floatcmp total is an exact uint64 byte count widened to float64; zero means an empty graph, not a rounding artifact
	if total == 0 {
		return nil
	}
	edges := g.UndirectedEdges()
	sort.Slice(edges, func(i, j int) bool {
		if edges[i].Bytes != edges[j].Bytes {
			return edges[i].Bytes > edges[j].Bytes
		}
		if edges[i].A != edges[j].A {
			return edges[i].A.Less(edges[j].A)
		}
		return edges[i].B.Less(edges[j].B)
	})
	used := make(map[graph.Node]bool)
	var out []Clique
	for _, seed := range edges {
		if used[seed.A] || used[seed.B] {
			continue
		}
		members := map[graph.Node]bool{seed.A: true, seed.B: true}
		for {
			best, bestBytes := graph.Node{}, uint64(0)
			candidates := make(map[graph.Node]bool)
			for m := range members {
				for c := range g.Neighbors(m) {
					if !members[c] && !used[c] {
						candidates[c] = true
					}
				}
			}
			for cand := range candidates {
				var toMembers uint64
				links := 0
				for m := range members {
					c := g.PairCounters(cand, m)
					if c.Bytes > 0 {
						toMembers += c.Bytes
						links++
					}
				}
				// Candidate must connect to enough members to keep the
				// grown set dense.
				newPairs := len(members) * (len(members) + 1) / 2
				if float64(pairsFilled(g, members)+links)/float64(newPairs) < minDensity {
					continue
				}
				if toMembers > bestBytes || (toMembers == bestBytes && toMembers > 0 && cand.Less(best)) {
					best, bestBytes = cand, toMembers
				}
			}
			if bestBytes == 0 || len(members) >= 64 {
				break
			}
			members[best] = true
		}
		if len(members) < minSize {
			continue
		}
		cl := materialize(g, members, total)
		if cl.ByteShare < minByteShare || cl.Density < minDensity {
			continue
		}
		for m := range members {
			used[m] = true
		}
		out = append(out, cl)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].InternalBytes > out[j].InternalBytes })
	return out
}

// pairsFilled counts member pairs with traffic.
func pairsFilled(g *graph.Graph, members map[graph.Node]bool) int {
	ms := make([]graph.Node, 0, len(members))
	for m := range members {
		ms = append(ms, m)
	}
	filled := 0
	for i := 0; i < len(ms); i++ {
		for j := i + 1; j < len(ms); j++ {
			if g.PairCounters(ms[i], ms[j]).Bytes > 0 {
				filled++
			}
		}
	}
	return filled
}

// materialize computes a Clique's stats.
func materialize(g *graph.Graph, members map[graph.Node]bool, totalBytes float64) Clique {
	ms := make([]graph.Node, 0, len(members))
	for m := range members {
		ms = append(ms, m)
	}
	sort.Slice(ms, func(i, j int) bool { return ms[i].Less(ms[j]) })
	var internal uint64
	filled := 0
	for i := 0; i < len(ms); i++ {
		for j := i + 1; j < len(ms); j++ {
			c := g.PairCounters(ms[i], ms[j])
			internal += c.Bytes
			if c.Bytes > 0 {
				filled++
			}
		}
	}
	pairs := len(ms) * (len(ms) - 1) / 2
	cl := Clique{Members: ms, InternalBytes: internal}
	if pairs > 0 {
		cl.Density = float64(filled) / float64(pairs)
	}
	if totalBytes > 0 {
		cl.ByteShare = float64(internal) / totalBytes
	}
	return cl
}

// Summary is an executive summary of one graph window.
type Summary struct {
	Stats    graph.Stats
	Hubs     []Hub
	Cliques  []Clique
	CCDF     []CCDFPoint
	Headline string
}

// Summarize builds the full succinct summary of a graph.
func Summarize(g *graph.Graph) Summary {
	s := Summary{
		Stats:   g.ComputeStats(),
		Hubs:    Hubs(g, 0.5),
		Cliques: ChattyCliques(g, 3, 0.5, 0.01),
		CCDF:    CCDF(g, graph.Bytes),
	}
	top10 := 1 - ccdfAt(s.CCDF, 0.1)
	var patternBytes float64
	for _, c := range s.Cliques {
		patternBytes += c.ByteShare
	}
	for _, h := range s.Hubs {
		patternBytes += h.ByteShare
	}
	if patternBytes > 1 {
		patternBytes = 1
	}
	s.Headline = fmt.Sprintf(
		"%d nodes, %d edges; top 10%% of nodes carry %.0f%% of bytes; %d hub(s) and %d chatty clique(s) explain %.0f%% of traffic",
		s.Stats.Nodes, s.Stats.Edges, 100*top10, len(s.Hubs), len(s.Cliques), 100*patternBytes)
	return s
}

// ccdfAt interpolates the CCDF at a node fraction.
func ccdfAt(points []CCDFPoint, frac float64) float64 {
	for _, p := range points {
		if p.Fraction >= frac {
			return p.CCDF
		}
	}
	if len(points) == 0 {
		return 0
	}
	return points[len(points)-1].CCDF
}
