package summarize

import (
	"math"

	"cloudgraph/internal/graph"
)

// Anomaly detection over a time series of graphs: the paper observes that a
// model capturing the key patterns of a window "may also be able to
// identify when the patterns change" (§2.2, Figure 5). We score each window
// against its predecessor with the relative L1 matrix change and flag
// windows whose drift exceeds the trailing baseline by several sigma.

// WindowScore is one window's drift assessment.
type WindowScore struct {
	Index int
	// Drift is the relative L1 change of pairwise byte counts vs the
	// previous window (graph.Diff.ByteChange).
	Drift float64
	// NewPairs and LostPairs count communicating pairs that appeared or
	// disappeared vs the previous window.
	NewPairs  int
	LostPairs int
	// Anomalous is set when Drift exceeds mean + Sigma·stddev of the
	// preceding windows' drifts (needs at least MinHistory predecessors).
	Anomalous bool
}

// AnomalyOptions tunes the detector.
type AnomalyOptions struct {
	// Sigma is the threshold in standard deviations (default 3).
	Sigma float64
	// MinHistory is how many prior drifts are needed before flagging
	// (default 3).
	MinHistory int
}

// ScoreWindows scores consecutive graphs. The first window has no
// predecessor and gets drift 0.
func ScoreWindows(windows []*graph.Graph, opts AnomalyOptions) []WindowScore {
	if opts.Sigma <= 0 {
		opts.Sigma = 3
	}
	if opts.MinHistory <= 0 {
		opts.MinHistory = 3
	}
	out := make([]WindowScore, len(windows))
	var history []float64
	for i := range windows {
		out[i].Index = i
		if i == 0 {
			continue
		}
		d := graph.Diff(windows[i-1], windows[i])
		out[i].Drift = d.ByteChange
		out[i].NewPairs = len(d.AddedPairs)
		out[i].LostPairs = len(d.RemovedPairs)
		if len(history) >= opts.MinHistory {
			mean, sd := meanStd(history)
			if out[i].Drift > mean+opts.Sigma*sd {
				out[i].Anomalous = true
			}
		}
		if !out[i].Anomalous {
			// Only normal windows update the baseline, so a sustained
			// attack doesn't poison its own detector.
			history = append(history, out[i].Drift)
		}
	}
	return out
}

func meanStd(xs []float64) (mean, sd float64) {
	for _, x := range xs {
		mean += x
	}
	mean /= float64(len(xs))
	for _, x := range xs {
		sd += (x - mean) * (x - mean)
	}
	sd = math.Sqrt(sd / float64(len(xs)))
	if sd < 1e-3 {
		sd = 1e-3 // floor: perfectly steady baselines still allow slack
	}
	return mean, sd
}
