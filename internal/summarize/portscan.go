package summarize

import (
	"sort"

	"cloudgraph/internal/flowlog"
	"cloudgraph/internal/graph"
)

// Port-fanout scan detection: when the IP-graph is dense (cluster meshes
// already connect most VM pairs) a port scan adds no new IP edges, but it
// explodes the set of distinct *destination ports* a source touches — the
// kind of signal only the finer IP-port facet carries (§2.1: "segmenting
// IP-port graphs may be more useful"). This detector works directly on the
// connection summaries, so it needs no full IP-port graph.

// PortFanout is one source's destination-port spread in a window.
type PortFanout struct {
	Source graph.Node
	// DistinctPorts is the number of distinct remote ports contacted.
	DistinctPorts int
	// LowPorts counts distinct contacted ports below 10240 — the
	// well-known/registered range scans sweep.
	LowPorts int
}

// PortFanouts computes per-source port spread from raw records. Only
// records where the source is the local (monitored) endpoint count, since
// scans originate from breached VMs.
func PortFanouts(recs []flowlog.Record) []PortFanout {
	type key struct {
		src  graph.Node
		port uint16
	}
	seen := make(map[key]struct{})
	distinct := make(map[graph.Node]int)
	low := make(map[graph.Node]int)
	for _, r := range recs {
		src := graph.IPNode(r.LocalIP)
		k := key{src: src, port: r.RemotePort}
		if _, ok := seen[k]; ok {
			continue
		}
		seen[k] = struct{}{}
		distinct[src]++
		if r.RemotePort < 10240 {
			low[src]++
		}
	}
	out := make([]PortFanout, 0, len(distinct))
	for src, n := range distinct {
		out = append(out, PortFanout{Source: src, DistinctPorts: n, LowPorts: low[src]})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].DistinctPorts != out[j].DistinctPorts {
			return out[i].DistinctPorts > out[j].DistinctPorts
		}
		return out[i].Source.Less(out[j].Source)
	})
	return out
}

// ScanSuspect is a source whose port fanout jumped against its baseline.
type ScanSuspect struct {
	Source        graph.Node
	BaselinePorts int
	WindowPorts   int
}

// DetectScans compares a window's port fanouts against a baseline window:
// a source is suspect when it contacts at least minNewPorts more distinct
// low ports than it did in the baseline. Sources unseen in the baseline
// are judged against zero.
func DetectScans(baseline, window []flowlog.Record, minNewPorts int) []ScanSuspect {
	if minNewPorts <= 0 {
		minNewPorts = 20
	}
	base := make(map[graph.Node]int)
	for _, f := range PortFanouts(baseline) {
		base[f.Source] = f.LowPorts
	}
	var out []ScanSuspect
	for _, f := range PortFanouts(window) {
		if f.LowPorts-base[f.Source] >= minNewPorts {
			out = append(out, ScanSuspect{
				Source:        f.Source,
				BaselinePorts: base[f.Source],
				WindowPorts:   f.LowPorts,
			})
		}
	}
	return out
}
