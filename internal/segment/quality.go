package segment

import (
	"math"

	"cloudgraph/internal/graph"
)

// Quality scores a segmentation against ground-truth role labels. The paper
// could only evaluate its segmentations through developer interviews; the
// synthetic clusters give us exact role labels, so Figure 1 vs Figure 3
// comparisons become quantitative.
type Quality struct {
	// ARI is the adjusted Rand index: 1 = identical partitions, ~0 =
	// random agreement, can go slightly negative.
	ARI float64
	// NMI is normalized mutual information in [0, 1].
	NMI float64
	// Purity is the fraction of nodes whose segment's majority role
	// matches their own.
	Purity float64
	// Segments and Roles are the partition sizes compared.
	Segments int
	Roles    int
	// Nodes is how many labelled nodes were scored.
	Nodes int
}

// Score compares assignment a against truth over the nodes present in both.
func Score(a Assignment, truth map[graph.Node]string) Quality {
	type cell struct{ seg, role int }
	segIDs := make(map[int]int)
	roleIDs := make(map[string]int)
	counts := make(map[cell]int)
	n := 0
	for node, seg := range a {
		role, ok := truth[node]
		if !ok {
			continue
		}
		si, ok := segIDs[seg]
		if !ok {
			si = len(segIDs)
			segIDs[seg] = si
		}
		ri, ok := roleIDs[role]
		if !ok {
			ri = len(roleIDs)
			roleIDs[role] = ri
		}
		counts[cell{si, ri}]++
		n++
	}
	q := Quality{Segments: len(segIDs), Roles: len(roleIDs), Nodes: n}
	if n == 0 {
		return q
	}

	segTot := make([]int, len(segIDs))
	roleTot := make([]int, len(roleIDs))
	for c, v := range counts {
		segTot[c.seg] += v
		roleTot[c.role] += v
	}

	// Purity: majority role per segment.
	majority := make([]int, len(segIDs))
	for c, v := range counts {
		if v > majority[c.seg] {
			majority[c.seg] = v
		}
	}
	correct := 0
	for _, v := range majority {
		correct += v
	}
	q.Purity = float64(correct) / float64(n)

	// Adjusted Rand index.
	choose2 := func(x int) float64 { return float64(x) * float64(x-1) / 2 }
	var sumCells, sumSeg, sumRole float64
	for _, v := range counts {
		sumCells += choose2(v)
	}
	for _, v := range segTot {
		sumSeg += choose2(v)
	}
	for _, v := range roleTot {
		sumRole += choose2(v)
	}
	total2 := choose2(n)
	expected := sumSeg * sumRole / total2
	maxIndex := (sumSeg + sumRole) / 2
	if maxIndex != expected {
		q.ARI = (sumCells - expected) / (maxIndex - expected)
	} else {
		q.ARI = 1 // both partitions trivial and identical in structure
	}

	// Normalized mutual information.
	var mi, hSeg, hRole float64
	fn := float64(n)
	for c, v := range counts {
		p := float64(v) / fn
		ps := float64(segTot[c.seg]) / fn
		pr := float64(roleTot[c.role]) / fn
		mi += p * math.Log(p/(ps*pr))
	}
	for _, v := range segTot {
		if v > 0 {
			p := float64(v) / fn
			hSeg -= p * math.Log(p)
		}
	}
	for _, v := range roleTot {
		if v > 0 {
			p := float64(v) / fn
			hRole -= p * math.Log(p)
		}
	}
	switch {
	case hSeg == 0 && hRole == 0:
		q.NMI = 1
	case hSeg == 0 || hRole == 0:
		q.NMI = 0
	default:
		q.NMI = mi / math.Sqrt(hSeg*hRole)
	}
	return q
}
