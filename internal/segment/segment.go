package segment

import (
	"fmt"
	"sort"

	"cloudgraph/internal/graph"
)

// Assignment maps each node to its µsegment id. Ids are dense, starting at
// 0, in deterministic order of first appearance over sorted nodes.
type Assignment map[graph.Node]int

// Segments returns the member lists, indexed by segment id, members sorted.
func (a Assignment) Segments() [][]graph.Node {
	max := -1
	for _, c := range a {
		if c > max {
			max = c
		}
	}
	out := make([][]graph.Node, max+1)
	for n, c := range a {
		out[c] = append(out[c], n)
	}
	for _, seg := range out {
		sort.Slice(seg, func(i, j int) bool { return seg[i].Less(seg[j]) })
	}
	return out
}

// NumSegments returns the number of distinct segments.
func (a Assignment) NumSegments() int {
	seen := make(map[int]struct{})
	for _, c := range a {
		seen[c] = struct{}{}
	}
	return len(seen)
}

// Strategy names an auto-segmentation algorithm, matching the paper's
// figures.
type Strategy string

const (
	// StrategyJaccardLouvain is the paper's own method (Figure 1):
	// Jaccard neighbor-overlap scores, Louvain on the scored clique.
	StrategyJaccardLouvain Strategy = "jaccard-louvain"
	// StrategyMinHashLouvain is the sketched variant addressing the
	// super-quadratic cost called out as an open issue.
	StrategyMinHashLouvain Strategy = "minhash-louvain"
	// StrategySimRank clusters plain SimRank scores (Figure 3a).
	StrategySimRank Strategy = "simrank"
	// StrategySimRankPP clusters SimRank++ scores (Figure 3b).
	StrategySimRankPP Strategy = "simrank++"
	// StrategyModularityConn is Louvain directly on the communication
	// graph weighted by connection counts (Figure 3c).
	StrategyModularityConn Strategy = "modularity-conn"
	// StrategyModularityBytes is Louvain weighted by bytes (Figure 3d).
	StrategyModularityBytes Strategy = "modularity-bytes"
)

// Strategies lists all implemented strategies in figure order.
func Strategies() []Strategy {
	return []Strategy{
		StrategyJaccardLouvain, StrategyMinHashLouvain,
		StrategySimRank, StrategySimRankPP,
		StrategyModularityConn, StrategyModularityBytes,
	}
}

// Options tunes segmentation.
type Options struct {
	// MinScore drops similarity-clique edges below this weight; keeps
	// the clique sparse. Default 0.02.
	MinScore float64
	// TopK keeps, for each node, only the edges to its TopK most similar
	// peers (an edge survives if either endpoint ranks it). Without it,
	// the mass of weak cross-role similarities drowns the sharp
	// within-role ones and Louvain finds only coarse macro-structure.
	// Default 6; negative disables the filter.
	TopK int
	// Resolution is the Louvain resolution parameter gamma (default 1 =
	// classic modularity; >1 yields more, finer segments). The paper
	// leaves the ideal segmentation granularity as an open question, so
	// this is the knob an operator would tune per subscription.
	Resolution float64
	// MinHashK is the sketch width for StrategyMinHashLouvain.
	MinHashK int
	// SimRank carries SimRank/SimRank++ parameters.
	SimRank SimRankOptions
}

func (o *Options) defaults() {
	if o.MinScore <= 0 {
		o.MinScore = 0.02
	}
	if o.TopK == 0 {
		o.TopK = 6
	}
	if o.MinHashK <= 0 {
		o.MinHashK = MinHashSize
	}
}

// Run applies the named strategy to the graph and returns the segmentation.
func Run(s Strategy, g *graph.Graph, opts Options) (Assignment, error) {
	opts.defaults()
	ix := newIndex(g)
	n := len(ix.nodes)
	if n == 0 {
		return Assignment{}, nil
	}
	var pairs []simPair
	similarity := true
	switch s {
	case StrategyJaccardLouvain:
		pairs = jaccardClique(neighborSets(g, ix), opts.MinScore)
	case StrategyMinHashLouvain:
		pairs = minhashClique(neighborSets(g, ix), opts.MinHashK, opts.MinScore)
	case StrategySimRank:
		scores := simRankScores(neighborSets(g, ix), opts.SimRank)
		pairs = scoresToPairs(scores, n, opts.MinScore)
	case StrategySimRankPP:
		sets := neighborSets(g, ix)
		scores := simRankPPScores(g, ix, sets, opts.SimRank)
		pairs = scoresToPairs(scores, n, opts.MinScore)
	case StrategyModularityConn:
		pairs = commPairs(g, ix, graph.Conns)
		similarity = false
	case StrategyModularityBytes:
		pairs = commPairs(g, ix, graph.Bytes)
		similarity = false
	default:
		return nil, fmt.Errorf("segment: unknown strategy %q", s)
	}
	if similarity && opts.TopK > 0 {
		pairs = topK(pairs, n, opts.TopK)
	}
	comm := louvain(newWGraph(n, pairs), 1e-9, opts.Resolution)
	return compact(ix, comm), nil
}

// topK sparsifies a similarity clique to a mutual-or kNN graph: an edge
// survives if it is among either endpoint's k strongest.
func topK(pairs []simPair, n, k int) []simPair {
	sort.Slice(pairs, func(i, j int) bool {
		if pairs[i].w != pairs[j].w {
			return pairs[i].w > pairs[j].w
		}
		if pairs[i].a != pairs[j].a {
			return pairs[i].a < pairs[j].a
		}
		return pairs[i].b < pairs[j].b
	})
	deg := make([]int, n)
	out := make([]simPair, 0, n*k)
	for _, p := range pairs {
		if deg[p.a] < k || deg[p.b] < k {
			out = append(out, p)
			deg[p.a]++
			deg[p.b]++
		}
	}
	return out
}

// commPairs converts the communication graph itself into weighted pairs —
// the modularity-based baselines cluster who-talks-to-whom directly, which
// is exactly why they group clients with servers instead of role peers
// ("nodes with the same role such as the front-end VMs may never talk to
// each other", §2.1).
func commPairs(g *graph.Graph, ix *index, m graph.Metric) []simPair {
	edges := g.UndirectedEdges()
	pairs := make([]simPair, 0, len(edges))
	for _, e := range edges {
		w := float64(e.Get(m))
		if w > 0 {
			pairs = append(pairs, simPair{a: ix.id[e.A], b: ix.id[e.B], w: w})
		}
	}
	return pairs
}

// compact converts a dense community slice into an Assignment with ids
// renumbered by first appearance over the sorted node order.
func compact(ix *index, comm []int) Assignment {
	relabel := make(map[int]int)
	out := make(Assignment, len(ix.nodes))
	for i, n := range ix.nodes {
		c := comm[i]
		id, ok := relabel[c]
		if !ok {
			id = len(relabel)
			relabel[c] = id
		}
		out[n] = id
	}
	return out
}

// Restrict returns the assignment limited to nodes for which keep is true
// (e.g. monitored VMs only), with ids re-compacted.
func (a Assignment) Restrict(keep func(graph.Node) bool) Assignment {
	nodes := make([]graph.Node, 0, len(a))
	for n := range a {
		if keep(n) {
			nodes = append(nodes, n)
		}
	}
	sort.Slice(nodes, func(i, j int) bool { return nodes[i].Less(nodes[j]) })
	relabel := make(map[int]int)
	out := make(Assignment, len(nodes))
	for _, n := range nodes {
		c := a[n]
		id, ok := relabel[c]
		if !ok {
			id = len(relabel)
			relabel[c] = id
		}
		out[n] = id
	}
	return out
}
