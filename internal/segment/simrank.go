package segment

import (
	"math"

	"cloudgraph/internal/graph"
)

// SimRank (Jeh & Widom) scores structural similarity recursively: two nodes
// are similar when their neighbors are similar. The paper notes that,
// uniquely, such recursive techniques can learn roles that are not obvious
// from a node's own communication — at higher cost than Jaccard scoring
// (§2.1).

// SimRankOptions configures SimRank and SimRank++.
type SimRankOptions struct {
	// C is the decay factor (0, 1); 0.8 is the classic default.
	C float64
	// Iterations bounds the fixed-point iteration; 5 is usually enough.
	Iterations int
	// Metric selects the edge weights used by SimRank++.
	Metric graph.Metric
}

func (o *SimRankOptions) defaults() {
	if o.C <= 0 || o.C >= 1 {
		o.C = 0.8
	}
	if o.Iterations <= 0 {
		o.Iterations = 5
	}
}

// simRankScores runs plain SimRank over undirected neighbor sets and
// returns the dense similarity matrix (row-major n×n).
func simRankScores(sets [][]int, opts SimRankOptions) []float64 {
	opts.defaults()
	n := len(sets)
	cur := make([]float64, n*n)
	next := make([]float64, n*n)
	for i := 0; i < n; i++ {
		cur[i*n+i] = 1
	}
	for it := 0; it < opts.Iterations; it++ {
		for i := 0; i < n; i++ {
			next[i*n+i] = 1
			for j := i + 1; j < n; j++ {
				ni, nj := sets[i], sets[j]
				var s float64
				if len(ni) > 0 && len(nj) > 0 {
					var sum float64
					for _, a := range ni {
						row := cur[a*n:]
						for _, b := range nj {
							sum += row[b]
						}
					}
					s = opts.C * sum / float64(len(ni)*len(nj))
				}
				next[i*n+j] = s
				next[j*n+i] = s
			}
		}
		cur, next = next, cur
	}
	return cur
}

// simRankPPScores runs SimRank++ (Antonellis et al.): SimRank extended with
// an evidence factor — pairs sharing more neighbors are trusted more — and
// edge-weight-aware propagation, so heavy conversations influence
// similarity more than trickles.
func simRankPPScores(g *graph.Graph, ix *index, sets [][]int, opts SimRankOptions) []float64 {
	opts.defaults()
	n := len(sets)

	// Normalized weights, stored as a slice parallel to sets[i] so the
	// O(n²·d²) inner loop stays free of map lookups:
	// wlist[i][k] = traffic(i, sets[i][k]) / Σ traffic(i, ·).
	wlist := make([][]float64, n)
	for i, node := range ix.nodes {
		ws := make([]float64, len(sets[i]))
		var total float64
		for k, aID := range sets[i] {
			w := float64(g.PairCounters(node, ix.nodes[aID]).Get(opts.Metric))
			ws[k] = w
			total += w
		}
		if total > 0 {
			for k := range ws {
				ws[k] /= total
			}
		} else if len(ws) > 0 {
			uniform := 1 / float64(len(ws))
			for k := range ws {
				ws[k] = uniform
			}
		}
		wlist[i] = ws
	}

	cur := make([]float64, n*n)
	next := make([]float64, n*n)
	for i := 0; i < n; i++ {
		cur[i*n+i] = 1
	}
	for it := 0; it < opts.Iterations; it++ {
		for i := 0; i < n; i++ {
			next[i*n+i] = 1
			ni, wi := sets[i], wlist[i]
			for j := i + 1; j < n; j++ {
				nj, wj := sets[j], wlist[j]
				var s float64
				if len(ni) > 0 && len(nj) > 0 {
					var sum float64
					for ai, a := range ni {
						wa := wi[ai]
						if wa == 0 {
							continue
						}
						row := cur[a*n:]
						for bi, b := range nj {
							sum += wa * wj[bi] * row[b]
						}
					}
					s = opts.C * sum * evidence(sets[i], sets[j])
				}
				next[i*n+j] = s
				next[j*n+i] = s
			}
		}
		cur, next = next, cur
	}
	return cur
}

// evidence returns 1 − 2^{−|common neighbors|}, the SimRank++ confidence
// factor: more shared witnesses, more trust.
func evidence(a, b []int) float64 {
	common := 0
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] == b[j]:
			common++
			i++
			j++
		case a[i] < b[j]:
			i++
		default:
			j++
		}
	}
	if common == 0 {
		return 0
	}
	return 1 - math.Pow(2, -float64(common))
}

// scoresToPairs converts a dense similarity matrix into clique pairs above
// minScore, for clustering.
func scoresToPairs(scores []float64, n int, minScore float64) []simPair {
	var pairs []simPair
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if w := scores[i*n+j]; w >= minScore {
				pairs = append(pairs, simPair{a: i, b: j, w: w})
			}
		}
	}
	return pairs
}
