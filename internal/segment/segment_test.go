package segment

import (
	"math/rand"
	"net/netip"
	"testing"
	"testing/quick"

	"cloudgraph/internal/graph"
)

func TestJaccard(t *testing.T) {
	cases := []struct {
		a, b []int
		want float64
	}{
		{[]int{1, 2, 3}, []int{1, 2, 3}, 1},
		{[]int{1, 2}, []int{3, 4}, 0},
		{[]int{1, 2, 3}, []int{2, 3, 4}, 0.5},
		{nil, nil, 0},
		{[]int{1}, nil, 0},
	}
	for _, c := range cases {
		if got := Jaccard(c.a, c.b); got != c.want {
			t.Errorf("Jaccard(%v, %v) = %v, want %v", c.a, c.b, got, c.want)
		}
	}
}

func TestJaccardSymmetricQuick(t *testing.T) {
	f := func(a, b []uint8) bool {
		sa := dedupSorted(a)
		sb := dedupSorted(b)
		return Jaccard(sa, sb) == Jaccard(sb, sa)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func dedupSorted(xs []uint8) []int {
	seen := make(map[int]bool)
	var out []int
	for _, x := range xs {
		if !seen[int(x)] {
			seen[int(x)] = true
			out = append(out, int(x))
		}
	}
	// insertion sort (tiny inputs)
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j] < out[j-1]; j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}

func TestMinHashApproximatesJaccard(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	for trial := 0; trial < 20; trial++ {
		n := 50 + rng.Intn(100)
		overlap := rng.Intn(n)
		a := make([]int, 0, n)
		b := make([]int, 0, n)
		for i := 0; i < overlap; i++ {
			a = append(a, i)
			b = append(b, i)
		}
		for i := overlap; i < n; i++ {
			a = append(a, 1000+i)
			b = append(b, 2000+i)
		}
		exact := Jaccard(a, b)
		est := minhashEstimate(minhashSig(a, 256), minhashSig(b, 256))
		if diff := est - exact; diff > 0.12 || diff < -0.12 {
			t.Errorf("trial %d: minhash est %v vs exact %v", trial, est, exact)
		}
	}
}

func TestLouvainTwoCliques(t *testing.T) {
	// Nodes 0-4 fully connected, nodes 5-9 fully connected, one weak
	// bridge. Louvain must find the two cliques.
	var pairs []simPair
	for i := 0; i < 5; i++ {
		for j := i + 1; j < 5; j++ {
			pairs = append(pairs, simPair{a: i, b: j, w: 1})
			pairs = append(pairs, simPair{a: i + 5, b: j + 5, w: 1})
		}
	}
	pairs = append(pairs, simPair{a: 0, b: 5, w: 0.01})
	g := newWGraph(10, pairs)
	comm := louvain(g, 1e-9, 1)
	for i := 1; i < 5; i++ {
		if comm[i] != comm[0] {
			t.Errorf("node %d not with clique A: %v", i, comm)
		}
		if comm[i+5] != comm[5] {
			t.Errorf("node %d not with clique B: %v", i+5, comm)
		}
	}
	if comm[0] == comm[5] {
		t.Errorf("cliques merged: %v", comm)
	}
	if q := modularity(g, comm); q < 0.3 {
		t.Errorf("modularity = %v, want high", q)
	}
}

func TestLouvainDeterministic(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	var pairs []simPair
	for i := 0; i < 200; i++ {
		pairs = append(pairs, simPair{a: rng.Intn(40), b: rng.Intn(40), w: rng.Float64()})
	}
	run := func() []int { return louvain(newWGraph(40, pairs), 1e-9, 1) }
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("louvain not deterministic")
		}
	}
}

func TestLouvainEmptyAndSingleton(t *testing.T) {
	if got := louvain(newWGraph(0, nil), 1e-9, 1); len(got) != 0 {
		t.Errorf("empty graph: %v", got)
	}
	if got := louvain(newWGraph(3, nil), 1e-9, 1); len(got) != 3 {
		t.Errorf("isolated nodes: %v", got)
	}
}

func TestEvidence(t *testing.T) {
	if e := evidence([]int{1, 2}, []int{3, 4}); e != 0 {
		t.Errorf("no common neighbors: evidence = %v", e)
	}
	if e := evidence([]int{1}, []int{1}); e != 0.5 {
		t.Errorf("one common: evidence = %v, want 0.5", e)
	}
	if e := evidence([]int{1, 2}, []int{1, 2}); e != 0.75 {
		t.Errorf("two common: evidence = %v, want 0.75", e)
	}
}

// roleGraph builds a graph with explicit role structure: role peers never
// talk to each other but share most of their peer sets, and every role has
// a distinguishing neighbor role. Fanout subsets make within-role overlap
// high but imperfect, like real deployments — the pattern that defeats
// modularity clustering but not neighbor-overlap clustering. Note that
// neighbor-set clustering can only recover *structural* roles: two roles
// with identical peer sets are indistinguishable by construction (one of
// the paper's admitted "key mistakes").
func roleGraph() (*graph.Graph, map[graph.Node]string) {
	g := graph.New(graph.FacetIP)
	truth := make(map[graph.Node]string)
	rng := rand.New(rand.NewSource(42))
	next := 1
	mkRole := func(role string, count int) []graph.Node {
		nodes := make([]graph.Node, count)
		for i := range nodes {
			nodes[i] = graph.IPNode(netip.AddrFrom4([4]byte{10, 0, 0, byte(next)}))
			next++
			truth[nodes[i]] = role
		}
		return nodes
	}
	lbs := mkRole("lb", 4)
	fes := mkRole("frontend", 12)
	bes := mkRole("backend", 10)
	dbs := mkRole("db", 8)
	caches := mkRole("cache", 6)
	backups := mkRole("backup", 4)

	connect := func(srcs, dsts []graph.Node, fanout int, c graph.Counters) {
		for _, s := range srcs {
			perm := rng.Perm(len(dsts))
			if fanout > len(dsts) {
				fanout = len(dsts)
			}
			for _, di := range perm[:fanout] {
				g.AddEdge(s, dsts[di], c)
			}
		}
	}
	heavy := graph.Counters{Bytes: 50_000, Packets: 40, Conns: 9}
	light := graph.Counters{Bytes: 2_000, Packets: 4, Conns: 2}
	connect(lbs, fes, 10, light)   // lb -> most frontends
	connect(fes, bes, 8, heavy)    // fe -> most backends
	connect(bes, dbs, 6, heavy)    // be -> most dbs
	connect(bes, caches, 5, light) // be -> caches
	connect(dbs, backups, 3, light)
	return g, truth
}

func TestJaccardLouvainRecoversRoles(t *testing.T) {
	g, truth := roleGraph()
	a, err := Run(StrategyJaccardLouvain, g, Options{})
	if err != nil {
		t.Fatal(err)
	}
	q := Score(a, truth)
	if q.ARI < 0.7 {
		t.Errorf("Jaccard-Louvain ARI = %v, want ≥0.7 on role graph (got %d segments)", q.ARI, q.Segments)
	}
	if q.Purity < 0.7 || q.NMI < 0.7 {
		t.Errorf("quality = %+v", q)
	}
	// A tighter kNN filter resolves the finest roles on this fixture.
	a4, err := Run(StrategyJaccardLouvain, g, Options{TopK: 4})
	if err != nil {
		t.Fatal(err)
	}
	if q4 := Score(a4, truth); q4.ARI < 0.8 {
		t.Errorf("Jaccard-Louvain(TopK=4) ARI = %v, want ≥0.8", q4.ARI)
	}
}

func TestMinHashLouvainApproximatesExact(t *testing.T) {
	g, truth := roleGraph()
	a, err := Run(StrategyMinHashLouvain, g, Options{MinHashK: 128})
	if err != nil {
		t.Fatal(err)
	}
	if q := Score(a, truth); q.ARI < 0.5 {
		t.Errorf("MinHash-Louvain ARI = %v, want ≥0.5", q.ARI)
	}
}

func TestModularityGroupsAcrossRoles(t *testing.T) {
	// The paper's Figure 3 point: modularity clustering groups nodes that
	// exchange data (frontend with backend), not role peers, so its
	// agreement with ground-truth roles must be clearly worse than the
	// Jaccard strategy's.
	g, truth := roleGraph()
	jac, err := Run(StrategyJaccardLouvain, g, Options{})
	if err != nil {
		t.Fatal(err)
	}
	mod, err := Run(StrategyModularityBytes, g, Options{})
	if err != nil {
		t.Fatal(err)
	}
	qj, qm := Score(jac, truth), Score(mod, truth)
	if qm.ARI >= qj.ARI {
		t.Errorf("modularity ARI %v should be below jaccard ARI %v", qm.ARI, qj.ARI)
	}
}

func TestSimRankStrategiesRun(t *testing.T) {
	g, truth := roleGraph()
	for _, s := range []Strategy{StrategySimRank, StrategySimRankPP} {
		a, err := Run(s, g, Options{SimRank: SimRankOptions{Iterations: 4}})
		if err != nil {
			t.Fatalf("%s: %v", s, err)
		}
		q := Score(a, truth)
		if q.Nodes != 44 {
			t.Errorf("%s scored %d nodes, want 44", s, q.Nodes)
		}
		// SimRank on this clean structure should still find role peers
		// similar (same neighborhoods).
		if q.Purity < 0.45 {
			t.Errorf("%s purity = %v, unexpectedly poor", s, q.Purity)
		}
	}
}

func TestRunUnknownStrategy(t *testing.T) {
	g, _ := roleGraph()
	if _, err := Run(Strategy("nope"), g, Options{}); err == nil {
		t.Error("want error for unknown strategy")
	}
}

func TestRunEmptyGraph(t *testing.T) {
	a, err := Run(StrategyJaccardLouvain, graph.New(graph.FacetIP), Options{})
	if err != nil || len(a) != 0 {
		t.Errorf("empty graph: %v, %v", a, err)
	}
}

func TestScorePerfectAndConstant(t *testing.T) {
	_, truth := roleGraph()
	perfect := make(Assignment)
	roleID := map[string]int{}
	for n, r := range truth {
		id, ok := roleID[r]
		if !ok {
			id = len(roleID)
			roleID[r] = id
		}
		perfect[n] = id
	}
	q := Score(perfect, truth)
	if q.ARI < 0.999 || q.NMI < 0.999 || q.Purity < 0.999 {
		t.Errorf("perfect assignment scored %+v", q)
	}
	// All-in-one segment: purity = largest role share; ARI near 0.
	constant := make(Assignment)
	for n := range truth {
		constant[n] = 0
	}
	qc := Score(constant, truth)
	if qc.ARI > 0.2 {
		t.Errorf("constant assignment ARI = %v, want ~0", qc.ARI)
	}
	if qc.Purity != 12.0/44.0 {
		t.Errorf("constant purity = %v, want 12/44", qc.Purity)
	}
}

func TestScoreIgnoresUnlabelled(t *testing.T) {
	g, truth := roleGraph()
	a, _ := Run(StrategyJaccardLouvain, g, Options{})
	extra := graph.ServiceNode("unlabelled")
	a[extra] = 99
	q := Score(a, truth)
	if q.Nodes != 44 {
		t.Errorf("unlabelled node counted: %d", q.Nodes)
	}
}

func TestAssignmentHelpers(t *testing.T) {
	a := Assignment{
		graph.ServiceNode("a"): 0,
		graph.ServiceNode("b"): 0,
		graph.ServiceNode("c"): 1,
	}
	if a.NumSegments() != 2 {
		t.Errorf("NumSegments = %d", a.NumSegments())
	}
	segs := a.Segments()
	if len(segs) != 2 || len(segs[0]) != 2 || len(segs[1]) != 1 {
		t.Errorf("Segments = %v", segs)
	}
	r := a.Restrict(func(n graph.Node) bool { return n.Name != "b" })
	if len(r) != 2 || r.NumSegments() != 2 {
		t.Errorf("Restrict = %v", r)
	}
}

func TestSegmentationDeterministic(t *testing.T) {
	g, _ := roleGraph()
	a1, _ := Run(StrategyJaccardLouvain, g, Options{})
	a2, _ := Run(StrategyJaccardLouvain, g, Options{})
	if len(a1) != len(a2) {
		t.Fatal("sizes differ")
	}
	for n, c := range a1 {
		if a2[n] != c {
			t.Fatalf("assignment differs at %v", n)
		}
	}
}

func TestResolutionControlsGranularity(t *testing.T) {
	g, _ := roleGraph()
	coarse, err := Run(StrategyJaccardLouvain, g, Options{Resolution: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	fine, err := Run(StrategyJaccardLouvain, g, Options{Resolution: 3})
	if err != nil {
		t.Fatal(err)
	}
	if fine.NumSegments() < coarse.NumSegments() {
		t.Errorf("higher resolution should not yield fewer segments: %d < %d",
			fine.NumSegments(), coarse.NumSegments())
	}
}
