package segment

// louvain implements the Louvain community-detection method (Blondel et
// al.): greedy local modularity optimization followed by graph aggregation,
// repeated until modularity stops improving. It is deterministic — nodes
// are visited in index order — so segmentations are reproducible.

// wgraph is an undirected weighted multigraph in adjacency-list form.
type wgraph struct {
	n    int
	adj  [][]wedge
	self []float64 // self-loop weight (from aggregation)
}

type wedge struct {
	to int
	w  float64
}

// newWGraph builds a wgraph from scored pairs.
func newWGraph(n int, pairs []simPair) *wgraph {
	g := &wgraph{n: n, adj: make([][]wedge, n), self: make([]float64, n)}
	for _, p := range pairs {
		if p.a == p.b {
			g.self[p.a] += p.w
			continue
		}
		g.adj[p.a] = append(g.adj[p.a], wedge{to: p.b, w: p.w})
		g.adj[p.b] = append(g.adj[p.b], wedge{to: p.a, w: p.w})
	}
	return g
}

// totalWeight returns m, the sum of edge weights (self-loops counted once).
func (g *wgraph) totalWeight() float64 {
	var m float64
	for i := 0; i < g.n; i++ {
		for _, e := range g.adj[i] {
			m += e.w
		}
		m += 2 * g.self[i]
	}
	return m / 2
}

// strength returns the weighted degree of node i (self-loops count twice).
func (g *wgraph) strength(i int) float64 {
	var s float64
	for _, e := range g.adj[i] {
		s += e.w
	}
	return s + 2*g.self[i]
}

// louvain returns a community id per node. minGain is the modularity
// improvement below which local moves stop (1e-9 is a sensible default);
// gamma is the resolution parameter (1 = classic modularity, higher values
// favour more, smaller communities — Reichardt–Bornholdt generalization).
func louvain(g *wgraph, minGain, gamma float64) []int {
	if gamma <= 0 {
		gamma = 1
	}
	// comm[i] is node i's community at the current level; mapping tracks
	// the composition across levels.
	assign := make([]int, g.n)
	for i := range assign {
		assign[i] = i
	}

	cur := g
	for level := 0; level < 64; level++ {
		local, moved := localMove(cur, minGain, gamma)
		if !moved && level > 0 {
			break
		}
		// Relabel communities densely.
		relabel := make(map[int]int)
		for _, c := range local {
			if _, ok := relabel[c]; !ok {
				relabel[c] = len(relabel)
			}
		}
		for i := range local {
			local[i] = relabel[local[i]]
		}
		// Compose with the running assignment.
		for i := range assign {
			assign[i] = local[assign[i]]
		}
		if len(relabel) == cur.n || !moved {
			break
		}
		cur = aggregate(cur, local, len(relabel))
	}
	return assign
}

// localMove runs phase one: repeatedly move nodes to the neighboring
// community with the best modularity gain until a full pass makes no move.
func localMove(g *wgraph, minGain, gamma float64) (comm []int, movedAny bool) {
	comm = make([]int, g.n)
	commTot := make([]float64, g.n) // Σ strength per community
	for i := 0; i < g.n; i++ {
		comm[i] = i
		commTot[i] = g.strength(i)
	}
	m := g.totalWeight()
	if m == 0 {
		return comm, false
	}

	// neighWeight[c] accumulates weight from the node under consideration
	// to community c; reset per node via touched list.
	neighWeight := make([]float64, g.n)
	touched := make([]int, 0, 16)

	for pass := 0; pass < 128; pass++ {
		movedThisPass := false
		for i := 0; i < g.n; i++ {
			ki := g.strength(i)
			ci := comm[i]
			// Gather weights to neighboring communities.
			touched = touched[:0]
			for _, e := range g.adj[i] {
				c := comm[e.to]
				if neighWeight[c] == 0 {
					touched = append(touched, c)
				}
				neighWeight[c] += e.w
			}
			// Remove i from its community.
			commTot[ci] -= ki
			best, bestGain := ci, 0.0
			// Gain of joining c: k_{i,c}/m − k_i·tot_c/(2m²), relative
			// to staying alone; compare against rejoining ci.
			base := neighWeight[ci] - gamma*ki*commTot[ci]/(2*m)
			for _, c := range touched {
				gain := neighWeight[c] - gamma*ki*commTot[c]/(2*m)
				if gain-base > bestGain+minGain {
					best, bestGain = c, gain-base
				}
			}
			commTot[best] += ki
			if best != ci {
				comm[i] = best
				movedThisPass = true
				movedAny = true
			}
			for _, c := range touched {
				neighWeight[c] = 0
			}
		}
		if !movedThisPass {
			break
		}
	}
	return comm, movedAny
}

// aggregate builds the level-up graph: one supernode per community, edge
// weights summed, intra-community weight becoming self-loops.
func aggregate(g *wgraph, comm []int, nComm int) *wgraph {
	out := &wgraph{n: nComm, adj: make([][]wedge, nComm), self: make([]float64, nComm)}
	type pairKey struct{ a, b int }
	acc := make(map[pairKey]float64)
	for i := 0; i < g.n; i++ {
		ci := comm[i]
		out.self[ci] += g.self[i]
		for _, e := range g.adj[i] {
			cj := comm[e.to]
			if ci == cj {
				// Each undirected edge appears twice in adj; halve.
				out.self[ci] += e.w / 2
				continue
			}
			if ci < cj {
				acc[pairKey{ci, cj}] += e.w
			}
		}
	}
	for k, w := range acc {
		out.adj[k.a] = append(out.adj[k.a], wedge{to: k.b, w: w})
		out.adj[k.b] = append(out.adj[k.b], wedge{to: k.a, w: w})
	}
	return out
}

// modularity computes Newman modularity Q of an assignment on g.
func modularity(g *wgraph, comm []int) float64 {
	m := g.totalWeight()
	if m == 0 {
		return 0
	}
	nc := 0
	for _, c := range comm {
		if c+1 > nc {
			nc = c + 1
		}
	}
	in := make([]float64, nc)  // intra-community weight
	tot := make([]float64, nc) // community strength
	for i := 0; i < g.n; i++ {
		ci := comm[i]
		tot[ci] += g.strength(i)
		in[ci] += 2 * g.self[i]
		for _, e := range g.adj[i] {
			if comm[e.to] == ci {
				in[ci] += e.w
			}
		}
	}
	var q float64
	for c := 0; c < nc; c++ {
		q += in[c]/(2*m) - (tot[c]/(2*m))*(tot[c]/(2*m))
	}
	return q
}
