// Package segment implements the paper's micro-segmentation analyses
// (§2.1): inferring the roles of cloud resources from their communication
// patterns. The paper's own method scores node pairs by the Jaccard overlap
// of their neighbor sets and clusters the scored clique with Louvain
// (Figure 1); the alternatives it compares against — SimRank, SimRank++,
// and modularity clustering weighted by connections or bytes — are
// implemented here too (Figure 3), along with quality metrics that score
// any segmentation against the generator's ground-truth roles.
package segment

import (
	"sort"

	"cloudgraph/internal/graph"
)

// index assigns dense integer ids to a graph's nodes in deterministic
// (sorted) order, the representation the algorithms work over.
type index struct {
	nodes []graph.Node
	id    map[graph.Node]int
}

func newIndex(g *graph.Graph) *index {
	nodes := g.Nodes()
	ix := &index{nodes: nodes, id: make(map[graph.Node]int, len(nodes))}
	for i, n := range nodes {
		ix.id[n] = i
	}
	return ix
}

// neighborSets returns each node's undirected neighbor id set, sorted.
func neighborSets(g *graph.Graph, ix *index) [][]int {
	sets := make([][]int, len(ix.nodes))
	for i, n := range ix.nodes {
		nb := g.Neighbors(n)
		ids := make([]int, 0, len(nb))
		for m := range nb {
			ids = append(ids, ix.id[m])
		}
		sort.Ints(ids)
		sets[i] = ids
	}
	return sets
}

// Jaccard returns |a∩b| / |a∪b| for sorted int slices. Two empty sets have
// similarity 0 (an isolated pair tells us nothing about shared role).
func Jaccard(a, b []int) float64 {
	if len(a) == 0 && len(b) == 0 {
		return 0
	}
	inter := 0
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] == b[j]:
			inter++
			i++
			j++
		case a[i] < b[j]:
			i++
		default:
			j++
		}
	}
	union := len(a) + len(b) - inter
	return float64(inter) / float64(union)
}

// simPair is one scored node pair of the similarity clique.
type simPair struct {
	a, b int
	w    float64
}

// jaccardClique scores every node pair by neighbor-set Jaccard overlap and
// returns pairs above minScore. This is the paper's "score each pair of
// nodes based on the overlap in their neighboring sets" step, with the
// super-quadratic cost the paper calls out as an open issue.
func jaccardClique(sets [][]int, minScore float64) []simPair {
	n := len(sets)
	var pairs []simPair
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if w := Jaccard(sets[i], sets[j]); w >= minScore {
				pairs = append(pairs, simPair{a: i, b: j, w: w})
			}
		}
	}
	return pairs
}

// MinHashSize is the default sketch width for approximate Jaccard.
const MinHashSize = 64

// minhashSig computes a k-permutation MinHash signature of a set of ids.
// Estimated Jaccard = fraction of colliding signature slots; this is the
// sketching mitigation (à la SuperMinHash) for the quadratic scoring cost.
func minhashSig(set []int, k int) []uint64 {
	sig := make([]uint64, k)
	for i := range sig {
		sig[i] = ^uint64(0)
	}
	for _, v := range set {
		x := uint64(v) + 1
		for i := 0; i < k; i++ {
			h := splitmix64(x + uint64(i)*0x9e3779b97f4a7c15)
			if h < sig[i] {
				sig[i] = h
			}
		}
	}
	return sig
}

// splitmix64 is a strong 64-bit mixer, deterministic across runs.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// minhashEstimate returns the estimated Jaccard of two signatures.
func minhashEstimate(a, b []uint64) float64 {
	match := 0
	for i := range a {
		if a[i] == b[i] && a[i] != ^uint64(0) {
			match++
		}
	}
	return float64(match) / float64(len(a))
}

// minhashClique is jaccardClique with sketched scores.
func minhashClique(sets [][]int, k int, minScore float64) []simPair {
	n := len(sets)
	sigs := make([][]uint64, n)
	for i, s := range sets {
		sigs[i] = minhashSig(s, k)
	}
	var pairs []simPair
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if w := minhashEstimate(sigs[i], sigs[j]); w >= minScore {
				pairs = append(pairs, simPair{a: i, b: j, w: w})
			}
		}
	}
	return pairs
}
