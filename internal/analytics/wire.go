package analytics

// Traced INGEST framing. The legacy batch — "INGEST <n>" followed by n
// bare 76-byte flowlog frames — stays exactly as it was, so old clients
// and recorded streams keep working byte for byte. A client that sampled
// records for tracing sends the flagged variant instead:
//
//	INGEST <n> T\n  followed by n flagged frames
//
// where each flagged frame is one flag byte, the 76-byte record, and —
// only when the flag says so — a 16-byte trace field:
//
//	0x00  plain record:  [flag][76-byte record]
//	0x01  traced record: [flag][76-byte record][8-byte trace ID][8-byte span ID]
//
// Trace IDs are little endian, matching the record encoding. Any other
// flag value is unrecoverable: the frame length is unknowable, so the
// reader cannot drain to the next command boundary and the connection
// must close (errDesync). A record that fails to decode inside a
// well-flagged frame is recoverable exactly like the legacy path — the
// flag still gives the frame length, so the reader drains the rest of the
// declared batch and answers ERR with the stream in sync.

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"

	"cloudgraph/internal/flowlog"
	"cloudgraph/internal/trace"
)

const (
	// frameFlagPlain marks a flagged frame carrying only the record.
	frameFlagPlain = 0x00
	// frameFlagTraced marks a flagged frame with the 16-byte trace field.
	frameFlagTraced = 0x01
	// traceFieldSize is the trace ID + span ID appendix.
	traceFieldSize = 16
)

// errDesync marks framing errors after which the byte stream cannot be
// re-synchronized; the server reports ERR and closes the connection.
var errDesync = errors.New("stream desynchronized")

// appendFlaggedFrame encodes one flagged frame for rec. A zero (unsampled)
// context emits the plain flag and no trace field.
func appendFlaggedFrame(buf []byte, rec flowlog.Record, tc trace.Context) []byte {
	if tc.Sampled() {
		buf = append(buf, frameFlagTraced)
		buf = flowlog.AppendBinary(buf, rec)
		buf = binary.LittleEndian.AppendUint64(buf, tc.TraceID)
		buf = binary.LittleEndian.AppendUint64(buf, tc.SpanID)
		return buf
	}
	buf = append(buf, frameFlagPlain)
	return flowlog.AppendBinary(buf, rec)
}

// readBatchFlagged reads a declared batch of n flagged frames into sc's
// reused buffers, returning the records and their parallel trace contexts
// (zero Context on plain frames). It keeps readBatch's drain invariant for
// every recoverable error: once a frame's flag byte fixes its length, the
// remaining frames of the batch are consumed even when a record fails to
// decode, so the stream stays command-aligned. Only short reads and unknown
// flag bytes (errDesync) leave the stream mid-batch, and both end the
// connection.
//
//vet:borrowed sc return
func readBatchFlagged(r io.Reader, n int, sc *connScratch) ([]flowlog.Record, []trace.Context, error) {
	if sc.batch == nil {
		pre := min(n, 4096) // don't let a huge declared count pre-allocate unboundedly
		sc.batch = make([]flowlog.Record, 0, pre)
	}
	batch, tcs := sc.batch[:0], sc.tcs[:0]
	var buf [flowlog.WireSize + traceFieldSize]byte
	var decodeErr error
	for i := 0; i < n; i++ {
		if _, err := io.ReadFull(r, buf[:1]); err != nil {
			sc.batch, sc.tcs = batch, tcs
			return nil, nil, fmt.Errorf("short ingest stream at record %d", i)
		}
		flag := buf[0]
		if flag != frameFlagPlain && flag != frameFlagTraced {
			sc.batch, sc.tcs = batch, tcs
			return nil, nil, fmt.Errorf("record %d: unknown frame flag 0x%02x: %w", i, flag, errDesync)
		}
		size := flowlog.WireSize
		if flag == frameFlagTraced {
			size += traceFieldSize
		}
		if _, err := io.ReadFull(r, buf[:size]); err != nil {
			sc.batch, sc.tcs = batch, tcs
			return nil, nil, fmt.Errorf("short ingest stream at record %d", i)
		}
		if decodeErr != nil {
			continue // draining the declared batch after a bad record
		}
		batch = nextSlot(batch)
		if err := flowlog.DecodeBinaryInto(&batch[len(batch)-1], buf[:flowlog.WireSize]); err != nil {
			batch = batch[:len(batch)-1]
			decodeErr = fmt.Errorf("record %d: %v", i, err)
			continue
		}
		var tc trace.Context
		if flag == frameFlagTraced {
			tc.TraceID = binary.LittleEndian.Uint64(buf[flowlog.WireSize:])
			tc.SpanID = binary.LittleEndian.Uint64(buf[flowlog.WireSize+8:])
		}
		tcs = append(tcs, tc)
	}
	sc.batch, sc.tcs = batch, tcs
	if decodeErr != nil {
		return nil, nil, decodeErr
	}
	return batch, tcs, nil
}
