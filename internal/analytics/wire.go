package analytics

// Traced INGEST framing. The legacy batch — "INGEST <n>" followed by n
// bare 76-byte flowlog frames — stays exactly as it was, so old clients
// and recorded streams keep working byte for byte. A client that sampled
// records for tracing or tags records with a tenant sends the flagged
// variant instead:
//
//	INGEST <n> T\n  followed by n flagged frames
//
// where each flagged frame is one flag byte, the 76-byte record, and the
// appendices the flag bits declare, in bit order:
//
//	0x00  plain record:  [flag][76-byte record]
//	0x01  traced record: [flag][76-byte record][8-byte trace ID][8-byte span ID]
//	0x02  tenant tag:    [flag][76-byte record][1-byte length][tenant name]
//	0x03  both:          [flag][76-byte record][16-byte trace field][tenant field]
//
// Trace IDs are little endian, matching the record encoding. The tenant
// field is a one-byte uvarint length followed by that many name bytes;
// realm.MaxNameLen (64) guarantees every legal length fits one varint
// byte, so a length byte with the continuation bit set (>= 0x80) or a
// zero length does not come from any writer we ever shipped and is
// treated as desync. Untagged frames (bit 0x02 clear) belong to the
// connection's session tenant — realm.DefaultTenant unless a TENANT
// command changed it — so single-tenant clients never pay the tag byte.
//
// Any flag above 0x03 is unrecoverable: the frame length is unknowable,
// so the reader cannot drain to the next command boundary and the
// connection must close (errDesync). A record that fails to decode
// inside a well-flagged frame — and a tenant name that is well-framed
// but invalid (too long, bad charset) — is recoverable exactly like the
// legacy path: the flag and length byte still fix the frame length, so
// the reader drains the rest of the declared batch and answers ERR with
// the stream in sync.

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"

	"cloudgraph/internal/flowlog"
	"cloudgraph/internal/realm"
	"cloudgraph/internal/trace"
)

const (
	// frameFlagPlain marks a flagged frame carrying only the record.
	frameFlagPlain = 0x00
	// frameFlagTraced sets the 16-byte trace field appendix.
	frameFlagTraced = 0x01
	// frameFlagTenant sets the tenant tag appendix.
	frameFlagTenant = 0x02
	// frameFlagMax is the highest valid flag (all bits known).
	frameFlagMax = frameFlagTraced | frameFlagTenant
	// traceFieldSize is the trace ID + span ID appendix.
	traceFieldSize = 16
)

// errDesync marks framing errors after which the byte stream cannot be
// re-synchronized; the server reports ERR and closes the connection.
var errDesync = errors.New("stream desynchronized")

// appendFlaggedFrame encodes one flagged frame for rec with no tenant
// tag. A zero (unsampled) context emits the plain flag and no trace
// field.
func appendFlaggedFrame(buf []byte, rec flowlog.Record, tc trace.Context) []byte {
	return appendTaggedFrame(buf, rec, tc, "")
}

// appendTaggedFrame encodes one flagged frame carrying rec, an optional
// trace context, and an optional tenant tag ("" emits no tag: the frame
// belongs to the receiver's session tenant). The tenant must already be
// realm.ValidName; the encoder panics on oversize names rather than emit
// a frame every reader rejects.
func appendTaggedFrame(buf []byte, rec flowlog.Record, tc trace.Context, tenant string) []byte {
	flag := byte(frameFlagPlain)
	if tc.Sampled() {
		flag |= frameFlagTraced
	}
	if tenant != "" {
		flag |= frameFlagTenant
		if len(tenant) > realm.MaxNameLen {
			panic(fmt.Sprintf("tenant tag %q exceeds MaxNameLen", tenant))
		}
	}
	buf = append(buf, flag)
	buf = flowlog.AppendBinary(buf, rec)
	if flag&frameFlagTraced != 0 {
		buf = binary.LittleEndian.AppendUint64(buf, tc.TraceID)
		buf = binary.LittleEndian.AppendUint64(buf, tc.SpanID)
	}
	if flag&frameFlagTenant != 0 {
		buf = append(buf, byte(len(tenant)))
		buf = append(buf, tenant...)
	}
	return buf
}

// internTenant returns the canonical string for a wire tenant name,
// reusing the per-connection table so a steady stream of tagged frames
// allocates each distinct name once. The map lookup keyed by
// string(name) does not allocate on the hit path.
func internTenant(sc *connScratch, name []byte) string {
	if s, ok := sc.names[string(name)]; ok {
		return s
	}
	if sc.names == nil {
		sc.names = make(map[string]string, 4)
	}
	s := string(name)
	sc.names[s] = s
	return s
}

// readBatchFlagged reads a declared batch of n flagged frames into sc's
// reused buffers, returning the records with their parallel trace
// contexts (zero Context on plain frames) and tenant tags ("" on
// untagged frames). It keeps readBatch's drain invariant for every
// recoverable error: once a frame's flag byte and tenant length byte fix
// its length, the remaining frames of the batch are consumed even when a
// record or tenant name fails validation, so the stream stays
// command-aligned. Only short reads, unknown flag bytes, and unframeable
// tenant lengths (errDesync) leave the stream mid-batch, and all end the
// connection.
//
//vet:borrowed sc return
func readBatchFlagged(r io.Reader, n int, sc *connScratch) ([]flowlog.Record, []trace.Context, []string, error) {
	if sc.batch == nil {
		pre := min(n, 4096) // don't let a huge declared count pre-allocate unboundedly
		sc.batch = make([]flowlog.Record, 0, pre)
	}
	batch, tcs, tenants := sc.batch[:0], sc.tcs[:0], sc.tenants[:0]
	// The name region is sized for the largest well-framed length (0x7f),
	// not MaxNameLen: an oversize name is a recoverable error and its
	// bytes still have to be drained.
	var buf [flowlog.WireSize + traceFieldSize + 1 + 0x7f]byte
	var decodeErr, failErr error
	failAt := -1
	// Mid-batch failures save the scratch inline rather than through a
	// helper closure: the buffers are borrowed, and a closure capturing
	// them would pin them heap-reachable past the call.
	for i := 0; i < n && failErr == nil; i++ {
		if _, err := io.ReadFull(r, buf[:1]); err != nil {
			failAt, failErr = i, errors.New("short ingest stream")
			break
		}
		flag := buf[0]
		if flag > frameFlagMax {
			failAt, failErr = i, fmt.Errorf("unknown frame flag 0x%02x: %w", flag, errDesync)
			break
		}
		size := flowlog.WireSize
		if flag&frameFlagTraced != 0 {
			size += traceFieldSize
		}
		if _, err := io.ReadFull(r, buf[:size]); err != nil {
			failAt, failErr = i, errors.New("short ingest stream")
			break
		}
		var name []byte
		if flag&frameFlagTenant != 0 {
			lb := buf[size : size+1]
			if _, err := io.ReadFull(r, lb); err != nil {
				failAt, failErr = i, errors.New("short ingest stream")
				break
			}
			// A continuation bit would mean a multi-byte varint length; no
			// legal name needs one (MaxNameLen = 64 < 0x80), so the frame
			// length is untrustworthy and the stream is lost. Zero-length
			// tags are equally unwritable: taggers omit the bit instead.
			if lb[0] == 0 || lb[0] >= 0x80 {
				failAt, failErr = i, fmt.Errorf("unframeable tenant length 0x%02x: %w", lb[0], errDesync)
				break
			}
			name = buf[size+1 : size+1+int(lb[0])]
			if _, err := io.ReadFull(r, name); err != nil {
				failAt, failErr = i, errors.New("short ingest stream")
				break
			}
		}
		if decodeErr != nil {
			continue // draining the declared batch after a bad record
		}
		if flag&frameFlagTenant != 0 && !realm.ValidNameBytes(name) {
			decodeErr = fmt.Errorf("record %d: invalid tenant tag %q", i, name)
			continue
		}
		batch = nextSlot(batch)
		if err := flowlog.DecodeBinaryInto(&batch[len(batch)-1], buf[:flowlog.WireSize]); err != nil {
			batch = batch[:len(batch)-1]
			decodeErr = fmt.Errorf("record %d: %v", i, err)
			continue
		}
		var tc trace.Context
		if flag&frameFlagTraced != 0 {
			tc.TraceID = binary.LittleEndian.Uint64(buf[flowlog.WireSize:])
			tc.SpanID = binary.LittleEndian.Uint64(buf[flowlog.WireSize+8:])
		}
		tcs = append(tcs, tc)
		tenant := ""
		if flag&frameFlagTenant != 0 {
			tenant = internTenant(sc, name)
		}
		tenants = append(tenants, tenant)
	}
	sc.batch, sc.tcs, sc.tenants = batch, tcs, tenants
	if failErr != nil {
		return nil, nil, nil, fmt.Errorf("record %d: %w", failAt, failErr)
	}
	if decodeErr != nil {
		return nil, nil, nil, decodeErr
	}
	return batch, tcs, tenants, nil
}
