package analytics

import (
	"bytes"
	"errors"
	"io"
	"net"
	"net/netip"
	"strings"
	"testing"
	"time"
	"unsafe"

	"cloudgraph/internal/flowlog"
	"cloudgraph/internal/trace"
)

func wireTestRecord(i int) flowlog.Record {
	return flowlog.Record{
		Time:        time.Unix(1700000000+int64(i), 0).UTC(),
		LocalIP:     netip.MustParseAddr("10.0.0.1"),
		LocalPort:   443,
		RemoteIP:    netip.MustParseAddr("10.0.0.2"),
		RemotePort:  uint16(50000 + i),
		PacketsSent: 12,
		PacketsRcvd: 8,
		BytesSent:   4096,
		BytesRcvd:   512,
	}
}

// TestFlaggedRoundTrip encodes a mixed batch — plain and traced frames —
// and decodes it back, asserting records and contexts survive unchanged.
func TestFlaggedRoundTrip(t *testing.T) {
	recs := []flowlog.Record{wireTestRecord(0), wireTestRecord(1), wireTestRecord(2)}
	tcs := []trace.Context{
		{},
		{TraceID: 0xdeadbeefcafe, SpanID: 0x1234},
		{},
	}
	var buf []byte
	for i := range recs {
		buf = appendFlaggedFrame(buf, recs[i], tcs[i])
	}
	wantLen := 3*(1+flowlog.WireSize) + traceFieldSize
	if len(buf) != wantLen {
		t.Fatalf("encoded %d bytes, want %d", len(buf), wantLen)
	}
	r := bytes.NewReader(buf)
	gotRecs, gotTcs, gotTenants, err := readBatchFlagged(r, 3, new(connScratch))
	if err != nil {
		t.Fatalf("readBatchFlagged: %v", err)
	}
	if r.Len() != 0 {
		t.Fatalf("left %d bytes unread", r.Len())
	}
	if len(gotRecs) != 3 || len(gotTcs) != 3 || len(gotTenants) != 3 {
		t.Fatalf("got %d records, %d contexts, %d tenants", len(gotRecs), len(gotTcs), len(gotTenants))
	}
	for i, tn := range gotTenants {
		if tn != "" {
			t.Errorf("untagged frame %d decoded tenant %q", i, tn)
		}
	}
	for i := range recs {
		if gotRecs[i] != recs[i] {
			t.Errorf("record %d: got %+v want %+v", i, gotRecs[i], recs[i])
		}
		if gotTcs[i] != tcs[i] {
			t.Errorf("context %d: got %+v want %+v", i, gotTcs[i], tcs[i])
		}
	}
}

// TestFlaggedDecodeErrorDrains pins the drain invariant on the flagged
// path: a record that fails to decode inside a well-flagged frame must not
// leave the rest of the declared batch in the stream, or the bytes after
// the batch — the next command — would be parsed as garbage.
func TestFlaggedDecodeErrorDrains(t *testing.T) {
	good := wireTestRecord(0)
	var buf []byte
	buf = appendFlaggedFrame(buf, good, trace.Context{TraceID: 7, SpanID: 8})
	// A zeroed record fails to decode (unspecified address) but the frame
	// length is still known from the flag.
	buf = append(buf, frameFlagTraced)
	buf = append(buf, make([]byte, flowlog.WireSize+traceFieldSize)...)
	buf = appendFlaggedFrame(buf, wireTestRecord(2), trace.Context{})
	const next = "STATS\n"
	buf = append(buf, next...)

	r := bytes.NewReader(buf)
	_, _, _, err := readBatchFlagged(r, 3, new(connScratch))
	if err == nil {
		t.Fatal("want decode error")
	}
	if errors.Is(err, errDesync) {
		t.Fatalf("decode error must be recoverable, got desync: %v", err)
	}
	rest := make([]byte, r.Len())
	if _, rerr := r.Read(rest); rerr != nil {
		t.Fatal(rerr)
	}
	if string(rest) != next {
		t.Fatalf("stream desynced: %d bytes left, want the %q command", len(rest), next)
	}
}

// TestFlaggedBadFlagIsDesync: an unknown flag byte makes the frame length
// unknowable, so the reader must give up with errDesync instead of
// guessing its way further into the stream.
func TestFlaggedBadFlagIsDesync(t *testing.T) {
	buf := appendFlaggedFrame(nil, wireTestRecord(0), trace.Context{})
	buf = append(buf, 0x7f) // second frame: invalid flag
	buf = append(buf, make([]byte, flowlog.WireSize)...)
	_, _, _, err := readBatchFlagged(bytes.NewReader(buf), 2, new(connScratch))
	if !errors.Is(err, errDesync) {
		t.Fatalf("want errDesync, got %v", err)
	}
}

// TestOldFormatHasNoTraceField pins backward compatibility at the frame
// level: legacy bare frames decode through readBatch exactly as before
// (they carry no flag byte and no trace field), and a legacy batch's bytes
// decode to the same records the flagged encoding of the same batch does
// — the trace field is purely additive.
func TestOldFormatHasNoTraceField(t *testing.T) {
	recs := []flowlog.Record{wireTestRecord(0), wireTestRecord(1)}
	var legacy []byte
	for _, r := range recs {
		legacy = flowlog.AppendBinary(legacy, r)
	}
	gotOld, err := readBatch(bytes.NewReader(legacy), 2, new(connScratch))
	if err != nil {
		t.Fatalf("readBatch: %v", err)
	}
	var flagged []byte
	for _, r := range recs {
		flagged = appendFlaggedFrame(flagged, r, trace.Context{})
	}
	gotNew, tcs, _, err := readBatchFlagged(bytes.NewReader(flagged), 2, new(connScratch))
	if err != nil {
		t.Fatalf("readBatchFlagged: %v", err)
	}
	for i := range recs {
		if gotOld[i] != gotNew[i] {
			t.Errorf("record %d: legacy %+v != flagged %+v", i, gotOld[i], gotNew[i])
		}
		if tcs[i].Sampled() {
			t.Errorf("record %d: plain frame produced a sampled context %+v", i, tcs[i])
		}
	}
}

// TestTaggedRoundTrip encodes a batch mixing untagged, tagged, and
// traced+tagged frames and decodes it back, asserting records, contexts,
// and tenant tags survive unchanged — and that the tag field's cost is
// exactly 1+len(name) bytes on tagged frames and zero on untagged ones.
func TestTaggedRoundTrip(t *testing.T) {
	recs := []flowlog.Record{wireTestRecord(0), wireTestRecord(1), wireTestRecord(2)}
	tcs := []trace.Context{{}, {TraceID: 0xdeadbeefcafe, SpanID: 0x1234}, {}}
	tenants := []string{"", "acme", "globex-prod"}
	var buf []byte
	for i := range recs {
		buf = appendTaggedFrame(buf, recs[i], tcs[i], tenants[i])
	}
	wantLen := 3*(1+flowlog.WireSize) + traceFieldSize + (1 + len("acme")) + (1 + len("globex-prod"))
	if len(buf) != wantLen {
		t.Fatalf("encoded %d bytes, want %d", len(buf), wantLen)
	}
	r := bytes.NewReader(buf)
	gotRecs, gotTcs, gotTenants, err := readBatchFlagged(r, 3, new(connScratch))
	if err != nil {
		t.Fatalf("readBatchFlagged: %v", err)
	}
	if r.Len() != 0 {
		t.Fatalf("left %d bytes unread", r.Len())
	}
	for i := range recs {
		if gotRecs[i] != recs[i] {
			t.Errorf("record %d: got %+v want %+v", i, gotRecs[i], recs[i])
		}
		if gotTcs[i] != tcs[i] {
			t.Errorf("context %d: got %+v want %+v", i, gotTcs[i], tcs[i])
		}
		if gotTenants[i] != tenants[i] {
			t.Errorf("tenant %d: got %q want %q", i, gotTenants[i], tenants[i])
		}
	}
}

// TestTaggedInterning: the same tenant tag decoded many times on one
// connection must return one canonical string (the interning that keeps
// the tagged hot path allocation-free).
func TestTaggedInterning(t *testing.T) {
	var buf []byte
	for i := 0; i < 4; i++ {
		buf = appendTaggedFrame(buf, wireTestRecord(i), trace.Context{}, "acme")
	}
	_, _, tenants, err := readBatchFlagged(bytes.NewReader(buf), 4, new(connScratch))
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(tenants); i++ {
		// Same backing string, not merely equal bytes.
		if unsafeStringData(tenants[i]) != unsafeStringData(tenants[0]) {
			t.Fatalf("tenant %d not interned", i)
		}
	}
}

func unsafeStringData(s string) *byte {
	if len(s) == 0 {
		return nil
	}
	return unsafe.StringData(s)
}

// TestTaggedInvalidNameDrains: a well-framed but invalid tenant name
// (bad charset) is a recoverable error — the reader drains the declared
// batch and the next command stays aligned, exactly like a bad record.
func TestTaggedInvalidNameDrains(t *testing.T) {
	var buf []byte
	buf = appendTaggedFrame(buf, wireTestRecord(0), trace.Context{}, "acme")
	bad := appendTaggedFrame(nil, wireTestRecord(1), trace.Context{}, "acme")
	bad[1+flowlog.WireSize+1] = 'A' // uppercase: invalid charset, length intact
	buf = append(buf, bad...)
	buf = appendTaggedFrame(buf, wireTestRecord(2), trace.Context{}, "acme")
	const next = "STATS\n"
	buf = append(buf, next...)

	r := bytes.NewReader(buf)
	_, _, _, err := readBatchFlagged(r, 3, new(connScratch))
	if err == nil {
		t.Fatal("want invalid-tenant error")
	}
	if errors.Is(err, errDesync) {
		t.Fatalf("invalid name must be recoverable, got desync: %v", err)
	}
	rest := make([]byte, r.Len())
	if _, rerr := r.Read(rest); rerr != nil {
		t.Fatal(rerr)
	}
	if string(rest) != next {
		t.Fatalf("stream desynced: %d bytes left, want the %q command", len(rest), next)
	}
}

// TestTaggedBadLengthIsDesync: a tenant length byte of zero or with the
// varint continuation bit set cannot come from any writer we shipped, so
// the frame length is untrustworthy and the reader must desync.
func TestTaggedBadLengthIsDesync(t *testing.T) {
	for _, lb := range []byte{0x00, 0x80, 0xff} {
		buf := appendTaggedFrame(nil, wireTestRecord(0), trace.Context{}, "acme")
		buf[1+flowlog.WireSize] = lb
		_, _, _, err := readBatchFlagged(bytes.NewReader(buf), 1, new(connScratch))
		if !errors.Is(err, errDesync) {
			t.Fatalf("length byte 0x%02x: want errDesync, got %v", lb, err)
		}
	}
}

// TestTaggedFileRoundTrip pins the .tflows file codec over the same
// framing.
func TestTaggedFileRoundTrip(t *testing.T) {
	recs := []flowlog.Record{wireTestRecord(0), wireTestRecord(1), wireTestRecord(2)}
	tenants := []string{"acme", "", "globex"}
	var buf []byte
	for i := range recs {
		buf = AppendTagged(buf, recs[i], tenants[i])
	}
	gotRecs, gotTenants, err := ReadTagged(bytes.NewReader(buf))
	if err != nil {
		t.Fatal(err)
	}
	if len(gotRecs) != 3 {
		t.Fatalf("got %d records", len(gotRecs))
	}
	for i := range recs {
		if gotRecs[i] != recs[i] || gotTenants[i] != tenants[i] {
			t.Errorf("frame %d: got (%+v, %q) want (%+v, %q)",
				i, gotRecs[i], gotTenants[i], recs[i], tenants[i])
		}
	}
	// Truncated mid-frame: must error, not silently stop.
	if _, _, err := ReadTagged(bytes.NewReader(buf[:len(buf)-3])); err == nil {
		t.Fatal("truncated stream read cleanly")
	}
}

// TestServerClosesOnDesync drives the server over a real connection: a bad
// flag byte inside INGEST ... T gets one ERR response and then the
// connection closes, because the byte stream cannot be re-aligned.
func TestServerClosesOnDesync(t *testing.T) {
	s := testServer(t)
	conn, err := net.Dial("tcp", s.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()

	var buf []byte
	buf = append(buf, []byte("INGEST 1 T\n")...)
	buf = append(buf, 0x7f)
	buf = append(buf, make([]byte, flowlog.WireSize)...)
	if _, err := conn.Write(buf); err != nil {
		t.Fatal(err)
	}
	if err := conn.SetReadDeadline(time.Now().Add(5 * time.Second)); err != nil {
		t.Fatal(err)
	}
	data, err := io.ReadAll(conn) // server replies, then must close: read to EOF
	if err != nil {
		t.Fatalf("read to EOF: %v", err)
	}
	resp := string(data)
	if !strings.HasPrefix(resp, "ERR ") {
		t.Fatalf("want ERR response, got %q", resp)
	}
	if !strings.Contains(resp, "flag") {
		t.Fatalf("ERR should name the bad flag, got %q", resp)
	}
	if strings.Count(resp, "\n") != 1 {
		t.Fatalf("connection should close after the ERR line, got %q", resp)
	}
}
