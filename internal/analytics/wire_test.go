package analytics

import (
	"bytes"
	"errors"
	"io"
	"net"
	"net/netip"
	"strings"
	"testing"
	"time"

	"cloudgraph/internal/flowlog"
	"cloudgraph/internal/trace"
)

func wireTestRecord(i int) flowlog.Record {
	return flowlog.Record{
		Time:        time.Unix(1700000000+int64(i), 0).UTC(),
		LocalIP:     netip.MustParseAddr("10.0.0.1"),
		LocalPort:   443,
		RemoteIP:    netip.MustParseAddr("10.0.0.2"),
		RemotePort:  uint16(50000 + i),
		PacketsSent: 12,
		PacketsRcvd: 8,
		BytesSent:   4096,
		BytesRcvd:   512,
	}
}

// TestFlaggedRoundTrip encodes a mixed batch — plain and traced frames —
// and decodes it back, asserting records and contexts survive unchanged.
func TestFlaggedRoundTrip(t *testing.T) {
	recs := []flowlog.Record{wireTestRecord(0), wireTestRecord(1), wireTestRecord(2)}
	tcs := []trace.Context{
		{},
		{TraceID: 0xdeadbeefcafe, SpanID: 0x1234},
		{},
	}
	var buf []byte
	for i := range recs {
		buf = appendFlaggedFrame(buf, recs[i], tcs[i])
	}
	wantLen := 3*(1+flowlog.WireSize) + traceFieldSize
	if len(buf) != wantLen {
		t.Fatalf("encoded %d bytes, want %d", len(buf), wantLen)
	}
	r := bytes.NewReader(buf)
	gotRecs, gotTcs, err := readBatchFlagged(r, 3, new(connScratch))
	if err != nil {
		t.Fatalf("readBatchFlagged: %v", err)
	}
	if r.Len() != 0 {
		t.Fatalf("left %d bytes unread", r.Len())
	}
	if len(gotRecs) != 3 || len(gotTcs) != 3 {
		t.Fatalf("got %d records, %d contexts", len(gotRecs), len(gotTcs))
	}
	for i := range recs {
		if gotRecs[i] != recs[i] {
			t.Errorf("record %d: got %+v want %+v", i, gotRecs[i], recs[i])
		}
		if gotTcs[i] != tcs[i] {
			t.Errorf("context %d: got %+v want %+v", i, gotTcs[i], tcs[i])
		}
	}
}

// TestFlaggedDecodeErrorDrains pins the drain invariant on the flagged
// path: a record that fails to decode inside a well-flagged frame must not
// leave the rest of the declared batch in the stream, or the bytes after
// the batch — the next command — would be parsed as garbage.
func TestFlaggedDecodeErrorDrains(t *testing.T) {
	good := wireTestRecord(0)
	var buf []byte
	buf = appendFlaggedFrame(buf, good, trace.Context{TraceID: 7, SpanID: 8})
	// A zeroed record fails to decode (unspecified address) but the frame
	// length is still known from the flag.
	buf = append(buf, frameFlagTraced)
	buf = append(buf, make([]byte, flowlog.WireSize+traceFieldSize)...)
	buf = appendFlaggedFrame(buf, wireTestRecord(2), trace.Context{})
	const next = "STATS\n"
	buf = append(buf, next...)

	r := bytes.NewReader(buf)
	_, _, err := readBatchFlagged(r, 3, new(connScratch))
	if err == nil {
		t.Fatal("want decode error")
	}
	if errors.Is(err, errDesync) {
		t.Fatalf("decode error must be recoverable, got desync: %v", err)
	}
	rest := make([]byte, r.Len())
	if _, rerr := r.Read(rest); rerr != nil {
		t.Fatal(rerr)
	}
	if string(rest) != next {
		t.Fatalf("stream desynced: %d bytes left, want the %q command", len(rest), next)
	}
}

// TestFlaggedBadFlagIsDesync: an unknown flag byte makes the frame length
// unknowable, so the reader must give up with errDesync instead of
// guessing its way further into the stream.
func TestFlaggedBadFlagIsDesync(t *testing.T) {
	buf := appendFlaggedFrame(nil, wireTestRecord(0), trace.Context{})
	buf = append(buf, 0x7f) // second frame: invalid flag
	buf = append(buf, make([]byte, flowlog.WireSize)...)
	_, _, err := readBatchFlagged(bytes.NewReader(buf), 2, new(connScratch))
	if !errors.Is(err, errDesync) {
		t.Fatalf("want errDesync, got %v", err)
	}
}

// TestOldFormatHasNoTraceField pins backward compatibility at the frame
// level: legacy bare frames decode through readBatch exactly as before
// (they carry no flag byte and no trace field), and a legacy batch's bytes
// decode to the same records the flagged encoding of the same batch does
// — the trace field is purely additive.
func TestOldFormatHasNoTraceField(t *testing.T) {
	recs := []flowlog.Record{wireTestRecord(0), wireTestRecord(1)}
	var legacy []byte
	for _, r := range recs {
		legacy = flowlog.AppendBinary(legacy, r)
	}
	gotOld, err := readBatch(bytes.NewReader(legacy), 2, new(connScratch))
	if err != nil {
		t.Fatalf("readBatch: %v", err)
	}
	var flagged []byte
	for _, r := range recs {
		flagged = appendFlaggedFrame(flagged, r, trace.Context{})
	}
	gotNew, tcs, err := readBatchFlagged(bytes.NewReader(flagged), 2, new(connScratch))
	if err != nil {
		t.Fatalf("readBatchFlagged: %v", err)
	}
	for i := range recs {
		if gotOld[i] != gotNew[i] {
			t.Errorf("record %d: legacy %+v != flagged %+v", i, gotOld[i], gotNew[i])
		}
		if tcs[i].Sampled() {
			t.Errorf("record %d: plain frame produced a sampled context %+v", i, tcs[i])
		}
	}
}

// TestServerClosesOnDesync drives the server over a real connection: a bad
// flag byte inside INGEST ... T gets one ERR response and then the
// connection closes, because the byte stream cannot be re-aligned.
func TestServerClosesOnDesync(t *testing.T) {
	s := testServer(t)
	conn, err := net.Dial("tcp", s.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()

	var buf []byte
	buf = append(buf, []byte("INGEST 1 T\n")...)
	buf = append(buf, 0x7f)
	buf = append(buf, make([]byte, flowlog.WireSize)...)
	if _, err := conn.Write(buf); err != nil {
		t.Fatal(err)
	}
	if err := conn.SetReadDeadline(time.Now().Add(5 * time.Second)); err != nil {
		t.Fatal(err)
	}
	data, err := io.ReadAll(conn) // server replies, then must close: read to EOF
	if err != nil {
		t.Fatalf("read to EOF: %v", err)
	}
	resp := string(data)
	if !strings.HasPrefix(resp, "ERR ") {
		t.Fatalf("want ERR response, got %q", resp)
	}
	if !strings.Contains(resp, "flag") {
		t.Fatalf("ERR should name the bad flag, got %q", resp)
	}
	if strings.Count(resp, "\n") != 1 {
		t.Fatalf("connection should close after the ERR line, got %q", resp)
	}
}
