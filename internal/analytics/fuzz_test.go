package analytics

import (
	"bytes"
	"net/netip"
	"testing"
	"time"

	"cloudgraph/internal/flowlog"
)

// FuzzDecodeFrame drives readBatch, the decoder behind INGEST, with
// arbitrary batch counts and frame bytes. The invariant under test is the
// mid-batch decode-error fix from PR 1: once the header has promised n
// frames and the stream holds them, readBatch consumes exactly
// n*flowlog.WireSize bytes whether decoding succeeds or fails, so the
// command stream behind the batch never desyncs into parsing frame bytes
// as commands.
func FuzzDecodeFrame(f *testing.F) {
	rec := flowlog.Record{
		Time:        time.Unix(1700000000, 0).UTC(),
		LocalIP:     netip.MustParseAddr("10.0.0.1"),
		LocalPort:   443,
		RemoteIP:    netip.MustParseAddr("10.0.0.2"),
		RemotePort:  55000,
		PacketsSent: 12,
		PacketsRcvd: 8,
		BytesSent:   4096,
		BytesRcvd:   512,
	}
	valid := flowlog.AppendBinary(nil, rec)
	valid = flowlog.AppendBinary(valid, rec.Reverse())
	f.Add(uint8(2), valid)
	// A zeroed middle frame decodes with an error (unspecified address):
	// the PR-1 path where the rest of the batch must still be drained.
	corrupt := append([]byte(nil), valid...)
	for i := 0; i < flowlog.WireSize; i++ {
		corrupt[i] = 0
	}
	f.Add(uint8(2), corrupt)
	f.Add(uint8(3), corrupt) // declared count exceeds the data: short stream
	f.Add(uint8(0), []byte{})

	f.Fuzz(func(t *testing.T, count uint8, data []byte) {
		n := int(count % 17)
		r := bytes.NewReader(data)
		batch, err := readBatch(r, n)
		consumed := len(data) - r.Len()
		want := n * flowlog.WireSize
		if len(data) >= want {
			if consumed != want {
				t.Fatalf("n=%d len=%d: consumed %d bytes, want %d (err=%v)",
					n, len(data), consumed, want, err)
			}
		} else if err == nil {
			t.Fatalf("n=%d: readBatch succeeded with only %d of %d bytes", n, len(data), want)
		}
		if err != nil {
			return
		}
		if len(batch) != n {
			t.Fatalf("n=%d: got %d records", n, len(batch))
		}
		// Successful decodes re-encode to the exact consumed bytes.
		var enc []byte
		for _, rec := range batch {
			enc = flowlog.AppendBinary(enc, rec)
		}
		if !bytes.Equal(enc, data[:consumed]) {
			t.Fatalf("n=%d: round-trip mismatch", n)
		}
	})
}
