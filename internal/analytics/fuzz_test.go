package analytics

import (
	"bytes"
	"errors"
	"net/netip"
	"strconv"
	"strings"
	"testing"
	"time"

	"cloudgraph/internal/flowlog"
	"cloudgraph/internal/trace"
)

// FuzzDecodeFrame drives readBatch, the decoder behind INGEST, with
// arbitrary batch counts and frame bytes. The invariant under test is the
// mid-batch decode-error fix from PR 1: once the header has promised n
// frames and the stream holds them, readBatch consumes exactly
// n*flowlog.WireSize bytes whether decoding succeeds or fails, so the
// command stream behind the batch never desyncs into parsing frame bytes
// as commands.
func FuzzDecodeFrame(f *testing.F) {
	rec := flowlog.Record{
		Time:        time.Unix(1700000000, 0).UTC(),
		LocalIP:     netip.MustParseAddr("10.0.0.1"),
		LocalPort:   443,
		RemoteIP:    netip.MustParseAddr("10.0.0.2"),
		RemotePort:  55000,
		PacketsSent: 12,
		PacketsRcvd: 8,
		BytesSent:   4096,
		BytesRcvd:   512,
	}
	valid := flowlog.AppendBinary(nil, rec)
	valid = flowlog.AppendBinary(valid, rec.Reverse())
	f.Add(uint8(2), valid)
	// A zeroed middle frame decodes with an error (unspecified address):
	// the PR-1 path where the rest of the batch must still be drained.
	corrupt := append([]byte(nil), valid...)
	for i := 0; i < flowlog.WireSize; i++ {
		corrupt[i] = 0
	}
	f.Add(uint8(2), corrupt)
	f.Add(uint8(3), corrupt) // declared count exceeds the data: short stream
	f.Add(uint8(0), []byte{})

	f.Fuzz(func(t *testing.T, count uint8, data []byte) {
		n := int(count % 17)
		r := bytes.NewReader(data)
		batch, err := readBatch(r, n, new(connScratch))
		consumed := len(data) - r.Len()
		want := n * flowlog.WireSize
		if len(data) >= want {
			if consumed != want {
				t.Fatalf("n=%d len=%d: consumed %d bytes, want %d (err=%v)",
					n, len(data), consumed, want, err)
			}
		} else if err == nil {
			t.Fatalf("n=%d: readBatch succeeded with only %d of %d bytes", n, len(data), want)
		}
		if err != nil {
			return
		}
		if len(batch) != n {
			t.Fatalf("n=%d: got %d records", n, len(batch))
		}
		// Successful decodes re-encode to the exact consumed bytes.
		var enc []byte
		for _, rec := range batch {
			enc = flowlog.AppendBinary(enc, rec)
		}
		if !bytes.Equal(enc, data[:consumed]) {
			t.Fatalf("n=%d: round-trip mismatch", n)
		}
	})
}

// scanFlaggedFrames is the fuzz oracle for the flagged framing: it walks
// data the way readBatchFlagged's framing layer must, returning the byte
// count of n whole well-flagged frames. ok is false when the data runs
// short or hits an invalid flag or unframeable tenant length before n
// frames — the cases where the reader may not (short) or must not
// (desync) consume the whole batch. A well-framed but invalid tenant
// name is NOT a framing failure: the frame length is still known, so the
// reader drains it like any recoverable decode error.
func scanFlaggedFrames(data []byte, n int) (size int, ok bool) {
	pos := 0
	for i := 0; i < n; i++ {
		if pos >= len(data) {
			return 0, false
		}
		flag := data[pos]
		if flag > frameFlagMax {
			return 0, false
		}
		pos++
		frame := flowlog.WireSize
		if flag&frameFlagTraced != 0 {
			frame += traceFieldSize
		}
		if pos+frame > len(data) {
			return 0, false
		}
		pos += frame
		if flag&frameFlagTenant != 0 {
			if pos >= len(data) {
				return 0, false
			}
			l := data[pos]
			if l == 0 || l >= 0x80 {
				return 0, false // unframeable varint length: desync
			}
			pos++
			if pos+int(l) > len(data) {
				return 0, false
			}
			pos += int(l)
		}
	}
	return pos, true
}

// FuzzDecodeFlaggedFrame is FuzzDecodeFrame for the traced INGEST framing.
// The drain invariant generalizes: whenever every declared frame carries a
// valid flag and its full length, readBatchFlagged consumes exactly those
// frames — decode errors included — so the command stream stays aligned.
// Only a short stream or an unknown flag (errDesync) may stop early, and
// both end the connection.
func FuzzDecodeFlaggedFrame(f *testing.F) {
	rec := flowlog.Record{
		Time:        time.Unix(1700000000, 0).UTC(),
		LocalIP:     netip.MustParseAddr("10.0.0.1"),
		LocalPort:   443,
		RemoteIP:    netip.MustParseAddr("10.0.0.2"),
		RemotePort:  55000,
		PacketsSent: 12,
		PacketsRcvd: 8,
		BytesSent:   4096,
		BytesRcvd:   512,
	}
	valid := appendFlaggedFrame(nil, rec, trace.Context{TraceID: 0xabc, SpanID: 0xdef})
	valid = appendFlaggedFrame(valid, rec.Reverse(), trace.Context{})
	f.Add(uint8(2), valid)
	// Tagged frames: traced+tagged, then tagged only.
	tagged := appendTaggedFrame(nil, rec, trace.Context{TraceID: 0xabc, SpanID: 0xdef}, "acme")
	tagged = appendTaggedFrame(tagged, rec.Reverse(), trace.Context{}, "globex-prod")
	f.Add(uint8(2), tagged)
	// A tagged frame whose name is well-framed but invalid (uppercase):
	// recoverable, must drain.
	badName := appendTaggedFrame(nil, rec, trace.Context{}, "acme")
	badName[1+flowlog.WireSize+1] = 'A'
	badName = appendTaggedFrame(badName, rec.Reverse(), trace.Context{}, "acme")
	f.Add(uint8(2), badName)
	// A tenant length byte with the continuation bit: desync.
	badLen := appendTaggedFrame(nil, rec, trace.Context{}, "acme")
	badLen[1+flowlog.WireSize] = 0x84
	f.Add(uint8(1), badLen)
	// A zeroed traced frame: flag is valid, record fails to decode — the
	// recoverable case that must still drain the batch.
	corrupt := append([]byte(nil), valid...)
	for i := 1; i < 1+flowlog.WireSize; i++ {
		corrupt[i] = 0
	}
	f.Add(uint8(2), corrupt)
	// An invalid flag mid-batch: the desync case.
	desync := append([]byte(nil), valid...)
	desync[0] = 0x7f
	f.Add(uint8(2), desync)
	f.Add(uint8(3), valid) // declared count exceeds the data: short stream
	f.Add(uint8(0), []byte{})

	f.Fuzz(func(t *testing.T, count uint8, data []byte) {
		n := int(count % 17)
		r := bytes.NewReader(data)
		batch, tcs, tenants, err := readBatchFlagged(r, n, new(connScratch))
		consumed := len(data) - r.Len()
		if size, ok := scanFlaggedFrames(data, n); ok {
			if consumed != size {
				t.Fatalf("n=%d: consumed %d bytes, want %d whole frames = %d (err=%v)",
					n, consumed, n, size, err)
			}
			if errors.Is(err, errDesync) {
				t.Fatalf("n=%d: desync reported on well-flagged frames", n)
			}
		} else if err == nil {
			t.Fatalf("n=%d: succeeded on short or mis-flagged data (%d bytes)", n, len(data))
		}
		if err != nil {
			return
		}
		if len(batch) != n || len(tcs) != n || len(tenants) != n {
			t.Fatalf("n=%d: got %d records, %d contexts, %d tenants", n, len(batch), len(tcs), len(tenants))
		}
		// Successful decodes re-encode canonically: a traced flag with a
		// zero trace ID decodes as unsampled and re-encodes plain, so
		// compare by re-decoding the canonical bytes.
		var enc []byte
		for i := range batch {
			enc = appendTaggedFrame(enc, batch[i], tcs[i], tenants[i])
		}
		batch2, tcs2, tenants2, err := readBatchFlagged(bytes.NewReader(enc), n, new(connScratch))
		if err != nil {
			t.Fatalf("n=%d: canonical re-decode failed: %v", n, err)
		}
		for i := range batch {
			if batch[i] != batch2[i] {
				t.Fatalf("n=%d record %d: round-trip mismatch", n, i)
			}
			if tcs[i].Sampled() != tcs2[i].Sampled() || (tcs[i].Sampled() && tcs[i] != tcs2[i]) {
				t.Fatalf("n=%d context %d: round-trip mismatch %+v vs %+v", n, i, tcs[i], tcs2[i])
			}
			if tenants[i] != tenants2[i] {
				t.Fatalf("n=%d tenant %d: round-trip mismatch %q vs %q", n, i, tenants[i], tenants2[i])
			}
		}
	})
}

// FuzzParseQuery drives the QUERY command decoder with arbitrary command
// lines. The invariants: the decoder never panics, accepts only names in
// its documented charset, and maps the selector exactly — absent or
// "latest" to the zero selector, a positive integer to that epoch, an
// RFC3339 timestamp to that instant, everything else to an error.
func FuzzParseQuery(f *testing.F) {
	f.Add("QUERY segment latest")
	f.Add("QUERY summarize 17")
	f.Add("QUERY policy")
	f.Add("QUERY counterfactual 0")
	f.Add("QUERY bad!name 3")
	f.Add("QUERY a b c d")
	f.Add("QUERY \x00\xff latest")
	f.Add("QUERY segment 18446744073709551615")
	f.Add("QUERY segment 99999999999999999999999")
	f.Add("QUERY segment 2023-11-14T22:13:20Z")
	f.Add("QUERY segment 2023-11-14T22:13:20+05:30")
	f.Add("QUERY segment 2023-13-99T99:99:99Z")

	f.Fuzz(func(t *testing.T, line string) {
		fields := strings.Fields(line)
		name, sel, err := parseQuery(fields)
		if err != nil {
			if name != "" || sel.epoch != 0 || !sel.at.IsZero() {
				t.Fatalf("error path leaked values: name=%q sel=%+v err=%v", name, sel, err)
			}
			return
		}
		if len(fields) < 2 || len(fields) > 3 {
			t.Fatalf("accepted %d fields: %q", len(fields), line)
		}
		if name != fields[1] || !validAnalysisName(name) {
			t.Fatalf("accepted name %q from %q", name, line)
		}
		if sel.epoch != 0 && !sel.at.IsZero() {
			t.Fatalf("selector is both epoch and time: %+v from %q", sel, line)
		}
		switch {
		case len(fields) == 2:
			if sel.epoch != 0 || !sel.at.IsZero() {
				t.Fatalf("no selector but sel=%+v", sel)
			}
		case strings.EqualFold(fields[2], "latest"):
			if sel.epoch != 0 || !sel.at.IsZero() {
				t.Fatalf("latest selector but sel=%+v", sel)
			}
		case sel.epoch != 0:
			n, perr := strconv.ParseUint(fields[2], 10, 64)
			if perr != nil || n == 0 || sel.epoch != n {
				t.Fatalf("selector %q decoded to epoch=%d (parse err %v)", fields[2], sel.epoch, perr)
			}
		default:
			at, perr := time.Parse(time.RFC3339, fields[2])
			if perr != nil || !sel.at.Equal(at) {
				t.Fatalf("selector %q decoded to time=%v (parse err %v)", fields[2], sel.at, perr)
			}
		}
	})
}
