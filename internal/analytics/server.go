// Package analytics exposes the core engine as the software-as-a-service
// sketched in Figure 8: host agents (or a replayer) stream connection
// summaries to a TCP endpoint, workers fold them into the windowed
// communication graphs, and administrators query segmentations, security
// reports and summaries over the same protocol.
//
// The wire protocol is line-oriented commands with JSON responses:
//
//	INGEST <n>\n  followed by n binary flowlog frames  -> OK <n>
//	INGEST <n> T\n followed by n flagged frames        -> OK <n>  (wire.go)
//	FLUSH                                              -> OK <windows>
//	STATS                                              -> JSON Stats
//	WINDOWS                                            -> JSON []WindowInfo
//	LEARN                                              -> JSON LearnResult
//	SEGMENTS                                           -> JSON map[node]segment
//	MONITOR                                            -> JSON MonitorResult
//	SUMMARY                                            -> JSON SummaryResult
//	ANOMALIES                                          -> JSON []AnomalyResult
//	QUERY <analysis> [<epoch>|latest]                  -> JSON QueryResult
//	TENANT <name>                                      -> OK <name>
//	QUIT                                               -> connection closes
//
// QUERY reads the online analysis plane (Options.Plane); without a plane
// attached it answers ERR.
//
// A server started with ServeRealms serves one pipeline plane per tenant
// (see internal/realm): TENANT switches the connection's session tenant
// — every later command reads and ingests that tenant's plane — and
// tagged frames (wire.go) route records per frame regardless of the
// session tenant. A single-engine server accepts TENANT only for the
// default tenant, so tools probing for multi-tenancy get a clean ERR.
package analytics

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"net"
	"os"
	"strconv"
	"strings"
	"sync"
	"time"

	"cloudgraph/internal/core"
	"cloudgraph/internal/flowlog"
	"cloudgraph/internal/model"
	"cloudgraph/internal/realm"
	"cloudgraph/internal/runner"
	"cloudgraph/internal/summarize"
	"cloudgraph/internal/telemetry"
	"cloudgraph/internal/trace"
)

// Options tunes the server's per-connection robustness limits.
type Options struct {
	// IdleTimeout closes a connection that sends no complete command (or
	// stalls mid-INGEST-batch) for this long. Zero means 5 minutes.
	IdleTimeout time.Duration
	// WriteTimeout bounds writing one response to a peer that has stopped
	// reading. Zero means 1 minute.
	WriteTimeout time.Duration
	// Plane, when set, answers QUERY commands with online analysis
	// results. The caller owns wiring the plane's consumers onto the
	// engine bus (core.Config.Consumers = plane.Consumers()); the server
	// only reads from it.
	Plane *runner.Plane
}

func (o Options) withDefaults() Options {
	if o.IdleTimeout == 0 {
		o.IdleTimeout = 5 * time.Minute
	}
	if o.WriteTimeout == 0 {
		o.WriteTimeout = time.Minute
	}
	return o
}

// serverMetrics holds the service-endpoint telemetry handles, preallocated
// at startup (all nil when telemetry is off).
type serverMetrics struct {
	conns     *telemetry.Counter
	active    *telemetry.Gauge
	frames    *telemetry.Counter
	protoErrs *telemetry.Counter
	timeouts  *telemetry.Counter
}

func (m *serverMetrics) instrument(reg *telemetry.Registry) {
	if reg == nil {
		return
	}
	m.conns = reg.Counter("cloudgraph_analytics_connections_total",
		"connections accepted by the analytics endpoint")
	m.active = reg.Gauge("cloudgraph_analytics_active_connections",
		"connections currently being served")
	m.frames = reg.Counter("cloudgraph_analytics_frames_decoded_total",
		"binary flowlog frames decoded from INGEST batches")
	m.protoErrs = reg.Counter("cloudgraph_analytics_protocol_errors_total",
		"commands rejected with an ERR response")
	m.timeouts = reg.Counter("cloudgraph_analytics_conn_timeouts_total",
		"connections closed by the idle or write deadline")
}

// Server is a running analytics service.
type Server struct {
	engine *core.Engine
	plane  *runner.Plane
	realms *realm.Manager // nil on a single-engine server
	// ownEngine marks the single-engine mode, where Close tears the
	// engine down; a realm manager owns its engines itself.
	ownEngine bool
	ln        net.Listener
	opts      Options
	tel       serverMetrics
	wg        sync.WaitGroup

	// mu guards closed and conns. Tracking live connections lets Close
	// tear down stalled peers instead of waiting out their deadlines.
	mu     sync.Mutex
	closed bool
	conns  map[net.Conn]struct{}
}

// Serve starts a server on addr (e.g. "127.0.0.1:0") backed by a fresh
// engine with the given config, using default Options.
func Serve(addr string, cfg core.Config) (*Server, error) {
	return ServeWith(addr, cfg, Options{})
}

// ServeWith is Serve with explicit robustness options. The server's
// endpoint metrics register in cfg.Telemetry alongside the engine's.
func ServeWith(addr string, cfg core.Config, opts Options) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	s := &Server{
		engine:    core.NewEngine(cfg),
		plane:     opts.Plane,
		ownEngine: true,
		ln:        ln,
		opts:      opts.withDefaults(),
		conns:     make(map[net.Conn]struct{}),
	}
	s.tel.instrument(cfg.Telemetry)
	s.wg.Add(1)
	go s.acceptLoop()
	return s, nil
}

// ServeRealms starts a multi-tenant server over a realm manager. The
// manager owns every engine and plane (the server's Engine and default
// command routing resolve to the default tenant's realm); Close stops
// the listener and handlers but leaves the manager to its owner. The
// endpoint metrics register in reg (nil disables them).
func ServeRealms(addr string, m *realm.Manager, reg *telemetry.Registry, opts Options) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	def := m.Default()
	s := &Server{
		engine: def.Engine(),
		plane:  def.Plane(),
		realms: m,
		ln:     ln,
		opts:   opts.withDefaults(),
		conns:  make(map[net.Conn]struct{}),
	}
	s.tel.instrument(reg)
	s.wg.Add(1)
	go s.acceptLoop()
	return s, nil
}

// Addr returns the listening address.
func (s *Server) Addr() string { return s.ln.Addr().String() }

// Engine exposes the underlying engine (e.g. for in-process inspection).
func (s *Server) Engine() *core.Engine { return s.engine }

// Close stops accepting, force-closes live connections (a stalled peer
// must not pin shutdown until its deadline fires) and waits for the
// handlers to drain.
func (s *Server) Close() error {
	s.mu.Lock()
	s.closed = true
	conns := make([]net.Conn, 0, len(s.conns))
	for c := range s.conns {
		conns = append(conns, c)
	}
	s.mu.Unlock()
	err := s.ln.Close()
	for _, c := range conns {
		//lint:allow errdrop force-close at shutdown; the handler observes the error and exits
		c.Close()
	}
	s.wg.Wait()
	if s.ownEngine {
		s.engine.Close() // stop the consumer-bus goroutines after the last handler exits
	}
	return err
}

func (s *Server) acceptLoop() {
	defer s.wg.Done()
	for {
		conn, err := s.ln.Accept()
		if err != nil {
			return
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			//lint:allow errdrop racing accept at shutdown; nothing was written yet
			conn.Close()
			return
		}
		s.conns[conn] = struct{}{}
		s.mu.Unlock()
		s.tel.conns.Add(1)
		s.tel.active.Add(1)
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			defer s.dropConn(conn)
			s.handle(conn)
		}()
	}
}

// dropConn untracks and closes a finished connection.
func (s *Server) dropConn(conn net.Conn) {
	s.mu.Lock()
	delete(s.conns, conn)
	s.mu.Unlock()
	s.tel.active.Add(-1)
	//lint:allow errdrop teardown close; any read/write error already ended the command loop
	conn.Close()
}

// textResponse marks a handler result as a plain "OK ..." line rather
// than a JSON document.
type textResponse string

// session is one connection's tenant binding: the engine and plane every
// command on this connection reads and writes. A single-engine server
// pins it to the server's engine; under a realm manager the TENANT
// command rebinds it, and per-frame tenant tags override it record by
// record on the ingest path.
type session struct {
	tenant string
	engine *core.Engine
	plane  *runner.Plane
	realm  *realm.Realm // nil on a single-engine server
}

// cmdTenant rebinds the connection's session tenant, admitting the realm
// if needed. The single-engine server accepts only the default tenant so
// a probing client gets a clean ERR rather than silently shared state.
func (s *Server) cmdTenant(fields []string, ses *session) (any, error) {
	if len(fields) != 2 {
		return nil, errors.New("usage: TENANT <name>")
	}
	name := fields[1]
	if s.realms == nil {
		if name != realm.DefaultTenant {
			return nil, errors.New("multi-tenant mode disabled (single-engine server)")
		}
		return textResponse("OK " + name), nil
	}
	r, err := s.realms.Realm(name)
	if err != nil {
		return nil, err
	}
	ses.tenant = name
	ses.realm = r
	ses.engine = r.Engine()
	ses.plane = r.Plane()
	return textResponse("OK " + name), nil
}

// flush drains the session tenant's pipeline: close open windows, drain
// its bus, seal the roll-up bucket.
func (ses *session) flush() int {
	if ses.realm != nil {
		return ses.realm.Flush()
	}
	n := len(ses.engine.Flush())
	if ses.plane != nil {
		// Flush drained the bus, so the timeline has every window;
		// seal the in-progress roll-up bucket to make it queryable.
		ses.plane.Seal()
	}
	return n
}

// handle runs the command loop for one connection. Handlers compute a
// response value; this loop is the only place responses are written, so
// every write and flush error is checked exactly once and tears the
// connection down.
func (s *Server) handle(conn net.Conn) {
	r := bufio.NewReaderSize(conn, 256<<10)
	w := bufio.NewWriter(conn)
	sc := new(connScratch)
	ses := &session{tenant: realm.DefaultTenant, engine: s.engine, plane: s.plane}
	if s.realms != nil {
		ses.realm = s.realms.Default()
	}
	for {
		// The read deadline is absolute, so it also bounds the binary
		// batch an INGEST command goes on to read: a peer that stalls
		// mid-batch is cut off just like one that stops sending commands.
		if err := conn.SetReadDeadline(time.Now().Add(s.opts.IdleTimeout)); err != nil {
			return
		}
		line, err := r.ReadString('\n')
		if err != nil {
			if errors.Is(err, os.ErrDeadlineExceeded) {
				s.tel.timeouts.Add(1)
			}
			return
		}
		fields := strings.Fields(strings.TrimSpace(line))
		if len(fields) == 0 {
			continue
		}
		cmd := strings.ToUpper(fields[0])
		var out any
		var cmdErr error
		switch cmd {
		case "QUIT":
			out = textResponse("OK bye")
		case "INGEST":
			out, cmdErr = s.cmdIngest(fields, r, sc, ses)
		case "FLUSH":
			out = textResponse(fmt.Sprintf("OK %d", ses.flush()))
		case "STATS":
			out = s.stats(ses)
		case "WINDOWS":
			out = windows(ses)
		case "LEARN":
			out, cmdErr = cmdLearn(ses)
		case "SEGMENTS":
			out, cmdErr = cmdSegments(ses)
		case "MONITOR":
			out, cmdErr = cmdMonitor(ses)
		case "SUMMARY":
			out, cmdErr = cmdSummary(ses)
		case "ANOMALIES":
			out = cmdAnomalies(ses)
		case "QUERY":
			out, cmdErr = cmdQuery(fields, ses)
		case "TENANT":
			out, cmdErr = s.cmdTenant(fields, ses)
		default:
			cmdErr = fmt.Errorf("unknown command %q", cmd)
		}
		if cmdErr != nil {
			s.tel.protoErrs.Add(1)
			if tr := s.engine.Tracer(); tr != nil {
				tr.Eventf(trace.Context{}, "analytics", slog.LevelWarn, "protocol error: %v", cmdErr)
				tr.Trip("analytics", "protocol error: "+cmdErr.Error())
			}
		}
		if err := conn.SetWriteDeadline(time.Now().Add(s.opts.WriteTimeout)); err != nil {
			return
		}
		werr := writeResponse(w, out, cmdErr)
		if werr == nil {
			werr = w.Flush()
		}
		if werr != nil {
			if errors.Is(werr, os.ErrDeadlineExceeded) {
				s.tel.timeouts.Add(1)
			}
			return
		}
		if cmd == "QUIT" {
			return
		}
		if errors.Is(cmdErr, errDesync) {
			// The ERR line went out, but the byte stream can no longer
			// be re-aligned to command boundaries; drop the connection.
			return
		}
	}
}

// writeResponse emits one response line: an ERR line when the handler
// failed, the text line for textResponse results, a JSON document
// otherwise.
func writeResponse(w *bufio.Writer, out any, cmdErr error) error {
	if cmdErr != nil {
		return writeLine(w, "ERR "+cmdErr.Error())
	}
	if t, ok := out.(textResponse); ok {
		return writeLine(w, string(t))
	}
	return writeJSON(w, out)
}

// connScratch holds one connection's reused INGEST buffers. The engine
// borrows a batch only for the duration of the Ingest call (see
// core.Engine.Ingest), so each command may overwrite the previous one's
// records in place — the whole decode path allocates nothing per batch in
// the steady state.
type connScratch struct {
	batch   []flowlog.Record
	tcs     []trace.Context
	tenants []string
	// names interns wire tenant tags so a steady tagged stream allocates
	// each distinct name once per connection.
	names map[string]string
	// groups are the reused per-tenant regroup buffers for mixed-tenant
	// batches (the slow path; uniform batches ingest the borrowed slice).
	groups map[string]*tenantGroup
}

// tenantGroup is one tenant's slice of a regrouped mixed batch.
type tenantGroup struct {
	recs []flowlog.Record
	tcs  []trace.Context
}

// nextSlot extends batch by one reusable slot, growing the backing array
// only when capacity runs out (first batches, or a count above any seen
// before on this connection).
//
//vet:borrowed batch return
func nextSlot(batch []flowlog.Record) []flowlog.Record {
	if len(batch) < cap(batch) {
		return batch[:len(batch)+1]
	}
	return append(batch, flowlog.Record{})
}

// cmdIngest reads n binary frames — bare legacy frames, or flagged frames
// when the command carries the T marker — and feeds them to the session
// tenant's engine (per-frame tenant tags override the session, routed in
// ingestTagged). The returned batch lives in sc and is overwritten by the
// next INGEST.
func (s *Server) cmdIngest(fields []string, r *bufio.Reader, sc *connScratch, ses *session) (any, error) {
	traced := false
	switch {
	case len(fields) == 2:
	case len(fields) == 3 && strings.ToUpper(fields[2]) == "T":
		traced = true
	default:
		return nil, errors.New("usage: INGEST <count> [T]")
	}
	n, err := strconv.Atoi(fields[1])
	if err != nil || n < 0 {
		return nil, errors.New("bad count")
	}
	if !traced {
		tr := ses.engine.Tracer()
		var start time.Time
		if tr != nil {
			start = time.Now()
		}
		batch, err := readBatch(r, n, sc)
		if err != nil {
			return nil, err
		}
		// Legacy batches carry no upstream contexts, so the server samples
		// here: that makes the daemon's -trace-sample useful for
		// file-driven ingest (graphctl send), with journeys starting at
		// the wire instead of the NIC. With sampling off, Sample is a
		// branch per record.
		var tcs []trace.Context
		if tr != nil {
			d := time.Since(start)
			note := "frames=" + strconv.Itoa(n)
			for i := range batch {
				c := tr.Sample()
				if !c.Sampled() {
					continue
				}
				if tcs == nil {
					tcs = make([]trace.Context, len(batch))
				}
				tcs[i] = c
				tr.Record(c, "wire.ingest", start, d, note)
			}
		}
		ses.ingest(batch, tcs)
		s.tel.frames.Add(int64(n))
		return textResponse(fmt.Sprintf("OK %d", n)), nil
	}
	start := time.Now()
	batch, tcs, tenants, err := readBatchFlagged(r, n, sc)
	if err != nil {
		return nil, err
	}
	if tr := ses.engine.Tracer(); tr != nil {
		// The "wire.ingest" hop: the sampled record crossed the protocol
		// and decoded server-side.
		d := time.Since(start)
		note := "frames=" + strconv.Itoa(n)
		for _, tc := range tcs {
			if tc.Sampled() {
				tr.Record(tc, "wire.ingest", start, d, note)
			}
		}
	}
	if err := s.ingestTagged(ses, sc, batch, tcs, tenants); err != nil {
		return nil, err
	}
	s.tel.frames.Add(int64(n))
	return textResponse(fmt.Sprintf("OK %d", n)), nil
}

// ingest folds an untagged batch into the session tenant's engine,
// through the weighted-fair scheduler when realms are on.
//
//vet:borrowed batch tcs
func (ses *session) ingest(batch []flowlog.Record, tcs []trace.Context) {
	if ses.realm != nil {
		ses.realm.IngestTraced(batch, tcs)
		return
	}
	ses.engine.IngestTraced(batch, tcs)
}

// ingestTagged routes a flagged batch by per-frame tenant tag (""
// meaning the session tenant). The overwhelmingly common case — every
// frame bound for one tenant — ingests the borrowed slice directly; a
// genuinely mixed batch regroups into sc's per-tenant buffers, copying
// each record exactly once. An unadmittable tag (tenant cap) rejects the
// whole batch before any record lands, so a batch is all-or-nothing.
//
//vet:borrowed batch tcs
func (s *Server) ingestTagged(ses *session, sc *connScratch, batch []flowlog.Record, tcs []trace.Context, tenants []string) error {
	if len(tenants) == 0 {
		return nil // empty declared batch
	}
	// Effective tenant per frame is its tag, or the session tenant when
	// untagged; the batch is uniform when every frame resolves the same.
	first := tenants[0]
	if first == "" {
		first = ses.tenant
	}
	mixed := false
	for _, t := range tenants[1:] {
		if t == "" {
			t = ses.tenant
		}
		if t != first {
			mixed = true
			break
		}
	}
	if !mixed {
		target := ses
		if first != ses.tenant {
			if s.realms == nil {
				return fmt.Errorf("tenant tag %q: multi-tenant mode disabled", first)
			}
			r, err := s.realms.Realm(first)
			if err != nil {
				return err
			}
			target = &session{tenant: first, engine: r.Engine(), plane: r.Plane(), realm: r}
		}
		target.ingest(batch, tcs)
		return nil
	}
	if s.realms == nil {
		return errors.New("tenant tags: multi-tenant mode disabled")
	}
	// Mixed batch: resolve every realm first (all-or-nothing), then
	// regroup per tenant preserving each tenant's record order.
	if sc.groups == nil {
		sc.groups = make(map[string]*tenantGroup, 4)
	}
	for _, g := range sc.groups {
		g.recs, g.tcs = g.recs[:0], g.tcs[:0]
	}
	realms := make(map[string]*realm.Realm, 4)
	for _, t := range tenants {
		if t == "" {
			t = ses.tenant
		}
		if realms[t] == nil {
			r := s.realms.Get(t)
			if r == nil {
				var err error
				if r, err = s.realms.Realm(t); err != nil {
					return err
				}
			}
			realms[t] = r
		}
	}
	for i, rec := range batch {
		t := tenants[i]
		if t == "" {
			t = ses.tenant
		}
		g := sc.groups[t]
		if g == nil {
			g = &tenantGroup{}
			sc.groups[t] = g
		}
		g.recs = append(g.recs, rec)
		if tcs != nil {
			g.tcs = append(g.tcs, tcs[i])
		}
	}
	for t, g := range sc.groups {
		if len(g.recs) == 0 {
			continue
		}
		realms[t].IngestTraced(g.recs, g.tcs)
	}
	return nil
}

// readBatch reads a declared batch of n binary flowlog frames into sc's
// reused buffer. Its protocol invariant: once the INGEST header promised n
// frames, exactly n*WireSize bytes are consumed from r even when a frame
// fails to decode — leaving unread frames in the stream would desync the
// protocol, parsing leftover binary bytes as commands. Only a short read
// (fewer bytes than promised) may leave the stream mid-batch, and that
// already ends the connection.
//
//vet:borrowed sc return
func readBatch(r io.Reader, n int, sc *connScratch) ([]flowlog.Record, error) {
	if sc.batch == nil {
		pre := min(n, 4096) // don't let a huge declared count pre-allocate unboundedly
		sc.batch = make([]flowlog.Record, 0, pre)
	}
	batch := sc.batch[:0]
	var buf [flowlog.WireSize]byte
	for i := 0; i < n; i++ {
		if _, err := io.ReadFull(r, buf[:]); err != nil {
			sc.batch = batch
			return nil, fmt.Errorf("short ingest stream at record %d", i)
		}
		batch = nextSlot(batch)
		if err := flowlog.DecodeBinaryInto(&batch[len(batch)-1], buf[:]); err != nil {
			sc.batch = batch[:len(batch)-1]
			// Consume the rest of the declared batch before reporting.
			for j := i + 1; j < n; j++ {
				if _, derr := io.ReadFull(r, buf[:]); derr != nil {
					return nil, fmt.Errorf("short ingest stream at record %d", j)
				}
			}
			return nil, fmt.Errorf("record %d: %v", i, err)
		}
	}
	sc.batch = batch
	return batch, nil
}

// Stats is the STATS response.
//
//wire:schema
type Stats struct {
	Records       int64   `json:"records"`
	RecordsPerSec float64 `json:"records_per_sec"`
	Windows       int     `json:"windows"`
	Nodes         int     `json:"nodes"`
	Edges         int     `json:"edges"`
	Headline      string  `json:"headline,omitempty"`
	// Sharded hot-path observability: engine ingest width, per-shard
	// work breakdown, and time spent merging partial windows.
	Workers int         `json:"workers"`
	MergeMS float64     `json:"merge_ms"`
	Shards  []ShardInfo `json:"shards,omitempty"`
}

// ShardInfo is one shard's entry in the STATS response.
//
//wire:schema
type ShardInfo struct {
	Records int64   `json:"records"`
	BusyMS  float64 `json:"busy_ms"`
	Depth   int     `json:"depth"`
}

func (s *Server) stats(ses *session) Stats {
	cost := ses.engine.Cost()
	st := Stats{
		Records:       cost.Records,
		RecordsPerSec: cost.RecordsPerSec,
		Workers:       cost.Workers,
		MergeMS:       float64(cost.Merge.Microseconds()) / 1e3,
	}
	for _, sh := range cost.Shards {
		st.Shards = append(st.Shards, ShardInfo{
			Records: sh.Records,
			BusyMS:  float64(sh.Busy.Microseconds()) / 1e3,
			Depth:   sh.Depth,
		})
	}
	ws := ses.engine.Windows()
	st.Windows = len(ws)
	if len(ws) > 0 {
		sum := ses.engine.Summary()
		st.Nodes = sum.Stats.Nodes
		st.Edges = sum.Stats.Edges
		st.Headline = sum.Headline
	}
	return st
}

// WindowInfo is one entry of the WINDOWS response.
//
//wire:schema
type WindowInfo struct {
	Start string `json:"start"`
	End   string `json:"end"`
	Nodes int    `json:"nodes"`
	Edges int    `json:"edges"`
	Bytes uint64 `json:"bytes"`
}

func windows(ses *session) []WindowInfo {
	ws := ses.engine.Windows()
	out := make([]WindowInfo, 0, len(ws))
	for _, g := range ws {
		st := g.ComputeStats()
		out = append(out, WindowInfo{
			Start: g.Start.UTC().Format("2006-01-02T15:04:05Z"),
			End:   g.End.UTC().Format("2006-01-02T15:04:05Z"),
			Nodes: st.Nodes, Edges: st.Edges, Bytes: st.Bytes,
		})
	}
	return out
}

// LearnResult is the LEARN response.
//
//wire:schema
type LearnResult struct {
	Segments     int `json:"segments"`
	Nodes        int `json:"nodes"`
	AllowedPairs int `json:"allowed_pairs"`
}

func cmdLearn(ses *session) (any, error) {
	g := ses.engine.Latest()
	if g == nil {
		return nil, errors.New("no completed window to learn from (FLUSH first?)")
	}
	assign, err := ses.engine.Learn(g)
	if err != nil {
		return nil, err
	}
	_, reach := ses.engine.Baseline()
	return LearnResult{
		Segments:     assign.NumSegments(),
		Nodes:        len(assign),
		AllowedPairs: len(reach.AllowedPairs()),
	}, nil
}

func cmdSegments(ses *session) (any, error) {
	assign, _ := ses.engine.Baseline()
	if assign == nil {
		return nil, errors.New("no baseline: LEARN first")
	}
	out := make(map[string]int, len(assign))
	for n, seg := range assign {
		out[n.String()] = seg
	}
	return out, nil
}

// MonitorResult is the MONITOR response.
//
//wire:schema
type MonitorResult struct {
	Violations   int      `json:"violations"`
	Alerts       int      `json:"alerts"`
	Suppressed   int      `json:"suppressed_pairs"`
	FlaggedPairs []string `json:"flagged_growth_pairs,omitempty"`
}

func cmdMonitor(ses *session) (any, error) {
	g := ses.engine.Latest()
	if g == nil {
		return nil, errors.New("no completed window")
	}
	rep := ses.engine.Monitor(g)
	if rep == nil {
		return nil, errors.New("no baseline: LEARN first")
	}
	res := MonitorResult{Violations: len(rep.Violations), Alerts: rep.Alerts}
	for _, c := range rep.Cohorts {
		if c.Suppressed {
			res.Suppressed++
		}
	}
	for _, pg := range rep.Growth {
		if pg.Flagged {
			res.FlaggedPairs = append(res.FlaggedPairs, fmt.Sprintf("%d-%d", pg.Pair.A, pg.Pair.B))
		}
	}
	return res, nil
}

// SummaryResult is the SUMMARY response: the succinct summary plus byte
// attribution of the latest window.
//
//wire:schema
type SummaryResult struct {
	Headline    string  `json:"headline"`
	Attribution string  `json:"attribution"`
	Hubs        int     `json:"hubs"`
	Cliques     int     `json:"cliques"`
	CliquePct   float64 `json:"clique_bytes_pct"`
	HubPct      float64 `json:"hub_bytes_pct"`
	TailPct     float64 `json:"long_tail_bytes_pct"`
	ScatterPct  float64 `json:"scatter_bytes_pct"`
}

func cmdSummary(ses *session) (any, error) {
	g := ses.engine.Latest()
	if g == nil {
		return nil, errors.New("no completed window")
	}
	sum := summarize.Summarize(g)
	attr := model.Attribute(g)
	return SummaryResult{
		Headline:    sum.Headline,
		Attribution: attr.Headline,
		Hubs:        len(sum.Hubs),
		Cliques:     len(sum.Cliques),
		CliquePct:   100 * attr.CliqueShare,
		HubPct:      100 * attr.HubShare,
		TailPct:     100 * attr.CollapsedShare,
		ScatterPct:  100 * attr.ScatterShare,
	}, nil
}

// AnomalyResult is one window's drift score in the ANOMALIES response.
//
//wire:schema
type AnomalyResult struct {
	Window    int     `json:"window"`
	Drift     float64 `json:"drift"`
	NewPairs  int     `json:"new_pairs"`
	LostPairs int     `json:"lost_pairs"`
	Anomalous bool    `json:"anomalous"`
}

func cmdAnomalies(ses *session) []AnomalyResult {
	scores := ses.engine.Anomalies(summarize.AnomalyOptions{})
	out := make([]AnomalyResult, 0, len(scores))
	for _, sc := range scores {
		out = append(out, AnomalyResult{
			Window: sc.Index, Drift: sc.Drift,
			NewPairs: sc.NewPairs, LostPairs: sc.LostPairs,
			Anomalous: sc.Anomalous,
		})
	}
	return out
}

// writeLine writes one text response line.
func writeLine(w *bufio.Writer, s string) error {
	if _, err := w.WriteString(s); err != nil {
		return err
	}
	return w.WriteByte('\n')
}

// writeJSON writes one compact JSON line.
func writeJSON(w *bufio.Writer, v any) error {
	b, err := json.Marshal(v)
	if err != nil {
		return err
	}
	if _, err := w.Write(b); err != nil {
		return err
	}
	return w.WriteByte('\n')
}
