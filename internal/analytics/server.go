// Package analytics exposes the core engine as the software-as-a-service
// sketched in Figure 8: host agents (or a replayer) stream connection
// summaries to a TCP endpoint, workers fold them into the windowed
// communication graphs, and administrators query segmentations, security
// reports and summaries over the same protocol.
//
// The wire protocol is line-oriented commands with JSON responses:
//
//	INGEST <n>\n  followed by n binary flowlog frames  -> OK <n>
//	FLUSH                                              -> OK <windows>
//	STATS                                              -> JSON Stats
//	WINDOWS                                            -> JSON []WindowInfo
//	LEARN                                              -> JSON LearnResult
//	SEGMENTS                                           -> JSON map[node]segment
//	MONITOR                                            -> JSON MonitorResult
//	SUMMARY                                            -> JSON SummaryResult
//	ANOMALIES                                          -> JSON []AnomalyResult
//	QUIT                                               -> connection closes
package analytics

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"strconv"
	"strings"
	"sync"

	"cloudgraph/internal/core"
	"cloudgraph/internal/flowlog"
	"cloudgraph/internal/model"
	"cloudgraph/internal/summarize"
)

// Server is a running analytics service.
type Server struct {
	engine *core.Engine
	ln     net.Listener
	wg     sync.WaitGroup
	mu     sync.Mutex
	closed bool
}

// Serve starts a server on addr (e.g. "127.0.0.1:0") backed by a fresh
// engine with the given config.
func Serve(addr string, cfg core.Config) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	s := &Server{engine: core.NewEngine(cfg), ln: ln}
	s.wg.Add(1)
	go s.acceptLoop()
	return s, nil
}

// Addr returns the listening address.
func (s *Server) Addr() string { return s.ln.Addr().String() }

// Engine exposes the underlying engine (e.g. for in-process inspection).
func (s *Server) Engine() *core.Engine { return s.engine }

// Close stops accepting and waits for in-flight connections.
func (s *Server) Close() error {
	s.mu.Lock()
	s.closed = true
	s.mu.Unlock()
	err := s.ln.Close()
	s.wg.Wait()
	return err
}

func (s *Server) acceptLoop() {
	defer s.wg.Done()
	for {
		conn, err := s.ln.Accept()
		if err != nil {
			return
		}
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			defer conn.Close()
			s.handle(conn)
		}()
	}
}

// handle runs the command loop for one connection.
func (s *Server) handle(conn net.Conn) {
	r := bufio.NewReaderSize(conn, 256<<10)
	w := bufio.NewWriter(conn)
	defer w.Flush()
	for {
		line, err := r.ReadString('\n')
		if err != nil {
			return
		}
		fields := strings.Fields(strings.TrimSpace(line))
		if len(fields) == 0 {
			continue
		}
		cmd := strings.ToUpper(fields[0])
		var cmdErr error
		switch cmd {
		case "QUIT":
			fmt.Fprintf(w, "OK bye\n")
			w.Flush()
			return
		case "INGEST":
			cmdErr = s.cmdIngest(fields, r, w)
		case "FLUSH":
			fmt.Fprintf(w, "OK %d\n", len(s.engine.Flush()))
		case "STATS":
			cmdErr = writeJSON(w, s.stats())
		case "WINDOWS":
			cmdErr = writeJSON(w, s.windows())
		case "LEARN":
			cmdErr = s.cmdLearn(w)
		case "SEGMENTS":
			cmdErr = s.cmdSegments(w)
		case "MONITOR":
			cmdErr = s.cmdMonitor(w)
		case "SUMMARY":
			cmdErr = s.cmdSummary(w)
		case "ANOMALIES":
			cmdErr = s.cmdAnomalies(w)
		default:
			fmt.Fprintf(w, "ERR unknown command %q\n", cmd)
		}
		if cmdErr != nil {
			fmt.Fprintf(w, "ERR %s\n", cmdErr)
		}
		if err := w.Flush(); err != nil {
			return
		}
	}
}

// cmdIngest reads n binary frames and feeds them to the engine.
func (s *Server) cmdIngest(fields []string, r *bufio.Reader, w *bufio.Writer) error {
	if len(fields) != 2 {
		return errors.New("usage: INGEST <count>")
	}
	n, err := strconv.Atoi(fields[1])
	if err != nil || n < 0 {
		return errors.New("bad count")
	}
	batch := make([]flowlog.Record, 0, n)
	var buf [flowlog.WireSize]byte
	for i := 0; i < n; i++ {
		if _, err := io.ReadFull(r, buf[:]); err != nil {
			return fmt.Errorf("short ingest stream at record %d", i)
		}
		rec, err := flowlog.DecodeBinary(buf[:])
		if err != nil {
			// Consume the rest of the declared batch before reporting:
			// leaving unread frames in the stream would desync the
			// protocol, parsing leftover binary bytes as commands.
			for j := i + 1; j < n; j++ {
				if _, derr := io.ReadFull(r, buf[:]); derr != nil {
					return fmt.Errorf("short ingest stream at record %d", j)
				}
			}
			return fmt.Errorf("record %d: %v", i, err)
		}
		batch = append(batch, rec)
	}
	s.engine.Ingest(batch)
	fmt.Fprintf(w, "OK %d\n", n)
	return nil
}

// Stats is the STATS response.
type Stats struct {
	Records       int64   `json:"records"`
	RecordsPerSec float64 `json:"records_per_sec"`
	Windows       int     `json:"windows"`
	Nodes         int     `json:"nodes"`
	Edges         int     `json:"edges"`
	Headline      string  `json:"headline,omitempty"`
	// Sharded hot-path observability: engine ingest width, per-shard
	// work breakdown, and time spent merging partial windows.
	Workers int         `json:"workers"`
	MergeMS float64     `json:"merge_ms"`
	Shards  []ShardInfo `json:"shards,omitempty"`
}

// ShardInfo is one shard's entry in the STATS response.
type ShardInfo struct {
	Records int64   `json:"records"`
	BusyMS  float64 `json:"busy_ms"`
	Depth   int     `json:"depth"`
}

func (s *Server) stats() Stats {
	cost := s.engine.Cost()
	st := Stats{
		Records:       cost.Records,
		RecordsPerSec: cost.RecordsPerSec,
		Workers:       cost.Workers,
		MergeMS:       float64(cost.Merge.Microseconds()) / 1e3,
	}
	for _, sh := range cost.Shards {
		st.Shards = append(st.Shards, ShardInfo{
			Records: sh.Records,
			BusyMS:  float64(sh.Busy.Microseconds()) / 1e3,
			Depth:   sh.Depth,
		})
	}
	ws := s.engine.Windows()
	st.Windows = len(ws)
	if len(ws) > 0 {
		sum := s.engine.Summary()
		st.Nodes = sum.Stats.Nodes
		st.Edges = sum.Stats.Edges
		st.Headline = sum.Headline
	}
	return st
}

// WindowInfo is one entry of the WINDOWS response.
type WindowInfo struct {
	Start string `json:"start"`
	End   string `json:"end"`
	Nodes int    `json:"nodes"`
	Edges int    `json:"edges"`
	Bytes uint64 `json:"bytes"`
}

func (s *Server) windows() []WindowInfo {
	ws := s.engine.Windows()
	out := make([]WindowInfo, 0, len(ws))
	for _, g := range ws {
		st := g.ComputeStats()
		out = append(out, WindowInfo{
			Start: g.Start.UTC().Format("2006-01-02T15:04:05Z"),
			End:   g.End.UTC().Format("2006-01-02T15:04:05Z"),
			Nodes: st.Nodes, Edges: st.Edges, Bytes: st.Bytes,
		})
	}
	return out
}

// LearnResult is the LEARN response.
type LearnResult struct {
	Segments     int `json:"segments"`
	Nodes        int `json:"nodes"`
	AllowedPairs int `json:"allowed_pairs"`
}

func (s *Server) cmdLearn(w *bufio.Writer) error {
	g := s.engine.Latest()
	if g == nil {
		return errors.New("no completed window to learn from (FLUSH first?)")
	}
	assign, err := s.engine.Learn(g)
	if err != nil {
		return err
	}
	_, reach := s.engine.Baseline()
	return writeJSON(w, LearnResult{
		Segments:     assign.NumSegments(),
		Nodes:        len(assign),
		AllowedPairs: len(reach.AllowedPairs()),
	})
}

func (s *Server) cmdSegments(w *bufio.Writer) error {
	assign, _ := s.engine.Baseline()
	if assign == nil {
		return errors.New("no baseline: LEARN first")
	}
	out := make(map[string]int, len(assign))
	for n, seg := range assign {
		out[n.String()] = seg
	}
	return writeJSON(w, out)
}

// MonitorResult is the MONITOR response.
type MonitorResult struct {
	Violations   int      `json:"violations"`
	Alerts       int      `json:"alerts"`
	Suppressed   int      `json:"suppressed_pairs"`
	FlaggedPairs []string `json:"flagged_growth_pairs,omitempty"`
}

func (s *Server) cmdMonitor(w *bufio.Writer) error {
	g := s.engine.Latest()
	if g == nil {
		return errors.New("no completed window")
	}
	rep := s.engine.Monitor(g)
	if rep == nil {
		return errors.New("no baseline: LEARN first")
	}
	res := MonitorResult{Violations: len(rep.Violations), Alerts: rep.Alerts}
	for _, c := range rep.Cohorts {
		if c.Suppressed {
			res.Suppressed++
		}
	}
	for _, pg := range rep.Growth {
		if pg.Flagged {
			res.FlaggedPairs = append(res.FlaggedPairs, fmt.Sprintf("%d-%d", pg.Pair.A, pg.Pair.B))
		}
	}
	return writeJSON(w, res)
}

// SummaryResult is the SUMMARY response: the succinct summary plus byte
// attribution of the latest window.
type SummaryResult struct {
	Headline    string  `json:"headline"`
	Attribution string  `json:"attribution"`
	Hubs        int     `json:"hubs"`
	Cliques     int     `json:"cliques"`
	CliquePct   float64 `json:"clique_bytes_pct"`
	HubPct      float64 `json:"hub_bytes_pct"`
	TailPct     float64 `json:"long_tail_bytes_pct"`
	ScatterPct  float64 `json:"scatter_bytes_pct"`
}

func (s *Server) cmdSummary(w *bufio.Writer) error {
	g := s.engine.Latest()
	if g == nil {
		return errors.New("no completed window")
	}
	sum := summarize.Summarize(g)
	attr := model.Attribute(g)
	return writeJSON(w, SummaryResult{
		Headline:    sum.Headline,
		Attribution: attr.Headline,
		Hubs:        len(sum.Hubs),
		Cliques:     len(sum.Cliques),
		CliquePct:   100 * attr.CliqueShare,
		HubPct:      100 * attr.HubShare,
		TailPct:     100 * attr.CollapsedShare,
		ScatterPct:  100 * attr.ScatterShare,
	})
}

// AnomalyResult is one window's drift score in the ANOMALIES response.
type AnomalyResult struct {
	Window    int     `json:"window"`
	Drift     float64 `json:"drift"`
	NewPairs  int     `json:"new_pairs"`
	LostPairs int     `json:"lost_pairs"`
	Anomalous bool    `json:"anomalous"`
}

func (s *Server) cmdAnomalies(w *bufio.Writer) error {
	scores := s.engine.Anomalies(summarize.AnomalyOptions{})
	out := make([]AnomalyResult, 0, len(scores))
	for _, sc := range scores {
		out = append(out, AnomalyResult{
			Window: sc.Index, Drift: sc.Drift,
			NewPairs: sc.NewPairs, LostPairs: sc.LostPairs,
			Anomalous: sc.Anomalous,
		})
	}
	return writeJSON(w, out)
}

// writeJSON writes one compact JSON line.
func writeJSON(w *bufio.Writer, v any) error {
	b, err := json.Marshal(v)
	if err != nil {
		return err
	}
	w.Write(b)
	return w.WriteByte('\n')
}
