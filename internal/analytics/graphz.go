package analytics

import (
	"fmt"
	"net/http"
	"strconv"

	"cloudgraph/internal/core"
	"cloudgraph/internal/graph"
	"cloudgraph/internal/heatmap"
	"cloudgraph/internal/telemetry"
)

// GraphzHandler serves the latest completed window as an adjacency heatmap
// — the ops-endpoint rendering of Figure 4. The default is ASCII art sized
// by ?size= (at most size characters wide, default 64); ?format=pgm returns
// a binary PGM image instead, one pixel per node pair. GET/HEAD only, like
// every ops view.
func GraphzHandler(e *core.Engine) http.Handler {
	return telemetry.GetOnly(http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		g := e.Latest()
		if g == nil {
			http.Error(w, "no completed window yet", http.StatusNotFound)
			return
		}
		adj := g.AdjacencyMatrix(graph.Bytes)
		if req.URL.Query().Get("format") == "pgm" {
			w.Header().Set("Content-Type", "image/x-portable-graymap")
			if _, err := w.Write(heatmap.PGM(adj.M, adj.N)); err != nil {
				return
			}
			return
		}
		size := 64
		if v := req.URL.Query().Get("size"); v != "" {
			n, err := strconv.Atoi(v)
			if err != nil || n < 1 || n > 512 {
				http.Error(w, "size must be 1..512", http.StatusBadRequest)
				return
			}
			size = n
		}
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		header := fmt.Sprintf("window [%s, %s) — %d nodes, %d edges (bytes, log scale)\n",
			g.Start.UTC().Format("2006-01-02T15:04:05Z"),
			g.End.UTC().Format("2006-01-02T15:04:05Z"),
			g.NumNodes(), g.NumEdges())
		if _, err := w.Write([]byte(header + heatmap.ASCII(adj.M, adj.N, size))); err != nil {
			return
		}
	}))
}
