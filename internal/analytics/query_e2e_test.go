package analytics

import (
	"encoding/json"
	"strings"
	"testing"
	"time"

	"cloudgraph/internal/core"
	"cloudgraph/internal/runner"
	"cloudgraph/internal/timeline"
)

// liveServer starts a server with the analysis plane attached the way
// cloudgraphd -live does: plane consumers on the engine bus, plane handle
// in Options.
func liveServer(t *testing.T, window time.Duration) (*Server, *runner.Plane) {
	t.Helper()
	plane := runner.New(runner.Config{
		Timeline: timeline.Config{Rollup: time.Hour},
	})
	s, err := ServeWith("127.0.0.1:0", core.Config{
		Window:    window,
		Shards:    4,
		Consumers: plane.Consumers(),
	}, Options{Plane: plane})
	if err != nil {
		t.Fatalf("ServeWith: %v", err)
	}
	t.Cleanup(func() { s.Close() })
	return s, plane
}

// TestQueryEndToEnd exercises the full live path over TCP: ingest a
// seeded hour, FLUSH, then QUERY each analysis at latest and at a pinned
// epoch — the daemon workflow behind `graphctl query segment latest`.
func TestQueryEndToEnd(t *testing.T) {
	s, plane := liveServer(t, 15*time.Minute)
	recs := hourOf(t, testCluster(t), t0)

	client, err := Dial(s.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()
	if err := client.Ingest(recs); err != nil {
		t.Fatal(err)
	}
	if _, err := client.Flush(); err != nil {
		t.Fatal(err)
	}

	// Latest must answer for every registered analysis, with a pinned
	// epoch equal to the newest completed window's.
	_, newest := plane.Epochs("segment")
	if newest == 0 {
		t.Fatal("plane saw no windows after FLUSH")
	}
	for _, name := range plane.Runners() {
		res, err := client.Query(name, 0)
		if err != nil {
			t.Fatalf("QUERY %s latest: %v", name, err)
		}
		if res.Analysis != name || res.Epoch != newest || len(res.Result) == 0 {
			t.Fatalf("QUERY %s latest = %+v, want epoch %d with a result", name, res, newest)
		}
	}

	// A pinned epoch must re-answer byte-identically to itself and match
	// the plane's in-process view.
	wire, err := client.Query("segment", newest)
	if err != nil {
		t.Fatal(err)
	}
	_, direct, err := plane.Query("segment", newest)
	if err != nil {
		t.Fatal(err)
	}
	if string(wire.Result) != string(direct) {
		t.Fatalf("wire result diverges from plane:\n  wire:  %s\n  plane: %s", wire.Result, direct)
	}
	var seg runner.SegmentResult
	if err := json.Unmarshal(wire.Result, &seg); err != nil {
		t.Fatalf("QUERY result is not a SegmentResult: %v", err)
	}
	if seg.NumSegments < 1 {
		t.Fatalf("segmentation found no segments: %+v", seg)
	}

	// Error paths answer ERR without dropping the connection.
	for _, bad := range []struct{ cmd, wantErr string }{
		{"QUERY nope latest", "unknown analysis"},
		{"QUERY segment 999999", "no result at epoch"},
		{"QUERY segment zero", "bad selector"},
		{"QUERY segment 0", "bad epoch"},
		{"QUERY segment 2031-01-01T00:00:00Z", "no window covers"},
		{"QUERY Segment latest", "bad analysis name"},
		{"QUERY", "usage"},
	} {
		if err := client.jsonCmd(bad.cmd, &struct{}{}); err == nil || !strings.Contains(err.Error(), bad.wantErr) {
			t.Fatalf("%q: err = %v, want %q", bad.cmd, err, bad.wantErr)
		}
	}
	// The connection survived the ERRs: latest still answers.
	if _, err := client.Query("summarize", 0); err != nil {
		t.Fatalf("connection unusable after ERR responses: %v", err)
	}
}

// TestQueryWithoutPlane pins the ERR for a server running without -live.
func TestQueryWithoutPlane(t *testing.T) {
	s := testServer(t)
	client, err := Dial(s.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()
	if _, err := client.Query("segment", 0); err == nil || !strings.Contains(err.Error(), "no analysis plane") {
		t.Fatalf("err = %v, want a no-plane ERR", err)
	}
}
