package analytics

import (
	"encoding/json"
	"errors"
	"fmt"
	"strconv"
	"strings"
)

// errQueryUsage is the canonical QUERY syntax error.
var errQueryUsage = errors.New(`usage: QUERY <analysis> [<epoch>|latest]`)

// parseQuery decodes a QUERY command's whitespace-split fields
// (fields[0] is the command word itself) into an analysis name and an
// epoch selector, where epoch 0 means "latest". It is a pure function of
// its input — no server state — so the fuzzer can drive it directly
// alongside the binary wire decoders.
func parseQuery(fields []string) (name string, epoch uint64, err error) {
	if len(fields) < 2 || len(fields) > 3 {
		return "", 0, errQueryUsage
	}
	name = fields[1]
	if !validAnalysisName(name) {
		return "", 0, fmt.Errorf("bad analysis name %q: want lowercase letters, digits, '.', '_' or '-'", name)
	}
	if len(fields) == 2 {
		return name, 0, nil
	}
	sel := fields[2]
	if strings.EqualFold(sel, "latest") {
		return name, 0, nil
	}
	n, perr := strconv.ParseUint(sel, 10, 64)
	if perr != nil || n == 0 {
		return "", 0, fmt.Errorf(`bad epoch %q: want a positive integer or "latest"`, sel)
	}
	return name, n, nil
}

// validAnalysisName bounds the QUERY name charset so a desynced binary
// stream read as a command line cannot smuggle arbitrary bytes into error
// messages or logs.
func validAnalysisName(s string) bool {
	if s == "" || len(s) > 64 {
		return false
	}
	for i := 0; i < len(s); i++ {
		c := s[i]
		switch {
		case c >= 'a' && c <= 'z':
		case c >= '0' && c <= '9':
		case c == '.' || c == '_' || c == '-':
		default:
			return false
		}
	}
	return true
}

// QueryResult is the QUERY response: one online analysis result pinned to
// the epoch whose snapshot produced it, so a "latest" answer is
// attributable and exactly re-queryable.
//
//wire:schema
type QueryResult struct {
	Analysis string          `json:"analysis"`
	Epoch    uint64          `json:"epoch"`
	Result   json.RawMessage `json:"result"`
}

func (s *Server) cmdQuery(fields []string) (any, error) {
	if s.plane == nil {
		return nil, errors.New("no analysis plane attached (start cloudgraphd with -live)")
	}
	name, epoch, err := parseQuery(fields)
	if err != nil {
		return nil, err
	}
	at, res, err := s.plane.Query(name, epoch)
	if err != nil {
		return nil, err
	}
	return QueryResult{Analysis: name, Epoch: at, Result: res}, nil
}
