package analytics

import (
	"encoding/json"
	"errors"
	"fmt"
	"strconv"
	"strings"
	"time"
)

// errQueryUsage is the canonical QUERY syntax error.
var errQueryUsage = errors.New(`usage: QUERY <analysis> [<epoch>|<rfc3339-time>|latest]`)

// querySelector is a decoded QUERY target: a raw epoch (0 = latest) or,
// when At is non-zero, a wall-clock instant to resolve through the
// timeline and the durable history index.
type querySelector struct {
	epoch uint64
	at    time.Time
}

// parseQuery decodes a QUERY command's whitespace-split fields (fields[0]
// is the command word itself) into an analysis name and a selector. It is
// a pure function of its input — no server state — so the fuzzer can
// drive it directly alongside the binary wire decoders. An RFC3339
// timestamp is one whitespace-free field, so it arrives whole.
func parseQuery(fields []string) (name string, sel querySelector, err error) {
	if len(fields) < 2 || len(fields) > 3 {
		return "", querySelector{}, errQueryUsage
	}
	name = fields[1]
	if !validAnalysisName(name) {
		return "", querySelector{}, fmt.Errorf("bad analysis name %q: want lowercase letters, digits, '.', '_' or '-'", name)
	}
	if len(fields) == 2 {
		return name, querySelector{}, nil
	}
	raw := fields[2]
	if strings.EqualFold(raw, "latest") {
		return name, querySelector{}, nil
	}
	if n, perr := strconv.ParseUint(raw, 10, 64); perr == nil {
		if n == 0 {
			return "", querySelector{}, fmt.Errorf(`bad epoch %q: want a positive integer, an RFC3339 time or "latest"`, raw)
		}
		return name, querySelector{epoch: n}, nil
	}
	if at, perr := time.Parse(time.RFC3339, raw); perr == nil {
		return name, querySelector{at: at}, nil
	}
	return "", querySelector{}, fmt.Errorf(`bad selector %q: want a positive integer epoch, an RFC3339 time or "latest"`, raw)
}

// validAnalysisName bounds the QUERY name charset so a desynced binary
// stream read as a command line cannot smuggle arbitrary bytes into error
// messages or logs.
func validAnalysisName(s string) bool {
	if s == "" || len(s) > 64 {
		return false
	}
	for i := 0; i < len(s); i++ {
		c := s[i]
		switch {
		case c >= 'a' && c <= 'z':
		case c >= '0' && c <= '9':
		case c == '.' || c == '_' || c == '-':
		default:
			return false
		}
	}
	return true
}

// QueryResult is the QUERY response: one online analysis result pinned to
// the epoch whose snapshot produced it, so a "latest" answer is
// attributable and exactly re-queryable.
//
//wire:schema
type QueryResult struct {
	Analysis string          `json:"analysis"`
	Epoch    uint64          `json:"epoch"`
	Result   json.RawMessage `json:"result"`
}

func cmdQuery(fields []string, ses *session) (any, error) {
	if ses.plane == nil {
		return nil, errors.New("no analysis plane attached (start cloudgraphd with -live)")
	}
	name, sel, err := parseQuery(fields)
	if err != nil {
		return nil, err
	}
	epoch := sel.epoch
	if !sel.at.IsZero() {
		ep, ok := ses.plane.ResolveTime(sel.at)
		if !ok {
			return nil, fmt.Errorf("no window covers %s (in memory or on disk)", sel.at.Format(time.RFC3339))
		}
		epoch = ep
	}
	at, res, err := ses.plane.Query(name, epoch)
	if err != nil {
		return nil, err
	}
	return QueryResult{Analysis: name, Epoch: at, Result: res}, nil
}
