package analytics

import (
	"net"
	"net/http/httptest"
	"runtime"
	"strings"
	"testing"
	"time"

	"cloudgraph/internal/core"
	"cloudgraph/internal/telemetry"
)

func TestServerStalledConnTimesOut(t *testing.T) {
	reg := telemetry.NewRegistry()
	s, err := ServeWith("127.0.0.1:0", core.Config{Window: time.Hour, Telemetry: reg},
		Options{IdleTimeout: 50 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	conn, err := net.Dial("tcp", s.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	// Send half a command and stall: the server must cut us off at the
	// idle deadline rather than wait forever for the newline.
	if _, err := conn.Write([]byte("STA")); err != nil {
		t.Fatal(err)
	}
	if err := conn.SetReadDeadline(time.Now().Add(5 * time.Second)); err != nil {
		t.Fatal(err)
	}
	var buf [1]byte
	if _, err := conn.Read(buf[:]); err == nil {
		t.Fatal("read returned data; want connection closed by idle deadline")
	}

	deadline := time.Now().Add(5 * time.Second)
	for s.tel.timeouts.Value() == 0 && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	if got := s.tel.timeouts.Value(); got != 1 {
		t.Errorf("timeout counter = %d, want 1", got)
	}
	if got := s.tel.conns.Value(); got != 1 {
		t.Errorf("connections counter = %d, want 1", got)
	}
}

func TestServerCloseUnblocksStalledConn(t *testing.T) {
	// The leak scenario: with default (minutes-long) deadlines a stalled
	// peer would pin its handler goroutine long past Close unless Close
	// force-closes tracked connections. Close must return promptly and
	// leave no handler goroutines behind.
	before := runtime.NumGoroutine()

	s, err := Serve("127.0.0.1:0", core.Config{Window: time.Hour})
	if err != nil {
		t.Fatal(err)
	}
	conn, err := net.Dial("tcp", s.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if _, err := conn.Write([]byte("STATS")); err != nil { // no newline: stalled mid-command
		t.Fatal(err)
	}

	done := make(chan error, 1)
	go func() { done <- s.Close() }()
	select {
	case err := <-done:
		if err != nil {
			t.Errorf("Close: %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Close blocked on a stalled connection")
	}

	// All accept/handler goroutines must be gone once Close returns.
	deadline := time.Now().Add(5 * time.Second)
	for runtime.NumGoroutine() > before && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	if got := runtime.NumGoroutine(); got > before {
		buf := make([]byte, 1<<20)
		t.Errorf("goroutines leaked: %d -> %d\n%s", before, got, buf[:runtime.Stack(buf, true)])
	}
}

func TestGraphzHandler(t *testing.T) {
	e := core.NewEngine(core.Config{Window: time.Hour})
	h := GraphzHandler(e)

	rr := httptest.NewRecorder()
	h.ServeHTTP(rr, httptest.NewRequest("GET", "/graphz", nil))
	if rr.Code != 404 {
		t.Errorf("empty engine: status = %d, want 404", rr.Code)
	}

	e.Ingest(hourOf(t, testCluster(t), t0))
	e.Flush()

	rr = httptest.NewRecorder()
	h.ServeHTTP(rr, httptest.NewRequest("GET", "/graphz?size=16", nil))
	if rr.Code != 200 {
		t.Fatalf("status = %d, want 200", rr.Code)
	}
	body := rr.Body.String()
	if !strings.Contains(body, "nodes") || len(strings.Split(body, "\n")) < 3 {
		t.Errorf("ascii heatmap missing header or rows:\n%s", body)
	}

	rr = httptest.NewRecorder()
	h.ServeHTTP(rr, httptest.NewRequest("GET", "/graphz?format=pgm", nil))
	if rr.Code != 200 || !strings.HasPrefix(rr.Body.String(), "P5\n") {
		t.Errorf("pgm: status = %d, body prefix %q", rr.Code, rr.Body.String()[:8])
	}

	rr = httptest.NewRecorder()
	h.ServeHTTP(rr, httptest.NewRequest("GET", "/graphz?size=9999", nil))
	if rr.Code != 400 {
		t.Errorf("oversized size: status = %d, want 400", rr.Code)
	}
}
