package analytics

import (
	"bufio"
	"fmt"
	"net"
	"net/netip"
	"strings"
	"testing"
	"time"

	"cloudgraph/internal/cluster"
	"cloudgraph/internal/core"
	"cloudgraph/internal/flowlog"
)

var t0 = time.Unix(1700000000, 0).UTC().Truncate(time.Hour)

func testServer(t *testing.T) *Server {
	t.Helper()
	s, err := Serve("127.0.0.1:0", core.Config{Window: time.Hour})
	if err != nil {
		t.Fatalf("Serve: %v", err)
	}
	t.Cleanup(func() { s.Close() })
	return s
}

func testCluster(t *testing.T) *cluster.Cluster {
	t.Helper()
	c, err := cluster.New(cluster.Spec{
		Name: "svc-test", Seed: 9,
		Roles: []cluster.RoleSpec{
			{Name: "fe", Count: 3, Port: 443},
			{Name: "be", Count: 2, Port: 9000},
		},
		Links: []cluster.LinkSpec{
			{Src: "fe", Dst: "be", FlowsPerMin: 20, Fanout: -1, FwdBytes: 1000, RevBytes: 2000},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func hourOf(t *testing.T, c *cluster.Cluster, start time.Time) []flowlog.Record {
	t.Helper()
	var recs []flowlog.Record
	_, err := c.Run(start, 60, collectorFunc(func(b []flowlog.Record) error {
		recs = append(recs, b...)
		return nil
	}))
	if err != nil {
		t.Fatal(err)
	}
	return recs
}

type collectorFunc func([]flowlog.Record) error

func (f collectorFunc) Collect(r []flowlog.Record) error { return f(r) }

func TestServerEndToEnd(t *testing.T) {
	s := testServer(t)
	c := testCluster(t)

	client, err := Dial(s.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()

	recs := hourOf(t, c, t0)
	if err := client.Ingest(recs); err != nil {
		t.Fatalf("Ingest: %v", err)
	}
	n, err := client.Flush()
	if err != nil || n != 1 {
		t.Fatalf("Flush = %d, %v; want 1 window", n, err)
	}
	stats, err := client.Stats()
	if err != nil {
		t.Fatalf("Stats: %v", err)
	}
	if stats.Records != int64(len(recs)) || stats.Windows != 1 || stats.Nodes != 5 {
		t.Errorf("stats = %+v", stats)
	}
	if stats.Headline == "" {
		t.Error("missing headline")
	}

	windows, err := client.Windows()
	if err != nil || len(windows) != 1 {
		t.Fatalf("Windows = %v, %v", windows, err)
	}
	if windows[0].Nodes != 5 || windows[0].Bytes == 0 {
		t.Errorf("window info = %+v", windows[0])
	}

	learn, err := client.Learn()
	if err != nil {
		t.Fatalf("Learn: %v", err)
	}
	if learn.Nodes != 5 || learn.Segments < 2 {
		t.Errorf("learn = %+v", learn)
	}
	segs, err := client.Segments()
	if err != nil || len(segs) != 5 {
		t.Fatalf("Segments = %v, %v", segs, err)
	}

	mon, err := client.Monitor()
	if err != nil {
		t.Fatalf("Monitor: %v", err)
	}
	if mon.Violations != 0 {
		t.Errorf("clean window shows %d violations", mon.Violations)
	}
}

func TestServerDetectsAttackWindow(t *testing.T) {
	s := testServer(t)
	c := testCluster(t)
	client, err := Dial(s.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()

	if err := client.Ingest(hourOf(t, c, t0)); err != nil {
		t.Fatal(err)
	}
	c.AddAttack(cluster.PortScan{
		AttackerRole: "fe", AttackerIdx: 0, TargetRole: "fe",
		PortsPerMin: 40, Start: t0.Add(time.Hour), Duration: time.Hour,
	})
	if err := client.Ingest(hourOf(t, c, t0.Add(time.Hour))); err != nil {
		t.Fatal(err)
	}
	if _, err := client.Flush(); err != nil {
		t.Fatal(err)
	}
	// Learn on the latest (attack) window would bake the attack in; the
	// protocol learns on latest, so for this test learn then monitor the
	// same window: violations 0. Instead verify the full flow by learning
	// after first flush in a fresh scenario is covered above; here check
	// MONITOR errors without LEARN.
	if _, err := client.Monitor(); err == nil {
		t.Fatal("Monitor without LEARN should error")
	}
	if _, err := client.Learn(); err != nil {
		t.Fatal(err)
	}
	mon, err := client.Monitor()
	if err != nil {
		t.Fatal(err)
	}
	if mon.Violations != 0 {
		t.Errorf("learned-on window should self-check clean, got %d", mon.Violations)
	}
}

func TestServerErrorsAndUnknownCommand(t *testing.T) {
	s := testServer(t)
	conn, err := net.Dial("tcp", s.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	r := bufio.NewReader(conn)

	fmt.Fprintf(conn, "BOGUS\n")
	line, _ := r.ReadString('\n')
	if !strings.HasPrefix(line, "ERR") {
		t.Errorf("unknown command response = %q", line)
	}
	fmt.Fprintf(conn, "LEARN\n")
	line, _ = r.ReadString('\n')
	if !strings.HasPrefix(line, "ERR") {
		t.Errorf("LEARN without windows = %q", line)
	}
	fmt.Fprintf(conn, "INGEST nope\n")
	line, _ = r.ReadString('\n')
	if !strings.HasPrefix(line, "ERR") {
		t.Errorf("bad INGEST count = %q", line)
	}
	// Server should still respond after errors.
	fmt.Fprintf(conn, "STATS\n")
	line, _ = r.ReadString('\n')
	if !strings.Contains(line, "\"records\"") {
		t.Errorf("STATS after errors = %q", line)
	}
	fmt.Fprintf(conn, "QUIT\n")
	line, _ = r.ReadString('\n')
	if !strings.HasPrefix(line, "OK") {
		t.Errorf("QUIT = %q", line)
	}
}

func TestServerConcurrentClients(t *testing.T) {
	s := testServer(t)
	c := testCluster(t)
	recs := hourOf(t, c, t0)
	half := len(recs) / 2

	errs := make(chan error, 2)
	for i := 0; i < 2; i++ {
		part := recs[:half]
		if i == 1 {
			part = recs[half:]
		}
		go func(batch []flowlog.Record) {
			client, err := Dial(s.Addr())
			if err != nil {
				errs <- err
				return
			}
			defer client.Close()
			errs <- client.Ingest(batch)
		}(part)
	}
	for i := 0; i < 2; i++ {
		if err := <-errs; err != nil {
			t.Fatal(err)
		}
	}
	client, _ := Dial(s.Addr())
	defer client.Close()
	if _, err := client.Flush(); err != nil {
		t.Fatal(err)
	}
	stats, err := client.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if stats.Records != int64(len(recs)) {
		t.Errorf("records = %d, want %d", stats.Records, len(recs))
	}
}

func TestServerIngestCorruptFrameKeepsProtocol(t *testing.T) {
	// Regression: a mid-batch decode error used to return without
	// consuming the remaining frames, so the leftover binary bytes were
	// parsed as commands and the connection was poisoned.
	s := testServer(t)
	conn, err := net.Dial("tcp", s.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	r := bufio.NewReader(conn)

	valid := flowlog.Record{
		Time: t0, LocalIP: netip.MustParseAddr("10.0.0.1"), LocalPort: 30000,
		RemoteIP: netip.MustParseAddr("10.0.0.2"), RemotePort: 443,
		PacketsSent: 1, BytesSent: 100,
	}
	frame := flowlog.AppendBinary(nil, valid)
	corrupt := make([]byte, flowlog.WireSize) // all-zero: unspecified addresses

	fmt.Fprintf(conn, "INGEST 3\n")
	conn.Write(frame)
	conn.Write(corrupt)
	conn.Write(frame)
	line, _ := r.ReadString('\n')
	if !strings.HasPrefix(line, "ERR") {
		t.Fatalf("corrupt batch response = %q, want ERR", line)
	}
	// The stream must be command-aligned again: a valid command right
	// after the failed batch gets its normal response.
	fmt.Fprintf(conn, "STATS\n")
	line, _ = r.ReadString('\n')
	if !strings.Contains(line, "\"records\"") {
		t.Fatalf("STATS after corrupt batch = %q, want JSON stats", line)
	}
	// And a clean batch on the same connection still ingests.
	fmt.Fprintf(conn, "INGEST 1\n")
	conn.Write(frame)
	line, _ = r.ReadString('\n')
	if !strings.HasPrefix(line, "OK 1") {
		t.Fatalf("INGEST after corrupt batch = %q, want OK 1", line)
	}
}

func testRecords(client, flows int) []flowlog.Record {
	recs := make([]flowlog.Record, 0, flows)
	for i := 0; i < flows; i++ {
		recs = append(recs, flowlog.Record{
			Time:      t0.Add(time.Duration(i%60) * time.Minute),
			LocalIP:   netip.AddrFrom4([4]byte{10, 0, byte(client + 1), byte(i%250 + 1)}),
			LocalPort: uint16(30000 + i), RemoteIP: netip.AddrFrom4([4]byte{10, 0, 99, byte(client + 1)}),
			RemotePort:  443,
			PacketsSent: 1, BytesSent: uint64(100 + i), PacketsRcvd: 1, BytesRcvd: 50,
		})
	}
	return recs
}

func TestServerConcurrentMixedCommands(t *testing.T) {
	// Several clients hammer one sharded server with the full command mix
	// concurrently (run with -race): every response must stay coherent
	// and no records may be lost.
	s, err := Serve("127.0.0.1:0", core.Config{Window: time.Hour, Shards: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	const clients = 6
	const flows = 200
	errs := make(chan error, clients)
	for cl := 0; cl < clients; cl++ {
		go func(cl int) {
			errs <- func() error {
				c, err := Dial(s.Addr())
				if err != nil {
					return err
				}
				defer c.Close()
				recs := testRecords(cl, flows)
				for i := 0; i < len(recs); i += 32 {
					end := i + 32
					if end > len(recs) {
						end = len(recs)
					}
					if err := c.Ingest(recs[i:end]); err != nil {
						return err
					}
					if _, err := c.Stats(); err != nil {
						return err
					}
				}
				if _, err := c.Flush(); err != nil {
					return err
				}
				// LEARN/MONITOR race against other clients' window churn;
				// protocol-level errors (e.g. nothing to learn yet) are
				// fine, transport desync is not.
				if _, err := c.Learn(); err != nil && !strings.Contains(err.Error(), "analytics:") {
					return err
				}
				if _, err := c.Monitor(); err != nil && !strings.Contains(err.Error(), "analytics:") {
					return err
				}
				if _, err := c.Windows(); err != nil {
					return err
				}
				return nil
			}()
		}(cl)
	}
	for i := 0; i < clients; i++ {
		if err := <-errs; err != nil {
			t.Fatal(err)
		}
	}

	c, err := Dial(s.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if _, err := c.Flush(); err != nil {
		t.Fatal(err)
	}
	stats, err := c.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if stats.Records != int64(clients*flows) {
		t.Errorf("records = %d, want %d", stats.Records, clients*flows)
	}
	if stats.Workers != 4 || len(stats.Shards) != 4 {
		t.Errorf("stats workers = %d, shards = %d, want 4", stats.Workers, len(stats.Shards))
	}
	var perShard int64
	for _, sh := range stats.Shards {
		perShard += sh.Records
	}
	if perShard != stats.Records {
		t.Errorf("per-shard records sum to %d, meter says %d", perShard, stats.Records)
	}
}

func TestClientDialFailure(t *testing.T) {
	if _, err := Dial("127.0.0.1:1"); err == nil {
		t.Error("Dial to closed port should fail")
	}
}

func TestServerSummaryAndAnomalies(t *testing.T) {
	s := testServer(t)
	c := testCluster(t)
	client, err := Dial(s.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()
	if _, err := client.Summary(); err == nil {
		t.Error("SUMMARY without windows should error")
	}
	for h := 0; h < 2; h++ {
		if err := client.Ingest(hourOf(t, c, t0.Add(time.Duration(h)*time.Hour))); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := client.Flush(); err != nil {
		t.Fatal(err)
	}
	sum, err := client.Summary()
	if err != nil {
		t.Fatalf("Summary: %v", err)
	}
	if sum.Headline == "" || sum.Attribution == "" {
		t.Errorf("summary = %+v", sum)
	}
	total := sum.CliquePct + sum.HubPct + sum.TailPct + sum.ScatterPct
	if total < 99.9 || total > 100.1 {
		t.Errorf("attribution pcts sum to %v", total)
	}
	an, err := client.Anomalies()
	if err != nil || len(an) != 2 {
		t.Fatalf("Anomalies = %v, %v", an, err)
	}
	if an[1].Drift <= 0 {
		t.Error("second window should show some drift")
	}
}
