package analytics

import (
	"bufio"
	"encoding/json"
	"fmt"
	"net"
	"strconv"
	"strings"
	"time"

	"cloudgraph/internal/flowlog"
	"cloudgraph/internal/trace"
)

// Client speaks the analytics protocol. It is not safe for concurrent use;
// open one client per goroutine.
type Client struct {
	conn net.Conn
	r    *bufio.Reader
	w    *bufio.Writer
}

// Dial connects to a server.
func Dial(addr string) (*Client, error) {
	conn, err := net.DialTimeout("tcp", addr, 5*time.Second)
	if err != nil {
		return nil, err
	}
	return &Client{
		conn: conn,
		r:    bufio.NewReaderSize(conn, 64<<10),
		w:    bufio.NewWriterSize(conn, 256<<10),
	}, nil
}

// Close sends QUIT and closes the connection. A QUIT write failure is
// reported in preference to the close error, which is usually a
// consequence of the same broken connection.
func (c *Client) Close() error {
	werr := c.send("QUIT\n")
	cerr := c.conn.Close()
	if werr != nil {
		return werr
	}
	return cerr
}

// send writes one command line and flushes it to the server.
func (c *Client) send(format string, args ...any) error {
	if _, err := fmt.Fprintf(c.w, format, args...); err != nil {
		return err
	}
	return c.w.Flush()
}

// readLine reads one response line, translating ERR responses to errors.
func (c *Client) readLine() (string, error) {
	line, err := c.r.ReadString('\n')
	if err != nil {
		return "", err
	}
	line = strings.TrimSpace(line)
	if strings.HasPrefix(line, "ERR ") {
		return "", fmt.Errorf("analytics: %s", strings.TrimPrefix(line, "ERR "))
	}
	return line, nil
}

// Ingest streams a batch of records.
func (c *Client) Ingest(recs []flowlog.Record) error {
	if _, err := fmt.Fprintf(c.w, "INGEST %d\n", len(recs)); err != nil {
		return err
	}
	buf := make([]byte, 0, flowlog.WireSize)
	for _, r := range recs {
		buf = flowlog.AppendBinary(buf[:0], r)
		if _, err := c.w.Write(buf); err != nil {
			return err
		}
	}
	return c.finishIngest(len(recs))
}

// IngestTraced streams a batch with its out-of-band trace contexts using
// the flagged-frame variant of INGEST. tcs must be nil or parallel to
// recs; with no sampled context (or nil tcs) it falls back to the legacy
// framing, so an untraced caller never pays the flag bytes.
func (c *Client) IngestTraced(recs []flowlog.Record, tcs []trace.Context) error {
	sampled := false
	if len(tcs) == len(recs) {
		for _, tc := range tcs {
			if tc.Sampled() {
				sampled = true
				break
			}
		}
	}
	if !sampled {
		return c.Ingest(recs)
	}
	if _, err := fmt.Fprintf(c.w, "INGEST %d T\n", len(recs)); err != nil {
		return err
	}
	buf := make([]byte, 0, 1+flowlog.WireSize+traceFieldSize)
	for i, r := range recs {
		buf = appendFlaggedFrame(buf[:0], r, tcs[i])
		if _, err := c.w.Write(buf); err != nil {
			return err
		}
	}
	return c.finishIngest(len(recs))
}

// Tenant switches the connection's session tenant: every later command
// reads and ingests that tenant's pipeline plane. The server admits the
// realm on first use; invalid names, the tenant cap, or a single-engine
// server (for any tenant but the default) answer ERR.
func (c *Client) Tenant(name string) error {
	if strings.ContainsAny(name, " \t\r\n") || name == "" {
		return fmt.Errorf("bad tenant %q", name)
	}
	if err := c.send("TENANT %s\n", name); err != nil {
		return err
	}
	_, err := c.readLine()
	return err
}

// IngestTagged streams a batch with per-record tenant tags using the
// flagged-frame variant of INGEST. tenants must be parallel to recs; ""
// leaves a record on the connection's session tenant. tcs may be nil or
// parallel trace contexts.
func (c *Client) IngestTagged(recs []flowlog.Record, tcs []trace.Context, tenants []string) error {
	if len(tenants) != len(recs) {
		return fmt.Errorf("tenants not parallel: %d tags for %d records", len(tenants), len(recs))
	}
	if _, err := fmt.Fprintf(c.w, "INGEST %d T\n", len(recs)); err != nil {
		return err
	}
	buf := make([]byte, 0, 1+flowlog.WireSize+traceFieldSize+1+64)
	for i, r := range recs {
		var tc trace.Context
		if tcs != nil {
			tc = tcs[i]
		}
		buf = appendTaggedFrame(buf[:0], r, tc, tenants[i])
		if _, err := c.w.Write(buf); err != nil {
			return err
		}
	}
	return c.finishIngest(len(recs))
}

// finishIngest flushes a written batch and checks the OK response.
func (c *Client) finishIngest(n int) error {
	if err := c.w.Flush(); err != nil {
		return err
	}
	line, err := c.readLine()
	if err != nil {
		return err
	}
	var got int
	if _, err := fmt.Sscanf(line, "OK %d", &got); err != nil || got != n {
		return fmt.Errorf("analytics: unexpected ingest response %q", line)
	}
	return nil
}

// Flush closes open windows server-side and returns the window count.
func (c *Client) Flush() (int, error) {
	if err := c.send("FLUSH\n"); err != nil {
		return 0, err
	}
	line, err := c.readLine()
	if err != nil {
		return 0, err
	}
	return strconv.Atoi(strings.TrimPrefix(line, "OK "))
}

// jsonCmd sends a command and decodes the JSON line response into out.
func (c *Client) jsonCmd(cmd string, out any) error {
	if err := c.send("%s\n", cmd); err != nil {
		return err
	}
	line, err := c.readLine()
	if err != nil {
		return err
	}
	return json.Unmarshal([]byte(line), out)
}

// Stats fetches server statistics.
func (c *Client) Stats() (Stats, error) {
	var s Stats
	err := c.jsonCmd("STATS", &s)
	return s, err
}

// Windows lists completed windows.
func (c *Client) Windows() ([]WindowInfo, error) {
	var ws []WindowInfo
	err := c.jsonCmd("WINDOWS", &ws)
	return ws, err
}

// Learn segments the latest window and learns the policy baseline.
func (c *Client) Learn() (LearnResult, error) {
	var r LearnResult
	err := c.jsonCmd("LEARN", &r)
	return r, err
}

// Segments fetches the learned node-to-segment assignment.
func (c *Client) Segments() (map[string]int, error) {
	out := make(map[string]int)
	err := c.jsonCmd("SEGMENTS", &out)
	return out, err
}

// Monitor evaluates the latest window against the baseline.
func (c *Client) Monitor() (MonitorResult, error) {
	var r MonitorResult
	err := c.jsonCmd("MONITOR", &r)
	return r, err
}

// Summary fetches the latest window's succinct summary and attribution.
func (c *Client) Summary() (SummaryResult, error) {
	var r SummaryResult
	err := c.jsonCmd("SUMMARY", &r)
	return r, err
}

// Query fetches the named online analysis result at an epoch; epoch 0
// sends the "latest" selector. Requires a server with an analysis plane
// attached (cloudgraphd -live).
func (c *Client) Query(analysis string, epoch uint64) (QueryResult, error) {
	if epoch > 0 {
		return c.QuerySelector(analysis, strconv.FormatUint(epoch, 10))
	}
	return c.QuerySelector(analysis, "latest")
}

// QuerySelector sends a raw QUERY selector — a positive epoch, an RFC3339
// timestamp (resolved server-side through the timeline and the durable
// history index), or "latest".
func (c *Client) QuerySelector(analysis, selector string) (QueryResult, error) {
	if strings.ContainsAny(selector, " \t\r\n") || selector == "" {
		return QueryResult{}, fmt.Errorf("bad selector %q", selector)
	}
	var r QueryResult
	err := c.jsonCmd(fmt.Sprintf("QUERY %s %s", analysis, selector), &r)
	return r, err
}

// Anomalies fetches per-window drift scores.
func (c *Client) Anomalies() ([]AnomalyResult, error) {
	var r []AnomalyResult
	err := c.jsonCmd("ANOMALIES", &r)
	return r, err
}
