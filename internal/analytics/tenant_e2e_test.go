package analytics

import (
	"fmt"
	"testing"
	"time"

	"cloudgraph/internal/cluster"
	"cloudgraph/internal/core"
	"cloudgraph/internal/flowlog"
	"cloudgraph/internal/realm"
	"cloudgraph/internal/timeline"
)

// tenantCluster builds a deterministic per-tenant workload; the seed and
// shape differ per tenant so no two tenants' analyses could collide by
// accident.
func tenantCluster(t *testing.T, seed int64, fe, be int) *cluster.Cluster {
	t.Helper()
	c, err := cluster.New(cluster.Spec{
		Name: fmt.Sprintf("svc-%d", seed), Seed: seed,
		Roles: []cluster.RoleSpec{
			{Name: "fe", Count: fe, Port: 443},
			{Name: "be", Count: be, Port: 9000},
		},
		Links: []cluster.LinkSpec{
			{Src: "fe", Dst: "be", FlowsPerMin: float64(10 + seed), Fanout: -1, FwdBytes: 1000, RevBytes: 2000},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	return c
}

// realmServer starts a multi-tenant server whose per-tenant engine and
// plane configuration matches liveServer's single-engine config exactly:
// the isolation equivalence below is only well-defined because both
// sides run identical pipelines.
func realmServer(t *testing.T, window time.Duration) (*Server, *realm.Manager) {
	t.Helper()
	m, err := realm.NewManager(realm.Config{
		Engine:   core.Config{Window: window, Shards: 4},
		Live:     true,
		Timeline: timeline.Config{Rollup: time.Hour},
		// Two slots for four-plus planes: admission is contended, so the
		// scheduler is actually in the loop for every window.
		Workers: 2,
	})
	if err != nil {
		t.Fatalf("NewManager: %v", err)
	}
	s, err := ServeRealms("127.0.0.1:0", m, nil, Options{})
	if err != nil {
		t.Fatalf("ServeRealms: %v", err)
	}
	t.Cleanup(func() {
		s.Close()
		m.Close()
	})
	return s, m
}

// TestTenantIsolationEquivalence pins the realm isolation contract at
// the wire level: three tenants interleaved through one multi-tenant
// server — mixed tagged batches, plus one tenant riding the session
// tenant untagged — must produce per-tenant QUERY results byte-identical
// to each tenant running alone on a dedicated single-engine server, for
// every analysis at every epoch.
func TestTenantIsolationEquivalence(t *testing.T) {
	window := 15 * time.Minute
	tenants := []string{"alpha", "bravo", "charlie"}
	streams := map[string][]flowlog.Record{
		"alpha":   hourOf(t, tenantCluster(t, 3, 3, 2), t0),
		"bravo":   hourOf(t, tenantCluster(t, 7, 2, 3), t0),
		"charlie": hourOf(t, tenantCluster(t, 11, 4, 1), t0),
	}

	// Solo baselines: each tenant alone on its own single-engine server.
	solo := make(map[string]map[string][]string) // tenant -> analysis -> result per epoch
	var analyses []string
	var epochs uint64
	for _, name := range tenants {
		s, plane := liveServer(t, window)
		client, err := Dial(s.Addr())
		if err != nil {
			t.Fatal(err)
		}
		if err := client.Ingest(streams[name]); err != nil {
			t.Fatal(err)
		}
		if _, err := client.Flush(); err != nil {
			t.Fatal(err)
		}
		analyses = plane.Runners()
		_, newest := plane.Epochs(analyses[0])
		if newest == 0 {
			t.Fatalf("tenant %s: solo plane saw no windows", name)
		}
		if epochs == 0 {
			epochs = newest
		} else if newest != epochs {
			t.Fatalf("tenant %s: solo epochs %d, others %d", name, newest, epochs)
		}
		solo[name] = make(map[string][]string)
		for _, a := range analyses {
			for ep := uint64(1); ep <= newest; ep++ {
				res, err := client.Query(a, ep)
				if err != nil {
					t.Fatalf("tenant %s solo QUERY %s %d: %v", name, a, ep, err)
				}
				solo[name][a] = append(solo[name][a], string(res.Result))
			}
		}
		client.Close()
		s.Close()
	}

	// The combined run: one server, the three streams merged
	// chronologically. alpha and bravo ride per-frame tags in mixed
	// batches; charlie is the session tenant, so its frames go untagged
	// and resolve through the TENANT binding.
	srv, m := realmServer(t, window)
	client, err := Dial(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()
	if err := client.Tenant("charlie"); err != nil {
		t.Fatal(err)
	}
	merged, tags := mergeStreams(tenants, streams)
	for i := range tags {
		if tags[i] == "charlie" {
			tags[i] = ""
		}
	}
	const batch = 512
	for i := 0; i < len(merged); i += batch {
		end := min(i+batch, len(merged))
		if err := client.IngestTagged(merged[i:end], nil, tags[i:end]); err != nil {
			t.Fatal(err)
		}
	}
	for _, name := range tenants {
		if err := client.Tenant(name); err != nil {
			t.Fatal(err)
		}
		if _, err := client.Flush(); err != nil {
			t.Fatalf("tenant %s flush: %v", name, err)
		}
	}

	// Per-tenant accounting held: each realm metered exactly its own
	// stream, and the default tenant saw nothing.
	for _, name := range tenants {
		r := m.Get(name)
		if r == nil {
			t.Fatalf("tenant %s not admitted", name)
		}
		if got := r.Cost().Records; got != int64(len(streams[name])) {
			t.Errorf("tenant %s metered %d records, want %d", name, got, len(streams[name]))
		}
	}
	if got := m.Default().Cost().Records; got != 0 {
		t.Errorf("default tenant metered %d records, want 0", got)
	}

	// The pin: every analysis at every epoch, byte-identical to solo.
	for _, name := range tenants {
		if err := client.Tenant(name); err != nil {
			t.Fatal(err)
		}
		for _, a := range analyses {
			for ep := uint64(1); ep <= epochs; ep++ {
				res, err := client.Query(a, ep)
				if err != nil {
					t.Fatalf("tenant %s QUERY %s %d: %v", name, a, ep, err)
				}
				if got, want := string(res.Result), solo[name][a][ep-1]; got != want {
					t.Errorf("tenant %s %s epoch %d diverges from solo run:\n  multi: %s\n  solo:  %s",
						name, a, ep, got, want)
				}
			}
		}
	}
}

// mergeStreams interleaves per-tenant record streams chronologically
// (ties to the earlier tenant in order), returning the merged records
// with a parallel tenant tag slice.
func mergeStreams(order []string, streams map[string][]flowlog.Record) ([]flowlog.Record, []string) {
	total := 0
	for _, name := range order {
		total += len(streams[name])
	}
	merged := make([]flowlog.Record, 0, total)
	tags := make([]string, 0, total)
	idx := make([]int, len(order))
	for {
		best := -1
		for i, name := range order {
			if idx[i] >= len(streams[name]) {
				continue
			}
			if best < 0 || streams[name][idx[i]].Time.Before(streams[order[best]][idx[best]].Time) {
				best = i
			}
		}
		if best < 0 {
			return merged, tags
		}
		merged = append(merged, streams[order[best]][idx[best]])
		tags = append(tags, order[best])
		idx[best]++
	}
}
