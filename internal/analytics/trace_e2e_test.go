package analytics

import (
	"bufio"
	"net"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"cloudgraph/internal/core"
	"cloudgraph/internal/flowlog"
	"cloudgraph/internal/graph"
	"cloudgraph/internal/store"
	"cloudgraph/internal/trace"
)

// tracedClientCollector adapts a *Client to nicsim.TracedCollector so the
// fabric's out-of-band contexts ride the wire protocol's flagged frames.
type tracedClientCollector struct{ c *Client }

func (t tracedClientCollector) Collect(recs []flowlog.Record) error { return t.c.Ingest(recs) }
func (t tracedClientCollector) CollectTraced(recs []flowlog.Record, tcs []trace.Context) error {
	return t.c.IngestTraced(recs, tcs)
}

// pipelineStages is the Figure 8 journey a sampled record's trace must
// cover, in causal order.
var pipelineStages = []string{"nicsim.pull", "wire.ingest", "core.shard", "core.merge", "store.append"}

// TestTraceEndToEnd runs the whole pipeline — simulated NICs, the wire
// protocol, the windowing engine, the store — under one tracer with
// sampling on, and asserts a sampled record leaves exactly one span per
// stage, in order, under a single trace ID, retrievable from /tracez. It
// then injects a protocol fault and asserts /flightz serves the pre-fault
// window with the trip.
func TestTraceEndToEnd(t *testing.T) {
	tr := trace.New(trace.Options{
		SampleEvery:  1, // sample everything: the test wants complete journeys
		Seed:         7,
		MaxTraces:    1 << 16, // retain every trace of the small workload
		FlightEvents: 1 << 12,
	})

	w, err := store.Create(filepath.Join(t.TempDir(), "windows.cgraph"))
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	w.Trace(tr)

	s, err := Serve("127.0.0.1:0", core.Config{
		Window:   time.Hour,
		Trace:    tr,
		OnWindow: func(g *graph.Graph) { _ = w.Append(g) },
	})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	cl, err := Dial(s.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	c := testCluster(t)
	c.Fabric().Trace(tr)
	if _, err := c.Run(t0, 5, tracedClientCollector{cl}); err != nil {
		t.Fatal(err)
	}
	if _, err := cl.Flush(); err != nil { // close the window: merge + store append
		t.Fatal(err)
	}

	// Find a trace covering the full journey. With sampling at 1-in-1 and
	// no eviction, every sampled record that landed in the flushed window
	// must have one; finding none means a stage dropped its context.
	rec := tr.Recorder()
	var full uint64
	for _, id := range rec.TraceIDs() {
		spans := rec.Trace(id)
		if len(spans) != len(pipelineStages) {
			continue
		}
		ok := true
		for i, sp := range spans { // rec.Trace returns start order
			if sp.Stage != pipelineStages[i] {
				ok = false
				break
			}
			if sp.TraceID != id {
				t.Fatalf("trace %016x holds a span with trace ID %016x", id, sp.TraceID)
			}
		}
		if ok {
			full = id
			break
		}
	}
	if full == 0 {
		t.Fatalf("no trace covers all stages %v (retained %d traces)", pipelineStages, len(rec.TraceIDs()))
	}

	// The journey must be retrievable from /tracez.
	hw := httptest.NewRecorder()
	trace.TracezHandler(rec).ServeHTTP(hw,
		httptest.NewRequest(http.MethodGet, "/tracez?trace="+strings.TrimLeft(hexID(full), "0"), nil))
	if hw.Code != http.StatusOK {
		t.Fatalf("/tracez: code %d body %s", hw.Code, hw.Body.String())
	}
	for _, stage := range pipelineStages {
		if !strings.Contains(hw.Body.String(), stage) {
			t.Fatalf("/tracez waterfall missing stage %q:\n%s", stage, hw.Body.String())
		}
	}

	// Inject a protocol error over a raw connection; the server trips the
	// flight recorder before replying, so once ERR is read the trip is in
	// the ring.
	conn, err := net.Dial("tcp", s.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if _, err := conn.Write([]byte("BOGUS\n")); err != nil {
		t.Fatal(err)
	}
	line, err := bufio.NewReader(conn).ReadString('\n')
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(line, "ERR ") {
		t.Fatalf("want ERR, got %q", line)
	}

	fw := httptest.NewRecorder()
	trace.FlightzHandler(tr.Flight()).ServeHTTP(fw, httptest.NewRequest(http.MethodGet, "/flightz", nil))
	if fw.Code != http.StatusOK {
		t.Fatalf("/flightz: code %d", fw.Code)
	}
	dump := fw.Body.String()
	if !strings.Contains(dump, "protocol error") {
		t.Fatalf("/flightz missing the injected fault:\n%s", truncate(dump, 2000))
	}
	// The pre-fault window: pipeline spans recorded before the fault must
	// appear in the same dump, ahead of the trip.
	spanAt := strings.Index(dump, "store.append")
	tripAt := strings.Index(dump, "protocol error")
	if spanAt == -1 || spanAt > tripAt {
		t.Fatalf("/flightz pre-fault window missing or misordered (span@%d trip@%d):\n%s",
			spanAt, tripAt, truncate(dump, 2000))
	}
}

// TestTraceLegacyIngestSamplesServerSide: legacy INGEST batches carry no
// contexts, so the server samples them itself — the daemon's -trace-sample
// must trace file-driven ingest too, with journeys starting at the wire.
func TestTraceLegacyIngestSamplesServerSide(t *testing.T) {
	tr := trace.New(trace.Options{SampleEvery: 1, Seed: 3, MaxTraces: 1 << 16})
	s, err := Serve("127.0.0.1:0", core.Config{Window: time.Hour, Trace: tr})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	cl, err := Dial(s.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	c := testCluster(t)
	recs := hourOf(t, c, t0)[:64]
	if err := cl.Ingest(recs); err != nil { // legacy, unflagged path
		t.Fatal(err)
	}
	if _, err := cl.Flush(); err != nil {
		t.Fatal(err)
	}

	wireStages := []string{"wire.ingest", "core.shard", "core.merge", "store.append"}
	for _, id := range tr.Recorder().TraceIDs() {
		spans := tr.Recorder().Trace(id)
		if len(spans) != len(wireStages)-1 { // no store writer attached: 3 stages
			continue
		}
		ok := true
		for i, sp := range spans {
			if sp.Stage != wireStages[i] {
				ok = false
				break
			}
		}
		if ok {
			return
		}
	}
	t.Fatalf("no server-sampled trace covers %v (retained %d traces)",
		wireStages[:3], len(tr.Recorder().TraceIDs()))
}

func hexID(id uint64) string {
	const digits = "0123456789abcdef"
	out := make([]byte, 16)
	for i := 15; i >= 0; i-- {
		out[i] = digits[id&0xf]
		id >>= 4
	}
	return string(out)
}

func truncate(s string, n int) string {
	if len(s) <= n {
		return s
	}
	return s[:n] + "…"
}
