package analytics

// Tagged-frame file codec. A `.tflows` file is the flagged wire framing
// laid down on disk: a sequence of self-describing frames (flag byte,
// record, optional appendices), no header and no count. flowgen writes
// multi-tenant captures in this form and `graphctl send` replays them
// with each record's tag intact, so the noisy-neighbor scenario is
// drivable entirely from the CLI against the same decoder the server
// trusts.

import (
	"bufio"
	"errors"
	"fmt"
	"io"

	"cloudgraph/internal/flowlog"
	"cloudgraph/internal/trace"
)

// AppendTagged appends one tagged frame for rec to buf. tenant "" emits
// an untagged (plain) frame.
func AppendTagged(buf []byte, rec flowlog.Record, tenant string) []byte {
	return appendTaggedFrame(buf, rec, trace.Context{}, tenant)
}

// ReadTagged decodes a tagged-frame stream until EOF, returning the
// records and their parallel tenant tags ("" where a frame was
// untagged). EOF is only clean on a frame boundary.
func ReadTagged(r io.Reader) ([]flowlog.Record, []string, error) {
	br := bufio.NewReaderSize(r, 1<<20)
	var (
		recs    []flowlog.Record
		tenants []string
		sc      connScratch
	)
	for i := 0; ; i++ {
		if _, err := br.Peek(1); err == io.EOF {
			return recs, tenants, nil
		}
		batch, _, tags, err := readBatchFlagged(br, 1, &sc)
		if err != nil {
			if errors.Is(err, io.ErrUnexpectedEOF) {
				return nil, nil, fmt.Errorf("frame %d: truncated tagged stream", i)
			}
			return nil, nil, fmt.Errorf("frame %d: %w", i, err)
		}
		recs = append(recs, batch[0])
		tenants = append(tenants, tags[0])
		sc.batch = sc.batch[:0]
		sc.tcs = sc.tcs[:0]
		sc.tenants = sc.tenants[:0]
	}
}
