package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"strings"
)

// cfg.go hand-rolls per-function control-flow graphs over go/ast — no
// golang.org/x dependency, per the module's stdlib-only rule. A CFG is a
// list of basic blocks holding statement-level nodes in execution order;
// nested statements (loop bodies, branch arms) live in their own blocks,
// so a node never contains another block's statements. Function literals
// are opaque single nodes: their bodies execute later, usually on another
// goroutine, and each analyzer decides how to treat them.
//
// The builder covers the full statement language used in this module:
// if/else chains, for and range loops, expression and type switches
// (including fallthrough), select, labeled break/continue, goto, return,
// and defer (kept as an ordinary node — analyses that care about defer
// semantics, like lock tracking, special-case it). Panics and os.Exit are
// not modeled as terminators; the fallthrough edge they leave behind only
// makes downstream analyses more conservative.

// CFG is the control-flow graph of one function body.
type CFG struct {
	// Entry is the first executed block; Exit is the single synthetic
	// block every return (and the final fallthrough) feeds.
	Entry  *Block
	Exit   *Block
	Blocks []*Block // all blocks, Entry first, Exit last
}

// Block is one basic block: straight-line nodes with branching only at the
// end, expressed as successor edges.
type Block struct {
	Index int
	// Nodes holds the block's statements and branch conditions in
	// execution order. Conditions appear as bare ast.Expr entries.
	Nodes []ast.Node
	Succs []*Block
	Preds []*Block
}

// addSucc wires b -> s once.
func (b *Block) addSucc(s *Block) {
	for _, have := range b.Succs {
		if have == s {
			return
		}
	}
	b.Succs = append(b.Succs, s)
	s.Preds = append(s.Preds, b)
}

// cfgBuilder carries the under-construction graph plus the branch-target
// stacks for break/continue/fallthrough and the label table for goto.
type cfgBuilder struct {
	cfg *CFG
	// cur is the block receiving new nodes; nil after a terminator
	// (return, break, goto) until the next reachable point opens a block.
	cur *Block

	// frames is the stack of enclosing breakable/continuable constructs.
	frames []cfgFrame

	labels map[string]*Block   // label -> target block (for goto)
	gotos  map[string][]*Block // unresolved goto sources per label
}

// cfgFrame is one enclosing loop, switch or select on the builder stack.
type cfgFrame struct {
	label    string // the construct's label, "" when unlabeled
	isLoop   bool   // loops accept continue; switches/selects only break
	brk      *Block
	cont     *Block // nil for non-loops
	nextCase *Block // fallthrough target inside a switch
}

// BuildCFG constructs the CFG for one function body. It never fails: the
// parser already guaranteed structural sanity, and unresolved labels
// simply leave their goto blocks without that successor.
func BuildCFG(body *ast.BlockStmt) *CFG {
	b := &cfgBuilder{
		cfg:    &CFG{},
		labels: make(map[string]*Block),
		gotos:  make(map[string][]*Block),
	}
	entry := b.newBlock()
	b.cfg.Entry = entry
	b.cur = entry
	b.stmtList(body.List)
	exit := b.newBlock()
	b.cfg.Exit = exit
	if b.cur != nil {
		b.cur.addSucc(exit)
	}
	// Wire every return recorded as a pending exit edge.
	for _, blk := range b.cfg.Blocks {
		if blk != exit && len(blk.Nodes) > 0 {
			if _, ok := blk.Nodes[len(blk.Nodes)-1].(*ast.ReturnStmt); ok {
				blk.addSucc(exit)
			}
		}
	}
	return b.cfg
}

func (b *cfgBuilder) newBlock() *Block {
	blk := &Block{Index: len(b.cfg.Blocks)}
	b.cfg.Blocks = append(b.cfg.Blocks, blk)
	return blk
}

// ensure returns the current block, opening a fresh unreachable one after
// a terminator so dead code is still held somewhere analyzable.
func (b *cfgBuilder) ensure() *Block {
	if b.cur == nil {
		b.cur = b.newBlock()
	}
	return b.cur
}

func (b *cfgBuilder) add(n ast.Node) {
	blk := b.ensure()
	blk.Nodes = append(blk.Nodes, n)
}

// startBlock opens succ as the new current block, linking from cur.
func (b *cfgBuilder) startBlock(succ *Block) {
	if b.cur != nil {
		b.cur.addSucc(succ)
	}
	b.cur = succ
}

func (b *cfgBuilder) stmtList(list []ast.Stmt) {
	for _, s := range list {
		b.stmt(s, "")
	}
}

// stmt folds one statement into the graph. label is the statement's label
// when it came through a LabeledStmt.
func (b *cfgBuilder) stmt(s ast.Stmt, label string) {
	switch s := s.(type) {
	case *ast.BlockStmt:
		b.stmtList(s.List)

	case *ast.LabeledStmt:
		// The label is both a goto target and, for loops/switches, the
		// name of the break/continue frame.
		target := b.newBlock()
		b.startBlock(target)
		b.labels[s.Label.Name] = target
		for _, src := range b.gotos[s.Label.Name] {
			src.addSucc(target)
		}
		delete(b.gotos, s.Label.Name)
		b.stmt(s.Stmt, s.Label.Name)

	case *ast.IfStmt:
		if s.Init != nil {
			b.add(s.Init)
		}
		b.add(s.Cond)
		condBlk := b.ensure()
		join := b.newBlock()
		then := b.newBlock()
		condBlk.addSucc(then)
		b.cur = then
		b.stmtList(s.Body.List)
		if b.cur != nil {
			b.cur.addSucc(join)
		}
		if s.Else != nil {
			els := b.newBlock()
			condBlk.addSucc(els)
			b.cur = els
			b.stmt(s.Else, "")
			if b.cur != nil {
				b.cur.addSucc(join)
			}
		} else {
			condBlk.addSucc(join)
		}
		b.cur = join

	case *ast.ForStmt:
		if s.Init != nil {
			b.add(s.Init)
		}
		head := b.newBlock()
		b.startBlock(head)
		if s.Cond != nil {
			head.Nodes = append(head.Nodes, s.Cond)
		}
		body := b.newBlock()
		exit := b.newBlock()
		post := head
		if s.Post != nil {
			post = b.newBlock()
			post.Nodes = append(post.Nodes, s.Post)
			post.addSucc(head)
		}
		head.addSucc(body)
		if s.Cond != nil {
			head.addSucc(exit)
		}
		b.frames = append(b.frames, cfgFrame{label: label, isLoop: true, brk: exit, cont: post})
		b.cur = body
		b.stmtList(s.Body.List)
		if b.cur != nil {
			b.cur.addSucc(post)
		}
		b.frames = b.frames[:len(b.frames)-1]
		b.cur = exit

	case *ast.RangeStmt:
		head := b.newBlock()
		b.startBlock(head)
		head.Nodes = append(head.Nodes, s) // the range clause itself: X use, Key/Value defs
		body := b.newBlock()
		exit := b.newBlock()
		head.addSucc(body)
		head.addSucc(exit)
		b.frames = append(b.frames, cfgFrame{label: label, isLoop: true, brk: exit, cont: head})
		b.cur = body
		b.stmtList(s.Body.List)
		if b.cur != nil {
			b.cur.addSucc(head)
		}
		b.frames = b.frames[:len(b.frames)-1]
		b.cur = exit

	case *ast.SwitchStmt:
		b.switchStmt(label, s.Init, s.Tag, nil, s.Body)

	case *ast.TypeSwitchStmt:
		b.switchStmt(label, s.Init, nil, s.Assign, s.Body)

	case *ast.SelectStmt:
		head := b.ensure()
		join := b.newBlock()
		b.frames = append(b.frames, cfgFrame{label: label, brk: join})
		for _, c := range s.Body.List {
			cc := c.(*ast.CommClause)
			caseBlk := b.newBlock()
			head.addSucc(caseBlk)
			b.cur = caseBlk
			if cc.Comm != nil {
				caseBlk.Nodes = append(caseBlk.Nodes, cc.Comm)
			}
			b.stmtList(cc.Body)
			if b.cur != nil {
				b.cur.addSucc(join)
			}
		}
		b.frames = b.frames[:len(b.frames)-1]
		if len(s.Body.List) == 0 {
			head.addSucc(join) // select{} blocks forever; keep the graph connected
		}
		b.cur = join

	case *ast.ReturnStmt:
		b.add(s)
		b.cur = nil // BuildCFG wires the exit edge afterwards

	case *ast.BranchStmt:
		b.add(s)
		switch s.Tok {
		case token.BREAK:
			if t := b.findFrame(s.Label, false); t != nil {
				b.ensure().addSucc(t.brk)
			}
			b.cur = nil
		case token.CONTINUE:
			if t := b.findFrame(s.Label, true); t != nil && t.cont != nil {
				b.ensure().addSucc(t.cont)
			}
			b.cur = nil
		case token.GOTO:
			name := s.Label.Name
			if target, ok := b.labels[name]; ok {
				b.ensure().addSucc(target)
			} else {
				b.gotos[name] = append(b.gotos[name], b.ensure())
			}
			b.cur = nil
		case token.FALLTHROUGH:
			if len(b.frames) > 0 {
				if t := b.frames[len(b.frames)-1]; t.nextCase != nil {
					b.ensure().addSucc(t.nextCase)
				}
			}
			b.cur = nil
		}

	default:
		// Assign, decl, expr, send, inc/dec, go, defer, empty: straight
		// line.
		if _, ok := s.(*ast.EmptyStmt); ok {
			return
		}
		b.add(s)
	}
}

// switchStmt builds both switch flavors: head with init/tag (or the type
// switch assign), one block per case, optional fallthrough chaining, and a
// default-less fallthrough edge to the join.
func (b *cfgBuilder) switchStmt(label string, init ast.Stmt, tag ast.Expr, assign ast.Stmt, body *ast.BlockStmt) {
	if init != nil {
		b.add(init)
	}
	if tag != nil {
		b.add(tag)
	}
	if assign != nil {
		b.add(assign)
	}
	head := b.ensure()
	join := b.newBlock()

	// Pre-create case blocks so fallthrough can point at its successor.
	var clauses []*ast.CaseClause
	var caseBlks []*Block
	hasDefault := false
	for _, c := range body.List {
		cc := c.(*ast.CaseClause)
		clauses = append(clauses, cc)
		caseBlks = append(caseBlks, b.newBlock())
		if cc.List == nil {
			hasDefault = true
		}
	}
	for i, cc := range clauses {
		caseBlk := caseBlks[i]
		head.addSucc(caseBlk)
		for _, e := range cc.List {
			caseBlk.Nodes = append(caseBlk.Nodes, e)
		}
		var next *Block
		if i+1 < len(caseBlks) {
			next = caseBlks[i+1]
		}
		b.frames = append(b.frames, cfgFrame{label: label, brk: join, nextCase: next})
		b.cur = caseBlk
		b.stmtList(cc.Body)
		if b.cur != nil {
			b.cur.addSucc(join)
		}
		b.frames = b.frames[:len(b.frames)-1]
	}
	if !hasDefault {
		head.addSucc(join)
	}
	b.cur = join
}

// findFrame resolves a break (wantLoop=false) or continue (true) target.
func (b *cfgBuilder) findFrame(label *ast.Ident, wantLoop bool) *cfgFrame {
	for i := len(b.frames) - 1; i >= 0; i-- {
		f := &b.frames[i]
		if wantLoop && !f.isLoop {
			continue
		}
		if label == nil || f.label == label.Name {
			return f
		}
	}
	return nil
}

// String renders the graph for tests and debugging: one line per block
// with its successor indices.
func (c *CFG) String() string {
	var sb strings.Builder
	for _, blk := range c.Blocks {
		fmt.Fprintf(&sb, "b%d:", blk.Index)
		for _, s := range blk.Succs {
			fmt.Fprintf(&sb, " ->b%d", s.Index)
		}
		fmt.Fprintf(&sb, " (%d nodes)\n", len(blk.Nodes))
	}
	return sb.String()
}
