package analysis

import (
	"go/ast"
	"go/types"
)

// Errdrop flags silently discarded error returns: a call whose results
// include an error used as a bare statement, or an error result assigned to
// the blank identifier. Either form needs an inline
// `//lint:allow errdrop <why>` justification to pass.
//
// Writes that cannot fail are exempt: calls on (or printing into) a
// strings.Builder or bytes.Buffer. Deferred calls are exempt too — flagging
// every `defer f.Close()` would bury the signal.
func Errdrop(paths ...string) *Analyzer {
	a := &Analyzer{
		Name:  "errdrop",
		Doc:   "flag discarded error returns",
		Match: matchPrefixes(paths),
	}
	a.Run = runErrdrop
	return a
}

// matchPrefixes accepts packages whose import path equals or sits under one
// of the given prefixes; nil for an empty list.
func matchPrefixes(prefixes []string) func(string) bool {
	if len(prefixes) == 0 {
		return nil
	}
	return func(pkgPath string) bool {
		for _, pre := range prefixes {
			if pkgPath == pre || (len(pkgPath) > len(pre) && pkgPath[:len(pre)] == pre && pkgPath[len(pre)] == '/') {
				return true
			}
		}
		return false
	}
}

func runErrdrop(p *Pass) {
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.DeferStmt, *ast.GoStmt:
				return false
			case *ast.ExprStmt:
				call, ok := n.X.(*ast.CallExpr)
				if !ok {
					return true
				}
				if idx := errResultIndex(p, call); idx >= 0 && !infallibleWrite(p, call) {
					p.Reportf(call.Pos(), "error return of %s discarded; handle it or justify with //lint:allow errdrop",
						callName(call))
				}
			case *ast.AssignStmt:
				p.checkBlankErr(n)
			}
			return true
		})
	}
}

// checkBlankErr flags `_`-assignments of error-typed values.
func (p *Pass) checkBlankErr(asg *ast.AssignStmt) {
	// Multi-value form: lhs count matches the callee's result count.
	if len(asg.Rhs) == 1 && len(asg.Lhs) > 1 {
		call, ok := asg.Rhs[0].(*ast.CallExpr)
		if !ok {
			return
		}
		sig := callSignature(p, call)
		if sig == nil || sig.Results().Len() != len(asg.Lhs) {
			return
		}
		if infallibleWrite(p, call) {
			return
		}
		for i, lhs := range asg.Lhs {
			if id, ok := lhs.(*ast.Ident); ok && id.Name == "_" && isErrorType(sig.Results().At(i).Type()) {
				p.Reportf(lhs.Pos(), "error result of %s assigned to _; handle it or justify with //lint:allow errdrop",
					callName(call))
			}
		}
		return
	}
	for i, lhs := range asg.Lhs {
		id, ok := lhs.(*ast.Ident)
		if !ok || id.Name != "_" || i >= len(asg.Rhs) {
			continue
		}
		if t := p.Info.TypeOf(asg.Rhs[i]); t != nil && isErrorType(t) {
			if call, ok := asg.Rhs[i].(*ast.CallExpr); ok && infallibleWrite(p, call) {
				continue
			}
			p.Reportf(lhs.Pos(), "error value assigned to _; handle it or justify with //lint:allow errdrop")
		}
	}
}

// errResultIndex returns the index of the first error result of call, or -1.
func errResultIndex(p *Pass, call *ast.CallExpr) int {
	sig := callSignature(p, call)
	if sig == nil {
		return -1
	}
	for i := 0; i < sig.Results().Len(); i++ {
		if isErrorType(sig.Results().At(i).Type()) {
			return i
		}
	}
	return -1
}

func callSignature(p *Pass, call *ast.CallExpr) *types.Signature {
	t := p.Info.TypeOf(call.Fun)
	if t == nil {
		return nil
	}
	sig, _ := t.Underlying().(*types.Signature)
	return sig
}

func isErrorType(t types.Type) bool {
	named, ok := t.(*types.Named)
	return ok && named.Obj().Pkg() == nil && named.Obj().Name() == "error"
}

// infallibleWrite reports whether call writes into a strings.Builder or
// bytes.Buffer — either as the method receiver or as the destination
// argument of an fmt.Fprint* call — whose Write methods never return a
// non-nil error.
func infallibleWrite(p *Pass, call *ast.CallExpr) bool {
	if sel, ok := call.Fun.(*ast.SelectorExpr); ok {
		if s, ok := p.Info.Selections[sel]; ok && s.Kind() == types.MethodVal {
			if isBuilderType(s.Recv()) {
				return true
			}
		}
	}
	if pkgPath, name := p.pkgFuncCall(call); pkgPath == "fmt" &&
		(name == "Fprintf" || name == "Fprintln" || name == "Fprint") && len(call.Args) > 0 {
		if t := p.Info.TypeOf(call.Args[0]); t != nil && isBuilderType(t) {
			return true
		}
	}
	return false
}

func isBuilderType(t types.Type) bool {
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok || named.Obj().Pkg() == nil {
		return false
	}
	switch named.Obj().Pkg().Path() + "." + named.Obj().Name() {
	case "strings.Builder", "bytes.Buffer":
		return true
	}
	return false
}

func callName(call *ast.CallExpr) string {
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		return fun.Name
	case *ast.SelectorExpr:
		return exprText(fun.X) + "." + fun.Sel.Name
	default:
		return "call"
	}
}
