package analysis

import (
	"sort"
)

// facts.go exports the dataflow engine's intermediate products — the call
// graph, the mutex acquisition graph, and the borrow annotations — as a
// JSON document (cloudgraph-vet -facts). The facts are the review artifact
// the analyzers are built on: diffing them across commits shows exactly
// which new call edge introduced a lock inversion or which function grew a
// borrow surface, without re-reading the code.

// Facts is the JSON-exported view of one module analysis.
type Facts struct {
	Packages    []string       `json:"packages"`
	Functions   []FactFunc     `json:"functions"`
	CallGraph   []FactCall     `json:"call_graph"`
	LockGraph   []FactLockEdge `json:"lock_graph"`
	BorrowSites []FactBorrow   `json:"borrow_sites"`
}

// FactFunc is one declared function.
type FactFunc struct {
	Package string `json:"package"`
	Name    string `json:"name"`
	File    string `json:"file"`
	Line    int    `json:"line"`
	// Calls is the number of static call sites on the function's own
	// execution path.
	Calls int `json:"calls"`
}

// FactCall is one static call-graph edge between module functions.
type FactCall struct {
	From string `json:"from"`
	To   string `json:"to"`
}

// FactLockEdge is one acquisition-order edge: To is acquired while From is
// held, first witnessed at File:Line.
type FactLockEdge struct {
	From string `json:"from"`
	To   string `json:"to"`
	File string `json:"file"`
	Line int    `json:"line"`
}

// FactBorrow is one //vet:borrowed annotation site.
type FactBorrow struct {
	Package  string   `json:"package"`
	Function string   `json:"function"`
	File     string   `json:"file"`
	Line     int      `json:"line"`
	Borrowed []string `json:"borrowed"`
}

// ComputeFacts builds the exported facts over one loaded package set.
func ComputeFacts(pkgs []*Package) *Facts {
	idx := BuildIndex(pkgs)
	// Empty sections marshal as [] rather than null: consumers diff these.
	facts := &Facts{
		Packages:    []string{},
		Functions:   []FactFunc{},
		CallGraph:   []FactCall{},
		LockGraph:   []FactLockEdge{},
		BorrowSites: []FactBorrow{},
	}
	for _, pkg := range pkgs {
		facts.Packages = append(facts.Packages, pkg.Path)
	}
	sort.Strings(facts.Packages)

	qualified := func(fi *FuncInfo) string { return fi.Pkg.Path + "." + fi.Name() }
	for _, fi := range idx.FuncsInOrder() {
		pos := fi.Pkg.Fset.Position(fi.Decl.Pos())
		facts.Functions = append(facts.Functions, FactFunc{
			Package: fi.Pkg.Path,
			Name:    fi.Name(),
			File:    pos.Filename,
			Line:    pos.Line,
			Calls:   len(fi.Calls),
		})
		for _, cs := range fi.Calls {
			if cs.Callee == nil {
				continue
			}
			callee, ok := idx.Funcs[cs.Callee]
			if !ok {
				continue // external: not part of the module graph
			}
			facts.CallGraph = append(facts.CallGraph, FactCall{
				From: qualified(fi),
				To:   qualified(callee),
			})
		}
		if len(fi.Borrowed) > 0 {
			names := make([]string, 0, len(fi.Borrowed))
			for name := range fi.Borrowed {
				names = append(names, name)
			}
			sort.Strings(names)
			facts.BorrowSites = append(facts.BorrowSites, FactBorrow{
				Package:  fi.Pkg.Path,
				Function: fi.Name(),
				File:     pos.Filename,
				Line:     pos.Line,
				Borrowed: names,
			})
		}
	}
	sort.Slice(facts.CallGraph, func(i, j int) bool {
		a, b := facts.CallGraph[i], facts.CallGraph[j]
		if a.From != b.From {
			return a.From < b.From
		}
		return a.To < b.To
	})
	// Dedupe repeated edges (several call sites, one graph edge).
	facts.CallGraph = dedupeCalls(facts.CallGraph)

	lp := collectLockGraph(&ModulePass{Analyzer: &Analyzer{Name: "lockorder"}, Index: idx})
	for key, e := range lp.edges {
		pos := e.pkg.Fset.Position(e.pos)
		facts.LockGraph = append(facts.LockGraph, FactLockEdge{
			From: key[0],
			To:   key[1],
			File: pos.Filename,
			Line: pos.Line,
		})
	}
	sort.Slice(facts.LockGraph, func(i, j int) bool {
		a, b := facts.LockGraph[i], facts.LockGraph[j]
		if a.From != b.From {
			return a.From < b.From
		}
		return a.To < b.To
	})
	return facts
}

func dedupeCalls(edges []FactCall) []FactCall {
	out := edges[:0]
	for i, e := range edges {
		if i > 0 && edges[i-1] == e {
			continue
		}
		out = append(out, e)
	}
	return out
}
