package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"path/filepath"
	"strconv"
	"strings"
)

// Atomicmix enforces all-or-nothing atomicity per field: a variable
// accessed through sync/atomic anywhere in the module must be accessed
// through sync/atomic everywhere. One plain load next to an atomic.AddInt64
// is a data race the race detector only sees when the interleaving
// happens; this check sees it in review. The telemetry registry's counters
// and the trace flight ring's cursor are the motivating targets — both mix
// hot atomic increments with cold readers that are easy to write plainly.
//
// The analyzer keys sites by the field or package-level variable object
// (module-wide: one type-check means identities agree across packages),
// then flags every plain access of a field that has at least one
// old-style atomic site. Two shapes are deliberately not flagged:
//
//   - composite-literal keys (Thing{count: 0}) — initialization before the
//     object is shared needs no ordering;
//   - accesses through a base whose reaching definitions (per the def-use
//     chains) are all fresh allocations in the same function — the
//     constructor pattern t := &T{}; t.count = seed; return t is
//     single-threaded by construction. A base that is address-taken,
//     captured, or a parameter has unknown provenance and stays flagged.
//
// Fields of the typed atomic.Int64/Uint64/... wrappers cannot be accessed
// plainly at all, so they need no checking — this analyzer is the guard
// rail for the transition period whenever an old-style atomic slips back in.
func Atomicmix() *Analyzer {
	a := &Analyzer{
		Name: "atomicmix",
		Doc:  "a field accessed via sync/atomic anywhere must be accessed via sync/atomic everywhere",
	}
	a.RunModule = runAtomicmix
	return a
}

// atomicSite is the first atomic access seen for a variable.
type atomicSite struct {
	pkg *Package
	pos token.Pos
}

func runAtomicmix(p *ModulePass) {
	sites := make(map[*types.Var]atomicSite)
	// atomicOperand marks the field/var identifiers that appear inside an
	// atomic call's address argument — those are the sanctioned accesses.
	atomicOperand := make(map[*ast.Ident]bool)

	// Pass 1: collect atomic sites (closure bodies included — an atomic op
	// in a goroutine is exactly the interesting case).
	for _, fi := range p.Index.FuncsInOrder() {
		info := fi.Pkg.Info
		ast.Inspect(fi.Decl.Body, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || len(call.Args) == 0 {
				return true
			}
			if !isAtomicFunc(info, call) {
				return true
			}
			id, v := addressedVar(info, call.Args[0])
			if v == nil {
				return true
			}
			atomicOperand[id] = true
			if _, ok := sites[v]; !ok {
				sites[v] = atomicSite{pkg: fi.Pkg, pos: call.Pos()}
			}
			return true
		})
	}
	if len(sites) == 0 {
		return
	}

	// Pass 2: flag plain accesses of those variables.
	for _, fi := range p.Index.FuncsInOrder() {
		info := fi.Pkg.Info
		ast.Inspect(fi.Decl.Body, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.CompositeLit:
				// Literal keys are initialization, not access.
				for _, elt := range n.Elts {
					if kv, ok := elt.(*ast.KeyValueExpr); ok {
						if id, ok := kv.Key.(*ast.Ident); ok {
							atomicOperand[id] = true
						}
					}
				}
			case *ast.SelectorExpr:
				v, ok := info.Uses[n.Sel].(*types.Var)
				if !ok || !v.IsField() {
					return true
				}
				site, hit := sites[v]
				if !hit || atomicOperand[n.Sel] {
					return true
				}
				if freshBase(fi, n.X) {
					return true
				}
				p.Reportf(fi.Pkg, n.Sel.Pos(),
					"plain access of %s, which is accessed via sync/atomic at %s: use the atomic API on every access or a typed atomic",
					exprText(n), shortPos(site))
			case *ast.Ident:
				v, ok := info.Uses[n].(*types.Var)
				if !ok || v.IsField() {
					return true
				}
				site, hit := sites[v]
				if !hit || atomicOperand[n] {
					return true
				}
				p.Reportf(fi.Pkg, n.Pos(),
					"plain access of %s, which is accessed via sync/atomic at %s: use the atomic API on every access or a typed atomic",
					n.Name, shortPos(site))
			}
			return true
		})
	}
}

// isAtomicFunc matches package-level sync/atomic functions (LoadInt64,
// StoreUint32, AddInt64, SwapPointer, CompareAndSwapInt64, ...). Methods on
// the typed wrappers share names but have receivers and are excluded.
func isAtomicFunc(info *types.Info, call *ast.CallExpr) bool {
	fn := staticCallee(info, call)
	if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "sync/atomic" {
		return false
	}
	if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
		return false
	}
	for _, prefix := range []string{"Load", "Store", "Add", "Swap", "CompareAndSwap", "And", "Or"} {
		if strings.HasPrefix(fn.Name(), prefix) {
			return true
		}
	}
	return false
}

// addressedVar unwraps &x.f or &pkgVar and returns the accessed field or
// package-level variable with its identifier.
func addressedVar(info *types.Info, arg ast.Expr) (*ast.Ident, *types.Var) {
	un, ok := ast.Unparen(arg).(*ast.UnaryExpr)
	if !ok || un.Op != token.AND {
		return nil, nil
	}
	switch e := ast.Unparen(un.X).(type) {
	case *ast.SelectorExpr:
		if v, ok := info.Uses[e.Sel].(*types.Var); ok && v.IsField() {
			return e.Sel, v
		}
	case *ast.Ident:
		if v, ok := info.Uses[e].(*types.Var); ok && !v.IsField() && v.Parent() == v.Pkg().Scope() {
			return e, v
		}
	}
	return nil, nil
}

// freshBase reports whether base is a local variable all of whose reaching
// definitions are fresh allocations (&T{...}, T{...}, new(T)) — the object
// cannot have been shared with another goroutine yet.
func freshBase(fi *FuncInfo, base ast.Expr) bool {
	id, ok := ast.Unparen(base).(*ast.Ident)
	if !ok {
		return false
	}
	du := fi.DefUse()
	defs, complete := du.DefsFor(id)
	if !complete || len(defs) == 0 {
		return false
	}
	info := fi.Pkg.Info
	for _, def := range defs {
		if !freshDef(info, def, id) {
			return false
		}
	}
	return true
}

// freshDef reports whether def binds id to a fresh allocation.
func freshDef(info *types.Info, def ast.Node, id *ast.Ident) bool {
	target := info.Uses[id]
	if target == nil {
		target = info.Defs[id]
	}
	rhsFor := func(lhs []ast.Expr, rhs []ast.Expr) ast.Expr {
		if len(lhs) != len(rhs) {
			return nil
		}
		for i, l := range lhs {
			if lid, ok := l.(*ast.Ident); ok {
				obj := info.Defs[lid]
				if obj == nil {
					obj = info.Uses[lid]
				}
				if obj == target {
					return rhs[i]
				}
			}
		}
		return nil
	}
	switch d := def.(type) {
	case *ast.AssignStmt:
		return freshAlloc(info, rhsFor(d.Lhs, d.Rhs))
	case *ast.DeclStmt:
		gd, ok := d.Decl.(*ast.GenDecl)
		if !ok {
			return false
		}
		for _, spec := range gd.Specs {
			if vs, ok := spec.(*ast.ValueSpec); ok {
				if len(vs.Values) == 0 {
					// var t T — zero value, fresh by definition for a
					// value-typed struct held locally.
					return true
				}
				var lhs []ast.Expr
				for _, n := range vs.Names {
					lhs = append(lhs, n)
				}
				if rhs := rhsFor(lhs, vs.Values); rhs != nil {
					return freshAlloc(info, rhs)
				}
			}
		}
	}
	return false
}

// freshAlloc matches &T{...}, T{...} and new(T).
func freshAlloc(info *types.Info, e ast.Expr) bool {
	switch e := ast.Unparen(e).(type) {
	case *ast.UnaryExpr:
		if e.Op != token.AND {
			return false
		}
		_, ok := ast.Unparen(e.X).(*ast.CompositeLit)
		return ok
	case *ast.CompositeLit:
		return true
	case *ast.CallExpr:
		if id, ok := ast.Unparen(e.Fun).(*ast.Ident); ok {
			if b, ok := info.Uses[id].(*types.Builtin); ok {
				return b.Name() == "new"
			}
		}
	}
	return false
}

// shortPos renders a site as base-filename:line for diagnostics.
func shortPos(s atomicSite) string {
	pos := s.pkg.Fset.Position(s.pos)
	return filepath.Base(pos.Filename) + ":" + strconv.Itoa(pos.Line)
}
