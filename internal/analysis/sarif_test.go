package analysis

import (
	"encoding/json"
	"reflect"
	"testing"
)

// TestSARIFRoundTrip pins the -sarif output: findings encode to SARIF
// 2.1.0 and decode back unchanged, so the CI artifact is a faithful view
// of the suite's findings.
func TestSARIFRoundTrip(t *testing.T) {
	in := []Finding{
		{Analyzer: "lockorder", File: "internal/core/engine.go", Line: 42, Col: 7, Message: "lock-order cycle: A -> B -> A"},
		{Analyzer: "borrowescape", File: "internal/analytics/server.go", Line: 9, Col: 2, Message: `borrowed value recs escapes: sent on a channel`},
		{Analyzer: "borrowescape", File: "internal/flowlog/codec.go", Line: 1, Col: 1, Message: "use of sc after sync.Pool.Put returned it to the pool"},
	}
	docs := map[string]string{
		"lockorder":    "mutex acquisition graph must be acyclic",
		"borrowescape": "borrowed values must not escape",
	}
	data, err := ToSARIF(in, docs)
	if err != nil {
		t.Fatal(err)
	}
	out, err := ParseSARIF(data)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(in, out) {
		t.Fatalf("round trip mismatch:\n in: %+v\nout: %+v", in, out)
	}
}

// TestSARIFShape checks the schema essentials a SARIF consumer requires:
// version, one run, a driver name, and rules for every analyzer that
// produced a finding.
func TestSARIFShape(t *testing.T) {
	in := []Finding{{Analyzer: "atomicmix", File: "x.go", Line: 3, Col: 1, Message: "plain access of c.hits"}}
	data, err := ToSARIF(in, map[string]string{"atomicmix": "all-or-nothing atomics"})
	if err != nil {
		t.Fatal(err)
	}
	var doc map[string]any
	if err := json.Unmarshal(data, &doc); err != nil {
		t.Fatal(err)
	}
	if doc["version"] != "2.1.0" {
		t.Fatalf("version = %v", doc["version"])
	}
	runs, ok := doc["runs"].([]any)
	if !ok || len(runs) != 1 {
		t.Fatalf("runs = %v", doc["runs"])
	}
	run := runs[0].(map[string]any)
	driver := run["tool"].(map[string]any)["driver"].(map[string]any)
	if driver["name"] != "cloudgraph-vet" {
		t.Fatalf("driver name = %v", driver["name"])
	}
	rules := driver["rules"].([]any)
	if len(rules) != 1 {
		t.Fatalf("rules = %d, want 1", len(rules))
	}
	results := run["results"].([]any)
	if len(results) != 1 {
		t.Fatalf("results = %d, want 1", len(results))
	}
}

// TestSARIFEmpty pins the clean-run artifact: zero findings still produce
// a valid document with an empty results array, not null.
func TestSARIFEmpty(t *testing.T) {
	data, err := ToSARIF(nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	out, err := ParseSARIF(data)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 0 {
		t.Fatalf("want no findings, got %v", out)
	}
	var doc map[string]any
	if err := json.Unmarshal(data, &doc); err != nil {
		t.Fatal(err)
	}
	run := doc["runs"].([]any)[0].(map[string]any)
	if _, ok := run["results"].([]any); !ok {
		t.Fatalf("results must be an array, got %T", run["results"])
	}
	driver := run["tool"].(map[string]any)["driver"].(map[string]any)
	if _, ok := driver["rules"].([]any); !ok {
		t.Fatalf("rules must be an array even with no findings, got %T", driver["rules"])
	}
}
