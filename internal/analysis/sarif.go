package analysis

import (
	"encoding/json"
	"fmt"
	"sort"
)

// sarif.go renders findings as a minimal SARIF 2.1.0 log — the exchange
// format code-review UIs ingest — and parses it back, so the CI artifact
// can be round-trip tested instead of schema-eyeballed. Only the subset
// the findings carry is emitted: one run, one rule per analyzer, one
// result per finding with a physical location.

const (
	sarifVersion = "2.1.0"
	sarifSchema  = "https://docs.oasis-open.org/sarif/sarif/v2.1.0/os/schemas/sarif-schema-2.1.0.json"
)

type sarifLog struct {
	Schema  string     `json:"$schema"`
	Version string     `json:"version"`
	Runs    []sarifRun `json:"runs"`
}

type sarifRun struct {
	Tool    sarifTool     `json:"tool"`
	Results []sarifResult `json:"results"`
}

type sarifTool struct {
	Driver sarifDriver `json:"driver"`
}

type sarifDriver struct {
	Name  string      `json:"name"`
	Rules []sarifRule `json:"rules"`
}

type sarifRule struct {
	ID               string           `json:"id"`
	ShortDescription sarifMultiformat `json:"shortDescription"`
}

type sarifMultiformat struct {
	Text string `json:"text"`
}

type sarifResult struct {
	RuleID    string           `json:"ruleId"`
	Level     string           `json:"level"`
	Message   sarifMultiformat `json:"message"`
	Locations []sarifLocation  `json:"locations"`
}

type sarifLocation struct {
	PhysicalLocation sarifPhysical `json:"physicalLocation"`
}

type sarifPhysical struct {
	ArtifactLocation sarifArtifact `json:"artifactLocation"`
	Region           sarifRegion   `json:"region"`
}

type sarifArtifact struct {
	URI string `json:"uri"`
}

type sarifRegion struct {
	StartLine   int `json:"startLine"`
	StartColumn int `json:"startColumn"`
}

// ToSARIF renders findings as a SARIF 2.1.0 JSON document. ruleDocs maps
// analyzer names to their one-line docs (missing entries get the name).
func ToSARIF(findings []Finding, ruleDocs map[string]string) ([]byte, error) {
	ruleNames := make(map[string]bool)
	for _, f := range findings {
		ruleNames[f.Analyzer] = true
	}
	rules := make([]sarifRule, 0, len(ruleNames))
	for name := range ruleNames {
		doc := ruleDocs[name]
		if doc == "" {
			doc = name
		}
		rules = append(rules, sarifRule{ID: name, ShortDescription: sarifMultiformat{Text: doc}})
	}
	sort.Slice(rules, func(i, j int) bool { return rules[i].ID < rules[j].ID })

	results := make([]sarifResult, 0, len(findings))
	for _, f := range findings {
		results = append(results, sarifResult{
			RuleID:  f.Analyzer,
			Level:   "error",
			Message: sarifMultiformat{Text: f.Message},
			Locations: []sarifLocation{{
				PhysicalLocation: sarifPhysical{
					ArtifactLocation: sarifArtifact{URI: f.File},
					Region:           sarifRegion{StartLine: f.Line, StartColumn: f.Col},
				},
			}},
		})
	}
	log := sarifLog{
		Schema:  sarifSchema,
		Version: sarifVersion,
		Runs: []sarifRun{{
			Tool:    sarifTool{Driver: sarifDriver{Name: "cloudgraph-vet", Rules: rules}},
			Results: results,
		}},
	}
	return json.MarshalIndent(log, "", "  ")
}

// ParseSARIF decodes a SARIF document produced by ToSARIF back into
// findings, for the round-trip test and for downstream tooling that wants
// typed access.
func ParseSARIF(data []byte) ([]Finding, error) {
	var log sarifLog
	if err := json.Unmarshal(data, &log); err != nil {
		return nil, fmt.Errorf("sarif: %w", err)
	}
	if log.Version != sarifVersion {
		return nil, fmt.Errorf("sarif: unsupported version %q", log.Version)
	}
	var out []Finding
	for _, run := range log.Runs {
		for _, r := range run.Results {
			f := Finding{Analyzer: r.RuleID, Message: r.Message.Text}
			if len(r.Locations) > 0 {
				loc := r.Locations[0].PhysicalLocation
				f.File = loc.ArtifactLocation.URI
				f.Line = loc.Region.StartLine
				f.Col = loc.Region.StartColumn
			}
			out = append(out, f)
		}
	}
	return out, nil
}
