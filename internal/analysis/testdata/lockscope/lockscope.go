// Package lockscope is the golden-file input for the lockscope analyzer:
// blocking operations performed while a mutex field is held, the PR-1
// deadlock and race shapes.
package lockscope

import "sync"

// Doer holds the shapes the analyzer watches: mutexes, channels, a
// WaitGroup and a function-typed callback field.
type Doer struct {
	mu     sync.Mutex
	wmu    sync.RWMutex
	ch     chan int
	done   chan struct{}
	wg     sync.WaitGroup
	OnDone func(int)
}

func (d *Doer) sendUnderLock() {
	d.mu.Lock()
	d.ch <- 1 // want "channel send while d.mu is held"
	d.mu.Unlock()
	d.ch <- 2 // ok: lock released
}

func (d *Doer) recvUnderDeferredRUnlock() {
	d.wmu.RLock()
	defer d.wmu.RUnlock()
	<-d.done // want "channel receive while d.wmu is held"
}

func (d *Doer) selectUnderLock() {
	d.mu.Lock()
	defer d.mu.Unlock()
	select { // want "blocking select while d.mu is held"
	case v := <-d.ch:
		_ = v
	case d.done <- struct{}{}:
	}
}

func (d *Doer) pollUnderLock() bool {
	d.mu.Lock()
	defer d.mu.Unlock()
	select { // ok: a default case makes the select non-blocking
	case v := <-d.ch:
		return v > 0
	default:
		return false
	}
}

func (d *Doer) callbackUnderLock(v int) {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.OnDone(v) // want "invokes the OnDone callback while d.mu is held"
}

func (d *Doer) waitUnderLock() {
	d.mu.Lock()
	d.wg.Wait() // want "calls sync.Wait while d.mu is held"
	d.mu.Unlock()
}

// emit blocks by invoking the callback; calling it with the lock held is
// the transitive shape the fixed-point propagation exists for.
func (d *Doer) emit(v int) {
	d.OnDone(v)
}

func (d *Doer) transitive(v int) {
	d.mu.Lock()
	d.emit(v) // want "call to emit while d.mu is held"
	d.mu.Unlock()
}

func (d *Doer) nestedScope() {
	{
		d.mu.Lock()
		d.mu.Unlock()
	}
	d.ch <- 3 // ok: the lock was scoped to the inner block
}

func (d *Doer) twoLocks() {
	d.mu.Lock()
	d.wmu.Lock()
	d.ch <- 4 // want "channel send while d.mu, d.wmu is held"
	d.wmu.Unlock()
	d.mu.Unlock()
}

func (d *Doer) sendFromGoroutine() {
	d.mu.Lock()
	defer d.mu.Unlock()
	go func() { d.ch <- 5 }() // ok: the literal's body runs on another goroutine
}

func (d *Doer) suppressed() {
	d.mu.Lock()
	//lint:allow lockscope golden test of the suppression path
	d.ch <- 6
	d.mu.Unlock()
}
