// Package wirestruct is the golden-file input for the wirestruct analyzer:
// wire-schema structs must use keyed literals and their codecs must cover
// every field.
package wirestruct

// Frame is a wire type crossing a process boundary.
//
//wire:schema
type Frame struct {
	Seq   uint64
	Len   uint32
	Flags uint16
}

// Encode references every field of Frame.
//
//wire:codec Frame
func Encode(f Frame) []byte {
	out := make([]byte, 0, 14)
	out = append(out, byte(f.Seq), byte(f.Len), byte(f.Flags))
	return out
}

// DecodeFlags silently drops Seq and Len.
//
//wire:codec Frame
func DecodeFlags(b []byte) Frame { // want "does not reference field Seq" want "does not reference field Len"
	var f Frame
	f.Flags = uint16(b[0])
	return f
}

func unkeyed() Frame {
	return Frame{1, 2, 3} // want "unkeyed composite literal of wire type Frame"
}

func keyed() Frame {
	return Frame{Seq: 1, Len: 2, Flags: 3} // ok: keyed literal
}

func zero() Frame {
	return Frame{} // ok: the zero value has no positional fields to shift
}

// Plain is not marked; unkeyed literals are fine.
type Plain struct{ A, B int }

func plain() Plain { return Plain{1, 2} }

func suppressed() Frame {
	//lint:allow wirestruct golden test of the suppression path
	return Frame{7, 8, 9}
}
