// Package floatcmp is the golden-file input for the floatcmp analyzer:
// ==/!= on floating-point values.
package floatcmp

func equal(a, b float64) bool {
	return a == b // want "floating-point == comparison"
}

func notEqual(a, b float32) bool {
	return a != b // want "floating-point != comparison"
}

func mixed(a float64, b int) bool {
	return a == float64(b) // want "floating-point == comparison"
}

func ints(a, b int) bool {
	return a == b // ok: integers compare exactly
}

const eps = 1e-9

func constants() bool {
	return eps == 1e-9 // ok: two compile-time constants compare exactly
}

func tolerance(a, b float64) bool {
	d := a - b
	if d < 0 {
		d = -d
	}
	return d < eps // ok: tolerance comparison, not equality
}

func suppressed(total float64) bool {
	//lint:allow floatcmp golden test of the suppression path
	return total == 0
}
