// Package atomicmix is the golden-file input for the atomicmix analyzer:
// fields accessed through sync/atomic in one place and plainly in another.
package atomicmix

import "sync/atomic"

// Counter mixes an atomic field (hits) with a never-atomic one (total).
type Counter struct {
	hits  int64
	total int64
}

// Inc is the atomic site that puts hits under the all-or-nothing rule.
func (c *Counter) Inc() {
	atomic.AddInt64(&c.hits, 1)
}

// ReadRacy loads the atomic field plainly: the data race this analyzer
// exists for.
func (c *Counter) ReadRacy() int64 {
	return c.hits // want "plain access of c.hits"
}

// ReadSafe is the sanctioned access.
func (c *Counter) ReadSafe() int64 {
	return atomic.LoadInt64(&c.hits)
}

// resetShared writes the field plainly on a parameter of unknown
// provenance: flagged.
func resetShared(c *Counter) {
	c.hits = 0 // want "plain access of c.hits"
}

// NewCounter is the constructor shape the def-use chains exempt: every
// reaching definition of c is a fresh allocation, so no other goroutine
// can observe the plain write.
func NewCounter(seed int64) *Counter {
	c := &Counter{}
	c.hits = seed // ok: fresh allocation, single-threaded by construction
	return c
}

// newCounterVar pins the var-declaration freshness path.
func newCounterVar(seed int64) Counter {
	var c Counter
	c.hits = seed // ok: local zero value, not yet shared
	return c
}

// snapshot pins the suppression path.
func snapshot(c *Counter) int64 {
	//lint:allow atomicmix counters quiesced: caller stopped all writers
	return c.hits
}

// Total never mixes: total has no atomic site anywhere.
func (c *Counter) Total() int64 {
	return c.total // ok: plain everywhere
}

// cursor is the package-level flavor of the same mix.
var cursor int64

func bump() {
	atomic.AddInt64(&cursor, 1)
}

func lastCursor() int64 {
	return cursor // want "plain access of cursor"
}

// storeCursor keeps the variable fully atomic.
func storeCursor(v int64) {
	atomic.StoreInt64(&cursor, v)
}
