// Package trace is the tracectx golden testdata. It declares its own
// Context value type — the analyzer matches "Context in a package named
// trace" by name, so this standalone package exercises the same rule the
// real cloudgraph/internal/trace package is held to — plus a slog.Handler
// whose call sites cover every dropped-Handle-error shape.
package trace

import (
	"context"
	"log/slog"
)

// Context mirrors the real trace.Context: a small copyable value.
type Context struct{ TraceID, SpanID uint64 }

func passByPointer(c *Context) { // want "parameter"
	_ = c
}

func returnPointer() *Context { // want "result"
	return nil
}

type spanQueue struct {
	last *Context      // want "struct field"
	ch   chan *Context // want "channel element"
}

// Values are the intended shape: no findings.
func passByValue(c Context) Context { return c }

type valueQueue struct {
	last Context
	ch   chan Context
}

type handler struct{ base slog.Handler }

// Handle propagates the base handler's error — the good shape.
func (h handler) Handle(ctx context.Context, r slog.Record) error {
	return h.base.Handle(ctx, r)
}

// Handle with a different signature must not match.
type mux struct{}

func (mux) Handle(pattern string, h handler) {}

func dropHandle(h handler, m mux, r slog.Record) {
	h.Handle(context.Background(), r)     // want "discarded"
	_ = h.Handle(context.Background(), r) // want "assigned to _"
	go h.Handle(context.Background(), r)  // want "go statement"
	m.Handle("/x", h)                     // not a slog Handle: no finding
	//lint:allow tracectx suppression path pinned by the golden test
	h.Handle(context.Background(), r)
}

func deferHandle(h handler, r slog.Record) {
	defer h.Handle(context.Background(), r) // want "defer"
}
