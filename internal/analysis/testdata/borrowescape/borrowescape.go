// Package borrowescape is the golden-file input for the borrowescape
// analyzer: borrowed values (annotated parameters, pool objects,
// borrowed-return results) leaking past the borrowing call.
package borrowescape

import "sync"

// Record mimics the module's value-struct wire record: element copies own
// nothing, so recs[i] does not carry the borrow.
type Record struct {
	ID   int
	Size int
}

type scratch struct {
	buf []byte
}

type sink struct {
	kept  []Record
	bytes []byte
	ptr   *Record
}

var (
	globalRecs []Record
	globalPtr  *scratch
	sendCh     = make(chan []Record, 1)
)

// storeEscapes retains the borrowed batch in heap-reachable places.
//
//vet:borrowed recs
func storeEscapes(s *sink, recs []Record) {
	s.kept = recs     // want "stored to heap-reachable s.kept"
	globalRecs = recs // want "stored to package-level variable globalRecs"
}

// carrierEscapes shows derived carriers: the subslice and the element
// pointer still alias the borrowed buffer; the element copy does not.
//
//vet:borrowed recs
func carrierEscapes(s *sink, recs []Record) {
	tail := recs[1:]
	s.kept = tail    // want "stored to heap-reachable s.kept"
	s.ptr = &recs[0] // want "stored to heap-reachable s.ptr"
	first := recs[0] // ok: value copy owns nothing
	s.kept = append(s.kept, first)
}

// concurrencyEscapes hands the borrow to code whose lifetime is not
// ordered with the loan.
//
//vet:borrowed recs
func concurrencyEscapes(recs []Record) {
	sendCh <- recs   // want "sent on a channel"
	go consume(recs) // want "handed to a goroutine"
	go func() {
		_ = recs // want "captured by a closure"
	}()
}

func consume(recs []Record) {}

// returnEscapes returns the borrow without declaring the transfer.
//
//vet:borrowed recs
func returnEscapes(recs []Record) []Record {
	return recs // want "returned to the caller"
}

// lendOn declares the transfer: returning the borrow is the contract.
//
//vet:borrowed buf return
func lendOn(buf []byte) []byte {
	return append(buf, 0) // ok: //vet:borrowed return
}

// useLent receives a borrow from a borrowed-return callee and leaks it.
func useLent(s *sink) {
	b := lendOn(make([]byte, 0, 8))
	s.bytes = b // want "stored to heap-reachable s.bytes"
}

// retain is unannotated; its summary records that rs escapes through it.
func retain(s *sink, rs []Record) {
	s.kept = rs
}

// summaryEscape passes the borrow to a callee whose dataflow summary says
// the parameter is retained — the finding lands at the call site.
//
//vet:borrowed recs
func summaryEscape(s *sink, recs []Record) {
	retain(s, recs) // want "the callee retains parameter rs"
}

// mutateBorrowed stores into the borrowed object itself: in-place mutation
// of the loan is the whole point of borrowing.
//
//vet:borrowed sc
func mutateBorrowed(sc *scratch, b byte) {
	sc.buf = append(sc.buf, b) // ok: mutation through the borrow
}

var pool = sync.Pool{New: func() any { return new(scratch) }}

// useAfterPut reads the pool object after returning it: every path to the
// use passes the Put.
func useAfterPut() int {
	sc := pool.Get().(*scratch)
	n := len(sc.buf)
	pool.Put(sc)
	return n + len(sc.buf) // want "use of sc after sync.Pool.Put"
}

// poolPerIteration is the clean loop shape: the variable re-binds from
// Get before any use, so the loop back-edge does not poison it.
func poolPerIteration() int {
	total := 0
	for i := 0; i < 3; i++ {
		sc := pool.Get().(*scratch)
		total += len(sc.buf)
		pool.Put(sc)
	}
	return total
}

// poolEscape leaks a pool object to a global: the pool hands it to someone
// else on the next Get.
func poolEscape() {
	sc := pool.Get().(*scratch)
	globalPtr = sc // want "stored to package-level variable globalPtr"
	pool.Put(sc)
}

// suppressed pins the //lint:allow path: the same store as storeEscapes,
// justified inline, produces no finding.
//
//vet:borrowed recs
func suppressed(s *sink, recs []Record) {
	//lint:allow borrowescape test harness snapshots the batch before reuse
	s.kept = recs
}

// cleanScan is the intended hot-path shape: read the borrow, copy what is
// kept, let it go.
//
//vet:borrowed recs
func cleanScan(s *sink, recs []Record) int {
	total := 0
	for i := range recs {
		total += recs[i].Size
		if recs[i].ID > 0 {
			s.kept = append(s.kept, recs[i]) // ok: element value copy
		}
	}
	return total // ok: an int is not the borrow
}
