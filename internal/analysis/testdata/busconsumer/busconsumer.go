// Package busconsumer is the golden-file input for the busconsumer
// analyzer: window consumers that re-enter the engine's ingest or
// lifecycle path. The package mirrors the shapes of internal/core —
// a named Engine type and a ConsumerSpec struct with a function-typed
// Fn field — because the analyzer matches those by name.
package busconsumer

// Graph stands in for graph.Graph.
type Graph struct{}

// Record stands in for flowlog.Record.
type Record struct{}

// WindowConsumer mirrors core.WindowConsumer.
type WindowConsumer func(epoch uint64, g *Graph)

// ConsumerSpec mirrors core.ConsumerSpec.
type ConsumerSpec struct {
	Name   string
	Fn     WindowConsumer
	Buffer int
}

// Engine mirrors the methods the analyzer forbids inside consumers.
type Engine struct{ windows []*Graph }

func (e *Engine) Ingest(recs []Record)        {}
func (e *Engine) IngestTraced(recs []Record)  {}
func (e *Engine) Collect(recs []Record) error { return nil }
func (e *Engine) Flush() []*Graph             { return e.windows }
func (e *Engine) Close()                      {}
func (e *Engine) Windows() []*Graph           { return e.windows }
func (e *Engine) Subscribe(spec ConsumerSpec) {}

// direct re-entry in a keyed literal.
func direct(e *Engine) ConsumerSpec {
	return ConsumerSpec{
		Name: "replayer",
		Fn: func(epoch uint64, g *Graph) {
			e.Ingest(nil) // want "bus consumer replayer calls Engine.Ingest"
		},
	}
}

// flushing mid-delivery deadlocks the drain.
func flusher(e *Engine) ConsumerSpec {
	return ConsumerSpec{
		Name: "flusher",
		Fn: func(epoch uint64, g *Graph) {
			e.Flush() // want "bus consumer flusher calls Engine.Flush"
		},
	}
}

// a consumer closing its own engine joins its own goroutine.
func closer(e *Engine) {
	e.Subscribe(ConsumerSpec{
		Name: "closer",
		Fn: func(epoch uint64, g *Graph) {
			e.Close() // want "bus consumer closer calls Engine.Close"
		},
	})
}

// positional literal: the Fn field is found by index, not key.
func positional(e *Engine) ConsumerSpec {
	return ConsumerSpec{"pos", func(epoch uint64, g *Graph) {
		e.Collect(nil) // want "bus consumer calls Engine.Collect"
	}, 8}
}

// reingest hides the re-entry one same-package call away; the analyzer
// must follow it from the consumer root.
func reingest(e *Engine, g *Graph) {
	e.IngestTraced(nil) // want "bus consumer indirect calls Engine.IngestTraced"
}

func indirect(e *Engine) ConsumerSpec {
	return ConsumerSpec{
		Name: "indirect",
		Fn:   func(epoch uint64, g *Graph) { reingest(e, g) },
	}
}

// named declares the consumer as a method and installs it by reference —
// the Fn expression is a method value, not a literal.
type named struct{ e *Engine }

func (c *named) onWindow(epoch uint64, g *Graph) {
	c.e.Flush() // want "bus consumer calls Engine.Flush"
}

func (c *named) spec() ConsumerSpec {
	return ConsumerSpec{Fn: c.onWindow}
}

// clean consumers: reads are fine, and work handed to another goroutine
// is off the delivery path by construction.
func clean(e *Engine) []ConsumerSpec {
	return []ConsumerSpec{
		{Name: "reader", Fn: func(epoch uint64, g *Graph) {
			_ = e.Windows() // ok: reading completed windows does not re-enter
		}},
		{Name: "spawner", Fn: func(epoch uint64, g *Graph) {
			go e.Flush() // ok: blocks a spawned goroutine, not the bus
		}},
	}
}

// notConsumer proves context sensitivity: the same helper is fine when
// called outside a consumer.
func notConsumer(e *Engine, g *Graph) {
	reingest(e, g) // ok: not on a bus delivery goroutine
}

// Realm mirrors realm.Realm: a named tenant plane wrapping its own
// Engine. The multi-tenant invariant is stricter than the single-engine
// one — a consumer on tenant A's bus must not re-enter ANY engine,
// including tenant B's: the scheduler runs both planes on the same
// shared worker slots, so cross-tenant re-entry feeds B's pipeline from
// a goroutine B's drain may be waiting on.
type Realm struct {
	name string
	eng  *Engine
}

// crossTenant installs a consumer on tenant A that pushes records into
// tenant B's engine — the cross-plane feedback loop the realm scheduler
// forbids.
func crossTenant(a, b *Realm) {
	a.eng.Subscribe(ConsumerSpec{
		Name: "cross-tenant",
		Fn: func(epoch uint64, g *Graph) {
			b.eng.Ingest(nil) // want "bus consumer cross-tenant calls Engine.Ingest"
		},
	})
}

// crossFlush blocks tenant A's delivery goroutine on tenant B's drain;
// with both planes behind one scheduler pool that is a cross-tenant
// deadlock, not just a stall.
func crossFlush(a, b *Realm) ConsumerSpec {
	return ConsumerSpec{
		Name: "cross-flush",
		Fn: func(epoch uint64, g *Graph) {
			b.eng.Flush() // want "bus consumer cross-flush calls Engine.Flush"
		},
	}
}

// fanin reads a sibling tenant's completed windows: reads never
// re-enter, whichever plane they land on.
func fanin(a, b *Realm) ConsumerSpec {
	_ = a
	return ConsumerSpec{
		Name: "fanin",
		Fn: func(epoch uint64, g *Graph) {
			_ = b.eng.Windows() // ok: reading completed windows does not re-enter
		},
	}
}

// suppressed pins the //lint:allow path.
func suppressed(e *Engine) ConsumerSpec {
	return ConsumerSpec{
		Name: "suppressed",
		Fn: func(epoch uint64, g *Graph) {
			//lint:allow busconsumer golden test of the suppression path
			e.Ingest(nil)
		},
	}
}
