// Package detclock is the golden-file input for the detclock analyzer:
// ambient clocks, the global RNG, and map-iteration order leaking into
// output in packages that must be deterministic.
package detclock

import (
	"math/rand"
	"sort"
	"time"
)

// Sim is driven by explicit timestamps and a seeded generator — the shape
// the analyzer wants.
type Sim struct {
	now time.Time
	rng *rand.Rand
}

// NewSim builds a seeded simulation; the rand constructors are allowed
// anywhere.
func NewSim(seed int64) *Sim {
	return &Sim{rng: rand.New(rand.NewSource(seed))} // ok: seeded constructor
}

func (s *Sim) step() time.Duration {
	start := time.Now()    // want "ambient clock: time.Now"
	d := time.Since(start) // want "ambient clock: time.Since"
	time.Sleep(d)          // want "ambient clock: time.Sleep"
	return d
}

func (s *Sim) draw() int {
	n := rand.Intn(10)        // want "global RNG: rand.Intn"
	return n + s.rng.Intn(10) // ok: drawing from the seeded instance
}

func unsortedKeys(m map[string]int) []string {
	var out []string
	for k := range m { // want "map iteration appends to"
		out = append(out, k)
	}
	return out
}

func sortedKeys(m map[string]int) []string {
	var out []string
	for k := range m { // ok: sorted later in the same block
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

func suppressed(m map[string]int) []string {
	var out []string
	//lint:allow detclock golden test of the suppression path
	for k := range m {
		out = append(out, k)
	}
	return out
}
