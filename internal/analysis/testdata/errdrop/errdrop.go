// Package errdrop is the golden-file input for the errdrop analyzer:
// silently discarded error returns.
package errdrop

import (
	"errors"
	"fmt"
	"strings"
)

var errBoom = errors.New("boom")

func fail() error { return errBoom }

func failPair() (int, error) { return 0, errBoom }

func dropStmt() {
	fail() // want "error return of fail discarded"
}

func dropBlank() {
	_ = fail() // want "error value assigned to _"
}

func dropPair() {
	n, _ := failPair() // want "error result of failPair assigned to _"
	_ = n
}

func handled() error {
	if err := fail(); err != nil {
		return err
	}
	n, err := failPair() // ok: error bound and checked
	if err != nil {
		return err
	}
	_ = n
	return nil
}

func deferred() {
	defer fail() // ok: deferred calls are exempt
}

func builder() string {
	var b strings.Builder
	fmt.Fprintf(&b, "x=%d", 1) // ok: Builder writes cannot fail
	b.WriteString("y")         // ok: Builder method
	return b.String()
}

func suppressed() {
	//lint:allow errdrop golden test of the suppression path
	fail()
}
