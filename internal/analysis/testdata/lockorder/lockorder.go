// Package lockorder is the golden-file input for the lockorder analyzer:
// inverted acquisition orders (direct and through calls), lock
// reacquisition, and lock-held calls into the consumer bus.
package lockorder

import "sync"

type A struct{ mu sync.Mutex }
type B struct{ mu sync.Mutex }

var (
	sharedA A
	sharedB B
)

// lockAB and lockBA take the same two locks in opposite orders — the
// classic deadlock pair. Both witness sites are on the cycle and both are
// reported.
func lockAB() {
	sharedA.mu.Lock()
	sharedB.mu.Lock() // want "lock-order cycle"
	sharedB.mu.Unlock()
	sharedA.mu.Unlock()
}

func lockBA() {
	sharedB.mu.Lock()
	sharedA.mu.Lock() // want "lock-order cycle"
	sharedA.mu.Unlock()
	sharedB.mu.Unlock()
}

type C struct{ mu sync.Mutex }
type D struct{ mu sync.Mutex }

// lockCD closes the cycle through a callee: the C->D edge is witnessed at
// the call, via lockD's acquisition summary.
func lockCD(c *C, d *D) {
	c.mu.Lock()
	lockD(d) // want "lock-order cycle"
	c.mu.Unlock()
}

func lockD(d *D) {
	d.mu.Lock()
	d.mu.Unlock()
}

func lockDC(c *C, d *D) {
	d.mu.Lock()
	c.mu.Lock() // want "lock-order cycle"
	c.mu.Unlock()
	d.mu.Unlock()
}

type S struct{ mu sync.Mutex }

// reacquire takes the same lock identity twice: self-deadlock on one
// instance, unordered across two.
func (s *S) reacquire(other *S) {
	s.mu.Lock()
	other.mu.Lock() // want "already held"
	other.mu.Unlock()
	s.mu.Unlock()
}

var gmu sync.Mutex

// regrabGlobal pins the package-level-variable lock identity.
func regrabGlobal() {
	gmu.Lock()
	gmu.Lock() // want "already held"
	gmu.Unlock()
	gmu.Unlock()
}

// Bus mimics core's consumer fan-out bus; Drain and Close block on
// consumer progress.
type Bus struct{}

func (b *Bus) Drain() {}
func (b *Bus) Close() {}

type Engine struct {
	mu  sync.Mutex
	bus *Bus
}

func (e *Engine) flushBad() {
	e.mu.Lock()
	e.bus.Drain() // want "call into the consumer bus"
	e.mu.Unlock()
}

// closeBad holds the lock to function end via the deferred unlock.
func (e *Engine) closeBad() {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.bus.Close() // want "call into the consumer bus"
}

func (e *Engine) flushGood() {
	e.mu.Lock()
	e.mu.Unlock()
	e.bus.Drain() // ok: lock released first
}

// drainOnShutdown pins the suppression path: consumers are stopped before
// this is called, justified inline.
func (e *Engine) drainOnShutdown() {
	e.mu.Lock()
	//lint:allow lockorder shutdown path: consumers already stopped before drain
	e.bus.Drain()
	e.mu.Unlock()
}

type E struct{ mu sync.Mutex }
type F struct{ mu sync.Mutex }

// consistentOne/Two take E before F everywhere: an edge with no reverse is
// an order, not a hazard.
func consistentOne(e *E, f *F) {
	e.mu.Lock()
	f.mu.Lock()
	f.mu.Unlock()
	e.mu.Unlock()
}

func consistentTwo(e *E, f *F) {
	e.mu.Lock()
	f.mu.Lock()
	f.mu.Unlock()
	e.mu.Unlock()
}

// localLock is invisible: a function-local mutex cannot order against
// anything across calls.
func localLock(f *F) {
	var mu sync.Mutex
	mu.Lock()
	f.mu.Lock()
	f.mu.Unlock()
	mu.Unlock()
}

// Scheduler and Tenant mirror the realm scheduler's shape: a shared
// scheduler mutex guarding the deficit round-robin state, and one mutex
// per tenant plane. Its invariant is that the grant loop holds at most
// one tenant lock at a time, and never a tenant lock together with the
// scheduler lock.
type Scheduler struct{ mu sync.Mutex }
type Tenant struct{ mu sync.Mutex }

// stealBudget holds two tenant locks at once. Tenant locks share one
// identity class (same field of the same type), so the second acquire is
// the self-deadlock shape: two grant loops stealing in opposite
// directions wedge the whole pool.
func stealBudget(from, to *Tenant) {
	from.mu.Lock()
	to.mu.Lock() // want "already held"
	to.mu.Unlock()
	from.mu.Unlock()
}

// grantHolding runs a tenant's work while still holding the scheduler
// lock; yieldSlot re-enters the scheduler while holding the tenant lock.
// Together they close a Scheduler<->Tenant cycle — exactly the deadlock
// the realm scheduler avoids by releasing its own lock before running
// the granted closure.
func grantHolding(s *Scheduler, t *Tenant) {
	s.mu.Lock()
	t.mu.Lock() // want "lock-order cycle"
	t.mu.Unlock()
	s.mu.Unlock()
}

func yieldSlot(s *Scheduler, t *Tenant) {
	t.mu.Lock()
	s.mu.Lock() // want "lock-order cycle"
	s.mu.Unlock()
	t.mu.Unlock()
}

// grantClean is the invariant-respecting shape: pick under the scheduler
// lock, release it, then touch exactly one tenant.
func grantClean(s *Scheduler, t *Tenant) {
	s.mu.Lock()
	s.mu.Unlock()
	t.mu.Lock()
	t.mu.Unlock()
}
