package analysis

import (
	"testing"
	"time"
)

// loadModulePkgs loads the real module once per test/benchmark that needs
// it; type-checking dominates, so callers reuse the result across
// iterations where possible.
func loadModulePkgs(tb testing.TB) []*Package {
	tb.Helper()
	root, err := FindModuleRoot(".")
	if err != nil {
		tb.Fatal(err)
	}
	pkgs, err := LoadModule(root)
	if err != nil {
		tb.Fatal(err)
	}
	return pkgs
}

// BenchmarkVetModule measures one full-suite run over the already-loaded
// module: the analyzer cost CI pays on every push, load excluded (that is
// the compiler's price, not the suite's).
func BenchmarkVetModule(b *testing.B) {
	pkgs := loadModulePkgs(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Run(Suite(), pkgs)
	}
}

// BenchmarkVetModuleWithLoad includes the parse + type-check, the true
// end-to-end cost of `go run ./cmd/cloudgraph-vet ./...`.
func BenchmarkVetModuleWithLoad(b *testing.B) {
	for i := 0; i < b.N; i++ {
		pkgs := loadModulePkgs(b)
		Run(Suite(), pkgs)
	}
}

// vetModuleBudget is the pinned wall-clock ceiling for one end-to-end
// full-module run (load + full suite). The measured cost on the CI class
// of machine is well under a second; the ceiling leaves ~5x headroom for
// slower runners while still catching an accidental quadratic blowup in
// the dataflow engine (summaries iterate to fixed points — a bad meet
// would show up as seconds, not milliseconds).
const vetModuleBudget = 20 * time.Second

// TestVetModuleBudget fails when a full end-to-end run exceeds the pinned
// budget. CI runs it by name; -short skips it like the other whole-module
// passes.
func TestVetModuleBudget(t *testing.T) {
	if testing.Short() {
		t.Skip("whole-module run is slow under -short")
	}
	start := time.Now()
	pkgs := loadModulePkgs(t)
	findings := Run(Suite(), pkgs)
	elapsed := time.Since(start)
	t.Logf("full-module vet: %d packages, %d findings in %v (budget %v)", len(pkgs), len(findings), elapsed, vetModuleBudget)
	if elapsed > vetModuleBudget {
		t.Fatalf("full-module vet took %v, over the %v budget — the dataflow engine regressed", elapsed, vetModuleBudget)
	}
}
