package analysis

import (
	"go/ast"
	"go/token"
	"strings"
)

// allowSet records which analyzers are suppressed on which lines of which
// files, from //lint:allow comments.
type allowSet map[string]map[int][]string

// allowedLines scans the files' comments for suppression directives:
//
//	//lint:allow <analyzer> <justification>
//
// A directive suppresses the named analyzer on its own line and — so a long
// justification can sit above a long statement — on the line immediately
// below it.
func allowedLines(fset *token.FileSet, files []*ast.File) allowSet {
	set := make(allowSet)
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text, ok := strings.CutPrefix(c.Text, "//lint:allow ")
				if !ok {
					continue
				}
				name, _, _ := strings.Cut(strings.TrimSpace(text), " ")
				if name == "" {
					continue
				}
				pos := fset.Position(c.Pos())
				byLine := set[pos.Filename]
				if byLine == nil {
					byLine = make(map[int][]string)
					set[pos.Filename] = byLine
				}
				byLine[pos.Line] = append(byLine[pos.Line], name)
				byLine[pos.Line+1] = append(byLine[pos.Line+1], name)
			}
		}
	}
	return set
}

// allows reports whether f is suppressed by a directive.
func (s allowSet) allows(f Finding) bool {
	for _, name := range s[f.File][f.Line] {
		if name == f.Analyzer {
			return true
		}
	}
	return false
}
