package analysis

import (
	"go/ast"
	"go/types"
)

// Tracectx enforces the tracing layer's two usage invariants:
//
//   - trace.Context is a small value meant to be copied: it crosses
//     goroutine and stage boundaries on the ingest hot path, and sharing
//     one by pointer invites data races and aliasing bugs the value type
//     was designed out of. Declaring *Context in a parameter, result,
//     struct field or channel element is flagged.
//
//   - slog.Handler.Handle returns an error for a reason — a dead log sink
//     would otherwise fail silently, which in an observability layer means
//     losing the very signal that explains the next outage. Calls to a
//     Handle method with the slog.Handler signature must not discard the
//     error: bare statements, blank assignments, go and defer statements
//     are flagged. (errdrop catches the bare form in cloudgraph/internal;
//     this check also covers go/defer and applies module-wide.)
func Tracectx() *Analyzer {
	a := &Analyzer{
		Name: "tracectx",
		Doc:  "flag *trace.Context in signatures and dropped slog Handler.Handle errors",
	}
	a.Run = runTracectx
	return a
}

func runTracectx(p *Pass) {
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.FuncType:
				p.checkCtxFieldList(n.Params, "parameter")
				p.checkCtxFieldList(n.Results, "result")
			case *ast.StructType:
				p.checkCtxFieldList(n.Fields, "struct field")
			case *ast.ChanType:
				p.checkCtxPointerExpr(n.Value, "channel element")
			case *ast.ExprStmt:
				if call, ok := n.X.(*ast.CallExpr); ok && isSlogHandle(p, call) {
					p.Reportf(call.Pos(), "error return of %s discarded; a failing log sink must be surfaced", callName(call))
				}
			case *ast.GoStmt:
				if isSlogHandle(p, n.Call) {
					p.Reportf(n.Call.Pos(), "error return of %s discarded by go statement; a failing log sink must be surfaced", callName(n.Call))
				}
				return false
			case *ast.DeferStmt:
				if isSlogHandle(p, n.Call) {
					p.Reportf(n.Call.Pos(), "error return of %s discarded by defer; a failing log sink must be surfaced", callName(n.Call))
				}
				return false
			case *ast.AssignStmt:
				p.checkBlankHandleErr(n)
			}
			return true
		})
	}
}

// checkCtxFieldList flags every *trace.Context-typed entry of fields.
func (p *Pass) checkCtxFieldList(fields *ast.FieldList, where string) {
	if fields == nil {
		return
	}
	for _, f := range fields.List {
		p.checkCtxPointerExpr(f.Type, where)
	}
}

// checkCtxPointerExpr flags expr when it denotes *trace.Context.
func (p *Pass) checkCtxPointerExpr(expr ast.Expr, where string) {
	if expr == nil {
		return
	}
	t := p.Info.TypeOf(expr)
	if t == nil {
		return
	}
	ptr, ok := t.(*types.Pointer)
	if !ok || !isTraceContext(ptr.Elem()) {
		return
	}
	p.Reportf(expr.Pos(), "*trace.Context as %s: Context is a value type; copy it across goroutines, never share a pointer", where)
}

// isTraceContext reports whether t is the Context type of a package named
// trace (name-based so the golden testdata package matches too).
func isTraceContext(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Name() == "trace" && obj.Name() == "Context"
}

// isSlogHandle reports whether call invokes a method named Handle with the
// slog.Handler signature: (context.Context, slog.Record) error.
func isSlogHandle(p *Pass, call *ast.CallExpr) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "Handle" {
		return false
	}
	sig := callSignature(p, call)
	if sig == nil || sig.Params().Len() != 2 || sig.Results().Len() != 1 {
		return false
	}
	if !isErrorType(sig.Results().At(0).Type()) {
		return false
	}
	return isNamedType(sig.Params().At(0).Type(), "context", "Context") &&
		isNamedType(sig.Params().At(1).Type(), "log/slog", "Record")
}

// isNamedType reports whether t is the named type pkgPath.name.
func isNamedType(t types.Type, pkgPath, name string) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == pkgPath && obj.Name() == name
}

// checkBlankHandleErr flags `_ = h.Handle(ctx, r)`.
func (p *Pass) checkBlankHandleErr(asg *ast.AssignStmt) {
	for i, lhs := range asg.Lhs {
		id, ok := lhs.(*ast.Ident)
		if !ok || id.Name != "_" || i >= len(asg.Rhs) {
			continue
		}
		if call, ok := asg.Rhs[i].(*ast.CallExpr); ok && isSlogHandle(p, call) {
			p.Reportf(lhs.Pos(), "error result of %s assigned to _; a failing log sink must be surfaced", callName(call))
		}
	}
}
